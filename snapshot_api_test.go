package s3

import (
	"bytes"
	"strings"
	"testing"
)

// buildSample assembles a small instance exercising the social, document,
// tag and semantic layers through the public facade.
func buildSample(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(English)
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddSocial("alice", "bob", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSocialAs("bob", "carol", 0.6, "follows"); err != nil {
		t.Fatal(err)
	}
	b.AddTriple(b.Stem("m.s"), "rdfs:subClassOf", b.Stem("degree"))
	if err := b.AddDocument(&DocNode{URI: "post1", Name: "post", Children: []*DocNode{
		{Name: "title", Text: "My M.S. graduation"},
		{Name: "body", Text: "Celebrating at the university with friends"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPost("post1", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocumentText("reply1", "reply", "Congrats on the degree"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddComment("reply1", "post1.1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTag("t1", "post1.1", "carol", "milestone"); err != nil {
		t.Fatal(err)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// A snapshot restores an instance with identical statistics, search
// answers and semantic extensions — without re-running the build.
func TestSnapshotRoundTripThroughFacade(t *testing.T) {
	inst := buildSample(t)

	var buf bytes.Buffer
	if err := inst.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if inst.Stats() != restored.Stats() {
		t.Errorf("stats changed:\noriginal: %+v\nrestored: %+v", inst.Stats(), restored.Stats())
	}
	want, err := inst.Search("alice", []string{"degree"}, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Search("alice", []string{"degree"}, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sample search returned no results")
	}
	if len(got) != len(want) {
		t.Fatalf("restored search returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d changed: %+v vs %+v", i, want[i], got[i])
		}
	}
	if gotExt, wantExt := restored.Extension("degree"), inst.Extension("degree"); strings.Join(gotExt, ",") != strings.Join(wantExt, ",") {
		t.Errorf("extension changed: %v vs %v", gotExt, wantExt)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("ReadSnapshot accepted garbage")
	}
}
