module s3

go 1.24
