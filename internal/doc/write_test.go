package doc

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteXMLRoundTrip(t *testing.T) {
	const src = `<tweet lang="en"><text>hello world</text><geo>Lyon</geo></tweet>`
	d, err := ParseXML("t1", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseXML("t1", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing serialised XML: %v\n%s", err, buf.String())
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round-trip changed node count: %d vs %d\n%s", d2.Len(), d.Len(), buf.String())
	}
	for i, n := range d.Nodes() {
		m := d2.Nodes()[i]
		if n.Name != m.Name || n.Text != m.Text || n.URI != m.URI {
			t.Fatalf("node %d differs: %+v vs %+v", i, n, m)
		}
	}
}

func TestWriteXMLEscaping(t *testing.T) {
	root := &Node{URI: "d", Name: "post", Text: `a < b & "c"`, Children: []*Node{
		{Name: "@lang", Text: "en<fr"},
	}}
	d, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseXML("d", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped XML does not re-parse: %v\n%s", err, buf.String())
	}
	if got := d2.Root().Text; got != `a < b & "c"` {
		t.Fatalf("text lost in escaping: %q", got)
	}
	if got := d2.Root().Children[0].Text; got != "en<fr" {
		t.Fatalf("attribute lost in escaping: %q", got)
	}
}
