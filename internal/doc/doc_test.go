package doc

import (
	"reflect"
	"strings"
	"testing"
)

// buildPaperDoc builds the motivating example's d0 with fragments d0.3.2
// and d0.5.1 at the paper's positions.
func buildPaperDoc(t *testing.T) *Document {
	t.Helper()
	root := &Node{URI: "d0", Name: "article", Children: []*Node{
		{Name: "sec"}, {Name: "sec"},
		{Name: "sec", Children: []*Node{
			{Name: "par"},
			{Name: "par", Text: "some disputed paragraph"},
		}},
		{Name: "sec"},
		{Name: "sec", Children: []*Node{
			{Name: "par", Text: "graduation text"},
		}},
	}}
	d, err := New(root)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestDeweyURIsAndPositions(t *testing.T) {
	d := buildPaperDoc(t)
	n, ok := d.Node("d0.3.2")
	if !ok {
		t.Fatal("node d0.3.2 not found")
	}
	if got := n.Pos(); !reflect.DeepEqual(got, []int{3, 2}) {
		t.Fatalf("pos(d0.3.2) = %v, want [3 2]", got)
	}
	if n.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", n.Depth())
	}
	if _, ok := d.Node("d0.5.1"); !ok {
		t.Fatal("node d0.5.1 not found")
	}
	if d.Root().Depth() != 0 || len(d.Root().Pos()) != 0 {
		t.Fatal("root must have empty position")
	}
}

func TestExplicitURIsPreserved(t *testing.T) {
	root := &Node{URI: "doc", Children: []*Node{{URI: "custom-uri", Name: "x"}}}
	d, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Node("custom-uri"); !ok {
		t.Fatal("explicit child URI was not preserved")
	}
}

func TestNewRejectsDuplicateURIs(t *testing.T) {
	root := &Node{URI: "d", Children: []*Node{{URI: "x"}, {URI: "x"}}}
	if _, err := New(root); err == nil {
		t.Fatal("expected error on duplicate URIs")
	}
}

func TestNewRejectsMissingRootURI(t *testing.T) {
	if _, err := New(&Node{Name: "a"}); err == nil {
		t.Fatal("expected error on missing root URI")
	}
}

func TestNewRejectsNilRootAndNilChild(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error on nil root")
	}
	if _, err := New(&Node{URI: "d", Children: []*Node{nil}}); err == nil {
		t.Fatal("expected error on nil child")
	}
}

func TestAncestryAndVerticalNeighbors(t *testing.T) {
	d := buildPaperDoc(t)
	root := d.Root()
	d032, _ := d.Node("d0.3.2")
	d051, _ := d.Node("d0.5.1")
	d03, _ := d.Node("d0.3")

	if !IsAncestorOrSelf(root, d032) || !IsAncestorOrSelf(d03, d032) {
		t.Fatal("ancestor tests failed")
	}
	if IsAncestorOrSelf(d032, d03) {
		t.Fatal("descendant misreported as ancestor")
	}
	if !IsAncestorOrSelf(d032, d032) {
		t.Fatal("self must count as ancestor-or-self")
	}
	// The paper's u3/u4 situation: d0.3.2 and d0.5.1 are NOT vertical
	// neighbours (disjoint subtrees), but each is a neighbour of d0.
	if VerticalNeighbors(d032, d051) {
		t.Fatal("disjoint fragments must not be vertical neighbours")
	}
	if !VerticalNeighbors(root, d032) || !VerticalNeighbors(d051, root) {
		t.Fatal("fragment and its document must be vertical neighbours")
	}
}

func TestPosLen(t *testing.T) {
	d := buildPaperDoc(t)
	root := d.Root()
	d032, _ := d.Node("d0.3.2")
	d03, _ := d.Node("d0.3")

	if l, ok := PosLen(root, d032); !ok || l != 2 {
		t.Fatalf("PosLen(root, d0.3.2) = %d,%v, want 2,true", l, ok)
	}
	if l, ok := PosLen(d03, d032); !ok || l != 1 {
		t.Fatalf("PosLen(d0.3, d0.3.2) = %d,%v, want 1,true", l, ok)
	}
	if l, ok := PosLen(root, root); !ok || l != 0 {
		t.Fatalf("PosLen(root, root) = %d,%v, want 0,true", l, ok)
	}
	if _, ok := PosLen(d032, d03); ok {
		t.Fatal("PosLen must fail when f is not in Frag(d)")
	}
}

func TestNodesPreOrder(t *testing.T) {
	d := buildPaperDoc(t)
	var uris []string
	for _, n := range d.Nodes() {
		uris = append(uris, n.URI)
	}
	want := []string{"d0", "d0.1", "d0.2", "d0.3", "d0.3.1", "d0.3.2", "d0.4", "d0.5", "d0.5.1"}
	if !reflect.DeepEqual(uris, want) {
		t.Fatalf("pre-order = %v, want %v", uris, want)
	}
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
}

func TestParseXML(t *testing.T) {
	const src = `<tweet lang="en"><text>When I got my M.S. in 2012</text><date>2014-05-02</date><geo>Edmonton</geo></tweet>`
	d, err := ParseXML("t1", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.URI() != "t1" || d.Root().Name != "tweet" {
		t.Fatalf("root = %q/%q", d.URI(), d.Root().Name)
	}
	// Attribute becomes the first child, then text/date/geo.
	if got := d.Root().Children[0].Name; got != "@lang" {
		t.Fatalf("first child = %q, want @lang", got)
	}
	txt, ok := d.Node("t1.2")
	if !ok || txt.Name != "text" || !strings.Contains(txt.Text, "M.S.") {
		t.Fatalf("text node wrong: %+v (ok=%v)", txt, ok)
	}
}

func TestParseXMLErrors(t *testing.T) {
	if _, err := ParseXML("x", strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := ParseXML("x", strings.NewReader("<a><b></a></b>")); err == nil {
		t.Fatal("expected error on malformed XML")
	}
}

func TestParseXMLCoalescesText(t *testing.T) {
	d, err := ParseXML("x", strings.NewReader("<a>one <b>two</b> three</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Root().Text; got != "one three" {
		t.Fatalf("root text = %q, want %q", got, "one three")
	}
}

func TestParseJSON(t *testing.T) {
	const src = `{"text": "a review", "stars": 4, "flags": [true, false], "nested": {"k": null}}`
	d, err := ParseJSON("r1", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// Keys sorted: flags, nested, stars, text.
	names := make([]string, 0)
	for _, c := range d.Root().Children {
		names = append(names, c.Name)
	}
	want := []string{"flags", "nested", "stars", "text"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("child names = %v, want %v", names, want)
	}
	stars, _ := d.Node("r1.3")
	if stars.Text != "4" {
		t.Fatalf("stars text = %q, want 4", stars.Text)
	}
	flags, _ := d.Node("r1.1")
	if len(flags.Children) != 2 || flags.Children[0].Name != "item" {
		t.Fatalf("array children wrong: %+v", flags.Children)
	}
}

func TestParseJSONError(t *testing.T) {
	if _, err := ParseJSON("x", strings.NewReader("{nope")); err == nil {
		t.Fatal("expected error on malformed JSON")
	}
}

func TestFragmentText(t *testing.T) {
	d := buildPaperDoc(t)
	if got := FragmentText(d.Root()); got != "some disputed paragraph graduation text" {
		t.Fatalf("FragmentText = %q", got)
	}
	d051, _ := d.Node("d0.5.1")
	if got := FragmentText(d051); got != "graduation text" {
		t.Fatalf("FragmentText(d0.5.1) = %q", got)
	}
}
