// Package doc implements the structured-document substrate of the S3 model
// (paper §2.3): unranked ordered trees of named nodes, each with a URI, a
// name and text content, plus Dewey-style positions implementing the
// pos(d, f) function used by the score.
//
// Documents can be built programmatically or parsed from XML / JSON
// (the two concrete syntaxes the paper mentions).
package doc

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Node is one document node. A fragment of a document d is the subtree
// rooted at any node of d, identified by that node's URI.
type Node struct {
	// URI identifies the node (and the fragment it roots). If empty when
	// the Document is finalised, a Dewey-style URI is derived from the
	// parent's: parent.URI + "." + (1-based child index), as in the
	// paper's d0.3.2.
	URI string
	// Name is the node name (XML element name, JSON key, ...).
	Name string
	// Text is the raw text content of this node (not of its subtree).
	Text string
	// Keywords is the stemmed keyword set of Text; filled by the instance
	// builder using a text.Analyzer.
	Keywords []string

	Children []*Node

	parent *Node
	pos    []int // Dewey path from the document root; nil for the root
}

// Parent returns the parent node (nil for the root). Valid after New.
func (n *Node) Parent() *Node { return n.parent }

// Pos returns the Dewey path of the node relative to the document root:
// pos(root, n) in the paper's notation. The root has an empty path.
// The returned slice must not be modified.
func (n *Node) Pos() []int { return n.pos }

// Depth returns len(Pos()): the number of edges from the root.
func (n *Node) Depth() int { return len(n.pos) }

// Document is a finalised, validated document tree.
type Document struct {
	root  *Node
	byURI map[string]*Node
	nodes []*Node // pre-order
}

// New finalises a tree rooted at root: it assigns missing URIs, computes
// Dewey positions and parent pointers, and validates that URIs are unique
// and non-empty. The root must have a URI (it identifies the document).
func New(root *Node) (*Document, error) {
	if root == nil {
		return nil, fmt.Errorf("doc: nil root")
	}
	if root.URI == "" {
		return nil, fmt.Errorf("doc: document root has no URI")
	}
	d := &Document{root: root, byURI: make(map[string]*Node)}
	var walk func(n *Node, pos []int) error
	walk = func(n *Node, pos []int) error {
		n.pos = pos
		if n.URI == "" {
			n.URI = fmt.Sprintf("%s.%d", n.parent.URI, pos[len(pos)-1])
		}
		if _, dup := d.byURI[n.URI]; dup {
			return fmt.Errorf("doc: duplicate node URI %q in document %q", n.URI, root.URI)
		}
		d.byURI[n.URI] = n
		d.nodes = append(d.nodes, n)
		for i, c := range n.Children {
			if c == nil {
				return fmt.Errorf("doc: nil child under %q", n.URI)
			}
			c.parent = n
			child := make([]int, len(pos)+1)
			copy(child, pos)
			child[len(pos)] = i + 1
			if err := walk(c, child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the document root node.
func (d *Document) Root() *Node { return d.root }

// URI returns the document URI (the root node's URI).
func (d *Document) URI() string { return d.root.URI }

// Node resolves a node by URI.
func (d *Document) Node(uri string) (*Node, bool) {
	n, ok := d.byURI[uri]
	return n, ok
}

// Nodes returns all nodes in pre-order (document order). The slice is
// shared and must not be modified. Every node is the root of one fragment,
// so this is also Frag(d).
func (d *Document) Nodes() []*Node { return d.nodes }

// Len returns the number of nodes (fragments).
func (d *Document) Len() int { return len(d.nodes) }

// IsAncestorOrSelf reports whether a is an ancestor of b or a == b, i.e.
// whether the fragment rooted at b belongs to Frag(a). Both nodes must
// belong to the same document for a true result.
func IsAncestorOrSelf(a, b *Node) bool {
	if a == b {
		return true
	}
	for p := b.parent; p != nil; p = p.parent {
		if p == a {
			return true
		}
	}
	return false
}

// VerticalNeighbors reports whether a and b are vertical neighbours per
// Definition 2.2: one is a fragment of the other (ancestor-or-self in
// either direction).
func VerticalNeighbors(a, b *Node) bool {
	return IsAncestorOrSelf(a, b) || IsAncestorOrSelf(b, a)
}

// PosLen returns |pos(d, f)| — the length of the Dewey path of f relative
// to ancestor d — and whether f ∈ Frag(d).
func PosLen(d, f *Node) (int, bool) {
	if !IsAncestorOrSelf(d, f) {
		return 0, false
	}
	return f.Depth() - d.Depth(), true
}

// FragmentText concatenates the text of the fragment rooted at n, in
// document order, separated by single spaces.
func FragmentText(n *Node) string {
	var parts []string
	var walk func(*Node)
	walk = func(m *Node) {
		if s := strings.TrimSpace(m.Text); s != "" {
			parts = append(parts, s)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.Join(parts, " ")
}

// ParseXML parses an XML document into a tree. Element names become node
// names; character data becomes the containing node's text; attributes
// become child nodes named "@attr". The root node receives the given URI,
// every other node a derived Dewey URI.
func ParseXML(uri string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("doc: parsing XML for %q: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			for _, attr := range t.Attr {
				n.Children = append(n.Children, &Node{
					Name: "@" + attr.Name.Local,
					Text: attr.Value,
				})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("doc: multiple roots in XML for %q", uri)
				}
				root = n
				n.URI = uri
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("doc: unbalanced XML for %q", uri)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				s := strings.TrimSpace(string(t))
				if s != "" {
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += s
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("doc: empty XML for %q", uri)
	}
	return New(root)
}

// ParseJSON parses a JSON value into a tree. Objects map each key to a
// child node named after the key (keys are visited in sorted order so the
// tree is deterministic); arrays map each element to a child named "item";
// scalars become text content.
func ParseJSON(uri string, r io.Reader) (*Document, error) {
	var v any
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("doc: parsing JSON for %q: %w", uri, err)
	}
	root := &Node{URI: uri, Name: "root"}
	appendJSON(root, v)
	return New(root)
}

func appendJSON(n *Node, v any) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := &Node{Name: k}
			appendJSON(c, t[k])
			n.Children = append(n.Children, c)
		}
	case []any:
		for _, e := range t {
			c := &Node{Name: "item"}
			appendJSON(c, e)
			n.Children = append(n.Children, c)
		}
	case string:
		n.Text = t
	case json.Number:
		n.Text = t.String()
	case bool:
		n.Text = strconv.FormatBool(t)
	case nil:
		// null: empty node
	}
}
