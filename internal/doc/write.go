package doc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// WriteXML serialises a document back to XML, inverting ParseXML:
// "@attr" children become attributes, node text becomes character data.
// Keyword sets are derived data and are not serialised. The output parses
// back to a structurally identical document (URIs are regenerated in
// Dewey form from the root URI).
func (d *Document) WriteXML(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := writeNode(enc, d.root); err != nil {
		return fmt.Errorf("doc: writing XML for %q: %w", d.URI(), err)
	}
	if err := enc.Flush(); err != nil {
		return fmt.Errorf("doc: writing XML for %q: %w", d.URI(), err)
	}
	return nil
}

func writeNode(enc *xml.Encoder, n *Node) error {
	start := xml.StartElement{Name: xml.Name{Local: n.Name}}
	var elementChildren []*Node
	for _, c := range n.Children {
		if strings.HasPrefix(c.Name, "@") && len(c.Children) == 0 {
			start.Attr = append(start.Attr, xml.Attr{
				Name:  xml.Name{Local: c.Name[1:]},
				Value: c.Text,
			})
			continue
		}
		elementChildren = append(elementChildren, c)
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Text != "" {
		if err := enc.EncodeToken(xml.CharData(n.Text)); err != nil {
			return err
		}
	}
	for _, c := range elementChildren {
		if err := writeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(xml.EndElement{Name: start.Name})
}
