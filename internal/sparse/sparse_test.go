package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildSumsDuplicatesAndDropsZeros(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 1, 0.5)
	b.Add(0, 1, 0.25)
	b.Add(1, 2, 1)
	b.Add(2, 0, 0.5)
	b.Add(2, 0, -0.5) // cancels to zero → dropped
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	d := m.Dense()
	if d[0][1] != 0.75 || d[1][2] != 1 || d[2][0] != 0 {
		t.Fatalf("dense = %v", d)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range entry")
		}
	}()
	b.Add(0, 2, 1)
}

func TestRowIterationSortedColumns(t *testing.T) {
	b := NewBuilder(4)
	b.Add(1, 3, 0.3)
	b.Add(1, 0, 0.1)
	b.Add(1, 2, 0.2)
	m := b.Build()
	var cols []int
	m.Row(1, func(c int, v float64) { cols = append(cols, c) })
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Fatalf("columns not sorted: %v", cols)
		}
	}
	if got := m.RowSum(1); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("RowSum = %v, want 0.6", got)
	}
}

func TestPropagateTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		for e := 0; e < n*2; e++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.Float64())
		}
		m := b.Build()
		dense := m.Dense()

		x := make([]float64, n)
		var active []int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				x[i] = rng.Float64()
				active = append(active, int32(i))
			}
		}
		out := make([]float64, n)
		scratch := make([]bool, n)
		nz := m.PropagateT(x, active, out, scratch)

		want := make([]float64, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want[c] += x[r] * dense[r][c]
			}
		}
		for c := 0; c < n; c++ {
			if math.Abs(out[c]-want[c]) > 1e-12 {
				t.Fatalf("trial %d: out[%d] = %v, want %v", trial, c, out[c], want[c])
			}
		}
		// Every reported non-zero must actually be potentially non-zero,
		// and every truly non-zero entry must be reported.
		reported := make(map[int32]bool, len(nz))
		for _, c := range nz {
			if reported[c] {
				t.Fatalf("trial %d: duplicate index %d in result", trial, c)
			}
			reported[c] = true
		}
		for c := 0; c < n; c++ {
			if want[c] != 0 && !reported[int32(c)] {
				t.Fatalf("trial %d: non-zero column %d not reported", trial, c)
			}
		}
		// Scratch must be fully reset.
		for i, s := range scratch {
			if s {
				t.Fatalf("trial %d: scratch[%d] not reset", trial, i)
			}
		}
	}
}

func TestPropagateTRangeCoversSameMass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	b := NewBuilder(n)
	for e := 0; e < 120; e++ {
		b.Add(rng.Intn(n), rng.Intn(n), rng.Float64())
	}
	m := b.Build()

	x := make([]float64, n)
	var active []int32
	for i := 0; i < n; i += 2 {
		x[i] = rng.Float64()
		active = append(active, int32(i))
	}

	whole := make([]float64, n)
	scratch := make([]bool, n)
	m.PropagateT(x, active, whole, scratch)

	// Split the active set across two "workers" and sum their outputs.
	mid := len(active) / 2
	part1 := make([]float64, n)
	part2 := make([]float64, n)
	m.PropagateTRange(x, active, 0, mid, part1)
	m.PropagateTRange(x, active, mid, len(active), part2)
	for c := 0; c < n; c++ {
		if math.Abs(part1[c]+part2[c]-whole[c]) > 1e-12 {
			t.Fatalf("column %d: split %v+%v != whole %v", c, part1[c], part2[c], whole[c])
		}
	}
}

func TestZeroVec(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	ZeroVec(x, []int32{0, 2})
	if x[0] != 0 || x[1] != 2 || x[2] != 0 || x[3] != 4 {
		t.Fatalf("ZeroVec result = %v", x)
	}
}

// Property: MulVec against a straightforward dense implementation.
func TestQuickMulVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		b := NewBuilder(n)
		for e := 0; e < n+rng.Intn(3*n); e++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
		}
		m := b.Build()
		dense := m.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		for r := 0; r < n; r++ {
			var want float64
			for c := 0; c < n; c++ {
				want += dense[r][c] * x[c]
			}
			if math.Abs(got[r]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPropagateT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	bd := NewBuilder(n)
	for e := 0; e < n*8; e++ {
		bd.Add(rng.Intn(n), rng.Intn(n), rng.Float64())
	}
	m := bd.Build()
	x := make([]float64, n)
	var active []int32
	for i := 0; i < n; i += 10 {
		x[i] = rng.Float64()
		active = append(active, int32(i))
	}
	out := make([]float64, n)
	scratch := make([]bool, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nz := m.PropagateT(x, active, out, scratch)
		ZeroVec(out, nz)
	}
}

// TestBuildHubRow pins the hub-row sort fallback: rows longer than the
// insertion-sort threshold must still come out with strictly ascending,
// duplicate-summed columns.
func TestBuildHubRow(t *testing.T) {
	const n = 4 * sortInsertionMax
	b := NewBuilder(n)
	// A hub row touching every column in reverse order, with duplicates
	// to exercise the accumulator.
	for c := n - 1; c >= 0; c-- {
		b.Add(0, c, float64(c))
		if c%3 == 0 {
			b.Add(0, c, 1)
		}
	}
	b.Add(1, 5, 2) // a short row keeps the insertion-sort path covered
	m := b.Build()
	var prev int = -1
	got := 0
	m.Row(0, func(col int, val float64) {
		if col <= prev {
			t.Fatalf("hub row columns out of order: %d after %d", col, prev)
		}
		want := float64(col)
		if col%3 == 0 {
			want++
		}
		if val != want {
			t.Fatalf("hub row value at %d = %v, want %v", col, val, want)
		}
		prev = col
		got++
	})
	if got != n {
		t.Fatalf("hub row has %d entries, want %d", got, n)
	}
}
