// Package sparse provides the compressed-sparse-row matrix and the
// vector-propagation kernel used to explore the social graph. The paper's
// implementation section (§5.2) replaces the borderPath table by the vector
//
//	borderProx(v, n) = Σ_{p ∈ u⇝v, |p|=n} prox→(p) / γⁿ
//
// computed by repeated multiplication of a "distance" matrix with the
// previous border vector; this package supplies exactly that primitive.
package sparse

import (
	"fmt"
	"slices"
)

// Matrix is an immutable square sparse matrix in CSR layout.
type Matrix struct {
	n      int
	rowPtr []int32
	col    []int32
	val    []float64
}

// Builder accumulates (row, col, value) entries; duplicate coordinates are
// summed.
type Builder struct {
	n       int
	rows    [][]entry
	entries int
}

type entry struct {
	col int32
	val float64
}

// NewBuilder returns a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rows: make([][]entry, n)}
}

// Add accumulates val at (row, col).
func (b *Builder) Add(row, col int, val float64) {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: entry (%d,%d) outside %d×%d matrix", row, col, b.n, b.n))
	}
	b.rows[row] = append(b.rows[row], entry{col: int32(col), val: val})
	b.entries++
}

// Build produces the CSR matrix. Duplicate coordinates are summed;
// explicit zeros are dropped.
func (b *Builder) Build() *Matrix {
	m := &Matrix{
		n:      b.n,
		rowPtr: make([]int32, b.n+1),
		col:    make([]int32, 0, b.entries),
		val:    make([]float64, 0, b.entries),
	}
	// Per-row merge via a scratch accumulator indexed by column.
	acc := make(map[int32]float64)
	for r, row := range b.rows {
		clear(acc)
		for _, e := range row {
			acc[e.col] += e.val
		}
		cols := make([]int32, 0, len(acc))
		for c, v := range acc {
			if v != 0 {
				cols = append(cols, c)
			}
		}
		// Sort columns for cache-friendly access and determinism.
		sortInt32(cols)
		for _, c := range cols {
			m.col = append(m.col, c)
			m.val = append(m.val, acc[c])
		}
		m.rowPtr[r+1] = int32(len(m.col))
	}
	return m
}

// Raw exposes the CSR arrays (dimension, row pointers, column indices,
// values) for serialisation. The slices are shared with the matrix and
// must not be modified.
func (m *Matrix) Raw() (n int, rowPtr, col []int32, val []float64) {
	return m.n, m.rowPtr, m.col, m.val
}

// FromRaw reconstructs a matrix from CSR arrays as returned by Raw. The
// slices are retained. It validates the CSR invariants so a corrupt
// serialisation cannot produce out-of-bounds panics later.
func FromRaw(n int, rowPtr, col []int32, val []float64) (*Matrix, error) {
	if n < 0 || len(rowPtr) != n+1 {
		return nil, fmt.Errorf("sparse: rowPtr length %d for dimension %d", len(rowPtr), n)
	}
	if len(col) != len(val) {
		return nil, fmt.Errorf("sparse: %d columns but %d values", len(col), len(val))
	}
	if rowPtr[0] != 0 || int(rowPtr[n]) != len(col) {
		return nil, fmt.Errorf("sparse: rowPtr endpoints [%d, %d] for %d entries", rowPtr[0], rowPtr[n], len(col))
	}
	for r := 0; r < n; r++ {
		if rowPtr[r] > rowPtr[r+1] {
			return nil, fmt.Errorf("sparse: decreasing rowPtr at row %d", r)
		}
	}
	for _, c := range col {
		if c < 0 || int(c) >= n {
			return nil, fmt.Errorf("sparse: column %d outside %d×%d matrix", c, n, n)
		}
	}
	return &Matrix{n: n, rowPtr: rowPtr, col: col, val: val}, nil
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.col) }

// Row calls f for every stored entry of the given row.
func (m *Matrix) Row(r int, f func(col int, val float64)) {
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		f(int(m.col[i]), m.val[i])
	}
}

// RowSum returns the sum of the entries of a row.
func (m *Matrix) RowSum(r int) float64 {
	var s float64
	for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
		s += m.val[i]
	}
	return s
}

// PropagateT computes out = xᵀ·M restricted to the rows listed in active
// (the indices where x is non-zero): out[c] = Σ_r x[r]·M[r][c].
//
// out must be zeroed by the caller (ZeroVec) and have length N. The return
// value lists the indices of the non-zero entries of out, in no particular
// order; scratch (a []bool of length N, all false) is used to deduplicate
// and is reset before returning.
func (m *Matrix) PropagateT(x []float64, active []int32, out []float64, scratch []bool) []int32 {
	var next []int32
	for _, r := range active {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.col[i]
			out[c] += xr * m.val[i]
			if !scratch[c] {
				scratch[c] = true
				next = append(next, c)
			}
		}
	}
	for _, c := range next {
		scratch[c] = false
	}
	return next
}

// PropagateTRange is PropagateT over active[lo:hi] without deduplication
// bookkeeping; used by the parallel exploration where each worker owns a
// private output vector. Returns the columns touched (with duplicates).
func (m *Matrix) PropagateTRange(x []float64, active []int32, lo, hi int, out []float64) []int32 {
	var touched []int32
	for _, r := range active[lo:hi] {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.col[i]
			out[c] += xr * m.val[i]
			touched = append(touched, c)
		}
	}
	return touched
}

// MulVec computes out = M·x densely (used by tests as an oracle).
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.n)
	for r := 0; r < m.n; r++ {
		var s float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.val[i] * x[m.col[i]]
		}
		out[r] = s
	}
	return out
}

// Dense materialises the matrix (tests only; O(n²) memory).
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.n)
	for r := range d {
		d[r] = make([]float64, m.n)
		m.Row(r, func(c int, v float64) { d[r][c] = v })
	}
	return d
}

// ZeroVec zeroes exactly the listed indices of x (cheaper than clearing
// the whole vector between sparse iterations).
func ZeroVec(x []float64, idx []int32) {
	for _, i := range idx {
		x[i] = 0
	}
}

// sortInsertionMax bounds the insertion sort in sortInt32: above it the
// O(n²) cost on high-degree hub rows overtakes slices.Sort's overhead.
const sortInsertionMax = 32

func sortInt32(a []int32) {
	// Insertion sort for typical short rows (node out-degrees); avoids
	// the generic-sort overhead on the hot build path. Hub rows fall back
	// to the O(n log n) standard sort.
	if len(a) > sortInsertionMax {
		slices.Sort(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
