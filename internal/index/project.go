package index

import (
	"fmt"

	"s3/internal/graph"
)

// Project returns the connection index restricted to the components the
// projected instance owns: per keyword, only the events anchored in an
// owned component are kept (keywords with no surviving event are
// dropped). Every connection of a candidate document lives in the
// candidate's own component, so a projected index contains exactly the
// information needed to score that shard's candidates — and its events,
// component tables and per-component bounds are identical to the
// corresponding slices of the full index, which is what makes sharded
// search answer-equivalent to unsharded search.
//
// The projected instance must be a projection of the index's instance
// (same node numbering); an unprojected instance yields a full copy.
func (ix *Index) Project(proj *graph.Instance) (*Index, error) {
	if proj.NumNodes() != ix.in.NumNodes() {
		return nil, fmt.Errorf("index: projection has %d nodes, index instance %d", proj.NumNodes(), ix.in.NumNodes())
	}
	var postings []RawPosting
	for _, p := range ix.Raw() {
		var evs []Event
		for _, ev := range p.Events {
			if proj.OwnsComponent(ix.in.CompOf(ev.Frag)) {
				evs = append(evs, ev)
			}
		}
		if len(evs) > 0 {
			postings = append(postings, RawPosting{Kw: p.Kw, Events: evs})
		}
	}
	out, err := FromRaw(proj, postings)
	if err != nil {
		return nil, fmt.Errorf("index: projecting: %w", err)
	}
	return out, nil
}
