// Package index precomputes the connection sets con(d, k) of the paper
// (§3.2). A connection of document d to keyword k is a tuple
// (type, f, src) with f ∈ Frag(d); the index stores each connection once as
// an *event* anchored at its fragment f — the tuple then applies to every
// ancestor-or-self d of f, with structural damping η^|pos(d,f)| applied by
// the scorer.
//
// Events arise from four rules, computed to a set-inclusion fixpoint:
//
//  1. containment — fragment f contains k: (S3:contains, f, d) ∈ con(d,k);
//     the source of a containment connection is the candidate d itself and
//     is therefore resolved dynamically by the scorer (Src = NoNID here);
//  2. tags — a tag by src carrying keyword k on fragment f yields
//     (S3:relatedTo, f, src); connections of higher-level tags (tags on
//     tags, R4) flow down the subject chain to the tagged fragment;
//  3. endorsements — a keyword-less tag by src on x inherits x's
//     connections with src as the new source (keeping the original
//     fragment, as in the paper's u5 example);
//  4. comments — if comment c on fragment f has a connection (t, f', src')
//     to k, every ancestor of f gains (S3:commentsOn, f, src'); for
//     containment connections of c the carried source is c's root (the
//     paper's d2 example). Comment chains propagate transitively; cycles
//     are tolerated (the fixpoint terminates because events form a set).
package index

import (
	"sort"

	"s3/internal/dict"
	"s3/internal/graph"
)

// ConnType is the type component of a connection tuple.
type ConnType uint8

const (
	// Contains connections come from rule 1; their source is the candidate
	// document itself.
	Contains ConnType = iota
	// RelatedTo connections come from tags and endorsements (rules 2-3).
	RelatedTo
	// CommentsOn connections come from comment propagation (rule 4).
	CommentsOn
)

func (t ConnType) String() string {
	switch t {
	case Contains:
		return "S3:contains"
	case RelatedTo:
		return "S3:relatedTo"
	case CommentsOn:
		return "S3:commentsOn"
	default:
		return "ConnType(?)"
	}
}

// Event is one connection anchored at fragment Frag: the tuple
// (Type, Frag, Src) belongs to con(d, k) for every d with Frag ∈ Frag(d).
// Src is graph.NoNID for Contains events (the source is d itself).
type Event struct {
	Frag graph.NID
	Src  graph.NID
	Type ConnType
}

// kwList holds the events of one keyword sorted by component id, with the
// aligned comps slice enabling binary-searched per-component slicing.
type kwList struct {
	evs   []Event
	comps []int32
}

// Index is the frozen connection index of an instance. It is immutable
// and safe for concurrent readers.
type Index struct {
	in        *graph.Instance
	byKw      map[dict.ID]*kwList
	compsByKw map[dict.ID][]int32
	// maxCompEvents[k] = max over components of the number of events of k
	// in that component; since every connection of a single candidate d
	// lives in d's component and η ≤ 1, this bounds the connection mass
	// Σ η^|pos| of any candidate for k (used for the §4 threshold).
	maxCompEvents map[dict.ID]int
}

type eventKey struct {
	kw   dict.ID
	frag graph.NID
	src  graph.NID
	typ  ConnType
}

type tagEntry struct {
	kw   dict.ID
	frag graph.NID
	src  graph.NID
}

type kwEvent struct {
	kw dict.ID
	ev Event
}

// Build computes the connection fixpoint for an instance.
func Build(in *graph.Instance) *Index {
	b := &ixBuilder{
		in:          in,
		seen:        make(map[eventKey]struct{}),
		byKw:        make(map[dict.ID][]Event),
		perDoc:      make(map[graph.NID][]kwEvent),
		tagCon:      make(map[graph.NID][]tagEntry),
		tagSeenFull: make(map[tagEntryKey]struct{}),
	}
	b.run()
	return b.freeze()
}

type ixBuilder struct {
	in     *graph.Instance
	seen   map[eventKey]struct{}
	byKw   map[dict.ID][]Event
	perDoc map[graph.NID][]kwEvent // doc root → events anchored in that doc

	tagCon      map[graph.NID][]tagEntry
	tagSeenFull map[tagEntryKey]struct{}

	// cursors for incremental pulls during the fixpoint
	commentCursor map[int]int       // comment edge index → perDoc offset
	endorseCursor map[graph.NID]int // endorsement tag → offset (perDoc or subject tagCon)
	flowCursor    map[graph.NID]int // tag → offset into its own tagCon already flowed out
	changed       bool
}

func (b *ixBuilder) addEvent(kw dict.ID, ev Event) {
	k := eventKey{kw: kw, frag: ev.Frag, src: ev.Src, typ: ev.Type}
	if _, dup := b.seen[k]; dup {
		return
	}
	b.seen[k] = struct{}{}
	b.byKw[kw] = append(b.byKw[kw], ev)
	root := b.in.DocRootOf(ev.Frag)
	b.perDoc[root] = append(b.perDoc[root], kwEvent{kw: kw, ev: ev})
	b.changed = true
}

// tagEntryKey dedups (tag, connection entry) pairs during the fixpoint.
type tagEntryKey struct {
	tag  graph.NID
	kw   dict.ID
	frag graph.NID
	src  graph.NID
}

func (b *ixBuilder) addTagEntry(tag graph.NID, e tagEntry) {
	key := tagEntryKey{tag: tag, kw: e.kw, frag: e.frag, src: e.src}
	if _, dup := b.tagSeenFull[key]; dup {
		return
	}
	b.tagSeenFull[key] = struct{}{}
	b.tagCon[tag] = append(b.tagCon[tag], e)
	b.changed = true
}

func (b *ixBuilder) run() {
	in := b.in

	// Rule 1: containment events.
	for _, root := range in.DocRoots() {
		var nodes []graph.NID
		nodes = in.SubtreeOf(root, nodes)
		for _, n := range nodes {
			for _, kw := range dedupe(in.KeywordsOf(n)) {
				b.addEvent(kw, Event{Frag: n, Src: graph.NoNID, Type: Contains})
			}
		}
	}

	// Rule 2 base: keyword tags contribute (kw, φ(tag), author) where
	// φ(tag) is the document node at the bottom of the subject chain.
	for _, tag := range in.Tags() {
		ti, _ := in.TagInfoOf(tag)
		if ti.Keyword == dict.NoID {
			continue
		}
		b.addTagEntry(tag, tagEntry{kw: ti.Keyword, frag: b.bottomFragment(tag), src: ti.Author})
	}

	b.commentCursor = make(map[int]int)
	b.endorseCursor = make(map[graph.NID]int)
	b.flowCursor = make(map[graph.NID]int)

	// Fixpoint: endorsement inheritance, tag-chain flow and comment
	// propagation feed each other.
	for {
		b.changed = false
		b.stepTags()
		b.stepComments()
		if !b.changed {
			break
		}
	}
}

// bottomFragment walks the subject chain of a tag down to a document node.
func (b *ixBuilder) bottomFragment(tag graph.NID) graph.NID {
	cur := tag
	for b.in.KindOf(cur) == graph.KindTag {
		ti, _ := b.in.TagInfoOf(cur)
		cur = ti.Subject
	}
	return cur
}

func (b *ixBuilder) stepTags() {
	in := b.in
	for _, tag := range in.Tags() {
		ti, _ := in.TagInfoOf(tag)

		// Rule 3: endorsements inherit the subject's connections with the
		// endorser as source.
		if ti.Keyword == dict.NoID {
			if in.KindOf(ti.Subject) == graph.KindDocNode {
				root := in.DocRootOf(ti.Subject)
				list := b.perDoc[root]
				for i := b.endorseCursor[tag]; i < len(list); i++ {
					ke := list[i]
					if !in.IsAncestorOrSelf(ti.Subject, ke.ev.Frag) {
						continue
					}
					b.addTagEntry(tag, tagEntry{kw: ke.kw, frag: ke.ev.Frag, src: ti.Author})
				}
				b.endorseCursor[tag] = len(list)
			} else { // endorsement of a tag
				list := b.tagCon[ti.Subject]
				for i := b.endorseCursor[tag]; i < len(list); i++ {
					e := list[i]
					b.addTagEntry(tag, tagEntry{kw: e.kw, frag: e.frag, src: ti.Author})
				}
				b.endorseCursor[tag] = len(list)
			}
		}

		// Flow this tag's connections outwards: to the tagged fragment's
		// ancestors (as events) if the subject is a document node, or into
		// the subject tag (higher-level tags add their connections to the
		// thing they annotate).
		list := b.tagCon[tag]
		for i := b.flowCursor[tag]; i < len(list); i++ {
			e := list[i]
			if in.KindOf(ti.Subject) == graph.KindDocNode {
				b.addEvent(e.kw, Event{Frag: e.frag, Src: e.src, Type: RelatedTo})
			} else {
				b.addTagEntry(ti.Subject, e)
			}
		}
		b.flowCursor[tag] = len(list)
	}
}

func (b *ixBuilder) stepComments() {
	in := b.in
	for ci, ce := range in.Comments() {
		list := b.perDoc[ce.Comment] // the comment is a document root
		for i := b.commentCursor[ci]; i < len(list); i++ {
			ke := list[i]
			src := ke.ev.Src
			if ke.ev.Type == Contains {
				// The source of a containment connection of the comment is
				// the comment document itself.
				src = ce.Comment
			}
			b.addEvent(ke.kw, Event{Frag: ce.Target, Src: src, Type: CommentsOn})
		}
		b.commentCursor[ci] = len(list)
	}
}

func (b *ixBuilder) freeze() *Index {
	in := b.in
	ix := &Index{
		in:            in,
		byKw:          make(map[dict.ID]*kwList, len(b.byKw)),
		compsByKw:     make(map[dict.ID][]int32, len(b.byKw)),
		maxCompEvents: make(map[dict.ID]int, len(b.byKw)),
	}
	for kw, evs := range b.byKw {
		sort.Slice(evs, func(i, j int) bool {
			ci, cj := in.CompOf(evs[i].Frag), in.CompOf(evs[j].Frag)
			if ci != cj {
				return ci < cj
			}
			if evs[i].Frag != evs[j].Frag {
				return evs[i].Frag < evs[j].Frag
			}
			if evs[i].Type != evs[j].Type {
				return evs[i].Type < evs[j].Type
			}
			return evs[i].Src < evs[j].Src
		})
		comps := make([]int32, len(evs))
		var uniq []int32
		maxRun, run := 0, 0
		for i, e := range evs {
			comps[i] = in.CompOf(e.Frag)
			if i == 0 || comps[i] != comps[i-1] {
				uniq = append(uniq, comps[i])
				run = 0
			}
			run++
			if run > maxRun {
				maxRun = run
			}
		}
		ix.byKw[kw] = &kwList{evs: evs, comps: comps}
		ix.compsByKw[kw] = uniq
		ix.maxCompEvents[kw] = maxRun
	}
	return ix
}

func dedupe(ids []dict.ID) []dict.ID {
	if len(ids) < 2 {
		return ids
	}
	seen := make(map[dict.ID]struct{}, len(ids))
	out := ids[:0:0]
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// Keywords returns the indexed keywords in ascending id order.
func (ix *Index) Keywords() []dict.ID {
	out := make([]dict.ID, 0, len(ix.byKw))
	for kw := range ix.byKw {
		out = append(out, kw)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Events returns all events of an explicit keyword, sorted by component.
func (ix *Index) Events(k dict.ID) []Event {
	if l := ix.byKw[k]; l != nil {
		return l.evs
	}
	return nil
}

// EventsInComp returns the events of keyword k anchored in the given
// component.
func (ix *Index) EventsInComp(k dict.ID, comp int32) []Event {
	l := ix.byKw[k]
	if l == nil {
		return nil
	}
	lo := sort.Search(len(l.comps), func(i int) bool { return l.comps[i] >= comp })
	hi := sort.Search(len(l.comps), func(i int) bool { return l.comps[i] > comp })
	return l.evs[lo:hi]
}

// Comps returns the sorted component ids containing at least one event of
// keyword k.
func (ix *Index) Comps(k dict.ID) []int32 { return ix.compsByKw[k] }

// MaxCompEvents returns the maximum number of events of k within a single
// component — an upper bound on |con(d, k)| for any candidate d.
func (ix *Index) MaxCompEvents(k dict.ID) int { return ix.maxCompEvents[k] }

// CompsForGroups intersects, across keyword groups (each group being the
// semantic extension of one query keyword), the unions of components
// matching the group. A returned component contains at least one event for
// every query keyword — the §5.2 pruning grain.
func (ix *Index) CompsForGroups(groups [][]dict.ID) []int32 {
	if len(groups) == 0 {
		return nil
	}
	counts := make(map[int32]int)
	for _, group := range groups {
		inGroup := make(map[int32]struct{})
		for _, k := range group {
			for _, c := range ix.Comps(k) {
				inGroup[c] = struct{}{}
			}
		}
		for c := range inGroup {
			counts[c]++
		}
	}
	var out []int32
	for c, n := range counts {
		if n == len(groups) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CandidatesInComp returns the document nodes d of the component such that
// con(d, k) is non-empty for every query keyword (groups are extensions,
// as in CompsForGroups): for every group some event's fragment lies in d's
// subtree. Result is sorted.
func (ix *Index) CandidatesInComp(comp int32, groups [][]dict.ID) []graph.NID {
	counts := make(map[graph.NID]int)
	for _, group := range groups {
		covered := make(map[graph.NID]struct{})
		for _, k := range group {
			for _, ev := range ix.EventsInComp(k, comp) {
				for _, d := range ix.in.AncestorsOrSelf(ev.Frag) {
					covered[d] = struct{}{}
				}
			}
		}
		for d := range covered {
			counts[d]++
		}
	}
	var out []graph.NID
	for d, n := range counts {
		if n == len(groups) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConOf reconstructs con(d, k') for one explicit keyword (diagnostics and
// tests; the scorer works from events directly).
func (ix *Index) ConOf(d graph.NID, k dict.ID) []Event {
	comp := ix.in.CompOf(d)
	var out []Event
	for _, ev := range ix.EventsInComp(k, comp) {
		if ix.in.IsAncestorOrSelf(d, ev.Frag) {
			out = append(out, ev)
		}
	}
	return out
}

// NumEvents returns the total number of indexed events.
func (ix *Index) NumEvents() int {
	total := 0
	for _, l := range ix.byKw {
		total += len(l.evs)
	}
	return total
}
