package index

import (
	"testing"

	"s3/internal/dict"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/text"
)

// figure1 builds the motivating example of the paper (Figure 1):
//
//	d0 (posted by u0) has fragments d0.3.2 and d0.5.1;
//	d1 (posted by u2) replies to d0 and contains "ms" and "alberta";
//	d2 (posted by u3) comments on d0.3.2; its fragment d2.1 contains
//	  "university";
//	u4 tags d0.5.1 with "university";
//	the ontology states ms ≺sc degree.
func figure1(t *testing.T) (*graph.Instance, *Index) {
	t.Helper()
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	for _, u := range []string{"u0", "u1", "u2", "u3", "u4", "u5"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	b.AddOntologyTriple("ms", "rdfs:subClassOf", "degree")

	d0 := &doc.Node{URI: "d0", Name: "article", Children: []*doc.Node{
		{Name: "sec"}, {Name: "sec"},
		{Name: "sec", Children: []*doc.Node{{Name: "par"}, {Name: "par"}}}, // d0.3.2
		{Name: "sec"},
		{Name: "sec", Children: []*doc.Node{{Name: "par", Keywords: []string{"opportunity"}}}}, // d0.5.1
	}}
	d1 := &doc.Node{URI: "d1", Name: "reply", Keywords: []string{"ms", "alberta"}}
	d2 := &doc.Node{URI: "d2", Name: "comment", Children: []*doc.Node{
		{Name: "par", Keywords: []string{"university"}}, // d2.1
	}}
	for _, dn := range []*doc.Node{d0, d1, d2} {
		if err := b.AddDocument(dn); err != nil {
			t.Fatal(err)
		}
	}
	must(t, b.AddPost("d0", "u0"))
	must(t, b.AddPost("d1", "u2"))
	must(t, b.AddPost("d2", "u3"))
	must(t, b.AddComment("d1", "d0", ""))     // d1 replies to d0
	must(t, b.AddComment("d2", "d0.3.2", "")) // d2 comments on d0.3.2
	must(t, b.AddSocial("u1", "u0", 1, ""))   // u1 friend of u0
	must(t, b.AddTag("a", "d0.5.1", "u4", "university", ""))

	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in, Build(in)
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func kwid(t *testing.T, in *graph.Instance, kw string) dict.ID {
	t.Helper()
	id, ok := in.Dict().Lookup(kw)
	if !ok {
		t.Fatalf("keyword %q not in dictionary", kw)
	}
	return id
}

func nidOf(t *testing.T, in *graph.Instance, uri string) graph.NID {
	t.Helper()
	n, ok := in.NIDOf(uri)
	if !ok {
		t.Fatalf("node %q not found", uri)
	}
	return n
}

func hasEvent(evs []Event, typ ConnType, frag, src graph.NID) bool {
	for _, e := range evs {
		if e.Type == typ && e.Frag == frag && e.Src == src {
			return true
		}
	}
	return false
}

func TestContainmentConnection(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	d2 := nidOf(t, in, "d2")
	d21 := nidOf(t, in, "d2.1")

	con := ix.ConOf(d2, uni)
	if !hasEvent(con, Contains, d21, graph.NoNID) {
		t.Fatalf("con(d2, university) = %v, want containment due to d2.1", con)
	}
	// The fragment itself is connected too (f ∈ Frag(f)).
	if con21 := ix.ConOf(d21, uni); !hasEvent(con21, Contains, d21, graph.NoNID) {
		t.Fatalf("con(d2.1, university) missing containment")
	}
	// A sibling-free ancestor chain: d0 has no containment connection to
	// "university" (only tag and comment connections).
	for _, e := range ix.ConOf(nidOf(t, in, "d0"), uni) {
		if e.Type == Contains {
			t.Fatalf("d0 must not have a containment connection to university")
		}
	}
}

// The paper's §3.2 example: the tag of u4 creates the connection
// (S3:relatedTo, d0.5.1, u4) between d0 and "university".
func TestTagConnection(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	d0 := nidOf(t, in, "d0")
	d051 := nidOf(t, in, "d0.5.1")
	u4 := nidOf(t, in, "u4")

	if con := ix.ConOf(d0, uni); !hasEvent(con, RelatedTo, d051, u4) {
		t.Fatalf("con(d0, university) = %v, want (relatedTo, d0.5.1, u4)", con)
	}
	if con := ix.ConOf(d051, uni); !hasEvent(con, RelatedTo, d051, u4) {
		t.Fatal("the tagged fragment itself must carry the tag connection")
	}
	// The disjoint fragment d0.3.2 must not be connected through the tag.
	if con := ix.ConOf(nidOf(t, in, "d0.3.2"), uni); hasEvent(con, RelatedTo, d051, u4) {
		t.Fatal("tag connection leaked to a disjoint fragment")
	}
}

// The paper's §3.2 example: since d2 (a comment on d0.3.2) contains
// "university", d0 is related to it through (S3:commentsOn, d0.3.2, d2).
func TestCommentConnection(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	d0 := nidOf(t, in, "d0")
	d032 := nidOf(t, in, "d0.3.2")
	d2 := nidOf(t, in, "d2")

	if con := ix.ConOf(d0, uni); !hasEvent(con, CommentsOn, d032, d2) {
		t.Fatalf("con(d0, university) = %v, want (commentsOn, d0.3.2, d2)", con)
	}
	// The commented fragment itself gets the connection as well.
	if con := ix.ConOf(d032, uni); !hasEvent(con, CommentsOn, d032, d2) {
		t.Fatal("con(d0.3.2, university) missing the comment connection")
	}
}

// Comment chains propagate transitively: d3 comments on d1 which replies
// to d0; a keyword of d3 must reach d0 with d3 as source.
func TestCommentChain(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("u"))
	must(t, b.AddDocument(&doc.Node{URI: "d0", Name: "a"}))
	must(t, b.AddDocument(&doc.Node{URI: "d1", Name: "b"}))
	must(t, b.AddDocument(&doc.Node{URI: "d3", Name: "c", Keywords: []string{"alberta"}}))
	must(t, b.AddComment("d1", "d0", ""))
	must(t, b.AddComment("d3", "d1", ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(in)

	alberta := kwid(t, in, "alberta")
	d0 := nidOf(t, in, "d0")
	d1 := nidOf(t, in, "d1")
	d3 := nidOf(t, in, "d3")

	if con := ix.ConOf(d1, alberta); !hasEvent(con, CommentsOn, d1, d3) {
		t.Fatalf("con(d1, alberta) = %v, want comment connection from d3", con)
	}
	if con := ix.ConOf(d0, alberta); !hasEvent(con, CommentsOn, d0, d3) {
		t.Fatalf("con(d0, alberta) = %v, want chained comment connection with source d3", con)
	}
}

// A comment cycle (a on b, b on a) must terminate and connect both ways.
func TestCommentCycleTerminates(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddDocument(&doc.Node{URI: "a", Keywords: []string{"ka"}}))
	must(t, b.AddDocument(&doc.Node{URI: "b", Keywords: []string{"kb"}}))
	must(t, b.AddComment("a", "b", ""))
	must(t, b.AddComment("b", "a", ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(in) // must not hang
	ka := kwid(t, in, "ka")
	na, nb := nidOf(t, in, "a"), nidOf(t, in, "b")
	if con := ix.ConOf(nb, ka); !hasEvent(con, CommentsOn, nb, na) {
		t.Fatalf("con(b, ka) = %v, want comment connection from a", con)
	}
}

// Endorsements (keyword-less tags) inherit the endorsed node's
// connections with the endorser as source — the paper's u5 example: after
// u5 endorses d0, d0 is related to "university" through
// (S3:relatedTo, d0.5.1, u5).
func TestEndorsementInheritsConnections(t *testing.T) {
	in, ix := buildFigure1WithEndorsement(t)
	uni := kwid(t, in, "university")
	d0 := nidOf(t, in, "d0")
	d051 := nidOf(t, in, "d0.5.1")
	u5 := nidOf(t, in, "u5")

	if con := ix.ConOf(d0, uni); !hasEvent(con, RelatedTo, d051, u5) {
		t.Fatalf("con(d0, university) = %v, want endorsement-derived (relatedTo, d0.5.1, u5)", con)
	}
	// The comment-derived connection is inherited as well, keeping its
	// fragment.
	d032 := nidOf(t, in, "d0.3.2")
	if con := ix.ConOf(d0, uni); !hasEvent(con, RelatedTo, d032, u5) {
		t.Fatal("endorsement did not inherit the comment-derived connection")
	}
}

func buildFigure1WithEndorsement(t *testing.T) (*graph.Instance, *Index) {
	t.Helper()
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	for _, u := range []string{"u0", "u2", "u3", "u4", "u5"} {
		must(t, b.AddUser(u))
	}
	d0 := &doc.Node{URI: "d0", Name: "article", Children: []*doc.Node{
		{Name: "sec"}, {Name: "sec"},
		{Name: "sec", Children: []*doc.Node{{Name: "par"}, {Name: "par"}}},
		{Name: "sec"},
		{Name: "sec", Children: []*doc.Node{{Name: "par"}}},
	}}
	d2 := &doc.Node{URI: "d2", Name: "comment", Children: []*doc.Node{
		{Name: "par", Keywords: []string{"university"}},
	}}
	must(t, b.AddDocument(d0))
	must(t, b.AddDocument(d2))
	must(t, b.AddPost("d0", "u0"))
	must(t, b.AddPost("d2", "u3"))
	must(t, b.AddComment("d2", "d0.3.2", ""))
	must(t, b.AddTag("a", "d0.5.1", "u4", "university", ""))
	must(t, b.AddTag("a5", "d0", "u5", "", "")) // endorsement
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in, Build(in)
}

// Higher-level tags (R4): a tag on a tag contributes its keyword to the
// originally tagged fragment.
func TestHigherLevelTagConnection(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("u1"))
	must(t, b.AddUser("u2"))
	must(t, b.AddDocument(&doc.Node{URI: "d", Name: "x"}))
	must(t, b.AddTag("a1", "d", "u1", "topic", ""))
	must(t, b.AddTag("a2", "a1", "u2", "provenance", "NLP:recognize"))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(in)

	prov := kwid(t, in, "provenance")
	d := nidOf(t, in, "d")
	u2 := nidOf(t, in, "u2")
	if con := ix.ConOf(d, prov); !hasEvent(con, RelatedTo, d, u2) {
		t.Fatalf("con(d, provenance) = %v, want higher-level tag connection", con)
	}
	// The base tag's keyword is present too.
	topic := kwid(t, in, "topic")
	u1 := nidOf(t, in, "u1")
	if con := ix.ConOf(d, topic); !hasEvent(con, RelatedTo, d, u1) {
		t.Fatal("base tag connection missing")
	}
}

// An endorsement of a *tag* boosts the tagged fragment with the endorser
// as source.
func TestEndorsementOfTag(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("u1"))
	must(t, b.AddUser("u2"))
	must(t, b.AddDocument(&doc.Node{URI: "d", Name: "x"}))
	must(t, b.AddTag("a1", "d", "u1", "topic", ""))
	must(t, b.AddTag("a2", "a1", "u2", "", "")) // endorsement of the tag
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(in)
	topic := kwid(t, in, "topic")
	d := nidOf(t, in, "d")
	u2 := nidOf(t, in, "u2")
	if con := ix.ConOf(d, topic); !hasEvent(con, RelatedTo, d, u2) {
		t.Fatalf("con(d, topic) = %v, want endorsement-of-tag connection from u2", con)
	}
}

func TestCompsAndCandidates(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	d0 := nidOf(t, in, "d0")

	comps := ix.Comps(uni)
	if len(comps) != 1 || comps[0] != in.CompOf(d0) {
		t.Fatalf("Comps(university) = %v, want the single d0 component", comps)
	}

	// Single-keyword query: candidates are every node with a university
	// connection: d0, d0.3.2 (comment), d0.3, d0.5, d0.5.1 (tag), d2, d2.1.
	groups := [][]dict.ID{{uni}}
	cands := ix.CandidatesInComp(in.CompOf(d0), groups)
	wantCands := map[string]bool{
		"d0": true, "d0.3": true, "d0.3.2": true, "d0.5": true,
		"d0.5.1": true, "d2": true, "d2.1": true,
	}
	if len(cands) != len(wantCands) {
		t.Fatalf("candidates = %v", uriList(in, cands))
	}
	for _, c := range cands {
		if !wantCands[in.URIOf(c)] {
			t.Fatalf("unexpected candidate %s", in.URIOf(c))
		}
	}

	// Conjunctive query {university, opportunity}: "opportunity" lives in
	// d0.5.1 only, so candidates shrink to ancestors of both.
	opp := kwid(t, in, "opportunity")
	cands = ix.CandidatesInComp(in.CompOf(d0), [][]dict.ID{{uni}, {opp}})
	want2 := map[string]bool{"d0": true, "d0.5": true, "d0.5.1": true}
	if len(cands) != len(want2) {
		t.Fatalf("conjunctive candidates = %v", uriList(in, cands))
	}
	for _, c := range cands {
		if !want2[in.URIOf(c)] {
			t.Fatalf("unexpected conjunctive candidate %s", in.URIOf(c))
		}
	}
}

func TestCompsForGroupsIntersects(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	ms := kwid(t, in, "ms")
	none := in.Dict().Intern("absent-keyword")

	if got := ix.CompsForGroups([][]dict.ID{{uni}, {ms}}); len(got) != 1 {
		t.Fatalf("CompsForGroups(university, ms) = %v, want 1 component", got)
	}
	if got := ix.CompsForGroups([][]dict.ID{{uni}, {none}}); len(got) != 0 {
		t.Fatalf("CompsForGroups with absent keyword = %v, want none", got)
	}
	if got := ix.CompsForGroups(nil); got != nil {
		t.Fatalf("CompsForGroups(nil) = %v, want nil", got)
	}
}

// Semantic extension at query time: Ext(degree) ∋ ms, and d1 contains ms,
// so querying the group {degree, ms} reaches d1's component.
func TestSemanticExtensionGroups(t *testing.T) {
	in, ix := figure1(t)
	degree := in.Ontology().ExtStr("degree")
	if len(degree) < 2 {
		t.Fatalf("Ext(degree) = %d entries, want ≥ 2", len(degree))
	}
	comps := ix.CompsForGroups([][]dict.ID{degree})
	d1 := nidOf(t, in, "d1")
	found := false
	for _, c := range comps {
		if c == in.CompOf(d1) {
			found = true
		}
	}
	if !found {
		t.Fatal("extension group did not reach d1's component")
	}
}

func TestMaxCompEvents(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	// Three university events live in d0's component: containment in d2.1,
	// the tag on d0.5.1 and the comment connection on d0.3.2.
	if got := ix.MaxCompEvents(uni); got != 3 {
		t.Fatalf("MaxCompEvents(university) = %d, want 3", got)
	}
	if got := ix.MaxCompEvents(in.Dict().Intern("missing")); got != 0 {
		t.Fatalf("MaxCompEvents(missing) = %d, want 0", got)
	}
}

func TestEventsInCompSlicing(t *testing.T) {
	in, ix := figure1(t)
	uni := kwid(t, in, "university")
	all := ix.Events(uni)
	comp := in.CompOf(nidOf(t, in, "d0"))
	inComp := ix.EventsInComp(uni, comp)
	if len(inComp) != len(all) {
		t.Fatalf("EventsInComp = %d events, want all %d", len(inComp), len(all))
	}
	if got := ix.EventsInComp(uni, comp+999); len(got) != 0 {
		t.Fatalf("EventsInComp(unknown comp) = %v, want empty", got)
	}
}

func uriList(in *graph.Instance, ns []graph.NID) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = in.URIOf(n)
	}
	return out
}
