package index

import (
	"math/rand"
	"testing"

	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/text"
)

// naiveBuild recomputes the connection events with a deliberately simple
// full-recomputation fixpoint (no cursors, no incremental pulls) directly
// from the §3.2 rules. It serves as an independent oracle for the
// optimised builder.
func naiveBuild(in *graph.Instance) map[dict.ID]map[Event]struct{} {
	type tagEntry struct {
		kw   dict.ID
		frag graph.NID
		src  graph.NID
	}
	events := make(map[dict.ID]map[Event]struct{})
	tagCon := make(map[graph.NID]map[tagEntry]struct{})
	for _, tag := range in.Tags() {
		tagCon[tag] = make(map[tagEntry]struct{})
	}
	addEvent := func(kw dict.ID, ev Event) bool {
		m := events[kw]
		if m == nil {
			m = make(map[Event]struct{})
			events[kw] = m
		}
		if _, dup := m[ev]; dup {
			return false
		}
		m[ev] = struct{}{}
		return true
	}

	// Rule 1 — containment.
	for _, root := range in.DocRoots() {
		var nodes []graph.NID
		nodes = in.SubtreeOf(root, nodes)
		for _, n := range nodes {
			for _, kw := range in.KeywordsOf(n) {
				addEvent(kw, Event{Frag: n, Src: graph.NoNID, Type: Contains})
			}
		}
	}
	bottom := func(tag graph.NID) graph.NID {
		cur := tag
		for in.KindOf(cur) == graph.KindTag {
			ti, _ := in.TagInfoOf(cur)
			cur = ti.Subject
		}
		return cur
	}
	// Rule 2 base — keyword tags.
	for _, tag := range in.Tags() {
		ti, _ := in.TagInfoOf(tag)
		if ti.Keyword != dict.NoID {
			tagCon[tag][tagEntry{kw: ti.Keyword, frag: bottom(tag), src: ti.Author}] = struct{}{}
		}
	}

	for changed := true; changed; {
		changed = false
		// Rule 3 — endorsements inherit; higher-level tags flow.
		for _, tag := range in.Tags() {
			ti, _ := in.TagInfoOf(tag)
			if ti.Keyword == dict.NoID {
				if in.KindOf(ti.Subject) == graph.KindDocNode {
					for kw, m := range events {
						for ev := range m {
							if in.IsAncestorOrSelf(ti.Subject, ev.Frag) {
								e := tagEntry{kw: kw, frag: ev.Frag, src: ti.Author}
								if _, dup := tagCon[tag][e]; !dup {
									tagCon[tag][e] = struct{}{}
									changed = true
								}
							}
						}
					}
				} else {
					for e := range tagCon[ti.Subject] {
						ne := tagEntry{kw: e.kw, frag: e.frag, src: ti.Author}
						if _, dup := tagCon[tag][ne]; !dup {
							tagCon[tag][ne] = struct{}{}
							changed = true
						}
					}
				}
			}
			if in.KindOf(ti.Subject) == graph.KindDocNode {
				for e := range tagCon[tag] {
					if addEvent(e.kw, Event{Frag: e.frag, Src: e.src, Type: RelatedTo}) {
						changed = true
					}
				}
			} else {
				for e := range tagCon[tag] {
					if _, dup := tagCon[ti.Subject][e]; !dup {
						tagCon[ti.Subject][e] = struct{}{}
						changed = true
					}
				}
			}
		}
		// Rule 4 — comments.
		for _, ce := range in.Comments() {
			for kw, m := range events {
				for ev := range m {
					if in.DocRootOf(ev.Frag) != ce.Comment {
						continue
					}
					src := ev.Src
					if ev.Type == Contains {
						src = ce.Comment
					}
					if addEvent(kw, Event{Frag: ce.Target, Src: src, Type: CommentsOn}) {
						changed = true
					}
				}
			}
		}
	}
	return events
}

// The optimised fixpoint must produce exactly the naive oracle's event
// sets on random instances rich in tags-on-tags, endorsements and comment
// chains.
func TestIndexMatchesNaiveOracle(t *testing.T) {
	opts := datagen.DefaultRandomOptions()
	opts.TagDensity = 1.5 // stress tag machinery
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := datagen.RandomSpec(rng, opts)
		in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
		if err != nil {
			t.Fatal(err)
		}
		ix := Build(in)
		want := naiveBuild(in)

		// Every oracle event must be indexed, and vice versa.
		for kw, m := range want {
			got := ix.Events(kw)
			if len(got) != len(m) {
				t.Fatalf("seed %d: keyword %s has %d events, oracle %d",
					seed, in.Dict().String(kw), len(got), len(m))
			}
			for _, ev := range got {
				if _, ok := m[ev]; !ok {
					t.Fatalf("seed %d: spurious event %+v for %s", seed, ev, in.Dict().String(kw))
				}
			}
		}
		// No indexed keyword outside the oracle.
		for _, root := range in.DocRoots() {
			var nodes []graph.NID
			nodes = in.SubtreeOf(root, nodes)
			for _, n := range nodes {
				for _, kw := range in.KeywordsOf(n) {
					if len(ix.Events(kw)) == 0 {
						t.Fatalf("seed %d: contained keyword %s has no events", seed, in.Dict().String(kw))
					}
				}
			}
		}
	}
}
