package index

import (
	"fmt"
	"sort"

	"s3/internal/dict"
	"s3/internal/graph"
)

// RawPosting is the event list of one keyword, the serialisable unit of
// the connection index.
type RawPosting struct {
	Kw     dict.ID
	Events []Event
}

// Raw flattens the index into postings sorted by keyword id (canonical
// order, so serialising is deterministic). Event slices are shared with
// the index and must not be modified.
func (ix *Index) Raw() []RawPosting {
	out := make([]RawPosting, 0, len(ix.byKw))
	for kw, l := range ix.byKw {
		out = append(out, RawPosting{Kw: kw, Events: l.evs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kw < out[j].Kw })
	return out
}

// FromRaw reconstructs an index over a frozen instance from its postings.
// The per-keyword component tables and bounds are re-derived (they are
// cheap linear scans); events are re-sorted with the canonical freeze
// order, so postings may arrive in any order. Cross-references are
// validated against the instance.
func FromRaw(in *graph.Instance, postings []RawPosting) (*Index, error) {
	n := graph.NID(in.NumNodes())
	ix := &Index{
		in:            in,
		byKw:          make(map[dict.ID]*kwList, len(postings)),
		compsByKw:     make(map[dict.ID][]int32, len(postings)),
		maxCompEvents: make(map[dict.ID]int, len(postings)),
	}
	for _, p := range postings {
		if _, dup := ix.byKw[p.Kw]; dup {
			return nil, fmt.Errorf("index: duplicate posting for keyword %d", p.Kw)
		}
		// Copy before sorting: postings may share backing arrays with a
		// live index (Raw documents them as read-only).
		evs := make([]Event, len(p.Events))
		copy(evs, p.Events)
		for _, e := range evs {
			if e.Frag < 0 || e.Frag >= n {
				return nil, fmt.Errorf("index: event fragment %d outside instance of %d nodes", e.Frag, n)
			}
			if e.Src != graph.NoNID && (e.Src < 0 || e.Src >= n) {
				return nil, fmt.Errorf("index: event source %d outside instance of %d nodes", e.Src, n)
			}
			if e.Type > CommentsOn {
				return nil, fmt.Errorf("index: unknown connection type %d", e.Type)
			}
		}
		sort.Slice(evs, func(i, j int) bool {
			ci, cj := in.CompOf(evs[i].Frag), in.CompOf(evs[j].Frag)
			if ci != cj {
				return ci < cj
			}
			if evs[i].Frag != evs[j].Frag {
				return evs[i].Frag < evs[j].Frag
			}
			if evs[i].Type != evs[j].Type {
				return evs[i].Type < evs[j].Type
			}
			return evs[i].Src < evs[j].Src
		})
		comps := make([]int32, len(evs))
		var uniq []int32
		maxRun, run := 0, 0
		for i, e := range evs {
			comps[i] = in.CompOf(e.Frag)
			if i == 0 || comps[i] != comps[i-1] {
				uniq = append(uniq, comps[i])
				run = 0
			}
			run++
			if run > maxRun {
				maxRun = run
			}
		}
		ix.byKw[p.Kw] = &kwList{evs: evs, comps: comps}
		ix.compsByKw[p.Kw] = uniq
		ix.maxCompEvents[p.Kw] = maxRun
	}
	return ix, nil
}
