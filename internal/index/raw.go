package index

import (
	"fmt"
	"sort"

	"s3/internal/dict"
	"s3/internal/graph"
)

// RawPosting is the event list of one keyword, the serialisable unit of
// the connection index.
type RawPosting struct {
	Kw     dict.ID
	Events []Event
}

// Raw flattens the index into postings sorted by keyword id (canonical
// order, so serialising is deterministic). Event slices are shared with
// the index and must not be modified.
func (ix *Index) Raw() []RawPosting {
	out := make([]RawPosting, 0, len(ix.byKw))
	for kw, l := range ix.byKw {
		out = append(out, RawPosting{Kw: kw, Events: l.evs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kw < out[j].Kw })
	return out
}

// Flat is the zero-copy import form of an index: the canonically-ordered
// flat arrays of a v3 snapshot, including the precomputed per-posting
// component summaries (CompOff/CompIDs list each posting's distinct
// components in event order; MaxRuns bounds its longest single-component
// run — the §4 threshold input).
type Flat struct {
	Kws     []dict.ID
	EvOff   []int64
	Events  []Event
	Comps   []int32
	CompOff []int64
	CompIDs []int32
	MaxRuns []int32
}

// FromFlat reconstructs an index over a frozen instance from its flat
// form without copying: every per-keyword list is a sub-slice of the
// supplied arrays (which typically point into a memory mapping — see
// graph.Raw's immutability contract).
//
// FromFlat validates whatever could panic or hang — array lengths,
// offset monotonicity, keyword order, event index bounds — with cheap
// sequential scans, but trusts the *semantic* content of the arrays
// (canonical event order, component summaries): integrity comes from the
// caller's per-section checksums, correctness from the writer. Loaders
// that cannot extend that trust (foreign files, no checksums) should
// rebuild through FromRaw, which re-derives and validates everything.
func FromFlat(in *graph.Instance, f Flat) (*Index, error) {
	nkw := len(f.Kws)
	if err := checkOff(f.EvOff, nkw, len(f.Events), "event"); err != nil {
		return nil, err
	}
	if err := checkOff(f.CompOff, nkw, len(f.CompIDs), "component summary"); err != nil {
		return nil, err
	}
	if len(f.Comps) != len(f.Events) {
		return nil, fmt.Errorf("index: %d component ids for %d events", len(f.Comps), len(f.Events))
	}
	if len(f.MaxRuns) != nkw {
		return nil, fmt.Errorf("index: %d run bounds for %d keywords", len(f.MaxRuns), nkw)
	}
	// Panic-safety scan: fragments and sources are used as node indices
	// by the scorer, so they are bounds-checked. The pass is a branch-free
	// max reduction — uint32(x) folds the negative cases in, and the +1
	// bias maps the NoNID source sentinel (-1) to 0, which every bound
	// accepts; the canonical order and component labels stay trusted.
	var maxFrag, maxSrc1 uint32
	for i := range f.Events {
		if v := uint32(f.Events[i].Frag); v > maxFrag {
			maxFrag = v
		}
		if v := uint32(f.Events[i].Src) + 1; v > maxSrc1 {
			maxSrc1 = v
		}
	}
	n := uint32(in.NumNodes())
	if len(f.Events) > 0 && (maxFrag >= n || maxSrc1 > n) {
		return nil, fmt.Errorf("index: event fragment or source outside instance of %d nodes", n)
	}
	ix := &Index{
		in:            in,
		byKw:          make(map[dict.ID]*kwList, nkw),
		compsByKw:     make(map[dict.ID][]int32, nkw),
		maxCompEvents: make(map[dict.ID]int, nkw),
	}
	lists := make([]kwList, nkw)
	for i, kw := range f.Kws {
		if i > 0 && f.Kws[i-1] >= kw {
			return nil, fmt.Errorf("index: posting keywords out of order at %d", i)
		}
		lo, hi := f.EvOff[i], f.EvOff[i+1]
		lists[i] = kwList{evs: f.Events[lo:hi:hi], comps: f.Comps[lo:hi:hi]}
		ix.byKw[kw] = &lists[i]
		clo, chi := f.CompOff[i], f.CompOff[i+1]
		ix.compsByKw[kw] = f.CompIDs[clo:chi:chi]
		ix.maxCompEvents[kw] = int(f.MaxRuns[i])
	}
	return ix, nil
}

// checkOff validates an n+1-entry offset table spanning [0, total]
// monotonically, which is what makes the sub-slicing above panic-free.
func checkOff(off []int64, n, total int, what string) error {
	if len(off) != n+1 {
		return fmt.Errorf("index: %s offsets have %d entries for %d postings", what, len(off), n)
	}
	if off[0] != 0 || off[n] != int64(total) {
		return fmt.Errorf("index: %s offsets span [%d, %d] for %d entries", what, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("index: decreasing %s offset at posting %d", what, i)
		}
	}
	return nil
}

// FromRaw reconstructs an index over a frozen instance from its postings.
// The per-keyword component tables and bounds are re-derived (they are
// cheap linear scans); events are re-sorted with the canonical freeze
// order, so postings may arrive in any order. Cross-references are
// validated against the instance.
func FromRaw(in *graph.Instance, postings []RawPosting) (*Index, error) {
	n := graph.NID(in.NumNodes())
	ix := &Index{
		in:            in,
		byKw:          make(map[dict.ID]*kwList, len(postings)),
		compsByKw:     make(map[dict.ID][]int32, len(postings)),
		maxCompEvents: make(map[dict.ID]int, len(postings)),
	}
	for _, p := range postings {
		if _, dup := ix.byKw[p.Kw]; dup {
			return nil, fmt.Errorf("index: duplicate posting for keyword %d", p.Kw)
		}
		// Copy before sorting: postings may share backing arrays with a
		// live index (Raw documents them as read-only).
		evs := make([]Event, len(p.Events))
		copy(evs, p.Events)
		for _, e := range evs {
			if e.Frag < 0 || e.Frag >= n {
				return nil, fmt.Errorf("index: event fragment %d outside instance of %d nodes", e.Frag, n)
			}
			if e.Src != graph.NoNID && (e.Src < 0 || e.Src >= n) {
				return nil, fmt.Errorf("index: event source %d outside instance of %d nodes", e.Src, n)
			}
			if e.Type > CommentsOn {
				return nil, fmt.Errorf("index: unknown connection type %d", e.Type)
			}
		}
		sort.Slice(evs, func(i, j int) bool {
			ci, cj := in.CompOf(evs[i].Frag), in.CompOf(evs[j].Frag)
			if ci != cj {
				return ci < cj
			}
			if evs[i].Frag != evs[j].Frag {
				return evs[i].Frag < evs[j].Frag
			}
			if evs[i].Type != evs[j].Type {
				return evs[i].Type < evs[j].Type
			}
			return evs[i].Src < evs[j].Src
		})
		comps := make([]int32, len(evs))
		var uniq []int32
		maxRun, run := 0, 0
		for i, e := range evs {
			comps[i] = in.CompOf(e.Frag)
			if i == 0 || comps[i] != comps[i-1] {
				uniq = append(uniq, comps[i])
				run = 0
			}
			run++
			if run > maxRun {
				maxRun = run
			}
		}
		ix.byKw[p.Kw] = &kwList{evs: evs, comps: comps}
		ix.compsByKw[p.Kw] = uniq
		ix.maxCompEvents[p.Kw] = maxRun
	}
	return ix, nil
}
