package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"s3"
)

// writeSnapFile persists an instance to path (atomically via a temp file
// and rename, the way operators replace live snapshots).
func writeSnapFile(t testing.TB, inst *s3.Instance, path string) {
	t.Helper()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// TestReloadUnderMmap is the lifecycle test for hot reload over memory
// mappings: while searches are in flight on the old mapping, the snapshot
// file is atomically replaced and reloaded several times; every response
// must be bit-identical to a direct search on one of the two instance
// generations, the old file's inode is unlinked by the rename (the old
// mapping keeps serving until its last search finishes), and the whole
// dance is exercised under the race detector by the CI race job.
func TestReloadUnderMmap(t *testing.T) {
	instA := testInstance(t, 60, 240, 1)
	instB := testInstance(t, 60, 240, 2)
	seeker, kw := aQuery(t, instA)
	if !instB.HasUser(seeker) {
		t.Fatal("seeker missing from second generation")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "cur.snap")
	writeSnapFile(t, instA, path)

	loader := func() (s3.Queryable, error) {
		return s3.OpenSnapshot(path, s3.LoadMmap)
	}
	first, err := loader()
	if err != nil {
		t.Fatal(err)
	}
	if first.MappedBytes() == 0 {
		t.Fatal("initial load is not mapped")
	}
	// Result cache off: every request must actually read mapped memory.
	srv := newTestServer(t, Config{Instance: first, Loader: loader, CacheSize: -1})
	h := srv.Handler()

	// The two acceptable answers, bit for bit, rendered through the same
	// HTTP pipeline the concurrent clients use.
	wantA, err := instA.Search(seeker, []string{kw}, s3.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := instB.Search(seeker, []string{kw}, s3.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	matches := func(resp searchResponse, want []s3.Result) bool {
		if len(resp.Results) != len(want) {
			return false
		}
		for i, r := range resp.Results {
			if r.URI != want[i].URI || r.Document != want[i].Document ||
				r.Lower != want[i].Lower || r.Upper != want[i].Upper {
				return false
			}
		}
		return true
	}

	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec, resp := postSearch(t, h, body)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("search failed: %d %s", rec.Code, rec.Body.String())
					return
				}
				if !matches(resp, wantA) && !matches(resp, wantB) {
					errs <- fmt.Sprintf("response matches neither generation: %+v", resp.Results)
					return
				}
			}
		}()
	}

	// Interleave reloads with the searches: replace the snapshot (the
	// rename unlinks the mapped inode), swap generations, repeat.
	generations := []*s3.Instance{instB, instA, instB}
	for _, gen := range generations {
		writeSnapFile(t, gen, path)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("reload failed: %d %s", rec.Code, rec.Body.String())
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if got := srv.Version(); got != uint64(1+len(generations)) {
		t.Errorf("version = %d after %d reloads", got, len(generations))
	}
	if mb := srv.Instance().MappedBytes(); mb == 0 {
		t.Error("served instance is not mapped after reloads")
	}

	// The retired generations release their mappings once their last
	// request finishes; /stats must report the mapped accounting and load
	// time of the live generation.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad /stats body: %v", err)
	}
	if stats.LoadMS < 0 || stats.MappedBytes == 0 {
		t.Errorf("stats report load_ms=%d mapped_bytes=%d", stats.LoadMS, stats.MappedBytes)
	}
}
