package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"s3"
	"s3/internal/dshard"
	"s3/internal/obs"
	"s3/internal/obs/obstest"
	"s3/internal/snap"
)

// scrapeMetrics fetches and parses the handler's /metrics exposition.
func scrapeMetrics(t testing.TB, h http.Handler) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	return obstest.ParseExposition(t, rec.Body.String())
}

// getTraces fetches the handler's /debug/traces ring.
func getTraces(t testing.TB, h http.Handler) []obs.TraceRecord {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", rec.Code)
	}
	var body struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /debug/traces body: %v", err)
	}
	return body.Traces
}

func TestMetricsExposition(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)

	postSearch(t, h, body) // cold
	postSearch(t, h, body) // cached

	samples := scrapeMetrics(t, h)
	obstest.CheckHistogram(t, samples, "s3_http_search_seconds", `outcome="cold"`)
	obstest.CheckHistogram(t, samples, "s3_http_search_seconds", `outcome="cached"`)
	if got := samples[`s3_http_search_seconds_count{outcome="cold"}`]; got < 1 {
		t.Fatalf("cold searches = %v, want >= 1", got)
	}
	if got := samples[`s3_http_search_seconds_count{outcome="cached"}`]; got < 1 {
		t.Fatalf("cached searches = %v, want >= 1", got)
	}
	// The engine-level instruments must have seen the cold search's rounds.
	obstest.CheckHistogram(t, samples, "s3_search_rounds", "")
	obstest.CheckHistogram(t, samples, "s3_search_round_seconds", "")
	if got := samples["s3_search_rounds_count"]; got < 1 {
		t.Fatalf("s3_search_rounds_count = %v, want >= 1", got)
	}
	if got := samples["s3_search_round_seconds_count"]; got < 1 {
		t.Fatalf("s3_search_round_seconds_count = %v, want >= 1", got)
	}
	if got := samples["s3_server_generation"]; got != 1 {
		t.Fatalf("s3_server_generation = %v, want 1", got)
	}
	if got := samples["s3_uptime_seconds"]; got <= 0 {
		t.Fatalf("s3_uptime_seconds = %v, want > 0", got)
	}
	if got := samples["s3_cache_hits_total"]; got < 1 {
		t.Fatalf("s3_cache_hits_total = %v, want >= 1", got)
	}
	if got := samples["s3_http_searches_total"]; got < 1 {
		t.Fatalf("s3_http_searches_total = %v, want >= 1", got)
	}
}

// spanNames collects the names of root's direct children.
func spanNames(root *obs.SpanJSON) map[string]bool {
	out := make(map[string]bool)
	if root == nil {
		return out
	}
	for _, c := range root.Children {
		out[c.Name] = true
	}
	return out
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestTraceAndRequestID(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)

	// Prime the cache with an untraced run: the traced request below must
	// bypass the hit and still run (and trace) a real search.
	postSearch(t, h, body)

	req := httptest.NewRequest("POST", "/search?trace=1", strings.NewReader(body))
	req.Header.Set("X-Request-ID", "my-rid-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced search = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "my-rid-1" {
		t.Fatalf("X-Request-ID echoed %q, want my-rid-1", got)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("?trace=1 request was served from the result cache")
	}
	if !hexID.MatchString(resp.TraceID) {
		t.Fatalf("trace_id = %q, want 16 hex chars", resp.TraceID)
	}
	if resp.Trace == nil || resp.Trace.Name != "search" {
		t.Fatalf("trace root = %+v, want a span named search", resp.Trace)
	}
	kids := spanNames(resp.Trace)
	if !kids["queue"] {
		t.Fatalf("trace root children %v, want a queue span", kids)
	}
	if !kids["round"] {
		t.Fatalf("trace root children %v, want at least one round span", kids)
	}

	// The trace was retained in the ring with the request id attached.
	found := false
	for _, tr := range getTraces(t, h) {
		if tr.TraceID == resp.TraceID {
			found = true
			if tr.RequestID != "my-rid-1" {
				t.Fatalf("ring record request_id = %q, want my-rid-1", tr.RequestID)
			}
			if tr.Spans == nil || tr.Spans.Name != "search" {
				t.Fatalf("ring record lost its span tree: %+v", tr.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not retained in /debug/traces", resp.TraceID)
	}

	// A repeat WITHOUT ?trace=1 hits the cache and carries no trace.
	_, cached := postSearch(t, h, body)
	if !cached.Cached {
		t.Fatal("untraced repeat missed the cache")
	}
	if cached.TraceID != "" || cached.Trace != nil {
		t.Fatal("cached answer leaked a span tree")
	}

	// Without a client-supplied id the server generates one.
	req2 := httptest.NewRequest("POST", "/search", strings.NewReader(body))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if got := rec2.Header().Get("X-Request-ID"); !hexID.MatchString(got) {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", got)
	}
}

// syncBuffer is a goroutine-safe io.Writer for capturing slow-log lines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowLogEmission(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	var buf syncBuffer
	// A 1ns threshold makes every search slow, so one request emits one line.
	s := newTestServer(t, Config{Instance: inst, SlowLog: obs.NewSlowLog(&buf, time.Nanosecond)})
	h := s.Handler()

	req := httptest.NewRequest("POST", "/search",
		strings.NewReader(fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)))
	req.Header.Set("X-Request-ID", "slow-rid")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log wrote %d lines, want 1: %q", len(lines), buf.String())
	}
	var slow obs.SlowRecord
	if err := json.Unmarshal([]byte(lines[0]), &slow); err != nil {
		t.Fatalf("slow log line is not JSON: %v (%q)", err, lines[0])
	}
	if slow.Seeker != seeker || slow.RequestID != "slow-rid" || slow.Outcome != "cold" {
		t.Fatalf("slow record lost fields: %+v", slow)
	}
	if slow.ElapsedMS <= 0 || len(slow.StagesMS) == 0 || !hexID.MatchString(slow.TraceID) {
		t.Fatalf("slow record missing timing breakdown: %+v", slow)
	}

	// Slow searches are retained in the trace ring even without ?trace=1.
	traces := getTraces(t, h)
	if len(traces) != 1 || traces[0].TraceID != slow.TraceID {
		t.Fatalf("slow trace not retained: %+v", traces)
	}
	if got := scrapeMetrics(t, h)["s3_slowlog_emitted_total"]; got != 1 {
		t.Fatalf("s3_slowlog_emitted_total = %v, want 1", got)
	}
}

// TestMetricsConcurrentWithReload hammers /search (some traced) and the
// observability endpoints while the instance hot-swaps underneath — the
// -race job's view of the registry, histogram, and trace-ring paths
// across instrument() re-attachment.
func TestMetricsConcurrentWithReload(t *testing.T) {
	inst := testInstance(t, 40, 160, 5)
	seeker, kw := aQuery(t, inst)
	loader := func() (s3.Queryable, error) { return testInstance(t, 40, 160, 5), nil }
	var buf syncBuffer
	s := newTestServer(t, Config{
		Instance: inst,
		Loader:   loader,
		SlowLog:  obs.NewSlowLog(&buf, time.Nanosecond),
	})
	h := s.Handler()
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				path := "/search"
				if i%5 == g%5 {
					path = "/search?trace=1"
				}
				req := httptest.NewRequest("POST", path, strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("search = %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
		}
	}()
	for r := 0; r < 3; r++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/reload", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d = %d: %s", r, rec.Code, rec.Body.String())
		}
	}
	wg.Wait()

	samples := scrapeMetrics(t, h)
	if got := samples["s3_server_generation"]; got != 4 {
		t.Fatalf("s3_server_generation = %v, want 4 after 3 reloads", got)
	}
	if got := samples["s3_reloads_total"]; got != 3 {
		t.Fatalf("s3_reloads_total = %v, want 3", got)
	}
	// Post-reload searches still feed the engine instruments: the swapped-in
	// instance was re-instrumented before taking traffic.
	before := samples["s3_search_rounds_count"]
	req := httptest.NewRequest("POST", "/search", strings.NewReader(
		fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5,"no_cache":true}`, seeker, kw)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload search = %d", rec.Code)
	}
	if after := scrapeMetrics(t, h)["s3_search_rounds_count"]; after <= before {
		t.Fatalf("s3_search_rounds_count %v -> %v: reloaded instance is not instrumented", before, after)
	}
}

// findSpan walks the tree depth-first for the first span whose name has
// the given prefix.
func findSpan(sp *obs.SpanJSON, prefix string) *obs.SpanJSON {
	if sp == nil {
		return nil
	}
	if strings.HasPrefix(sp.Name, prefix) {
		return sp
	}
	for _, c := range sp.Children {
		if hit := findSpan(c, prefix); hit != nil {
			return hit
		}
	}
	return nil
}

// TestDistributedObservability is the end-to-end acceptance check: a
// coordinator-mode server over two worker processes answers a ?trace=1
// search with ONE stitched span tree (coordinator rounds containing
// worker-side executor spans carried back over the wire), all three
// processes expose parseable /metrics, and the workers retain the
// propagated trace id in their own /debug/traces rings.
func TestDistributedObservability(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	manifest := filepath.Join(t.TempDir(), "obs.set")
	if _, err := inst.WriteShardSetFiles(manifest, 2); err != nil {
		t.Fatal(err)
	}

	var workers []*httptest.Server
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		w := dshard.NewWorker(dshard.WorkerConfig{ManifestPath: manifest, Shard: i, Mode: snap.LoadCopy})
		if err := w.Load(); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		workers = append(workers, srv)
		urls[i] = srv.URL
	}

	di, err := s3.OpenCoordinator(manifest, urls, s3.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Instance: di})
	h := s.Handler()

	req := httptest.NewRequest("POST", "/search?trace=1", strings.NewReader(
		fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("distributed traced search = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !hexID.MatchString(resp.TraceID) || resp.Trace == nil {
		t.Fatalf("traced distributed search returned no trace: id=%q", resp.TraceID)
	}
	if resp.Iterations < 1 {
		t.Fatalf("iterations = %d, want >= 1", resp.Iterations)
	}

	// One stitched tree: a coordinator round span holds per-shard scatter
	// spans, and inside a shard span sits the worker-side executor span
	// that crossed the wire.
	round := findSpan(resp.Trace, "round")
	if round == nil {
		t.Fatalf("no round span in distributed trace: %+v", resp.Trace)
	}
	shard := findSpan(round, "shard")
	if shard == nil {
		t.Fatalf("round span has no shard scatter spans: %+v", round)
	}
	if exec := findSpan(shard, "exec."); exec == nil {
		t.Fatalf("shard span carries no worker-side exec span — trace did not cross the wire: %+v", shard)
	}
	begin := findSpan(resp.Trace, "begin")
	if begin == nil || findSpan(begin, "exec.") == nil {
		t.Fatal("begin phase lost its worker-side spans")
	}

	// Coordinator-mode /metrics: HTTP outcome + engine rounds + wire RPC
	// instruments, all on one registry.
	samples := scrapeMetrics(t, h)
	obstest.CheckHistogram(t, samples, "s3_http_search_seconds", `outcome="cold"`)
	obstest.CheckHistogram(t, samples, "s3_search_round_seconds", "")
	obstest.CheckHistogram(t, samples, "s3_coord_rpc_seconds", `endpoint="rounds"`)
	if got := samples[`s3_coord_rpc_seconds_count{endpoint="rounds"}`]; got < 1 {
		t.Fatalf("coordinator rounds RPCs = %v, want >= 1", got)
	}
	if got := samples["s3_search_round_seconds_count"]; got < 1 {
		t.Fatalf("s3_search_round_seconds_count = %v, want >= 1", got)
	}
	if got := samples["s3_coord_searches_total"]; got < 1 {
		t.Fatalf("s3_coord_searches_total = %v, want >= 1", got)
	}
	// Wire accounting flows both ways (labels render sorted by key).
	if got := samples[`s3_coord_rpc_bytes_total{direction="sent",endpoint="rounds"}`]; got <= 0 {
		t.Fatalf("sent bytes on rounds endpoint = %v, want > 0", got)
	}
	if got := samples[`s3_coord_rpc_bytes_total{direction="recv",endpoint="rounds"}`]; got <= 0 {
		t.Fatalf("recv bytes on rounds endpoint = %v, want > 0", got)
	}
	// The batch-size histogram fires once per rounds RPC.
	if got := samples["s3_coord_round_batch_count"]; got < 1 {
		t.Fatalf("s3_coord_round_batch_count = %v, want >= 1", got)
	}

	// Worker /metrics: the round protocol's server side.
	touched := 0.0
	for _, srv := range workers {
		ws := scrapeURL(t, srv.URL+"/metrics")
		obstest.CheckHistogram(t, ws, "s3_shard_rpc_seconds", `endpoint="rounds"`)
		if got := ws[`s3_shard_rpc_seconds_count{endpoint="rounds"}`]; got < 1 {
			t.Fatalf("worker %s saw %v rounds RPCs, want >= 1", srv.URL, got)
		}
		touched += ws["s3_worker_searches_total"]
	}
	if touched < 2 {
		t.Fatalf("worker fleet began %v sessions, want one per worker", touched)
	}

	// The workers file the search under the SAME trace id in their own
	// rings — proof the id propagated over the v1 wire protocol. Session
	// close is asynchronous (the coordinator's end RPC), so poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for _, srv := range workers {
		for {
			if workerHasTrace(t, srv.URL, resp.TraceID) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s never retained trace %s", srv.URL, resp.TraceID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// scrapeURL fetches and parses a live /metrics endpoint.
func scrapeURL(t testing.TB, url string) map[string]float64 {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, res.StatusCode)
	}
	return obstest.ParseExposition(t, string(body))
}

func workerHasTrace(t testing.TB, base, traceID string) bool {
	t.Helper()
	res, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, tr := range body.Traces {
		if tr.TraceID == traceID {
			if tr.Spans == nil || tr.Spans.Name != "worker.search" {
				t.Fatalf("worker trace %s has wrong root: %+v", traceID, tr.Spans)
			}
			return true
		}
	}
	return false
}
