package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"s3"
)

// benchServer builds a benchmark-scale instance and returns its handler
// plus a working query body.
func benchServer(b *testing.B, cacheSize int) (http.Handler, string) {
	b.Helper()
	inst := testInstance(b, 200, 800, 42)
	seeker, kw := pickQuery(inst)
	if seeker == "" {
		b.Fatal("no usable query on benchmark instance")
	}
	s, err := New(Config{Instance: inst, CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	return s.Handler(), fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
}

func doSearch(b *testing.B, h http.Handler, body string) {
	req := httptest.NewRequest("POST", "/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServerSearch contrasts the cold serving path (cache bypassed,
// full engine search per request) with cached repeats of the same query —
// the headline number for the result cache.
func BenchmarkServerSearch(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		h, body := benchServer(b, DefaultCacheSize)
		cold := strings.TrimSuffix(body, "}") + `,"no_cache":true}`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doSearch(b, h, cold)
		}
	})
	b.Run("cached", func(b *testing.B) {
		h, body := benchServer(b, DefaultCacheSize)
		doSearch(b, h, body) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doSearch(b, h, body)
		}
	})
}

// benchQueries collects candidate-heavy (seeker, keyword) pairs: the
// hashtags that reach the most documents, paired with a few seekers.
func benchQueries(b *testing.B, inst *s3.Instance, max int) [][2]string {
	b.Helper()
	// Rank hashtags by how many results they can produce (a proxy for
	// candidate volume — the regime component sharding targets).
	type load struct {
		kw string
		n  int
	}
	var seekers []string
	for u := 0; u < 300 && len(seekers) < 4; u++ {
		s := fmt.Sprintf("tw:u%d", u)
		if inst.HasUser(s) {
			seekers = append(seekers, s)
		}
	}
	if len(seekers) == 0 {
		b.Fatal("no seekers")
	}
	var loads []load
	for h := 0; h < 12; h++ {
		kw := fmt.Sprintf("#h%d", h)
		if rs, err := inst.Search(seekers[0], []string{kw}, s3.WithK(500)); err == nil {
			loads = append(loads, load{kw, len(rs)})
		}
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].n > loads[j].n })
	if len(loads) == 0 || loads[0].n == 0 {
		b.Fatal("no usable hashtags")
	}
	var out [][2]string
	for i := 0; len(out) < max; i++ {
		out = append(out, [2]string{seekers[i%len(seekers)], loads[i%min(3, len(loads))].kw})
	}
	return out
}

// BenchmarkShardedSearch compares cold (uncached) search latency and QPS
// of the component-sharded fan-out/merge path at 1, 2 and 4 shards
// against the single-engine baseline, on the same multi-component
// instance with candidate-heavy queries. The N=1 rows measure the
// shard-set abstraction's overhead on its short-circuited path (expected:
// none); N=2/4 measure the fan-out: per-shard admission, candidate
// scoring and selection run in parallel goroutines per exploration round
// (the parallel path activates when GOMAXPROCS > 1 and the round carries
// enough work; on a single-core box the shards run serially and the
// numbers record the abstraction's overhead instead).
func BenchmarkShardedSearch(b *testing.B) {
	inst := testInstance(b, 300, 2400, 42)
	queries := benchQueries(b, inst, 8)

	targets := []struct {
		name string
		q    s3.Queryable
	}{{"single", inst}}
	for _, n := range []int{1, 2, 4} {
		si, err := inst.ShardBy(n)
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, struct {
			name string
			q    s3.Queryable
		}{fmt.Sprintf("shards=%d", n), si})
	}

	for _, tgt := range targets {
		b.Run("cold/"+tgt.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := tgt.q.Search(q[0], []string{q[1]}, s3.WithK(10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, tgt := range targets {
		b.Run("qps/"+tgt.name, func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := queries[i%len(queries)]
					i++
					if _, err := tgt.q.Search(q[0], []string{q[1]}, s3.WithK(10)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkServerThroughput drives the handler from parallel clients over
// a mixed query set — the served-QPS baseline for future scaling PRs.
func BenchmarkServerThroughput(b *testing.B) {
	inst := testInstance(b, 200, 800, 42)
	s, err := New(Config{Instance: inst})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	var bodies []string
	for u := 0; u < 200 && len(bodies) < 16; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !inst.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5"} {
			if rs, err := inst.Search(seeker, []string{kw}, s3.WithK(5)); err == nil && len(rs) > 0 {
				bodies = append(bodies, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
				break
			}
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no usable queries")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			req := httptest.NewRequest("POST", "/search", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("search failed: %d", rec.Code)
			}
			var resp searchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
