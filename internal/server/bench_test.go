package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"s3"
)

// benchServer builds a benchmark-scale instance and returns its handler
// plus a working query body.
func benchServer(b *testing.B, cacheSize int) (http.Handler, string) {
	b.Helper()
	inst := testInstance(b, 200, 800, 42)
	seeker, kw := pickQuery(inst)
	if seeker == "" {
		b.Fatal("no usable query on benchmark instance")
	}
	s, err := New(Config{Instance: inst, CacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	return s.Handler(), fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
}

func doSearch(b *testing.B, h http.Handler, body string) {
	req := httptest.NewRequest("POST", "/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("search failed: %d %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkServerSearch contrasts the cold serving path (cache bypassed,
// full engine search per request) with cached repeats of the same query —
// the headline number for the result cache.
func BenchmarkServerSearch(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		h, body := benchServer(b, DefaultCacheSize)
		cold := strings.TrimSuffix(body, "}") + `,"no_cache":true}`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doSearch(b, h, cold)
		}
	})
	b.Run("cached", func(b *testing.B) {
		h, body := benchServer(b, DefaultCacheSize)
		doSearch(b, h, body) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			doSearch(b, h, body)
		}
	})
}

// BenchmarkServerThroughput drives the handler from parallel clients over
// a mixed query set — the served-QPS baseline for future scaling PRs.
func BenchmarkServerThroughput(b *testing.B) {
	inst := testInstance(b, 200, 800, 42)
	s, err := New(Config{Instance: inst})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()

	var bodies []string
	for u := 0; u < 200 && len(bodies) < 16; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !inst.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5"} {
			if rs, err := inst.Search(seeker, []string{kw}, s3.WithK(5)); err == nil && len(rs) > 0 {
				bodies = append(bodies, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
				break
			}
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no usable queries")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			req := httptest.NewRequest("POST", "/search", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("search failed: %d", rec.Code)
			}
			var resp searchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
