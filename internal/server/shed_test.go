package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedding exercises the bounded admission queue: with every
// worker slot busy, an arrival queues only while fewer than MaxQueue
// others wait and only for MaxQueueWait — past either bound it is shed
// with 429 and a Retry-After hint; a client that disconnects while
// queued gets 503 without burning a slot.
func TestAdmissionShedding(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{
		Instance:     inst,
		Workers:      1,
		MaxQueue:     1,
		MaxQueueWait: 300 * time.Millisecond,
	})
	h := s.Handler()
	body := func(k int) string {
		return fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":%d}`, seeker, kw, k)
	}

	// Occupy the only worker slot so every search must queue.
	s.sem <- struct{}{}

	// First arrival queues, then times out after MaxQueueWait.
	type res struct{ rec *httptest.ResponseRecorder }
	timedOut := make(chan res, 1)
	go func() {
		rec, _ := postSearch(t, h, body(2))
		timedOut <- res{rec}
	}()
	waitFor(t, 2*time.Second, func() bool { return s.waiting.Load() == 1 }, "first request to queue")

	// Second arrival sees a full queue and is shed immediately.
	rec, _ := postSearch(t, h, body(3))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request past the queue bound = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "queue full") {
		t.Errorf("queue-full shed body: %s", rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("queue-full Retry-After = %q, want 1", got)
	}
	if got := s.shed[shedQueueFull].Value(); got != 1 {
		t.Errorf("shed[%s] = %d, want 1", shedQueueFull, got)
	}

	// The queued request eventually gives up with the timeout reason.
	select {
	case r := <-timedOut:
		if r.rec.Code != http.StatusTooManyRequests {
			t.Fatalf("queued request = %d: %s", r.rec.Code, r.rec.Body.String())
		}
		if !strings.Contains(r.rec.Body.String(), "timed out") {
			t.Errorf("queue-timeout shed body: %s", r.rec.Body.String())
		}
		if got := r.rec.Header().Get("Retry-After"); got != "1" {
			t.Errorf("queue-timeout Retry-After = %q, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never timed out")
	}
	if got := s.shed[shedTimeout].Value(); got != 1 {
		t.Errorf("shed[%s] = %d, want 1", shedTimeout, got)
	}

	// A client that goes away while queued gets 503, not 429: nothing was
	// shed, the caller just left.
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest("POST", "/search", strings.NewReader(body(4))).WithContext(ctx)
		rc := httptest.NewRecorder()
		h.ServeHTTP(rc, req)
		cancelled <- rc
	}()
	waitFor(t, 2*time.Second, func() bool { return s.waiting.Load() == 1 }, "cancellable request to queue")
	cancel()
	select {
	case rc := <-cancelled:
		if rc.Code != http.StatusServiceUnavailable || !strings.Contains(rc.Body.String(), "cancelled while queued") {
			t.Errorf("cancelled-while-queued = %d: %s", rc.Code, rc.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never returned")
	}

	// Freeing the slot restores normal service.
	<-s.sem
	rec, resp := postSearch(t, h, body(5))
	if rec.Code != http.StatusOK {
		t.Fatalf("search after slot release = %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Results) == 0 {
		t.Error("recovered search returned no results")
	}
}

// TestPartialBypassesCache: ?partial=1 answers are coverage-dependent,
// so they must neither be served from the result cache nor populate it,
// and a full-coverage instance never reports them degraded.
func TestPartialBypassesCache(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)

	postPartial := func() (*httptest.ResponseRecorder, searchResponse) {
		req := httptest.NewRequest("POST", "/search?partial=1", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var resp searchResponse
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("bad partial response %q: %v", rec.Body.String(), err)
			}
		}
		return rec, resp
	}

	// A partial answer on full coverage is a normal exact answer.
	rec, presp := postPartial()
	if rec.Code != http.StatusOK {
		t.Fatalf("partial search = %d: %s", rec.Code, rec.Body.String())
	}
	if presp.Degraded || len(presp.ShardsServed) != 0 {
		t.Errorf("full-coverage partial answer flagged degraded: %+v", presp)
	}
	if presp.Cached {
		t.Error("first partial request reported cached")
	}

	// It did not populate the cache: the same plain request still misses.
	_, plain := postSearch(t, h, body)
	if plain.Cached {
		t.Error("partial answer leaked into the result cache")
	}

	// Now the plain answer is cached — but a partial repeat must bypass it.
	_, repeat := postSearch(t, h, body)
	if !repeat.Cached {
		t.Fatal("plain repeat was not cached (fixture assumption broken)")
	}
	if _, p2 := postPartial(); p2.Cached {
		t.Error("partial request was served from the cache")
	}
}
