package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"s3"
	"s3/internal/datagen"
)

// testInstance builds a small Twitter-like instance through the public
// facade (spec → BuildFromSpec), the same path cmd/s3serve uses.
func testInstance(t testing.TB, users, tweets int, seed int64) *s3.Instance {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = users, tweets, seed
	spec, _ := datagen.Twitter(o)
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	inst, err := s3.BuildFromSpec(&buf, s3.Raw)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// aQuery returns a (seeker, keyword) pair that produces results on the
// instance.
func aQuery(t testing.TB, inst *s3.Instance) (string, string) {
	t.Helper()
	seeker, kw := pickQuery(inst)
	if seeker == "" || kw == "" {
		t.Fatal("test instance has no usable query")
	}
	return seeker, kw
}

func pickQuery(inst *s3.Instance) (string, string) {
	// The generated twitter dataset names users tw:uN and uses hashtag-like
	// keywords; probe a few combinations until one yields results.
	for u := 0; u < 50; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !inst.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3", "#h5", "#h8"} {
			if rs, err := inst.Search(seeker, []string{kw}, s3.WithK(3)); err == nil && len(rs) > 0 {
				return seeker, kw
			}
		}
	}
	return "", ""
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postSearch(t testing.TB, h http.Handler, body string) (*httptest.ResponseRecorder, searchResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/search", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp searchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad /search response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

func TestSearchMatchesDirectSearch(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()

	rec, resp := postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /search = %d: %s", rec.Code, rec.Body.String())
	}
	direct, err := inst.Search(seeker, []string{kw}, s3.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(direct) {
		t.Fatalf("server returned %d results, direct search %d", len(resp.Results), len(direct))
	}
	for i, r := range direct {
		got := resp.Results[i]
		if got.URI != r.URI || got.Document != r.Document || got.Lower != r.Lower || got.Upper != r.Upper {
			t.Errorf("result %d: server %+v vs direct %+v", i, got, r)
		}
	}
	if resp.Cached {
		t.Error("first query reported cached")
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)

	_, first := postSearch(t, h, body)
	rec, second := postSearch(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat search = %d", rec.Code)
	}
	if !second.Cached {
		t.Error("repeat of an exact query was not served from cache")
	}
	if len(second.Results) != len(first.Results) {
		t.Errorf("cached answer has %d results, original %d", len(second.Results), len(first.Results))
	}

	// A request with a different k is a different key.
	_, third := postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":3}`, seeker, kw))
	if third.Cached {
		t.Error("different k hit the cache")
	}

	// Any-time requests must bypass the cache entirely.
	_, budget := postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5,"max_iterations":2}`, seeker, kw))
	if budget.Cached {
		t.Error("budgeted query hit the cache")
	}

	var stats statsResponse
	recS := httptest.NewRecorder()
	h.ServeHTTP(recS, httptest.NewRequest("GET", "/stats", nil))
	if err := json.Unmarshal(recS.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 {
		t.Errorf("stats report %d cache hits, want 1", stats.Cache.Hits)
	}
	if stats.Cache.Misses == 0 {
		t.Error("stats report no cache misses")
	}
	if stats.Searches == 0 {
		t.Error("stats report no searches")
	}
}

// Identical concurrent requests are coalesced: followers wait for the
// leader's engine call instead of running their own. The test registers
// the in-flight call directly so the hand-off is deterministic.
func TestInflightDeduplication(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()

	// The handler normalizes omitted gamma/eta before keying.
	sr := searchRequest{Seeker: seeker, Keywords: []string{kw}, K: 5, Gamma: 1.5, Eta: 0.8}
	key := sr.cacheKey(s.Version())
	leader := &call{done: make(chan struct{})}
	s.mu.Lock()
	s.inflight[key] = leader
	s.mu.Unlock()

	got := make(chan searchResponse, 1)
	go func() {
		_, resp := postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
		got <- resp
	}()

	select {
	case <-got:
		t.Fatal("follower returned before the in-flight leader finished")
	case <-time.After(50 * time.Millisecond):
	}

	leader.resp = &searchResponse{Results: []searchResult{{URI: "sentinel"}}, Exact: true}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(leader.done)

	select {
	case resp := <-got:
		if len(resp.Results) != 1 || resp.Results[0].URI != "sentinel" {
			t.Errorf("follower did not receive the leader's answer: %+v", resp)
		}
		if !resp.Cached {
			t.Error("coalesced answer not marked cached")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never unblocked")
	}
	if s.coalesced.Load() != 1 {
		t.Errorf("coalesced counter = %d, want 1", s.coalesced.Load())
	}
}

// A leader that dies because its own client disconnected must not fail
// the waiters: they fall back to running the search themselves.
func TestCoalescedWaiterSurvivesLeaderCancellation(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	seeker, kw := aQuery(t, inst)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()

	sr := searchRequest{Seeker: seeker, Keywords: []string{kw}, K: 5, Gamma: 1.5, Eta: 0.8}
	key := sr.cacheKey(s.Version())
	leader := &call{done: make(chan struct{})}
	s.mu.Lock()
	s.inflight[key] = leader
	s.mu.Unlock()

	type result struct {
		code int
		resp searchResponse
	}
	got := make(chan result, 1)
	go func() {
		rec, resp := postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
		got <- result{rec.Code, resp}
	}()

	// Leader fails with the queued-cancellation error.
	leader.err = &httpError{status: http.StatusServiceUnavailable, msg: "request cancelled while queued"}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(leader.done)

	select {
	case r := <-got:
		if r.code != http.StatusOK {
			t.Fatalf("waiter inherited leader's failure: %d", r.code)
		}
		if len(r.resp.Results) == 0 {
			t.Error("waiter's fallback search returned nothing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed")
	}
}

// Crafted seeker/keyword strings must not collide on one cache key.
func TestCacheKeyIsCollisionFree(t *testing.T) {
	a := searchRequest{Seeker: "u1\x1ffoo", Keywords: []string{"bar"}, K: 5}
	b := searchRequest{Seeker: "u1", Keywords: []string{"foo", "bar"}, K: 5}
	c := searchRequest{Seeker: "u1", Keywords: []string{"foo|bar"}, K: 5}
	d := searchRequest{Seeker: "u1|5:foo", Keywords: []string{"bar"}, K: 5}
	keys := map[string]string{}
	for name, r := range map[string]searchRequest{"a": a, "b": b, "c": c, "d": d} {
		k := r.cacheKey(1)
		if prev, dup := keys[k]; dup {
			t.Errorf("requests %s and %s share cache key %q", prev, name, k)
		}
		keys[k] = name
	}
}

func TestConcurrentSearchesAreCorrect(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	s := newTestServer(t, Config{Instance: inst, Workers: 4, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Collect a handful of distinct working queries and their direct
	// answers.
	type q struct {
		seeker, kw string
		want       []s3.Result
	}
	var queries []q
	for u := 0; u < 60 && len(queries) < 6; u++ {
		seeker := fmt.Sprintf("tw:u%d", u)
		if !inst.HasUser(seeker) {
			continue
		}
		for _, kw := range []string{"#h1", "#h2", "#h3"} {
			rs, err := inst.Search(seeker, []string{kw}, s3.WithK(4))
			if err == nil && len(rs) > 0 {
				queries = append(queries, q{seeker, kw, rs})
				break
			}
		}
	}
	if len(queries) == 0 {
		t.Fatal("no usable queries")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				qu := queries[(w+i)%len(queries)]
				body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":4}`, qu.seeker, qu.kw)
				resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var sr searchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if len(sr.Results) != len(qu.want) {
					errs <- fmt.Errorf("%s/%s: %d results, want %d", qu.seeker, qu.kw, len(sr.Results), len(qu.want))
					return
				}
				for j, r := range qu.want {
					if sr.Results[j].URI != r.URI || sr.Results[j].Lower != r.Lower {
						errs <- fmt.Errorf("%s/%s: result %d diverged", qu.seeker, qu.kw, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestReloadSwapsInstanceAndWarmsCache(t *testing.T) {
	small := testInstance(t, 40, 150, 3)
	big := testInstance(t, 60, 240, 4)
	loads, fail := 0, false
	s := newTestServer(t, Config{
		Instance: small,
		Loader: func() (s3.Queryable, error) {
			if fail {
				return nil, fmt.Errorf("boom")
			}
			loads++
			return big, nil
		},
	})
	h := s.Handler()
	seeker, kw := aQuery(t, small)
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw)
	postSearch(t, h, body)
	postSearch(t, h, body) // now cached

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /reload = %d: %s", rec.Code, rec.Body.String())
	}
	if loads != 1 {
		t.Fatalf("loader ran %d times", loads)
	}
	if s.Version() != 2 {
		t.Errorf("version = %d after reload, want 2", s.Version())
	}
	if got := s.Instance().Stats(); got != big.Stats() {
		t.Error("reload did not swap the instance")
	}

	// The hot query set was replayed against the new instance: the old
	// version's entries are gone, but the same request is warm again (the
	// seeker exists in both instances) and must hit the cache without a
	// fresh engine search under the new version.
	var reloaded struct {
		Warmed int `json:"warmed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reloaded); err != nil {
		t.Fatal(err)
	}
	if reloaded.Warmed != 1 {
		t.Errorf("reload warmed %d entries, want 1", reloaded.Warmed)
	}
	if s.warmed.Load() != 1 {
		t.Errorf("warmed counter = %d, want 1", s.warmed.Load())
	}
	s.mu.Lock()
	cached := s.cache.len()
	s.mu.Unlock()
	if cached != 1 {
		t.Errorf("cache holds %d entries after warmed reload, want 1", cached)
	}
	if _, resp := postSearch(t, h, body); !resp.Cached || resp.Version != 2 {
		t.Errorf("post-reload repeat was not served from the warmed cache (cached=%v version=%d)",
			resp.Cached, resp.Version)
	}

	// A failed reload keeps the current instance serving.
	fail = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("failed reload returned %d", rec.Code)
	}
	if s.Version() != 2 || s.Instance() != big {
		t.Error("failed reload disturbed the serving instance")
	}
}

func TestErrorResponses(t *testing.T) {
	inst := testInstance(t, 40, 150, 3)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/search", "{", http.StatusBadRequest},
		{"missing seeker", "POST", "/search", `{"keywords":["x"]}`, http.StatusBadRequest},
		{"missing keywords", "POST", "/search", `{"seeker":"tw:u0"}`, http.StatusBadRequest},
		{"negative k", "POST", "/search", `{"seeker":"tw:u0","keywords":["x"],"k":-1}`, http.StatusBadRequest},
		{"unknown seeker", "POST", "/search", `{"seeker":"nobody","keywords":["x"]}`, http.StatusNotFound},
		{"bad gamma", "POST", "/search", `{"seeker":"tw:u0","keywords":["#h1"],"gamma":0.5}`, http.StatusBadRequest},
		{"bad eta", "POST", "/search", `{"seeker":"tw:u0","keywords":["#h1"],"eta":2}`, http.StatusBadRequest},
		{"reload without loader", "POST", "/reload", "", http.StatusNotImplemented},
		{"missing extension kw", "GET", "/extension", "", http.StatusBadRequest},
		{"wrong method", "GET", "/search", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
	}
}

func TestHealthzAndExtension(t *testing.T) {
	inst := testInstance(t, 40, 150, 3)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"serving"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	// Readiness vs liveness: a draining server answers 503 on /healthz
	// (routers stop sending) while /livez stays 200 (don't kill the
	// process — it is finishing in-flight work).
	s.SetDraining(true)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"draining"`) {
		t.Errorf("draining healthz: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/livez", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("livez while draining: %d %s", rec.Code, rec.Body.String())
	}
	s.SetDraining(false)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/extension?keyword=class-1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("extension: %d %s", rec.Code, rec.Body.String())
	}
	var ext struct {
		Keyword   string   `json:"keyword"`
		Extension []string `json:"extension"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ext); err != nil {
		t.Fatal(err)
	}
	if ext.Keyword != "class-1" {
		t.Errorf("extension echoed keyword %q", ext.Keyword)
	}
}
