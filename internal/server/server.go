// Package server implements the s3serve query-serving subsystem: a
// long-lived HTTP front-end over a frozen S3 instance — a single
// snapshot-backed instance or a component-sharded shard set, both served
// through the s3.Queryable abstraction (a plain instance is the
// degenerate one-shard case, with no behavioural difference). The
// instance is held behind an atomic pointer so it can be hot-swapped
// (POST /reload) while searches are in flight; finished answers go
// through an LRU result cache, which is re-warmed after a reload by
// replaying the cached queries against the new instance; identical
// concurrent queries are coalesced into a single engine call; and a
// bounded worker pool caps the number of searches executing at once
// regardless of how many connections the HTTP layer accepts.
//
// Endpoints:
//
//	POST /search    run an S3k top-k query (JSON body, see searchRequest;
//	                ?trace=1 returns the search's span tree inline)
//	GET  /extension semantic extension of a keyword (?keyword=...)
//	GET  /stats     instance statistics, per-shard stats, serving counters
//	GET  /metrics   Prometheus text exposition of the process registry
//	GET  /debug/traces  recent retained traces (newest first)
//	GET  /healthz   readiness probe (503 while draining — routers stop
//	                sending before a graceful shutdown or roll)
//	GET  /livez     liveness probe (200 as long as the process serves HTTP)
//	POST /reload    re-load the instance from its source and swap it in
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"s3"
	"s3/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Instance is the initially served instance: a *s3.Instance or a
	// *s3.ShardedInstance.
	Instance s3.Queryable
	// Loader re-loads the instance for POST /reload (typically re-reading
	// a snapshot file or shard set). nil disables reloading.
	Loader func() (s3.Queryable, error)
	// CacheSize is the result-cache capacity in entries; 0 picks the
	// default (1024), negative disables caching.
	CacheSize int
	// ProxCacheBytes budgets the seeker-proximity checkpoint cache that
	// serves the warm path under the result cache: a result-cache miss
	// whose seeker has a cached exploration frontier resumes it instead of
	// re-propagating the social graph. 0 picks the default (64 MiB),
	// negative disables it.
	ProxCacheBytes int64
	// Workers bounds concurrently executing searches; 0 picks
	// GOMAXPROCS.
	Workers int
	// MaxQueue bounds how many searches may wait for a worker slot beyond
	// the Workers executing ones; arrivals past the bound are shed
	// immediately with 429 and a Retry-After hint instead of piling onto
	// an already saturated process. 0 picks 8×Workers, negative disables
	// the bound.
	MaxQueue int
	// MaxQueueWait caps how long an admitted search may wait for a worker
	// slot before it is shed with 429: a query that would blow its
	// client's patience budget anyway is cheaper to refuse than to run.
	// 0 picks 2s, negative disables the cap.
	MaxQueueWait time.Duration
	// LoadMS records how long the initial Instance load took (surfaced in
	// /stats; reload times are measured by the server itself).
	LoadMS int64
	// Registry receives the process's instruments and backs GET /metrics;
	// nil gets a fresh registry (Registry() returns it either way).
	Registry *obs.Registry
	// SlowLog, when non-nil, receives one JSON line per search slower
	// than its threshold (searches are then always traced so the line can
	// carry a per-stage breakdown).
	SlowLog *obs.SlowLog
}

// DefaultCacheSize is the result-cache capacity when Config leaves it 0.
const DefaultCacheSize = 1024

// DefaultProxCacheBytes is the proximity-cache budget when Config leaves
// it 0.
const DefaultProxCacheBytes int64 = 64 << 20

// DefaultMaxQueueWait caps the worker-slot wait when Config leaves
// MaxQueueWait 0.
const DefaultMaxQueueWait = 2 * time.Second

// instanceState is the unit of atomic hot-swap: an instance (single or
// sharded) plus its load generation, reference-counted so a mapped
// instance is closed (unmapped) only after the swap drops the server's
// reference and the last in-flight request finishes with it.
type instanceState struct {
	inst     s3.Queryable
	version  uint64
	loadedAt time.Time
	loadMS   int64

	// refs starts at 1 (the server's own reference, dropped when a reload
	// swaps the state out); every request holds one while it reads the
	// instance.
	refs atomic.Int64
}

func newInstanceState(inst s3.Queryable, version uint64, loadMS int64) *instanceState {
	st := &instanceState{inst: inst, version: version, loadedAt: time.Now(), loadMS: loadMS}
	st.refs.Store(1)
	return st
}

// retain takes a reference; it fails only on a state that already hit
// zero (retired with no readers), which the acquire loop handles by
// re-reading the current pointer.
func (st *instanceState) retain() bool {
	for {
		r := st.refs.Load()
		if r <= 0 {
			return false
		}
		if st.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops a reference and closes the instance at zero. Close is
// what unmaps a LoadMmap instance, so it must happen exactly when the
// last reader is done — not at swap time.
func (st *instanceState) release() {
	if st.refs.Add(-1) == 0 {
		_ = st.inst.Close()
	}
}

// acquire returns the current state with a reference held. The loop
// covers the race where a reload retires the state between the load and
// the retain.
func (s *Server) acquire() *instanceState {
	for {
		st := s.cur.Load()
		if st.retain() {
			return st
		}
	}
}

// call is one in-flight search other identical requests can wait on.
type call struct {
	done chan struct{}
	resp *searchResponse
	err  *httpError
}

// Server serves S3k queries over HTTP. Create with New.
type Server struct {
	cfg   Config
	cur   atomic.Pointer[instanceState]
	sem   chan struct{}
	start time.Time

	// Admission queue bound: waiting counts searches parked on sem;
	// arrivals seeing waiting >= maxQueue are shed immediately, admitted
	// ones are shed after maxQueueWait. Zero values disable each bound.
	waiting      atomic.Int64
	maxQueue     int64
	maxQueueWait time.Duration

	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*call

	// prox is the seeker-proximity checkpoint cache, attached to every
	// served instance generation and purged across reloads. nil when
	// disabled.
	prox *s3.ProxCache

	// reloadMu serialises reloads so two concurrent POST /reload cannot
	// install different instances under the same version number.
	reloadMu sync.Mutex

	// draining flips /healthz readiness off ahead of a graceful shutdown:
	// external routers and coordinators stop picking this replica while
	// its in-flight requests finish (liveness stays green on /livez).
	draining atomic.Bool

	// lifetime counters (atomics; mu not required)
	searches  atomic.Uint64
	coalesced atomic.Uint64
	reloads   atomic.Uint64
	warmed    atomic.Uint64

	// observability: the process registry behind GET /metrics, the
	// engine-level search instruments attached to every served instance
	// generation, the per-outcome HTTP latency histograms, the retained
	// trace ring behind GET /debug/traces and the slow-query log.
	reg          *obs.Registry
	sm           *s3.SearchMetrics
	outcomes     map[string]*obs.Histogram
	searchErrors *obs.Counter
	shed         map[string]*obs.Counter
	traces       *obs.TraceRing
	slow         *obs.SlowLog
}

// search outcomes label the HTTP latency histogram: how the answer was
// produced, from cheapest to most expensive.
const (
	outcomeCached    = "cached"    // result-cache hit
	outcomeCoalesced = "coalesced" // joined an identical in-flight search
	outcomeWarm      = "warm"      // ran, resuming a proximity checkpoint
	outcomeCold      = "cold"      // ran from scratch
)

// New wires a server around an instance.
func New(cfg Config) (*Server, error) {
	if cfg.Instance == nil {
		return nil, fmt.Errorf("server: nil instance")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	if cacheSize < 0 {
		cacheSize = 0
	}
	proxBytes := cfg.ProxCacheBytes
	if proxBytes == 0 {
		proxBytes = DefaultProxCacheBytes
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	maxQueue := int64(cfg.MaxQueue)
	if maxQueue == 0 {
		maxQueue = int64(8 * workers)
	}
	if maxQueue < 0 {
		maxQueue = 0 // unbounded
	}
	maxQueueWait := cfg.MaxQueueWait
	if maxQueueWait == 0 {
		maxQueueWait = DefaultMaxQueueWait
	}
	if maxQueueWait < 0 {
		maxQueueWait = 0 // uncapped
	}
	s := &Server{
		cfg:          cfg,
		sem:          make(chan struct{}, workers),
		start:        time.Now(),
		maxQueue:     maxQueue,
		maxQueueWait: maxQueueWait,
		cache:        newLRUCache(cacheSize),
		inflight:     make(map[string]*call),
		reg:          reg,
		sm:           obs.NewSearchMetrics(reg),
		traces:       obs.NewTraceRing(0),
		slow:         cfg.SlowLog,
	}
	s.outcomes = make(map[string]*obs.Histogram, 4)
	for _, o := range []string{outcomeCached, outcomeCoalesced, outcomeWarm, outcomeCold} {
		s.outcomes[o] = reg.Histogram("s3_http_search_seconds",
			"POST /search latency by how the answer was produced.", nil, obs.L("outcome", o))
	}
	s.searchErrors = reg.Counter("s3_http_search_errors_total",
		"POST /search requests that failed after validation.")
	s.shed = make(map[string]*obs.Counter, 2)
	for _, reason := range []string{shedQueueFull, shedTimeout} {
		s.shed[reason] = reg.Counter("s3_http_shed_total",
			"POST /search requests shed by admission control (429).", obs.L("reason", reason))
	}
	s.registerFuncMetrics()
	if proxBytes > 0 {
		s.prox = s3.NewProxCache(proxBytes)
		cfg.Instance.SetProxCache(s.prox)
	}
	s.instrument(cfg.Instance)
	s.cur.Store(newInstanceState(cfg.Instance, 1, cfg.LoadMS))
	return s, nil
}

// registerFuncMetrics exposes the server's existing atomics and cache
// statistics through the registry without restructuring them.
func (s *Server) registerFuncMetrics() {
	r := s.reg
	r.GaugeFunc("s3_uptime_seconds", "Seconds since the serving process started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("s3_server_generation", "Load generation of the served instance (bumped by /reload).",
		func() float64 { return float64(s.cur.Load().version) })
	r.CounterFunc("s3_http_searches_total", "Engine searches executed (cache hits and coalesced joins excluded).",
		func() float64 { return float64(s.searches.Load()) })
	r.CounterFunc("s3_http_coalesced_total", "Requests that joined an identical in-flight search.",
		func() float64 { return float64(s.coalesced.Load()) })
	r.CounterFunc("s3_reloads_total", "Successful instance reloads.",
		func() float64 { return float64(s.reloads.Load()) })
	r.CounterFunc("s3_slowlog_emitted_total", "Slow-query log lines written.",
		func() float64 { return float64(s.slow.Emitted()) })
	cacheCount := func(pick func() uint64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(pick())
		}
	}
	r.CounterFunc("s3_cache_hits_total", "Result-cache hits.", cacheCount(func() uint64 { return s.cache.hits }))
	r.CounterFunc("s3_cache_misses_total", "Result-cache misses.", cacheCount(func() uint64 { return s.cache.misses }))
	r.CounterFunc("s3_cache_evictions_total", "Result-cache LRU evictions.", cacheCount(func() uint64 { return s.cache.evictions }))
	r.GaugeFunc("s3_cache_size", "Result-cache entries currently held.", cacheCount(func() uint64 { return uint64(s.cache.len()) }))
	r.CounterFunc("s3_cache_warmed_total", "Cache entries re-computed by post-reload warming.",
		func() float64 { return float64(s.warmed.Load()) })
	prox := func(pick func(s3.ProxCacheStats) float64) func() float64 {
		return func() float64 {
			if s.prox == nil {
				return 0
			}
			return pick(s.prox.Stats())
		}
	}
	r.CounterFunc("s3_proxcache_hits_total", "Proximity-cache checkpoint hits (searches that resumed warm).",
		prox(func(st s3.ProxCacheStats) float64 { return float64(st.Hits) }))
	r.CounterFunc("s3_proxcache_misses_total", "Proximity-cache misses (searches that explored from scratch).",
		prox(func(st s3.ProxCacheStats) float64 { return float64(st.Misses) }))
	r.GaugeFunc("s3_proxcache_bytes", "Bytes held by the proximity cache.",
		prox(func(st s3.ProxCacheStats) float64 { return float64(st.Bytes) }))
	r.GaugeFunc("s3_proxcache_entries", "Checkpoints held by the proximity cache.",
		prox(func(st s3.ProxCacheStats) float64 { return float64(st.Entries) }))
	r.GaugeFunc("s3_mapped_bytes", "Snapshot bytes backing the served instance through memory mappings.",
		func() float64 {
			st := s.acquire()
			defer st.release()
			return float64(st.inst.MappedBytes())
		})
}

// instrument attaches the process-wide observability to a freshly loaded
// instance before it takes traffic: the engine-level search instruments,
// and — when the instance fronts a worker fleet — the coordinator's wire
// instruments.
func (s *Server) instrument(inst s3.Queryable) {
	inst.SetSearchMetrics(s.sm)
	if a, ok := inst.(interface{ AttachRegistry(*obs.Registry) }); ok {
		a.AttachRegistry(s.reg)
	}
}

// Registry returns the process registry behind GET /metrics (s3serve adds
// its own instruments to it).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /extension", s.handleExtension)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /debug/traces", s.traces.Handler())
	return mux
}

// httpError pairs a status code with a client-facing message;
// retryAfter > 0 adds a Retry-After hint (seconds) for shed requests.
type httpError struct {
	status     int
	msg        string
	retryAfter int
}

// Shed reasons label s3_http_shed_total: the admission queue was full on
// arrival, or the queue wait ran out before a worker slot freed up.
const (
	shedQueueFull = "queue_full"
	shedTimeout   = "timeout"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// searchRequest is the POST /search body.
type searchRequest struct {
	// Seeker is the querying user's URI.
	Seeker string `json:"seeker"`
	// Keywords are the conjunctive query keywords.
	Keywords []string `json:"keywords"`
	// K is the number of results (default 10).
	K int `json:"k,omitempty"`
	// Gamma is the social damping factor γ > 1 (default 1.5).
	Gamma float64 `json:"gamma,omitempty"`
	// Eta is the structural damping factor η ∈ (0,1) (default 0.8).
	Eta float64 `json:"eta,omitempty"`
	// BudgetMS caps wall-clock search time (any-time mode; uncached).
	BudgetMS int `json:"budget_ms,omitempty"`
	// MaxIterations caps exploration depth (any-time mode; uncached).
	MaxIterations int `json:"max_iterations,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

type searchResult struct {
	URI      string  `json:"uri"`
	Document string  `json:"document"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
}

type searchResponse struct {
	Results    []searchResult `json:"results"`
	Exact      bool           `json:"exact"`
	Iterations int            `json:"iterations"`
	ElapsedMS  float64        `json:"elapsed_ms"`
	Cached     bool           `json:"cached"`
	// Warm is true when the search resumed a proximity-cache checkpoint
	// instead of exploring from scratch.
	Warm    bool   `json:"warm,omitempty"`
	Version uint64 `json:"version"`
	// Degraded and ShardsServed are set only on ?partial=1 answers that
	// ran without full shard coverage: the answer is the top-k of the
	// listed shards, not of the whole corpus. Never cached.
	Degraded     bool  `json:"degraded,omitempty"`
	ShardsServed []int `json:"shards_served,omitempty"`
	// TraceID and Trace are set only on ?trace=1 responses: the span tree
	// of the search that produced this answer. Never cached.
	TraceID string        `json:"trace_id,omitempty"`
	Trace   *obs.SpanJSON `json:"trace,omitempty"`
}

// cacheKey canonicalises a request; the instance version makes stale
// entries unreachable even before the reload purge completes. Seeker and
// keywords are client-controlled strings, so each is length-prefixed —
// plain concatenation would let crafted values collide with a different
// user's personalized results.
func (r *searchRequest) cacheKey(version uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(version, 10))
	fmt.Fprintf(&b, "|%d:%s", len(r.Seeker), r.Seeker)
	for _, kw := range r.Keywords {
		fmt.Fprintf(&b, "|%d:%s", len(kw), kw)
	}
	fmt.Fprintf(&b, "|%d|%g|%g|%d|%d", r.K, r.Gamma, r.Eta, r.BudgetMS, r.MaxIterations)
	return b.String()
}

// cacheable reports whether the answer is safe to reuse: any-time
// requests stop on wall-clock or iteration budgets, so their answers are
// not reproducible and never enter the cache.
func (r *searchRequest) cacheable() bool {
	return !r.NoCache && r.BudgetMS == 0 && r.MaxIterations == 0
}

func (s *Server) handleSearch(w http.ResponseWriter, req *http.Request) {
	t0 := time.Now()
	// Honor a client-supplied X-Request-ID (so one id follows a request
	// through client logs, the slow-query log and /debug/traces), generate
	// one otherwise, and echo it on every response.
	rid := req.Header.Get("X-Request-ID")
	if rid == "" {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", rid)
	wantTrace := req.URL.Query().Get("trace") == "1"
	// ?partial=1 opts into a degraded answer when shards are down. Like
	// tracing it bypasses the cache and coalescing: a degraded answer is
	// coverage-dependent, never safe to reuse or to hand to a request
	// that did not opt in.
	wantPartial := req.URL.Query().Get("partial") == "1"
	bypass := wantTrace || wantPartial

	var sr searchRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "invalid JSON body: " + err.Error()})
		return
	}
	if sr.Seeker == "" {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "missing seeker"})
		return
	}
	if len(sr.Keywords) == 0 {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "missing keywords"})
		return
	}
	if sr.K == 0 {
		sr.K = 10
	}
	if sr.K < 0 {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "k must be positive"})
		return
	}
	// Normalize omitted parameters to their engine defaults before keying,
	// so "gamma omitted" and "gamma":1.5 share one cache entry and
	// coalesce with each other.
	if sr.Gamma == 0 {
		sr.Gamma = 1.5
	}
	if sr.Eta == 0 {
		sr.Eta = 0.8
	}

	state := s.acquire()
	defer state.release()
	if !state.inst.HasUser(sr.Seeker) {
		writeError(w, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown seeker %q", sr.Seeker)})
		return
	}

	// A ?trace=1 request exists to watch a real search run, so it bypasses
	// the result cache and coalescing entirely — a hit would return
	// instantly with nothing to trace. ?partial=1 bypasses for coverage
	// reasons (see above).
	key := sr.cacheKey(state.version)
	if sr.cacheable() && !bypass {
		s.mu.Lock()
		if resp, ok := s.cache.get(key); ok {
			s.mu.Unlock()
			cached := *resp
			cached.Cached = true
			s.outcomes[outcomeCached].ObserveSince(t0)
			writeJSON(w, http.StatusOK, &cached)
			return
		}
		// Not cached: join an identical in-flight search if one exists,
		// otherwise become the leader for this key.
		if c, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			s.coalesced.Add(1)
			select {
			case <-c.done:
			case <-req.Context().Done():
				writeError(w, &httpError{status: http.StatusServiceUnavailable, msg: "client went away"})
				return
			}
			if c.err != nil {
				// The leader may have failed for reasons private to it —
				// typically its client disconnecting while queued. This
				// request's client is still here, so fall back to an
				// uncoalesced search instead of inheriting the failure.
				if c.err.status == http.StatusServiceUnavailable {
					resp, herr := s.observedSearch(req.Context(), state, &sr, rid, wantTrace, false)
					if herr != nil {
						writeError(w, herr)
						return
					}
					writeJSON(w, http.StatusOK, resp)
					return
				}
				writeError(w, c.err)
				return
			}
			resp := *c.resp
			resp.Cached = true
			s.outcomes[outcomeCoalesced].ObserveSince(t0)
			writeJSON(w, http.StatusOK, &resp)
			return
		}
		c := &call{done: make(chan struct{})}
		s.inflight[key] = c
		s.mu.Unlock()

		resp, herr := s.observedSearch(req.Context(), state, &sr, rid, wantTrace, false)
		c.resp, c.err = resp, herr
		s.mu.Lock()
		delete(s.inflight, key)
		if herr == nil && resp.Exact {
			// Cache a copy without the trace: retained span trees belong to
			// the ring, not to every future cache hit.
			clean := *resp
			clean.TraceID, clean.Trace = "", nil
			s.cache.put(key, sr, &clean)
		}
		s.mu.Unlock()
		close(c.done)

		if herr != nil {
			writeError(w, herr)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	resp, herr := s.observedSearch(req.Context(), state, &sr, rid, wantTrace, wantPartial)
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// observedSearch wraps one engine call in the serving observability: it
// traces the search when the client asked (?trace=1) or the slow-query
// log needs a stage breakdown, feeds the per-outcome latency histogram,
// emits the slow-log line, and retains explicitly requested and slow
// traces in the /debug/traces ring. The returned response carries the
// span tree only for ?trace=1 requests.
func (s *Server) observedSearch(ctx context.Context, state *instanceState, sr *searchRequest, rid string, wantTrace, partial bool) (*searchResponse, *httpError) {
	var tr *s3.Trace
	if wantTrace || s.slow.Enabled() {
		tr = obs.NewTrace("search")
	}
	start := time.Now()
	resp, herr := s.runSearch(ctx, state, sr, tr, partial)
	elapsed := time.Since(start)
	if herr != nil {
		s.searchErrors.Inc()
		return nil, herr
	}
	outcome := outcomeCold
	if resp.Warm {
		outcome = outcomeWarm
	}
	s.outcomes[outcome].Observe(elapsed.Seconds())
	if tr != nil {
		tr.Finish()
		elapsed = tr.Root.Dur
		emitted := s.slow.Emit(elapsed, &obs.SlowRecord{
			RequestID: rid,
			TraceID:   obs.IDString(tr.ID),
			Seeker:    sr.Seeker,
			Keywords:  sr.Keywords,
			K:         sr.K,
			Outcome:   outcome,
			Rounds:    resp.Iterations,
			Shards:    len(state.inst.Shards()),
			StagesMS:  obs.StagesMS(tr.Root),
		})
		if wantTrace || emitted {
			s.traces.Add(&obs.TraceRecord{
				TraceID:   obs.IDString(tr.ID),
				RequestID: rid,
				Seeker:    sr.Seeker,
				Keywords:  sr.Keywords,
				Start:     tr.Root.Start,
				ElapsedMS: float64(elapsed.Microseconds()) / 1000,
				Spans:     tr.JSON(),
			})
		}
		if wantTrace {
			resp.TraceID = obs.IDString(tr.ID)
			resp.Trace = tr.JSON()
		}
	}
	return resp, nil
}

// admit acquires a worker slot under the admission bounds, ending the
// queue span however the wait resolves. It returns nil with the slot
// held, or the 429/503 to send instead.
func (s *Server) admit(ctx context.Context, qsp *obs.Span) *httpError {
	defer qsp.End()
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	// Every worker slot is busy: queue, bounded in depth and in time.
	retry := 1
	if s.maxQueueWait > 0 {
		if secs := int((s.maxQueueWait + time.Second - 1) / time.Second); secs > retry {
			retry = secs
		}
	}
	if s.maxQueue > 0 && s.waiting.Load() >= s.maxQueue {
		s.shed[shedQueueFull].Inc()
		return &httpError{status: http.StatusTooManyRequests, msg: "server saturated: admission queue full", retryAfter: retry}
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	var timeout <-chan time.Time
	if s.maxQueueWait > 0 {
		tm := time.NewTimer(s.maxQueueWait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timeout:
		s.shed[shedTimeout].Inc()
		return &httpError{status: http.StatusTooManyRequests, msg: "server saturated: timed out waiting for a worker slot", retryAfter: retry}
	case <-ctx.Done():
		return &httpError{status: http.StatusServiceUnavailable, msg: "request cancelled while queued"}
	}
}

// runSearch executes one engine call under the worker-pool bound,
// recording into tr when non-nil (a "queue" span for the worker-pool
// wait, then whatever the engine records under the same root). Admission
// is deadline-aware: when every worker slot is busy, the request queues
// only if fewer than maxQueue others already wait, and only for up to
// maxQueueWait — past either bound it is shed with 429 and a Retry-After
// hint, because piling more work onto a saturated process makes every
// in-flight search slower without making any answer arrive sooner.
func (s *Server) runSearch(ctx context.Context, state *instanceState, sr *searchRequest, tr *s3.Trace, partial bool) (*searchResponse, *httpError) {
	qsp := tr.Span().StartChild("queue")
	if herr := s.admit(ctx, qsp); herr != nil {
		return nil, herr
	}
	defer func() { <-s.sem }()

	opts := []s3.Option{s3.WithK(sr.K), s3.WithContext(ctx)}
	if partial {
		opts = append(opts, s3.WithPartial())
	}
	if sr.Gamma != 0 {
		if sr.Gamma <= 1 {
			return nil, &httpError{status: http.StatusBadRequest, msg: "gamma must be > 1"}
		}
		opts = append(opts, s3.WithGamma(sr.Gamma))
	}
	if sr.Eta != 0 {
		if sr.Eta <= 0 || sr.Eta >= 1 {
			return nil, &httpError{status: http.StatusBadRequest, msg: "eta must be in (0,1)"}
		}
		opts = append(opts, s3.WithEta(sr.Eta))
	}
	if sr.BudgetMS > 0 {
		opts = append(opts, s3.WithBudget(time.Duration(sr.BudgetMS)*time.Millisecond))
	}
	if sr.MaxIterations > 0 {
		opts = append(opts, s3.WithMaxIterations(sr.MaxIterations))
	}
	if tr != nil {
		opts = append(opts, s3.WithTrace(tr))
	}

	s.searches.Add(1)
	results, info, err := state.inst.SearchInfoed(sr.Seeker, sr.Keywords, opts...)
	if err != nil {
		return nil, &httpError{status: http.StatusBadRequest, msg: err.Error()}
	}
	resp := &searchResponse{
		Results:      make([]searchResult, 0, len(results)),
		Exact:        info.Exact,
		Iterations:   info.Iterations,
		ElapsedMS:    float64(info.Elapsed.Microseconds()) / 1000,
		Warm:         info.Warm,
		Version:      state.version,
		Degraded:     info.Degraded,
		ShardsServed: info.ServedShards,
	}
	for _, r := range results {
		resp.Results = append(resp.Results, searchResult{
			URI: r.URI, Document: r.Document, Lower: r.Lower, Upper: r.Upper,
		})
	}
	return resp, nil
}

func (s *Server) handleExtension(w http.ResponseWriter, req *http.Request) {
	kw := req.URL.Query().Get("keyword")
	if kw == "" {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "missing keyword parameter"})
		return
	}
	state := s.acquire()
	ext := state.inst.Extension(kw)
	state.release()
	if ext == nil {
		ext = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"keyword": kw, "extension": ext})
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	Instance s3.Stats  `json:"instance"`
	Version  uint64    `json:"version"`
	LoadedAt time.Time `json:"loaded_at"`
	// LoadMS is how long loading the served instance took (initial load
	// or the reload that produced it); MappedBytes is the size of the
	// memory mappings backing it (0 in copy mode). Together they are the
	// cold-start story of the serving generation.
	LoadMS      int64 `json:"load_ms"`
	MappedBytes int64 `json:"mapped_bytes"`
	UptimeMS    int64 `json:"uptime_ms"`
	// UptimeS duplicates the uptime in seconds and Generation the served
	// load generation (same value as Version), matching the
	// s3_uptime_seconds / s3_server_generation metric names so dashboards
	// and /stats consumers agree on vocabulary.
	UptimeS    float64          `json:"uptime_s"`
	Generation uint64           `json:"generation"`
	Workers    int              `json:"workers"`
	Searches   uint64           `json:"searches"`
	Reloads    uint64           `json:"reloads"`
	ShardCount int              `json:"shard_count"`
	Shards     []shardStatsJSON `json:"shards"`
	Cache      cacheStats       `json:"cache"`
	ProxCache  proxCacheStats   `json:"prox_cache"`
	// Distributed carries the coordinator's aggregated view (per-worker
	// statuses and per-shard counters) when the served instance is a
	// distributed coordinator; absent otherwise.
	Distributed any `json:"distributed,omitempty"`
}

// distributedStatsProvider is implemented by instances that front a
// worker fleet (the distributed coordinator): DistributedStats returns
// the aggregated per-worker view for /stats.
type distributedStatsProvider interface {
	DistributedStats() any
}

// proxCacheStats is the /stats view of the seeker-proximity checkpoint
// cache (the warm path under the result cache).
type proxCacheStats struct {
	Enabled   bool   `json:"enabled"`
	MaxBytes  int64  `json:"max_bytes"`
	Bytes     int64  `json:"bytes"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Stores    uint64 `json:"stores"`
	Rejected  uint64 `json:"rejected"`
	Warmed    uint64 `json:"warmed"`
}

// shardStatsJSON is one shard's row in /stats: its content counts plus
// the cumulative search and round-work counters. The shape is stable —
// {shard, documents, components, tags, searches, rounds} — and matches
// the rows a distributed worker exports, so a rebalancer can consume
// either side without translation.
type shardStatsJSON struct {
	Shard      int    `json:"shard"`
	Documents  int    `json:"documents"`
	Components int    `json:"components"`
	Tags       int    `json:"tags"`
	Searches   uint64 `json:"searches"`
	Rounds     uint64 `json:"rounds"`
}

type cacheStats struct {
	Capacity  int    `json:"capacity"`
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	Warmed    uint64 `json:"warmed"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	state := s.acquire()
	defer state.release()
	s.mu.Lock()
	cs := cacheStats{
		Capacity:  s.cache.cap,
		Size:      s.cache.len(),
		Hits:      s.cache.hits,
		Misses:    s.cache.misses,
		Evictions: s.cache.evictions,
		Coalesced: s.coalesced.Load(),
		Warmed:    s.warmed.Load(),
	}
	s.mu.Unlock()
	shards := state.inst.Shards()
	rows := make([]shardStatsJSON, len(shards))
	for i, sh := range shards {
		rows[i] = shardStatsJSON{
			Shard:      i,
			Documents:  sh.Documents,
			Components: sh.Components,
			Tags:       sh.Tags,
			Searches:   sh.Searches,
			Rounds:     sh.Rounds,
		}
	}
	var distributed any
	if p, ok := state.inst.(distributedStatsProvider); ok {
		distributed = p.DistributedStats()
	}
	var ps proxCacheStats
	if s.prox != nil {
		st := s.prox.Stats()
		ps = proxCacheStats{
			Enabled:   true,
			MaxBytes:  st.MaxBytes,
			Bytes:     st.Bytes,
			Entries:   st.Entries,
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Stores:    st.Stores,
			Rejected:  st.Rejected,
			Warmed:    st.Warmed,
		}
	}
	writeJSON(w, http.StatusOK, &statsResponse{
		Instance:    state.inst.Stats(),
		Version:     state.version,
		LoadedAt:    state.loadedAt,
		LoadMS:      state.loadMS,
		MappedBytes: state.inst.MappedBytes(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
		UptimeS:     time.Since(s.start).Seconds(),
		Generation:  state.version,
		Workers:     cap(s.sem),
		Searches:    s.searches.Load(),
		Reloads:     s.reloads.Load(),
		ShardCount:  len(shards),
		Shards:      rows,
		Cache:       cs,
		ProxCache:   ps,
		Distributed: distributed,
	})
}

// SetDraining flips readiness: while draining, /healthz answers 503 so
// health-checked routers drain this replica before it shuts down.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, state := http.StatusOK, "serving"
	if s.draining.Load() {
		status, state = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":  state,
		"version": s.cur.Load().version,
	})
}

func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
}

func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Loader == nil {
		writeError(w, &httpError{status: http.StatusNotImplemented, msg: "server has no reload source"})
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	loadStart := time.Now()
	inst, err := s.cfg.Loader()
	if err != nil {
		// The old instance keeps serving: a failed reload is not fatal.
		writeError(w, &httpError{status: http.StatusInternalServerError, msg: "reload failed: " + err.Error()})
		return
	}
	old := s.cur.Load()
	next := newInstanceState(inst, old.version+1, time.Since(loadStart).Milliseconds())
	// Remember what the cache held before the swap invalidates it: those
	// keys are the hot query set, worth paying for again up front.
	s.mu.Lock()
	hot := s.cache.requests()
	s.mu.Unlock()
	if s.prox != nil {
		// Proximity checkpoints are bound to the outgoing instance; drop
		// them and attach the cache to the incoming one before it serves.
		s.prox.Purge()
		inst.SetProxCache(s.prox)
	}
	s.instrument(inst)
	s.cur.Store(next)
	s.reloads.Add(1)
	// Drop the server's reference to the outgoing state: in-flight
	// requests still hold theirs, and the last one out closes (unmaps)
	// the old instance — the swapped-out snapshot file can be unlinked or
	// rewritten immediately.
	old.release()
	s.mu.Lock()
	s.cache.purge()
	s.mu.Unlock()
	warmed := s.warmCache(next, hot)
	proxWarmed := s.warmProximity(next, hot)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "reloaded",
		"version":     next.version,
		"warmed":      warmed,
		"prox_warmed": proxWarmed,
		"instance":    inst.Stats(),
	})
}

// maxWarmReplay bounds how many cached queries a reload re-executes:
// replaying an entire large cache serially would hold up the /reload
// response (and reloadMu) for minutes, so only the hottest entries are
// paid for up front — the rest refill organically.
const maxWarmReplay = 256

// warmCache replays the pre-reload hot query set against the freshly
// swapped-in instance so the first clients after a reload keep hitting
// the cache. At most maxWarmReplay most-recently-used entries are
// replayed, oldest-first so the new cache ends up with the same recency
// order the old one had; queries whose seeker vanished from the new
// instance are skipped. Returns how many entries were warmed (also
// accumulated in the cache.warmed counter).
func (s *Server) warmCache(state *instanceState, hot []searchRequest) int {
	if len(hot) > maxWarmReplay {
		hot = hot[:maxWarmReplay]
	}
	warmed := 0
	for i := len(hot) - 1; i >= 0; i-- {
		sr := hot[i]
		if !state.inst.HasUser(sr.Seeker) {
			continue
		}
		resp, herr := s.runSearch(context.Background(), state, &sr, nil, false)
		if herr != nil || !resp.Exact {
			continue
		}
		s.mu.Lock()
		s.cache.put(sr.cacheKey(state.version), sr, resp)
		s.mu.Unlock()
		warmed++
	}
	s.warmed.Add(uint64(warmed))
	return warmed
}

// warmProxDepth is how deep a post-reload proximity seed explores: deep
// enough to cover the expensive early frontier growth of a typical search,
// shallow enough that warming many seekers stays cheap. Searches needing
// more depth continue from the seeded frontier.
const warmProxDepth = 8

// maxWarmSeekers bounds how many distinct seekers a reload pre-explores.
const maxWarmSeekers = 128

// warmProximity re-seeds the proximity cache after a reload for the
// hottest seekers (in result-cache recency order): queries the bounded
// result-cache replay re-executed have already re-published their
// frontiers, and this covers the remaining (seeker, γ, η) combinations —
// including the tail the replay cap skipped — so a result-cache miss
// right after a reload still starts from a warm frontier. Returns how
// many seeds were performed.
func (s *Server) warmProximity(state *instanceState, hot []searchRequest) int {
	if s.prox == nil {
		return 0
	}
	type proxTriple struct {
		seeker     string
		gamma, eta float64
	}
	seen := make(map[proxTriple]struct{})
	warmed := 0
	for _, sr := range hot {
		if len(seen) >= maxWarmSeekers {
			break
		}
		t := proxTriple{seeker: sr.Seeker, gamma: sr.Gamma, eta: sr.Eta}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if _, seeded := state.inst.WarmProximity(sr.Seeker, sr.Gamma, sr.Eta, warmProxDepth); seeded {
			warmed++
		}
	}
	return warmed
}

// Instance returns the currently served instance (tests and diagnostics).
func (s *Server) Instance() s3.Queryable { return s.cur.Load().inst }

// Version returns the current instance generation.
func (s *Server) Version() uint64 { return s.cur.Load().version }
