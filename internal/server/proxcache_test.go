package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"s3"
)

// statsProx fetches /stats and returns the prox_cache block.
func statsProx(t *testing.T, s *Server) proxCacheStats {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var body struct {
		ProxCache proxCacheStats `json:"prox_cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /stats body %q: %v", rec.Body.String(), err)
	}
	return body.ProxCache
}

// TestProxCacheWarmPath exercises the serving warm path under the result
// cache: a request that bypasses the result cache still reuses the
// seeker's cached exploration frontier, with byte-identical answers.
func TestProxCacheWarmPath(t *testing.T) {
	inst := testInstance(t, 60, 240, 3)
	s := newTestServer(t, Config{Instance: inst})
	h := s.Handler()
	seeker, kw := aQuery(t, inst)
	// no_cache skips the result cache, so every request reaches the
	// engine — the second one over a warm proximity frontier.
	body := fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5,"no_cache":true}`, seeker, kw)

	_, cold := postSearch(t, h, body)
	ps := statsProx(t, s)
	if !ps.Enabled {
		t.Fatal("prox cache not enabled by default")
	}
	if ps.Stores == 0 || ps.Entries == 0 {
		t.Fatalf("cold search published no checkpoint: %+v", ps)
	}

	_, warm := postSearch(t, h, body)
	ps = statsProx(t, s)
	if ps.Hits == 0 {
		t.Fatalf("warm search did not hit the prox cache: %+v", ps)
	}
	if len(cold.Results) == 0 || len(cold.Results) != len(warm.Results) {
		t.Fatalf("result shape diverged: %d vs %d", len(cold.Results), len(warm.Results))
	}
	for i := range cold.Results {
		if cold.Results[i] != warm.Results[i] {
			t.Fatalf("warm result %d diverged: %+v vs %+v", i, cold.Results[i], warm.Results[i])
		}
	}
	if cold.Iterations != warm.Iterations {
		t.Fatalf("iterations diverged: %d vs %d", cold.Iterations, warm.Iterations)
	}
}

// TestProxCacheDisabled: a negative budget turns the warm path off.
func TestProxCacheDisabled(t *testing.T) {
	inst := testInstance(t, 40, 150, 3)
	s := newTestServer(t, Config{Instance: inst, ProxCacheBytes: -1})
	h := s.Handler()
	seeker, kw := aQuery(t, inst)
	postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":3}`, seeker, kw))
	if ps := statsProx(t, s); ps.Enabled || ps.Stores != 0 {
		t.Fatalf("disabled prox cache reported activity: %+v", ps)
	}
}

// TestReloadReseedsProximity: a reload purges the stale checkpoints, the
// result-cache replay re-publishes the frontiers of the queries it
// re-executes, and explicit pre-exploration covers the hot seekers the
// replay left cold.
func TestReloadReseedsProximity(t *testing.T) {
	small := testInstance(t, 40, 150, 3)
	big := testInstance(t, 60, 240, 4)
	s := newTestServer(t, Config{
		Instance: small,
		Loader:   func() (s3.Queryable, error) { return big, nil },
	})
	h := s.Handler()
	seeker, kw := aQuery(t, small)
	postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":[%q],"k":5}`, seeker, kw))
	// A second hot seeker whose (exact, cacheable) query matches nothing:
	// its replay publishes no frontier, so only the explicit re-seeding
	// pass warms it.
	other := otherSeeker(t, small, big, seeker)
	postSearch(t, h, fmt.Sprintf(`{"seeker":%q,"keywords":["zz-no-such-keyword"],"k":5}`, other))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/reload", nil))
	var reloaded struct {
		Warmed     int `json:"warmed"`
		ProxWarmed int `json:"prox_warmed"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reloaded); err != nil {
		t.Fatal(err)
	}
	if reloaded.Warmed != 2 {
		t.Errorf("reload replayed %d result-cache entries, want 2", reloaded.Warmed)
	}
	// The first seeker's frontier was re-published by its replayed search
	// (deeper than the seed depth — a no-op seed, not counted); only the
	// no-match seeker needed an explicit seed.
	if reloaded.ProxWarmed != 1 {
		t.Errorf("reload pre-explored %d seekers, want 1", reloaded.ProxWarmed)
	}
	ps := statsProx(t, s)
	if ps.Warmed != 1 {
		t.Errorf("prox warmed counter = %d, want 1", ps.Warmed)
	}
	// Everything cached now belongs to the new instance: the replayed hot
	// query's frontier plus the explicit seed, nothing stale.
	if ps.Entries != 2 {
		t.Errorf("checkpoints after re-seeding reload = %d, want 2: %+v", ps.Entries, ps)
	}
}

// otherSeeker picks a user present in both instances, different from avoid.
func otherSeeker(t *testing.T, a, b *s3.Instance, avoid string) string {
	t.Helper()
	for u := 0; u < 50; u++ {
		s := fmt.Sprintf("tw:u%d", u)
		if s != avoid && a.HasUser(s) && b.HasUser(s) {
			return s
		}
	}
	t.Fatal("no second seeker available")
	return ""
}
