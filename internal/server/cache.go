package server

import "container/list"

// lruCache is a fixed-capacity least-recently-used map from query keys to
// finished search responses. It is not safe for concurrent use; the
// Server guards it with its mutex.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type lruEntry struct {
	key string
	// req is the normalized request that produced val; /reload replays
	// these against the new instance to re-warm the cache.
	req searchRequest
	val *searchResponse
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached response and promotes the entry.
func (c *lruCache) get(key string) (*searchResponse, bool) {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes an entry, evicting the least recently used one
// when over capacity.
func (c *lruCache) put(key string, req searchRequest, val *searchResponse) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, req: req, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// requests returns the cached requests in recency order (most recently
// used first) — the hot query set a reload replays.
func (c *lruCache) requests() []searchRequest {
	out := make([]searchRequest, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).req)
	}
	return out
}

// purge drops every entry (hot reload invalidates all cached answers) but
// keeps the lifetime counters.
func (c *lruCache) purge() {
	c.order.Init()
	clear(c.items)
}

func (c *lruCache) len() int { return c.order.Len() }
