// Host-grouped sessions: the coordinator-side half of proto 4.
//
// When several shards of the picked cover land on the same worker
// process, the coordinator opens ONE session covering all of them
// (/shard/v1/beginset) instead of one per shard. The worker drives the
// whole group off a single shared proximity iterator — one Step per
// round feeds every co-hosted shard — and one /shard/v1/rounds RPC per
// batch returns a RoundInfo per member per round. Coordinator-side, the
// shared session is split back into per-shard views (hostShardView) so
// core.Coordinate and the failover wrapper keep seeing one
// ShardExecutor per shard: the views serialize on the session, the
// first one to need a round fetches for all, and the others consume
// from the shared buffer without touching the wire.
//
// Failover stays per shard: a view that fails (or whose whole host
// dies) is abandoned individually and its failoverExecutor re-begins a
// dedicated single-shard session on a replica, fast-forwarded through
// the consumed rounds — answers stay byte-identical either way.
package dshard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// shardConn is the connection-level contract the failover wrapper
// drives: one shard's view of a worker session. RemoteExecutor (a
// dedicated per-shard session) and hostShardView (one member of a
// host-grouped session) both satisfy it.
type shardConn interface {
	Begin(spec core.SearchSpec) (core.BeginInfo, error)
	Round() (core.RoundInfo, error)
	Finalize() (core.RoundInfo, error)
	End()
	PlanRounds(batch int, speculate bool)
	TakeSpan() *obs.Span
	FastForward(upto uint32) error
	buffered() (ahead int, speculating bool)
	baseURL() string
	hedgeable() bool
}

var (
	_ shardConn = (*RemoteExecutor)(nil)
	_ shardConn = (*hostShardView)(nil)
)

// hostRoundsResult is one host-grouped fetch's outcome: round-major
// rows (one RoundInfo per member per executed round), the worker-side
// span subtree for the batch, and the error.
type hostRoundsResult struct {
	rows [][]core.RoundInfo
	span *obs.Span
	err  error
}

// hostSession is one proto-4 worker session covering a group of
// co-hosted shards. It reuses a RemoteExecutor purely for its post
// plumbing (CRC framing, instruments, RPC timeout, the sticky
// transport-error latch); the round buffer and collective begin /
// finalize state live here, under one mutex the member views serialize
// on. Lockstep guarantees every view consumes the same round sequence,
// so whichever view first needs round r fetches the batch for all.
type hostSession struct {
	rx      *RemoteExecutor // post plumbing + sticky transport error
	shards  []int           // the group, in reply order
	noSet   *atomic.Bool    // worker's "no beginset" latch (live-404 relatch)
	metrics *rpcMetrics
	cancel  context.CancelFunc // cancels the session's RPC context
	codec   *deltaCodec        // proto-5 decode shadow, one slot per member

	mu    sync.Mutex
	begun bool

	// Collective begin: the first view to call Begin posts the beginset
	// frame; the others pick up the stored per-member infos (or the
	// stored error — a failed beginset fails every member).
	beginDone  bool
	beginInfos []core.BeginInfo
	beginErr   error
	beginSpan  *obs.Span

	// The shared round buffer. buf[i] is round pruned+1+i, one RoundInfo
	// per member; rows are pruned once every live view has consumed them.
	// pre, when non-nil, is the single outstanding speculative fetch.
	fetched   uint32
	pruned    uint32
	buf       [][]core.RoundInfo
	pre       chan hostRoundsResult
	batchSpan *obs.Span

	// Collective finalize, same shape as begin.
	finDone  bool
	finInfos []core.RoundInfo
	finErr   error
	finSpan  *obs.Span

	views   []*hostShardView
	ended   int
	endSent bool
}

// hostShardView is one shard's executor-facing view of a hostSession.
type hostShardView struct {
	s        *hostSession
	idx      int    // position in the session's shard list
	consumed uint32 // rounds this view handed to its coordinator goroutine
	dead     atomic.Bool
	span     *obs.Span
	endedF   bool // under s.mu
}

// newHostSession opens one worker session covering shards and returns a
// per-shard view (ordered as shards) plus each view's cancel func. The
// beginset frame is posted lazily by the first view's Begin.
func (c *Coordinator) newHostSession(ctx context.Context, ref *workerRef, shards []int,
	traceID uint64, budget time.Duration) ([]shardConn, []context.CancelFunc) {
	rctx, cancel := context.WithCancel(ctx)
	rx := newRemoteExecutor(c.client, ref.url, c.nextSearchID()).
		withTracing(traceID).
		withMetrics(c.metrics).
		withBatching(&ref.noBatch, c.cfg.MaxRoundBatch, budget).
		withResilience(rctx, c.cfg.RPCTimeout, &ref.noReplay, &ref.lat)
	if !c.cfg.NoDelta {
		rx.withDelta(&ref.noDelta)
	}
	s := &hostSession{rx: rx, shards: shards, noSet: &ref.noSet, metrics: c.metrics, cancel: cancel,
		codec: newDeltaCodec(len(shards))}
	conns := make([]shardConn, len(shards))
	cancels := make([]context.CancelFunc, len(shards))
	for i := range shards {
		v := &hostShardView{s: s, idx: i}
		s.views = append(s.views, v)
		conns[i] = v
		cancels[i] = v.cancelConn
	}
	if len(shards) > 1 {
		c.metrics.addHostSession()
	}
	return conns, cancels
}

// cancelConn abandons this view's use of the session; the shared RPC
// context is cancelled only once every member is dead, so one shard's
// failover never kills its siblings' in-flight rounds.
func (v *hostShardView) cancelConn() {
	v.dead.Store(true)
	s := v.s
	for _, vv := range s.views {
		if !vv.dead.Load() {
			return
		}
	}
	if s.cancel != nil {
		s.cancel()
	}
}

// Begin implements shardConn: the first arriving view posts the
// beginset covering the whole group; every view returns its member's
// BeginInfo (or the shared error).
func (v *hostShardView) Begin(spec core.SearchSpec) (core.BeginInfo, error) {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.beginDone {
		s.beginDone = true
		s.beginInfos, s.beginSpan, s.beginErr = s.doBeginLocked(spec)
		s.begun = s.beginErr == nil
	}
	if s.beginErr != nil {
		return core.BeginInfo{}, s.beginErr
	}
	if s.beginSpan != nil {
		v.span, s.beginSpan = s.beginSpan, nil
	}
	return s.beginInfos[v.idx], nil
}

func (s *hostSession) doBeginLocked(spec core.SearchSpec) ([]core.BeginInfo, *obs.Span, error) {
	start := time.Now()
	br := beginSetRequest{searchID: s.rx.searchID, shards: s.shards, spec: spec, traceID: s.rx.traceID}
	if s.rx.budget > 0 {
		// Proto-4 workers always understand the trailing deadline field;
		// the grace mirrors the per-shard path's.
		br.deadlineMicros = uint64((s.rx.budget + 2*time.Second).Microseconds())
	}
	fb, err := s.rx.post(epBeginSet, encodeBeginSetRequest(br))
	if err != nil {
		if errors.Is(err, errNoBeginSetEndpoint) && s.noSet != nil {
			// The worker rolled back below proto 4 mid-flight: latch it so
			// the next cover plans per-shard sessions, and fail over now.
			s.noSet.Store(true)
		}
		return nil, nil, s.rx.setErr(err)
	}
	infos, sp, derr := decodeBeginSetReply(fb.b, len(s.shards), start)
	putFrame(fb)
	if derr != nil {
		return nil, nil, s.rx.setErr(derr)
	}
	return infos, sp, nil
}

// fetchRounds runs one host-grouped batched fetch: up to batch rounds
// starting at from, a RoundInfo per member per round. Mutex-free — the
// speculative prefetch goroutine calls it too; it touches only
// immutable session fields, the rx atomics and the wire.
func (s *hostSession) fetchRounds(from uint32, batch int) hostRoundsResult {
	n := batch
	if n < 1 {
		n = 1
	}
	if s.rx.batchCap > 0 && n > s.rx.batchCap {
		n = s.rx.batchCap
	}
	if n > maxBatchRounds {
		n = maxBatchRounds
	}
	start := time.Now()
	rr := roundsRequest{searchID: s.rx.searchID, from: from, max: uint32(n)}
	if s.rx.deltaOK() {
		rr.flags = reqFlagDelta
	}
	req := getFrame()
	req.b = appendRoundsRequest(req.b[:0], rr)
	fb, err := s.rx.post(epRounds, req.b)
	putFrame(req)
	if err != nil {
		if errors.Is(err, errNoRoundsEndpoint) {
			// The worker lost the batched endpoint mid-flight (rollback).
			// Host sessions only exist in batched framing, so latch both
			// capabilities off; the failover wrapper re-attaches over the
			// per-round protocol without benching the worker.
			if s.rx.noBatch != nil {
				s.rx.noBatch.Store(true)
			}
			if s.noSet != nil {
				s.noSet.Store(true)
			}
		}
		return hostRoundsResult{err: err}
	}
	rows, sp, err := s.codec.decodeHostRounds(fb.b, start)
	nBytes := len(fb.b)
	putFrame(fb)
	if err != nil {
		return hostRoundsResult{err: err}
	}
	s.metrics.observeBatch(len(rows))
	s.metrics.observeHostRPC(start, len(s.shards))
	s.metrics.observeReply(nBytes, s.codec.lastDelta, s.codec.lastFull)
	return hostRoundsResult{rows: rows, span: sp}
}

// fillLocked lands the next batch in the shared buffer: the outstanding
// speculative fetch if one is in flight, a fresh fetch otherwise. The
// session mutex stays held across the RPC on purpose — sibling views
// blocking on it need exactly the rounds this fetch returns.
func (s *hostSession) fillLocked() error {
	var res hostRoundsResult
	if ch := s.pre; ch != nil {
		s.pre = nil
		res = <-ch
	} else {
		res = s.fetchRounds(s.fetched+1, int(s.rx.batchHint.Load()))
	}
	if res.err != nil {
		return s.rx.setErr(res.err)
	}
	if len(res.rows) == 0 {
		return s.rx.setErr(fmt.Errorf("dshard: %s: empty host rounds reply", s.rx.base))
	}
	s.buf = append(s.buf, res.rows...)
	s.fetched += uint32(len(res.rows))
	s.batchSpan = res.span
	return nil
}

// Round implements shardConn: this member's next round, fetched for the
// whole group when the shared buffer is dry. Exactly one RoundInfo per
// call, in round order — the grouping of shards into one RPC is as
// invisible to the coordinator's stop logic as the grouping of rounds
// into batches.
func (v *hostShardView) Round() (core.RoundInfo, error) {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rx.Err(); err != nil {
		return core.RoundInfo{}, err
	}
	target := v.consumed + 1
	for target > s.pruned+uint32(len(s.buf)) {
		if err := s.fillLocked(); err != nil {
			return core.RoundInfo{}, err
		}
	}
	row := s.buf[target-s.pruned-1]
	v.consumed = target
	if s.batchSpan != nil {
		// The batch's span subtree surfaces with its first consumed round,
		// on whichever member got there first.
		v.span, s.batchSpan = s.batchSpan, nil
	}
	info := row[v.idx]
	s.pruneLocked()
	s.maybeSpeculateLocked(info)
	return info, nil
}

// pruneLocked drops buffered rows every live view has consumed.
func (s *hostSession) pruneLocked() {
	minC := s.fetched
	for _, v := range s.views {
		if !v.dead.Load() && v.consumed < minC {
			minC = v.consumed
		}
	}
	if drop := minC - s.pruned; drop > 0 && int(drop) <= len(s.buf) {
		s.buf = s.buf[drop:]
		s.pruned = minC
	}
}

// maybeSpeculateLocked issues the group's single speculative prefetch
// once every live view has drained the buffer (lockstep means they all
// arrive within one merge of each other) and the just-consumed round
// still looks continuable — the same late-issue policy as the per-shard
// path, so a search approaching its stop leaves no batch burning a
// whole host's worth of shard CPU.
func (s *hostSession) maybeSpeculateLocked(info core.RoundInfo) {
	if s.pre != nil || !s.rx.wantSpec.Load() || info.Done || info.Tail < 1e-15 {
		return
	}
	for _, v := range s.views {
		if !v.dead.Load() && v.consumed < s.fetched {
			return
		}
	}
	from, batch := s.fetched+1, int(s.rx.batchHint.Load())
	ch := make(chan hostRoundsResult, 1)
	s.pre = ch
	s.metrics.addSpecIssued()
	go func() { ch <- s.fetchRounds(from, batch) }()
}

// Finalize implements shardConn: one finalize RPC per session, a
// RoundInfo per member in the reply.
func (v *hostShardView) Finalize() (core.RoundInfo, error) {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.finDone {
		s.finDone = true
		s.finInfos, s.finSpan, s.finErr = s.doFinalizeLocked(v.consumed)
	}
	if s.finErr != nil {
		return core.RoundInfo{}, s.finErr
	}
	if s.finSpan != nil {
		v.span, s.finSpan = s.finSpan, nil
	}
	return s.finInfos[v.idx], nil
}

func (s *hostSession) doFinalizeLocked(round uint32) ([]core.RoundInfo, *obs.Span, error) {
	start := time.Now()
	rr := roundRequest{searchID: s.rx.searchID, round: round}
	if s.rx.deltaOK() {
		rr.flags = reqFlagDelta
	}
	fb, err := s.rx.post(epFinalize, encodeRoundRequest(rr))
	if err != nil {
		return nil, nil, s.rx.setErr(err)
	}
	infos, sp, derr := s.codec.decodeHostFinalize(fb.b, start)
	nBytes := len(fb.b)
	putFrame(fb)
	if derr != nil {
		return nil, nil, s.rx.setErr(derr)
	}
	s.metrics.observeReply(nBytes, s.codec.lastDelta, s.codec.lastFull)
	return infos, sp, nil
}

// End implements shardConn: the session is released once, when its last
// view ends; unconsumed buffered rounds and a drained in-flight
// prefetch are priced as speculation waste per round (not per member —
// the worker executed each round once).
func (v *hostShardView) End() {
	s := v.s
	s.mu.Lock()
	if v.endedF {
		s.mu.Unlock()
		return
	}
	v.endedF = true
	v.dead.Store(true)
	s.ended++
	last := s.ended == len(s.views) && !s.endSent
	var pre chan hostRoundsResult
	var wasted int
	var endRound uint32
	begun := s.begun
	if last {
		s.endSent = true
		pre, s.pre = s.pre, nil
		for _, vv := range s.views {
			if vv.consumed > endRound {
				endRound = vv.consumed
			}
		}
		wasted = int(s.fetched - endRound)
		s.buf = nil
	}
	s.mu.Unlock()
	if !last {
		return
	}
	go func() {
		if pre != nil {
			if res := <-pre; res.err == nil {
				wasted += len(res.rows)
			}
		}
		s.metrics.addSpecWasted(wasted)
		if begun {
			// Released even when the search's context died: own bounded
			// context, same as the per-shard path.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			fb, _ := s.rx.postCtx(ctx, epEnd, encodeRoundRequest(roundRequest{searchID: s.rx.searchID, round: endRound}))
			putFrame(fb)
		}
		if s.cancel != nil {
			s.cancel()
		}
	}()
}

// FastForward implements shardConn for the failover path. Only
// single-view sessions are ever fast-forwarded (failover and hedging
// attach dedicated singletons); a multi-view session cannot replay one
// member independently, so that is a wiring bug, not a worker fault.
func (v *hostShardView) FastForward(upto uint32) error {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.views) > 1 {
		return s.rx.setErr(fmt.Errorf("dshard: %s: fast-forward on a %d-view host session", s.rx.base, len(s.views)))
	}
	for v.consumed < upto {
		fb, err := s.rx.post(epReplay, encodeReplayRequest(replayRequest{
			searchID: s.rx.searchID, from: v.consumed + 1, upto: upto,
		}))
		if err == nil {
			rep, derr := decodeReplayReply(fb.b)
			putFrame(fb)
			if derr != nil {
				return s.rx.setErr(derr)
			}
			if rep.round <= v.consumed || rep.round > upto {
				return s.rx.setErr(fmt.Errorf("dshard: %s: replay moved session to round %d (was %d, want %d)",
					s.rx.base, rep.round, v.consumed, upto))
			}
			v.consumed = rep.round
			s.fetched, s.pruned, s.buf = rep.round, rep.round, nil
			// Replay resets the worker's delta shadow; mirror that here.
			s.codec.reset()
			continue
		}
		if !errors.Is(err, errNoReplayEndpoint) {
			return s.rx.setErr(err)
		}
		// A proto-4 worker always speaks replay; a live 404 means a
		// mid-flight rollback. Fetch-and-discard still lands the state.
		res := s.fetchRounds(v.consumed+1, int(upto-v.consumed))
		if res.err != nil {
			return s.rx.setErr(res.err)
		}
		n := uint32(len(res.rows))
		if n == 0 || v.consumed+n > upto {
			return s.rx.setErr(fmt.Errorf("dshard: %s: replay fallback returned %d rounds past target %d",
				s.rx.base, n, upto))
		}
		v.consumed += n
		s.fetched, s.pruned, s.buf = v.consumed, v.consumed, nil
	}
	return nil
}

// PlanRounds implements shardConn: lockstep hands every member the same
// plan each scatter, so last-write-wins stores are exact.
func (v *hostShardView) PlanRounds(batch int, speculate bool) {
	if batch < 1 {
		batch = 1
	}
	v.s.rx.batchHint.Store(int32(batch))
	v.s.rx.wantSpec.Store(speculate)
}

// TakeSpan implements shardConn; only this view's own scatter goroutine
// reads it, between its own Round calls.
func (v *hostShardView) TakeSpan() *obs.Span {
	sp := v.span
	v.span = nil
	return sp
}

// buffered reports rounds fetched but not yet consumed by THIS view.
func (v *hostShardView) buffered() (ahead int, speculating bool) {
	s := v.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.fetched - v.consumed), s.pre != nil
}

func (v *hostShardView) baseURL() string { return v.s.rx.base }

// hedgeable: a hedge races the primary's Round from a helper goroutine,
// which a multi-member session's shared mutex would deadlock against
// its siblings; singletons hedge exactly like dedicated sessions.
func (v *hostShardView) hedgeable() bool { return len(v.s.views) == 1 }

// connect opens this search's connections to ref for the shards it was
// picked to serve: views of one host-grouped session against a proto-4
// worker, dedicated per-shard sessions otherwise. Proto-4 workers get
// beginset even for a single shard — legacy begin cannot address a
// non-primary member of a multi-shard worker.
func (c *Coordinator) connect(ctx context.Context, ref *workerRef, shards []int,
	traceID uint64, budget time.Duration) ([]shardConn, []context.CancelFunc) {
	if c.hostCapable(ref) {
		return c.newHostSession(ctx, ref, shards, traceID, budget)
	}
	conns := make([]shardConn, len(shards))
	cancels := make([]context.CancelFunc, len(shards))
	for i := range shards {
		rctx, cancel := context.WithCancel(ctx)
		rx := newRemoteExecutor(c.client, ref.url, c.nextSearchID()).
			withTracing(traceID).
			withMetrics(c.metrics).
			withBatching(&ref.noBatch, c.cfg.MaxRoundBatch, budget).
			withResilience(rctx, c.cfg.RPCTimeout, &ref.noReplay, &ref.lat)
		if !c.cfg.NoDelta {
			rx.withDelta(&ref.noDelta)
		}
		conns[i] = rx
		cancels[i] = cancel
	}
	return conns, cancels
}
