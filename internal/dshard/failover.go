// Mid-search failover: a ShardExecutor wrapper that survives worker
// deaths without restarting the search.
//
// core.Coordinate consumes rounds one at a time and never looks back, so
// everything a replacement replica needs to rejoin a search mid-flight is
// the spec and the count of rounds the coordinator has consumed: workers
// execute identical floating-point operations over the shared substrate,
// so a fresh session fast-forwarded through the same number of rounds is
// bit-identical to the failed replica's state. failoverExecutor exploits
// that — on a transport error it re-begins the session on another replica
// of the same shard (fresh search id), replays rounds 1..consumed through
// /shard/v1/replay (or a batched fetch with discarded results against
// older workers) and resumes lockstep. The recovered search's answer is
// byte-identical to an undisturbed one, property-tested in chaos_test.go.
//
// The same wrapper issues hedged round RPCs: when a demand fetch is about
// to block on a primary that has been slower than its P99 for the hedge
// delay, a replica session is established (begin + replay) and races it —
// first reply wins, the loser is cancelled and released. A slow primary
// is abandoned, never benched: slow is not dead.
package dshard

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// latRing estimates a worker's round-fetch P99 from a sliding window of
// RTTs. The estimate drives only the hedge delay — never answers — so a
// cheap cached quantile recomputed every few adds is plenty.
type latRing struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int
	p99 atomic.Int64 // cached estimate in ns; 0 until enough samples
}

// latRing tuning: recompute cadence, minimum samples before hedging, and
// the clamp that keeps a degenerate estimate from hedging every RPC (or
// never).
const (
	latRecomputeEvery = 16
	latMinSamples     = 32
	minHedgeDelay     = 2 * time.Millisecond
	maxHedgeDelay     = 2 * time.Second
)

func (l *latRing) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	recompute := l.n >= latMinSamples && l.n%latRecomputeEvery == 0
	var window []time.Duration
	if recompute {
		window = make([]time.Duration, min(l.n, len(l.buf)))
		copy(window, l.buf[:len(window)])
	}
	l.mu.Unlock()
	if !recompute {
		return
	}
	slices.Sort(window)
	p := window[len(window)*99/100]
	if p < minHedgeDelay {
		p = minHedgeDelay
	}
	if p > maxHedgeDelay {
		p = maxHedgeDelay
	}
	l.p99.Store(int64(p))
}

// hedgeDelay returns the cached P99 estimate, or 0 while the window is
// too small to trust (no hedging until then).
func (l *latRing) hedgeDelay() time.Duration {
	return time.Duration(l.p99.Load())
}

// failoverExecutor wraps the RemoteExecutor for one shard with failover
// and hedging. It implements core.ShardExecutor (and RoundPlanner /
// spanSource) so core.Coordinate drives it unchanged; all methods are
// called from that shard's scatter goroutine, so the mutable fields need
// no locking (the hedge goroutine touches only its own remote, the
// coordinator's note methods and its result channel).
type failoverExecutor struct {
	c     *Coordinator
	shard int
	ctx   context.Context // the search's context (never nil)

	traceID uint64
	budget  time.Duration

	spec      core.SearchSpec
	beginInfo core.BeginInfo
	begun     bool
	consumed  uint32 // rounds the coordinator consumed from this shard

	cur    shardConn
	cancel context.CancelFunc // cancels cur's RPC context
	ref    *workerRef

	// tried is every replica this executor has held a session on (or
	// excluded from the start); failed is the subset that broke, for the
	// coordinator's post-search accounting.
	tried  map[*workerRef]bool
	failed map[*workerRef]error

	planBatch int
	planSpec  bool
	relegated bool // one protocol downgrade per executor

	hedging    bool
	hedgeDelay time.Duration // fixed override; 0 derives from the worker's P99
}

var (
	_ core.ShardExecutor = (*failoverExecutor)(nil)
	_ core.RoundPlanner  = (*failoverExecutor)(nil)
)

// newFailoverExecutor binds a shard's executor to its first replica.
// conn/cancel, when non-nil, is the pre-built connection the search's
// cover planning opened (possibly one view of a host-grouped session);
// nil attaches a fresh one. excluded seeds the tried set (replicas
// earlier whole-search attempts already benched).
func (c *Coordinator) newFailoverExecutor(ctx context.Context, shard int, ref *workerRef,
	conn shardConn, cancel context.CancelFunc,
	copts core.CoordOptions, excluded map[*workerRef]bool) *failoverExecutor {
	fx := &failoverExecutor{
		c:          c,
		shard:      shard,
		ctx:        ctx,
		traceID:    copts.Trace.TraceID(),
		budget:     copts.Budget,
		tried:      map[*workerRef]bool{ref: true},
		failed:     map[*workerRef]error{},
		planBatch:  1,
		hedging:    !c.cfg.NoHedging,
		hedgeDelay: c.cfg.HedgeDelay,
	}
	for w := range excluded {
		fx.tried[w] = true
	}
	fx.ref = ref
	if conn != nil {
		fx.cur, fx.cancel = conn, cancel
	} else {
		fx.cur, fx.cancel = fx.attach(ref)
	}
	return fx
}

// attach builds a fresh single-shard connection to one replica under
// its own cancelable context (a hedge loser must be cancellable without
// killing the search). Against a proto-4 worker this is a one-view host
// session — the only session kind that can address a non-primary shard.
func (fx *failoverExecutor) attach(ref *workerRef) (shardConn, context.CancelFunc) {
	conns, cancels := fx.c.connect(fx.ctx, ref, []int{fx.shard}, fx.traceID, fx.budget)
	return conns[0], cancels[0]
}

// fatal reports errors failover cannot route around: deterministic
// application rejections (every replica would repeat them) and the
// search's own cancellation.
func (fx *failoverExecutor) fatal(err error) bool {
	var app *appError
	return errors.As(err, &app) || fx.ctx.Err() != nil
}

// capabilityLost reports errors that mean the worker dropped a protocol
// extension mid-flight (a rollback): the session has already flipped the
// relevant latch, so re-attaching selects the downgraded protocol. Not a
// failure — the worker must not be benched for it.
func capabilityLost(err error) bool {
	return errors.Is(err, errNoRoundsEndpoint) || errors.Is(err, errNoBeginSetEndpoint)
}

// relegate abandons the current session and re-establishes on the SAME
// worker over whatever protocol its latches now select, fast-forwarded
// through the consumed rounds. Used once per executor, after a
// capability loss.
func (fx *failoverExecutor) relegate() error {
	fx.cancel()
	fx.cur.End()
	r, cancel := fx.attach(fx.ref)
	if err := fx.establishOn(r, fx.consumed); err != nil {
		cancel()
		r.End()
		return err
	}
	fx.cur, fx.cancel = r, cancel
	return nil
}

// markFailed benches the current replica and abandons its session.
func (fx *failoverExecutor) markFailed(err error) {
	fx.c.noteWorkerFailure(fx.ref, err)
	fx.failed[fx.ref] = err
	fx.cancel()
	fx.cur.End()
}

// establishOn opens a replacement session on r and fast-forwards it to
// the consumed round. Read-only on fx (the hedge goroutine calls it).
func (fx *failoverExecutor) establishOn(r shardConn, consumed uint32) error {
	r.PlanRounds(fx.planBatch, false)
	info, err := r.Begin(fx.spec)
	if err != nil {
		return err
	}
	if fx.begun && info.Matched != fx.beginInfo.Matched {
		return fmt.Errorf("dshard: %s: replica diverges on begin (matched %d, had %d)",
			r.baseURL(), info.Matched, fx.beginInfo.Matched)
	}
	if consumed > 0 {
		return r.FastForward(consumed)
	}
	return nil
}

// failover replaces the (already failed and abandoned) current replica
// with a fresh session on another one, fast-forwarded through the rounds
// the coordinator consumed. Loops until a replica takes or the shard has
// none left.
func (fx *failoverExecutor) failover() error {
	for {
		if err := fx.ctx.Err(); err != nil {
			return err
		}
		ref, err := fx.c.pickShard(fx.shard, fx.tried)
		if err != nil {
			return err
		}
		fx.tried[ref] = true
		r, cancel := fx.attach(ref)
		if err := fx.establishOn(r, fx.consumed); err != nil {
			cancel()
			r.End()
			if fx.fatal(err) {
				return err
			}
			fx.c.noteWorkerFailure(ref, err)
			fx.failed[ref] = err
			continue
		}
		fx.cur, fx.cancel, fx.ref = r, cancel, ref
		fx.c.failovers.Add(1)
		return nil
	}
}

// Begin implements core.ShardExecutor.
func (fx *failoverExecutor) Begin(spec core.SearchSpec) (core.BeginInfo, error) {
	fx.spec = spec
	for {
		info, err := fx.cur.Begin(spec)
		if err == nil {
			fx.beginInfo, fx.begun = info, true
			return info, nil
		}
		if fx.fatal(err) {
			return core.BeginInfo{}, err
		}
		if capabilityLost(err) && !fx.relegated {
			// Nothing consumed yet: re-attach (the latch now selects the
			// downgraded protocol) and retry the begin on the same worker.
			fx.relegated = true
			fx.cancel()
			fx.cur.End()
			fx.cur, fx.cancel = fx.attach(fx.ref)
			continue
		}
		fx.markFailed(err)
		if err := fx.ctx.Err(); err != nil {
			return core.BeginInfo{}, err
		}
		ref, perr := fx.c.pickShard(fx.shard, fx.tried)
		if perr != nil {
			return core.BeginInfo{}, err
		}
		fx.tried[ref] = true
		fx.cur, fx.cancel = fx.attach(ref)
		fx.ref = ref
		fx.c.failovers.Add(1)
	}
}

// Round implements core.ShardExecutor: the current replica's next round,
// hedged when it stalls, failed over when it breaks.
func (fx *failoverExecutor) Round() (core.RoundInfo, error) {
	for {
		info, err := fx.roundAttempt()
		if err == nil {
			fx.consumed++
			return info, nil
		}
		if fx.fatal(err) {
			return core.RoundInfo{}, err
		}
		if capabilityLost(err) && !fx.relegated {
			fx.relegated = true
			if fx.relegate() == nil {
				continue
			}
		}
		fx.markFailed(err)
		if ferr := fx.failover(); ferr != nil {
			return core.RoundInfo{}, fmt.Errorf("%w (failover: %v)", err, ferr)
		}
	}
}

// roundAttempt runs one Round on the current replica, racing a hedge
// when the fetch is network-bound and the primary overstays its delay.
func (fx *failoverExecutor) roundAttempt() (core.RoundInfo, error) {
	if fx.hedging && fx.cur.hedgeable() {
		if ahead, speculating := fx.cur.buffered(); ahead == 0 && !speculating {
			delay := fx.hedgeDelay
			if delay <= 0 {
				delay = fx.ref.lat.hedgeDelay()
			}
			if delay > 0 {
				return fx.hedgedRound(delay)
			}
		}
	}
	return fx.cur.Round()
}

type roundOutcome struct {
	info core.RoundInfo
	err  error
}

// hedgedRound races the primary's round fetch against a replica session
// established after the hedge delay. First reply wins; the loser is
// cancelled and its session released. A primary that loses the race is
// abandoned but not benched — slowness is not failure, and benching on
// it would let one GC pause drain the fleet.
func (fx *failoverExecutor) hedgedRound(delay time.Duration) (core.RoundInfo, error) {
	primary, pcancel := fx.cur, fx.cancel
	pch := make(chan roundOutcome, 1)
	go func() {
		info, err := primary.Round()
		pch <- roundOutcome{info, err}
	}()
	t := time.NewTimer(delay)
	select {
	case r := <-pch:
		t.Stop()
		return r.info, r.err
	case <-t.C:
	}
	// The hedge target is picked here, synchronously, so no goroutine
	// ever mutates fx's replica bookkeeping concurrently.
	href, err := fx.c.pickShard(fx.shard, fx.tried)
	if err != nil {
		r := <-pch // no replica to hedge with: wait the primary out
		return r.info, r.err
	}
	fx.tried[href] = true
	fx.c.hedgeIssued.Add(1)
	hrem, hcancel := fx.attach(href)
	consumed := fx.consumed
	hch := make(chan roundOutcome, 1)
	go func() {
		if err := fx.establishOn(hrem, consumed); err != nil {
			hch <- roundOutcome{err: err}
			return
		}
		info, err := hrem.Round()
		hch <- roundOutcome{info, err}
	}()
	select {
	case r := <-pch:
		// Primary answered after all: cancel the hedge, release its
		// session (and any half-open trial token it held).
		hcancel()
		go func() {
			<-hch
			hrem.End()
			fx.c.noteWorkerReleased(href)
		}()
		return r.info, r.err
	case hr := <-hch:
		if hr.err != nil {
			hcancel()
			hrem.End()
			if fx.fatal(hr.err) || capabilityLost(hr.err) {
				fx.c.noteWorkerReleased(href)
			} else {
				fx.c.noteWorkerFailure(href, hr.err)
				fx.failed[href] = hr.err
			}
			r := <-pch // the primary may still answer
			return r.info, r.err
		}
		// Hedge won: adopt it, abandon (but do not bench) the primary.
		fx.c.hedgeWon.Add(1)
		pcancel()
		go func() {
			<-pch
			primary.End()
		}()
		fx.cur, fx.cancel, fx.ref = hrem, hcancel, href
		return hr.info, nil
	}
}

// Finalize implements core.ShardExecutor, with the same failover loop as
// Round (a failed-over session sits exactly at the consumed round, so
// finalize is immediately valid on it).
func (fx *failoverExecutor) Finalize() (core.RoundInfo, error) {
	for {
		info, err := fx.cur.Finalize()
		if err == nil {
			return info, nil
		}
		if fx.fatal(err) {
			return core.RoundInfo{}, err
		}
		if capabilityLost(err) && !fx.relegated {
			fx.relegated = true
			if fx.relegate() == nil {
				continue
			}
		}
		fx.markFailed(err)
		if ferr := fx.failover(); ferr != nil {
			return core.RoundInfo{}, fmt.Errorf("%w (failover: %v)", err, ferr)
		}
	}
}

// End implements core.ShardExecutor.
func (fx *failoverExecutor) End() {
	fx.cur.End()
}

// PlanRounds implements core.RoundPlanner: remembered so a replacement
// replica adopted mid-round inherits the current plan, then forwarded.
func (fx *failoverExecutor) PlanRounds(batch int, speculate bool) {
	fx.planBatch, fx.planSpec = batch, speculate
	fx.cur.PlanRounds(batch, speculate)
}

// TakeSpan forwards the current replica's worker-side span subtree.
func (fx *failoverExecutor) TakeSpan() *obs.Span {
	return fx.cur.TakeSpan()
}

// settle closes out breaker accounting after Coordinate returns: the
// replica holding the session at the end either proved itself (a
// successful search closes a half-open breaker and releases its trial
// token) or — when the search failed elsewhere — just hands the token
// back. Without this, a half-open worker used by a search that failed on
// a different shard would hold its trial forever.
func (fx *failoverExecutor) settle(searchErr error) {
	if fx.ref == nil || fx.failed[fx.ref] != nil {
		return
	}
	if searchErr == nil {
		fx.c.noteWorkerSuccess(fx.ref)
	} else {
		fx.c.noteWorkerReleased(fx.ref)
	}
}
