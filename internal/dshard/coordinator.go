// The scatter/gather coordinator: drives coordinated searches over
// per-shard worker replicas, with /healthz-driven membership, per-search
// retry onto surviving replicas, and per-worker /stats aggregation.
package dshard

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// WorkerURLs lists worker base URLs (e.g. "http://host:8081"). Which
	// shard each worker serves is discovered from its /healthz — replicas
	// are simply multiple URLs reporting the same shard.
	WorkerURLs []string
	// ShardCount and SetID pin the shard set the coordinator serves
	// (from its manifest); workers reporting anything else are not
	// members, so a half-rolled deployment can never mix answers from two
	// different sets into one search.
	ShardCount int
	SetID      uint64
	// Client is the HTTP client for rounds and probes; nil gets a default
	// with a 30s timeout over a keep-alive transport sized to the worker
	// fleet (see newTransport) — the membership probe then doubles as
	// connection pre-warming, so the first search never pays a dial.
	Client *http.Client
	// MaxRoundBatch caps how many lockstep rounds one batched
	// /shard/v1/rounds RPC may cover: 0 picks the default (16), 1 keeps
	// strict one-round-per-RPC lockstep over the batched endpoint, and a
	// negative value disables the proto-2 extension entirely (per-round
	// v1 calls only).
	MaxRoundBatch int
	// NoSpeculation disables issuing a shard's next round fetch while the
	// coordinator is still merging the previous one. Speculation never
	// changes answers — a late stop only wastes the in-flight rounds,
	// which s3_coord_spec_wasted_total prices.
	NoSpeculation bool
	// ProbeInterval paces the background membership refresh (default 5s).
	ProbeInterval time.Duration
	// SearchRetries is how many times a failed search is retried on other
	// replicas. Each failed attempt benches at least one worker, so the
	// default — one retry per configured worker — guarantees a search
	// survives any number of dead replicas as long as every shard keeps a
	// live one. Negative disables retries.
	SearchRetries int
	// Registry, when non-nil, receives the coordinator's wire instruments
	// (per-endpoint RPC round-trip time and bytes) and search counters.
	Registry *obs.Registry
}

// workerRef is one worker URL with its probed identity and health.
type workerRef struct {
	url string

	// noBatch latches "this worker does not speak the batched rounds
	// endpoint": seeded from the probed /healthz proto version, and
	// re-latched by a live 404 (a worker rolled back mid-search). Atomic
	// because executors and probes read/write it concurrently.
	noBatch atomic.Bool

	mu      sync.Mutex
	shard   int // -1 until probed
	healthy bool
	lastErr string
	stats   *WorkerStats
}

// WorkerStatus is the coordinator's aggregated view of one worker, as
// exposed through its /stats.
type WorkerStatus struct {
	URL     string       `json:"url"`
	Shard   int          `json:"shard"`
	Healthy bool         `json:"healthy"`
	Error   string       `json:"error,omitempty"`
	Stats   *WorkerStats `json:"stats,omitempty"`
}

// Coordinator scatter/gathers lockstep rounds across worker replicas.
// It is safe for concurrent Search calls.
type Coordinator struct {
	cfg     CoordinatorConfig
	client  *http.Client
	workers []*workerRef
	rr      []atomic.Uint32 // per-shard replica rotation

	idBase uint64
	idSeq  atomic.Uint64

	searches atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64

	metrics *rpcMetrics
}

// NewCoordinator wires a coordinator; call Probe (or start Run) before
// searching so membership is known.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.ShardCount <= 0 {
		return nil, fmt.Errorf("dshard: coordinator needs a positive shard count")
	}
	if len(cfg.WorkerURLs) == 0 {
		return nil, fmt.Errorf("dshard: coordinator needs at least one worker URL")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second, Transport: newTransport(len(cfg.WorkerURLs))}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.MaxRoundBatch == 0 {
		cfg.MaxRoundBatch = defaultMaxRoundBatch
	}
	if cfg.SearchRetries == 0 {
		cfg.SearchRetries = len(cfg.WorkerURLs)
	} else if cfg.SearchRetries < 0 {
		cfg.SearchRetries = 0
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		rr:     make([]atomic.Uint32, cfg.ShardCount),
	}
	c.AttachRegistry(cfg.Registry)
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("dshard: seeding search ids: %w", err)
	}
	c.idBase = binary.LittleEndian.Uint64(seed[:])
	for _, u := range cfg.WorkerURLs {
		c.workers = append(c.workers, &workerRef{url: u, shard: -1})
	}
	return c, nil
}

func (c *Coordinator) nextSearchID() uint64 { return c.idBase + c.idSeq.Add(1) }

// AttachRegistry wires the coordinator's wire instruments (per-endpoint
// RPC round-trip time and bytes) and search counters into r; nil is a
// no-op. Attach before serving searches — the instrument set is read
// without synchronisation. Re-attaching after a reload rebinds the
// registry's func-backed counters to this coordinator.
func (c *Coordinator) AttachRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	c.metrics = newRPCMetrics(r)
	r.CounterFunc("s3_coord_searches_total", "Coordinated searches completed.",
		func() float64 { return float64(c.searches.Load()) })
	r.CounterFunc("s3_coord_retries_total", "Searches restarted on other replicas after a worker failure.",
		func() float64 { return float64(c.retries.Load()) })
	r.CounterFunc("s3_coord_failures_total", "Coordinated searches that failed after all retries.",
		func() float64 { return float64(c.failures.Load()) })
}

// probeWorker refreshes one worker's identity, health and stats.
func (c *Coordinator) probeWorker(ctx context.Context, w *workerRef) {
	var hb healthzBody
	code, err := c.getJSON(ctx, w.url+"/healthz", &hb)
	healthy := false
	var lastErr string
	shard := -1
	switch {
	case err != nil:
		lastErr = err.Error()
	case hb.Status != "serving" || code != http.StatusOK:
		lastErr = fmt.Sprintf("worker is %s", hb.Status)
		shard = hb.Shard
	case hb.ShardCount != c.cfg.ShardCount:
		lastErr = fmt.Sprintf("worker serves a %d-shard set, coordinator has %d", hb.ShardCount, c.cfg.ShardCount)
	case hb.SetID != fmt.Sprintf("%016x", c.cfg.SetID):
		lastErr = fmt.Sprintf("worker serves set %s, coordinator has %016x", hb.SetID, c.cfg.SetID)
	case hb.Shard < 0 || hb.Shard >= c.cfg.ShardCount:
		lastErr = fmt.Sprintf("worker reports shard %d of %d", hb.Shard, c.cfg.ShardCount)
	default:
		healthy = true
		shard = hb.Shard
		// The probe is also the capability handshake (and, over the shared
		// keep-alive transport, the connection pre-warm): a worker that
		// does not advertise proto>=2 never sees a batched call or a
		// deadline field.
		w.noBatch.Store(hb.Proto < protoVersion)
	}
	var st *WorkerStats
	if healthy {
		var ws WorkerStats
		if code, err := c.getJSON(ctx, w.url+"/stats", &ws); err == nil && code == http.StatusOK {
			st = &ws
		}
	}
	w.mu.Lock()
	w.shard, w.healthy, w.lastErr = shard, healthy, lastErr
	if st != nil {
		w.stats = st
	}
	w.mu.Unlock()
}

func (c *Coordinator) getJSON(ctx context.Context, url string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// Probe refreshes membership for every worker (concurrently) and reports
// whether every shard has at least one healthy replica.
func (c *Coordinator) Probe(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			c.probeWorker(ctx, w)
		}(w)
	}
	wg.Wait()
	covered := make([]bool, c.cfg.ShardCount)
	for _, w := range c.workers {
		w.mu.Lock()
		if w.healthy && w.shard >= 0 {
			covered[w.shard] = true
		}
		w.mu.Unlock()
	}
	for s, ok := range covered {
		if !ok {
			return fmt.Errorf("dshard: no healthy worker for shard %d", s)
		}
	}
	return nil
}

// Run probes on the configured interval until the context ends —
// unhealthy workers rejoin automatically once their /healthz turns
// serving again (the second half of a /reload + drain roll).
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = c.Probe(ctx)
		}
	}
}

// pick selects one healthy replica per shard (rotating across replicas),
// skipping excluded workers.
func (c *Coordinator) pick(excluded map[*workerRef]bool) ([]*workerRef, error) {
	byShard := make([][]*workerRef, c.cfg.ShardCount)
	for _, w := range c.workers {
		w.mu.Lock()
		ok := w.healthy && w.shard >= 0 && w.shard < c.cfg.ShardCount && !excluded[w]
		shard := w.shard
		w.mu.Unlock()
		if ok {
			byShard[shard] = append(byShard[shard], w)
		}
	}
	out := make([]*workerRef, c.cfg.ShardCount)
	for s, reps := range byShard {
		if len(reps) == 0 {
			return nil, fmt.Errorf("dshard: no healthy worker for shard %d", s)
		}
		out[s] = reps[int(c.rr[s].Add(1))%len(reps)]
	}
	return out, nil
}

// markUnhealthy benches a worker until the next successful probe.
func (c *Coordinator) markUnhealthy(w *workerRef, err error) {
	w.mu.Lock()
	w.healthy = false
	w.lastErr = err.Error()
	w.mu.Unlock()
}

// Search runs one coordinated search across the shard set. On a worker
// failure the whole search restarts on other replicas (per-shard session
// state cannot migrate mid-search), up to SearchRetries times; the
// failing worker is benched until a probe sees it healthy again. Answers
// are byte-identical to the in-process sharded engine over the same set.
func (c *Coordinator) Search(spec core.SearchSpec, copts core.CoordOptions) ([]core.CandMeta, core.Stats, error) {
	copts.ForceParallel = true
	excluded := make(map[*workerRef]bool)
	var lastErr error
	var lastStats core.Stats
	for attempt := 0; attempt <= c.cfg.SearchRetries; attempt++ {
		refs, err := c.pick(excluded)
		if err != nil {
			if lastErr != nil {
				err = fmt.Errorf("%w (after: %v)", err, lastErr)
			}
			c.failures.Add(1)
			return nil, lastStats, err
		}
		id := c.nextSearchID()
		remotes := make([]*RemoteExecutor, len(refs))
		execs := make([]core.ShardExecutor, len(refs))
		copts.NoSpeculation = copts.NoSpeculation || c.cfg.NoSpeculation
		maxBatch := c.cfg.MaxRoundBatch
		for i, ref := range refs {
			remotes[i] = newRemoteExecutor(c.client, ref.url, id).
				withTracing(copts.Trace.TraceID()).
				withMetrics(c.metrics).
				withBatching(&ref.noBatch, maxBatch, copts.Budget)
			execs[i] = remotes[i]
		}
		sel, stats, err := core.Coordinate(execs, spec, copts)
		if err == nil {
			c.searches.Add(1)
			return sel, stats, nil
		}
		lastErr, lastStats = err, stats
		transport := false
		for i, re := range remotes {
			if rerr := re.Err(); rerr != nil {
				transport = true
				excluded[refs[i]] = true
				c.markUnhealthy(refs[i], rerr)
			}
		}
		if !transport {
			// A logic error (diverged executors, bad spec) will not go
			// away on other replicas.
			c.failures.Add(1)
			return nil, stats, err
		}
		c.retries.Add(1)
	}
	c.failures.Add(1)
	return nil, lastStats, lastErr
}

// CoordinatorStats is the aggregated serving view the coordinator's
// /stats exposes: its own counters plus the per-worker statuses (with
// each worker's cumulative per-shard search/round counts as probed).
type CoordinatorStats struct {
	Role       string           `json:"role"`
	ShardCount int              `json:"shard_count"`
	SetID      string           `json:"set_id"`
	Searches   uint64           `json:"searches"`
	Retries    uint64           `json:"retries"`
	Failures   uint64           `json:"failures"`
	Workers    []WorkerStatus   `json:"workers"`
	Shards     []WorkerShardRow `json:"shards"`
}

// Stats snapshots the coordinator's view: per-worker statuses from the
// last probe and per-shard rows aggregated across replicas (counter sums;
// content counts from any replica of the shard).
func (c *Coordinator) Stats() CoordinatorStats {
	out := CoordinatorStats{
		Role:       "coordinator",
		ShardCount: c.cfg.ShardCount,
		SetID:      fmt.Sprintf("%016x", c.cfg.SetID),
		Searches:   c.searches.Load(),
		Retries:    c.retries.Load(),
		Failures:   c.failures.Load(),
	}
	rows := make([]WorkerShardRow, c.cfg.ShardCount)
	for s := range rows {
		rows[s].Shard = s
	}
	for _, w := range c.workers {
		w.mu.Lock()
		ws := WorkerStatus{URL: w.url, Shard: w.shard, Healthy: w.healthy, Error: w.lastErr, Stats: w.stats}
		w.mu.Unlock()
		out.Workers = append(out.Workers, ws)
		if ws.Stats != nil && ws.Shard >= 0 && ws.Shard < len(rows) {
			for _, r := range ws.Stats.Shards {
				rows[ws.Shard].Documents = r.Documents
				rows[ws.Shard].Components = r.Components
				rows[ws.Shard].Tags = r.Tags
				rows[ws.Shard].Searches += r.Searches
				rows[ws.Shard].Rounds += r.Rounds
			}
		}
	}
	out.Shards = rows
	return out
}
