// The scatter/gather coordinator: drives coordinated searches over
// per-shard worker replicas, with /healthz-driven membership, per-search
// retry onto surviving replicas, and per-worker /stats aggregation.
package dshard

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// WorkerURLs lists worker base URLs (e.g. "http://host:8081"). Which
	// shard each worker serves is discovered from its /healthz — replicas
	// are simply multiple URLs reporting the same shard.
	WorkerURLs []string
	// ShardCount and SetID pin the shard set the coordinator serves
	// (from its manifest); workers reporting anything else are not
	// members, so a half-rolled deployment can never mix answers from two
	// different sets into one search.
	ShardCount int
	SetID      uint64
	// Client is the HTTP client for rounds and probes; nil gets a default
	// with a 30s timeout over a keep-alive transport sized to the worker
	// fleet (see newTransport) — the membership probe then doubles as
	// connection pre-warming, so the first search never pays a dial.
	Client *http.Client
	// MaxRoundBatch caps how many lockstep rounds one batched
	// /shard/v1/rounds RPC may cover: 0 picks the default (16), 1 keeps
	// strict one-round-per-RPC lockstep over the batched endpoint, and a
	// negative value disables the proto-2 extension entirely (per-round
	// v1 calls only).
	MaxRoundBatch int
	// NoSpeculation disables issuing a shard's next round fetch while the
	// coordinator is still merging the previous one. Speculation never
	// changes answers — a late stop only wastes the in-flight rounds,
	// which s3_coord_spec_wasted_total prices.
	NoSpeculation bool
	// ProbeInterval paces the background membership refresh (default 5s).
	ProbeInterval time.Duration
	// SearchRetries is how many times a failed search is retried on other
	// replicas. Mid-search failover (re-begin + deterministic replay on a
	// replica) handles most worker deaths without reaching this loop; the
	// whole-search retry remains the backstop for failures failover cannot
	// absorb. Each failed attempt benches at least one worker, so the
	// default — one retry per configured worker — guarantees a search
	// survives any number of dead replicas as long as every shard keeps a
	// live one. Negative disables retries.
	SearchRetries int
	// RPCTimeout bounds each individual round-protocol RPC (0 picks 10s;
	// negative disables the per-RPC bound, leaving only the client's own
	// timeout). A timed-out RPC is a transport error: the worker is
	// benched and the search fails over to a replica.
	RPCTimeout time.Duration
	// NoHedging disables hedged round RPCs; HedgeDelay, when positive,
	// replaces the per-worker P99-derived hedge delay with a fixed one.
	// A hedge needs a second healthy replica of the shard, so topologies
	// without replication never hedge regardless.
	NoHedging  bool
	HedgeDelay time.Duration
	// NoDelta disables proto-5 delta round framing: every rounds/finalize
	// request goes out flagless and workers reply with classic full
	// blocks. Framing never changes answers — this is the A/B switch for
	// pricing the delta encoding's wire savings.
	NoDelta bool
	// Registry, when non-nil, receives the coordinator's wire instruments
	// (per-endpoint RPC round-trip time and bytes) and search counters.
	Registry *obs.Registry
}

// Circuit breaker states, per worker. Closed admits searches; open
// rejects them until its (exponentially backed-off, jittered) window
// expires and a probe succeeds; half-open admits one trial search (or
// closes after two consecutive healthy probes, so an idle fleet still
// recovers without traffic).
const (
	brClosed = iota
	brHalfOpen
	brOpen
)

func breakerName(s int) string {
	switch s {
	case brHalfOpen:
		return "half-open"
	case brOpen:
		return "open"
	default:
		return "closed"
	}
}

// breakerThreshold is how many consecutive failures (search-RPC or probe)
// open a closed worker's breaker; any failure of a half-open worker
// re-opens it immediately.
const breakerThreshold = 3

// breakerMaxLevel caps the open window's exponential growth at
// ProbeInterval << (breakerMaxLevel-1) — with the default 5s interval,
// re-probes of a dead worker back off 5s → 10s → 20s → 40s and stay
// there.
const breakerMaxLevel = 4

// halfOpenProbes is how many consecutive healthy probes close a
// half-open breaker when no trial search arrives.
const halfOpenProbes = 2

// workerRef is one worker URL with its probed identity and health.
type workerRef struct {
	url string

	// noBatch / noReplay / noSet latch "this worker does not speak the
	// batched rounds endpoint / the replay fast-forward / the multi-shard
	// beginset": seeded from the probed /healthz proto version, and
	// re-latched by a live 404 (a worker rolled back mid-search). Atomic
	// because executors and probes read/write them concurrently.
	noBatch  atomic.Bool
	noReplay atomic.Bool
	noSet    atomic.Bool
	// noDelta latches "this worker does not speak proto-5 delta round
	// framing"; requests to it stay flagless, so it replies full blocks.
	noDelta atomic.Bool

	// lat feeds this worker's round-RPC RTTs into the hedge-delay
	// estimate; probing guards against overlapping probes of one worker.
	lat     latRing
	probing atomic.Bool

	mu      sync.Mutex
	shard   int   // primary shard; -1 until probed
	shards  []int // every shard the worker hosts (shards[0] == shard)
	healthy bool
	lastErr string
	stats   *WorkerStats

	// Circuit breaker state, under mu: consecutive failures, the state
	// machine, the exponential open-window level, when the open window
	// expires, whether the half-open trial token is out, how many
	// consecutive healthy probes the half-open state has seen, and when
	// the probe scheduler owes this worker its next probe.
	brFails   int
	brState   int
	brLevel   int
	openUntil time.Time
	trial     bool
	brProbes  int
	nextProbe time.Time
}

// WorkerStatus is the coordinator's aggregated view of one worker, as
// exposed through its /stats.
type WorkerStatus struct {
	URL     string       `json:"url"`
	Shard   int          `json:"shard"`
	Shards  []int        `json:"shards,omitempty"`
	Healthy bool         `json:"healthy"`
	Breaker string       `json:"breaker"`
	Error   string       `json:"error,omitempty"`
	Stats   *WorkerStats `json:"stats,omitempty"`
}

// Degradation describes a partial answer: the shards that had no healthy
// replica and were left out, and the shards the answer actually covers.
type Degradation struct {
	Lost   []int `json:"lost"`
	Served []int `json:"served"`
}

// Coordinator scatter/gathers lockstep rounds across worker replicas.
// It is safe for concurrent Search calls.
type Coordinator struct {
	cfg     CoordinatorConfig
	client  *http.Client
	workers []*workerRef
	rr      []atomic.Uint32 // per-shard replica rotation

	idBase uint64
	idSeq  atomic.Uint64

	searches    atomic.Uint64
	retries     atomic.Uint64
	failures    atomic.Uint64
	failovers   atomic.Uint64
	hedgeIssued atomic.Uint64
	hedgeWon    atomic.Uint64

	metrics *rpcMetrics
}

// NewCoordinator wires a coordinator; call Probe (or start Run) before
// searching so membership is known.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.ShardCount <= 0 {
		return nil, fmt.Errorf("dshard: coordinator needs a positive shard count")
	}
	if len(cfg.WorkerURLs) == 0 {
		return nil, fmt.Errorf("dshard: coordinator needs at least one worker URL")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second, Transport: newTransport(len(cfg.WorkerURLs))}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Second
	}
	if cfg.MaxRoundBatch == 0 {
		cfg.MaxRoundBatch = defaultMaxRoundBatch
	}
	if cfg.SearchRetries == 0 {
		cfg.SearchRetries = len(cfg.WorkerURLs)
	} else if cfg.SearchRetries < 0 {
		cfg.SearchRetries = 0
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 10 * time.Second
	} else if cfg.RPCTimeout < 0 {
		cfg.RPCTimeout = 0
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		rr:     make([]atomic.Uint32, cfg.ShardCount),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("dshard: seeding search ids: %w", err)
	}
	c.idBase = binary.LittleEndian.Uint64(seed[:])
	for _, u := range cfg.WorkerURLs {
		c.workers = append(c.workers, &workerRef{url: u, shard: -1})
	}
	c.AttachRegistry(cfg.Registry)
	return c, nil
}

func (c *Coordinator) nextSearchID() uint64 { return c.idBase + c.idSeq.Add(1) }

// AttachRegistry wires the coordinator's wire instruments (per-endpoint
// RPC round-trip time and bytes) and search counters into r; nil is a
// no-op. Attach before serving searches — the instrument set is read
// without synchronisation. Re-attaching after a reload rebinds the
// registry's func-backed counters to this coordinator.
func (c *Coordinator) AttachRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	c.metrics = newRPCMetrics(r)
	r.CounterFunc("s3_coord_searches_total", "Coordinated searches completed.",
		func() float64 { return float64(c.searches.Load()) })
	r.CounterFunc("s3_coord_retries_total", "Searches restarted on other replicas after a worker failure.",
		func() float64 { return float64(c.retries.Load()) })
	r.CounterFunc("s3_coord_failures_total", "Coordinated searches that failed after all retries.",
		func() float64 { return float64(c.failures.Load()) })
	r.CounterFunc("s3_coord_failover_total",
		"Mid-search failovers: a session re-begun on a replica and fast-forwarded through the consumed rounds.",
		func() float64 { return float64(c.failovers.Load()) })
	r.CounterFunc("s3_coord_hedge_issued_total",
		"Hedged round RPCs issued against a replica after the primary overstayed the hedge delay.",
		func() float64 { return float64(c.hedgeIssued.Load()) })
	r.CounterFunc("s3_coord_hedge_won_total",
		"Hedged round RPCs that answered before the primary (the hedge session was adopted).",
		func() float64 { return float64(c.hedgeWon.Load()) })
	for _, w := range c.workers {
		r.GaugeFunc("s3_coord_breaker_state",
			"Per-worker circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				w.mu.Lock()
				defer w.mu.Unlock()
				return float64(w.brState)
			}, obs.L("worker", w.url))
	}
}

// probeWorker refreshes one worker's identity, health and stats.
func (c *Coordinator) probeWorker(ctx context.Context, w *workerRef) {
	var hb healthzBody
	code, err := c.getJSON(ctx, w.url+"/healthz", &hb)
	healthy := false
	var lastErr string
	shard := -1
	var hosted []int
	switch {
	case err != nil:
		lastErr = err.Error()
	case hb.Status != "serving" || code != http.StatusOK:
		lastErr = fmt.Sprintf("worker is %s", hb.Status)
		shard = hb.Shard
	case hb.ShardCount != c.cfg.ShardCount:
		lastErr = fmt.Sprintf("worker serves a %d-shard set, coordinator has %d", hb.ShardCount, c.cfg.ShardCount)
	case hb.SetID != fmt.Sprintf("%016x", c.cfg.SetID):
		lastErr = fmt.Sprintf("worker serves set %s, coordinator has %016x", hb.SetID, c.cfg.SetID)
	case hb.Shard < 0 || hb.Shard >= c.cfg.ShardCount:
		lastErr = fmt.Sprintf("worker reports shard %d of %d", hb.Shard, c.cfg.ShardCount)
	default:
		// Pre-proto-4 workers report a single shard; host workers list
		// everything they serve (primary first).
		hosted = hb.Shards
		if len(hosted) == 0 {
			hosted = []int{hb.Shard}
		}
		bad := -1
		for _, hs := range hosted {
			if hs < 0 || hs >= c.cfg.ShardCount {
				bad = hs
				break
			}
		}
		if bad >= 0 {
			lastErr = fmt.Sprintf("worker reports shard %d of %d", bad, c.cfg.ShardCount)
			hosted = nil
			break
		}
		healthy = true
		shard = hb.Shard
		// The probe is also the capability handshake (and, over the shared
		// keep-alive transport, the connection pre-warm): a worker that
		// does not advertise proto>=2 never sees a batched call or a
		// deadline field, one below proto 3 never sees a replay, and one
		// below proto 4 never sees a multi-shard beginset.
		w.noBatch.Store(hb.Proto < protoBatch)
		w.noReplay.Store(hb.Proto < protoReplay)
		w.noSet.Store(hb.Proto < protoHost)
		w.noDelta.Store(hb.Proto < protoDelta)
	}
	var st *WorkerStats
	if healthy {
		var ws WorkerStats
		if code, err := c.getJSON(ctx, w.url+"/stats", &ws); err == nil && code == http.StatusOK {
			st = &ws
		}
	}
	w.mu.Lock()
	w.shard, w.shards, w.healthy, w.lastErr = shard, hosted, healthy, lastErr
	if st != nil {
		w.stats = st
	}
	// Probe outcomes drive the circuit breaker alongside search RPCs: an
	// open worker's successful probe admits a trial (half-open), repeated
	// healthy probes close it even without search traffic, and probe
	// failures extend the open window's backoff.
	if healthy {
		switch w.brState {
		case brOpen:
			w.brState = brHalfOpen
			w.brProbes = 1
			w.trial = false
		case brHalfOpen:
			w.brProbes++
			if w.brProbes >= halfOpenProbes && !w.trial {
				w.brState = brClosed
				w.brLevel, w.brFails = 0, 0
			}
		default:
			w.brFails = 0
		}
	} else {
		w.brFails++
		if w.brState != brClosed || w.brFails >= breakerThreshold {
			c.openBreakerLocked(w)
		}
	}
	w.mu.Unlock()
}

// openBreakerLocked trips w's breaker (w.mu held): the open window grows
// exponentially with each consecutive trip, capped, with full jitter so
// coordinators that benched a worker together do not re-probe it
// together.
func (c *Coordinator) openBreakerLocked(w *workerRef) {
	w.brState = brOpen
	w.trial = false
	w.brProbes = 0
	if w.brLevel < breakerMaxLevel {
		w.brLevel++
	}
	d := c.cfg.ProbeInterval << (w.brLevel - 1)
	d = d/2 + time.Duration(mrand.Int64N(int64(d/2)+1))
	w.openUntil = time.Now().Add(d)
	w.nextProbe = w.openUntil
}

func (c *Coordinator) getJSON(ctx context.Context, url string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// Probe refreshes membership for every worker (concurrently) and reports
// whether every shard has at least one healthy replica.
func (c *Coordinator) Probe(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			c.probeWorker(ctx, w)
			c.scheduleProbe(w)
		}(w)
	}
	wg.Wait()
	covered := make([]bool, c.cfg.ShardCount)
	for _, w := range c.workers {
		w.mu.Lock()
		if w.healthy && w.shard >= 0 {
			covered[w.shard] = true
			// A host-capable worker covers every shard it hosts; legacy
			// sessions can only address the primary.
			if c.hostCapable(w) {
				for _, s := range w.shards {
					if s >= 0 && s < len(covered) {
						covered[s] = true
					}
				}
			}
		}
		w.mu.Unlock()
	}
	for s, ok := range covered {
		if !ok {
			return fmt.Errorf("dshard: no healthy worker for shard %d", s)
		}
	}
	return nil
}

// scheduleProbe sets when the Run loop owes w its next probe: the
// breaker's open window for open workers (already exponentially backed
// off and jittered), the probe interval ±25% jitter otherwise. The
// jitter de-synchronizes re-probes both across workers and across
// coordinators — without it, every coordinator that watched a worker die
// re-probes it on the same tick (and re-floods it on the same tick when
// it returns).
func (c *Coordinator) scheduleProbe(w *workerRef) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.brState == brOpen {
		w.nextProbe = w.openUntil
		return
	}
	base := c.cfg.ProbeInterval
	jitter := time.Duration(mrand.Int64N(int64(base)/2+1)) - base/4
	w.nextProbe = time.Now().Add(base + jitter)
}

// Run probes workers until the context ends — unhealthy workers rejoin
// automatically once their /healthz turns serving again (the second half
// of a /reload + drain roll). The loop ticks well below the probe
// interval and fires only the probes that are due, each on its own
// jittered schedule (scheduleProbe); a per-worker guard keeps a slow
// probe from stacking another behind it.
func (c *Coordinator) Run(ctx context.Context) {
	tick := c.cfg.ProbeInterval / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			for _, w := range c.workers {
				w.mu.Lock()
				due := !now.Before(w.nextProbe)
				w.mu.Unlock()
				if due && w.probing.CompareAndSwap(false, true) {
					go func(w *workerRef) {
						defer w.probing.Store(false)
						c.probeWorker(ctx, w)
						c.scheduleProbe(w)
					}(w)
				}
			}
		}
	}
}

// hostCapable reports whether host-grouped (beginset) sessions may be
// opened on w: the worker must speak proto 4 and the coordinator must
// have the batched rounds endpoint enabled (host replies only exist in
// batched framing).
func (c *Coordinator) hostCapable(w *workerRef) bool {
	return c.cfg.MaxRoundBatch > 0 && !w.noSet.Load()
}

// pickShard selects one admissible replica of a shard, skipping excluded
// workers: closed-breaker replicas first (rotating), then a half-open one
// whose trial token is free — the trial IS the probe request of the
// half-open state, and its outcome (noteWorkerSuccess / Failure) decides
// whether the breaker closes or re-opens. A multi-shard worker serves
// its whole hosted set when beginset is usable, but only its primary
// shard otherwise — legacy begin cannot address the other members.
func (c *Coordinator) pickShard(shard int, excluded map[*workerRef]bool) (*workerRef, error) {
	var closed, half []*workerRef
	for _, w := range c.workers {
		if excluded[w] {
			continue
		}
		w.mu.Lock()
		ok := w.healthy && w.shard == shard
		if !ok && w.healthy && c.hostCapable(w) {
			for _, hs := range w.shards {
				if hs == shard {
					ok = true
					break
				}
			}
		}
		state := w.brState
		w.mu.Unlock()
		if !ok {
			continue
		}
		switch state {
		case brClosed:
			closed = append(closed, w)
		case brHalfOpen:
			half = append(half, w)
		}
	}
	if len(closed) > 0 {
		return closed[int(c.rr[shard].Add(1))%len(closed)], nil
	}
	for _, w := range half {
		w.mu.Lock()
		take := w.healthy && w.brState == brHalfOpen && !w.trial
		if take {
			w.trial = true
		}
		w.mu.Unlock()
		if take {
			return w, nil
		}
	}
	return nil, fmt.Errorf("dshard: no healthy worker for shard %d", shard)
}

// pickCover picks one replica per shard; shards with none admissible come
// back in lost instead of failing the pick (partial mode serves the
// rest).
func (c *Coordinator) pickCover(excluded map[*workerRef]bool) (refs []*workerRef, lost []int) {
	refs = make([]*workerRef, c.cfg.ShardCount)
	for s := range refs {
		if w, err := c.pickShard(s, excluded); err == nil {
			refs[s] = w
		} else {
			lost = append(lost, s)
		}
	}
	return refs, lost
}

// noteWorkerFailure benches a worker until the next successful probe and
// feeds its circuit breaker: breakerThreshold consecutive failures — or
// any failure of a half-open worker's trial — open it.
func (c *Coordinator) noteWorkerFailure(w *workerRef, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.healthy = false
	w.lastErr = err.Error()
	w.trial = false
	w.brFails++
	if w.brState != brClosed || w.brFails >= breakerThreshold {
		c.openBreakerLocked(w)
	}
}

// noteWorkerSuccess records a worker finishing a search cleanly: resets
// the failure streak and closes a half-open breaker (the trial passed).
func (c *Coordinator) noteWorkerSuccess(w *workerRef) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.brFails = 0
	w.trial = false
	if w.brState == brHalfOpen {
		w.brState = brClosed
		w.brLevel, w.brProbes = 0, 0
	}
}

// noteWorkerReleased hands back a half-open trial token without a
// verdict (the search failed elsewhere, or a hedge was cancelled).
func (c *Coordinator) noteWorkerReleased(w *workerRef) {
	w.mu.Lock()
	w.trial = false
	w.mu.Unlock()
}

// Search runs one coordinated search across the shard set. A worker
// failure mid-search fails over to a replica: the session is re-begun
// there and fast-forwarded through the rounds already consumed (workers
// execute identical FP ops over the shared substrate, so the recovered
// search stays byte-identical to an undisturbed one). Only when failover
// exhausts a shard's replicas does the whole search restart on other
// workers, up to SearchRetries times; failing workers are benched (and
// their breakers fed) until a probe sees them healthy again. Answers are
// byte-identical to the in-process sharded engine over the same set.
func (c *Coordinator) Search(spec core.SearchSpec, copts core.CoordOptions) ([]core.CandMeta, core.Stats, error) {
	sel, stats, _, err := c.search(spec, copts, false)
	return sel, stats, err
}

// SearchPartial is Search under graceful degradation: when a shard has no
// admissible replica at all, the search proceeds over the surviving
// shards and the non-nil Degradation names what was lost and what was
// served. A fully covered search returns a nil Degradation (the answer
// is exact); a search with no surviving shards still errors.
func (c *Coordinator) SearchPartial(spec core.SearchSpec, copts core.CoordOptions) ([]core.CandMeta, core.Stats, *Degradation, error) {
	return c.search(spec, copts, true)
}

func (c *Coordinator) search(spec core.SearchSpec, copts core.CoordOptions, partial bool) ([]core.CandMeta, core.Stats, *Degradation, error) {
	copts.ForceParallel = true
	copts.NoSpeculation = copts.NoSpeculation || c.cfg.NoSpeculation
	ctx := copts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	excluded := make(map[*workerRef]bool)
	var lastErr error
	var lastStats core.Stats
	for attempt := 0; attempt <= c.cfg.SearchRetries; attempt++ {
		refs, lost := c.pickCover(excluded)
		if len(lost) > 0 && (!partial || len(lost) == c.cfg.ShardCount) {
			err := fmt.Errorf("dshard: no healthy worker for shard %d", lost[0])
			if lastErr != nil {
				err = fmt.Errorf("%w (after: %v)", err, lastErr)
			}
			for _, ref := range refs {
				if ref != nil {
					c.noteWorkerReleased(ref) // hand back any trial tokens
				}
			}
			c.failures.Add(1)
			return nil, lastStats, nil, err
		}
		var served []int
		fxs := make([]*failoverExecutor, 0, len(refs))
		execs := make([]core.ShardExecutor, 0, len(refs))
		// Group the picked cover by worker: shards landing on the same
		// proto-4 process share one host session — one beginset, one
		// rounds RPC per batch for the whole group, one shared iterator
		// worker-side — instead of one session (and one RPC stream) each.
		groups := make(map[*workerRef][]int)
		for s, ref := range refs {
			if ref != nil {
				groups[ref] = append(groups[ref], s)
			}
		}
		traceID := copts.Trace.TraceID()
		conns := make(map[int]shardConn, c.cfg.ShardCount)
		cancels := make(map[int]context.CancelFunc, c.cfg.ShardCount)
		for ref, group := range groups {
			cs, cls := c.connect(ctx, ref, group, traceID, copts.Budget)
			for i, s := range group {
				conns[s], cancels[s] = cs[i], cls[i]
			}
		}
		for s, ref := range refs {
			if ref == nil {
				continue
			}
			served = append(served, s)
			fx := c.newFailoverExecutor(ctx, s, ref, conns[s], cancels[s], copts, excluded)
			fxs = append(fxs, fx)
			execs = append(execs, fx)
		}
		sel, stats, err := core.Coordinate(execs, spec, copts)
		transport := false
		for _, fx := range fxs {
			fx.settle(err)
			for w, werr := range fx.failed {
				transport = true
				excluded[w] = true
				_ = werr
			}
		}
		if err == nil {
			c.searches.Add(1)
			var deg *Degradation
			if len(lost) > 0 {
				deg = &Degradation{Lost: lost, Served: served}
			}
			return sel, stats, deg, nil
		}
		lastErr, lastStats = err, stats
		if ctx.Err() != nil {
			// The caller is gone; retrying for nobody burns worker rounds.
			c.failures.Add(1)
			return nil, stats, nil, err
		}
		if !transport {
			// A logic error (diverged executors, bad spec) will not go
			// away on other replicas.
			c.failures.Add(1)
			return nil, stats, nil, err
		}
		c.retries.Add(1)
	}
	c.failures.Add(1)
	return nil, lastStats, nil, lastErr
}

// CoordinatorStats is the aggregated serving view the coordinator's
// /stats exposes: its own counters plus the per-worker statuses (with
// each worker's cumulative per-shard search/round counts as probed).
type CoordinatorStats struct {
	Role        string           `json:"role"`
	ShardCount  int              `json:"shard_count"`
	SetID       string           `json:"set_id"`
	Searches    uint64           `json:"searches"`
	Retries     uint64           `json:"retries"`
	Failures    uint64           `json:"failures"`
	Failovers   uint64           `json:"failovers"`
	HedgeIssued uint64           `json:"hedge_issued"`
	HedgeWon    uint64           `json:"hedge_won"`
	Workers     []WorkerStatus   `json:"workers"`
	Shards      []WorkerShardRow `json:"shards"`
}

// Stats snapshots the coordinator's view: per-worker statuses from the
// last probe and per-shard rows aggregated across replicas (counter sums;
// content counts from any replica of the shard).
func (c *Coordinator) Stats() CoordinatorStats {
	out := CoordinatorStats{
		Role:        "coordinator",
		ShardCount:  c.cfg.ShardCount,
		SetID:       fmt.Sprintf("%016x", c.cfg.SetID),
		Searches:    c.searches.Load(),
		Retries:     c.retries.Load(),
		Failures:    c.failures.Load(),
		Failovers:   c.failovers.Load(),
		HedgeIssued: c.hedgeIssued.Load(),
		HedgeWon:    c.hedgeWon.Load(),
	}
	rows := make([]WorkerShardRow, c.cfg.ShardCount)
	for s := range rows {
		rows[s].Shard = s
	}
	for _, w := range c.workers {
		w.mu.Lock()
		ws := WorkerStatus{URL: w.url, Shard: w.shard, Shards: w.shards, Healthy: w.healthy,
			Breaker: breakerName(w.brState), Error: w.lastErr, Stats: w.stats}
		w.mu.Unlock()
		out.Workers = append(out.Workers, ws)
		if ws.Stats != nil {
			// A multi-shard worker reports one row per hosted shard; each
			// row is keyed by its own shard, not the worker's primary.
			for _, r := range ws.Stats.Shards {
				if r.Shard < 0 || r.Shard >= len(rows) {
					continue
				}
				rows[r.Shard].Documents = r.Documents
				rows[r.Shard].Components = r.Components
				rows[r.Shard].Tags = r.Tags
				rows[r.Shard].Searches += r.Searches
				rows[r.Shard].Rounds += r.Rounds
			}
		}
	}
	out.Shards = rows
	return out
}
