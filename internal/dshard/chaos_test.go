// Chaos property suite: coordinated searches driven through a
// fault-injecting transport (internal/faultnet). The properties under
// test are the PR's acceptance criteria — as long as every shard keeps
// one healthy replica, any schedule of resets, stalls, truncations and
// bit flips leaves the answer byte-identical to the in-process sharded
// engine; when a shard is lost entirely, partial mode degrades to the
// surviving shards and strict mode errors cleanly; a cancelled search
// releases every worker session it touched.
package dshard

import (
	"context"
	"net/url"
	"testing"
	"time"

	"net/http"
	"net/http/httptest"

	"s3/internal/core"
	"s3/internal/faultnet"
	"s3/internal/score"
	"s3/internal/snap"
)

// chaosTopology is 2 shards × 2 replicas: worker i serves shard i%2, so
// the replicas of shard s are workers {s, s+2}.
func chaosTopology(t *testing.T) (*snap.ShardSetSnapshot, []*Worker, []*httptest.Server) {
	t.Helper()
	in, ix := buildInstance(t, smallSpec())
	manifestPath := writeSet(t, in, ix, 2)
	set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	workers := make([]*Worker, 4)
	servers := make([]*httptest.Server, 4)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{ManifestPath: manifestPath, Shard: i % 2, Mode: snap.LoadMmap})
		if err := workers[i].Load(); err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(workers[i].Handler())
		t.Cleanup(servers[i].Close)
	}
	return set, workers, servers
}

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// chaosQuery is one reference point: a resolved spec and the transcript
// the in-process sharded engine produces for it.
type chaosQuery struct {
	spec core.SearchSpec
	want string
}

// chaosQueries computes the reference transcripts over the opened set.
func chaosQueries(t *testing.T, set *snap.ShardSetSnapshot) []chaosQuery {
	t.Helper()
	n := len(set.Set.Shards)
	engines := make([]*core.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		t.Fatal(err)
	}
	in := set.Set.Base
	seekers, kwSets := queries(in)
	var qs []chaosQuery
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil {
				t.Fatal(err)
			}
			if !possible {
				continue
			}
			opts := core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}}
			rs, stats, err := se.Search(seeker, kws, opts)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, chaosQuery{
				spec: core.SearchSpec{Seeker: seeker, Groups: groups, K: 5,
					Params: opts.Params, Epsilon: 1e-12},
				want: engineTranscript(rs, stats),
			})
		}
	}
	if len(qs) == 0 {
		t.Fatal("no usable chaos queries")
	}
	return qs
}

func chaosCoordinator(t *testing.T, set *snap.ShardSetSnapshot, urls []string,
	tr http.RoundTripper, rpcTimeout time.Duration) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls, ShardCount: len(set.Set.Layout.Shards), SetID: set.Set.Layout.SetID,
		Client:     &http.Client{Timeout: 30 * time.Second, Transport: tr},
		RPCTimeout: rpcTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosByteIdentity: across seeded fault schedules — one victim
// replica per shard hit with resets, stalls, truncations, bit flips or
// plain latency on its round-protocol endpoints — every answer must stay
// byte-identical to the in-process sharded engine, because each shard
// keeps one untouched replica to fail over (or hedge) onto.
func TestChaosByteIdentity(t *testing.T) {
	set, _, servers := chaosTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}
	qs := chaosQueries(t, set)
	actions := []faultnet.Action{faultnet.Reset, faultnet.Truncate, faultnet.Flip, faultnet.Stall, faultnet.Latency}

	var recovered uint64
	for seed := uint64(1); seed <= 6; seed++ {
		ft := faultnet.NewTransport(newTransport(len(urls)), seed)
		// One victim replica per shard; the other replica stays clean. The
		// schedule only touches the round-protocol paths, so probes always
		// see the truth.
		for shard := 0; shard < 2; shard++ {
			victim := servers[shard+2*int(seed%2)]
			ft.Add(&faultnet.Rule{
				Host:    hostOf(t, victim.URL),
				Path:    "/shard/v1/",
				After:   int(seed) % 3,
				Count:   2,
				Action:  actions[(int(seed)+shard)%len(actions)],
				Latency: 30 * time.Millisecond,
			})
		}
		coord := chaosCoordinator(t, set, urls, ft, 300*time.Millisecond)
		for qi, q := range qs {
			sel, stats, err := coord.Search(q.spec, core.CoordOptions{})
			if err != nil {
				t.Fatalf("seed %d query %d: %v", seed, qi, err)
			}
			if got := metaTranscript(sel, stats); got != q.want {
				t.Fatalf("seed %d query %d: answer diverged under faults\nwant:\n%s\ngot:\n%s",
					seed, qi, q.want, got)
			}
		}
		recovered += coord.failovers.Load() + coord.retries.Load()
	}
	if recovered == 0 {
		t.Error("no failovers or retries across any fault schedule — the chaos rules never fired")
	}
}

// TestChaosKillAtRound kills one replica's round endpoints after its
// f-th round RPC, for a sweep of f: the search must fail over mid-flight
// (re-begin + replay on the surviving replica) and still answer
// byte-identically.
func TestChaosKillAtRound(t *testing.T) {
	set, _, servers := chaosTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}
	qs := chaosQueries(t, set)

	for _, after := range []int{0, 1, 2, 4} {
		ft := faultnet.NewTransport(newTransport(len(urls)), uint64(after)+100)
		victim := hostOf(t, servers[0].URL) // replica A of shard 0
		for _, path := range []string{pathRound, pathRounds, pathReplay} {
			ft.Add(&faultnet.Rule{Host: victim, Path: path, After: after, Action: faultnet.Reset})
		}
		coord := chaosCoordinator(t, set, urls, ft, 2*time.Second)
		for qi, q := range qs {
			sel, stats, err := coord.Search(q.spec, core.CoordOptions{})
			if err != nil {
				t.Fatalf("after=%d query %d: %v", after, qi, err)
			}
			if got := metaTranscript(sel, stats); got != q.want {
				t.Fatalf("after=%d query %d: answer diverged after mid-search kill\nwant:\n%s\ngot:\n%s",
					after, qi, q.want, got)
			}
		}
		if coord.failovers.Load() == 0 {
			t.Errorf("after=%d: worker killed mid-search but no failover recorded", after)
		}
	}
}

// TestChaosShardLoss: when every replica of a shard dies, partial mode
// serves the surviving shards (the answer equals the in-process engine
// over those shards, with the Degradation naming lost and served), and
// strict mode errors cleanly. With every shard dead, even partial mode
// errors.
func TestChaosShardLoss(t *testing.T) {
	set, _, servers := chaosTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}
	qs := chaosQueries(t, set)
	coord := chaosCoordinator(t, set, urls, newTransport(len(urls)), 2*time.Second)

	// Fully covered: partial mode returns an exact answer, nil degradation.
	sel, stats, deg, err := coord.SearchPartial(qs[0].spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("full coverage reported degradation %+v", deg)
	}
	if got := metaTranscript(sel, stats); got != qs[0].want {
		t.Fatalf("partial-mode answer diverged at full coverage\nwant:\n%s\ngot:\n%s", qs[0].want, got)
	}

	// Reference for the degraded answer: core.Coordinate over shard 0
	// alone — exactly the executor set the coordinator serves once shard 1
	// is lost (a sharded engine would reject the partial coverage).
	eng0 := core.NewEngine(set.Set.Shards[0], set.Set.Indexes[0])
	shard0 := func(spec core.SearchSpec) string {
		le := core.NewShardExecutor(eng0, 0)
		sel, stats, err := core.Coordinate([]core.ShardExecutor{le}, spec, core.CoordOptions{ForceParallel: true})
		if err != nil {
			t.Fatal(err)
		}
		return metaTranscript(sel, stats)
	}

	// Kill both replicas of shard 1.
	servers[1].Close()
	servers[3].Close()

	// Strict mode: a clean error, no partial answer smuggled out.
	if _, _, err := coord.Search(qs[0].spec, core.CoordOptions{}); err == nil {
		t.Fatal("strict search succeeded with a shard lost")
	}

	in := set.Set.Base
	seekers, kwSets := queries(in)
	checked := 0
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil {
				t.Fatal(err)
			}
			if !possible {
				continue
			}
			spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5,
				Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
			want := shard0(spec)
			sel, stats, deg, err := coord.SearchPartial(spec, core.CoordOptions{})
			if err != nil {
				t.Fatalf("partial search with shard 1 lost: %v", err)
			}
			if deg == nil {
				t.Fatal("lost shard not reported as degradation")
			}
			if len(deg.Lost) != 1 || deg.Lost[0] != 1 || len(deg.Served) != 1 || deg.Served[0] != 0 {
				t.Fatalf("degradation %+v, want lost=[1] served=[0]", deg)
			}
			if got := metaTranscript(sel, stats); got != want {
				t.Fatalf("degraded answer diverged from the surviving shard\nwant:\n%s\ngot:\n%s", want, got)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no degraded queries checked")
	}

	// Kill the rest: even partial mode must error with nothing to serve.
	servers[0].Close()
	servers[2].Close()
	if _, _, _, err := coord.SearchPartial(qs[0].spec, core.CoordOptions{}); err == nil {
		t.Fatal("partial search succeeded with every shard lost")
	}
}

// TestChaosCancellation: cancelling a search's context mid-flight (the
// serving layer's client-disconnect propagation) returns promptly with
// the context error and releases every worker session — End always runs
// on its own background context.
func TestChaosCancellation(t *testing.T) {
	set, workers, servers := chaosTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}
	qs := chaosQueries(t, set)

	// Stall every round fetch on every worker: without cancellation the
	// search would hang, so a prompt return proves the context propagated.
	ft := faultnet.NewTransport(newTransport(len(urls)), 7)
	ft.Add(&faultnet.Rule{Path: pathRound, Action: faultnet.Stall})
	ft.Add(&faultnet.Rule{Path: pathRounds, Action: faultnet.Stall})
	coord := chaosCoordinator(t, set, urls, ft, -1) // no RPC timeout: only the context can end the stall

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := coord.Search(qs[0].spec, core.CoordOptions{Ctx: ctx})
		done <- err
	}()
	// Begins are not stalled: wait for the search to hold sessions.
	waitUntil(t, 5*time.Second, func() bool {
		open := 0
		for _, w := range workers {
			w.mu.Lock()
			open += len(w.sessions)
			w.mu.Unlock()
		}
		return open >= 2
	})
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled search returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled search did not return")
	}
	// End posts on its own background context; every session drains.
	waitUntil(t, 10*time.Second, func() bool {
		for _, w := range workers {
			w.mu.Lock()
			n := len(w.sessions)
			w.mu.Unlock()
			if n != 0 {
				return false
			}
		}
		return true
	})
}
