// Package dshard runs the sharded-search round protocol across
// processes: a compact HTTP/binary transport for core.ShardExecutor, the
// per-shard worker that serves it, and the scatter/gather coordinator
// that drives searches over worker replicas.
//
// The protocol is deliberately tiny. Workers advance their own proximity
// iterator over the shared substrate (identical floating-point operations
// in identical order across processes), so a round request carries only a
// search id and a round ordinal, and a round response carries the
// shard-local selection (at most k candidates) plus a handful of
// aggregates — the proximity vector never crosses the wire. Distributed
// answers are therefore byte-identical to the in-process sharded engine,
// property-tested in dshard_test.go.
//
// Endpoints (all POST, application/octet-stream bodies):
//
//	/shard/v1/begin     install a search              → BeginInfo
//	/shard/v1/beginset  install a multi-shard search  → one BeginInfo per shard
//	/shard/v1/round     advance one lockstep round    → RoundInfo
//	/shard/v1/rounds    advance up to B rounds        → one RoundInfo per executed round
//	/shard/v1/replay    fast-forward without results  → reached round ordinal
//	/shard/v1/finalize  re-bound without stepping     → RoundInfo
//	/shard/v1/end       release the search's state
//
// plus GET /healthz (readiness), GET /stats and POST /reload on workers.
//
// /shard/v1/rounds is the protocol-2 batching extension: the worker
// advances rounds until the batch bound, the first admission, a kept-set
// change or exhaustion, and replies with the per-round infos so the
// coordinator replays every stop decision locally — answers stay
// byte-identical, one RTT amortizes over the batch. Workers advertise it
// with "proto" in /healthz; coordinators fall back to per-round calls
// against workers that do not.
//
// /shard/v1/replay is the protocol-3 failover extension: a replacement
// replica fast-forwards a freshly begun session through rounds the
// coordinator already consumed elsewhere, discarding the per-round infos
// (workers execute identical FP ops over the shared substrate, so the
// replayed state is bit-identical to the failed replica's). Coordinators
// fall back to batched/per-round fetches with discarded results against
// workers that do not speak it.
//
// /shard/v1/beginset is the protocol-4 host extension: one session covers
// a LIST of the shards a worker process hosts, served off a single shared
// proximity iterator (core.HostExecutor) — one Iterator.Step per round for
// the whole host instead of one per shard — and the session's rounds and
// finalize replies carry one RoundInfo block per member shard. The
// coordinator groups its shard cover by worker and scatters one rounds RPC
// per host; against proto<4 workers it falls back to one session per
// shard. Either way the per-shard blocks are identical bytes.
//
// Proto 5 adds delta round framing: a rounds/finalize reply may encode
// each shard block as a delta against the session's previous round —
// unchanged kept entries become varint back-references into the peer's
// shadow of that round, changed or new entries carry zigzag-varint doc-id
// deltas plus bound updates, cumulative counters become varint diffs, and
// per-round scalars shared by every co-hosted shard (N, Reached, Tail,
// SourceTail, Done) are hoisted into one header. Floats are never
// re-derived: a back-reference copies the exact bits of the previous
// round's value, so reconstructed RoundInfos are byte-identical to
// full-block framing by construction. The coordinator requests deltas
// with a trailing flags byte on the rounds/finalize request (sent only to
// proto>=5 workers); a delta-framed reply self-identifies with a leading
// magic word inside the CRC-protected body, so the coordinator decodes
// whichever framing the worker actually used and a worker that stops
// speaking deltas mid-search relegates to full blocks in place. See
// delta.go for the frame layout and the shadow discipline.
//
// Every request and response frame additionally carries a CRC-32C of its
// body in the X-S3-Frame-Crc header; receivers that find the header
// verify it before decoding, so a fault that flips bits in transit is a
// detected transport error (and a failover trigger), never a silently
// perturbed float.
package dshard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"sync"
	"time"

	"s3/internal/core"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/score"
)

// Decode limits: a conforming coordinator never exceeds these, and a
// worker must not let a malformed frame size an allocation.
const (
	maxGroups      = 256
	maxGroupLen    = 1 << 20
	maxKept        = 1 << 16
	maxFrameSize   = 64 << 20
	maxWireSpans   = 512
	maxSpanName    = 256
	maxSpanAttrs   = 32
	maxAttrLen     = 1024
	maxBatchRounds = 1024
)

// wire paths.
const (
	pathBegin    = "/shard/v1/begin"
	pathBeginSet = "/shard/v1/beginset"
	pathRound    = "/shard/v1/round"
	pathRounds   = "/shard/v1/rounds"
	pathReplay   = "/shard/v1/replay"
	pathFinalize = "/shard/v1/finalize"
	pathEnd      = "/shard/v1/end"
)

// Protocol capability levels, advertised by workers in /healthz ("proto").
// Absent (old workers decode to 0) means per-round only. protoBatch added
// the batched /shard/v1/rounds endpoint and the optional deadline field of
// the begin frame; protoReplay added the /shard/v1/replay fast-forward
// used by mid-search failover; protoHost added multi-shard host sessions
// (/shard/v1/beginset installs one session covering a shard list, and the
// session's rounds/finalize replies carry one RoundInfo block per member
// shard); protoDelta added delta round framing (rounds/finalize replies
// encode shard blocks as deltas against the session's previous round when
// the request's flags byte asks for them — see delta.go). protoVersion is
// what this build speaks.
const (
	protoBatch   = 2
	protoReplay  = 3
	protoHost    = 4
	protoDelta   = 5
	protoVersion = protoDelta
)

// maxHostShards caps the shard list of one host session; a conforming
// coordinator never exceeds the set's shard count.
const maxHostShards = 256

// frameCRCHeader carries the CRC-32C (Castagnoli) of the frame body, as
// lowercase hex. Optional on both directions: a missing header means the
// peer predates frame integrity and the body is accepted unchecked.
const frameCRCHeader = "X-S3-Frame-Crc"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameCRC(b []byte) string {
	return strconv.FormatUint(uint64(crc32.Checksum(b, crcTable)), 16)
}

// checkFrameCRC verifies a frame body against the peer's CRC header;
// empty header (older peer) passes.
func checkFrameCRC(b []byte, header string) error {
	if header == "" {
		return nil
	}
	if got := frameCRC(b); got != header {
		return fmt.Errorf("dshard: frame CRC mismatch (got %s, header %s)", got, header)
	}
	return nil
}

// enc is a little-endian frame builder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, floatBits(v)) }

// dec is a little-endian frame reader with a sticky error.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dshard: "+format, args...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("truncated frame")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("truncated frame")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated frame")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return floatFromBits(d.u64()) }

// uv / sv are the varint fields of the proto-5 delta framing. Decoded
// values are capped well under 2^32 so a malformed frame can neither
// size a huge allocation nor overflow the int arithmetic that
// reconstructs cumulative counters from diffs.
const maxVarint = 1 << 31

func (e *enc) uv(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) sv(v int64)  { e.b = binary.AppendVarint(e.b, v) }

func (d *dec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	if v > maxVarint {
		d.fail("varint %d out of range", v)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) sv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	if v > maxVarint || v < -maxVarint {
		d.fail("varint %d out of range", v)
		return 0
	}
	d.off += n
	return v
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (d *dec) str(max int) string {
	n := int(d.u32())
	if d.err == nil && n > max {
		d.fail("string of %d bytes (cap %d)", n, max)
	}
	if d.err != nil || d.off+n > len(d.b) {
		d.fail("truncated frame")
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("dshard: %d trailing bytes in frame", len(d.b)-d.off)
	}
	return nil
}

// --- span blocks ---

// encodeSpanBlock appends root's span tree in preorder: count, then per
// span its parent's index in the stream (the sentinel for the root), its
// name, start offset and duration in microseconds (relative to the
// block's root span) and attributes. Offsets are block-relative because
// worker and coordinator clocks are not comparable — the decoder rebases
// onto a coordinator-side anchor.
const spanNoParent = ^uint32(0)

func encodeSpanBlock(e *enc, root *obs.Span) {
	type item struct {
		sp     *obs.Span
		parent uint32
	}
	flat := make([]item, 0, 16)
	var walk func(sp *obs.Span, parent uint32)
	walk = func(sp *obs.Span, parent uint32) {
		if sp == nil || len(flat) >= maxWireSpans {
			return
		}
		idx := uint32(len(flat))
		flat = append(flat, item{sp, parent})
		for _, c := range sp.Children {
			walk(c, idx)
		}
	}
	walk(root, spanNoParent)
	base := root.Start
	e.u32(uint32(len(flat)))
	for _, it := range flat {
		e.u32(it.parent)
		name := it.sp.Name
		if len(name) > maxSpanName {
			name = name[:maxSpanName]
		}
		e.str(name)
		e.u64(uint64(max(it.sp.Start.Sub(base).Microseconds(), 0)))
		e.u64(uint64(max(it.sp.Dur.Microseconds(), 0)))
		attrs := it.sp.Attrs
		if len(attrs) > maxSpanAttrs {
			attrs = attrs[:maxSpanAttrs]
		}
		e.u32(uint32(len(attrs)))
		for _, a := range attrs {
			e.str(a.Key)
			e.str(a.Value)
		}
	}
}

// decodeSpanBlock reads one span block, rebasing span start times onto
// base (the coordinator-side moment the RPC began).
func decodeSpanBlock(d *dec, base time.Time) *obs.Span {
	n := int(d.u32())
	if d.err == nil && n > maxWireSpans {
		d.fail("%d wire spans", n)
	}
	spans := make([]*obs.Span, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		parent := d.u32()
		name := d.str(maxSpanName)
		startUS := d.u64()
		durUS := d.u64()
		sp := &obs.Span{
			Name:  name,
			Start: base.Add(time.Duration(startUS) * time.Microsecond),
			Dur:   time.Duration(durUS) * time.Microsecond,
		}
		na := int(d.u32())
		if d.err == nil && na > maxSpanAttrs {
			d.fail("%d span attrs", na)
		}
		for j := 0; j < na && d.err == nil; j++ {
			sp.Attrs = append(sp.Attrs, obs.Attr{Key: d.str(maxSpanName), Value: d.str(maxAttrLen)})
		}
		switch {
		case parent == spanNoParent:
			if i != 0 {
				d.fail("span %d claims to be a second root", i)
			}
		case int(parent) >= len(spans):
			d.fail("span %d references parent %d out of order", i, parent)
		default:
			spans[parent].Children = append(spans[parent].Children, sp)
		}
		spans = append(spans, sp)
	}
	if d.err != nil || len(spans) == 0 {
		return nil
	}
	return spans[0]
}

// appendSpanBlock appends a span block to a response frame (no-op on a
// nil span — untraced responses stay byte-identical to older workers').
func appendSpanBlock(b []byte, root *obs.Span) []byte {
	if root == nil {
		return b
	}
	e := &enc{b: b}
	encodeSpanBlock(e, root)
	return e.b
}

// decodeTrailingSpan reads the optional trailing span block of a
// response. Absence (no bytes left) means "untraced" — the version
// tolerance that lets traced coordinators talk to older workers.
func decodeTrailingSpan(d *dec, base time.Time) *obs.Span {
	if d.err != nil || d.off == len(d.b) {
		return nil
	}
	return decodeSpanBlock(d, base)
}

// --- begin ---

// beginRequest pairs a search id with its spec, plus the optional trace
// id under which the worker should record (and return) its spans and the
// optional deadline (microseconds of budget from arrival) after which the
// worker may abandon the session without waiting for an End.
type beginRequest struct {
	searchID       uint64
	spec           core.SearchSpec
	traceID        uint64
	deadlineMicros uint64
}

// encodeSpecBody / decodeSpecBody read and write one SearchSpec — shared
// between the legacy begin frame and the proto-4 beginset frame.
func encodeSpecBody(e *enc, spec core.SearchSpec) {
	e.u32(uint32(spec.Seeker))
	e.u32(uint32(spec.K))
	e.f64(spec.Params.Gamma)
	e.f64(spec.Params.Eta)
	e.f64(spec.Epsilon)
	e.u32(uint32(len(spec.Groups)))
	for _, g := range spec.Groups {
		e.u32(uint32(len(g)))
		for _, id := range g {
			e.u32(uint32(id))
		}
	}
}

func decodeSpecBody(d *dec) core.SearchSpec {
	var spec core.SearchSpec
	spec.Seeker = graph.NID(d.u32())
	spec.K = int(d.u32())
	spec.Params = score.Params{Gamma: d.f64(), Eta: d.f64()}
	spec.Epsilon = d.f64()
	ng := int(d.u32())
	if d.err == nil && (ng <= 0 || ng > maxGroups) {
		d.fail("%d keyword groups", ng)
	}
	for gi := 0; gi < ng && d.err == nil; gi++ {
		nk := int(d.u32())
		if d.err == nil && (nk <= 0 || nk > maxGroupLen) {
			d.fail("group of %d keywords", nk)
		}
		g := make([]dict.ID, 0, min(nk, 1024))
		for j := 0; j < nk && d.err == nil; j++ {
			g = append(g, dict.ID(d.u32()))
		}
		spec.Groups = append(spec.Groups, g)
	}
	return spec
}

func encodeBeginRequest(r beginRequest) []byte {
	var e enc
	e.u64(r.searchID)
	encodeSpecBody(&e, r.spec)
	// Optional trailing fields, in fixed order: trace id, then deadline.
	// A frame with neither is byte-identical to the pre-trace protocol.
	// The deadline implies the trace id (written even when zero) so the
	// decoder can tell the two 8-byte fields apart by count alone; it is
	// only sent to proto>=2 workers, whose decoder knows the second field.
	switch {
	case r.deadlineMicros != 0:
		e.u64(r.traceID)
		e.u64(r.deadlineMicros)
	case r.traceID != 0:
		e.u64(r.traceID)
	}
	return e.b
}

func decodeBeginRequest(b []byte) (beginRequest, error) {
	d := &dec{b: b}
	var r beginRequest
	r.searchID = d.u64()
	r.spec = decodeSpecBody(d)
	// Optional trailing trace id: absent on frames from pre-trace
	// coordinators (and on untraced searches).
	if d.err == nil && d.off < len(d.b) {
		r.traceID = d.u64()
	}
	// Optional trailing deadline (proto 2): absent on frames from older
	// coordinators and on unbudgeted searches.
	if d.err == nil && d.off < len(d.b) {
		r.deadlineMicros = d.u64()
	}
	return r, d.done()
}

// encodeBeginInfoBody / decodeBeginInfoBody read and write exactly one
// BeginInfo's bytes — the unit both the single-shard reply and the
// proto-4 beginset reply are built from.
func encodeBeginInfoBody(e *enc, info core.BeginInfo) {
	e.u32(uint32(info.Matched))
	e.u32(uint32(len(info.GroupMasses)))
	for _, g := range info.GroupMasses {
		e.u32(uint32(len(g)))
		for _, m := range g {
			e.u32(uint32(m))
		}
	}
}

func decodeBeginInfoBody(d *dec) core.BeginInfo {
	var info core.BeginInfo
	info.Matched = int(d.u32())
	ng := int(d.u32())
	if d.err == nil && ng > maxGroups {
		d.fail("%d mass groups", ng)
	}
	for gi := 0; gi < ng && d.err == nil; gi++ {
		nk := int(d.u32())
		if d.err == nil && nk > maxGroupLen {
			d.fail("mass group of %d", nk)
		}
		g := make([]int32, 0, min(nk, 1024))
		for j := 0; j < nk && d.err == nil; j++ {
			g = append(g, int32(d.u32()))
		}
		info.GroupMasses = append(info.GroupMasses, g)
	}
	return info
}

func encodeBeginInfo(info core.BeginInfo) []byte {
	var e enc
	encodeBeginInfoBody(&e, info)
	return e.b
}

func decodeBeginInfo(b []byte, base time.Time) (core.BeginInfo, *obs.Span, error) {
	d := &dec{b: b}
	info := decodeBeginInfoBody(d)
	sp := decodeTrailingSpan(d, base)
	return info, sp, d.done()
}

// --- round / finalize ---

// roundRequest names a search and the round the coordinator expects to
// run next; the worker rejects out-of-lockstep ordinals, so a replayed or
// lost frame can never silently double-step an exploration. The optional
// trailing flags byte (proto 5, written only when nonzero, only ever sent
// to proto>=5 workers) asks for delta reply framing on finalize; round
// and end requests never carry it, so their frames stay byte-identical to
// every earlier protocol.
type roundRequest struct {
	searchID uint64
	round    uint32
	flags    byte
}

// reqFlagDelta asks the worker to frame the reply as deltas against the
// session's previous round (proto 5). The worker may still reply with
// full-block framing — the reply self-identifies — so the flag is a
// capability hint, never a decode contract.
const reqFlagDelta = 1 << 0

func appendRoundRequest(b []byte, r roundRequest) []byte {
	e := enc{b: b}
	e.u64(r.searchID)
	e.u32(r.round)
	if r.flags != 0 {
		e.u8(r.flags)
	}
	return e.b
}

func encodeRoundRequest(r roundRequest) []byte {
	return appendRoundRequest(nil, r)
}

func decodeRoundRequest(b []byte) (roundRequest, error) {
	d := &dec{b: b}
	r := roundRequest{searchID: d.u64(), round: d.u32()}
	if d.err == nil && d.off < len(d.b) {
		r.flags = d.u8()
		if d.err == nil && (r.flags == 0 || r.flags&^reqFlagDelta != 0) {
			// Canonical encoding: the flags byte is written only when
			// nonzero, and only known bits may be set — anything else is
			// trailing garbage, not a future extension.
			d.fail("bad request flags 0x%02x", r.flags)
		}
	}
	return r, d.done()
}

const (
	roundFlagDone      = 1 << 0
	roundFlagUncertain = 1 << 1
)

// encodeRoundInfoBody / decodeRoundInfoBody read and write exactly one
// RoundInfo's bytes — the unit both the single-round reply and the
// batched reply are built from.
func encodeRoundInfoBody(e *enc, info core.RoundInfo) {
	var flags byte
	if info.Done {
		flags |= roundFlagDone
	}
	if info.Uncertain != nil {
		flags |= roundFlagUncertain
	}
	e.u8(flags)
	e.u32(uint32(info.N))
	e.u32(uint32(info.Reached))
	e.u32(uint32(info.Admitted))
	e.u32(uint32(info.Candidates))
	e.f64(info.Tail)
	e.f64(info.SourceTail)
	e.f64(info.MaxOther)
	e.u32(uint32(len(info.Kept)))
	for _, c := range info.Kept {
		e.u32(uint32(c.Doc))
		e.f64(c.Lower)
		e.f64(c.Upper)
	}
	if info.Uncertain != nil {
		e.u32(uint32(info.Uncertain.Doc))
		e.f64(info.Uncertain.Lower)
		e.f64(info.Uncertain.Upper)
	}
}

func decodeRoundInfoBody(d *dec) core.RoundInfo {
	var info core.RoundInfo
	flags := d.u8()
	info.Done = flags&roundFlagDone != 0
	info.N = int(d.u32())
	info.Reached = int(d.u32())
	info.Admitted = int(d.u32())
	info.Candidates = int(d.u32())
	info.Tail = d.f64()
	info.SourceTail = d.f64()
	info.MaxOther = d.f64()
	nk := int(d.u32())
	if d.err == nil && nk > maxKept {
		d.fail("%d kept candidates", nk)
	}
	for i := 0; i < nk && d.err == nil; i++ {
		info.Kept = append(info.Kept, core.CandMeta{Doc: graph.NID(d.u32()), Lower: d.f64(), Upper: d.f64()})
	}
	if flags&roundFlagUncertain != 0 {
		info.Uncertain = &core.CandMeta{Doc: graph.NID(d.u32()), Lower: d.f64(), Upper: d.f64()}
	}
	return info
}

func encodeRoundInfo(info core.RoundInfo) []byte {
	var e enc
	encodeRoundInfoBody(&e, info)
	return e.b
}

func decodeRoundInfo(b []byte, base time.Time) (core.RoundInfo, *obs.Span, error) {
	d := &dec{b: b}
	info := decodeRoundInfoBody(d)
	sp := decodeTrailingSpan(d, base)
	return info, sp, d.done()
}

// --- batched rounds (proto 2) ---

// roundsRequest asks a worker to advance up to max lockstep rounds,
// starting from round `from` (which must be the next round in lockstep,
// exactly like roundRequest). The worker may execute fewer — it returns
// early on the first admission, kept-set change, exhaustion or the
// precision floor — but always at least one.
// The optional trailing flags byte follows the same rules as
// roundRequest's: written only when nonzero, only sent to proto>=5
// workers, so flagless frames stay byte-identical to proto 2.
type roundsRequest struct {
	searchID uint64
	from     uint32
	max      uint32
	flags    byte
}

func appendRoundsRequest(b []byte, r roundsRequest) []byte {
	e := enc{b: b}
	e.u64(r.searchID)
	e.u32(r.from)
	e.u32(r.max)
	if r.flags != 0 {
		e.u8(r.flags)
	}
	return e.b
}

func encodeRoundsRequest(r roundsRequest) []byte {
	return appendRoundsRequest(nil, r)
}

func decodeRoundsRequest(b []byte) (roundsRequest, error) {
	d := &dec{b: b}
	r := roundsRequest{searchID: d.u64(), from: d.u32(), max: d.u32()}
	if d.err == nil && (r.max == 0 || r.max > maxBatchRounds) {
		d.fail("batch of %d rounds (cap %d)", r.max, maxBatchRounds)
	}
	if d.err == nil && d.off < len(d.b) {
		r.flags = d.u8()
		if d.err == nil && (r.flags == 0 || r.flags&^reqFlagDelta != 0) {
			// Canonical encoding, as in decodeRoundRequest.
			d.fail("bad request flags 0x%02x", r.flags)
		}
	}
	return r, d.done()
}

// encodeRoundsReply carries one RoundInfo per executed round, in round
// order, so the coordinator can replay its per-round stop decision on
// each — byte-identity does not depend on how the rounds were grouped
// into RPCs.
func encodeRoundsReply(infos []core.RoundInfo) []byte {
	return appendRoundsReply(nil, infos)
}

func appendRoundsReply(b []byte, infos []core.RoundInfo) []byte {
	e := enc{b: b}
	e.u32(uint32(len(infos)))
	for i := range infos {
		encodeRoundInfoBody(&e, infos[i])
	}
	return e.b
}

func decodeRoundsReply(b []byte, base time.Time) ([]core.RoundInfo, *obs.Span, error) {
	d := &dec{b: b}
	n := int(d.u32())
	if d.err == nil && (n == 0 || n > maxBatchRounds) {
		d.fail("%d rounds in batched reply", n)
	}
	infos := make([]core.RoundInfo, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		infos = append(infos, decodeRoundInfoBody(d))
	}
	sp := decodeTrailingSpan(d, base)
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return infos, sp, nil
}

// --- replay fast-forward (proto 3) ---

// replayRequest asks a worker to advance its session from round `from`
// (which must be the next round in lockstep, exactly like roundsRequest)
// up to and including round `upto`, discarding the per-round infos: the
// coordinator already consumed those rounds on the replica that failed,
// and workers execute identical FP ops over the shared substrate, so the
// fast-forwarded state is bit-identical. The worker executes at most
// maxWorkerBatch rounds per call and reports how far it got; the
// coordinator loops until the session catches up.
type replayRequest struct {
	searchID uint64
	from     uint32
	upto     uint32
}

func encodeReplayRequest(r replayRequest) []byte {
	var e enc
	e.u64(r.searchID)
	e.u32(r.from)
	e.u32(r.upto)
	return e.b
}

func decodeReplayRequest(b []byte) (replayRequest, error) {
	d := &dec{b: b}
	r := replayRequest{searchID: d.u64(), from: d.u32(), upto: d.u32()}
	if d.err == nil && (r.upto < r.from || r.upto-r.from >= maxBatchRounds) {
		d.fail("replay of rounds %d..%d (cap %d)", r.from, r.upto, maxBatchRounds)
	}
	return r, d.done()
}

// replayReply reports the round ordinal the session sits at after the
// call (>= from, <= upto).
type replayReply struct {
	round uint32
}

func encodeReplayReply(r replayReply) []byte {
	var e enc
	e.u32(r.round)
	return e.b
}

func decodeReplayReply(b []byte) (replayReply, error) {
	d := &dec{b: b}
	r := replayReply{round: d.u32()}
	return r, d.done()
}

// --- host sessions (proto 4) ---

// beginSetRequest installs one session covering a LIST of the worker's
// hosted shards: the worker serves them all off a single shared proximity
// iterator (core.HostExecutor), and every subsequent rounds/finalize reply
// for the session carries one RoundInfo block per member shard, in list
// order. The round/replay/end request frames are unchanged — a host
// session is addressed by its search id like any other.
type beginSetRequest struct {
	searchID       uint64
	shards         []int
	spec           core.SearchSpec
	traceID        uint64
	deadlineMicros uint64
}

func encodeBeginSetRequest(r beginSetRequest) []byte {
	var e enc
	e.u64(r.searchID)
	e.u32(uint32(len(r.shards)))
	for _, s := range r.shards {
		e.u32(uint32(s))
	}
	encodeSpecBody(&e, r.spec)
	// Optional trailing trace id / deadline, same count-disambiguated
	// rules as the begin frame. beginset is proto-4 only, so the decoder
	// always knows both fields.
	switch {
	case r.deadlineMicros != 0:
		e.u64(r.traceID)
		e.u64(r.deadlineMicros)
	case r.traceID != 0:
		e.u64(r.traceID)
	}
	return e.b
}

func decodeBeginSetRequest(b []byte) (beginSetRequest, error) {
	d := &dec{b: b}
	var r beginSetRequest
	r.searchID = d.u64()
	ns := int(d.u32())
	if d.err == nil && (ns <= 0 || ns > maxHostShards) {
		d.fail("%d shards in beginset", ns)
	}
	seen := make(map[int]struct{}, min(ns, 16))
	for i := 0; i < ns && d.err == nil; i++ {
		s := int(d.u32())
		if _, dup := seen[s]; dup {
			d.fail("shard %d listed twice in beginset", s)
		}
		seen[s] = struct{}{}
		r.shards = append(r.shards, s)
	}
	r.spec = decodeSpecBody(d)
	if d.err == nil && d.off < len(d.b) {
		r.traceID = d.u64()
	}
	if d.err == nil && d.off < len(d.b) {
		r.deadlineMicros = d.u64()
	}
	return r, d.done()
}

// encodeBeginSetReply carries one BeginInfo per member shard, in the
// request's shard-list order, plus the optional trailing span block.
func encodeBeginSetReply(infos []core.BeginInfo) []byte {
	var e enc
	e.u32(uint32(len(infos)))
	for i := range infos {
		encodeBeginInfoBody(&e, infos[i])
	}
	return e.b
}

func decodeBeginSetReply(b []byte, nShards int, base time.Time) ([]core.BeginInfo, *obs.Span, error) {
	d := &dec{b: b}
	n := int(d.u32())
	if d.err == nil && n != nShards {
		d.fail("beginset reply covers %d shards, session has %d", n, nShards)
	}
	infos := make([]core.BeginInfo, 0, min(n, maxHostShards))
	for i := 0; i < n && d.err == nil; i++ {
		infos = append(infos, decodeBeginInfoBody(d))
	}
	sp := decodeTrailingSpan(d, base)
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return infos, sp, nil
}

// encodeHostRoundsReply carries, per executed round, one RoundInfo per
// member shard (round-major, shard-list order within a round): the
// coordinator replays its per-round, per-shard stop decisions on each
// block, so byte-identity does not depend on how shards were grouped onto
// hosts or rounds into RPCs.
func encodeHostRoundsReply(rows [][]core.RoundInfo) []byte {
	return appendHostRoundsReply(nil, rows)
}

func appendHostRoundsReply(b []byte, rows [][]core.RoundInfo) []byte {
	e := enc{b: b}
	e.u32(uint32(len(rows)))
	var nShards int
	if len(rows) > 0 {
		nShards = len(rows[0])
	}
	e.u32(uint32(nShards))
	for _, row := range rows {
		for i := range row {
			encodeRoundInfoBody(&e, row[i])
		}
	}
	return e.b
}

func decodeHostRoundsReply(b []byte, nShards int, base time.Time) ([][]core.RoundInfo, *obs.Span, error) {
	d := &dec{b: b}
	n := int(d.u32())
	if d.err == nil && (n == 0 || n > maxBatchRounds) {
		d.fail("%d rounds in host batched reply", n)
	}
	ns := int(d.u32())
	if d.err == nil && ns != nShards {
		d.fail("host rounds reply covers %d shards, session has %d", ns, nShards)
	}
	rows := make([][]core.RoundInfo, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		row := make([]core.RoundInfo, 0, nShards)
		for j := 0; j < ns && d.err == nil; j++ {
			row = append(row, decodeRoundInfoBody(d))
		}
		rows = append(rows, row)
	}
	sp := decodeTrailingSpan(d, base)
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return rows, sp, nil
}

// encodeHostInfosReply carries one RoundInfo per member shard — the host
// session's finalize reply.
func encodeHostInfosReply(infos []core.RoundInfo) []byte {
	return appendHostInfosReply(nil, infos)
}

func appendHostInfosReply(b []byte, infos []core.RoundInfo) []byte {
	e := enc{b: b}
	e.u32(uint32(len(infos)))
	for i := range infos {
		encodeRoundInfoBody(&e, infos[i])
	}
	return e.b
}

func decodeHostInfosReply(b []byte, nShards int, base time.Time) ([]core.RoundInfo, *obs.Span, error) {
	d := &dec{b: b}
	n := int(d.u32())
	if d.err == nil && n != nShards {
		d.fail("host reply covers %d shards, session has %d", n, nShards)
	}
	infos := make([]core.RoundInfo, 0, min(n, maxHostShards))
	for i := 0; i < n && d.err == nil; i++ {
		infos = append(infos, decodeRoundInfoBody(d))
	}
	sp := decodeTrailingSpan(d, base)
	if err := d.done(); err != nil {
		return nil, nil, err
	}
	return infos, sp, nil
}

// floatBits / floatFromBits round-trip float64s through their exact bit
// patterns: the transport must not perturb a single ULP, or the
// byte-identity guarantee (and the coordinator's merge order) breaks.
func floatBits(v float64) uint64 { return math.Float64bits(v) }

func floatFromBits(v uint64) float64 { return math.Float64frombits(v) }

// --- frame buffer pool ---

// frameBuf is a pooled byte buffer for encoding request/reply frames and
// for reading HTTP bodies: the round hot path builds and consumes every
// frame within one call, so the backing arrays recycle instead of
// pressuring the GC once per round.
type frameBuf struct{ b []byte }

// maxPooledFrame bounds what a returned buffer may retain: a frame that
// ballooned past it (a giant traced reply, say) is dropped rather than
// pinned in the pool forever.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrame(f *frameBuf) {
	if f == nil || cap(f.b) > maxPooledFrame {
		return
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// readAllFrame reads r to EOF into fb's backing array (growing it as
// needed), returning the body. It is io.ReadAll with a caller-owned
// buffer, so steady-state frame reads allocate nothing.
func readAllFrame(r io.Reader, fb *frameBuf) ([]byte, error) {
	b := fb.b[:0]
	if cap(b) == 0 {
		b = make([]byte, 0, 4096)
	}
	for {
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		fb.b = b
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return b, err
		}
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
	}
}
