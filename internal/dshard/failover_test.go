// Tests for the proto-3 resilience extensions: the replay fast-forward
// codec and its proto-2 fallback, frame CRC integrity, the per-worker
// circuit breaker, the jittered probe schedule, worker drain across a
// restart, and membership refresh racing live searches.
package dshard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/score"
	"s3/internal/snap"
)

// TestReplayWireRoundTrip mirrors TestBatchedWireRoundTrip for the
// proto-3 replay frames: exact round trips plus rejection of truncated,
// padded, inverted and oversized ranges.
func TestReplayWireRoundTrip(t *testing.T) {
	rr := replayRequest{searchID: 42, from: 3, upto: 40}
	gotRR, err := decodeReplayRequest(encodeReplayRequest(rr))
	if err != nil {
		t.Fatal(err)
	}
	if gotRR != rr {
		t.Fatalf("replay request round trip: %+v != %+v", gotRR, rr)
	}
	if _, err := decodeReplayRequest(encodeReplayRequest(replayRequest{searchID: 1, from: 5, upto: 4})); err == nil {
		t.Error("inverted replay range accepted")
	}
	if _, err := decodeReplayRequest(encodeReplayRequest(replayRequest{searchID: 1, from: 1, upto: 1 + maxBatchRounds})); err == nil {
		t.Error("oversized replay range accepted")
	}
	reqFrame := encodeReplayRequest(rr)
	for cut := 0; cut < len(reqFrame); cut++ {
		if _, err := decodeReplayRequest(reqFrame[:cut]); err == nil {
			t.Fatalf("truncated replay request (%d bytes) accepted", cut)
		}
	}
	if _, err := decodeReplayRequest(append(bytes.Clone(reqFrame), 0)); err == nil {
		t.Error("trailing garbage on replay request accepted")
	}

	rep := replayReply{round: 17}
	gotRep, err := decodeReplayReply(encodeReplayReply(rep))
	if err != nil {
		t.Fatal(err)
	}
	if gotRep != rep {
		t.Fatalf("replay reply round trip: %+v != %+v", gotRep, rep)
	}
	repFrame := encodeReplayReply(rep)
	for cut := 0; cut < len(repFrame); cut++ {
		if _, err := decodeReplayReply(repFrame[:cut]); err == nil {
			t.Fatalf("truncated replay reply (%d bytes) accepted", cut)
		}
	}
	if _, err := decodeReplayReply(append(bytes.Clone(repFrame), 0)); err == nil {
		t.Error("trailing garbage on replay reply accepted")
	}
}

// TestFrameCRC covers the integrity layer: the codec-level check and the
// worker's 422 (not 400 — a CRC mismatch is transit corruption the
// coordinator must retry, never a deterministic rejection).
func TestFrameCRC(t *testing.T) {
	body := []byte("round protocol frame")
	if err := checkFrameCRC(body, frameCRC(body)); err != nil {
		t.Fatalf("matching CRC rejected: %v", err)
	}
	// An absent header is tolerated (a peer that does not compute CRCs).
	if err := checkFrameCRC(body, ""); err != nil {
		t.Fatalf("absent CRC header rejected: %v", err)
	}
	flipped := bytes.Clone(body)
	flipped[3] ^= 0x10
	if err := checkFrameCRC(flipped, frameCRC(body)); err == nil {
		t.Fatal("corrupted body passed the CRC check")
	}

	_, _, _, servers := smallTopology(t)
	post := func(crc string) int {
		req, err := http.NewRequest(http.MethodPost, servers[0].URL+pathBegin, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if crc != "" {
			req.Header.Set(frameCRCHeader, crc)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(frameCRC([]byte("something else"))); code != http.StatusUnprocessableEntity {
		t.Fatalf("worker answered %d to a corrupt frame, want 422", code)
	}
	// With a matching CRC the same garbage is a malformed frame: a
	// deterministic 400, which the coordinator must NOT fail over on.
	if code := post(frameCRC(body)); code != http.StatusBadRequest {
		t.Fatalf("worker answered %d to a malformed frame, want 400", code)
	}
}

// deepQuery finds a query that runs at least minRounds lockstep rounds
// against srv's shard without finishing, so replay tests have history to
// fast-forward through.
func deepQuery(t *testing.T, set *snap.ShardSetSnapshot, srv *httptest.Server, minRounds int) core.SearchSpec {
	t.Helper()
	in := set.Set.Base
	seekers, kwSets := queries(in)
	id := uint64(990000)
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil {
				t.Fatal(err)
			}
			if !possible {
				continue
			}
			spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5,
				Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
			id++
			re := newRemoteExecutor(http.DefaultClient, srv.URL, id)
			if _, err := re.Begin(spec); err != nil {
				t.Fatal(err)
			}
			deep := true
			for i := 0; i < minRounds; i++ {
				info, err := re.Round()
				if err != nil {
					t.Fatal(err)
				}
				if info.Done {
					deep = false
					break
				}
			}
			re.End()
			if deep {
				return spec
			}
		}
	}
	t.Fatal("no query runs deep enough for a replay test")
	return core.SearchSpec{}
}

// replayIdentity is the replay acceptance property: a session begun
// fresh and fast-forwarded through k consumed rounds continues — round
// for round, bit for bit — exactly like the session that executed those
// rounds live. hideReplay routes the replica through a proxy without
// /shard/v1/replay, exercising the proto-2 fallback.
func replayIdentity(t *testing.T, hideReplay bool) {
	t.Helper()
	_, set, _, servers := smallTopology(t)
	srv := servers[0]
	spec := deepQuery(t, set, srv, 4)

	primary := newRemoteExecutor(http.DefaultClient, srv.URL, 8801)
	bi1, err := primary.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	const consumed = 3
	for i := 0; i < consumed; i++ {
		if _, err := primary.Round(); err != nil {
			t.Fatal(err)
		}
	}

	replicaURL := srv.URL
	if hideReplay {
		proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if req.URL.Path == pathReplay {
				http.NotFound(rw, req)
				return
			}
			srv.Config.Handler.ServeHTTP(rw, req)
		}))
		t.Cleanup(proxy.Close)
		replicaURL = proxy.URL
	}
	var noReplay atomic.Bool
	replica := newRemoteExecutor(http.DefaultClient, replicaURL, 8802).
		withResilience(context.Background(), 5*time.Second, &noReplay, nil)
	bi2, err := replica.Begin(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bi2.Matched != bi1.Matched {
		t.Fatalf("replica diverges on begin: matched %d vs %d", bi2.Matched, bi1.Matched)
	}
	if err := replica.FastForward(consumed); err != nil {
		t.Fatal(err)
	}
	if noReplay.Load() != hideReplay {
		t.Fatalf("noReplay latch = %v after fast-forward, want %v", noReplay.Load(), hideReplay)
	}

	// The stop decision belongs to the coordinator, so Done may never
	// fire when driving executors directly: compare a fixed window of
	// post-recovery rounds, then the finalize state at that point.
	for i := 0; i < 6; i++ {
		a, err := primary.Round()
		if err != nil {
			t.Fatal(err)
		}
		b, err := replica.Round()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeRoundInfo(a), encodeRoundInfo(b)) {
			t.Fatalf("round %d diverged after fast-forward:\nlive:   %+v\nreplay: %+v", consumed+i+1, a, b)
		}
		if a.Done {
			break
		}
	}
	fa, err := primary.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := replica.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeRoundInfo(fa), encodeRoundInfo(fb)) {
		t.Fatalf("finalize diverged after fast-forward:\nlive:   %+v\nreplay: %+v", fa, fb)
	}
	primary.End()
	replica.End()
}

// TestReplayFastForward: fast-forward over /shard/v1/replay.
func TestReplayFastForward(t *testing.T) { replayIdentity(t, false) }

// TestReplayFallback: the same property against a worker without the
// replay endpoint — the executor falls back to fetching the rounds and
// discarding the results, and latches the capability off.
func TestReplayFallback(t *testing.T) { replayIdentity(t, true) }

// stubHealthz serves a minimal worker /healthz (+ empty /stats) whose
// health is toggled by the test: the breaker tests drive probe outcomes
// without paying for a real worker.
func stubHealthz(t *testing.T, setID uint64, healthy *atomic.Bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		if !healthy.Load() {
			rw.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(rw).Encode(map[string]any{"status": "draining"})
			return
		}
		json.NewEncoder(rw).Encode(map[string]any{
			"status": "serving", "shard": 0, "shard_count": 1,
			"set_id": fmt.Sprintf("%016x", setID), "proto": protoVersion,
		})
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, req *http.Request) {
		rw.Write([]byte("{}"))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestBreakerStateMachine drives the per-worker circuit breaker through
// its full cycle: failures open it, a healthy probe half-opens it, the
// half-open state admits exactly one trial, a passed trial (or two
// consecutive healthy probes, for an idle fleet) closes it, and a failed
// trial re-opens it.
func TestBreakerStateMachine(t *testing.T) {
	const setID = 0x5e71d
	var healthy atomic.Bool
	healthy.Store(true)
	srv := stubHealthz(t, setID, &healthy)

	c, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: []string{srv.URL}, ShardCount: 1, SetID: setID,
		ProbeInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w := c.workers[0]
	state := func() int {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.brState
	}

	c.probeWorker(ctx, w)
	if state() != brClosed {
		t.Fatalf("breaker %s after a healthy probe, want closed", breakerName(state()))
	}

	// Below the threshold the breaker stays closed (the worker is benched
	// by healthy=false, but not held open).
	boom := fmt.Errorf("boom")
	c.noteWorkerFailure(w, boom)
	c.noteWorkerFailure(w, boom)
	if state() != brClosed {
		t.Fatalf("breaker %s after %d failures, want closed", breakerName(state()), breakerThreshold-1)
	}
	c.noteWorkerFailure(w, boom)
	if state() != brOpen {
		t.Fatalf("breaker %s after %d failures, want open", breakerName(state()), breakerThreshold)
	}
	w.mu.Lock()
	window := time.Until(w.openUntil)
	level := w.brLevel
	w.mu.Unlock()
	if level != 1 {
		t.Fatalf("first trip at level %d, want 1", level)
	}
	// Full jitter over [interval/2, interval].
	if window < 400*time.Millisecond || window > 1100*time.Millisecond {
		t.Fatalf("level-1 open window %v outside [0.5s, 1s]", window)
	}
	if _, err := c.pickShard(0, nil); err == nil {
		t.Fatal("open worker admitted a search")
	}

	// A healthy probe half-opens; the half-open state hands out exactly
	// one trial token.
	c.probeWorker(ctx, w)
	if state() != brHalfOpen {
		t.Fatalf("breaker %s after a healthy probe of an open worker, want half-open", breakerName(state()))
	}
	if _, err := c.pickShard(0, nil); err != nil {
		t.Fatalf("half-open worker refused its trial: %v", err)
	}
	if _, err := c.pickShard(0, nil); err == nil {
		t.Fatal("half-open worker admitted a second concurrent search")
	}
	c.noteWorkerSuccess(w)
	if state() != brClosed {
		t.Fatalf("breaker %s after a passed trial, want closed", breakerName(state()))
	}

	// A failed trial re-opens immediately (no threshold for half-open).
	for i := 0; i < breakerThreshold; i++ {
		c.noteWorkerFailure(w, boom)
	}
	c.probeWorker(ctx, w)
	if _, err := c.pickShard(0, nil); err != nil {
		t.Fatalf("half-open worker refused its trial: %v", err)
	}
	c.noteWorkerFailure(w, boom)
	if state() != brOpen {
		t.Fatalf("breaker %s after a failed trial, want open", breakerName(state()))
	}

	// Idle recovery: two consecutive healthy probes close a half-open
	// breaker with no search traffic at all.
	c.probeWorker(ctx, w)
	if state() != brHalfOpen {
		t.Fatalf("breaker %s, want half-open", breakerName(state()))
	}
	c.probeWorker(ctx, w)
	if state() != brClosed {
		t.Fatalf("breaker %s after %d healthy probes, want closed", breakerName(state()), halfOpenProbes)
	}
}

// TestBreakerBackoff: consecutive trips grow the open window
// exponentially — with full jitter, capped at breakerMaxLevel.
func TestBreakerBackoff(t *testing.T) {
	const interval = time.Second
	c, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: []string{"http://w0"}, ShardCount: 1, SetID: 1,
		ProbeInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := c.workers[0]
	for trip := 1; trip <= breakerMaxLevel+2; trip++ {
		w.mu.Lock()
		c.openBreakerLocked(w)
		level, window := w.brLevel, time.Until(w.openUntil)
		next := w.nextProbe
		until := w.openUntil
		w.mu.Unlock()
		wantLevel := trip
		if wantLevel > breakerMaxLevel {
			wantLevel = breakerMaxLevel
		}
		if level != wantLevel {
			t.Fatalf("trip %d: level %d, want %d", trip, level, wantLevel)
		}
		d := interval << (wantLevel - 1)
		if window < d/2-100*time.Millisecond || window > d+100*time.Millisecond {
			t.Fatalf("trip %d: open window %v outside [%v, %v]", trip, window, d/2, d)
		}
		if !next.Equal(until) {
			t.Fatalf("trip %d: next probe %v != open window end %v", trip, next, until)
		}
	}
}

// TestProbeJitter is the thundering-herd regression: per-worker probe
// times must spread over the ±25% jitter window instead of landing every
// worker on the same tick, and an open worker's next probe must be its
// (already backed-off, jittered) window end.
func TestProbeJitter(t *testing.T) {
	const interval = time.Second
	c, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: []string{"http://w0"}, ShardCount: 1, SetID: 1,
		ProbeInterval: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := c.workers[0]
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		c.scheduleProbe(w)
		w.mu.Lock()
		d := time.Until(w.nextProbe)
		w.mu.Unlock()
		if d < interval*3/4-50*time.Millisecond || d > interval*5/4+50*time.Millisecond {
			t.Fatalf("probe scheduled %v out, outside %v±25%%", d, interval)
		}
		seen[d.Round(time.Millisecond)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("probe schedule collapsed onto %d distinct offsets over 64 draws — jitter missing", len(seen))
	}

	w.mu.Lock()
	w.brState = brOpen
	w.openUntil = time.Now().Add(42 * time.Second)
	w.mu.Unlock()
	c.scheduleProbe(w)
	w.mu.Lock()
	next, until := w.nextProbe, w.openUntil
	w.brState = brClosed
	w.mu.Unlock()
	if !next.Equal(until) {
		t.Fatalf("open worker's next probe %v, want its window end %v", next, until)
	}
}

// TestWorkerDrainAndRestart is the graceful-shutdown satellite: a
// draining worker refuses new sessions but finishes the one in flight
// (Drain blocks until End), the fleet keeps answering byte-identically
// through its replica meanwhile, and a restarted worker on the same
// address rejoins membership.
func TestWorkerDrainAndRestart(t *testing.T) {
	manifestPath, set, workers, servers := smallTopology(t)
	urlsB, stopB := startWorkers(t, manifestPath, 2, snap.LoadMmap)
	defer stopB()
	urls := []string{servers[0].URL, servers[1].URL}
	urls = append(urls, urlsB...)
	coord := newCoordinator(t, set.Set.Layout, urls)

	spec := deepQuery(t, set, servers[0], 2)
	wantSel, wantStats, err := coord.Search(spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := metaTranscript(wantSel, wantStats)

	// Open a session, then start draining: the session must pin Drain.
	inflight := newRemoteExecutor(http.DefaultClient, servers[0].URL, 7701)
	if _, err := inflight.Begin(spec); err != nil {
		t.Fatal(err)
	}
	workers[0].SetDraining()
	short, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err = workers[0].Drain(short)
	cancel()
	if err == nil {
		t.Fatal("Drain returned with a session still open")
	}
	// New sessions are refused while the in-flight one still gets rounds.
	refused := newRemoteExecutor(http.DefaultClient, servers[0].URL, 7702)
	if _, err := refused.Begin(spec); err == nil {
		t.Fatal("draining worker accepted a new search")
	}
	if _, err := inflight.Round(); err != nil {
		t.Fatalf("draining worker refused an in-flight round: %v", err)
	}
	// The fleet keeps answering through the replica.
	for i := 0; i < 3; i++ {
		sel, stats, err := coord.Search(spec, core.CoordOptions{})
		if err != nil {
			t.Fatalf("search %d while draining: %v", i, err)
		}
		if got := metaTranscript(sel, stats); got != want {
			t.Fatalf("answer diverged while worker drained\nwant:\n%s\ngot:\n%s", want, got)
		}
	}
	inflight.End()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := workers[0].Drain(drainCtx); err != nil {
		t.Fatalf("drain after End: %v", err)
	}

	// Restart on the same address: the freed port is rebound, a fresh
	// worker loads, and the coordinator's probe readmits it.
	addr := servers[0].Listener.Addr().String()
	servers[0].Close()
	var ln net.Listener
	waitUntil(t, 5*time.Second, func() bool {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return false
		}
		ln = l
		return true
	})
	w2 := NewWorker(WorkerConfig{ManifestPath: manifestPath, Shard: 0, Mode: snap.LoadMmap})
	if err := w2.Load(); err != nil {
		t.Fatal(err)
	}
	restarted := &httptest.Server{Listener: ln, Config: &http.Server{Handler: w2.Handler()}}
	restarted.Start()
	t.Cleanup(restarted.Close)

	if err := coord.Probe(context.Background()); err != nil {
		t.Fatalf("probe after restart: %v", err)
	}
	back := false
	for _, ws := range coord.Stats().Workers {
		if ws.URL == "http://"+addr && ws.Healthy {
			back = true
		}
	}
	if !back {
		t.Fatal("restarted worker did not rejoin membership")
	}
	sel, stats, err := coord.Search(spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := metaTranscript(sel, stats); got != want {
		t.Fatalf("answer diverged after restart\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestMembershipRefreshDuringSearches races the background probe loop
// against concurrent searches (run under -race in CI): membership
// refresh must never perturb an answer or trip the race detector.
func TestMembershipRefreshDuringSearches(t *testing.T) {
	_, set, _, servers := smallTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls, ShardCount: len(set.Set.Layout.Shards), SetID: set.Set.Layout.SetID,
		Client:        &http.Client{Timeout: 10 * time.Second},
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go coord.Run(ctx)

	spec := deepQuery(t, set, servers[0], 2)
	wantSel, wantStats, err := coord.Search(spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := metaTranscript(wantSel, wantStats)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				sel, stats, err := coord.Search(spec, core.CoordOptions{})
				if err != nil {
					errs <- err
					return
				}
				if got := metaTranscript(sel, stats); got != want {
					errs <- fmt.Errorf("answer diverged under concurrent membership refresh")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
