//go:build race

package dshard

// raceEnabled flags a -race build: the race runtime inserts allocations
// of its own, so strict AllocsPerOp assertions only hold without it.
const raceEnabled = true
