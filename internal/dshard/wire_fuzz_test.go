package dshard

import (
	"math/rand"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/score"
)

// sampleRoundInfos builds a representative batched reply: several rounds,
// kept lists of varying length, an uncertain candidate, non-trivial float
// bounds.
func sampleRoundInfos() []core.RoundInfo {
	return []core.RoundInfo{
		{
			N: 3, Reached: 120, Admitted: 4, Candidates: 9,
			Tail: 0.25, SourceTail: 0.125, MaxOther: 0.75,
			Kept: []core.CandMeta{
				{Doc: 11, Lower: 0.5, Upper: 0.9},
				{Doc: 7, Lower: 0.4, Upper: 0.8},
			},
			Uncertain: &core.CandMeta{Doc: 42, Lower: 0.3, Upper: 0.85},
		},
		{
			N: 4, Reached: 180, Admitted: 4, Candidates: 9,
			Tail: 0.125, SourceTail: 0.0625, MaxOther: 0.6,
			Kept: []core.CandMeta{{Doc: 11, Lower: 0.55, Upper: 0.82}},
		},
		{
			N: 5, Reached: 240, Admitted: 5, Candidates: 11,
			Tail: 0.0625, SourceTail: 0.03125, MaxOther: 0.5,
			Done: true,
		},
	}
}

// TestRoundsReplyCorruption drives the batched-reply decoder through every
// truncation point and a deterministic storm of random bit flips: a
// corrupted frame must either decode (flips inside float payloads or list
// bodies can be value-preserving-shaped) or fail with an error — never
// panic, hang, or over-allocate. This is the protocol-tolerance guarantee
// a coordinator relies on when a worker (or the network) misbehaves.
func TestRoundsReplyCorruption(t *testing.T) {
	base := time.Now()
	frame := encodeRoundsReply(sampleRoundInfos())

	// Every prefix of a valid frame must be rejected or decoded, never
	// crash. All strict prefixes are in fact invalid (the frame has no
	// optional interior), so expect errors everywhere short of full.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := decodeRoundsReply(frame[:cut], base); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(frame))
		}
	}
	if _, _, err := decodeRoundsReply(frame, base); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}

	// Deterministic bit-flip storm. Flipping count or length fields must
	// hit the decode caps instead of sizing huge allocations.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20000; trial++ {
		mut := append([]byte(nil), frame...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			i := rng.Intn(len(mut))
			mut[i] ^= 1 << uint(rng.Intn(8))
		}
		infos, _, err := decodeRoundsReply(mut, base)
		if err == nil && len(infos) == 0 {
			t.Fatal("corrupted frame decoded to zero rounds without error")
		}
	}
}

// TestBeginRequestCorruption is the worker-side mirror: begin frames come
// off the network and size allocations (keyword groups), so a malformed
// frame must die on the decode caps, never panic. Unlike the rounds
// reply, begin frames end in optional fields (trace id, deadline), so
// some truncations are legitimately valid shorter frames — the assertion
// is survival plus sane results, not universal rejection.
func TestBeginRequestCorruption(t *testing.T) {
	frame := encodeBeginRequest(beginRequest{
		searchID: 99,
		spec: core.SearchSpec{
			Seeker:  graph.NID(17),
			Groups:  [][]dict.ID{{1, 2, 3}, {9}, {4, 5}},
			K:       5,
			Params:  score.Params{Gamma: 1.5, Eta: 0.8},
			Epsilon: 1e-12,
		},
		traceID:        0xdeadbeef,
		deadlineMicros: 1_000_000,
	})
	if _, err := decodeBeginRequest(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for cut := 0; cut < len(frame); cut++ {
		r, err := decodeBeginRequest(frame[:cut])
		if err == nil && len(r.spec.Groups) != 3 {
			t.Fatalf("truncation at %d decoded to %d groups without error", cut, len(r.spec.Groups))
		}
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		mut := append([]byte(nil), frame...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			i := rng.Intn(len(mut))
			mut[i] ^= 1 << uint(rng.Intn(8))
		}
		r, err := decodeBeginRequest(mut)
		if err == nil {
			for _, g := range r.spec.Groups {
				if len(g) > maxGroupLen {
					t.Fatalf("decoded group of %d ids past the cap", len(g))
				}
			}
		}
	}
}

// FuzzDecodeRoundsReply and FuzzDecodeBeginRequest let `go test -fuzz`
// explore the decoders beyond the deterministic storms; in normal test
// runs they replay the seed corpus (a valid frame each, plus shape-probing
// mutants) as plain subtests.
func FuzzDecodeRoundsReply(f *testing.F) {
	f.Add(encodeRoundsReply(sampleRoundInfos()))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		infos, _, err := decodeRoundsReply(b, time.Unix(0, 0))
		if err == nil && len(infos) == 0 {
			t.Fatal("decoded to zero rounds without error")
		}
	})
}

func FuzzDecodeBeginRequest(f *testing.F) {
	f.Add(encodeBeginRequest(beginRequest{
		searchID: 1,
		spec: core.SearchSpec{
			Seeker: graph.NID(3), Groups: [][]dict.ID{{7}}, K: 2, Epsilon: 1e-9,
		},
	}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeBeginRequest(b)
		if err == nil && len(r.spec.Groups) == 0 {
			t.Fatal("decoded to zero keyword groups without error")
		}
	})
}
