// The shard worker: one process serving one or more shards of a set
// through the round protocol, plus the operational endpoints a
// coordinator and an external router need (/healthz readiness, /stats
// counters, /reload). A multi-shard worker (proto 4) serves host
// sessions: all its shards of one search share a single proximity
// iterator, stepped once per round.
package dshard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/proxcache"
	"s3/internal/snap"
)

// Worker states, reported by /healthz. Readiness (HTTP 200) means
// "serving": a loading worker has no engine yet, and a draining worker
// wants routers and coordinators to stop sending new searches while its
// in-flight rounds finish. Liveness is the TCP listener itself.
const (
	StateLoading int32 = iota
	StateServing
	StateDraining
)

func stateName(s int32) string {
	switch s {
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	default:
		return "loading"
	}
}

// WorkerConfig assembles a Worker.
type WorkerConfig struct {
	// ManifestPath and Shard select the shard-set manifest and this
	// worker's ordinal; Mode is the load mode (snap.LoadMmap maps the
	// sliced substrate).
	ManifestPath string
	Shard        int
	Mode         snap.LoadMode
	// Shards, when non-empty, lists ALL the shard ordinals this process
	// hosts (Shard is ignored); the worker serves them off one substrate
	// mapping, and host sessions (proto 4) share one proximity iterator
	// across every hosted shard of a search. Empty means []int{Shard}.
	Shards []int
	// Verify selects when snapshot payload checksums run: snap.VerifyEager
	// (default) fails the Load on corruption; snap.VerifyLazy starts
	// serving as soon as the section tables parse and flips the worker
	// unhealthy if the background pass finds corruption.
	Verify snap.VerifyMode
	// Workers bounds per-search candidate-bound parallelism (0 = serial).
	Workers int
	// SessionTTL evicts abandoned searches (a crashed coordinator never
	// sends End); 0 picks the default 60s.
	SessionTTL time.Duration
	// MaxSessions bounds concurrently open searches; 0 picks 1024.
	MaxSessions int
	// ProxCacheBytes budgets the worker's seeker-proximity checkpoint
	// cache: repeated seekers resume their recorded exploration frontier
	// instead of re-propagating from depth 0 (replay is bit-identical, so
	// distributed answers do not change). 0 picks the 64 MiB default;
	// negative disables the cache.
	ProxCacheBytes int64
	// Registry receives the worker's instruments (nil creates a private
	// one); the worker serves it at GET /metrics either way.
	Registry *obs.Registry
}

// DefaultProxCacheBytes is the worker's proximity-cache budget when the
// config leaves ProxCacheBytes zero (matches the serving layer).
const DefaultProxCacheBytes int64 = 64 << 20

// maxWorkerBatch caps how many rounds one /shard/v1/rounds call may
// execute regardless of what the coordinator asked for: the session
// mutex is held for the whole batch, and a bounded batch keeps reloads
// and sweeps responsive.
const maxWorkerBatch = 64

// workerGen is one loaded generation of the shard, reference-counted so a
// reload unmaps the old snapshot only after its last in-flight search
// ends (the same discipline the serving layer uses).
type workerGen struct {
	ws *snap.WorkerSnapshot
	// engines holds one engine per hosted shard, in cfg.Shards order;
	// engine is the primary (engines[0]) — what legacy single-shard
	// sessions run on.
	engines  []*core.Engine
	engine   *core.Engine
	version  uint64
	loadMS   int64
	loadedAt time.Time
	refs     atomic.Int64
}

func (g *workerGen) retain() bool {
	for {
		r := g.refs.Load()
		if r <= 0 {
			return false
		}
		if g.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

func (g *workerGen) release() {
	if g.refs.Add(-1) == 0 {
		_ = g.ws.Close()
	}
}

// session is one in-flight search: an executor pinned to the generation
// it began on. trace is non-nil when the coordinator propagated a trace
// id in Begin — every protocol call's span subtree is both returned on
// the wire and accumulated here for the worker's own /debug/traces ring.
type session struct {
	mu       sync.Mutex
	gen      *workerGen
	exec     *core.LocalExecutor
	round    uint32
	lastUsed time.Time
	trace    *obs.Trace

	// host is set instead of exec for a proto-4 host session: one
	// executor set serving the shard list `shards` off a shared iterator.
	// Rounds/finalize replies then carry one RoundInfo block per member.
	host   *core.HostExecutor
	shards []int

	// deadline, when non-zero, is when the sweeper may abandon the
	// session even before the TTL — the coordinator shipped its search
	// budget in Begin, so anything past it is orphaned (a stopped
	// coordinator's speculative rounds, a crashed one's whole session).
	deadline time.Time

	// lastSig / lastAdmitted track the shard-local selection across
	// rounds, so a batched-rounds call can stop at the first round whose
	// outcome the coordinator will want to react to (admission, kept-set
	// or certainty change). Host sessions track one slot per member shard
	// (lastSigs/lastAdmits) and stop when ANY member trips.
	lastSig      roundSig
	lastAdmitted int
	lastSigs     []roundSig
	lastAdmits   []int

	// shadows is the proto-5 delta base: the last round's RoundInfo per
	// member shard, exactly as the coordinator last decoded it. Updated on
	// every executed round (whatever framing the reply used), reset by
	// replay (the coordinator never decoded those rounds), and never
	// advanced by finalize.
	shadows []roundShadow

	// Reply-encode scratch, reused across the session's batched-rounds
	// calls: infos accumulates a single-shard batch, rowArena a host
	// session's round-major blocks (HostExecutor.Round reuses its own
	// scratch, so rows must be copied out per round), rows the row
	// headers for legacy host framing. sigScratch/sigScratches recycle
	// roundSig backing arrays.
	infos        []core.RoundInfo
	rowArena     []core.RoundInfo
	rows         [][]core.RoundInfo
	sigScratch   []graph.NID
	sigScratches [][]graph.NID
}

// roundSig is the reaction-worthy summary of one round's shard-local
// state: the kept membership and the uncertainty marker. Bounds are
// deliberately excluded — they tighten every round.
type roundSig struct {
	kept []graph.NID // sorted by id
	unc  graph.NID   // -1 when the selection is certain
}

func keptSig(info core.RoundInfo) roundSig {
	return keptSigInto(nil, info)
}

// keptSigInto builds the signature into buf's backing array (which may be
// nil, or a previous signature's backing being recycled).
func keptSigInto(buf []graph.NID, info core.RoundInfo) roundSig {
	sig := roundSig{kept: buf[:0], unc: -1}
	for _, c := range info.Kept {
		sig.kept = append(sig.kept, c.Doc)
	}
	// Kept arrives best-first by upper bound; order shifts as bounds
	// tighten without the membership changing, so compare as a set.
	for i := 1; i < len(sig.kept); i++ {
		for j := i; j > 0 && sig.kept[j] < sig.kept[j-1]; j-- {
			sig.kept[j], sig.kept[j-1] = sig.kept[j-1], sig.kept[j]
		}
	}
	if info.Uncertain != nil {
		sig.unc = info.Uncertain.Doc
	}
	return sig
}

func (a roundSig) equal(b roundSig) bool {
	if a.unc != b.unc || len(a.kept) != len(b.kept) {
		return false
	}
	for i := range a.kept {
		if a.kept[i] != b.kept[i] {
			return false
		}
	}
	return true
}

// Worker serves one shard of a set over the round protocol. Create with
// NewWorker, then Load (or let the HTTP layer report "loading" while a
// background Load runs).
type Worker struct {
	cfg WorkerConfig
	// shardIdx maps hosted shard ordinal → index in cfg.Shards (and in
	// every per-shard slice below).
	shardIdx map[int]int
	state    atomic.Int32
	cur      atomic.Pointer[workerGen]

	reloadMu sync.Mutex
	mu       sync.Mutex
	sessions map[uint64]*session

	start       time.Time
	searches    atomic.Uint64   // Begin calls accepted
	touched     []atomic.Uint64 // searches that matched components, per hosted shard
	rounds      []atomic.Uint64 // rounds that carried candidates, per hosted shard
	iterSteps   atomic.Uint64   // proximity-iterator steps actually executed
	rejected    atomic.Uint64   // begins refused (not serving / full)
	warmResumes atomic.Uint64   // Begins that resumed a cached frontier

	// prox caches seeker-proximity checkpoints across this worker's
	// searches (nil when disabled); bound to the served generation so a
	// reload purges and re-binds it.
	prox *proxcache.Cache

	// deltaOff disables proto-5 delta reply framing: full blocks even
	// when the request asks for deltas. The reply framing is
	// self-identifying, so flipping it mid-search never desynchronizes a
	// session — tests use it to prove the coordinator's live downgrade.
	deltaOff atomic.Bool

	reg        *obs.Registry
	rpcSeconds [epCount]*obs.Histogram
	traces     *obs.TraceRing
}

// NewWorker returns a worker in the loading state; call Load to serve.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = time.Minute
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{cfg.Shard}
	}
	cfg.Shard = cfg.Shards[0]
	w := &Worker{
		cfg:      cfg,
		shardIdx: make(map[int]int, len(cfg.Shards)),
		sessions: make(map[uint64]*session),
		start:    time.Now(),
		reg:      cfg.Registry,
		traces:   obs.NewTraceRing(0),
		touched:  make([]atomic.Uint64, len(cfg.Shards)),
		rounds:   make([]atomic.Uint64, len(cfg.Shards)),
	}
	for i, s := range cfg.Shards {
		w.shardIdx[s] = i
	}
	proxBytes := cfg.ProxCacheBytes
	if proxBytes == 0 {
		proxBytes = DefaultProxCacheBytes
	}
	if proxBytes > 0 {
		w.prox = proxcache.New(proxBytes)
		w.reg.CounterFunc("s3_proxcache_hits_total", "Proximity-cache checkpoint hits.",
			func() float64 { return float64(w.prox.Stats().Hits) })
		w.reg.CounterFunc("s3_proxcache_misses_total", "Proximity-cache checkpoint misses.",
			func() float64 { return float64(w.prox.Stats().Misses) })
		w.reg.GaugeFunc("s3_proxcache_bytes", "Bytes of checkpoint state held by the proximity cache.",
			func() float64 { return float64(w.prox.Stats().Bytes) })
		w.reg.GaugeFunc("s3_proxcache_entries", "Checkpoints held by the proximity cache.",
			func() float64 { return float64(w.prox.Stats().Entries) })
	}
	w.reg.CounterFunc("s3_worker_warm_resumes_total",
		"Searches that resumed a cached proximity frontier instead of exploring from depth 0.",
		func() float64 { return float64(w.warmResumes.Load()) })
	for ep := 0; ep < epCount; ep++ {
		w.rpcSeconds[ep] = w.reg.Histogram("s3_shard_rpc_seconds",
			"Worker-side handling time of one round-protocol RPC, by endpoint.", nil,
			obs.L("endpoint", epNames[ep]))
	}
	w.reg.GaugeFunc("s3_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(w.start).Seconds() })
	w.reg.CounterFunc("s3_worker_searches_total", "Searches begun on this worker.",
		func() float64 { return float64(w.searches.Load()) })
	w.reg.CounterFunc("s3_worker_rejected_total", "Begin requests refused (not serving or session table full).",
		func() float64 { return float64(w.rejected.Load()) })
	w.reg.CounterFunc("s3_worker_shard_searches_total", "Searches that matched components on this worker's shards (summed over hosted shards).",
		func() float64 {
			var n uint64
			for i := range w.touched {
				n += w.touched[i].Load()
			}
			return float64(n)
		})
	w.reg.CounterFunc("s3_worker_shard_rounds_total", "Lockstep rounds that carried candidate work on this worker's shards (summed over hosted shards).",
		func() float64 {
			var n uint64
			for i := range w.rounds {
				n += w.rounds[i].Load()
			}
			return float64(n)
		})
	w.reg.CounterFunc("s3_worker_iter_steps_total",
		"Proximity-iterator steps actually executed: one per round per search, however many hosted shards the search covers.",
		func() float64 { return float64(w.iterSteps.Load()) })
	w.reg.GaugeFunc("s3_worker_sessions", "Open search sessions.", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return float64(len(w.sessions))
	})
	w.reg.GaugeFunc("s3_worker_generation", "Loaded snapshot generation (increments per reload).", func() float64 {
		if g := w.cur.Load(); g != nil {
			return float64(g.version)
		}
		return 0
	})
	w.reg.GaugeFunc("s3_worker_mapped_bytes", "Bytes memory-mapped by the served generation.", func() float64 {
		if g := w.acquire(); g != nil {
			defer g.release()
			return float64(g.ws.MappedBytes())
		}
		return 0
	})
	return w
}

// Load opens the manifest + shard and moves the worker to serving. Also
// the reload path: a successful re-open atomically replaces the served
// generation, and the old one is closed when its last search ends.
func (w *Worker) Load() error {
	w.reloadMu.Lock()
	defer w.reloadMu.Unlock()
	start := time.Now()
	ws, err := snap.OpenWorkerHost(w.cfg.ManifestPath, w.cfg.Shards, w.cfg.Mode, w.cfg.Verify)
	if err != nil {
		return err
	}
	old := w.cur.Load()
	version := uint64(1)
	if old != nil {
		version = old.version + 1
	}
	engines := make([]*core.Engine, len(ws.Instances))
	for i := range ws.Instances {
		engines[i] = core.NewEngine(ws.Instances[i], ws.Indexes[i])
	}
	gen := &workerGen{
		ws:       ws,
		engines:  engines,
		engine:   engines[0],
		version:  version,
		loadMS:   time.Since(start).Milliseconds(),
		loadedAt: time.Now(),
	}
	gen.refs.Store(1)
	w.cur.Store(gen)
	if w.prox != nil {
		// Checkpoints are instance-pointer-identified: purge the old
		// generation's and bind Put to the new one, so a search still
		// running on the outgoing generation cannot re-populate the cache
		// with entries that would pin its mapping.
		w.prox.Purge()
		w.prox.Bind(ws.Instance)
	}
	if old != nil {
		old.release()
	}
	w.state.CompareAndSwap(StateLoading, StateServing)
	return nil
}

// SetDraining flips readiness off ahead of a graceful shutdown: /healthz
// turns 503 so coordinators stop picking this worker, while in-flight
// rounds keep answering.
func (w *Worker) SetDraining() { w.state.Store(StateDraining) }

// Drain blocks until every in-flight session has ended (its coordinator
// posted End, or the TTL/deadline sweeper evicted it) or the context
// expires. Call after SetDraining: new Begins are already refused, the
// HTTP listener keeps serving rounds for the sessions still open, so a
// SIGTERM'd worker finishes the searches it is part of instead of
// abandoning them to a mid-search failover.
func (w *Worker) Drain(ctx context.Context) error {
	for {
		w.mu.Lock()
		w.sweepSessions(time.Now())
		open := len(w.sessions)
		w.mu.Unlock()
		if open == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dshard: drain: %d sessions still open: %w", open, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// State returns the worker's lifecycle state.
func (w *Worker) State() int32 { return w.state.Load() }

// Shard returns the worker's shard ordinal.
func (w *Worker) Shard() int { return w.cfg.Shard }

// acquire returns the current generation with a reference held, or nil
// while loading.
func (w *Worker) acquire() *workerGen {
	for {
		g := w.cur.Load()
		if g == nil {
			return nil
		}
		if g.retain() {
			return g
		}
	}
}

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathBegin, w.handleBegin)
	mux.HandleFunc("POST "+pathBeginSet, w.handleBeginSet)
	mux.HandleFunc("POST "+pathRound, w.handleRound)
	mux.HandleFunc("POST "+pathRounds, w.handleRounds)
	mux.HandleFunc("POST "+pathReplay, w.handleReplay)
	mux.HandleFunc("POST "+pathFinalize, w.handleFinalize)
	mux.HandleFunc("POST "+pathEnd, w.handleEnd)
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /stats", w.handleStats)
	mux.HandleFunc("POST /reload", w.handleReload)
	mux.Handle("GET /metrics", w.reg.Handler())
	mux.Handle("GET /debug/traces", w.traces.Handler())
	return mux
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeErr(rw http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(rw, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeFrame(rw http.ResponseWriter, frame []byte) {
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set(frameCRCHeader, frameCRC(frame))
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(frame)
}

// readFrame reads the request body into a pooled buffer; the caller owns
// the returned frameBuf (its request decode copies everything it keeps)
// and must putFrame it when done.
func readFrame(rw http.ResponseWriter, req *http.Request) (*frameBuf, bool) {
	fb := getFrame()
	body, err := readAllFrame(io.LimitReader(req.Body, maxFrameSize+1), fb)
	if err != nil {
		putFrame(fb)
		writeErr(rw, http.StatusBadRequest, "reading frame: %v", err)
		return nil, false
	}
	if len(body) > maxFrameSize {
		putFrame(fb)
		writeErr(rw, http.StatusBadRequest, "frame exceeds %d bytes", maxFrameSize)
		return nil, false
	}
	// A CRC mismatch is transit corruption, not a malformed request: 422
	// (not 400, which the client treats as a deterministic rejection every
	// replica would repeat) so the coordinator retries/fails over.
	if err := checkFrameCRC(body, req.Header.Get(frameCRCHeader)); err != nil {
		putFrame(fb)
		writeErr(rw, http.StatusUnprocessableEntity, "%v", err)
		return nil, false
	}
	return fb, true
}

// closeSession releases a session's executor and generation, retaining
// its accumulated span tree (traced sessions) in the worker's ring.
func (w *Worker) closeSession(s *session) {
	s.mu.Lock()
	if s.host != nil {
		s.host.End()
	} else {
		s.exec.End()
	}
	if s.trace != nil {
		s.trace.Finish()
		w.traces.Add(&obs.TraceRecord{
			TraceID:   obs.IDString(s.trace.TraceID()),
			Start:     s.trace.Root.Start,
			ElapsedMS: float64(s.trace.Root.Dur.Microseconds()) / 1000,
			Spans:     s.trace.JSON(),
		})
		s.trace = nil
	}
	s.mu.Unlock()
	s.gen.release()
}

// sweepSessions evicts searches idle past the TTL (their coordinator is
// gone) and searches past their coordinator-propagated deadline (the
// coordinator's budget expired — anything still open is an orphan, e.g.
// a speculative round left behind by an early stop); the caller must
// hold w.mu.
func (w *Worker) sweepSessions(now time.Time) {
	for id, s := range w.sessions {
		if now.Sub(s.lastUsed) > w.cfg.SessionTTL ||
			(!s.deadline.IsZero() && now.After(s.deadline)) {
			delete(w.sessions, id)
			go w.closeSession(s)
		}
	}
}

func (w *Worker) handleBegin(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epBegin].ObserveSince(time.Now())
	if w.state.Load() != StateServing {
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker is %s", stateName(w.state.Load()))
		return
	}
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeBeginRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	gen := w.acquire()
	if gen == nil {
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker is loading")
		return
	}
	if err := gen.ws.VerifyErr(); err != nil {
		gen.release()
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "snapshot failed verification: %v", err)
		return
	}
	// A legacy single-shard begin serves the worker's primary shard.
	s := &session{
		gen: gen,
		exec: core.NewShardExecutor(gen.engine, w.cfg.Workers).
			WithCounters(&w.touched[0], &w.rounds[0]).
			WithProxCache(w.prox).
			WithStepCounter(&w.iterSteps),
		lastUsed: time.Now(),
		lastSig:  roundSig{unc: -1},
		shadows:  make([]roundShadow, 1),
	}
	if r.traceID != 0 {
		s.exec.WithTracing(true)
		s.trace = obs.NewTraceWithID(r.traceID, "worker.search")
	}
	if r.deadlineMicros != 0 {
		s.deadline = s.lastUsed.Add(time.Duration(r.deadlineMicros) * time.Microsecond)
	}
	w.mu.Lock()
	w.sweepSessions(s.lastUsed)
	if len(w.sessions) >= w.cfg.MaxSessions {
		w.mu.Unlock()
		gen.release()
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker session table full (%d)", w.cfg.MaxSessions)
		return
	}
	if _, dup := w.sessions[r.searchID]; dup {
		w.mu.Unlock()
		gen.release()
		writeErr(rw, http.StatusConflict, "search %d already begun", r.searchID)
		return
	}
	w.sessions[r.searchID] = s
	w.mu.Unlock()

	info, err := s.exec.Begin(r.spec)
	if err != nil {
		w.dropSession(r.searchID)
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if s.exec.ResumedDepth() > 0 {
		w.warmResumes.Add(1)
	}
	w.searches.Add(1)
	writeFrame(rw, appendSpanBlock(encodeBeginInfo(info), w.takeCallSpan(s)))
}

// takeCallSpan collects the span subtree the executor recorded for the
// just-finished call (nil when untraced), keeping a copy reference in
// the session's own trace for the worker-side /debug/traces ring.
func (w *Worker) takeCallSpan(s *session) *obs.Span {
	sp := s.exec.TakeSpan()
	if sp != nil && s.trace != nil {
		s.trace.Span().Attach(sp)
	}
	return sp
}

// takeHostSpan is takeCallSpan for a host session: the per-member span
// subtrees of the just-finished call are gathered under one wrapper.
func (w *Worker) takeHostSpan(s *session, name string) *obs.Span {
	var wrap *obs.Span
	for _, sp := range s.host.TakeSpans() {
		if sp == nil {
			continue
		}
		if wrap == nil {
			wrap = obs.NewSpan(name)
		}
		wrap.Attach(sp)
	}
	if wrap != nil {
		wrap.End()
		if s.trace != nil {
			s.trace.Span().Attach(wrap)
		}
	}
	return wrap
}

// handleBeginSet installs a proto-4 host session: one search covering a
// list of this worker's hosted shards, served off a single shared
// proximity iterator. Every shard in the list must be hosted here; a
// stale membership view gets 409 (a failover trigger), never a partial
// session.
func (w *Worker) handleBeginSet(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epBeginSet].ObserveSince(time.Now())
	if w.state.Load() != StateServing {
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker is %s", stateName(w.state.Load()))
		return
	}
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeBeginSetRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	gen := w.acquire()
	if gen == nil {
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker is loading")
		return
	}
	if err := gen.ws.VerifyErr(); err != nil {
		gen.release()
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "snapshot failed verification: %v", err)
		return
	}
	engines := make([]*core.Engine, len(r.shards))
	touched := make([]*atomic.Uint64, len(r.shards))
	rounds := make([]*atomic.Uint64, len(r.shards))
	for i, shard := range r.shards {
		idx, hosted := w.shardIdx[shard]
		if !hosted {
			gen.release()
			writeErr(rw, http.StatusConflict, "shard %d not hosted here (serving %v)", shard, w.cfg.Shards)
			return
		}
		engines[i] = gen.engines[idx]
		touched[i] = &w.touched[idx]
		rounds[i] = &w.rounds[idx]
	}
	host, err := core.NewHostExecutor(engines, w.cfg.Workers)
	if err != nil {
		gen.release()
		writeErr(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	host.WithProxCache(w.prox).
		WithStepCounter(&w.iterSteps).
		WithCounters(touched, rounds)
	s := &session{
		gen:          gen,
		host:         host,
		shards:       r.shards,
		lastUsed:     time.Now(),
		lastSigs:     make([]roundSig, len(r.shards)),
		lastAdmits:   make([]int, len(r.shards)),
		shadows:      make([]roundShadow, len(r.shards)),
		sigScratches: make([][]graph.NID, len(r.shards)),
	}
	for i := range s.lastSigs {
		s.lastSigs[i] = roundSig{unc: -1}
	}
	if r.traceID != 0 {
		host.WithTracing(true)
		s.trace = obs.NewTraceWithID(r.traceID, "worker.search")
	}
	if r.deadlineMicros != 0 {
		s.deadline = s.lastUsed.Add(time.Duration(r.deadlineMicros) * time.Microsecond)
	}
	w.mu.Lock()
	w.sweepSessions(s.lastUsed)
	if len(w.sessions) >= w.cfg.MaxSessions {
		w.mu.Unlock()
		gen.release()
		w.rejected.Add(1)
		writeErr(rw, http.StatusServiceUnavailable, "worker session table full (%d)", w.cfg.MaxSessions)
		return
	}
	if _, dup := w.sessions[r.searchID]; dup {
		w.mu.Unlock()
		gen.release()
		writeErr(rw, http.StatusConflict, "search %d already begun", r.searchID)
		return
	}
	w.sessions[r.searchID] = s
	w.mu.Unlock()

	infos, err := host.Begin(r.spec)
	if err != nil {
		w.dropSession(r.searchID)
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	if host.ResumedDepth() > 0 {
		w.warmResumes.Add(1)
	}
	w.searches.Add(1)
	writeFrame(rw, appendSpanBlock(encodeBeginSetReply(infos), w.takeHostSpan(s, "exec.beginset")))
}

// lookup fetches a session and bumps its liveness.
func (w *Worker) lookup(id uint64) *session {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.sessions[id]
	if s != nil {
		s.lastUsed = time.Now()
	}
	return s
}

func (w *Worker) dropSession(id uint64) {
	w.mu.Lock()
	s := w.sessions[id]
	delete(w.sessions, id)
	w.mu.Unlock()
	if s != nil {
		w.closeSession(s)
	}
}

func (w *Worker) handleRound(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epRound].ObserveSince(time.Now())
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeRoundRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s := w.lookup(r.searchID)
	if s == nil {
		writeErr(rw, http.StatusNotFound, "unknown search %d", r.searchID)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.host != nil {
		// Host sessions reply with one block per member shard, which the
		// single-round frame cannot carry; a proto-4 coordinator only ever
		// drives them through /shard/v1/rounds.
		writeErr(rw, http.StatusConflict, "search %d is a host session; use %s", r.searchID, pathRounds)
		return
	}
	if r.round != s.round+1 {
		// Out-of-lockstep: a lost or replayed frame must never silently
		// double-step the exploration.
		writeErr(rw, http.StatusConflict, "search %d at round %d, request says %d", r.searchID, s.round, r.round)
		return
	}
	info, err := s.exec.Round()
	if err != nil {
		writeErr(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	s.round++
	// Keep the batch-stop state coherent even under per-round calls, so
	// a coordinator may mix the two endpoints freely.
	recycled := s.lastSig.kept
	s.lastSig = keptSigInto(s.sigScratch, info)
	s.sigScratch = recycled
	s.lastAdmitted = info.Admitted
	s.shadows[0].set(info)
	writeFrame(rw, appendSpanBlock(encodeRoundInfo(info), w.takeCallSpan(s)))
}

// handleRounds is the proto-2 batched endpoint: advance up to max
// lockstep rounds, returning early at the first round the coordinator
// will want to react to — an admission, a kept-set or certainty change,
// graph exhaustion or the precision floor. The reply carries every
// executed round's RoundInfo, so the coordinator's stop logic replays
// each round exactly as if it had been fetched alone; early exit is a
// latency/waste heuristic, never a correctness requirement.
func (w *Worker) handleRounds(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epRounds].ObserveSince(time.Now())
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeRoundsRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s := w.lookup(r.searchID)
	if s == nil {
		writeErr(rw, http.StatusNotFound, "unknown search %d", r.searchID)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.from != s.round+1 {
		writeErr(rw, http.StatusConflict, "search %d at round %d, request says %d", r.searchID, s.round, r.from)
		return
	}
	maxRounds := int(r.max)
	if maxRounds > maxWorkerBatch {
		maxRounds = maxWorkerBatch
	}
	delta := r.flags&reqFlagDelta != 0 && !w.deltaOff.Load()
	if s.host != nil {
		w.hostRounds(rw, s, maxRounds, delta)
		return
	}
	infos := s.infos[:0]
	var batchSpan *obs.Span
	for len(infos) < maxRounds {
		info, err := s.exec.Round()
		if err != nil {
			writeErr(rw, http.StatusInternalServerError, "%v", err)
			return
		}
		s.round++
		if sp := s.exec.TakeSpan(); sp != nil {
			if batchSpan == nil {
				batchSpan = obs.NewSpan("exec.rounds")
			}
			batchSpan.Attach(sp)
		}
		infos = append(infos, info)
		sig := keptSigInto(s.sigScratch, info)
		stop := info.Done || info.Tail < 1e-15 ||
			info.Admitted > s.lastAdmitted || !sig.equal(s.lastSig)
		s.sigScratch = s.lastSig.kept
		s.lastSig = sig
		s.lastAdmitted = info.Admitted
		if stop {
			break
		}
	}
	s.infos = infos
	if batchSpan != nil {
		batchSpan.SetInt("rounds", int64(len(infos)))
		batchSpan.End()
		if s.trace != nil {
			s.trace.Span().Attach(batchSpan)
		}
	}
	out := getFrame()
	var frame []byte
	if delta {
		frame = appendDeltaFrame(out.b[:0], infos, len(infos), 1, s.shadows, true)
	} else {
		frame = appendRoundsReply(out.b[:0], infos)
		s.shadows[0].set(infos[len(infos)-1])
	}
	frame = appendSpanBlock(frame, batchSpan)
	writeFrame(rw, frame)
	out.b = frame
	putFrame(out)
}

// hostRounds is handleRounds for a host session: each executed round
// advances every member shard off ONE iterator step, and the reply
// carries one RoundInfo block per member per round. The batch stops when
// ANY member's outcome is reaction-worthy — the coordinator replays each
// member's stop decision independently, so an early stop is only ever a
// latency/waste heuristic. The caller holds s.mu and verified lockstep.
func (w *Worker) hostRounds(rw http.ResponseWriter, s *session, maxRounds int, delta bool) {
	ns := len(s.shards)
	// HostExecutor.Round reuses its own infos scratch, so each round's
	// blocks are copied into the session's round-major arena before the
	// next round overwrites them.
	arena := s.rowArena[:0]
	nRounds := 0
	var batchSpan *obs.Span
	for nRounds < maxRounds {
		infos, err := s.host.Round()
		if err != nil {
			s.rowArena = arena
			writeErr(rw, http.StatusInternalServerError, "%v", err)
			return
		}
		s.round++
		var wrap *obs.Span
		for _, sp := range s.host.TakeSpans() {
			if sp == nil {
				continue
			}
			if wrap == nil {
				wrap = obs.NewSpan("exec.round")
			}
			wrap.Attach(sp)
		}
		if wrap != nil {
			wrap.End()
			if batchSpan == nil {
				batchSpan = obs.NewSpan("exec.rounds")
			}
			batchSpan.Attach(wrap)
		}
		arena = append(arena, infos...)
		nRounds++
		stop := false
		for i, info := range infos {
			sig := keptSigInto(s.sigScratches[i], info)
			if info.Done || info.Tail < 1e-15 ||
				info.Admitted > s.lastAdmits[i] || !sig.equal(s.lastSigs[i]) {
				stop = true
			}
			s.sigScratches[i] = s.lastSigs[i].kept
			s.lastSigs[i] = sig
			s.lastAdmits[i] = info.Admitted
		}
		if stop {
			break
		}
	}
	s.rowArena = arena
	if batchSpan != nil {
		batchSpan.SetInt("rounds", int64(nRounds))
		batchSpan.End()
		if s.trace != nil {
			s.trace.Span().Attach(batchSpan)
		}
	}
	out := getFrame()
	var frame []byte
	if delta {
		frame = appendDeltaFrame(out.b[:0], arena, nRounds, ns, s.shadows, true)
	} else {
		rows := s.rows[:0]
		for r := 0; r < nRounds; r++ {
			rows = append(rows, arena[r*ns:(r+1)*ns])
		}
		s.rows = rows
		frame = appendHostRoundsReply(out.b[:0], rows)
		for i := 0; i < ns; i++ {
			s.shadows[i].set(arena[(nRounds-1)*ns+i])
		}
	}
	frame = appendSpanBlock(frame, batchSpan)
	writeFrame(rw, frame)
	out.b = frame
	putFrame(out)
}

// handleReplay is the proto-3 failover fast-forward: advance the session
// from round `from` up to (at most) round `upto`, discarding the
// per-round infos — the coordinator already consumed them on the replica
// that failed, and the shared-substrate determinism makes the replayed
// state bit-identical. Unlike handleRounds there is no early exit on
// coordinator-visible events: the target is always a round the original
// timeline actually executed, so the session must land exactly there.
// At most maxWorkerBatch rounds run per call (bounding how long the
// session mutex is held); the reply reports the reached round and the
// coordinator loops.
func (w *Worker) handleReplay(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epReplay].ObserveSince(time.Now())
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeReplayRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s := w.lookup(r.searchID)
	if s == nil {
		writeErr(rw, http.StatusNotFound, "unknown search %d", r.searchID)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.from != s.round+1 {
		writeErr(rw, http.StatusConflict, "search %d at round %d, request says %d", r.searchID, s.round, r.from)
		return
	}
	executed := 0
	for s.round < r.upto && executed < maxWorkerBatch {
		if s.host != nil {
			infos, err := s.host.Round()
			if err != nil {
				writeErr(rw, http.StatusInternalServerError, "%v", err)
				return
			}
			s.round++
			executed++
			for i, info := range infos {
				s.lastSigs[i] = keptSig(info)
				s.lastAdmits[i] = info.Admitted
			}
			if sp := w.takeHostSpan(s, "exec.round"); sp != nil {
				_ = sp // retained in the session trace by takeHostSpan
			}
			continue
		}
		info, err := s.exec.Round()
		if err != nil {
			writeErr(rw, http.StatusInternalServerError, "%v", err)
			return
		}
		s.round++
		executed++
		// Keep the batch-stop state coherent so the resumed lockstep's
		// batched fetches see the same signatures the original would have.
		s.lastSig = keptSig(info)
		s.lastAdmitted = info.Admitted
		if sp := s.exec.TakeSpan(); sp != nil && s.trace != nil {
			s.trace.Span().Attach(sp)
		}
	}
	// The coordinator never decodes replayed rounds, so its delta shadows
	// stay at the pre-failover state: invalidate ours to match — the next
	// rounds reply opens with a full-framed round.
	for i := range s.shadows {
		s.shadows[i].reset()
	}
	writeFrame(rw, encodeReplayReply(replayReply{round: s.round}))
}

func (w *Worker) handleFinalize(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epFinalize].ObserveSince(time.Now())
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeRoundRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	s := w.lookup(r.searchID)
	if s == nil {
		writeErr(rw, http.StatusNotFound, "unknown search %d", r.searchID)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Finalize replies may delta against the session's last round but
	// never advance the shadows (update=false): the round base on both
	// ends stays the last executed round.
	delta := r.flags&reqFlagDelta != 0 && !w.deltaOff.Load()
	if s.host != nil {
		infos, err := s.host.Finalize()
		if err != nil {
			writeErr(rw, http.StatusInternalServerError, "%v", err)
			return
		}
		out := getFrame()
		var frame []byte
		if delta {
			frame = appendDeltaFrame(out.b[:0], infos, 1, len(infos), s.shadows, false)
		} else {
			frame = appendHostInfosReply(out.b[:0], infos)
		}
		frame = appendSpanBlock(frame, w.takeHostSpan(s, "exec.finalize"))
		writeFrame(rw, frame)
		out.b = frame
		putFrame(out)
		return
	}
	info, err := s.exec.Finalize()
	if err != nil {
		writeErr(rw, http.StatusInternalServerError, "%v", err)
		return
	}
	out := getFrame()
	var frame []byte
	if delta {
		flat := append(s.infos[:0], info)
		s.infos = flat
		frame = appendDeltaFrame(out.b[:0], flat, 1, 1, s.shadows, false)
	} else {
		e := enc{b: out.b[:0]}
		encodeRoundInfoBody(&e, info)
		frame = e.b
	}
	frame = appendSpanBlock(frame, w.takeCallSpan(s))
	writeFrame(rw, frame)
	out.b = frame
	putFrame(out)
}

func (w *Worker) handleEnd(rw http.ResponseWriter, req *http.Request) {
	defer w.rpcSeconds[epEnd].ObserveSince(time.Now())
	fb, ok := readFrame(rw, req)
	if !ok {
		return
	}
	r, err := decodeRoundRequest(fb.b)
	putFrame(fb)
	if err != nil {
		writeErr(rw, http.StatusBadRequest, "%v", err)
		return
	}
	w.dropSession(r.searchID)
	writeJSON(rw, http.StatusOK, map[string]string{"status": "ended"})
}

// healthzBody is the /healthz JSON: everything a coordinator's membership
// probe needs to place the worker (shard ordinal, set identity) and to
// decide whether to route to it (status).
type healthzBody struct {
	Status string `json:"status"`
	Shard  int    `json:"shard"`
	// Shards lists every shard ordinal this process hosts (proto 4
	// multi-shard workers; absent means just Shard). Shard stays the
	// primary — what a legacy single-shard begin is served against.
	Shards     []int  `json:"shards,omitempty"`
	ShardCount int    `json:"shard_count"`
	SetID      string `json:"set_id"`
	Version    uint64 `json:"version"`
	Sliced     bool   `json:"sliced"`
	// Proto advertises the round-protocol version this worker speaks
	// (the batched /shard/v1/rounds endpoint and the begin-frame
	// deadline arrived with 2, the /shard/v1/replay failover
	// fast-forward with 3). Pre-proto workers omit the field, which
	// decodes as 0 on the coordinator — per-round protocol only.
	Proto int `json:"proto,omitempty"`
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	// The coordinator probes /healthz on an interval, which makes it the
	// reliable heartbeat for evicting sessions whose coordinator died —
	// an idle worker may never see another Begin.
	w.mu.Lock()
	w.sweepSessions(time.Now())
	w.mu.Unlock()
	state := w.state.Load()
	body := healthzBody{Status: stateName(state), Shard: w.cfg.Shard, Shards: w.cfg.Shards, Proto: protoVersion}
	status := http.StatusServiceUnavailable
	verified := true
	if gen := w.acquire(); gen != nil {
		body.ShardCount = len(gen.ws.Layout.Shards)
		body.SetID = fmt.Sprintf("%016x", gen.ws.Layout.SetID)
		body.Version = gen.version
		body.Sliced = gen.ws.Sliced
		if err := gen.ws.VerifyErr(); err != nil {
			// Deferred verification found corruption: report unready so the
			// coordinator routes away (open sessions keep answering — their
			// replicas will win every future pick).
			body.Status = "corrupt"
			verified = false
		}
		gen.release()
	}
	if state == StateServing && verified {
		status = http.StatusOK
	}
	writeJSON(rw, status, &body)
}

// WorkerShardRow is the per-shard counter row exported by /stats — the
// stable shape a rebalancer (and the coordinator's aggregation) consumes.
// It matches the serving layer's per-shard rows field for field.
type WorkerShardRow struct {
	Shard      int    `json:"shard"`
	Documents  int    `json:"documents"`
	Components int    `json:"components"`
	Tags       int    `json:"tags"`
	Searches   uint64 `json:"searches"`
	Rounds     uint64 `json:"rounds"`
}

// WorkerStats is the /stats body of a worker.
type WorkerStats struct {
	Role        string           `json:"role"`
	Status      string           `json:"status"`
	Shard       int              `json:"shard"`
	ShardCount  int              `json:"shard_count"`
	SetID       string           `json:"set_id"`
	Version     uint64           `json:"version"`
	Sliced      bool             `json:"sliced"`
	LoadMS      int64            `json:"load_ms"`
	MappedBytes int64            `json:"mapped_bytes"`
	UptimeMS    int64            `json:"uptime_ms"`
	Sessions    int              `json:"sessions"`
	Searches    uint64           `json:"searches"`
	Rejected    uint64           `json:"rejected"`
	Shards      []WorkerShardRow `json:"shards"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	st := WorkerStats{
		Role:     "worker",
		Status:   stateName(w.state.Load()),
		Shard:    w.cfg.Shard,
		UptimeMS: time.Since(w.start).Milliseconds(),
		Searches: w.searches.Load(),
		Rejected: w.rejected.Load(),
	}
	w.mu.Lock()
	w.sweepSessions(time.Now())
	st.Sessions = len(w.sessions)
	w.mu.Unlock()
	if gen := w.acquire(); gen != nil {
		st.ShardCount = len(gen.ws.Layout.Shards)
		st.SetID = fmt.Sprintf("%016x", gen.ws.Layout.SetID)
		st.Version = gen.version
		st.Sliced = gen.ws.Sliced
		st.LoadMS = gen.loadMS
		st.MappedBytes = gen.ws.MappedBytes()
		st.Shards = make([]WorkerShardRow, len(w.cfg.Shards))
		for i, shard := range w.cfg.Shards {
			is := gen.ws.Instances[i].Stats()
			st.Shards[i] = WorkerShardRow{
				Shard:      shard,
				Documents:  is.Documents,
				Components: is.Components,
				Tags:       is.Tags,
				Searches:   w.touched[i].Load(),
				Rounds:     w.rounds[i].Load(),
			}
		}
		gen.release()
	}
	return st
}

func (w *Worker) handleStats(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, http.StatusOK, w.Stats())
}

func (w *Worker) handleReload(rw http.ResponseWriter, _ *http.Request) {
	if w.state.Load() == StateLoading {
		writeErr(rw, http.StatusServiceUnavailable, "worker is loading")
		return
	}
	start := time.Now()
	if err := w.Load(); err != nil {
		// The old generation keeps serving: a failed reload is not fatal.
		writeErr(rw, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	gen := w.acquire()
	defer gen.release()
	writeJSON(rw, http.StatusOK, map[string]any{
		"status":       "reloaded",
		"version":      gen.version,
		"reload_ms":    time.Since(start).Milliseconds(),
		"mapped_bytes": gen.ws.MappedBytes(),
		"sliced":       gen.ws.Sliced,
	})
}
