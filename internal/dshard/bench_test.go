package dshard

import (
	"net/http"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/obs"
	"s3/internal/score"
	"s3/internal/snap"
)

type benchQuery struct {
	spec core.SearchSpec
	kws  []string
}

// benchTopology stands up the shared benchmark fixture: a 2-shard set
// served both by an in-process sharded engine and by a coordinator over
// loopback worker processes, plus the query battery.
func benchTopology(b *testing.B) (*core.ShardedEngine, *Coordinator, []benchQuery) {
	b.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 300, 1200, 17
	spec, _ := datagen.Twitter(o)
	in, ix := buildInstance(b, spec)
	const shards = 2
	manifestPath := writeSet(b, in, ix, shards)

	set, err := snap.OpenShardSet(manifestPath, snap.LoadMmap)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { set.Close() })
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		b.Fatal(err)
	}

	urls, stop := startWorkers(b, manifestPath, shards, snap.LoadMmap)
	b.Cleanup(stop)
	coord, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: shards,
		SetID:      set.Set.Layout.SetID,
		Client:     &http.Client{Timeout: 30 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := coord.Probe(b.Context()); err != nil {
		b.Fatal(err)
	}

	seekers, kwSets := queries(in)
	params := score.Params{Gamma: 1.5, Eta: 0.8}
	var qs []benchQuery
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil || !possible {
				continue
			}
			qs = append(qs, benchQuery{
				spec: core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: params, Epsilon: 1e-12},
				kws:  kws,
			})
		}
	}
	if len(qs) == 0 {
		b.Fatal("no benchmark queries")
	}
	return se, coord, qs
}

// BenchmarkDistributedSearch prices the distributed round protocol: the
// same battery of queries through the in-process sharded engine and
// through a coordinator + N loopback worker processes. The delta is the
// per-round scatter/gather cost (HTTP round trips × exploration depth) —
// the latency a deployment pays for per-shard memory isolation.
func BenchmarkDistributedSearch(b *testing.B) {
	se, coord, qs := benchTopology(b)
	params := score.Params{Gamma: 1.5, Eta: 0.8}

	b.Run("sharded-inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := se.Search(q.spec.Seeker, q.kws, core.Options{K: 5, Params: params}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("distributed-loopback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedDistributedSearch prices full tracing on the same
// distributed topology: every search carries a trace whose id crosses
// the wire, every worker records executor spans into the responses, and
// the coordinator stitches the round tree. The delta against
// BenchmarkDistributedSearch/distributed-loopback is the all-in cost of
// ?trace=1 (span recording + wire blocks + tree assembly).
func BenchmarkTracedDistributedSearch(b *testing.B) {
	_, coord, qs := benchTopology(b)

	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		tr := obs.NewTrace("search")
		if _, _, err := coord.Search(q.spec, core.CoordOptions{Trace: tr}); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}
