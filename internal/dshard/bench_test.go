package dshard

import (
	"net/http"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/score"
	"s3/internal/snap"
)

// BenchmarkDistributedSearch prices the distributed round protocol: the
// same battery of queries through the in-process sharded engine and
// through a coordinator + N loopback worker processes. The delta is the
// per-round scatter/gather cost (HTTP round trips × exploration depth) —
// the latency a deployment pays for per-shard memory isolation.
func BenchmarkDistributedSearch(b *testing.B) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 300, 1200, 17
	spec, _ := datagen.Twitter(o)
	in, ix := buildInstance(b, spec)
	const shards = 2
	manifestPath := writeSet(b, in, ix, shards)

	set, err := snap.OpenShardSet(manifestPath, snap.LoadMmap)
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		b.Fatal(err)
	}

	urls, stop := startWorkers(b, manifestPath, shards, snap.LoadMmap)
	defer stop()
	coord, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: shards,
		SetID:      set.Set.Layout.SetID,
		Client:     &http.Client{Timeout: 30 * time.Second},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := coord.Probe(b.Context()); err != nil {
		b.Fatal(err)
	}

	seekers, kwSets := queries(in)
	params := score.Params{Gamma: 1.5, Eta: 0.8}
	type query struct {
		spec core.SearchSpec
		kws  []string
	}
	var qs []query
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil || !possible {
				continue
			}
			qs = append(qs, query{
				spec: core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: params, Epsilon: 1e-12},
				kws:  kws,
			})
		}
	}
	if len(qs) == 0 {
		b.Fatal("no benchmark queries")
	}

	b.Run("sharded-inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := se.Search(q.spec.Seeker, q.kws, core.Options{K: 5, Params: params}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("distributed-loopback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
