package dshard

import (
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/obs"
	"s3/internal/score"
	"s3/internal/snap"
)

type benchQuery struct {
	spec core.SearchSpec
	kws  []string
}

// benchTopology stands up the shared benchmark fixture: a 2-shard set
// served both by an in-process sharded engine and by a coordinator over
// loopback worker processes, plus the query battery. proxBytes sets the
// workers' frontier-cache budget: negative keeps every distributed
// iteration cold (the battery repeats across b.N, so an enabled cache
// would silently warm the "cold" numbers).
func benchTopology(b *testing.B, proxBytes int64) (*core.ShardedEngine, *Coordinator, []*Worker, []benchQuery) {
	b.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 300, 1200, 17
	spec, _ := datagen.Twitter(o)
	in, ix := buildInstance(b, spec)
	const shards = 2
	manifestPath := writeSet(b, in, ix, shards)

	set, err := snap.OpenShardSet(manifestPath, snap.LoadMmap)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { set.Close() })
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		b.Fatal(err)
	}

	workers := make([]*Worker, shards)
	urls := make([]string, shards)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{
			ManifestPath: manifestPath, Shard: i, Mode: snap.LoadMmap, ProxCacheBytes: proxBytes,
		})
		if err := workers[i].Load(); err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(workers[i].Handler())
		b.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: shards,
		SetID:      set.Set.Layout.SetID,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := coord.Probe(b.Context()); err != nil {
		b.Fatal(err)
	}

	seekers, kwSets := queries(in)
	params := score.Params{Gamma: 1.5, Eta: 0.8}
	var qs []benchQuery
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil || !possible {
				continue
			}
			qs = append(qs, benchQuery{
				spec: core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: params, Epsilon: 1e-12},
				kws:  kws,
			})
		}
	}
	if len(qs) == 0 {
		b.Fatal("no benchmark queries")
	}
	return se, coord, workers, qs
}

// drainWorkers waits for the async session teardowns (End posts) of the
// previous searches to land, so cached frontiers are published before
// the measured loop starts.
func drainWorkers(b *testing.B, workers []*Worker) {
	b.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		open := 0
		for _, w := range workers {
			w.mu.Lock()
			open += len(w.sessions)
			w.mu.Unlock()
		}
		if open == 0 {
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("%d worker sessions still open", open)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkDistributedSearch prices the distributed round protocol: the
// same battery of queries through the in-process sharded engine and
// through a coordinator + N loopback worker processes. The delta is the
// per-round scatter/gather cost (HTTP round trips × exploration depth) —
// the latency a deployment pays for per-shard memory isolation.
func BenchmarkDistributedSearch(b *testing.B) {
	se, coord, _, qs := benchTopology(b, -1)
	params := score.Params{Gamma: 1.5, Eta: 0.8}

	b.Run("sharded-inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := se.Search(q.spec.Seeker, q.kws, core.Options{K: 5, Params: params}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("distributed-loopback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDistributedSearchWarm prices worker-side warm frontiers: the
// same topology with the workers' default frontier cache enabled, primed
// by one pass over the battery — the measured loop resumes each seeker's
// cached exploration instead of re-propagating from depth 0. The delta
// against BenchmarkDistributedSearch/distributed-loopback is what a
// seeker-skewed workload saves per repeated-seeker query.
func BenchmarkDistributedSearchWarm(b *testing.B) {
	_, coord, workers, qs := benchTopology(b, DefaultProxCacheBytes)
	for _, q := range qs {
		if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	drainWorkers(b, workers)
	warm0 := uint64(0)
	for _, w := range workers {
		warm0 += w.warmResumes.Load()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	warm1 := uint64(0)
	for _, w := range workers {
		warm1 += w.warmResumes.Load()
	}
	if warm1 <= warm0 {
		b.Fatal("measured loop never resumed a cached frontier")
	}
}

// BenchmarkTracedDistributedSearch prices full tracing on the same
// distributed topology: every search carries a trace whose id crosses
// the wire, every worker records executor spans into the responses, and
// the coordinator stitches the round tree. The delta against
// BenchmarkDistributedSearch/distributed-loopback is the all-in cost of
// ?trace=1 (span recording + wire blocks + tree assembly).
func BenchmarkTracedDistributedSearch(b *testing.B) {
	_, coord, _, qs := benchTopology(b, -1)

	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		tr := obs.NewTrace("search")
		if _, _, err := coord.Search(q.spec, core.CoordOptions{Trace: tr}); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// hostBenchTopology is benchTopology with the shards packed onto hosts
// by groups: one worker process per group, each hosting its shards off
// one substrate mapping. opts tweak the coordinator config (A/B knobs
// like NoDelta, instrument registries) before it connects.
func hostBenchTopology(b *testing.B, groups [][]int, proxBytes int64, opts ...func(*CoordinatorConfig)) (*core.ShardedEngine, *Coordinator, []*Worker, []benchQuery) {
	b.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 300, 1200, 17
	spec, _ := datagen.Twitter(o)
	in, ix := buildInstance(b, spec)
	const shards = 2
	manifestPath := writeSet(b, in, ix, shards)

	set, err := snap.OpenShardSet(manifestPath, snap.LoadMmap)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { set.Close() })
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		b.Fatal(err)
	}

	workers := make([]*Worker, len(groups))
	urls := make([]string, len(groups))
	for i, g := range groups {
		workers[i] = NewWorker(WorkerConfig{
			ManifestPath: manifestPath, Shards: g, Mode: snap.LoadMmap, ProxCacheBytes: proxBytes,
		})
		if err := workers[i].Load(); err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(workers[i].Handler())
		b.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	cfg := CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: shards,
		SetID:      set.Set.Layout.SetID,
	}
	for _, o := range opts {
		o(&cfg)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := coord.Probe(b.Context()); err != nil {
		b.Fatal(err)
	}

	seekers, kwSets := queries(in)
	params := score.Params{Gamma: 1.5, Eta: 0.8}
	var qs []benchQuery
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groupsKw, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil || !possible {
				continue
			}
			qs = append(qs, benchQuery{
				spec: core.SearchSpec{Seeker: seeker, Groups: groupsKw, K: 5, Params: params, Epsilon: 1e-12},
				kws:  kws,
			})
		}
	}
	if len(qs) == 0 {
		b.Fatal("no benchmark queries")
	}
	return se, coord, workers, qs
}

// BenchmarkHostGroupedSearch prices host grouping: the same 2-shard
// battery through the in-process sharded engine (the floor), through
// one single-shard worker per host (the PR-8 deployment), and through
// ONE worker hosting both shards — one shared proximity iterator, one
// beginset/rounds RPC per host per batch. Cold rows keep the frontier
// cache off; the warm row primes the co-hosted worker's cache first.
// The maxprocs1 row pins GOMAXPROCS=1: with no parallelism to hide the
// second iterator, sharing it is pure savings.
func BenchmarkHostGroupedSearch(b *testing.B) {
	params := score.Params{Gamma: 1.5, Eta: 0.8}
	runDistributed := func(b *testing.B, coord *Coordinator, qs []benchQuery) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("sharded-inproc", func(b *testing.B) {
		se, _, _, qs := hostBenchTopology(b, [][]int{{0}, {1}}, -1)
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if _, _, err := se.Search(q.spec.Seeker, q.kws, core.Options{K: 5, Params: params}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("split-hosts-cold", func(b *testing.B) {
		_, coord, _, qs := hostBenchTopology(b, [][]int{{0}, {1}}, -1)
		runDistributed(b, coord, qs)
	})
	b.Run("cohost-cold", func(b *testing.B) {
		_, coord, _, qs := hostBenchTopology(b, [][]int{{0, 1}}, -1)
		runDistributed(b, coord, qs)
	})
	b.Run("cohost-warm", func(b *testing.B) {
		_, coord, workers, qs := hostBenchTopology(b, [][]int{{0, 1}}, DefaultProxCacheBytes)
		for _, q := range qs {
			if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		drainWorkers(b, workers)
		b.ResetTimer()
		runDistributed(b, coord, qs)
	})
	b.Run("cohost-cold-maxprocs1", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		_, coord, _, qs := hostBenchTopology(b, [][]int{{0, 1}}, -1)
		runDistributed(b, coord, qs)
	})
	b.Run("split-hosts-cold-maxprocs1", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		_, coord, _, qs := hostBenchTopology(b, [][]int{{0}, {1}}, -1)
		runDistributed(b, coord, qs)
	})
}

// BenchmarkDeltaRounds prices the proto-5 delta round framing.
//
// The encode/decode rows are the steady-state codec microbenchmark: one
// warm 5-round host reply framed as deltas vs. classic full blocks —
// ns/op and allocs/op for the codecs, wireB/op for the frame each mode
// puts on the wire. The search rows run the cold co-hosted battery A/B
// (delta on vs. WithoutDelta) and report replyB/op: rounds-reply bytes
// received per search, the deployment-level read on the wire savings.
func BenchmarkDeltaRounds(b *testing.B) {
	const ns = 2
	rounds := deltaSeq(ns)
	seedRow := rounds[0]
	tail := flatten(rounds[1:])
	nRounds := len(rounds) - 1

	b.Run("encode-delta", func(b *testing.B) {
		shadows := make([]roundShadow, ns)
		var buf []byte
		var frameLen int
		for i := 0; i < b.N; i++ {
			for j := range seedRow {
				shadows[j].set(seedRow[j])
			}
			buf = appendDeltaFrame(buf[:0], tail, nRounds, ns, shadows, true)
			frameLen = len(buf)
		}
		b.ReportMetric(float64(frameLen)/float64(nRounds), "wireB/round")
	})
	b.Run("encode-full", func(b *testing.B) {
		var buf []byte
		var frameLen int
		for i := 0; i < b.N; i++ {
			e := enc{b: buf[:0]}
			e.u32(uint32(nRounds))
			for _, info := range tail {
				encodeRoundInfoBody(&e, info)
			}
			buf = e.b
			frameLen = len(buf)
		}
		b.ReportMetric(float64(frameLen)/float64(nRounds), "wireB/round")
	})

	base := time.Now()
	deltaFrame := func() []byte {
		sh := make([]roundShadow, ns)
		for i := range seedRow {
			sh[i].set(seedRow[i])
		}
		return appendDeltaFrame(nil, tail, nRounds, ns, sh, true)
	}()
	fullFrame := func() []byte {
		e := enc{}
		e.u32(deltaMagic)
		e.u32(uint32(nRounds))
		e.u32(uint32(ns))
		for r := 0; r < nRounds; r++ {
			e.u8(deltaRoundFull)
			for _, info := range tail[r*ns : (r+1)*ns] {
				encodeRoundInfoBody(&e, info)
			}
		}
		return e.b
	}()
	b.Run("decode-delta", func(b *testing.B) {
		codec := seededCodec(ns, seedRow)
		for i := 0; i < b.N; i++ {
			for j := range seedRow {
				codec.shadows[j].set(seedRow[j])
			}
			if _, _, err := codec.decodeHostRounds(deltaFrame, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-full", func(b *testing.B) {
		codec := seededCodec(ns, seedRow)
		for i := 0; i < b.N; i++ {
			if _, _, err := codec.decodeHostRounds(fullFrame, base); err != nil {
				b.Fatal(err)
			}
		}
	})

	search := func(noDelta bool) func(b *testing.B) {
		return func(b *testing.B) {
			reg := obs.NewRegistry()
			_, coord, _, qs := hostBenchTopology(b, [][]int{{0, 1}}, -1, func(cfg *CoordinatorConfig) {
				cfg.NoDelta = noDelta
				cfg.Registry = reg
			})
			start := roundsRecvBytes(reg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, _, err := coord.Search(q.spec, core.CoordOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(roundsRecvBytes(reg)-start)/float64(b.N), "replyB/op")
			if !noDelta {
				if d, _ := deltaCounters(reg); d == 0 {
					b.Fatal("delta coordinator decoded no delta rounds")
				}
			}
		}
	}
	b.Run("search-cohost-delta", search(false))
	b.Run("search-cohost-full", search(true))
}
