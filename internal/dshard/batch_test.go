// Tests for the proto-2 extensions: batched /shard/v1/rounds, the begin
// frame's optional deadline, version tolerance against pre-proto-2
// workers, worker-side warm frontiers and the tuned coordinator
// transport.
package dshard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/score"
	"s3/internal/snap"
)

// TestBatchedWireRoundTrip mirrors TestWireRoundTrip for the proto-2
// frames: exact round trips, plus rejection of truncated, padded,
// empty and oversized batch frames.
func TestBatchedWireRoundTrip(t *testing.T) {
	rr := roundsRequest{searchID: 99, from: 7, max: 16}
	gotRR, err := decodeRoundsRequest(encodeRoundsRequest(rr))
	if err != nil {
		t.Fatal(err)
	}
	if gotRR != rr {
		t.Fatalf("rounds request round trip: %+v != %+v", gotRR, rr)
	}
	if _, err := decodeRoundsRequest(encodeRoundsRequest(roundsRequest{searchID: 1, from: 1, max: 0})); err == nil {
		t.Error("zero-round batch request accepted")
	}
	if _, err := decodeRoundsRequest(encodeRoundsRequest(roundsRequest{searchID: 1, from: 1, max: maxBatchRounds + 1})); err == nil {
		t.Error("oversized batch request accepted")
	}
	reqFrame := encodeRoundsRequest(rr)
	for cut := 0; cut < len(reqFrame); cut++ {
		if _, err := decodeRoundsRequest(reqFrame[:cut]); err == nil {
			t.Fatalf("truncated rounds request (%d bytes) accepted", cut)
		}
	}
	if _, err := decodeRoundsRequest(append(bytes.Clone(reqFrame), 0)); err == nil {
		t.Error("trailing garbage on rounds request accepted")
	}

	infos := []core.RoundInfo{
		{N: 1, Reached: 4, Tail: math.Pow(1.5, -1), SourceTail: 1},
		{
			Kept:      []core.CandMeta{{Doc: 4, Lower: 0.25, Upper: 0.5}, {Doc: 9, Lower: 0, Upper: 0.5}},
			Uncertain: &core.CandMeta{Doc: 11, Lower: 0.1, Upper: 0.3},
			MaxOther:  0.125, Admitted: 2, Candidates: 6, Reached: 19,
			N: 2, Tail: math.Pow(1.5, -2), SourceTail: math.Pow(1.5, -1),
		},
		{N: 3, Reached: 21, Admitted: 2, Candidates: 6, Done: true},
	}
	frame := encodeRoundsReply(infos)
	got, sp, err := decodeRoundsReply(frame, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if sp != nil {
		t.Fatal("reply without span block decoded a span")
	}
	if len(got) != len(infos) {
		t.Fatalf("batched reply carried %d rounds, want %d", len(got), len(infos))
	}
	for i := range infos {
		want, have := infos[i], got[i]
		if (want.Uncertain == nil) != (have.Uncertain == nil) {
			t.Fatalf("round %d uncertain presence diverged", i)
		}
		if want.Uncertain != nil && *want.Uncertain != *have.Uncertain {
			t.Fatalf("round %d uncertain: %+v != %+v", i, have.Uncertain, want.Uncertain)
		}
		want.Uncertain, have.Uncertain = nil, nil
		if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", have) {
			t.Fatalf("round %d round trip: %+v != %+v", i, have, want)
		}
	}
	// An empty batch is a protocol violation (the worker always executes
	// at least one round), as is a count beyond the decode limit.
	if _, _, err := decodeRoundsReply(encodeRoundsReply(nil), time.Now()); err == nil {
		t.Error("empty batched reply accepted")
	}
	var e enc
	e.u32(maxBatchRounds + 1)
	if _, _, err := decodeRoundsReply(e.b, time.Now()); err == nil {
		t.Error("oversized batched reply accepted")
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := decodeRoundsReply(frame[:cut], time.Now()); err == nil {
			t.Fatalf("truncated batched reply (%d bytes) accepted", cut)
		}
	}
}

// TestBeginDeadlineWire covers the begin frame's optional trailing
// fields in every legal combination — and that the deadline never
// changes how the rest of the frame decodes.
func TestBeginDeadlineWire(t *testing.T) {
	base := beginRequest{
		searchID: 7,
		spec: core.SearchSpec{
			Seeker: 3, K: 10,
			Params:  score.Params{Gamma: 1.25, Eta: 0.8},
			Epsilon: 1e-12,
			Groups:  [][]dict.ID{{1, 2, 9}, {42}},
		},
	}
	for _, tc := range []struct{ traceID, deadline uint64 }{
		{0, 0},
		{0xfeed, 0},
		{0xfeed, 1_500_000},
		{0, 2_000_000}, // deadline without trace: trace id written as zero
	} {
		r := base
		r.traceID, r.deadlineMicros = tc.traceID, tc.deadline
		got, err := decodeBeginRequest(encodeBeginRequest(r))
		if err != nil {
			t.Fatalf("trace=%#x deadline=%d: %v", tc.traceID, tc.deadline, err)
		}
		if got.traceID != tc.traceID || got.deadlineMicros != tc.deadline {
			t.Fatalf("optional fields round trip: got trace=%#x deadline=%d, want trace=%#x deadline=%d",
				got.traceID, got.deadlineMicros, tc.traceID, tc.deadline)
		}
		if fmt.Sprintf("%+v", got.spec) != fmt.Sprintf("%+v", base.spec) {
			t.Fatalf("spec perturbed by optional fields: %+v", got.spec)
		}
	}
	// A frame with a half-written optional field is rejected.
	r := base
	r.traceID, r.deadlineMicros = 0xfeed, 1_000_000
	frame := encodeBeginRequest(r)
	for _, cut := range []int{1, 7, 9, 15} {
		if _, err := decodeBeginRequest(frame[:len(frame)-cut]); err == nil {
			t.Errorf("begin frame truncated by %d bytes accepted", cut)
		}
	}
}

// smallSpec is the corpus the proto-2 tests share: big enough to need
// several rounds, small enough to keep the battery fast.
func smallSpec() graph.Spec {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 50, 180, 13
	spec, _ := datagen.Twitter(o)
	return spec
}

// smallTopology builds a 2-shard set with live workers and returns the
// manifest path, the opened set, the worker objects and their servers.
func smallTopology(t *testing.T) (string, *snap.ShardSetSnapshot, []*Worker, []*httptest.Server) {
	t.Helper()
	in, ix := buildInstance(t, smallSpec())
	manifestPath := writeSet(t, in, ix, 2)
	set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	workers := make([]*Worker, 2)
	servers := make([]*httptest.Server, 2)
	for i := range workers {
		workers[i] = NewWorker(WorkerConfig{ManifestPath: manifestPath, Shard: i, Mode: snap.LoadMmap})
		if err := workers[i].Load(); err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(workers[i].Handler())
		t.Cleanup(servers[i].Close)
	}
	return manifestPath, set, workers, servers
}

// oldWorkerProxy wraps a modern worker handler to look like a
// pre-proto-2 binary: /shard/v1/rounds does not exist (bare mux-style
// 404, no JSON body) and, when hideProto is set, /healthz does not
// advertise "proto".
func oldWorkerProxy(inner http.Handler, hideProto bool) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == pathRounds {
			http.NotFound(rw, req)
			return
		}
		if hideProto && req.URL.Path == "/healthz" {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, req)
			var m map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &m); err == nil {
				delete(m, "proto")
				b, _ := json.Marshal(m)
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(rec.Code)
				rw.Write(b)
				return
			}
			rw.WriteHeader(rec.Code)
			rw.Write(rec.Body.Bytes())
			return
		}
		inner.ServeHTTP(rw, req)
	})
}

// protocolTolerance runs the byte-identity battery through a coordinator
// whose workers sit behind old-worker proxies, and asserts the fallback
// engaged without benching anyone.
func protocolTolerance(t *testing.T, hideProto bool) {
	_, set, _, servers := smallTopology(t)
	proxies := make([]*httptest.Server, len(servers))
	urls := make([]string, len(servers))
	for i, srv := range servers {
		proxies[i] = httptest.NewServer(oldWorkerProxy(srv.Config.Handler, hideProto))
		t.Cleanup(proxies[i].Close)
		urls[i] = proxies[i].URL
	}

	// Reference answers over the unproxied workers, per-round protocol.
	direct := make([]string, 0, len(servers))
	for _, srv := range servers {
		direct = append(direct, srv.URL)
	}
	ref, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: direct, ShardCount: len(set.Set.Layout.Shards), SetID: set.Set.Layout.SetID,
		Client: &http.Client{Timeout: 10 * time.Second}, MaxRoundBatch: -1, NoSpeculation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}

	coord := newCoordinator(t, set.Set.Layout, urls)
	if hideProto {
		// The probe already latched the capability off the missing proto.
		for _, w := range coord.workers {
			if !w.noBatch.Load() {
				t.Fatal("probe did not latch noBatch for a proto-less worker")
			}
		}
	}

	in := set.Set.Base
	seekers, kwSets := queries(in)
	checked := 0
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil {
				t.Fatal(err)
			}
			if !possible {
				continue
			}
			spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5,
				Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
			wantSel, wantStats, err := ref.Search(spec, core.CoordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotSel, gotStats, err := coord.Search(spec, core.CoordOptions{})
			if err != nil {
				t.Fatalf("search through old-worker proxy: %v", err)
			}
			if want, got := metaTranscript(wantSel, wantStats), metaTranscript(gotSel, gotStats); got != want {
				t.Fatalf("seeker=%d kws=%v: fallback answer diverged\nper-round:\n%s\nfallback:\n%s",
					seeker, kws, want, got)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no queries checked")
	}
	// The missing endpoint must never read as a worker failure.
	st := coord.Stats()
	for _, w := range st.Workers {
		if !w.Healthy {
			t.Fatalf("worker %s benched by the fallback: %s", w.URL, w.Error)
		}
	}
	if coord.retries.Load() != 0 {
		t.Fatalf("fallback caused %d search retries", coord.retries.Load())
	}
	// Either way, the capability is latched off by the end.
	for _, w := range coord.workers {
		if !w.noBatch.Load() {
			t.Fatal("noBatch not latched after talking to an old worker")
		}
	}
}

// TestOldWorkerFallback: a worker that does not advertise proto 2 is
// driven entirely over the per-round v1 protocol, byte-identically.
func TestOldWorkerFallback(t *testing.T) { protocolTolerance(t, true) }

// TestLiveRoundsFallback: a worker that advertises proto 2 but answers
// /shard/v1/rounds with a bare 404 (rolled back between probe and
// search) triggers the live fallback — same answers, nobody benched.
func TestLiveRoundsFallback(t *testing.T) { protocolTolerance(t, false) }

// TestWorkerDeadlineSweep: a session carrying a coordinator-propagated
// deadline is abandoned at that deadline by the sweeper, long before
// the idle TTL; sessions without one ride the TTL as before.
func TestWorkerDeadlineSweep(t *testing.T) {
	_, set, workers, servers := smallTopology(t)
	in := set.Set.Base
	seekers, kwSets := queries(in)
	groups, possible, err := core.ResolveKeywordGroups(in, kwSets[0])
	if err != nil || !possible {
		t.Fatal("unusable query")
	}
	spec := core.SearchSpec{Seeker: seekers[0], Groups: groups, K: 3,
		Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}

	w, srv := workers[0], servers[0]
	// Session 1: budgeted search — ships a deadline (budget + grace).
	budgeted := newRemoteExecutor(http.DefaultClient, srv.URL, 101).withBatching(nil, 16, 500*time.Millisecond)
	if _, err := budgeted.Begin(spec); err != nil {
		t.Fatal(err)
	}
	// Session 2: no budget, no deadline.
	plain := newRemoteExecutor(http.DefaultClient, srv.URL, 102).withBatching(nil, 16, 0)
	if _, err := plain.Begin(spec); err != nil {
		t.Fatal(err)
	}

	sessions := func() int {
		w.mu.Lock()
		defer w.mu.Unlock()
		return len(w.sessions)
	}
	if got := sessions(); got != 2 {
		t.Fatalf("worker holds %d sessions, want 2", got)
	}
	deadline := func(id uint64) time.Time {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.sessions[id].deadline
	}
	if deadline(101).IsZero() {
		t.Fatal("budgeted session has no deadline")
	}
	if !deadline(102).IsZero() {
		t.Fatal("unbudgeted session grew a deadline")
	}

	// Sweep as if 10 seconds passed: past the 500ms budget + 2s grace,
	// well inside the 60s idle TTL.
	w.mu.Lock()
	w.sweepSessions(time.Now().Add(10 * time.Second))
	remaining := len(w.sessions)
	_, plainAlive := w.sessions[102]
	w.mu.Unlock()
	if remaining != 1 || !plainAlive {
		t.Fatalf("after deadline sweep: %d sessions (plain alive=%v), want only the unbudgeted one",
			remaining, plainAlive)
	}
}

// TestWorkerWarmResume: two searches for the same seeker against one
// worker — the second must resume the cached frontier (warm-resume
// counter) and answer byte-identically.
func TestWorkerWarmResume(t *testing.T) {
	_, set, workers, servers := smallTopology(t)
	coordURLs := make([]string, len(servers))
	for i, srv := range servers {
		coordURLs[i] = srv.URL
	}
	coord := newCoordinator(t, set.Set.Layout, coordURLs)

	in := set.Set.Base
	seekers, kwSets := queries(in)
	groups, possible, err := core.ResolveKeywordGroups(in, kwSets[0])
	if err != nil || !possible {
		t.Fatal("unusable query")
	}
	spec := core.SearchSpec{Seeker: seekers[0], Groups: groups, K: 5,
		Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}

	first, fstats, err := coord.Search(spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// End is asynchronous; the frontier publishes when the worker closes
	// the session. Wait for both workers to drain.
	waitUntil(t, 3*time.Second, func() bool {
		for _, w := range workers {
			w.mu.Lock()
			n := len(w.sessions)
			w.mu.Unlock()
			if n != 0 {
				return false
			}
		}
		return true
	})

	second, sstats, err := coord.Search(spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want, got := metaTranscript(first, fstats), metaTranscript(second, sstats); got != want {
		t.Fatalf("warm answer diverged\ncold:\n%s\nwarm:\n%s", want, got)
	}
	warm := uint64(0)
	for _, w := range workers {
		warm += w.warmResumes.Load()
	}
	if warm == 0 {
		t.Fatal("no worker resumed a cached frontier on the repeated seeker")
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNoRedialAcrossSearch: the membership probe pre-warms the tuned
// keep-alive transport, so a whole search — begin, batched rounds,
// speculation, finalize, end — performs zero new dials.
func TestNoRedialAcrossSearch(t *testing.T) {
	_, set, _, servers := smallTopology(t)
	urls := make([]string, len(servers))
	for i, srv := range servers {
		urls[i] = srv.URL
	}

	var dials atomic.Int32
	tr := newTransport(len(urls))
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	tr.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		dials.Add(1)
		return dialer.DialContext(ctx, network, addr)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls, ShardCount: len(set.Set.Layout.Shards), SetID: set.Set.Layout.SetID,
		Client: &http.Client{Timeout: 10 * time.Second, Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	if dials.Load() == 0 {
		t.Fatal("probe did not dial (instrumentation broken?)")
	}

	in := set.Set.Base
	seekers, kwSets := queries(in)
	groups, possible, err := core.ResolveKeywordGroups(in, kwSets[0])
	if err != nil || !possible {
		t.Fatal("unusable query")
	}
	spec := core.SearchSpec{Seeker: seekers[0], Groups: groups, K: 5,
		Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}

	// Warm-up search: its async End may overlap the next begin and cost
	// an extra connection; let it finish before measuring.
	if _, _, err := coord.Search(spec, core.CoordOptions{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	before := dials.Load()
	if _, _, err := coord.Search(spec, core.CoordOptions{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if after := dials.Load(); after != before {
		t.Fatalf("search re-dialed %d times over the pre-warmed transport", after-before)
	}
}
