package dshard

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/graph"
	"s3/internal/obs"
	"s3/internal/score"
	"s3/internal/snap"
)

// deltaSeq synthesizes a multi-round per-shard reply sequence that walks
// every delta-frame shape: identical kept lists (KeptSame), back-refs
// with one or both bounds tightened, literal new docs, dropped docs,
// reordering, uncertain appearing / repeating / vanishing, Tail and
// SourceTail both moving and frozen, and a final Done round. Returned
// round-major: seq[r][i] is shard i's info in round r.
func deltaSeq(ns int) [][]core.RoundInfo {
	mk := func(r int, shard int) core.RoundInfo {
		info := core.RoundInfo{
			N: r + 1, Reached: 40 * (r + 1),
			Admitted: 3*(r+1) + shard, Candidates: 7*(r+1) + shard,
			Tail: 1.0 / float64(r+1), SourceTail: 0.5 / float64(r+1),
			MaxOther: 0.75,
		}
		base := graph.NID(100*shard + 10)
		switch r {
		case 0:
			info.Kept = []core.CandMeta{
				{Doc: base, Lower: 0.50, Upper: 0.90},
				{Doc: base + 5, Lower: 0.40, Upper: 0.80},
			}
			info.Uncertain = &core.CandMeta{Doc: base + 9, Lower: 0.30, Upper: 0.85}
		case 1:
			// Kept byte-identical to round 0, uncertain identical too:
			// the shard block should collapse to flags + counter diffs.
			info.Kept = []core.CandMeta{
				{Doc: base, Lower: 0.50, Upper: 0.90},
				{Doc: base + 5, Lower: 0.40, Upper: 0.80},
			}
			info.Uncertain = &core.CandMeta{Doc: base + 9, Lower: 0.30, Upper: 0.85}
		case 2:
			// Same docs, bounds tightened: back-refs with changed floats.
			// The uncertain keeps its doc but moves a bound (UncDocSame).
			info.Kept = []core.CandMeta{
				{Doc: base, Lower: 0.55, Upper: 0.90},
				{Doc: base + 5, Lower: 0.40, Upper: 0.74},
			}
			info.Uncertain = &core.CandMeta{Doc: base + 9, Lower: 0.32, Upper: 0.85}
			info.MaxOther = 0.6
		case 3:
			// A new doc enters between the survivors (literal entry with a
			// negative running delta), one old doc drops, order shifts.
			info.Kept = []core.CandMeta{
				{Doc: base + 5, Lower: 0.45, Upper: 0.74},
				{Doc: base + 2, Lower: 0.42, Upper: 0.70},
				{Doc: base, Lower: 0.55, Upper: 0.60},
			}
			info.Uncertain = &core.CandMeta{Doc: base + 13, Lower: 0.1, Upper: 0.5}
			info.MaxOther = 0.6
			info.Tail = 0.2 // shared across shards per round below
		case 4:
			// Everything frozen but the cumulative counters.
			info.Kept = []core.CandMeta{
				{Doc: base + 5, Lower: 0.45, Upper: 0.74},
				{Doc: base + 2, Lower: 0.42, Upper: 0.70},
				{Doc: base, Lower: 0.55, Upper: 0.60},
			}
			info.Uncertain = &core.CandMeta{Doc: base + 13, Lower: 0.1, Upper: 0.5}
			info.MaxOther = 0.6
			info.Tail = 0.2
			info.SourceTail = 0.5 / 4 // same bits as round 3's
		case 5:
			info.Done = true
			info.Kept = []core.CandMeta{{Doc: base + 5, Lower: 0.45, Upper: 0.74}}
			info.MaxOther = 0.6
			info.Tail = 0.1
		}
		return info
	}
	rounds := make([][]core.RoundInfo, 6)
	for r := range rounds {
		row := make([]core.RoundInfo, ns)
		for i := 0; i < ns; i++ {
			row[i] = mk(r, i)
			// Shared scalars come from shard 0's values.
			row[i].N, row[i].Reached = row[0].N, row[0].Reached
			row[i].Tail, row[i].SourceTail, row[i].Done = row[0].Tail, row[0].SourceTail, row[0].Done
		}
		rounds[r] = row
	}
	return rounds
}

// flatten lays rounds out round-major as appendDeltaFrame expects.
func flatten(rounds [][]core.RoundInfo) []core.RoundInfo {
	var flat []core.RoundInfo
	for _, row := range rounds {
		flat = append(flat, row...)
	}
	return flat
}

// TestDeltaFrameRoundTrip is the codec property: a worker-side encode
// against its shadows followed by a coordinator-side decode against an
// independently maintained codec reconstructs every RoundInfo bit for
// bit, whatever mix of delta shapes the rounds take — and the delta
// frame is smaller than the equivalent full-block frame.
func TestDeltaFrameRoundTrip(t *testing.T) {
	base := time.Now()
	for _, ns := range []int{1, 3} {
		rounds := deltaSeq(ns)
		flat := flatten(rounds)

		// One batched frame carrying the whole sequence.
		shadows := make([]roundShadow, ns)
		frame := appendDeltaFrame(nil, flat, len(rounds), ns, shadows, true)
		codec := newDeltaCodec(ns)
		got, nRounds, _, err := codec.decodeDeltaFrame(frame, base, false)
		if err != nil {
			t.Fatalf("ns=%d: decode: %v", ns, err)
		}
		if nRounds != len(rounds) || len(got) != len(flat) {
			t.Fatalf("ns=%d: decoded %d rounds / %d infos, want %d / %d", ns, nRounds, len(got), len(rounds), len(flat))
		}
		for idx := range flat {
			if !bytes.Equal(encodeRoundInfo(flat[idx]), encodeRoundInfo(got[idx])) {
				t.Fatalf("ns=%d: info %d diverged\nwant %+v\ngot  %+v", ns, idx, flat[idx], got[idx])
			}
		}
		// Round 0 has no shadow base → full; every later round deltas.
		if codec.lastFull != 1 || codec.lastDelta != len(rounds)-1 {
			t.Fatalf("ns=%d: mode tally delta=%d full=%d, want %d/1", ns, codec.lastDelta, codec.lastFull, len(rounds)-1)
		}

		// The same rounds framed per-RPC (one round per frame) must decode
		// identically too — that is how the per-round speculation path and
		// short batches ship them.
		shadows2 := make([]roundShadow, ns)
		codec2 := newDeltaCodec(ns)
		for r, row := range rounds {
			f := appendDeltaFrame(nil, row, 1, ns, shadows2, true)
			got, _, _, err := codec2.decodeDeltaFrame(f, base, false)
			if err != nil {
				t.Fatalf("ns=%d round %d: decode: %v", ns, r, err)
			}
			for i := range row {
				if !bytes.Equal(encodeRoundInfo(row[i]), encodeRoundInfo(got[i])) {
					t.Fatalf("ns=%d round %d shard %d diverged", ns, r, i)
				}
			}
		}

		// Finalize (update=false) must not move either side's shadows: the
		// next round still diffs against the last executed round, and two
		// finalize encodes are byte-identical.
		fin := rounds[len(rounds)-1]
		f1 := appendDeltaFrame(nil, fin, 1, ns, shadows2, false)
		f2 := appendDeltaFrame(nil, fin, 1, ns, shadows2, false)
		if !bytes.Equal(f1, f2) {
			t.Fatalf("ns=%d: finalize encode moved the worker shadows", ns)
		}
		var gotFin []core.RoundInfo
		if ns == 1 {
			info, _, err := codec2.decodeFinalize(f1, base)
			if err != nil {
				t.Fatalf("ns=%d: finalize decode: %v", ns, err)
			}
			gotFin = []core.RoundInfo{info}
		} else {
			var err error
			gotFin, _, err = codec2.decodeHostFinalize(f1, base)
			if err != nil {
				t.Fatalf("ns=%d: finalize decode: %v", ns, err)
			}
		}
		for i := range fin {
			if !bytes.Equal(encodeRoundInfo(fin[i]), encodeRoundInfo(gotFin[i])) {
				t.Fatalf("ns=%d: finalize shard %d diverged", ns, i)
			}
		}
		// Decoding the finalize twice works only if the codec shadows
		// didn't advance either.
		if _, _, _, err := codec2.decodeDeltaFrame(f1, base, true); err != nil {
			t.Fatalf("ns=%d: second finalize decode failed (codec shadows moved): %v", ns, err)
		}

		// Wire savings: delta frame strictly smaller than full framing of
		// the same rounds.
		var full []byte
		for _, row := range rounds {
			for i := range row {
				e := enc{b: full}
				encodeRoundInfoBody(&e, row[i])
				full = e.b
			}
		}
		if len(frame) >= len(full) {
			t.Fatalf("ns=%d: delta frame %dB not smaller than %dB of full bodies", ns, len(frame), len(full))
		}
	}
}

// TestDeltaFallbackRounds: rounds the encoder cannot (or must not) delta
// — no shadow base, a counter that moved backwards, shared scalars that
// disagree across the row — are framed full in place and still decode
// bit-exactly, re-arming the shadows for the rounds after them.
func TestDeltaFallbackRounds(t *testing.T) {
	base := time.Now()
	ns := 2
	rounds := deltaSeq(ns)

	// Regress shard 1's Admitted in round 2 → whole round falls back.
	rounds[2][1].Admitted = rounds[1][1].Admitted - 1
	// Desync round 4's shared scalars across the row → full as well.
	rounds[4][1].N = rounds[4][0].N + 1

	flat := flatten(rounds)
	shadows := make([]roundShadow, ns)
	frame := appendDeltaFrame(nil, flat, len(rounds), ns, shadows, true)
	codec := newDeltaCodec(ns)
	got, _, _, err := codec.decodeDeltaFrame(frame, base, false)
	if err != nil {
		t.Fatal(err)
	}
	for idx := range flat {
		if !bytes.Equal(encodeRoundInfo(flat[idx]), encodeRoundInfo(got[idx])) {
			t.Fatalf("info %d diverged through full fallback", idx)
		}
	}
	// Rounds 0 (no base), 2 (regressed counter) and 4 (shared mismatch)
	// full; 1, 3, 5 delta.
	if codec.lastFull != 3 || codec.lastDelta != 3 {
		t.Fatalf("mode tally delta=%d full=%d, want 3/3", codec.lastDelta, codec.lastFull)
	}
}

// seededCodec builds a codec whose shadows hold the given row — the
// session state a mid-search delta frame decodes against.
func seededCodec(ns int, row []core.RoundInfo) *deltaCodec {
	c := newDeltaCodec(ns)
	for i := range row {
		c.noteLegacy(i, row[i])
	}
	return c
}

// TestDeltaFrameCorruption drives the delta decoder through every
// truncation point and a deterministic bit-flip storm, decoding against
// freshly seeded shadows each trial. Corruption must surface as an error
// or a (possibly value-shifted) decode — never a panic, hang, or huge
// allocation. Combined with the CRC-protected transport this is what
// keeps a flipped bit from ever turning into a silently perturbed float.
func TestDeltaFrameCorruption(t *testing.T) {
	base := time.Now()
	ns := 2
	rounds := deltaSeq(ns)
	seedRow := rounds[0]
	tail := flatten(rounds[1:])

	mkShadows := func() []roundShadow {
		sh := make([]roundShadow, ns)
		for i := range seedRow {
			sh[i].set(seedRow[i])
		}
		return sh
	}
	frame := appendDeltaFrame(nil, tail, len(rounds)-1, ns, mkShadows(), true)

	// All-delta frame, no optional interior: every strict prefix must be
	// rejected.
	for cut := 0; cut < len(frame); cut++ {
		c := seededCodec(ns, seedRow)
		if _, _, _, err := c.decodeDeltaFrame(frame[:cut], base, false); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(frame))
		}
	}
	if _, _, _, err := seededCodec(ns, seedRow).decodeDeltaFrame(frame, base, false); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		mut := append([]byte(nil), frame...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			i := rng.Intn(len(mut))
			mut[i] ^= 1 << uint(rng.Intn(8))
		}
		c := seededCodec(ns, seedRow)
		infos, _, err := c.decodeRounds(mut, base)
		if err == nil && len(infos) == 0 {
			t.Fatal("corrupted delta frame decoded to zero rounds without error")
		}
	}
}

// FuzzDecodeDeltaFrame fuzzes the delta decoder through the dispatching
// entry point (so legacy framings are covered too) against seeded
// shadows: any input must decode or error, never panic.
func FuzzDecodeDeltaFrame(f *testing.F) {
	ns := 2
	rounds := deltaSeq(ns)
	seedRow := rounds[0]
	sh := make([]roundShadow, ns)
	for i := range seedRow {
		sh[i].set(seedRow[i])
	}
	f.Add(appendDeltaFrame(nil, flatten(rounds[1:]), len(rounds)-1, ns, sh, true))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(encodeRoundsReply(sampleRoundInfos()))
	base := time.Now()
	f.Fuzz(func(t *testing.T, b []byte) {
		c := seededCodec(ns, seedRow)
		if infos, _, err := c.decodeHostRounds(b, base); err == nil {
			for _, row := range infos {
				if len(row) != ns {
					t.Fatalf("decoded row of %d infos, want %d", len(row), ns)
				}
			}
		}
		// Single-shard sessions route through decodeRounds.
		c1 := seededCodec(1, seedRow[:1])
		_, _, _ = c1.decodeRounds(b, base)
		_, _, _ = c1.decodeFinalize(b, base)
	})
}

// deltaCounters reads the per-mode round counters out of a registry.
func deltaCounters(r *obs.Registry) (delta, full uint64) {
	d := r.Counter("s3_coord_delta_rounds_total",
		"Rounds decoded from worker replies, by framing mode.", obs.L("mode", "delta"))
	f := r.Counter("s3_coord_delta_rounds_total",
		"Rounds decoded from worker replies, by framing mode.", obs.L("mode", "full"))
	return d.Value(), f.Value()
}

// roundsRecvBytes reads the rounds-endpoint receive byte counter.
func roundsRecvBytes(r *obs.Registry) uint64 {
	return r.Counter("s3_coord_rpc_bytes_total",
		"Wire bytes exchanged with workers, by endpoint and direction.",
		obs.L("endpoint", "rounds"), obs.L("direction", "recv")).Value()
}

// runBattery runs the standard query battery through a coordinator and
// returns the transcripts in query order.
func runBattery(t *testing.T, c *Coordinator, in *graph.Instance) []string {
	t.Helper()
	seekers, kwSets := queries(in)
	var out []string
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			groups, possible, err := core.ResolveKeywordGroups(in, kws)
			if err != nil {
				t.Fatal(err)
			}
			if !possible {
				continue
			}
			spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5,
				Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
			sel, stats, err := c.Search(spec, core.CoordOptions{})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, metaTranscript(sel, stats))
		}
	}
	if len(out) == 0 {
		t.Fatal("no queries ran")
	}
	return out
}

// TestDeltaByteIdentityAndWireSavings: a delta-framing coordinator and a
// WithoutDelta one answer byte-identically to the in-process sharded
// engine, the delta one actually decodes delta rounds (metric > 0), and
// it receives meaningfully fewer rounds-reply bytes for the same battery.
func TestDeltaByteIdentityAndWireSavings(t *testing.T) {
	in, ix := buildInstance(t, datasets(t)["twitter"])
	manifestPath := writeSet(t, in, ix, 2)
	set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	engines := make([]*core.Engine, 2)
	for i := range engines {
		engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
	}
	se, err := core.NewShardedEngine(engines)
	if err != nil {
		t.Fatal(err)
	}

	urls, stop := startWorkers(t, manifestPath, 2, snap.LoadMmap)
	defer stop()

	mkCoord := func(noDelta bool) (*Coordinator, *obs.Registry) {
		reg := obs.NewRegistry()
		c, err := NewCoordinator(CoordinatorConfig{
			WorkerURLs: urls,
			ShardCount: 2,
			SetID:      set.Set.Layout.SetID,
			Client:     &http.Client{Timeout: 10 * time.Second},
			NoDelta:    noDelta,
			Registry:   reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Probe(context.Background()); err != nil {
			t.Fatal(err)
		}
		return c, reg
	}
	deltaCoord, deltaReg := mkCoord(false)
	fullCoord, fullReg := mkCoord(true)

	seekers, kwSets := queries(in)
	var want []string
	for _, seeker := range seekers {
		for _, kws := range kwSets {
			rs, sstats, err := se.Search(seeker, kws, core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}})
			if err != nil {
				t.Fatal(err)
			}
			if _, possible, err := core.ResolveKeywordGroups(in, kws); err != nil {
				t.Fatal(err)
			} else if !possible {
				continue
			}
			want = append(want, engineTranscript(rs, sstats))
		}
	}
	gotDelta := runBattery(t, deltaCoord, in)
	gotFull := runBattery(t, fullCoord, in)
	for i := range want {
		if gotDelta[i] != want[i] {
			t.Fatalf("query %d: delta coordinator diverged from sharded engine\nwant:\n%s\ngot:\n%s", i, want[i], gotDelta[i])
		}
		if gotFull[i] != want[i] {
			t.Fatalf("query %d: WithoutDelta coordinator diverged from sharded engine\nwant:\n%s\ngot:\n%s", i, want[i], gotFull[i])
		}
	}

	dRounds, _ := deltaCounters(deltaReg)
	if dRounds == 0 {
		t.Fatal("delta coordinator decoded no delta-framed rounds")
	}
	if d, _ := deltaCounters(fullReg); d != 0 {
		t.Fatalf("WithoutDelta coordinator decoded %d delta rounds", d)
	}
	dBytes, fBytes := roundsRecvBytes(deltaReg), roundsRecvBytes(fullReg)
	if dBytes == 0 || fBytes == 0 {
		t.Fatalf("rounds byte counters empty: delta=%d full=%d", dBytes, fBytes)
	}
	// This battery's searches stop after a couple dozen rounds, so most
	// rounds are churn phase — bounds genuinely moving, where the delta
	// body is floored by the changed float payload. Steady-state rounds
	// compress far harder (see BenchmarkDeltaRounds); here just require a
	// solid battery-wide saving.
	if dBytes*5 > fBytes*4 {
		t.Fatalf("delta framing saved too little: %dB delta vs %dB full", dBytes, fBytes)
	}
	t.Logf("rounds reply bytes: delta=%d full=%d (%.2fx smaller)", dBytes, fBytes, float64(fBytes)/float64(dBytes))
}

// proto4Proxy rewrites a worker's /healthz to advertise proto 4, so the
// coordinator latches delta framing off for it while still using every
// other modern capability.
func proto4Proxy(t *testing.T, inner http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/healthz" {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, req)
			var hb map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &hb); err != nil {
				t.Errorf("healthz body: %v", err)
				rw.WriteHeader(http.StatusInternalServerError)
				return
			}
			hb["proto"] = protoDelta - 1
			body, _ := json.Marshal(hb)
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(rec.Code)
			rw.Write(body)
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestDeltaMixedFleet: one proto-4 worker (delta latched off) and one
// proto-5 worker in the same search — answers stay byte-identical to the
// all-proto-5 fleet, and the proto-5 member still deltas.
func TestDeltaMixedFleet(t *testing.T) {
	_, set, workers, servers := smallTopology(t)
	old := proto4Proxy(t, workers[0].Handler())
	urls := []string{old.URL, servers[1].URL}

	reg := obs.NewRegistry()
	mixed, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: 2,
		SetID:      set.Set.Layout.SetID,
		Client:     &http.Client{Timeout: 10 * time.Second},
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	modern := newCoordinator(t, set.Set.Layout, []string{servers[0].URL, servers[1].URL})

	in := set.Set.Base
	gotMixed := runBattery(t, mixed, in)
	gotModern := runBattery(t, modern, in)
	for i := range gotModern {
		if gotMixed[i] != gotModern[i] {
			t.Fatalf("query %d: mixed proto-4/5 fleet diverged from all-proto-5 fleet", i)
		}
	}
	d, full := deltaCounters(reg)
	if d == 0 {
		t.Fatal("proto-5 member of the mixed fleet never delta-framed")
	}
	if full == 0 {
		t.Fatal("proto-4 member of the mixed fleet never full-framed")
	}
}

// TestDeltaLiveDowngrade flips a worker's delta framing off and back on
// between rounds RPCs of live searches: every reply self-identifies its
// framing, so the coordinator tracks the mix without desynchronizing and
// answers stay byte-identical throughout.
func TestDeltaLiveDowngrade(t *testing.T) {
	_, set, workers, servers := smallTopology(t)
	var roundsRPCs atomic.Int64
	flipper := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == pathRounds {
			// Alternate framing in 3-RPC stretches, flipping mid-session.
			n := roundsRPCs.Add(1)
			workers[0].deltaOff.Store((n/3)%2 == 1)
		}
		workers[0].Handler().ServeHTTP(rw, req)
	}))
	t.Cleanup(flipper.Close)

	reg := obs.NewRegistry()
	flipped, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: []string{flipper.URL, servers[1].URL},
		ShardCount: 2,
		SetID:      set.Set.Layout.SetID,
		Client:     &http.Client{Timeout: 10 * time.Second},
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flipped.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	steady := newCoordinator(t, set.Set.Layout, []string{servers[0].URL, servers[1].URL})

	in := set.Set.Base
	gotFlipped := runBattery(t, flipped, in)
	workers[0].deltaOff.Store(false)
	gotSteady := runBattery(t, steady, in)
	for i := range gotSteady {
		if gotFlipped[i] != gotSteady[i] {
			t.Fatalf("query %d: mid-search framing flips changed the answer", i)
		}
	}
	d, full := deltaCounters(reg)
	if d == 0 || full == 0 {
		t.Fatalf("framing flips not exercised: delta=%d full=%d rounds", d, full)
	}
}

// TestDeltaFailoverReplay is replayIdentity with delta framing live on
// both executors: the replica's fast-forward resets the codec shadows
// (the worker resets its own after replay), so post-recovery delta
// rounds re-arm from a full round and stay bit-identical to the
// uninterrupted session, at every consumed-round count.
func TestDeltaFailoverReplay(t *testing.T) {
	_, set, _, servers := smallTopology(t)
	srv := servers[0]
	spec := deepQuery(t, set, srv, 5)

	var on atomic.Bool // stays false: delta enabled
	for consumed := 1; consumed <= 4; consumed++ {
		primary := newRemoteExecutor(http.DefaultClient, srv.URL, uint64(9900+2*consumed)).withDelta(&on)
		if _, err := primary.Begin(spec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < consumed; i++ {
			if _, err := primary.Round(); err != nil {
				t.Fatal(err)
			}
		}
		replica := newRemoteExecutor(http.DefaultClient, srv.URL, uint64(9901+2*consumed)).
			withDelta(&on).
			withResilience(context.Background(), 5*time.Second, new(atomic.Bool), nil)
		if _, err := replica.Begin(spec); err != nil {
			t.Fatal(err)
		}
		if err := replica.FastForward(uint32(consumed)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			a, err := primary.Round()
			if err != nil {
				t.Fatal(err)
			}
			b, err := replica.Round()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeRoundInfo(a), encodeRoundInfo(b)) {
				t.Fatalf("consumed=%d: round %d diverged after delta fast-forward", consumed, consumed+i+1)
			}
			if a.Done {
				break
			}
		}
		fa, err := primary.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := replica.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeRoundInfo(fa), encodeRoundInfo(fb)) {
			t.Fatalf("consumed=%d: finalize diverged after delta fast-forward", consumed)
		}
		primary.End()
		replica.End()
	}
}
