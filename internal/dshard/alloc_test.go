package dshard

import (
	"testing"
	"time"

	"s3/internal/core"
)

// checkAllocs asserts a steady-state hot path allocates nothing per op.
// Under -race the runtime itself allocates, so the op still runs (for the
// race detector's benefit) but the strict assertion is waived.
func checkAllocs(t *testing.T, name string, op func()) {
	t.Helper()
	avg := testing.AllocsPerRun(200, op)
	if raceEnabled {
		t.Logf("%s: %.1f allocs/op under -race (not asserted)", name, avg)
		return
	}
	if avg != 0 {
		t.Errorf("%s: %.1f allocs/op in steady state, want 0", name, avg)
	}
}

// TestDeltaSteadyStateAllocs is the CI allocation regression guard for
// the proto-5 wire hot path: once a session is warm, encoding a round
// reply against the shadows and decoding it through the codec arenas
// must not allocate.
func TestDeltaSteadyStateAllocs(t *testing.T) {
	base := time.Now()
	for _, ns := range []int{1, 3} {
		rounds := deltaSeq(ns)
		seedRow := rounds[0]
		row := rounds[1]

		// Encode: the worker re-frames the session's next round against
		// shadows whose backing arrays are already sized.
		shadows := make([]roundShadow, ns)
		var buf []byte
		for i := range seedRow {
			shadows[i].set(seedRow[i])
		}
		buf = appendDeltaFrame(buf[:0], row, 1, ns, shadows, true)
		checkAllocs(t, "encode", func() {
			for i := range seedRow {
				shadows[i].set(seedRow[i])
			}
			buf = appendDeltaFrame(buf[:0], row, 1, ns, shadows, true)
		})

		// Decode: the coordinator lands the reply in the codec's banked
		// arenas. Warm both banks first.
		codec := seededCodec(ns, seedRow)
		frame := appendDeltaFrame(nil, flatten(rounds[1:]), len(rounds)-1, ns, mustShadows(seedRow), true)
		decodeOnce := func() {
			for i := range seedRow {
				codec.shadows[i].set(seedRow[i])
			}
			var err error
			if ns == 1 {
				_, _, err = codec.decodeRounds(frame, base)
			} else {
				_, _, err = codec.decodeHostRounds(frame, base)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		decodeOnce()
		decodeOnce()
		checkAllocs(t, "decode", decodeOnce)
	}
}

// mustShadows builds worker-side shadows holding row.
func mustShadows(row []core.RoundInfo) []roundShadow {
	sh := make([]roundShadow, len(row))
	for i := range row {
		sh[i].set(row[i])
	}
	return sh
}
