// RemoteExecutor: core.ShardExecutor over the HTTP/binary round
// protocol. One instance drives one search on one worker; the
// coordinator creates a fresh set per search (and per retry).
package dshard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"s3/internal/core"
)

// RemoteExecutor speaks the round protocol to one worker. It implements
// core.ShardExecutor; transport-class errors are remembered so the
// coordinator can attribute a failed search to the worker that broke,
// bench it and retry elsewhere. Deterministic application rejections
// (HTTP 400 — a malformed or oversized spec the worker validated and
// refused) are NOT recorded: every replica would reject them identically,
// so benching on them would let one bad request drain the whole fleet.
type RemoteExecutor struct {
	client   *http.Client
	base     string
	searchID uint64
	round    uint32
	begun    bool

	mu  sync.Mutex
	err error
}

// newRemoteExecutor binds a search id to a worker URL.
func newRemoteExecutor(client *http.Client, baseURL string, searchID uint64) *RemoteExecutor {
	return &RemoteExecutor{client: client, base: baseURL, searchID: searchID}
}

// Err returns the first transport-class error this executor hit (nil
// after a deterministic application rejection).
func (x *RemoteExecutor) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// setErr records a transport-class error; application rejections pass
// through without benching the worker.
func (x *RemoteExecutor) setErr(err error) error {
	var app *appError
	if errors.As(err, &app) {
		return err
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	return err
}

// appError marks a worker-side rejection that every replica would repeat
// (the worker validated the request and said no).
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// post sends one binary frame and returns the response frame.
func (x *RemoteExecutor) post(path string, frame []byte) ([]byte, error) {
	resp, err := x.client.Post(x.base+path, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("dshard: %s%s: %w", x.base, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameSize+1))
	if err != nil {
		return nil, fmt.Errorf("dshard: %s%s: reading response: %w", x.base, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := fmt.Sprintf("dshard: %s%s: HTTP %d", x.base, path, resp.StatusCode)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = fmt.Sprintf("dshard: %s%s: %s (HTTP %d)", x.base, path, e.Error, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusBadRequest {
			// Deterministic rejection: retrying on another replica (or
			// benching this one) cannot help.
			return nil, &appError{msg: msg}
		}
		return nil, fmt.Errorf("%s", msg)
	}
	return body, nil
}

// Begin implements core.ShardExecutor.
func (x *RemoteExecutor) Begin(spec core.SearchSpec) (core.BeginInfo, error) {
	body, err := x.post(pathBegin, encodeBeginRequest(beginRequest{searchID: x.searchID, spec: spec}))
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	info, err := decodeBeginInfo(body)
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	x.begun = true
	return info, nil
}

// Round implements core.ShardExecutor.
func (x *RemoteExecutor) Round() (core.RoundInfo, error) {
	body, err := x.post(pathRound, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round + 1}))
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	info, err := decodeRoundInfo(body)
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	x.round++
	return info, nil
}

// Finalize implements core.ShardExecutor.
func (x *RemoteExecutor) Finalize() (core.RoundInfo, error) {
	body, err := x.post(pathFinalize, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round}))
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	info, err := decodeRoundInfo(body)
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	return info, nil
}

// End implements core.ShardExecutor: best-effort release of the worker's
// session. The POST is fired asynchronously — the answer is already
// decided when End runs, and a hung worker must not stall the search's
// return (or a failover retry) on teardown; the worker's TTL sweeper
// catches anything the request fails to release.
func (x *RemoteExecutor) End() {
	if !x.begun {
		return
	}
	x.begun = false
	go func() {
		_, _ = x.post(pathEnd, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round}))
	}()
}
