// RemoteExecutor: core.ShardExecutor over the HTTP/binary round
// protocol. One instance drives one search on one worker; the
// coordinator creates a fresh set per search (and per retry).
package dshard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// rpc endpoint ordinals for the coordinator's per-endpoint instruments.
const (
	epBegin = iota
	epRound
	epFinalize
	epEnd
	epCount
)

var (
	epPaths = [epCount]string{pathBegin, pathRound, pathFinalize, pathEnd}
	epNames = [epCount]string{"begin", "round", "finalize", "end"}
)

// rpcMetrics holds the coordinator's per-endpoint wire instruments: round
// trip time plus bytes sent and received per protocol endpoint.
type rpcMetrics struct {
	seconds   [epCount]*obs.Histogram
	bytesSent [epCount]*obs.Counter
	bytesRecv [epCount]*obs.Counter
}

// newRPCMetrics registers the wire instruments in r (idempotent).
func newRPCMetrics(r *obs.Registry) *rpcMetrics {
	m := &rpcMetrics{}
	for ep := 0; ep < epCount; ep++ {
		lbl := obs.L("endpoint", epNames[ep])
		m.seconds[ep] = r.Histogram("s3_coord_rpc_seconds",
			"Round-trip time of one worker RPC, by protocol endpoint.", nil, lbl)
		m.bytesSent[ep] = r.Counter("s3_coord_rpc_bytes_total",
			"Wire bytes exchanged with workers, by endpoint and direction.", lbl, obs.L("direction", "sent"))
		m.bytesRecv[ep] = r.Counter("s3_coord_rpc_bytes_total",
			"Wire bytes exchanged with workers, by endpoint and direction.", lbl, obs.L("direction", "recv"))
	}
	return m
}

// observe records one finished RPC (nil-safe).
func (m *rpcMetrics) observe(ep int, start time.Time, sent, recv int) {
	if m == nil {
		return
	}
	m.seconds[ep].ObserveSince(start)
	m.bytesSent[ep].Add(uint64(sent))
	m.bytesRecv[ep].Add(uint64(recv))
}

// RemoteExecutor speaks the round protocol to one worker. It implements
// core.ShardExecutor; transport-class errors are remembered so the
// coordinator can attribute a failed search to the worker that broke,
// bench it and retry elsewhere. Deterministic application rejections
// (HTTP 400 — a malformed or oversized spec the worker validated and
// refused) are NOT recorded: every replica would reject them identically,
// so benching on them would let one bad request drain the whole fleet.
type RemoteExecutor struct {
	client   *http.Client
	base     string
	searchID uint64
	round    uint32
	begun    bool

	// traceID, when non-zero, asks the worker to record spans; span holds
	// the worker-side subtree decoded off the most recent response until
	// the coordinator's TakeSpan collects it.
	traceID uint64
	span    *obs.Span
	metrics *rpcMetrics

	mu  sync.Mutex
	err error
}

// newRemoteExecutor binds a search id to a worker URL.
func newRemoteExecutor(client *http.Client, baseURL string, searchID uint64) *RemoteExecutor {
	return &RemoteExecutor{client: client, base: baseURL, searchID: searchID}
}

// withTracing asks the worker to record spans under the given trace id
// (0 disables); withMetrics wires the coordinator's wire instruments.
func (x *RemoteExecutor) withTracing(traceID uint64) *RemoteExecutor {
	x.traceID = traceID
	return x
}

func (x *RemoteExecutor) withMetrics(m *rpcMetrics) *RemoteExecutor {
	x.metrics = m
	return x
}

// TakeSpan implements the coordinator's span collection: the worker-side
// span subtree decoded off the most recent response, cleared on read.
func (x *RemoteExecutor) TakeSpan() *obs.Span {
	sp := x.span
	x.span = nil
	return sp
}

// Err returns the first transport-class error this executor hit (nil
// after a deterministic application rejection).
func (x *RemoteExecutor) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// setErr records a transport-class error; application rejections pass
// through without benching the worker.
func (x *RemoteExecutor) setErr(err error) error {
	var app *appError
	if errors.As(err, &app) {
		return err
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	return err
}

// appError marks a worker-side rejection that every replica would repeat
// (the worker validated the request and said no).
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// post sends one binary frame to an endpoint and returns the response
// frame, recording RTT and wire bytes into the coordinator's instruments.
func (x *RemoteExecutor) post(ep int, frame []byte) ([]byte, error) {
	path := epPaths[ep]
	start := time.Now()
	resp, err := x.client.Post(x.base+path, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		x.metrics.observe(ep, start, len(frame), 0)
		return nil, fmt.Errorf("dshard: %s%s: %w", x.base, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameSize+1))
	x.metrics.observe(ep, start, len(frame), len(body))
	if err != nil {
		return nil, fmt.Errorf("dshard: %s%s: reading response: %w", x.base, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := fmt.Sprintf("dshard: %s%s: HTTP %d", x.base, path, resp.StatusCode)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = fmt.Sprintf("dshard: %s%s: %s (HTTP %d)", x.base, path, e.Error, resp.StatusCode)
		}
		if resp.StatusCode == http.StatusBadRequest {
			// Deterministic rejection: retrying on another replica (or
			// benching this one) cannot help.
			return nil, &appError{msg: msg}
		}
		return nil, fmt.Errorf("%s", msg)
	}
	return body, nil
}

// Begin implements core.ShardExecutor.
func (x *RemoteExecutor) Begin(spec core.SearchSpec) (core.BeginInfo, error) {
	callStart := time.Now()
	body, err := x.post(epBegin, encodeBeginRequest(beginRequest{searchID: x.searchID, spec: spec, traceID: x.traceID}))
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	info, sp, err := decodeBeginInfo(body, callStart)
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	x.span = sp
	x.begun = true
	return info, nil
}

// Round implements core.ShardExecutor.
func (x *RemoteExecutor) Round() (core.RoundInfo, error) {
	callStart := time.Now()
	body, err := x.post(epRound, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round + 1}))
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	info, sp, err := decodeRoundInfo(body, callStart)
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	x.span = sp
	x.round++
	return info, nil
}

// Finalize implements core.ShardExecutor.
func (x *RemoteExecutor) Finalize() (core.RoundInfo, error) {
	callStart := time.Now()
	body, err := x.post(epFinalize, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round}))
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	info, sp, err := decodeRoundInfo(body, callStart)
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	x.span = sp
	return info, nil
}

// End implements core.ShardExecutor: best-effort release of the worker's
// session. The POST is fired asynchronously — the answer is already
// decided when End runs, and a hung worker must not stall the search's
// return (or a failover retry) on teardown; the worker's TTL sweeper
// catches anything the request fails to release.
func (x *RemoteExecutor) End() {
	if !x.begun {
		return
	}
	x.begun = false
	go func() {
		_, _ = x.post(epEnd, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round}))
	}()
}
