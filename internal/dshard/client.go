// RemoteExecutor: core.ShardExecutor over the HTTP/binary round
// protocol. One instance drives one search on one worker; the
// coordinator creates a fresh set per search (and per retry).
//
// Against proto>=2 workers the executor fetches rounds through the
// batched /shard/v1/rounds endpoint: one RPC covers up to the
// coordinator's planned batch, the reply's per-round infos are buffered,
// and Round() hands them back one at a time — core.Coordinate replays
// every per-round stop decision locally, so answers are byte-identical
// to the per-round protocol. When speculation is allowed, the next batch
// is issued as soon as a reply arrives (the worker computes round r+1
// while the coordinator merges round r); a late stop wastes at most one
// in-flight batch, which End drains and counts.
package dshard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"s3/internal/core"
	"s3/internal/obs"
)

// rpc endpoint ordinals for the coordinator's per-endpoint instruments.
const (
	epBegin = iota
	epRound
	epFinalize
	epEnd
	epRounds
	epReplay
	epBeginSet
	epCount
)

var (
	epPaths = [epCount]string{pathBegin, pathRound, pathFinalize, pathEnd, pathRounds, pathReplay, pathBeginSet}
	epNames = [epCount]string{"begin", "round", "finalize", "end", "rounds", "replay", "beginset"}
)

// errNoRoundsEndpoint marks a 404/405 from a worker whose mux has no
// /shard/v1/rounds route (a pre-proto-2 binary): the worker is healthy,
// the extension is just absent, so the client falls back to per-round
// calls instead of benching it.
var errNoRoundsEndpoint = errors.New("dshard: worker has no batched rounds endpoint")

// errNoReplayEndpoint is the same capability signal for /shard/v1/replay
// (a pre-proto-3 binary): fast-forward falls back to fetching the rounds
// and discarding the results.
var errNoReplayEndpoint = errors.New("dshard: worker has no replay endpoint")

// errNoBeginSetEndpoint is the capability signal for /shard/v1/beginset
// (a pre-proto-4 binary): the coordinator latches the worker as
// set-incapable and re-plans the cover with per-shard sessions.
var errNoBeginSetEndpoint = errors.New("dshard: worker has no beginset endpoint")

// defaultMaxRoundBatch is CoordinatorConfig.MaxRoundBatch's default; it
// matches the coordinator loop's own adaptive cap (core's maxRoundBatch).
const defaultMaxRoundBatch = 16

// rpcMetrics holds the coordinator's per-endpoint wire instruments: round
// trip time plus bytes sent and received per protocol endpoint, the
// batched-RPC round count distribution and the speculation counters.
type rpcMetrics struct {
	seconds     [epCount]*obs.Histogram
	bytesSent   [epCount]*obs.Counter
	bytesRecv   [epCount]*obs.Counter
	batchRounds *obs.Histogram
	specIssued  *obs.Counter
	specWasted  *obs.Counter

	// Host-grouped session instruments: one rounds RPC per host advances
	// every shard the host serves, so the fan-in histogram is the direct
	// read on how much RPC amplification host grouping removed.
	hostSessions *obs.Counter
	hostSeconds  *obs.Histogram
	hostShards   *obs.Histogram

	// Proto-5 delta-framing instruments: the reply-size histogram prices
	// the wire savings, the per-mode round counters the delta hit ratio.
	replyBytes  *obs.Histogram
	deltaRounds *obs.Counter
	fullRounds  *obs.Counter
}

// newRPCMetrics registers the wire instruments in r (idempotent).
func newRPCMetrics(r *obs.Registry) *rpcMetrics {
	m := &rpcMetrics{}
	for ep := 0; ep < epCount; ep++ {
		lbl := obs.L("endpoint", epNames[ep])
		m.seconds[ep] = r.Histogram("s3_coord_rpc_seconds",
			"Round-trip time of one worker RPC, by protocol endpoint.", nil, lbl)
		m.bytesSent[ep] = r.Counter("s3_coord_rpc_bytes_total",
			"Wire bytes exchanged with workers, by endpoint and direction.", lbl, obs.L("direction", "sent"))
		m.bytesRecv[ep] = r.Counter("s3_coord_rpc_bytes_total",
			"Wire bytes exchanged with workers, by endpoint and direction.", lbl, obs.L("direction", "recv"))
	}
	m.batchRounds = r.Histogram("s3_coord_round_batch",
		"Lockstep rounds returned by one batched /shard/v1/rounds RPC.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	m.specIssued = r.Counter("s3_coord_spec_issued_total",
		"Speculative round RPCs issued ahead of the coordinator's stop decision.")
	m.specWasted = r.Counter("s3_coord_spec_wasted_total",
		"Fetched rounds discarded unconsumed because the search stopped first.")
	m.hostSessions = r.Counter("s3_coord_host_sessions_total",
		"Multi-shard host sessions established (one beginset covering 2+ shards).")
	m.hostSeconds = r.Histogram("s3_coord_host_rpc_seconds",
		"Round-trip time of one host-grouped rounds RPC (all co-hosted shards advanced at once).", nil)
	m.hostShards = r.Histogram("s3_coord_host_rpc_shards",
		"Shards advanced by one host-grouped rounds RPC (per-host round fan-in).",
		[]float64{1, 2, 4, 8, 16})
	m.replyBytes = r.Histogram("s3_coord_round_reply_bytes",
		"Body bytes of one rounds/finalize reply frame.",
		[]float64{64, 128, 256, 512, 1024, 4096, 16384, 65536})
	m.deltaRounds = r.Counter("s3_coord_delta_rounds_total",
		"Rounds decoded from worker replies, by framing mode.", obs.L("mode", "delta"))
	m.fullRounds = r.Counter("s3_coord_delta_rounds_total",
		"Rounds decoded from worker replies, by framing mode.", obs.L("mode", "full"))
	return m
}

// observe records one finished RPC (nil-safe).
func (m *rpcMetrics) observe(ep int, start time.Time, sent, recv int) {
	if m == nil {
		return
	}
	m.seconds[ep].ObserveSince(start)
	m.bytesSent[ep].Add(uint64(sent))
	m.bytesRecv[ep].Add(uint64(recv))
}

func (m *rpcMetrics) observeBatch(rounds int) {
	if m != nil {
		m.batchRounds.Observe(float64(rounds))
	}
}

// observeReply records one decoded rounds/finalize reply: its wire size
// and how many of its rounds were delta- vs. full-framed.
func (m *rpcMetrics) observeReply(bytes, deltaRounds, fullRounds int) {
	if m == nil {
		return
	}
	m.replyBytes.Observe(float64(bytes))
	if deltaRounds > 0 {
		m.deltaRounds.Add(uint64(deltaRounds))
	}
	if fullRounds > 0 {
		m.fullRounds.Add(uint64(fullRounds))
	}
}

func (m *rpcMetrics) addSpecIssued() {
	if m != nil {
		m.specIssued.Add(1)
	}
}

func (m *rpcMetrics) addSpecWasted(rounds int) {
	if m != nil && rounds > 0 {
		m.specWasted.Add(uint64(rounds))
	}
}

func (m *rpcMetrics) addHostSession() {
	if m != nil {
		m.hostSessions.Add(1)
	}
}

func (m *rpcMetrics) observeHostRPC(start time.Time, shards int) {
	if m != nil {
		m.hostSeconds.ObserveSince(start)
		m.hostShards.Observe(float64(shards))
	}
}

// newTransport returns an http.Transport tuned for the round protocol's
// hot path: a search multiplexes many small POST frames over one
// keep-alive connection per worker, so the pool must retain idle
// connections across rounds AND searches (per-worker headroom covers the
// async End post racing the next search's Begin). The membership probe
// shares this transport, which pre-warms every worker's connection before
// the first search dials.
func newTransport(workers int) *http.Transport {
	const perHost = 8
	if workers < 1 {
		workers = 1
	}
	return &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConnsPerHost: perHost,
		MaxIdleConns:        (workers + 1) * perHost,
		IdleConnTimeout:     90 * time.Second,
		// Frames are small binary bodies; advertising gzip only buys a
		// per-response header dance.
		DisableCompression: true,
	}
}

// roundsResult is one fetch's outcome: the executed rounds (at least one
// on success), the worker-side span subtree for the whole batch, and the
// error.
type roundsResult struct {
	infos []core.RoundInfo
	span  *obs.Span
	err   error
}

// RemoteExecutor speaks the round protocol to one worker. It implements
// core.ShardExecutor; transport-class errors are remembered so the
// coordinator can attribute a failed search to the worker that broke,
// bench it and retry elsewhere. Deterministic application rejections
// (HTTP 400 — a malformed or oversized spec the worker validated and
// refused) are NOT recorded: every replica would reject them identically,
// so benching on them would let one bad request drain the whole fleet.
type RemoteExecutor struct {
	client   *http.Client
	base     string
	searchID uint64
	round    uint32 // rounds consumed by the coordinator
	fetched  uint32 // rounds executed worker-side (>= round)
	begun    bool

	// ahead buffers fetched-but-unconsumed RoundInfos; pre, when non-nil,
	// is the single outstanding speculative fetch. Both are touched only
	// from the coordinator's (per-round) scatter goroutine and End.
	ahead []core.RoundInfo
	pre   chan roundsResult

	// batchHint / wantSpec are the coordinator loop's PlanRounds state;
	// batchCap is the configured per-RPC bound (<=0 disables the batched
	// endpoint entirely); noBatch, when non-nil, is the per-worker
	// "endpoint absent" latch shared across searches; budget, when
	// positive, ships as the begin frame's deadline to proto-2 workers.
	batchHint atomic.Int32
	wantSpec  atomic.Bool
	batchCap  int
	noBatch   *atomic.Bool
	budget    time.Duration

	// traceID, when non-zero, asks the worker to record spans; span holds
	// the worker-side subtree decoded off the most recent response until
	// the coordinator's TakeSpan collects it.
	traceID uint64
	span    *obs.Span
	metrics *rpcMetrics

	// ctx, when non-nil, scopes every RPC except End (cancelled searches
	// must still release worker sessions); rpcTimeout, when positive,
	// bounds each RPC individually. noReplay, when non-nil, is the
	// per-worker "no /shard/v1/replay" latch; lat, when non-nil, receives
	// round-fetch RTTs for the coordinator's hedge-delay estimate.
	ctx        context.Context
	rpcTimeout time.Duration
	noReplay   *atomic.Bool
	lat        *latRing

	// noDelta, when non-nil, is the per-worker "proto < 5" latch; nil
	// keeps requests flagless (full-block replies), which doubles as the
	// coordinator's delta A/B switch. codec holds the decode-side delta
	// shadow plus the reusable RoundInfo arenas; it also tracks full-block
	// replies so a live downgrade never desynchronizes the shadow.
	noDelta *atomic.Bool
	codec   *deltaCodec

	mu  sync.Mutex
	err error
}

var _ core.RoundPlanner = (*RemoteExecutor)(nil)

// newRemoteExecutor binds a search id to a worker URL.
func newRemoteExecutor(client *http.Client, baseURL string, searchID uint64) *RemoteExecutor {
	x := &RemoteExecutor{client: client, base: baseURL, searchID: searchID}
	x.batchHint.Store(1)
	x.codec = newDeltaCodec(1)
	return x
}

// withTracing asks the worker to record spans under the given trace id
// (0 disables); withMetrics wires the coordinator's wire instruments.
func (x *RemoteExecutor) withTracing(traceID uint64) *RemoteExecutor {
	x.traceID = traceID
	return x
}

func (x *RemoteExecutor) withMetrics(m *rpcMetrics) *RemoteExecutor {
	x.metrics = m
	return x
}

// withBatching wires the proto-2 capability: noBatch is the worker's
// "no /shard/v1/rounds" latch (probed from /healthz, re-latched on a
// live 404), cap bounds rounds per RPC (<=0 forces the per-round
// protocol), and budget ships as the begin deadline when the worker
// speaks proto 2.
func (x *RemoteExecutor) withBatching(noBatch *atomic.Bool, maxBatch int, budget time.Duration) *RemoteExecutor {
	x.noBatch = noBatch
	x.batchCap = maxBatch
	x.budget = budget
	return x
}

// withResilience scopes RPCs to ctx (End excepted), bounds each RPC to
// rpcTimeout when positive, wires the worker's replay-capability latch,
// and feeds round RTTs into lat for hedge-delay estimation.
func (x *RemoteExecutor) withResilience(ctx context.Context, rpcTimeout time.Duration, noReplay *atomic.Bool, lat *latRing) *RemoteExecutor {
	x.ctx = ctx
	x.rpcTimeout = rpcTimeout
	x.noReplay = noReplay
	x.lat = lat
	return x
}

// withDelta wires the proto-5 capability: noDelta is the worker's
// "proto < 5" latch (probed from /healthz). Leaving it nil — the
// default — keeps every request flagless, so the worker replies with
// classic full blocks.
func (x *RemoteExecutor) withDelta(noDelta *atomic.Bool) *RemoteExecutor {
	x.noDelta = noDelta
	return x
}

// deltaOK reports whether rounds/finalize requests should ask for
// proto-5 delta framing.
func (x *RemoteExecutor) deltaOK() bool {
	return x.noDelta != nil && !x.noDelta.Load()
}

// batchable reports whether the batched endpoint is currently usable.
func (x *RemoteExecutor) batchable() bool {
	return x.batchCap > 0 && (x.noBatch == nil || !x.noBatch.Load())
}

// PlanRounds implements core.RoundPlanner: the coordinator's hint for the
// next fetch, set before every scatter.
func (x *RemoteExecutor) PlanRounds(batch int, speculate bool) {
	if batch < 1 {
		batch = 1
	}
	x.batchHint.Store(int32(batch))
	x.wantSpec.Store(speculate)
}

// TakeSpan implements the coordinator's span collection: the worker-side
// span subtree decoded off the most recent response, cleared on read.
func (x *RemoteExecutor) TakeSpan() *obs.Span {
	sp := x.span
	x.span = nil
	return sp
}

// Err returns the first transport-class error this executor hit (nil
// after a deterministic application rejection).
func (x *RemoteExecutor) Err() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.err
}

// setErr records a transport-class error; application rejections pass
// through without benching the worker.
func (x *RemoteExecutor) setErr(err error) error {
	var app *appError
	if errors.As(err, &app) {
		return err
	}
	x.mu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.mu.Unlock()
	return err
}

// appError marks a worker-side rejection that every replica would repeat
// (the worker validated the request and said no).
type appError struct{ msg string }

func (e *appError) Error() string { return e.msg }

// post sends one binary frame to an endpoint and returns the response
// frame in a pooled buffer, recording RTT and wire bytes into the
// coordinator's instruments. The caller owns the returned *frameBuf and
// must putFrame it once the frame is decoded (every decoder copies what
// it keeps).
func (x *RemoteExecutor) post(ep int, frame []byte) (*frameBuf, error) {
	ctx := x.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return x.postCtx(ctx, ep, frame)
}

// postCtx is post under an explicit context (End's teardown must outlive
// a cancelled search context). Both directions carry a CRC-32C of the
// frame body: a corrupted reply is a transport error here — never a
// silently perturbed payload — so bit flips trigger failover instead of
// breaking byte-identity.
func (x *RemoteExecutor) postCtx(ctx context.Context, ep int, frame []byte) (*frameBuf, error) {
	path := epPaths[ep]
	if x.rpcTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, x.rpcTimeout)
		defer cancel()
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, x.base+path, bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("dshard: %s%s: %w", x.base, path, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(frameCRCHeader, frameCRC(frame))
	resp, err := x.client.Do(req)
	if err != nil {
		x.metrics.observe(ep, start, len(frame), 0)
		return nil, fmt.Errorf("dshard: %s%s: %w", x.base, path, err)
	}
	defer resp.Body.Close()
	fb := getFrame()
	body, err := readAllFrame(io.LimitReader(resp.Body, maxFrameSize+1), fb)
	x.metrics.observe(ep, start, len(frame), len(body))
	if err != nil {
		putFrame(fb)
		return nil, fmt.Errorf("dshard: %s%s: reading response: %w", x.base, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		defer putFrame(fb)
		msg := fmt.Sprintf("dshard: %s%s: HTTP %d", x.base, path, resp.StatusCode)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = fmt.Sprintf("dshard: %s%s: %s (HTTP %d)", x.base, path, e.Error, resp.StatusCode)
		} else if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			// A bare mux 404/405 (no JSON error body) on an extension
			// endpoint is an old worker, not a failure: signal fallback.
			switch ep {
			case epRounds:
				return nil, fmt.Errorf("%w (%s)", errNoRoundsEndpoint, msg)
			case epReplay:
				return nil, fmt.Errorf("%w (%s)", errNoReplayEndpoint, msg)
			case epBeginSet:
				return nil, fmt.Errorf("%w (%s)", errNoBeginSetEndpoint, msg)
			}
		}
		if resp.StatusCode == http.StatusBadRequest {
			// Deterministic rejection: retrying on another replica (or
			// benching this one) cannot help.
			return nil, &appError{msg: msg}
		}
		return nil, fmt.Errorf("%s", msg)
	}
	if err := checkFrameCRC(body, resp.Header.Get(frameCRCHeader)); err != nil {
		putFrame(fb)
		return nil, fmt.Errorf("dshard: %s%s: %w", x.base, path, err)
	}
	if x.lat != nil && (ep == epRound || ep == epRounds) {
		x.lat.add(time.Since(start))
	}
	fb.b = body
	return fb, nil
}

// Begin implements core.ShardExecutor.
func (x *RemoteExecutor) Begin(spec core.SearchSpec) (core.BeginInfo, error) {
	callStart := time.Now()
	br := beginRequest{searchID: x.searchID, spec: spec, traceID: x.traceID}
	if x.budget > 0 && x.batchable() {
		// Only proto-2 workers know the trailing deadline field; older
		// decoders reject trailing bytes. The grace keeps a worker from
		// sweeping the session out from under the coordinator's own
		// budget-stop finalize.
		br.deadlineMicros = uint64((x.budget + 2*time.Second).Microseconds())
	}
	fb, err := x.post(epBegin, encodeBeginRequest(br))
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	info, sp, err := decodeBeginInfo(fb.b, callStart)
	putFrame(fb)
	if err != nil {
		return core.BeginInfo{}, x.setErr(err)
	}
	x.span = sp
	x.begun = true
	return info, nil
}

// postRounds runs one batched fetch: up to n rounds starting at `from`.
func (x *RemoteExecutor) postRounds(from uint32, n int) roundsResult {
	start := time.Now()
	rr := roundsRequest{searchID: x.searchID, from: from, max: uint32(n)}
	if x.deltaOK() {
		rr.flags = reqFlagDelta
	}
	req := getFrame()
	req.b = appendRoundsRequest(req.b[:0], rr)
	fb, err := x.post(epRounds, req.b)
	putFrame(req)
	if err != nil {
		return roundsResult{err: err}
	}
	infos, sp, err := x.codec.decodeRounds(fb.b, start)
	nBytes := len(fb.b)
	putFrame(fb)
	if err != nil {
		return roundsResult{err: err}
	}
	x.metrics.observeBatch(len(infos))
	x.metrics.observeReply(nBytes, x.codec.lastDelta, x.codec.lastFull)
	return roundsResult{infos: infos, span: sp}
}

// fetch retrieves at least one round starting at `from`: batched against
// proto-2 workers (falling back — and latching the fallback — on a live
// 404), per-round otherwise. Safe to call from the prefetch goroutine:
// it touches only immutable fields, atomics and the wire.
func (x *RemoteExecutor) fetch(from uint32, batch int) roundsResult {
	if x.batchable() {
		n := batch
		if n > x.batchCap {
			n = x.batchCap
		}
		if n > maxBatchRounds {
			n = maxBatchRounds
		}
		res := x.postRounds(from, n)
		if !errors.Is(res.err, errNoRoundsEndpoint) {
			return res
		}
		if x.noBatch != nil {
			x.noBatch.Store(true)
		}
	}
	start := time.Now()
	fb, err := x.post(epRound, encodeRoundRequest(roundRequest{searchID: x.searchID, round: from}))
	if err != nil {
		return roundsResult{err: err}
	}
	info, sp, err := decodeRoundInfo(fb.b, start)
	putFrame(fb)
	if err != nil {
		return roundsResult{err: err}
	}
	// Keep the delta shadow tracking the per-round fallback path too, so a
	// later batched fetch may still delta against this round.
	x.codec.noteLegacy(0, info)
	return roundsResult{infos: []core.RoundInfo{info}, span: sp}
}

// fill lands the next batch of rounds in the buffer: the outstanding
// speculative fetch if one is in flight, a fresh fetch otherwise.
func (x *RemoteExecutor) fill() error {
	var res roundsResult
	if ch := x.pre; ch != nil {
		x.pre = nil
		res = <-ch
	} else {
		res = x.fetch(x.fetched+1, int(x.batchHint.Load()))
	}
	if res.err != nil {
		return x.setErr(res.err)
	}
	if len(res.infos) == 0 {
		return x.setErr(fmt.Errorf("dshard: %s: empty rounds reply", x.base))
	}
	x.ahead = res.infos
	x.fetched += uint32(len(res.infos))
	// The batch's span subtree is surfaced with its first consumed round.
	x.span = res.span
	return nil
}

// Round implements core.ShardExecutor: hand back the next buffered
// round, fetching (or collecting the speculative fetch) when the buffer
// is dry. Exactly one RoundInfo per call, in round order — the grouping
// of rounds into RPCs is invisible to the coordinator's stop logic.
//
// The speculative fetch is issued at the moment the buffer drains, not
// when a reply lands: the coordinator burns only merge time between
// draining the buffer and asking for the next round, so issuing earlier
// would buy microseconds of overlap — while sizing and gating the
// prefetch with a round-batch hint and a speculation permission that go
// a whole buffer stale. Late issue means both reflect the coordinator's
// stop outlook as of the round just handed back, which is what keeps a
// search that is visibly approaching its threshold from leaving a full
// speculative batch burning worker CPU behind the stop.
func (x *RemoteExecutor) Round() (core.RoundInfo, error) {
	if len(x.ahead) == 0 {
		x.span = nil
		if err := x.fill(); err != nil {
			return core.RoundInfo{}, err
		}
	}
	info := x.ahead[0]
	x.ahead = x.ahead[1:]
	x.round++
	if len(x.ahead) == 0 && x.pre == nil &&
		x.wantSpec.Load() && !info.Done && info.Tail >= 1e-15 {
		from, batch := x.fetched+1, int(x.batchHint.Load())
		ch := make(chan roundsResult, 1)
		x.pre = ch
		x.metrics.addSpecIssued()
		go func() {
			ch <- x.fetch(from, batch)
		}()
	}
	return info, nil
}

// buffered reports how many fetched rounds sit unconsumed in the buffer
// (failover must not replay rounds the coordinator never saw) and whether
// a speculative fetch is outstanding.
func (x *RemoteExecutor) buffered() (ahead int, speculating bool) {
	return len(x.ahead), x.pre != nil
}

// baseURL identifies the worker this connection talks to.
func (x *RemoteExecutor) baseURL() string { return x.base }

// hedgeable reports whether the failover layer may race this connection
// against a hedge replica; a dedicated per-shard session always may.
func (x *RemoteExecutor) hedgeable() bool { return true }

// replayable reports whether the worker advertises the proto-3 replay
// fast-forward.
func (x *RemoteExecutor) replayable() bool {
	return x.noReplay == nil || !x.noReplay.Load()
}

// FastForward advances a freshly begun session through rounds 1..upto,
// discarding the results: the failover path, replaying a consumed round
// history onto a replacement replica. Against proto-3 workers it loops
// the replay endpoint (one frame per maxWorkerBatch rounds); against
// older workers it falls back to fetching the rounds batched (or
// per-round) and dropping the infos. Either way the worker executes the
// identical FP operations the failed replica did, so the session state
// after the call is bit-identical to the original timeline's.
func (x *RemoteExecutor) FastForward(upto uint32) error {
	for x.round < upto {
		if x.replayable() {
			fb, err := x.post(epReplay, encodeReplayRequest(replayRequest{
				searchID: x.searchID, from: x.round + 1, upto: upto,
			}))
			if err == nil {
				rep, derr := decodeReplayReply(fb.b)
				putFrame(fb)
				if derr != nil {
					return x.setErr(derr)
				}
				if rep.round <= x.round || rep.round > upto {
					return x.setErr(fmt.Errorf("dshard: %s: replay moved session to round %d (was %d, want %d)",
						x.base, rep.round, x.round, upto))
				}
				x.round, x.fetched = rep.round, rep.round
				// Replay carries no round payload, so the worker resets its
				// delta shadow after replaying; mirror that here or the next
				// delta reply would reference state we never decoded.
				x.codec.reset()
				continue
			}
			if !errors.Is(err, errNoReplayEndpoint) {
				return x.setErr(err)
			}
			if x.noReplay != nil {
				x.noReplay.Store(true)
			}
		}
		res := x.fetch(x.round+1, int(upto-x.round))
		if res.err != nil {
			return x.setErr(res.err)
		}
		if len(res.infos) == 0 || x.round+uint32(len(res.infos)) > upto {
			return x.setErr(fmt.Errorf("dshard: %s: replay fallback returned %d rounds past target %d",
				x.base, len(res.infos), upto))
		}
		x.round += uint32(len(res.infos))
		x.fetched = x.round
	}
	return nil
}

// Finalize implements core.ShardExecutor. Every finalize-reaching stop
// (exhaustion, budget, precision) leaves the worker exactly at the
// consumed round: batches are capped at MaxIterations, budgeted searches
// run unbatched, and the worker itself stops a batch at exhaustion or
// the precision floor — so the buffer is empty here by construction.
func (x *RemoteExecutor) Finalize() (core.RoundInfo, error) {
	callStart := time.Now()
	rr := roundRequest{searchID: x.searchID, round: x.round}
	if x.deltaOK() {
		rr.flags = reqFlagDelta
	}
	fb, err := x.post(epFinalize, encodeRoundRequest(rr))
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	info, sp, err := x.codec.decodeFinalize(fb.b, callStart)
	nBytes := len(fb.b)
	putFrame(fb)
	if err != nil {
		return core.RoundInfo{}, x.setErr(err)
	}
	x.metrics.observeReply(nBytes, x.codec.lastDelta, x.codec.lastFull)
	x.span = sp
	return info, nil
}

// End implements core.ShardExecutor: best-effort release of the worker's
// session. The POST is fired asynchronously — the answer is already
// decided when End runs, and a hung worker must not stall the search's
// return (or a failover retry) on teardown. A still-in-flight speculative
// fetch is drained first (the worker serializes it with the session
// teardown anyway) and its rounds counted as speculation waste, along
// with any unconsumed buffer; the worker's TTL/deadline sweeper catches
// anything the request fails to release.
func (x *RemoteExecutor) End() {
	if !x.begun {
		return
	}
	x.begun = false
	pre := x.pre
	x.pre = nil
	wasted := len(x.ahead)
	x.ahead = nil
	go func() {
		if pre != nil {
			if res := <-pre; res.err == nil {
				wasted += len(res.infos)
			}
		}
		x.metrics.addSpecWasted(wasted)
		// The session must be released even when the search's context was
		// cancelled (client disconnect) or the executor failed over away
		// from this worker: End always runs on its own bounded context.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fb, _ := x.postCtx(ctx, epEnd, encodeRoundRequest(roundRequest{searchID: x.searchID, round: x.round}))
		putFrame(fb)
	}()
}
