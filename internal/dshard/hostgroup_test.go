// Host-grouping property suite: a coordinator over multi-shard worker
// processes (one shared proximity iterator per host, one rounds RPC per
// host per batch) must answer byte-identically to the in-process sharded
// engine across every way of packing shards onto hosts — and a host that
// dies mid-search must fail over every shard it carried, with replay
// keeping the answer exact.
package dshard

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/faultnet"
	"s3/internal/score"
	"s3/internal/snap"
)

// startHostWorkers boots one worker process per host, each hosting the
// given shard group off a single substrate mapping, and returns the host
// URLs plus a shutdown func.
func startHostWorkers(t testing.TB, manifestPath string, groups [][]int, mode snap.LoadMode) ([]string, func()) {
	t.Helper()
	urls := make([]string, len(groups))
	var servers []*httptest.Server
	for i, g := range groups {
		w := NewWorker(WorkerConfig{ManifestPath: manifestPath, Shards: g, Mode: mode})
		if err := w.Load(); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		urls[i] = srv.URL
	}
	return urls, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// hostGroupings enumerates the ways this suite packs n shards onto
// hosts: everything co-hosted, split in halves, and interleaved.
func hostGroupings(n int) [][][]int {
	switch n {
	case 1:
		return [][][]int{{{0}}}
	case 2:
		return [][][]int{{{0, 1}}, {{0}, {1}}}
	case 4:
		return [][][]int{
			{{0, 1}, {2, 3}},
			{{0, 2}, {1, 3}},
			{{0, 1, 2, 3}},
		}
	default:
		return nil
	}
}

// TestHostGroupedEqualsSharded is the tentpole acceptance property: a
// coordinator over host-grouped workers — shards packed onto processes
// in several arrangements — answers byte-identically to core.ShardedEngine
// over the same set, across datasets × N ∈ {1, 2, 4}, cold and warm.
func TestHostGroupedEqualsSharded(t *testing.T) {
	for name, spec := range datasets(t) {
		in, ix := buildInstance(t, spec)
		for _, n := range []int{1, 2, 4} {
			manifestPath := writeSet(t, in, ix, n)
			set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
			if err != nil {
				t.Fatal(err)
			}
			engines := make([]*core.Engine, n)
			for i := 0; i < n; i++ {
				engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
			}
			se, err := core.NewShardedEngine(engines)
			if err != nil {
				t.Fatal(err)
			}

			for gi, groups := range hostGroupings(n) {
				urls, stop := startHostWorkers(t, manifestPath, groups, snap.LoadMmap)
				coord := newCoordinator(t, set.Set.Layout, urls)

				seekers, kwSets := queries(in)
				for _, label := range []string{"cold", "warm"} {
					checked := 0
					for _, seeker := range seekers {
						for _, kws := range kwSets {
							opts := core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}}
							rs, sstats, err := se.Search(seeker, kws, opts)
							if err != nil {
								t.Fatal(err)
							}
							groupsKw, possible, err := core.ResolveKeywordGroups(in, kws)
							if err != nil {
								t.Fatal(err)
							}
							if !possible {
								continue
							}
							want := engineTranscript(rs, sstats)
							sspec := core.SearchSpec{Seeker: seeker, Groups: groupsKw, K: 5, Params: opts.Params, Epsilon: 1e-12}
							sel, dstats, err := coord.Search(sspec, core.CoordOptions{})
							if err != nil {
								t.Fatalf("%s n=%d groups=%v %s: host-grouped search: %v", name, n, groups, label, err)
							}
							if got := metaTranscript(sel, dstats); got != want {
								t.Fatalf("%s n=%d groups=%v %s seeker=%d kws=%v: host-grouped answer diverged\nsharded:\n%s\ndistributed:\n%s",
									name, n, groups, label, seeker, kws, want, got)
							}
							checked++
						}
					}
					if checked == 0 {
						t.Fatalf("%s n=%d grouping %d %s: no queries checked", name, n, gi, label)
					}
				}
				stop()
			}
			set.Close()
		}
	}
}

// scrapeCounter fetches a worker's /metrics and returns the value of an
// unlabeled counter line ("name value").
func scrapeCounter(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found on %s", name, baseURL)
	return 0
}

// TestHostSharedIteratorSteps pins the tentpole mechanism in /metrics:
// with both shards co-hosted, the worker steps ONE shared proximity
// iterator per round — exactly half the steps two single-shard hosts
// spend answering the same queries. Speculation is disabled so both
// topologies execute the identical round schedule (byte-identity
// guarantees the same rounds; speculation would add timing-dependent
// extras).
func TestHostSharedIteratorSteps(t *testing.T) {
	in, ix := buildInstance(t, smallSpec())
	manifestPath := writeSet(t, in, ix, 2)
	m, err := snap.OpenManifest(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}

	run := func(groups [][]int) (steps, rounds float64, urls []string) {
		u, stop := startHostWorkers(t, manifestPath, groups, snap.LoadMmap)
		defer stop()
		c, err := NewCoordinator(CoordinatorConfig{
			WorkerURLs: u, ShardCount: len(m.Layout.Shards), SetID: m.Layout.SetID,
			Client:        &http.Client{Timeout: 10 * time.Second},
			NoSpeculation: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Probe(context.Background()); err != nil {
			t.Fatal(err)
		}
		seekers, kwSets := queries(in)
		for _, seeker := range seekers {
			for _, kws := range kwSets {
				groupsKw, possible, err := core.ResolveKeywordGroups(in, kws)
				if err != nil || !possible {
					continue
				}
				spec := core.SearchSpec{Seeker: seeker, Groups: groupsKw, K: 5,
					Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
				if _, _, err := c.Search(spec, core.CoordOptions{}); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, url := range u {
			steps += scrapeCounter(t, url, "s3_worker_iter_steps_total")
			rounds += scrapeCounter(t, url, "s3_worker_shard_rounds_total")
		}
		return steps, rounds, u
	}

	sharedSteps, sharedRounds, _ := run([][]int{{0, 1}})
	splitSteps, splitRounds, _ := run([][]int{{0}, {1}})

	if sharedSteps <= 0 {
		t.Fatal("co-hosted worker recorded no iterator steps")
	}
	// Steps are counted once per executed round for the WHOLE host: each
	// member's work counter can tick at most once per step, and with two
	// members sharing rounds the work total must exceed the step total.
	if sharedRounds > 2*sharedSteps {
		t.Errorf("impossible fan-out: %v member rounds from %v shared steps (max 2 per step)",
			sharedRounds, sharedSteps)
	}
	if sharedRounds <= sharedSteps {
		t.Errorf("no sharing observed: %v member rounds from %v steps — each step should feed both shards",
			sharedRounds, sharedSteps)
	}
	// The headline: the co-hosted topology steps its one shared iterator
	// roughly once where the split topology steps twice. Batch overshoot
	// differs between the two (a host batch stops as soon as ANY member
	// trips), so assert "measurably fewer", not exact halving.
	if 3*sharedSteps > 2*splitSteps {
		t.Errorf("shared iterator not measurably cheaper: co-hosted %v steps vs split hosts %v",
			sharedSteps, splitSteps)
	}
	if splitRounds < sharedRounds {
		t.Errorf("split topology did less round work (%v) than co-hosted (%v)", splitRounds, sharedRounds)
	}
}

// TestHostSharedProxCacheBudget pins per-process proximity-cache
// budgeting: a worker hosting two shards keeps ONE checkpoint per seeker
// (not one per hosted shard), serves warm resumes from it, and respects
// a halved byte budget across the traffic of both shards.
func TestHostSharedProxCacheBudget(t *testing.T) {
	in, ix := buildInstance(t, smallSpec())
	manifestPath := writeSet(t, in, ix, 2)
	m, err := snap.OpenManifest(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	seekers, kwSets := queries(in)

	runPasses := func(proxBytes int64, passes int) (w *Worker, url string) {
		w = NewWorker(WorkerConfig{ManifestPath: manifestPath, Shards: []int{0, 1},
			Mode: snap.LoadMmap, ProxCacheBytes: proxBytes})
		if err := w.Load(); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		coord := newCoordinator(t, m.Layout, []string{srv.URL})
		for p := 0; p < passes; p++ {
			for _, seeker := range seekers {
				for _, kws := range kwSets {
					groupsKw, possible, err := core.ResolveKeywordGroups(in, kws)
					if err != nil || !possible {
						continue
					}
					spec := core.SearchSpec{Seeker: seeker, Groups: groupsKw, K: 5,
						Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
					if _, _, err := coord.Search(spec, core.CoordOptions{}); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Ends are posted asynchronously; checkpoints publish when the
			// session closes, so settle before reading the cache.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := w.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
		}
		return w, srv.URL
	}

	_, url := runPasses(0, 2) // default budget, cold + warm pass
	entries := scrapeCounter(t, url, "s3_proxcache_entries")
	bytes := scrapeCounter(t, url, "s3_proxcache_bytes")
	hits := scrapeCounter(t, url, "s3_proxcache_hits_total")
	warm := scrapeCounter(t, url, "s3_worker_warm_resumes_total")
	if entries <= 0 || bytes <= 0 {
		t.Fatalf("no checkpoints cached (entries=%v bytes=%v)", entries, bytes)
	}
	// One shared exploration per seeker for the WHOLE host — co-hosting a
	// second shard must not double the cache population.
	if int(entries) > len(seekers) {
		t.Errorf("cache holds %v entries for %d seekers — expected one per seeker, not per hosted shard",
			entries, len(seekers))
	}
	if hits <= 0 || warm <= 0 {
		t.Errorf("warm pass over a co-hosted worker resumed nothing (hits=%v warm_resumes=%v)", hits, warm)
	}

	// Halve the budget: both shards' traffic shares it, and the cache
	// must stay under it.
	halved := int64(bytes) / 2
	if halved < 1 {
		t.Fatalf("cache too small to halve (%v bytes)", bytes)
	}
	_, url2 := runPasses(halved, 2)
	if b := scrapeCounter(t, url2, "s3_proxcache_bytes"); int64(b) > halved {
		t.Errorf("halved budget exceeded: %v bytes cached, budget %d", b, halved)
	}
}

// TestChaosKillMultiShardWorker kills the round endpoints of a worker
// hosting BOTH shards after its f-th round RPC: every shard it carried
// must fail over to the surviving host (re-begin + replay) and the
// answer must stay byte-identical.
func TestChaosKillMultiShardWorker(t *testing.T) {
	in, ix := buildInstance(t, smallSpec())
	manifestPath := writeSet(t, in, ix, 2)
	set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	qs := chaosQueries(t, set)

	for _, after := range []int{0, 1, 2, 4} {
		// Two hosts, each hosting both shards (replicas of each other).
		urls, stop := startHostWorkers(t, manifestPath, [][]int{{0, 1}, {0, 1}}, snap.LoadMmap)
		ft := faultnet.NewTransport(newTransport(len(urls)), uint64(after)+100)
		victim := hostOf(t, urls[0])
		for _, path := range []string{pathRound, pathRounds, pathReplay} {
			ft.Add(&faultnet.Rule{Host: victim, Path: path, After: after, Action: faultnet.Reset})
		}
		coord := chaosCoordinator(t, set, urls, ft, 2*time.Second)
		for qi, q := range qs {
			sel, stats, err := coord.Search(q.spec, core.CoordOptions{})
			if err != nil {
				t.Fatalf("after=%d query %d: %v", after, qi, err)
			}
			if got := metaTranscript(sel, stats); got != q.want {
				t.Fatalf("after=%d query %d: answer diverged after multi-shard host kill\nwant:\n%s\ngot:\n%s",
					after, qi, q.want, got)
			}
		}
		// The dead host carried both shards of at least one search: each
		// one fails over independently.
		if f := coord.failovers.Load(); f < 2 {
			t.Errorf("after=%d: multi-shard host killed but only %d failovers recorded (want >= 2)", after, f)
		}
		stop()
	}
}
