package dshard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/snap"
	"s3/internal/text"
)

// buildInstance assembles a dataset into a frozen instance + index.
func buildInstance(t testing.TB, spec graph.Spec) (*graph.Instance, *index.Index) {
	t.Helper()
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return in, index.Build(in)
}

// writeSet persists a shard set for the instance and returns the
// manifest path.
func writeSet(t testing.TB, in *graph.Instance, ix *index.Index, n int) string {
	t.Helper()
	parts, err := graph.PartitionComponents(in, n)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.set")
	if _, err := snap.WriteShardSetFiles(path, in, ix, parts); err != nil {
		t.Fatal(err)
	}
	return path
}

// startWorkers boots one worker HTTP server per shard and returns their
// URLs plus a shutdown func.
func startWorkers(t testing.TB, manifestPath string, n int, mode snap.LoadMode) ([]string, func()) {
	t.Helper()
	urls := make([]string, n)
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{ManifestPath: manifestPath, Shard: i, Mode: mode})
		if err := w.Load(); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		urls[i] = srv.URL
	}
	return urls, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// newCoordinator wires and probes a coordinator over the workers.
func newCoordinator(t testing.TB, layout *snap.Layout, urls []string) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		WorkerURLs: urls,
		ShardCount: len(layout.Shards),
		SetID:      layout.SetID,
		Client:     &http.Client{Timeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Probe(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

// transcript renders an answer and its stats with exact float bits so
// distributed and in-process runs can be compared byte for byte.
func transcript(docs []graph.NID, lowers, uppers []float64, stats core.Stats) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "reason=%s iter=%d reached=%d matched=%d admitted=%d cands=%d\n",
		stats.Reason, stats.Iterations, stats.NodesReached,
		stats.ComponentsMatched, stats.ComponentsReached, stats.Candidates)
	for i, d := range docs {
		fmt.Fprintf(&b, "%d %x %x\n", d, math.Float64bits(lowers[i]), math.Float64bits(uppers[i]))
	}
	return b.String()
}

func engineTranscript(rs []core.Result, stats core.Stats) string {
	docs := make([]graph.NID, len(rs))
	lo := make([]float64, len(rs))
	hi := make([]float64, len(rs))
	for i, r := range rs {
		docs[i], lo[i], hi[i] = r.Doc, r.Lower, r.Upper
	}
	return transcript(docs, lo, hi, stats)
}

func metaTranscript(sel []core.CandMeta, stats core.Stats) string {
	docs := make([]graph.NID, len(sel))
	lo := make([]float64, len(sel))
	hi := make([]float64, len(sel))
	for i, c := range sel {
		docs[i], lo[i], hi[i] = c.Doc, c.Lower, c.Upper
	}
	return transcript(docs, lo, hi, stats)
}

// queries picks rare/mid/common keywords (single and conjunctive) plus a
// no-match query for the first few users.
func queries(in *graph.Instance) (seekers []graph.NID, kwSets [][]string) {
	kws := in.SortedKeywordsByFrequency()
	var picks []string
	for _, i := range []int{0, len(kws) / 2, len(kws) - 1} {
		if len(kws) > 0 {
			picks = append(picks, in.Dict().String(kws[i]))
		}
	}
	for _, kw := range picks {
		kwSets = append(kwSets, []string{kw})
	}
	if len(picks) >= 2 {
		kwSets = append(kwSets, []string{picks[1], picks[2]})
	}
	users := in.Users()
	for s := 0; s < len(users) && s < 3; s++ {
		seekers = append(seekers, users[s])
	}
	return seekers, kwSets
}

// datasets returns the test corpora: two generators with different
// structure (a microblog and a review graph).
func datasets(t testing.TB) map[string]graph.Spec {
	t.Helper()
	to := datagen.DefaultTwitterOptions()
	to.Users, to.Tweets, to.Seed = 60, 220, 21
	tspec, _ := datagen.Twitter(to)
	vo := datagen.DefaultVodkasterOptions()
	vo.Users, vo.Movies, vo.Seed = 40, 60, 9
	vspec := datagen.Vodkaster(vo)
	return map[string]graph.Spec{"twitter": tspec, "vodkaster": vspec}
}

// TestDistributedEqualsSharded is the acceptance property: a coordinator
// over N worker processes answers byte-identically — documents, order,
// score intervals and termination stats — to core.ShardedEngine over the
// same shard set, across datasets × N ∈ {1, 2, 4}.
func TestDistributedEqualsSharded(t *testing.T) {
	for name, spec := range datasets(t) {
		in, ix := buildInstance(t, spec)
		for _, n := range []int{1, 2, 4} {
			manifestPath := writeSet(t, in, ix, n)
			set, err := snap.OpenShardSet(manifestPath, snap.LoadCopy)
			if err != nil {
				t.Fatal(err)
			}
			engines := make([]*core.Engine, n)
			for i := 0; i < n; i++ {
				engines[i] = core.NewEngine(set.Set.Shards[i], set.Set.Indexes[i])
			}
			se, err := core.NewShardedEngine(engines)
			if err != nil {
				t.Fatal(err)
			}

			urls, stop := startWorkers(t, manifestPath, n, snap.LoadMmap)
			// Default coordinator (batched + pipelined rounds) and a legacy
			// one speaking the per-round v1 protocol only: both must equal
			// the in-process sharded engine byte for byte, and so must a
			// second, warm pass resuming the workers' cached frontiers.
			coord := newCoordinator(t, set.Set.Layout, urls)
			legacy, err := NewCoordinator(CoordinatorConfig{
				WorkerURLs:    urls,
				ShardCount:    len(set.Set.Layout.Shards),
				SetID:         set.Set.Layout.SetID,
				Client:        &http.Client{Timeout: 10 * time.Second},
				MaxRoundBatch: -1,
				NoSpeculation: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := legacy.Probe(context.Background()); err != nil {
				t.Fatal(err)
			}

			seekers, kwSets := queries(in)
			for pass, label := range []string{"cold", "warm"} {
				checked := 0
				for _, seeker := range seekers {
					for _, kws := range kwSets {
						opts := core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}}
						rs, sstats, err := se.Search(seeker, kws, opts)
						if err != nil {
							t.Fatal(err)
						}
						groups, possible, err := core.ResolveKeywordGroups(in, kws)
						if err != nil {
							t.Fatal(err)
						}
						if !possible {
							continue
						}
						want := engineTranscript(rs, sstats)
						spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: opts.Params, Epsilon: 1e-12}
						for cname, c := range map[string]*Coordinator{"batched": coord, "legacy": legacy} {
							sel, dstats, err := c.Search(spec, core.CoordOptions{})
							if err != nil {
								t.Fatalf("%s n=%d %s/%s: distributed search: %v", name, n, label, cname, err)
							}
							if got := metaTranscript(sel, dstats); got != want {
								t.Fatalf("%s n=%d %s/%s seeker=%d kws=%v: distributed answer diverged\nsharded:\n%s\ndistributed:\n%s",
									name, n, label, cname, seeker, kws, want, got)
							}
						}
						checked++
					}
				}
				if checked == 0 {
					t.Fatalf("%s n=%d pass=%d: no queries checked", name, n, pass)
				}
			}
			stop()
			set.Close()
		}
	}
}

// TestCoordinatorRetryAndMembership exercises replica failover: two
// replicas per shard, one of them killed mid-fleet — searches must
// retry onto the survivors, and the dead replica must be benched.
func TestCoordinatorRetryAndMembership(t *testing.T) {
	to := datagen.DefaultTwitterOptions()
	to.Users, to.Tweets, to.Seed = 50, 160, 5
	spec, _ := datagen.Twitter(to)
	in, ix := buildInstance(t, spec)
	manifestPath := writeSet(t, in, ix, 2)
	m, err := snap.OpenManifest(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}

	// Two replicas per shard.
	urlsA, stopA := startWorkers(t, manifestPath, 2, snap.LoadMmap)
	urlsB, stopB := startWorkers(t, manifestPath, 2, snap.LoadMmap)
	defer stopB()
	coord := newCoordinator(t, m.Layout, append(append([]string{}, urlsA...), urlsB...))

	seekers, kwSets := queries(in)
	groups, possible, err := core.ResolveKeywordGroups(in, kwSets[0])
	if err != nil || !possible {
		t.Fatal("unusable query")
	}
	sspec := core.SearchSpec{Seeker: seekers[0], Groups: groups, K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}
	want, _, err := coord.Search(sspec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Kill replica set A. Searches keep succeeding on B (retries bench
	// the dead workers after their first failure).
	stopA()
	for i := 0; i < 6; i++ {
		got, _, err := coord.Search(sspec, core.CoordOptions{})
		if err != nil {
			t.Fatalf("search %d after replica kill: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("answer changed after failover: %d vs %d results", len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("answer changed after failover at %d", j)
			}
		}
	}
	// Recovery may happen as an in-executor failover (mid-search) or as a
	// whole-search retry (failure before the first round); either way the
	// coordinator must have recorded the recovery work.
	if coord.retries.Load() == 0 && coord.failovers.Load() == 0 {
		t.Error("no retries or failovers recorded after killing a replica set")
	}
	st := coord.Stats()
	healthy := 0
	for _, w := range st.Workers {
		if w.Healthy {
			healthy++
		}
	}
	if healthy > 2 {
		t.Errorf("%d workers healthy after killing two", healthy)
	}
}

// TestWorkerLifecycleStates covers readiness semantics: loading and
// draining workers answer /healthz with 503 and refuse new searches,
// and a probe excludes them from membership.
func TestWorkerLifecycleStates(t *testing.T) {
	to := datagen.DefaultTwitterOptions()
	to.Users, to.Tweets, to.Seed = 30, 90, 2
	spec, _ := datagen.Twitter(to)
	in, ix := buildInstance(t, spec)
	manifestPath := writeSet(t, in, ix, 1)
	m, err := snap.OpenManifest(manifestPath, snap.LoadCopy)
	if err != nil {
		t.Fatal(err)
	}

	w := NewWorker(WorkerConfig{ManifestPath: manifestPath, Shard: 0, Mode: snap.LoadCopy})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	get := func() (int, healthzBody) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hb healthzBody
		if err := jsonDecode(resp, &hb); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, hb
	}
	if code, hb := get(); code != http.StatusServiceUnavailable || hb.Status != "loading" {
		t.Fatalf("loading worker: %d %q", code, hb.Status)
	}
	// A probe over a loading worker must fail coverage.
	c, err := NewCoordinator(CoordinatorConfig{WorkerURLs: []string{srv.URL}, ShardCount: 1, SetID: m.Layout.SetID})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Probe(context.Background()); err == nil {
		t.Error("probe accepted a loading worker")
	}

	if err := w.Load(); err != nil {
		t.Fatal(err)
	}
	if code, hb := get(); code != http.StatusOK || hb.Status != "serving" {
		t.Fatalf("serving worker: %d %q", code, hb.Status)
	}
	if err := c.Probe(context.Background()); err != nil {
		t.Errorf("probe rejected a serving worker: %v", err)
	}

	// Reload keeps serving and bumps the generation.
	resp, err := http.Post(srv.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: HTTP %d", resp.StatusCode)
	}
	if _, hb := get(); hb.Version != 2 {
		t.Fatalf("version after reload = %d, want 2", hb.Version)
	}

	w.SetDraining()
	if code, hb := get(); code != http.StatusServiceUnavailable || hb.Status != "draining" {
		t.Fatalf("draining worker: %d %q", code, hb.Status)
	}
	if err := c.Probe(context.Background()); err == nil {
		t.Error("probe accepted a draining worker")
	}
	// New searches are refused while draining.
	groups, _, err := core.ResolveKeywordGroups(in, []string{in.Dict().String(in.SortedKeywordsByFrequency()[0])})
	if err != nil {
		t.Fatal(err)
	}
	re := newRemoteExecutor(http.DefaultClient, srv.URL, 42)
	if _, err := re.Begin(core.SearchSpec{Seeker: in.Users()[0], Groups: groups, K: 3, Params: score.Params{Gamma: 1.5, Eta: 0.8}, Epsilon: 1e-12}); err == nil {
		t.Error("draining worker accepted a new search")
	}
}

// TestWireRoundTrip pushes representative frames through the codec: the
// decode of an encode must reproduce every field bit for bit.
func TestWireRoundTrip(t *testing.T) {
	br := beginRequest{
		searchID: 7,
		spec: core.SearchSpec{
			Seeker: 3, K: 10,
			Params:  score.Params{Gamma: 1.25, Eta: 0.8},
			Epsilon: 1e-12,
			Groups:  [][]dict.ID{{1, 2, 9}, {42}},
		},
	}
	gotBR, err := decodeBeginRequest(encodeBeginRequest(br))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", gotBR) != fmt.Sprintf("%+v", br) {
		t.Fatalf("begin request round trip: %+v != %+v", gotBR, br)
	}

	bi := core.BeginInfo{Matched: 3, GroupMasses: [][]int32{{5, 0, 7}, {2}}}
	gotBI, _, err := decodeBeginInfo(encodeBeginInfo(bi), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", gotBI) != fmt.Sprintf("%+v", bi) {
		t.Fatalf("begin info round trip: %+v != %+v", gotBI, bi)
	}

	ri := core.RoundInfo{
		Kept:      []core.CandMeta{{Doc: 4, Lower: 0.25, Upper: 0.5}, {Doc: 9, Lower: 0, Upper: 0.5}},
		Uncertain: &core.CandMeta{Doc: 11, Lower: 0.1, Upper: 0.3},
		MaxOther:  0.125, Admitted: 2, Candidates: 6, Reached: 19,
		N: 3, Tail: math.Pow(1.5, -4), SourceTail: math.Pow(1.5, -3), Done: false,
	}
	gotRI, _, err := decodeRoundInfo(encodeRoundInfo(ri), time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if gotRI.Uncertain == nil || *gotRI.Uncertain != *ri.Uncertain {
		t.Fatalf("round info uncertain round trip: %+v != %+v", gotRI.Uncertain, ri.Uncertain)
	}
	gotFlat, riFlat := gotRI, ri
	gotFlat.Uncertain, riFlat.Uncertain = nil, nil
	if fmt.Sprintf("%+v", gotFlat) != fmt.Sprintf("%+v", riFlat) {
		t.Fatalf("round info round trip: %+v != %+v", gotFlat, riFlat)
	}

	// Truncated and trailing-garbage frames are rejected.
	frame := encodeRoundInfo(ri)
	if _, _, err := decodeRoundInfo(frame[:len(frame)-3], time.Now()); err == nil {
		t.Error("truncated round frame accepted")
	}
	if _, _, err := decodeRoundInfo(append(bytes.Clone(frame), 0), time.Now()); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
