// Delta round framing (proto 5).
//
// Between lockstep rounds a shard's RoundInfo barely changes: the kept
// top-k is usually the same docs with the same lower bounds and a few
// tightened uppers, the cumulative counters advance by small amounts, and
// every co-hosted shard shares the round's N/Reached/Tail/SourceTail/Done
// scalars (they all derive from the host's single proximity iterator).
// Full-block framing re-ships all of it as fixed-width u32/f64 fields
// every round. The delta frame instead encodes each round against the
// session's previous round:
//
//	u32 deltaMagic
//	u32 rounds                  1..maxBatchRounds (exactly 1 on finalize)
//	u32 nShards                 must equal the session's member count
//	per round:
//	  u8  mode                  0 = full (nShards legacy RoundInfo bodies)
//	                            1 = delta:
//	  u8  sharedFlags           bit0 Done, bit1 TailSame, bit2 SourceTailSame
//	  uv  dN, dReached          diffs of the shared cumulative counters
//	  xf64 Tail, SourceTail     each only when its Same bit is clear
//	  per shard:
//	    u8  blockFlags          bit0 UncPresent, bit1 UncSame,
//	                            bit2 MaxOtherSame, bit3 KeptSame,
//	                            bit4 UncDocSame
//	    uv  dAdmitted, dCandidates
//	    xf64 MaxOther           only when !MaxOtherSame
//	    kept list               only when !KeptSame:
//	      uv nKept
//	      per entry: uv tag
//	        tag 0:   sv docDelta (vs. running previous doc), f64 lower, upper
//	        tag j+1: back-reference to previous round's kept[j];
//	                 u8 refFlags (bit0 lower changed, bit1 upper changed),
//	                 then the changed bounds as xf64 vs. that entry's
//	    uncertain               only when UncPresent && !UncSame:
//	      UncDocSame:           same doc as the previous round's uncertain,
//	                            bounds moved — u8 refFlags, changed xf64s
//	                            vs. the previous uncertain's
//	      else:                 u32 doc, f64 lower, f64 upper
//	optional trailing span block
//
// xf64 is a float64 XOR-delta against a base float the decoder's shadow
// already holds bit-exactly: the 8 XOR bytes with leading and trailing
// zero bytes trimmed, prefixed by one header byte packing the trailing
// (low-order) zero-byte count T in the high nibble and the significant
// byte count S in the low one (S >= 1, T+S <= 8). Successive bound
// tightenings share sign, exponent and high mantissa bits, so the XOR's
// value usually fits a few bytes; a fully-churned float costs at most one
// byte over a raw f64. XOR of exact bit patterns reconstructs exact bit
// patterns, so xf64 never perturbs a float.
//
// Both ends keep a shadow of the session's last round per member shard —
// the worker updates its shadows as it encodes, the coordinator as it
// decodes — so a back-reference always resolves to the exact bits the
// peer already holds. Unchanged floats are copied from the shadow, never
// re-derived, which is what keeps reconstructed RoundInfos byte-identical
// to full framing. A round that cannot be delta-encoded (first round
// after begin or replay, a counter that moved backwards, an implausibly
// large diff) is framed full in place, per round, via the mode byte.
//
// The magic word makes the framing self-identifying inside the
// CRC-protected body: a legacy rounds reply starts with a round count
// <= maxBatchRounds, a legacy finalize reply with a flags byte <= 3, and
// a legacy host reply with a shard count <= maxHostShards, so none of
// them can start with 0xFFFFFFFF. The coordinator therefore decodes
// whatever framing the worker actually used and a worker that stops
// speaking deltas mid-search downgrades to full blocks in place.
package dshard

import (
	"encoding/binary"
	"math"
	"math/bits"
	"time"

	"s3/internal/core"
	"s3/internal/graph"
	"s3/internal/obs"
)

// deltaMagic leads every delta-framed reply body. All-ones is
// unreachable as the leading u32 of any legacy reply framing (see the
// package comment above), so the decoder can dispatch on it.
const deltaMagic = ^uint32(0)

// maxDocDelta bounds the zigzag doc-id delta of a literal kept entry:
// doc ids are u32 on the wire, so a legitimate delta never exceeds
// +-(2^32-1). It is wider than maxVarint, so literal deltas bypass sv's
// general cap and validate the reconstructed doc instead.
const maxDocDelta = int64(1) << 32

const (
	deltaRoundFull  = 0
	deltaRoundDelta = 1

	dShDone     = 1 << 0
	dShTailSame = 1 << 1
	dShSrcSame  = 1 << 2

	dBlkUnc      = 1 << 0
	dBlkUncSame  = 1 << 1
	dBlkMaxOSame = 1 << 2
	dBlkKeptSame = 1 << 3
	dBlkUncDoc   = 1 << 4

	dRefLower = 1 << 0
	dRefUpper = 1 << 1
)

func isDeltaFrame(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == deltaMagic
}

// xf64 appends v as an XOR-delta against base (see the package comment's
// xf64 grammar). Callers only reach here when v != base bit-wise — equal
// floats ride a Same flag instead — so the XOR is never zero.
func (e *enc) xf64(v, base float64) {
	x := floatBits(v) ^ floatBits(base)
	t := bits.TrailingZeros64(x) / 8
	s := 8 - t - bits.LeadingZeros64(x)/8
	e.u8(byte(t<<4 | s))
	x >>= 8 * t
	for i := 0; i < s; i++ {
		e.u8(byte(x >> (8 * i)))
	}
}

// xf64 reads an XOR-delta float against base.
func (d *dec) xf64(base float64) float64 {
	h := d.u8()
	t, s := int(h>>4), int(h&0xf)
	if d.err == nil && (s == 0 || t+s > 8) {
		d.fail("bad xf64 header %#x", h)
	}
	var x uint64
	for i := 0; i < s && d.err == nil; i++ {
		x |= uint64(d.u8()) << (8 * i)
	}
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(floatBits(base) ^ x<<(8*t))
}

// roundShadow is one member shard's copy of the session's last
// round-reply RoundInfo — the base the next delta round is encoded
// against (worker) or reconstructed from (coordinator). It owns its
// backing storage: set copies, so the source may be a scratch or arena
// slice that gets overwritten later.
type roundShadow struct {
	info   core.RoundInfo // Kept aliases kept; Uncertain aliases &unc
	kept   []core.CandMeta
	unc    core.CandMeta
	hasUnc bool
	ok     bool
}

func (s *roundShadow) set(info core.RoundInfo) {
	s.kept = append(s.kept[:0], info.Kept...)
	s.info = info
	s.info.Kept = s.kept
	if info.Uncertain != nil {
		s.unc = *info.Uncertain
		s.info.Uncertain = &s.unc
		s.hasUnc = true
	} else {
		s.info.Uncertain = nil
		s.hasUnc = false
	}
	s.ok = true
}

// reset invalidates the shadow: the next round must be framed full. Used
// after begin and after replay fast-forwards (the peer never saw those
// rounds' infos, so its shadows are stale).
func (s *roundShadow) reset() { s.ok = false }

func sameMeta(a, b core.CandMeta) bool {
	return a.Doc == b.Doc &&
		floatBits(a.Lower) == floatBits(b.Lower) &&
		floatBits(a.Upper) == floatBits(b.Upper)
}

// deltaEncodable reports whether info can be delta-framed against sh:
// the shadow must be valid and every varint-diffed counter must move
// forward by less than the decoder's varint cap. Anything else — and any
// future field semantics this predicate doesn't know about — falls back
// to a full block, so the encoder can never emit a frame its own decoder
// would reject.
func deltaEncodable(sh *roundShadow, info core.RoundInfo) bool {
	if !sh.ok {
		return false
	}
	p := &sh.info
	ok := func(cur, prev int) bool { return cur >= prev && cur-prev < maxVarint }
	return ok(info.N, p.N) && ok(info.Reached, p.Reached) &&
		ok(info.Admitted, p.Admitted) && ok(info.Candidates, p.Candidates)
}

// sharedScalarsMatch reports whether a's per-round shared scalars equal
// b's. They do by construction for co-hosted shards (one roundState), but
// the encoder verifies rather than assumes — a mismatch falls back to
// full framing instead of silently normalizing shard blocks.
func sharedScalarsMatch(a, b *core.RoundInfo) bool {
	return a.N == b.N && a.Reached == b.Reached && a.Done == b.Done &&
		floatBits(a.Tail) == floatBits(b.Tail) &&
		floatBits(a.SourceTail) == floatBits(b.SourceTail)
}

// appendDeltaFrame encodes nRounds×ns RoundInfos (round-major flat
// layout) as a proto-5 delta frame. When update is set the shadows are
// advanced to each encoded round in turn, so round j diffs against round
// j-1 of the same reply; finalize passes update=false (and nRounds==1) —
// the finalize reply must not move the session's round base.
func appendDeltaFrame(b []byte, flat []core.RoundInfo, nRounds, ns int, shadows []roundShadow, update bool) []byte {
	e := enc{b: b}
	e.u32(deltaMagic)
	e.u32(uint32(nRounds))
	e.u32(uint32(ns))
	for r := 0; r < nRounds; r++ {
		row := flat[r*ns : (r+1)*ns]
		delta := true
		for i := range row {
			if !deltaEncodable(&shadows[i], row[i]) || !sharedScalarsMatch(&row[i], &row[0]) {
				delta = false
				break
			}
		}
		if !delta {
			e.u8(deltaRoundFull)
			for i := range row {
				encodeRoundInfoBody(&e, row[i])
			}
		} else {
			e.u8(deltaRoundDelta)
			prev := &shadows[0].info
			var sf byte
			if row[0].Done {
				sf |= dShDone
			}
			if floatBits(row[0].Tail) == floatBits(prev.Tail) {
				sf |= dShTailSame
			}
			if floatBits(row[0].SourceTail) == floatBits(prev.SourceTail) {
				sf |= dShSrcSame
			}
			e.u8(sf)
			e.uv(uint64(row[0].N - prev.N))
			e.uv(uint64(row[0].Reached - prev.Reached))
			if sf&dShTailSame == 0 {
				e.xf64(row[0].Tail, prev.Tail)
			}
			if sf&dShSrcSame == 0 {
				e.xf64(row[0].SourceTail, prev.SourceTail)
			}
			for i := range row {
				appendDeltaBlock(&e, &shadows[i], row[i])
			}
		}
		if update {
			for i := range row {
				shadows[i].set(row[i])
			}
		}
	}
	return e.b
}

func appendDeltaBlock(e *enc, sh *roundShadow, info core.RoundInfo) {
	p := &sh.info
	var bf byte
	if info.Uncertain != nil {
		bf |= dBlkUnc
		if sh.hasUnc && sameMeta(*info.Uncertain, sh.unc) {
			bf |= dBlkUncSame
		} else if sh.hasUnc && info.Uncertain.Doc == sh.unc.Doc {
			bf |= dBlkUncDoc
		}
	}
	if floatBits(info.MaxOther) == floatBits(p.MaxOther) {
		bf |= dBlkMaxOSame
	}
	keptSame := len(info.Kept) == len(p.Kept)
	for i := 0; keptSame && i < len(info.Kept); i++ {
		keptSame = sameMeta(info.Kept[i], p.Kept[i])
	}
	if keptSame {
		bf |= dBlkKeptSame
	}
	e.u8(bf)
	e.uv(uint64(info.Admitted - p.Admitted))
	e.uv(uint64(info.Candidates - p.Candidates))
	if bf&dBlkMaxOSame == 0 {
		e.xf64(info.MaxOther, p.MaxOther)
	}
	if bf&dBlkKeptSame == 0 {
		e.uv(uint64(len(info.Kept)))
		prevDoc := int64(0)
		for _, c := range info.Kept {
			j := -1
			for k := range p.Kept {
				if p.Kept[k].Doc == c.Doc {
					j = k
					break
				}
			}
			if j < 0 {
				e.uv(0)
				e.sv(int64(c.Doc) - prevDoc)
				e.f64(c.Lower)
				e.f64(c.Upper)
			} else {
				e.uv(uint64(j + 1))
				var rf byte
				if floatBits(c.Lower) != floatBits(p.Kept[j].Lower) {
					rf |= dRefLower
				}
				if floatBits(c.Upper) != floatBits(p.Kept[j].Upper) {
					rf |= dRefUpper
				}
				e.u8(rf)
				if rf&dRefLower != 0 {
					e.xf64(c.Lower, p.Kept[j].Lower)
				}
				if rf&dRefUpper != 0 {
					e.xf64(c.Upper, p.Kept[j].Upper)
				}
			}
			prevDoc = int64(c.Doc)
		}
	}
	if bf&dBlkUnc != 0 && bf&dBlkUncSame == 0 {
		if bf&dBlkUncDoc != 0 {
			var rf byte
			if floatBits(info.Uncertain.Lower) != floatBits(sh.unc.Lower) {
				rf |= dRefLower
			}
			if floatBits(info.Uncertain.Upper) != floatBits(sh.unc.Upper) {
				rf |= dRefUpper
			}
			e.u8(rf)
			if rf&dRefLower != 0 {
				e.xf64(info.Uncertain.Lower, sh.unc.Lower)
			}
			if rf&dRefUpper != 0 {
				e.xf64(info.Uncertain.Upper, sh.unc.Upper)
			}
		} else {
			e.u32(uint32(info.Uncertain.Doc))
			e.f64(info.Uncertain.Lower)
			e.f64(info.Uncertain.Upper)
		}
	}
}

// --- coordinator-side codec ---

type keptRange struct{ start, n int }

// deltaCodec decodes one worker connection's round/finalize replies —
// delta-framed or legacy — keeping its per-shard shadows in sync either
// way, and reconstructing delta rounds into reusable arenas so
// steady-state decoding allocates nothing.
//
// The arenas are double-banked: decodes on one connection are serialized
// (a session has at most one round fetch in flight, and finalize only
// runs after the round buffer drains), but the previous reply's
// RoundInfos may still be referenced by the coordinator's merge while the
// next reply decodes. A third-oldest reply is dead by construction — a
// new fetch is only issued once the coordinator has started consuming the
// newest buffered reply — so two banks suffice.
type deltaCodec struct {
	shadows []roundShadow

	bank  int
	infos [2][]core.RoundInfo
	kept  [2][]core.CandMeta
	unc   [2][]core.CandMeta
	rows  [2][][]core.RoundInfo

	ranges []keptRange // per-decode scratch, parallel to the bank's infos
	uncIdx []int32

	// Round-mode tallies of the most recent decode, for the
	// s3_coord_delta_rounds_total metric. Read under the same
	// serialization as the decode itself.
	lastDelta, lastFull int
}

func newDeltaCodec(nShards int) *deltaCodec {
	return &deltaCodec{shadows: make([]roundShadow, nShards)}
}

// reset invalidates every shadow — called after a replay fast-forward,
// whose rounds the codec never decodes (mirrors the worker's own reset in
// handleReplay).
func (c *deltaCodec) reset() {
	for i := range c.shadows {
		c.shadows[i].reset()
	}
}

// noteLegacy records a legacy-framed round block so later delta rounds
// diff against it, exactly as the worker's encoder does.
func (c *deltaCodec) noteLegacy(shard int, info core.RoundInfo) {
	c.shadows[shard].set(info)
}

// decodeRounds decodes a single-shard session's rounds reply in either
// framing.
func (c *deltaCodec) decodeRounds(b []byte, base time.Time) ([]core.RoundInfo, *obs.Span, error) {
	if isDeltaFrame(b) {
		flat, _, sp, err := c.decodeDeltaFrame(b, base, false)
		return flat, sp, err
	}
	infos, sp, err := decodeRoundsReply(b, base)
	if err != nil {
		return nil, nil, err
	}
	for i := range infos {
		c.noteLegacy(0, infos[i])
	}
	c.lastDelta, c.lastFull = 0, len(infos)
	return infos, sp, nil
}

// decodeHostRounds decodes a host session's rounds reply in either
// framing, returning round-major rows like decodeHostRoundsReply.
func (c *deltaCodec) decodeHostRounds(b []byte, base time.Time) ([][]core.RoundInfo, *obs.Span, error) {
	ns := len(c.shadows)
	if isDeltaFrame(b) {
		flat, nRounds, sp, err := c.decodeDeltaFrame(b, base, false)
		if err != nil {
			return nil, nil, err
		}
		rows := c.rows[c.bank][:0]
		for r := 0; r < nRounds; r++ {
			rows = append(rows, flat[r*ns:(r+1)*ns:(r+1)*ns])
		}
		c.rows[c.bank] = rows
		return rows, sp, nil
	}
	rows, sp, err := decodeHostRoundsReply(b, ns, base)
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		for i := range row {
			c.noteLegacy(i, row[i])
		}
	}
	c.lastDelta, c.lastFull = 0, len(rows)
	return rows, sp, nil
}

// decodeFinalize decodes a single-shard finalize reply in either framing.
// Finalize never advances the shadows on either end: the session's round
// base stays the last executed round.
func (c *deltaCodec) decodeFinalize(b []byte, base time.Time) (core.RoundInfo, *obs.Span, error) {
	if isDeltaFrame(b) {
		flat, _, sp, err := c.decodeDeltaFrame(b, base, true)
		if err != nil {
			return core.RoundInfo{}, nil, err
		}
		return flat[0], sp, nil
	}
	c.lastDelta, c.lastFull = 0, 1
	return decodeRoundInfo(b, base)
}

// decodeHostFinalize decodes a host session's finalize reply in either
// framing.
func (c *deltaCodec) decodeHostFinalize(b []byte, base time.Time) ([]core.RoundInfo, *obs.Span, error) {
	if isDeltaFrame(b) {
		flat, _, sp, err := c.decodeDeltaFrame(b, base, true)
		return flat, sp, err
	}
	c.lastDelta, c.lastFull = 0, 1
	return decodeHostInfosReply(b, len(c.shadows), base)
}

// decodeDeltaFrame decodes one delta-framed reply into the next arena
// bank, returning the round-major flat RoundInfos. final marks a finalize
// reply: exactly one round, shadows left untouched.
func (c *deltaCodec) decodeDeltaFrame(b []byte, base time.Time, final bool) ([]core.RoundInfo, int, *obs.Span, error) {
	d := &dec{b: b}
	if d.u32() != deltaMagic {
		d.fail("delta frame without magic")
	}
	nRounds := int(d.u32())
	switch {
	case d.err != nil:
	case final && nRounds != 1:
		d.fail("%d rounds in delta finalize reply", nRounds)
	case nRounds == 0 || nRounds > maxBatchRounds:
		d.fail("%d rounds in delta reply", nRounds)
	}
	ns := int(d.u32())
	if d.err == nil && ns != len(c.shadows) {
		d.fail("delta reply covers %d shards, session has %d", ns, len(c.shadows))
	}
	if d.err != nil {
		return nil, 0, nil, d.err
	}

	c.bank ^= 1
	infos := c.infos[c.bank][:0]
	keptA := c.kept[c.bank][:0]
	uncA := c.unc[c.bank][:0]
	ranges := c.ranges[:0]
	uncIdx := c.uncIdx[:0]
	c.lastDelta, c.lastFull = 0, 0

	for r := 0; r < nRounds && d.err == nil; r++ {
		mode := d.u8()
		switch mode {
		case deltaRoundFull:
			c.lastFull++
			for i := 0; i < ns && d.err == nil; i++ {
				info, kr, ui := decodeFullBlockArena(d, &keptA, &uncA)
				infos = append(infos, info)
				ranges = append(ranges, kr)
				uncIdx = append(uncIdx, ui)
			}
		case deltaRoundDelta:
			c.lastDelta++
			sf := d.u8()
			if d.err == nil && sf&^byte(dShDone|dShTailSame|dShSrcSame) != 0 {
				d.fail("unknown shared flags %#x in delta round", sf)
			}
			var shared core.RoundInfo
			prev0 := &c.shadows[0].info
			if d.err == nil && !c.shadows[0].ok {
				d.fail("delta round without a shadow base")
			}
			shared.Done = sf&dShDone != 0
			shared.N = prev0.N + int(d.uv())
			shared.Reached = prev0.Reached + int(d.uv())
			if sf&dShTailSame != 0 {
				shared.Tail = prev0.Tail
			} else {
				shared.Tail = d.xf64(prev0.Tail)
			}
			if sf&dShSrcSame != 0 {
				shared.SourceTail = prev0.SourceTail
			} else {
				shared.SourceTail = d.xf64(prev0.SourceTail)
			}
			if d.err == nil && (shared.N > math.MaxUint32 || shared.Reached > math.MaxUint32) {
				d.fail("delta round counter out of u32 range")
			}
			for i := 0; i < ns && d.err == nil; i++ {
				info, kr, ui := c.decodeDeltaBlockArena(d, i, shared, &keptA, &uncA)
				infos = append(infos, info)
				ranges = append(ranges, kr)
				uncIdx = append(uncIdx, ui)
			}
		default:
			d.fail("unknown round mode %d in delta reply", mode)
		}
		if d.err == nil && !final {
			// Advance the shadows to this round so the next round of the
			// same reply (and the next reply) diffs against it. set()
			// copies, so later arena growth cannot invalidate a shadow.
			base := r * ns
			for i := 0; i < ns; i++ {
				view := infos[base+i]
				if kr := ranges[base+i]; kr.n > 0 {
					view.Kept = keptA[kr.start : kr.start+kr.n]
				}
				if ui := uncIdx[base+i]; ui >= 0 {
					view.Uncertain = &uncA[ui]
				}
				c.shadows[i].set(view)
			}
		}
	}

	sp := decodeTrailingSpan(d, base)
	if err := d.done(); err != nil {
		return nil, 0, nil, err
	}

	// Arena appends may have reallocated; point every RoundInfo at its
	// final kept sub-slice and uncertain entry only now.
	for idx := range infos {
		if kr := ranges[idx]; kr.n > 0 {
			infos[idx].Kept = keptA[kr.start : kr.start+kr.n : kr.start+kr.n]
		} else {
			infos[idx].Kept = nil
		}
		if ui := uncIdx[idx]; ui >= 0 {
			infos[idx].Uncertain = &uncA[ui]
		} else {
			infos[idx].Uncertain = nil
		}
	}

	c.infos[c.bank] = infos
	c.kept[c.bank] = keptA
	c.unc[c.bank] = uncA
	c.ranges = ranges
	c.uncIdx = uncIdx
	return infos, nRounds, sp, nil
}

// decodeFullBlockArena is decodeRoundInfoBody with the kept list and
// uncertain entry landed in the caller's arenas instead of fresh
// allocations. Kept/Uncertain of the returned info are zero — the caller
// wires them up from the returned range/index once the arenas stop
// growing.
func decodeFullBlockArena(d *dec, keptA, uncA *[]core.CandMeta) (core.RoundInfo, keptRange, int32) {
	var info core.RoundInfo
	flags := d.u8()
	info.Done = flags&roundFlagDone != 0
	info.N = int(d.u32())
	info.Reached = int(d.u32())
	info.Admitted = int(d.u32())
	info.Candidates = int(d.u32())
	info.Tail = d.f64()
	info.SourceTail = d.f64()
	info.MaxOther = d.f64()
	nk := int(d.u32())
	if d.err == nil && nk > maxKept {
		d.fail("%d kept candidates", nk)
	}
	kr := keptRange{start: len(*keptA)}
	for i := 0; i < nk && d.err == nil; i++ {
		*keptA = append(*keptA, core.CandMeta{Doc: graph.NID(d.u32()), Lower: d.f64(), Upper: d.f64()})
		kr.n++
	}
	ui := int32(-1)
	if flags&roundFlagUncertain != 0 {
		ui = int32(len(*uncA))
		*uncA = append(*uncA, core.CandMeta{Doc: graph.NID(d.u32()), Lower: d.f64(), Upper: d.f64()})
	}
	return info, kr, ui
}

// decodeDeltaBlockArena reconstructs shard's block of one delta round
// against its shadow. shared carries the round's hoisted scalars.
func (c *deltaCodec) decodeDeltaBlockArena(d *dec, shard int, shared core.RoundInfo, keptA, uncA *[]core.CandMeta) (core.RoundInfo, keptRange, int32) {
	sh := &c.shadows[shard]
	if !sh.ok {
		d.fail("delta block without a shadow base")
		return core.RoundInfo{}, keptRange{}, -1
	}
	p := &sh.info
	info := shared
	bf := d.u8()
	if d.err == nil && bf&^byte(dBlkUnc|dBlkUncSame|dBlkMaxOSame|dBlkKeptSame|dBlkUncDoc) != 0 {
		d.fail("unknown block flags %#x in delta round", bf)
	}
	if d.err == nil && bf&(dBlkUncSame|dBlkUncDoc) != 0 && (bf&dBlkUnc == 0 || !sh.hasUnc) {
		d.fail("uncertain back-reference without a shadow entry")
	}
	if d.err == nil && bf&dBlkUncSame != 0 && bf&dBlkUncDoc != 0 {
		d.fail("conflicting uncertain back-references %#x", bf)
	}
	info.Admitted = p.Admitted + int(d.uv())
	info.Candidates = p.Candidates + int(d.uv())
	if d.err == nil && (info.Admitted > math.MaxUint32 || info.Candidates > math.MaxUint32) {
		d.fail("delta block counter out of u32 range")
	}
	if bf&dBlkMaxOSame != 0 {
		info.MaxOther = p.MaxOther
	} else {
		info.MaxOther = d.xf64(p.MaxOther)
	}

	kr := keptRange{start: len(*keptA)}
	if bf&dBlkKeptSame != 0 {
		*keptA = append(*keptA, p.Kept...)
		kr.n = len(p.Kept)
	} else {
		nk := int(d.uv())
		if d.err == nil && nk > maxKept {
			d.fail("%d kept candidates", nk)
		}
		prevDoc := int64(0)
		for i := 0; i < nk && d.err == nil; i++ {
			tag := d.uv()
			var cm core.CandMeta
			if tag == 0 {
				delta := d.docDelta()
				doc := prevDoc + delta
				if d.err == nil && (doc < 0 || doc > math.MaxUint32) {
					d.fail("kept doc %d out of range", doc)
				}
				cm = core.CandMeta{Doc: graph.NID(doc), Lower: d.f64(), Upper: d.f64()}
			} else {
				j := int(tag - 1)
				if j >= len(p.Kept) {
					d.fail("kept back-reference %d past shadow of %d", j, len(p.Kept))
					break
				}
				cm = p.Kept[j]
				rf := d.u8()
				if d.err == nil && rf&^byte(dRefLower|dRefUpper) != 0 {
					d.fail("unknown ref flags %#x in delta round", rf)
				}
				if rf&dRefLower != 0 {
					cm.Lower = d.xf64(p.Kept[j].Lower)
				}
				if rf&dRefUpper != 0 {
					cm.Upper = d.xf64(p.Kept[j].Upper)
				}
			}
			if d.err != nil {
				break
			}
			prevDoc = int64(cm.Doc)
			*keptA = append(*keptA, cm)
			kr.n++
		}
	}

	ui := int32(-1)
	if bf&dBlkUnc != 0 {
		ui = int32(len(*uncA))
		switch {
		case bf&dBlkUncSame != 0:
			*uncA = append(*uncA, sh.unc)
		case bf&dBlkUncDoc != 0:
			cm := sh.unc
			rf := d.u8()
			if d.err == nil && rf&^byte(dRefLower|dRefUpper) != 0 {
				d.fail("unknown ref flags %#x in delta round", rf)
			}
			if rf&dRefLower != 0 {
				cm.Lower = d.xf64(sh.unc.Lower)
			}
			if rf&dRefUpper != 0 {
				cm.Upper = d.xf64(sh.unc.Upper)
			}
			*uncA = append(*uncA, cm)
		default:
			*uncA = append(*uncA, core.CandMeta{Doc: graph.NID(d.u32()), Lower: d.f64(), Upper: d.f64()})
		}
	}
	return info, kr, ui
}

// docDelta reads a literal kept entry's zigzag doc delta. It is the one
// signed varint whose legitimate range exceeds the general sv cap (two
// u32 doc ids can differ by almost 2^32), so it carries its own bound;
// the caller still validates the reconstructed doc id.
func (d *dec) docDelta() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	if v >= maxDocDelta || v <= -maxDocDelta {
		d.fail("doc delta %d out of range", v)
		return 0
	}
	d.off += n
	return v
}
