package score

import (
	"math"
	"testing"

	"s3/internal/graph"
)

// iterState is a bit-exact snapshot of an iterator's observable state.
type iterState struct {
	n      int
	active []int32
	all    []uint64
	border []uint64
	disc   []graph.NID
}

func captureState(it *Iterator, disc []graph.NID) iterState {
	s := iterState{
		n:      it.N(),
		active: append([]int32(nil), it.Border()...),
		disc:   append([]graph.NID(nil), disc...),
	}
	for _, v := range it.AllProx() {
		s.all = append(s.all, math.Float64bits(v))
	}
	for _, v := range it.BorderProx() {
		s.border = append(s.border, math.Float64bits(v))
	}
	return s
}

func statesEqual(a, b iterState) bool {
	if a.n != b.n || len(a.active) != len(b.active) || len(a.disc) != len(b.disc) {
		return false
	}
	for i := range a.active {
		if a.active[i] != b.active[i] {
			return false
		}
	}
	for i := range a.disc {
		if a.disc[i] != b.disc[i] {
			return false
		}
	}
	for i := range a.all {
		if a.all[i] != b.all[i] {
			return false
		}
	}
	for i := range a.border {
		if a.border[i] != b.border[i] {
			return false
		}
	}
	return true
}

// TestResumeStateIdentical is the checkpoint property test: for every
// recorded depth m, ResumeIterator(Checkpoint at m) stepped d times must
// be state-identical — all, border, active (order included), n and the
// discovered list, bit for bit — to a fresh iterator stepped d times, for
// every d, including depths beyond m (replay hand-off to real
// propagation).
func TestResumeStateIdentical(t *testing.T) {
	const maxDepth = 18
	for _, seed := range []int64{3, 17} {
		in, _ := buildRandom(t, seed)
		users := in.Users()
		if len(users) > 3 {
			users = users[:3]
		}
		for _, params := range []Params{DefaultParams(), {Gamma: 2, Eta: 0.5}} {
			for _, u := range users {
				// Reference trajectory from a fresh recording iterator,
				// checkpointing at every depth along the way.
				ref := NewRecordingIterator(in, params, u)
				snaps := []iterState{captureState(ref, nil)}
				cps := []*ProxCheckpoint{ref.Checkpoint()}
				for !ref.Done() && ref.N() < maxDepth {
					disc := ref.Step()
					snaps = append(snaps, captureState(ref, disc))
					cps = append(cps, ref.Checkpoint())
				}
				total := ref.N()

				// A plain iterator must walk the same trajectory (recording
				// must not perturb the numbers).
				plain := NewIterator(in, params, u)
				for d := 1; d <= total; d++ {
					disc := plain.Step()
					if !statesEqual(captureState(plain, disc), snaps[d]) {
						t.Fatalf("seed=%d u=%d d=%d: plain iterator diverges from recording one", seed, u, d)
					}
				}

				for m, cp := range cps {
					if cp.N() != m {
						t.Fatalf("checkpoint at depth %d reports N=%d", m, cp.N())
					}
					if cp.Seeker() != u || cp.Params() != params {
						t.Fatalf("checkpoint identity mangled: %v %v", cp.Seeker(), cp.Params())
					}
					it, err := ResumeIterator(in, cp)
					if err != nil {
						t.Fatal(err)
					}
					if !statesEqual(captureState(it, nil), snaps[0]) {
						t.Fatalf("seed=%d u=%d m=%d: resumed initial state differs", seed, u, m)
					}
					for d := 1; d <= total; d++ {
						disc := it.Step()
						if !statesEqual(captureState(it, disc), snaps[d]) {
							t.Fatalf("seed=%d u=%d m=%d d=%d: resumed state differs (replay boundary at %d)",
								seed, u, m, d, m)
						}
					}
					if it.Done() != ref.Done() {
						t.Fatalf("seed=%d u=%d m=%d: Done mismatch", seed, u, m)
					}
				}
			}
		}
	}
}

// TestCheckpointMisuse covers the guard rails: non-recording iterators
// yield no checkpoint, resumption is bound to the instance, and the
// deepen-only Supersedes relation behaves.
func TestCheckpointMisuse(t *testing.T) {
	in, _ := buildRandom(t, 7)
	in2, _ := buildRandom(t, 7)
	u := in.Users()[0]
	params := DefaultParams()

	if cp := NewIterator(in, params, u).Checkpoint(); cp != nil {
		t.Fatal("non-recording iterator produced a checkpoint")
	}
	if _, err := ResumeIterator(in, nil); err == nil {
		t.Fatal("nil checkpoint resumed")
	}

	it := NewRecordingIterator(in, params, u)
	it.Step()
	shallow := it.Checkpoint()
	it.Step()
	deep := it.Checkpoint()
	if _, err := ResumeIterator(in2, deep); err == nil {
		t.Fatal("checkpoint resumed on a different instance")
	}
	if !deep.Supersedes(shallow) || shallow.Supersedes(deep) {
		t.Fatal("Supersedes is not deepen-only")
	}
	if shallow.Supersedes(shallow) {
		t.Fatal("checkpoint supersedes itself")
	}
	if !deep.Supersedes(nil) {
		t.Fatal("checkpoint must supersede nil")
	}
	// A stale-instance entry is always superseded, even by a shallower one.
	it2 := NewRecordingIterator(in2, params, in2.Users()[0])
	it2.Step()
	other := it2.Checkpoint()
	if !shallow.Supersedes(other) {
		t.Fatal("cross-instance checkpoint not superseded")
	}
	if deep.Bytes() <= shallow.Bytes() {
		t.Fatalf("deeper checkpoint not bigger: %d vs %d", deep.Bytes(), shallow.Bytes())
	}
}

// TestCheckpointImmutableUnderExtension: extending a resumed iterator past
// its inherited depth must not disturb the checkpoint another resume reads.
func TestCheckpointImmutableUnderExtension(t *testing.T) {
	in, _ := buildRandom(t, 11)
	u := in.Users()[0]
	params := DefaultParams()

	base := NewRecordingIterator(in, params, u)
	base.Step()
	cp := base.Checkpoint()

	a, err := ResumeIterator(in, cp)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 5 && !a.Done(); d++ {
		a.Step() // replays 1 layer, then extends past the checkpoint
	}
	if cp.N() != 1 {
		t.Fatalf("checkpoint depth changed to %d", cp.N())
	}
	b, err := ResumeIterator(in, cp)
	if err != nil {
		t.Fatal(err)
	}
	b.Step()
	want := NewIterator(in, params, u)
	want.Step()
	if !statesEqual(captureState(b, nil), captureState(want, nil)) {
		t.Fatal("checkpoint state disturbed by an extended sibling iterator")
	}
}
