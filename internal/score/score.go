// Package score implements the scoring model of the paper: the generic
// score abstraction of §3.3 with its four feasibility properties, and the
// concrete S3k score of §3.4 (Definition 3.5):
//
//	score(d, (u,φ)) = Π_{k∈φ} Σ_{(type,f,src) ∈ con(d,k)} η^|pos(d,f)| · prox(u,src)
//
// with the Katz-style all-paths social proximity
//
//	prox(a,b) = Cγ · Σ_{p ∈ a⇝b} prox→(p) / γ^|p| ,  Cγ = (γ−1)/γ ,
//
// where prox→(p) is the product of the normalised edge weights along p.
//
// The feasibility properties materialise as:
//
//   - iterability (property 1): prox≤n = prox≤n−1 + Cγ·borderProx(·,n),
//     implemented by Iterator.Step;
//   - long-path attenuation (property 2): prox − prox≤n ≤ B>n = γ^−(n+1)
//     (Params.TailBound), because normalised out-weights make the path
//     mass of each length at most 1;
//   - soundness (property 3): the score is monotone and continuous in the
//     proximity values (it is a polynomial with non-negative
//     coefficients);
//   - convergence (property 4): Scorer.Threshold implements Bscore — with
//     every source proximity below B, score(d) ≤ Π_k maxMass(k)·B → 0.
package score

import (
	"fmt"
	"math"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/sparse"
)

// Params collects the two damping factors of the concrete score.
type Params struct {
	// Gamma (γ > 1) damps long social paths (§3.4). Smaller values focus
	// the search near the seeker; the paper evaluates 1.25, 1.5, 2 and 4.
	Gamma float64
	// Eta (η < 1) damps fragments that sit deep inside a candidate
	// document: a connection due to fragment f counts η^|pos(d,f)|.
	Eta float64
}

// DefaultParams returns the defaults used throughout the benchmarks:
// γ = 1.5 (the paper's middle setting) and η = 0.8.
func DefaultParams() Params { return Params{Gamma: 1.5, Eta: 0.8} }

// Validate checks the damping constraints of §3.4.
func (p Params) Validate() error {
	if !(p.Gamma > 1) {
		return fmt.Errorf("score: gamma must be > 1, got %v", p.Gamma)
	}
	if !(p.Eta > 0 && p.Eta < 1) {
		return fmt.Errorf("score: eta must be in (0,1), got %v", p.Eta)
	}
	return nil
}

// CGamma returns Cγ = (γ−1)/γ, the constant that normalises prox into
// [0, 1].
func (p Params) CGamma() float64 { return (p.Gamma - 1) / p.Gamma }

// TailBound returns B>n = γ^−(n+1): an upper bound on prox − prox≤n
// (feasibility property 2). It tends to 0 as n grows.
func (p Params) TailBound(n int) float64 { return math.Pow(p.Gamma, -float64(n+1)) }

// Iterator computes the bounded social proximity prox≤n(u, ·) for growing
// n, one matrix step at a time — the §5.2 borderProx optimisation. It owns
// dense work vectors sized to the instance and must not be shared across
// goroutines.
type Iterator struct {
	in     *graph.Instance
	params Params
	seeker graph.NID

	// border[v] = Σ_{p ∈ u⇝v, |p|=n} prox→(p) / γⁿ  (borderProx of §5.2).
	border  []float64
	active  []int32
	next    []float64
	scratch []bool

	// all[v] = prox≤n(u, v).
	all []float64
	n   int

	// disc is the scratch buffer behind Step's return value (borrow
	// semantics, like AllProx).
	disc []graph.NID

	// Checkpoint support. When rec is true every step records the border it
	// produced (node list in propagation order plus values) into layers;
	// layers[d-1] is the border at depth d. A resumed iterator starts with
	// the layers of its checkpoint already filled in and replays them —
	// identical floating-point operations in identical order, without the
	// matrix propagation — before falling back to real propagation past the
	// recorded depth. n ≤ len(layers) always; n < len(layers) only while a
	// resumed iterator still has recorded depths ahead of it.
	rec    bool
	layers []proxLayer
}

// proxLayer is one recorded exploration border: the nodes reached by paths
// of length exactly d, in the order the propagation emitted them (the
// order fixes the floating-point summation sequence, which is what makes
// replay bit-identical), with their borderProx values. Layers are
// immutable once recorded and may be shared between checkpoints.
type proxLayer struct {
	nodes []int32
	vals  []float64
}

// NewIterator starts an exploration at the seeker. The initial state is
// n = 0: only the empty path is known, so prox≤0(u,u) = Cγ and the border
// is {u}.
func NewIterator(in *graph.Instance, params Params, seeker graph.NID) *Iterator {
	nn := in.NumNodes()
	it := &Iterator{
		in:      in,
		params:  params,
		seeker:  seeker,
		border:  make([]float64, nn),
		next:    make([]float64, nn),
		scratch: make([]bool, nn),
		all:     make([]float64, nn),
	}
	it.border[seeker] = 1
	it.active = []int32{int32(seeker)}
	it.all[seeker] = params.CGamma()
	return it
}

// NewRecordingIterator is NewIterator with checkpoint recording enabled:
// every Step keeps its border layer so the exploration can later be
// published as a ProxCheckpoint and resumed by another search.
func NewRecordingIterator(in *graph.Instance, params Params, seeker graph.NID) *Iterator {
	it := NewIterator(in, params, seeker)
	it.rec = true
	return it
}

// Seeker returns the node the exploration started from.
func (it *Iterator) Seeker() graph.NID { return it.seeker }

// Params returns the damping factors the exploration uses.
func (it *Iterator) Params() Params { return it.params }

// N returns the current exploration depth n.
func (it *Iterator) N() int { return it.n }

// AllProx returns the prox≤n vector. The slice is owned by the iterator
// and changes on every Step.
func (it *Iterator) AllProx() []float64 { return it.all }

// Border returns the indices of the current exploration border (nodes
// reached by at least one path of length exactly n).
func (it *Iterator) Border() []int32 { return it.active }

// BorderProx returns the dense borderProx vector, non-zero exactly on
// Border(). The slice is owned by the iterator and changes on every Step.
func (it *Iterator) BorderProx() []float64 { return it.border }

// RecordedDepth returns the depth a recording iterator has layers for:
// max(N(), inherited checkpoint depth). Callers use it to publish only
// explorations that actually deepened what the cache already held.
func (it *Iterator) RecordedDepth() int { return len(it.layers) }

// Done reports whether the border is empty — the entire reachable graph
// has been accounted for and prox≤n is exact.
func (it *Iterator) Done() bool { return len(it.active) == 0 }

// TailBound returns B>n for the current n (0 when Done, since exploration
// is exact then).
func (it *Iterator) TailBound() float64 {
	if it.Done() {
		return 0
	}
	return it.params.TailBound(it.n)
}

// SourceTailBound bounds prox(u, src) for every source src belonging to —
// or adjacent to — a component not yet reached at depth n. A connection
// source is at most two network edges away from some node of its
// component (author → tag → subject); hence if no component node was
// reached within n steps, no path of length ≤ n−1 reaches the source:
// prox(u, src) ≤ B>(n−1) = γ^−n. Used for the unexplored-document
// threshold of §4.
func (it *Iterator) SourceTailBound() float64 {
	if it.Done() {
		return 0
	}
	return math.Pow(it.params.Gamma, -float64(it.n))
}

// Step advances the exploration to depth n+1 and folds the new border into
// prox≤n (feasibility property 1: prox≤n = prox≤n−1 + Uprox). It returns
// the nodes whose proximity became non-zero for the first time — exactly
// the nodes "discovered" at this depth. Like AllProx, the returned slice
// is owned by the iterator and is only valid until the next Step.
func (it *Iterator) Step() []graph.NID {
	if it.Done() {
		return nil
	}
	if it.rec && it.n < len(it.layers) {
		return it.replayStep()
	}
	m := it.in.Matrix()
	nz := m.PropagateT(it.border, it.active, it.next, it.scratch)
	invGamma := 1 / it.params.Gamma
	cg := it.params.CGamma()

	var rl proxLayer
	if it.rec {
		rl = proxLayer{nodes: make([]int32, len(nz)), vals: make([]float64, len(nz))}
	}
	disc := it.disc[:0]
	for i, c := range nz {
		v := it.next[c] * invGamma
		it.next[c] = v
		if it.rec {
			rl.nodes[i], rl.vals[i] = c, v
		}
		if it.all[c] == 0 && v > 0 {
			disc = append(disc, graph.NID(c))
		}
		it.all[c] += cg * v
	}
	sparse.ZeroVec(it.border, it.active)
	it.border, it.next = it.next, it.border
	it.active = append(it.active[:0], nz...)
	it.n++
	if it.rec {
		it.layers = append(it.layers, rl)
	}
	it.disc = disc
	return disc
}

// replayStep advances a resumed iterator through one recorded layer: the
// same per-node operations as a real Step, in the same order, minus the
// matrix propagation. The resulting (all, border, active, n) state — and
// the discovered list — are bit-identical to a fresh iterator stepped to
// the same depth.
func (it *Iterator) replayStep() []graph.NID {
	l := it.layers[it.n]
	cg := it.params.CGamma()
	disc := it.disc[:0]
	for i, c := range l.nodes {
		v := l.vals[i]
		it.next[c] = v
		if it.all[c] == 0 && v > 0 {
			disc = append(disc, graph.NID(c))
		}
		it.all[c] += cg * v
	}
	sparse.ZeroVec(it.border, it.active)
	it.border, it.next = it.next, it.border
	it.active = append(it.active[:0], l.nodes...)
	it.n++
	it.disc = disc
	return disc
}

// ExactProximity iterates until the tail bound falls below eps (or the
// graph is exhausted) and returns prox(u, ·) within eps. It is the
// reference implementation used by oracles and quality measures.
func ExactProximity(in *graph.Instance, params Params, seeker graph.NID, eps float64) []float64 {
	it := NewIterator(in, params, seeker)
	for !it.Done() && it.TailBound() > eps {
		it.Step()
	}
	out := make([]float64, len(it.all))
	copy(out, it.all)
	return out
}

// Scorer evaluates the concrete S3k score of one query over one instance.
// The query is fixed by its keyword groups: groups[i] is the semantic
// extension Ext(k_i) of the i-th query keyword (Definition 2.1). A Scorer
// caches merged per-component event lists and is safe for single-goroutine
// use.
type Scorer struct {
	in     *graph.Instance
	ix     *index.Index
	params Params
	groups [][]dict.ID

	cache map[compGroup][]index.Event

	// etaPow memoises η^rel by relative fragment depth: the per-term hot
	// paths (Bounds, candidate admission) look fragment-depth powers up
	// here instead of calling math.Pow per term. Entries are computed with
	// math.Pow once, so the cached values are bit-identical to direct
	// calls.
	etaPow []float64
}

type compGroup struct {
	comp  int32
	group int
}

// NewScorer validates the parameters and builds a scorer for the given
// keyword groups.
func NewScorer(in *graph.Instance, ix *index.Index, params Params, groups [][]dict.ID) (*Scorer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("score: empty query")
	}
	return &Scorer{
		in:     in,
		ix:     ix,
		params: params,
		groups: groups,
		cache:  make(map[compGroup][]index.Event),
		etaPow: []float64{1},
	}, nil
}

// EtaPow returns η^rel for a relative fragment depth, growing the memo
// table on demand. Like the event cache it is for single-goroutine use.
func (s *Scorer) EtaPow(rel int) float64 {
	for len(s.etaPow) <= rel {
		s.etaPow = append(s.etaPow, math.Pow(s.params.Eta, float64(len(s.etaPow))))
	}
	return s.etaPow[rel]
}

// Groups returns the keyword groups of the query.
func (s *Scorer) Groups() [][]dict.ID { return s.groups }

// GroupEvents returns the deduplicated union, over the keywords of group
// gi, of the events anchored in the component — i.e. the materialised
// con(·, k_gi) tuples of that component. con is a set of (type, f, src)
// tuples, so an identical tuple contributed by two extension keywords
// counts once (Definition 2.1 keeps extensions lossless).
func (s *Scorer) GroupEvents(comp int32, gi int) []index.Event {
	key := compGroup{comp: comp, group: gi}
	if evs, ok := s.cache[key]; ok {
		return evs
	}
	if group := s.groups[gi]; len(group) == 1 {
		// One keyword means one event list and nothing to deduplicate
		// (the index stores each (type, f, src) once per keyword) — the
		// common no-extension case skips the map entirely.
		evs := s.ix.EventsInComp(group[0], comp)
		s.cache[key] = evs
		return evs
	}
	var merged []index.Event
	seen := make(map[index.Event]struct{})
	for _, k := range s.groups[gi] {
		for _, ev := range s.ix.EventsInComp(k, comp) {
			if _, dup := seen[ev]; dup {
				continue
			}
			seen[ev] = struct{}{}
			merged = append(merged, ev)
		}
	}
	s.cache[key] = merged
	return merged
}

// Bounds computes the lower and upper score bounds of candidate d given
// the current bounded proximity vector and the tail bound (§4,
// ComputeCandidateBounds):
//
//	lower uses prox≤n(u,src);  upper uses min(1, prox≤n(u,src) + tail).
//
// Containment connections resolve their source to d itself.
func (s *Scorer) Bounds(d graph.NID, allProx []float64, tail float64) (lo, hi float64) {
	lo, hi = 1, 1
	comp := s.in.CompOf(d)
	for gi := range s.groups {
		var mLo, mHi float64
		for _, ev := range s.GroupEvents(comp, gi) {
			rel, ok := s.in.PosLen(d, ev.Frag)
			if !ok {
				continue
			}
			eta := s.EtaPow(int(rel))
			src := ev.Src
			if ev.Type == index.Contains {
				src = d
			}
			p := allProx[src]
			mLo += eta * p
			mHi += eta * math.Min(1, p+tail)
		}
		lo *= mLo
		hi *= mHi
	}
	return lo, hi
}

// Exact computes the score of d under a given (exact) proximity vector.
func (s *Scorer) Exact(d graph.NID, prox []float64) float64 {
	lo, _ := s.Bounds(d, prox, 0)
	return lo
}

// Threshold implements Bscore(q, B) (feasibility property 4): an upper
// bound on the score of any document all of whose connection sources have
// proximity at most B. Per group, the connection mass of a single
// candidate is bounded by the largest per-component event count of the
// group's keywords (every connection of a candidate lives in its own
// component, and η ≤ 1).
func (s *Scorer) Threshold(B float64) float64 {
	t := 1.0
	for _, group := range s.groups {
		mass := 0
		for _, k := range group {
			mass += s.ix.MaxCompEvents(k)
		}
		t *= float64(mass) * B
	}
	return t
}
