package score

import (
	"container/heap"

	"s3/internal/graph"
)

// BestPathProximity computes the single-best-path variant of the social
// proximity: instead of the ⊕path sum over all paths (Definition 3.3's
// instantiation in §3.4), it keeps only the strongest path,
//
//	proxᵇᵉˢᵗ(u, v) = Cγ · max_{p ∈ u⇝v} prox→(p) / γ^|p| ,
//
// over the same normalised, vertical-neighbourhood-aware transition
// matrix. This is the "shortest path" proximity family used by the UIT
// baselines; benchmarks use it to quantify the paper's claim that
// aggregating all paths is what gives S3k its qualitative edge.
func BestPathProximity(in *graph.Instance, params Params, seeker graph.NID) []float64 {
	n := in.NumNodes()
	best := make([]float64, n)
	settled := make([]bool, n)
	m := in.Matrix()

	h := &nodeHeap{{node: int32(seeker), val: params.CGamma()}}
	best[seeker] = params.CGamma()
	invGamma := 1 / params.Gamma
	for h.Len() > 0 {
		nd := heap.Pop(h).(nodeVal)
		if settled[nd.node] {
			continue
		}
		settled[nd.node] = true
		m.Row(int(nd.node), func(col int, w float64) {
			v := nd.val * w * invGamma
			if v > best[col] && !settled[col] {
				best[col] = v
				heap.Push(h, nodeVal{node: int32(col), val: v})
			}
		})
	}
	return best
}

type nodeVal struct {
	node int32
	val  float64
}

type nodeHeap []nodeVal

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val > h[j].val
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeVal)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
