package score

import (
	"math"
	"math/rand"
	"testing"

	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/text"
)

func buildRandom(t *testing.T, seed int64) (*graph.Instance, *index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return in, index.Build(in)
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{Gamma: 1, Eta: 0.5}, {Gamma: 0.5, Eta: 0.5}, {Gamma: 2, Eta: 0}, {Gamma: 2, Eta: 1}} {
		if err := p.Validate(); err == nil {
			t.Fatalf("Params %+v must be invalid", p)
		}
	}
}

func TestCGammaAndTailBound(t *testing.T) {
	p := Params{Gamma: 2, Eta: 0.5}
	if got := p.CGamma(); got != 0.5 {
		t.Fatalf("CGamma = %v, want 0.5", got)
	}
	// B>n = γ^-(n+1): with γ=2, B>0 = 0.5, B>1 = 0.25.
	if got := p.TailBound(0); got != 0.5 {
		t.Fatalf("TailBound(0) = %v, want 0.5", got)
	}
	if got := p.TailBound(1); got != 0.25 {
		t.Fatalf("TailBound(1) = %v, want 0.25", got)
	}
	// Cγ · Σ_{m>n} γ^-m must equal B>n exactly.
	for n := 0; n < 10; n++ {
		var tail float64
		for m := n + 1; m < 200; m++ {
			tail += math.Pow(p.Gamma, -float64(m))
		}
		if diff := math.Abs(p.CGamma()*tail - p.TailBound(n)); diff > 1e-12 {
			t.Fatalf("tail identity broken at n=%d: diff %v", n, diff)
		}
	}
}

// Example 3.1 of the paper: prox≤1(u0, URI0) is the normalised weight
// 1/(1+0.3) damped by γ (our implementation also applies the Cγ
// normalisation constant uniformly, which the paper's example elides).
func TestIteratorExample31(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	mustOK(t, b.AddUser("u0"))
	mustOK(t, b.AddUser("u3"))
	mustOK(t, b.AddDocument(&doc.Node{URI: "URI0", Name: "doc"}))
	mustOK(t, b.AddPost("URI0", "u0"))
	mustOK(t, b.AddSocial("u0", "u3", 0.3, ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Gamma: 1.5, Eta: 0.5}
	u0, _ := in.NIDOf("u0")
	uri0, _ := in.NIDOf("URI0")
	it := NewIterator(in, p, u0)
	it.Step()
	want := p.CGamma() * (1 / 1.3) / p.Gamma
	if got := it.AllProx()[uri0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("prox≤1(u0, URI0) = %v, want %v", got, want)
	}
}

// The iterator must agree with a dense matrix-power computation of
// prox≤n = Cγ Σ_{j≤n} (Mᵀ)ʲ e_u / γʲ on random instances.
func TestIteratorMatchesDenseOracle(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in, _ := buildRandom(t, seed)
		p := Params{Gamma: 1.5, Eta: 0.5}
		users := in.Users()
		seeker := users[int(seed)%len(users)]

		it := NewIterator(in, p, seeker)
		dense := in.Matrix().Dense()
		nn := in.NumNodes()

		// x = e_seeker; acc = Cγ·x.
		x := make([]float64, nn)
		x[seeker] = 1
		acc := make([]float64, nn)
		acc[seeker] = p.CGamma()

		for step := 0; step < 6; step++ {
			it.Step()
			// x ← xᵀM / γ.
			nx := make([]float64, nn)
			for r := 0; r < nn; r++ {
				if x[r] == 0 {
					continue
				}
				for c := 0; c < nn; c++ {
					nx[c] += x[r] * dense[r][c]
				}
			}
			for c := range nx {
				nx[c] /= p.Gamma
				acc[c] += p.CGamma() * nx[c]
			}
			x = nx
			for v := 0; v < nn; v++ {
				if math.Abs(it.AllProx()[v]-acc[v]) > 1e-9 {
					t.Fatalf("seed %d step %d: prox mismatch at node %s: %v vs %v",
						seed, step, in.URIOf(graph.NID(v)), it.AllProx()[v], acc[v])
				}
			}
		}
	}
}

// Feasibility property 2 (long-path attenuation): prox − prox≤n ≤ B>n,
// and prox≤n is monotone non-decreasing in n with values in [0, 1].
func TestAttenuationAndBounds(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		in, _ := buildRandom(t, seed)
		p := Params{Gamma: 2, Eta: 0.5}
		seeker := in.Users()[0]
		exact := ExactProximity(in, p, seeker, 1e-13)

		it := NewIterator(in, p, seeker)
		prev := make([]float64, in.NumNodes())
		copy(prev, it.AllProx())
		for n := 0; n < 25 && !it.Done(); n++ {
			it.Step()
			tail := it.TailBound()
			for v := 0; v < in.NumNodes(); v++ {
				cur := it.AllProx()[v]
				if cur < prev[v]-1e-15 {
					t.Fatalf("seed %d: prox≤n decreased at %s", seed, in.URIOf(graph.NID(v)))
				}
				if cur < -1e-15 || cur > 1+1e-9 {
					t.Fatalf("seed %d: prox out of [0,1]: %v", seed, cur)
				}
				if exact[v]-cur > tail+1e-9 {
					t.Fatalf("seed %d: attenuation violated at %s: exact %v, bounded %v, tail %v",
						seed, in.URIOf(graph.NID(v)), exact[v], cur, tail)
				}
			}
			copy(prev, it.AllProx())
		}
	}
}

// The candidate bounds must bracket the exact score at every exploration
// depth — this is the invariant the S3k algorithm's correctness rests on.
func TestBoundsBracketExactScore(t *testing.T) {
	for seed := int64(40); seed < 52; seed++ {
		in, ix := buildRandom(t, seed)
		p := Params{Gamma: 1.5, Eta: 0.6}
		seeker := in.Users()[0]
		groups := testGroups(in)
		sc, err := NewScorer(in, ix, p, groups)
		if err != nil {
			t.Fatal(err)
		}
		exactProx := ExactProximity(in, p, seeker, 1e-13)

		it := NewIterator(in, p, seeker)
		for n := 0; n < 12; n++ {
			it.Step()
			tail := it.TailBound()
			for _, d := range candidateNodes(in) {
				lo, hi := sc.Bounds(d, it.AllProx(), tail)
				exact := sc.Exact(d, exactProx)
				if lo > exact+1e-9 {
					t.Fatalf("seed %d n=%d: lower bound %v exceeds exact %v for %s",
						seed, n, lo, exact, in.URIOf(d))
				}
				if hi < exact-1e-9 {
					t.Fatalf("seed %d n=%d: upper bound %v below exact %v for %s",
						seed, n, hi, exact, in.URIOf(d))
				}
				if lo > hi+1e-12 {
					t.Fatalf("seed %d: lower %v > upper %v", seed, lo, hi)
				}
			}
			if it.Done() {
				break
			}
		}
	}
}

// Feasibility property 3 (soundness): the score is monotone in the
// proximity vector.
func TestScoreMonotoneInProximity(t *testing.T) {
	in, ix := buildRandom(t, 60)
	p := DefaultParams()
	sc, err := NewScorer(in, ix, p, testGroups(in))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	nn := in.NumNodes()
	for trial := 0; trial < 50; trial++ {
		g1 := make([]float64, nn)
		g2 := make([]float64, nn)
		for i := range g1 {
			g1[i] = rng.Float64()
			g2[i] = g1[i] + rng.Float64()*(1-g1[i])
		}
		for _, d := range candidateNodes(in) {
			s1 := sc.Exact(d, g1)
			s2 := sc.Exact(d, g2)
			if s1 > s2+1e-12 {
				t.Fatalf("score not monotone: %v > %v for %s", s1, s2, in.URIOf(d))
			}
		}
	}
}

// Feasibility property 4 (convergence): with every source proximity below
// B, score(d) ≤ Threshold(B), and Threshold(B) → 0 as B → 0.
func TestThresholdBoundsScore(t *testing.T) {
	for seed := int64(70); seed < 80; seed++ {
		in, ix := buildRandom(t, seed)
		p := DefaultParams()
		sc, err := NewScorer(in, ix, p, testGroups(in))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, B := range []float64{0.5, 0.1, 0.01} {
			prox := make([]float64, in.NumNodes())
			for i := range prox {
				prox[i] = rng.Float64() * B
			}
			thr := sc.Threshold(B)
			for _, d := range candidateNodes(in) {
				if s := sc.Exact(d, prox); s > thr+1e-12 {
					t.Fatalf("seed %d: score %v exceeds threshold %v (B=%v)", seed, s, thr, B)
				}
			}
		}
		if thr := sc.Threshold(0); thr != 0 {
			t.Fatalf("Threshold(0) = %v, want 0", thr)
		}
	}
}

func TestNewScorerRejectsEmptyQuery(t *testing.T) {
	in, ix := buildRandom(t, 90)
	if _, err := NewScorer(in, ix, DefaultParams(), nil); err == nil {
		t.Fatal("expected error on empty query")
	}
	if _, err := NewScorer(in, ix, Params{Gamma: 1, Eta: 0.5}, testGroups(in)); err == nil {
		t.Fatal("expected error on invalid params")
	}
}

// GroupEvents deduplicates tuples contributed by several extension
// keywords of the same group.
func TestGroupEventsDeduplicate(t *testing.T) {
	in, ix := buildRandom(t, 95)
	sc, err := NewScorer(in, ix, DefaultParams(), testGroups(in))
	if err != nil {
		t.Fatal(err)
	}
	for gi := range sc.Groups() {
		for comp := int32(0); comp < int32(in.NumComponents()); comp++ {
			evs := sc.GroupEvents(comp, gi)
			seen := make(map[index.Event]struct{}, len(evs))
			for _, ev := range evs {
				if _, dup := seen[ev]; dup {
					t.Fatalf("duplicate event in group %d comp %d", gi, comp)
				}
				seen[ev] = struct{}{}
			}
		}
	}
}

// testGroups builds a two-keyword query with semantic extensions from the
// instance ontology.
func testGroups(in *graph.Instance) [][]dict.ID {
	g1 := in.Ontology().ExtStr("kw0")
	g2 := in.Ontology().ExtStr("kw1")
	return [][]dict.ID{g1, g2}
}

// candidateNodes returns all document nodes.
func candidateNodes(in *graph.Instance) []graph.NID {
	var out []graph.NID
	for _, root := range in.DocRoots() {
		out = in.SubtreeOf(root, out)
	}
	return out
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupEventsSingleKeyword pins the no-extension fast path: a
// one-keyword group must return exactly the component's event list (the
// index slice itself — nothing to deduplicate, no map, no copy).
func TestGroupEventsSingleKeyword(t *testing.T) {
	in, ix := buildRandom(t, 11)
	kw, ok := in.Dict().Lookup("kw0")
	if !ok {
		t.Fatal("keyword kw0 not interned")
	}
	s, err := NewScorer(in, ix, Params{Gamma: 1.5, Eta: 0.8}, [][]dict.ID{{kw}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Comps(kw)) == 0 {
		t.Fatal("keyword kw0 matches no components")
	}
	for _, comp := range ix.Comps(kw) {
		want := ix.EventsInComp(kw, comp)
		got := s.GroupEvents(comp, 0)
		if len(got) != len(want) {
			t.Fatalf("component %d: %d events, want %d", comp, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("component %d event %d diverges", comp, i)
			}
		}
		// The cache must serve repeats.
		if again := s.GroupEvents(comp, 0); len(again) != len(want) {
			t.Fatalf("cached repeat diverges for component %d", comp)
		}
	}
}
