// Proximity checkpoints: immutable snapshots of a bounded-proximity
// exploration that a later search from the same seeker can resume instead
// of re-propagating from depth 0.
//
// A checkpoint does not store the dense prox≤n vector — it stores the
// recorded border *layers* (per depth: the reached nodes in propagation
// order plus their borderProx values). Resuming replays those layers one
// Step at a time, performing the exact floating-point operations of a
// fresh exploration in the exact same order, so the iterator state at
// every depth — and therefore every answer computed from it — is
// bit-identical to the cold path. Only the matrix propagation (the
// dominant serial cost of candidate-heavy queries, §5.2) is skipped; a
// search that needs to go deeper than the checkpoint falls back to real
// propagation seamlessly, because the replayed state at the last recorded
// depth is the full exploration frontier.
package score

import (
	"fmt"

	"s3/internal/graph"
)

// ProxCheckpoint is a frozen exploration of one (instance, seeker, params)
// triple up to some depth. It is immutable and safe to share across
// concurrent searches; resumed iterators never mutate the recorded layers.
type ProxCheckpoint struct {
	in     *graph.Instance
	params Params
	seeker graph.NID
	layers []proxLayer
	bytes  int64
}

// Checkpoint publishes the exploration recorded so far. It returns nil on
// a non-recording iterator. The checkpoint covers every recorded layer —
// for a resumed iterator that stopped before exhausting its inherited
// layers, that is the inherited depth, not the replay position — so
// re-publishing after a shallow search never loses depth.
func (it *Iterator) Checkpoint() *ProxCheckpoint {
	if !it.rec {
		return nil
	}
	layers := make([]proxLayer, len(it.layers))
	copy(layers, it.layers)
	cp := &ProxCheckpoint{
		in:     it.in,
		params: it.params,
		seeker: it.seeker,
		layers: layers,
	}
	cp.bytes = cp.footprint()
	return cp
}

// ResumeIterator continues a checkpointed exploration over the same
// instance. The returned iterator starts at depth 0 with the recorded
// layers ahead of it: each Step replays a layer (no matrix work) until the
// recorded depth is passed, then propagates for real. Stepped d times it
// is state-identical — bit for bit — to NewRecordingIterator stepped d
// times, for every d.
func ResumeIterator(in *graph.Instance, cp *ProxCheckpoint) (*Iterator, error) {
	if cp == nil {
		return nil, fmt.Errorf("score: nil checkpoint")
	}
	if cp.in != in {
		return nil, fmt.Errorf("score: checkpoint belongs to a different instance")
	}
	it := NewRecordingIterator(in, cp.params, cp.seeker)
	// Full slice expression: appends past the inherited depth must
	// reallocate rather than scribble on an array another iterator resumed
	// from the same checkpoint may also be extending.
	it.layers = cp.layers[:len(cp.layers):len(cp.layers)]
	return it, nil
}

// N returns the exploration depth the checkpoint covers.
func (cp *ProxCheckpoint) N() int { return len(cp.layers) }

// Seeker returns the seeker the exploration started from.
func (cp *ProxCheckpoint) Seeker() graph.NID { return cp.seeker }

// Params returns the damping factors of the exploration.
func (cp *ProxCheckpoint) Params() Params { return cp.params }

// For reports whether the checkpoint was recorded over this instance.
// Checkpoints are bound to the instance pointer: node ids are only
// meaningful within one loaded instance generation.
func (cp *ProxCheckpoint) For(in *graph.Instance) bool { return cp.in == in }

// Supersedes reports whether cp should replace old in a deepen-only cache:
// always when old is nil or was recorded over a different (stale) instance,
// otherwise only when cp explored strictly deeper.
func (cp *ProxCheckpoint) Supersedes(old *ProxCheckpoint) bool {
	return old == nil || old.in != cp.in || len(cp.layers) > len(old.layers)
}

// Bytes returns the checkpoint's approximate memory footprint, the unit a
// byte-budgeted cache accounts evictions in.
func (cp *ProxCheckpoint) Bytes() int64 { return cp.bytes }

// layerEntryBytes is the cost of one recorded (node, value) pair; layer
// and struct overheads are folded into fixed per-layer/per-checkpoint
// constants.
const (
	layerEntryBytes     = 4 + 8
	layerOverheadBytes  = 48
	checkpointBaseBytes = 96
)

func (cp *ProxCheckpoint) footprint() int64 {
	b := int64(checkpointBaseBytes)
	for _, l := range cp.layers {
		b += layerOverheadBytes + int64(len(l.nodes))*layerEntryBytes
	}
	return b
}
