// Package datagen generates synthetic S3 instances. It provides (a) small
// random instances used by property-based tests (this file) and (b) the
// three paper-shaped dataset generators standing in for the Twitter,
// Vodkaster and Yelp datasets of §5.1 (twitter.go, vodkaster.go, yelp.go),
// plus the synthetic ontology that replaces DBpedia.
package datagen

import (
	"fmt"
	"math/rand"

	"s3/internal/doc"
	"s3/internal/graph"
)

// RandomOptions bounds the size of RandomSpec instances.
type RandomOptions struct {
	MaxUsers    int // ≥ 2
	MaxDocs     int // ≥ 1
	MaxDepth    int // document tree depth (≥ 1)
	MaxFanout   int // children per node (≥ 1)
	Keywords    int // vocabulary size (≥ 2)
	TagDensity  float64
	EdgeDensity float64
}

// DefaultRandomOptions sizes instances so that exhaustive oracles stay
// fast while every code path (tags on tags, endorsements, comment chains,
// ontology extensions) is exercised.
func DefaultRandomOptions() RandomOptions {
	return RandomOptions{
		MaxUsers:    6,
		MaxDocs:     8,
		MaxDepth:    3,
		MaxFanout:   3,
		Keywords:    8,
		TagDensity:  0.5,
		EdgeDensity: 0.4,
	}
}

// RandomSpec draws a random, always-valid instance specification. The same
// rng state yields the same spec.
func RandomSpec(rng *rand.Rand, o RandomOptions) graph.Spec {
	var spec graph.Spec

	kw := func(i int) string { return fmt.Sprintf("kw%d", i) }
	nUsers := 2 + rng.Intn(o.MaxUsers-1)
	for i := 0; i < nUsers; i++ {
		spec.Users = append(spec.Users, fmt.Sprintf("user%d", i))
	}
	// A small subclass lattice over the keyword vocabulary, giving some
	// query keywords non-trivial extensions.
	for i := 0; i < o.Keywords/2; i++ {
		a, b := rng.Intn(o.Keywords), rng.Intn(o.Keywords)
		if a != b {
			spec.Ontology = append(spec.Ontology, [3]string{kw(a), "rdfs:subClassOf", kw(b)})
		}
	}

	// Social edges.
	for i := 0; i < nUsers; i++ {
		for j := 0; j < nUsers; j++ {
			if i != j && rng.Float64() < o.EdgeDensity {
				w := 0.1 + 0.9*rng.Float64()
				spec.Social = append(spec.Social, graph.SocialSpec{
					From: spec.Users[i], To: spec.Users[j], W: w,
				})
			}
		}
	}

	// Documents with random small trees; every node holds 0-2 keywords.
	nDocs := 1 + rng.Intn(o.MaxDocs)
	var allNodes [][]string // per doc, its node URIs in pre-order
	for di := 0; di < nDocs; di++ {
		uri := fmt.Sprintf("doc%d", di)
		root := &doc.Node{URI: uri, Name: "doc"}
		uris := []string{uri}
		var grow func(n *doc.Node, parentURI string, depth int)
		grow = func(n *doc.Node, parentURI string, depth int) {
			for k := 0; k < rng.Intn(3); k++ {
				n.Keywords = append(n.Keywords, kw(rng.Intn(o.Keywords)))
			}
			if depth >= o.MaxDepth {
				return
			}
			for c := 0; c < rng.Intn(o.MaxFanout+1); c++ {
				childURI := fmt.Sprintf("%s.%d", parentURI, c+1)
				child := &doc.Node{URI: childURI, Name: "sec"}
				n.Children = append(n.Children, child)
				uris = append(uris, childURI)
				grow(child, childURI, depth+1)
			}
		}
		grow(root, uri, 0)
		spec.Docs = append(spec.Docs, root)
		allNodes = append(allNodes, uris)

		// Every document gets an author; some fragments get one too.
		spec.Posts = append(spec.Posts, graph.PostSpec{Doc: uri, User: spec.Users[rng.Intn(nUsers)]})
		if len(uris) > 1 && rng.Float64() < 0.3 {
			spec.Posts = append(spec.Posts, graph.PostSpec{
				Doc: uris[1+rng.Intn(len(uris)-1)], User: spec.Users[rng.Intn(nUsers)],
			})
		}
	}

	// Comments: later documents may comment on nodes of earlier ones
	// (acyclic, like real reply chains).
	for di := 1; di < nDocs; di++ {
		if rng.Float64() < 0.5 {
			target := allNodes[rng.Intn(di)]
			spec.Comments = append(spec.Comments, graph.CommentSpec{
				Comment: allNodes[di][0],
				Target:  target[rng.Intn(len(target))],
			})
		}
	}

	// Tags: keyword tags, endorsements, and occasionally tags on tags.
	nTags := int(float64(nDocs) * o.TagDensity * (1 + rng.Float64()))
	var tagURIs []string
	for ti := 0; ti < nTags; ti++ {
		uri := fmt.Sprintf("tag%d", ti)
		var subject string
		if len(tagURIs) > 0 && rng.Float64() < 0.25 {
			subject = tagURIs[rng.Intn(len(tagURIs))]
		} else {
			nodes := allNodes[rng.Intn(nDocs)]
			subject = nodes[rng.Intn(len(nodes))]
		}
		keyword := ""
		if rng.Float64() < 0.7 {
			keyword = kw(rng.Intn(o.Keywords))
		}
		spec.Tags = append(spec.Tags, graph.TagSpec{
			URI: uri, Subject: subject,
			Author:  spec.Users[rng.Intn(nUsers)],
			Keyword: keyword,
		})
		tagURIs = append(tagURIs, uri)
	}
	return spec
}
