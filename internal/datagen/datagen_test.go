package datagen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"s3/internal/graph"
	"s3/internal/text"
)

func TestWordsAreDeterministicAndDistinct(t *testing.T) {
	seen := make(map[string]int)
	for i := 0; i < 2000; i++ {
		w := Word(i)
		if w == "" {
			t.Fatalf("Word(%d) empty", i)
		}
		if j, dup := seen[w]; dup {
			t.Fatalf("Word(%d) == Word(%d) == %q", i, j, w)
		}
		seen[w] = i
		if Word(i) != w {
			t.Fatalf("Word(%d) not deterministic", i)
		}
	}
	if FrenchWord(3) == "" || FrenchWord(3) != FrenchWord(3) {
		t.Fatal("FrenchWord not deterministic")
	}
}

func TestZipfIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1.4, 1000)
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < 10*counts[50] {
		t.Fatalf("Zipf not skewed enough: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestPowerLawDegreesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	degs := PowerLawDegrees(rng, 5000, 10, 800)
	var sum, maxDeg int
	for _, d := range degs {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
		if d < 0 {
			t.Fatal("negative degree")
		}
	}
	mean := float64(sum) / float64(len(degs))
	if mean < 5 || mean > 20 {
		t.Fatalf("mean degree %v far from target 10", mean)
	}
	if maxDeg < 50 {
		t.Fatalf("max degree %d: no heavy tail", maxDeg)
	}
}

func TestOntologyExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ont := GenOntology(rng, DefaultOntologyOptions())
	spec := graph.Spec{Ontology: ont.Triples}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	// Root classes must have non-trivial extensions (sub-classes plus
	// typed entities).
	ext := in.Ontology().ExtStr(ont.ClassNames[0])
	if len(ext) < 3 {
		t.Fatalf("Ext(%s) = %d entries, want ≥ 3", ont.ClassNames[0], len(ext))
	}
}

func TestTwitterShape(t *testing.T) {
	o := DefaultTwitterOptions()
	o.Users, o.Tweets = 300, 1500
	spec, rep := Twitter(o)
	if rep.Tweets != o.Tweets {
		t.Fatalf("tweets = %d, want %d", rep.Tweets, o.Tweets)
	}
	// The retweet and reply shares must match Figure 4 (±3% absolute:
	// small-sample noise plus the "no original yet" warm-up).
	if math.Abs(rep.RetweetFrac-0.85) > 0.03 {
		t.Fatalf("retweet fraction %v, want ≈ 0.85", rep.RetweetFrac)
	}
	if math.Abs(rep.ReplyFrac-0.069) > 0.03 {
		t.Fatalf("reply fraction %v, want ≈ 0.069", rep.ReplyFrac)
	}
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	s := in.Stats()
	if s.Users != o.Users {
		t.Fatalf("users = %d", s.Users)
	}
	if s.Documents != rep.Documents {
		t.Fatalf("documents = %d, want %d", s.Documents, rep.Documents)
	}
	if s.Tags != rep.Tags+rep.Endorsements {
		t.Fatalf("tags = %d, want %d", s.Tags, rep.Tags+rep.Endorsements)
	}
	if s.SocialEdges == 0 || s.AvgSocialDegree <= 1 {
		t.Fatalf("social graph too thin: %+v", s)
	}
	// Every tweet document has the 3-node structure (text/date/geo).
	if s.Fragments != 3*s.Documents {
		t.Fatalf("fragments = %d, want %d", s.Fragments, 3*s.Documents)
	}
}

func TestTwitterDeterminism(t *testing.T) {
	o := DefaultTwitterOptions()
	o.Users, o.Tweets = 100, 400
	a, _ := Twitter(o)
	b, _ := Twitter(o)
	if !reflect.DeepEqual(a.Users, b.Users) || len(a.Docs) != len(b.Docs) ||
		!reflect.DeepEqual(a.Social, b.Social) || !reflect.DeepEqual(a.Tags, b.Tags) {
		t.Fatal("same seed produced different specs")
	}
	o.Seed = 99
	c, _ := Twitter(o)
	if reflect.DeepEqual(a.Social, c.Social) && len(a.Docs) == len(c.Docs) && reflect.DeepEqual(a.Tags, c.Tags) {
		t.Fatal("different seeds produced identical specs")
	}
}

func TestVodkasterShape(t *testing.T) {
	o := DefaultVodkasterOptions()
	o.Users, o.Movies = 200, 150
	spec := Vodkaster(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	s := in.Stats()
	if s.Users != o.Users || s.Documents < o.Movies {
		t.Fatalf("stats = %+v", s)
	}
	if s.Tags != 0 {
		t.Fatalf("I2 must have no tags, got %d", s.Tags)
	}
	if s.OntologyTriples > 10 {
		t.Fatalf("I2 must have no knowledge base, got %d triples", s.OntologyTriples)
	}
	if s.Comments == 0 {
		t.Fatal("comment threads missing")
	}
	// Threads keep each movie's comments in one component: components ≤
	// movies.
	if s.Components > o.Movies {
		t.Fatalf("components = %d > movies = %d", s.Components, o.Movies)
	}
	if !in.Ontology().HasStr("vdk:follow", "rdfs:subPropertyOf", graph.PropSocial) {
		t.Fatal("vdk:follow not a sub-property of S3:social")
	}
}

func TestYelpShape(t *testing.T) {
	o := DefaultYelpOptions()
	o.Users, o.Businesses = 300, 200
	spec := Yelp(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	s := in.Stats()
	if s.Users != o.Users || s.Documents < o.Businesses {
		t.Fatalf("stats = %+v", s)
	}
	if s.Tags != 0 {
		t.Fatalf("I3 must have no tags, got %d", s.Tags)
	}
	if s.OntologyTriples == 0 {
		t.Fatal("I3 must be ontology-enriched")
	}
	if s.Components > o.Businesses {
		t.Fatalf("components = %d > businesses = %d", s.Components, o.Businesses)
	}
	if !in.Ontology().HasStr("yelp:friend", "rdfs:subPropertyOf", graph.PropSocial) {
		t.Fatal("yelp:friend not a sub-property of S3:social")
	}
}

func TestRandomSpecAlwaysBuilds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := RandomSpec(rng, DefaultRandomOptions())
		if _, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
