package datagen

import (
	"fmt"
	"math/rand"

	"s3/internal/doc"
	"s3/internal/graph"
)

// VodkasterOptions size the synthetic stand-in for I2 (§5.1): a French
// movie-centred social network — follower edges, per-movie comment
// threads, sentence-level fragments, no ontology and no tags.
type VodkasterOptions struct {
	Seed   int64
	Users  int
	Movies int
	// CommentsPerMovie is the expected thread length (heavy-tailed).
	CommentsPerMovie float64
	Vocab            int
	AvgFollowDegree  float64
	// IsolatedFrac is the fraction of users with no follow edges at all;
	// content they author is unreachable through the social graph alone
	// (the paper's graph-reachability measure hinges on such users).
	IsolatedFrac float64
}

// DefaultVodkasterOptions is the laptop-scale default (the paper: 5.3k
// users, 330k comments over 20k movies).
func DefaultVodkasterOptions() VodkasterOptions {
	return VodkasterOptions{
		Seed:             2,
		Users:            800,
		Movies:           600,
		CommentsPerMovie: 5,
		Vocab:            3000,
		AvgFollowDegree:  10,
		IsolatedFrac:     0.3,
	}
}

// Vodkaster generates the I2 stand-in. Following the paper's construction:
// the first comment of each movie becomes a document whose stemmed
// sentences are its fragments; every later comment is a document too and
// comments on the first (sometimes on one of its sentence fragments —
// fragment-grain interaction is the point of requirement R2). Follower
// links become weight-1 vdk:follow edges, a sub-property of S3:social.
func Vodkaster(o VodkasterOptions) graph.Spec {
	rng := rand.New(rand.NewSource(o.Seed))
	var spec graph.Spec

	users := make([]string, o.Users)
	for i := range users {
		users[i] = fmt.Sprintf("vdk:u%d", i)
	}
	spec.Users = users

	isolated := make([]bool, o.Users)
	for i := range isolated {
		isolated[i] = rng.Float64() < o.IsolatedFrac
	}
	degrees := PowerLawDegrees(rng, o.Users, o.AvgFollowDegree, o.Users/4+1)
	seen := make(map[[2]int]bool)
	for u, deg := range degrees {
		if isolated[u] {
			continue
		}
		for d := 0; d < deg; d++ {
			v := rng.Intn(o.Users)
			if v == u || isolated[v] || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			spec.Social = append(spec.Social, graph.SocialSpec{
				From: users[u], To: users[v], W: 1, Prop: "vdk:follow",
			})
		}
	}

	zipfWord := NewZipf(rng, 1.4, o.Vocab)
	zipfThread := NewZipf(rng, 1.2, int(o.CommentsPerMovie*4)+2)
	zipfAuthor := NewZipf(rng, 1.3, o.Users)

	sentence := func() []string {
		n := 4 + rng.Intn(5)
		kws := make([]string, 0, n)
		for i := 0; i < n; i++ {
			kws = append(kws, FrenchWord(zipfWord.Draw()))
		}
		return kws
	}
	makeComment := func(uri string) *doc.Node {
		root := &doc.Node{URI: uri, Name: "comment"}
		for s := 0; s < 1+rng.Intn(3); s++ {
			root.Children = append(root.Children, &doc.Node{
				Name: "sentence", Keywords: sentence(),
			})
		}
		return root
	}

	cid := 0
	for m := 0; m < o.Movies; m++ {
		thread := 1 + zipfThread.Draw()
		firstURI := fmt.Sprintf("vdk:m%d-c0", m)
		first := makeComment(firstURI)
		spec.Docs = append(spec.Docs, first)
		spec.Posts = append(spec.Posts, graph.PostSpec{Doc: firstURI, User: users[zipfAuthor.Draw()]})
		cid++
		for c := 1; c < thread; c++ {
			uri := fmt.Sprintf("vdk:m%d-c%d", m, c)
			spec.Docs = append(spec.Docs, makeComment(uri))
			spec.Posts = append(spec.Posts, graph.PostSpec{Doc: uri, User: users[zipfAuthor.Draw()]})
			target := firstURI
			if len(first.Children) > 0 && rng.Float64() < 0.4 {
				// Comment on a specific sentence of the first comment.
				target = fmt.Sprintf("%s.%d", firstURI, 1+rng.Intn(len(first.Children)))
			}
			spec.Comments = append(spec.Comments, graph.CommentSpec{Comment: uri, Target: target})
			cid++
		}
	}
	return spec
}
