package datagen

import (
	"math/rand"
	"strings"
)

// Pseudo-word machinery: the generators need vocabularies whose exact
// strings do not matter but whose *distribution* does (Zipfian keyword
// frequencies drive the rare/common workload split of §5.1). Words are
// deterministic functions of their index so that the same seed always
// yields the same instance.

var enSyllables = []string{
	"ka", "re", "mi", "to", "san", "ber", "lo", "din", "va", "nor",
	"pel", "tu", "gra", "shi", "mon", "fa", "ler", "qui", "bas", "tem",
}

var frSyllables = []string{
	"bon", "lu", "mière", "chan", "vé", "ri", "tou", "jou", "ciné",
	"pas", "né", "ge", "mar", "bre", "veu", "soi", "gran", "pe", "tit",
}

// Word returns the i-th pseudo-word of the English-ish vocabulary.
func Word(i int) string { return makeWord(enSyllables, i) }

// FrenchWord returns the i-th pseudo-word of the French-ish vocabulary.
func FrenchWord(i int) string { return makeWord(frSyllables, i) }

func makeWord(syl []string, i int) string {
	n := len(syl)
	var sb strings.Builder
	// 2-4 syllables, chosen by mixed-radix decomposition of i so all
	// indices give distinct words.
	i++
	for i > 0 {
		sb.WriteString(syl[i%n])
		i /= n
	}
	return sb.String()
}

// Zipf samples vocabulary indices with a Zipfian frequency distribution —
// the shape of natural-language keyword frequencies that the rare/common
// workload split relies on.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a sampler over [0, n) with exponent s (s > 1; 1.4 is a
// reasonable text-like choice).
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Draw returns the next index; small indices are exponentially more
// frequent.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// PowerLawDegrees draws n out-degrees with a power-law tail bounded by
// maxDeg, scaled so the mean lands near avgDeg. Social networks'
// degree distributions are heavy-tailed; the §5.1 Twitter instance
// averages 317 social edges per connected user at full scale.
func PowerLawDegrees(rng *rand.Rand, n int, avgDeg float64, maxDeg int) []int {
	if n == 0 {
		return nil
	}
	raw := make([]float64, n)
	var sum float64
	for i := range raw {
		// Pareto with α≈2 via inverse transform.
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		raw[i] = 1 / (u * u)
		if raw[i] > float64(maxDeg) {
			raw[i] = float64(maxDeg)
		}
		sum += raw[i]
	}
	scale := avgDeg * float64(n) / sum
	out := make([]int, n)
	for i := range raw {
		d := int(raw[i]*scale + 0.5)
		if d > maxDeg {
			d = maxDeg
		}
		if d > n-1 {
			d = n - 1
		}
		out[i] = d
	}
	return out
}

// Communities assigns each of n members to one of roughly k communities
// with heavy-tailed sizes, returning the community id per member. Social
// edges inside a community model the paper's keyword-similarity links.
func Communities(rng *rand.Rand, n, k int) []int {
	if k < 1 {
		k = 1
	}
	z := NewZipf(rng, 1.3, k)
	out := make([]int, n)
	for i := range out {
		out[i] = z.Draw()
	}
	return out
}
