package datagen

import (
	"fmt"
	"math/rand"

	"s3/internal/doc"
	"s3/internal/graph"
)

// TwitterOptions size the synthetic stand-in for the paper's I1 instance
// (§5.1: one day of the public streaming API, May 2014).
type TwitterOptions struct {
	Seed   int64
	Users  int
	Tweets int
	// RetweetFrac and ReplyFrac reproduce Figure 4's shares: 85% of
	// tweets are retweets (becoming tags on the original), 6.9% are
	// replies (becoming comment documents).
	RetweetFrac float64
	ReplyFrac   float64
	// Vocab is the content vocabulary size; HashtagVocab the number of
	// distinct hashtags.
	Vocab        int
	HashtagVocab int
	// WordsPerTweet is the expected text length after stop-word removal.
	WordsPerTweet int
	// AvgSocialDegree controls the user-similarity social edges.
	AvgSocialDegree float64
	Ontology        OntologyOptions
}

// DefaultTwitterOptions is the laptop-scale default (the full-scale paper
// instance has 492k users and 1M tweets; shape, not size, is what the
// experiments assert).
func DefaultTwitterOptions() TwitterOptions {
	return TwitterOptions{
		Seed:            1,
		Users:           2000,
		Tweets:          8000,
		RetweetFrac:     0.85,
		ReplyFrac:       0.069,
		Vocab:           4000,
		HashtagVocab:    300,
		WordsPerTweet:   8,
		AvgSocialDegree: 12,
		Ontology:        DefaultOntologyOptions(),
	}
}

// Report records generation statistics mirroring Figure 4's
// Twitter-specific rows.
type Report struct {
	Tweets       int
	Documents    int
	RetweetFrac  float64
	ReplyFrac    float64
	Tags         int
	Endorsements int
}

// Twitter generates the I1 stand-in. Every non-retweet tweet becomes a
// three-node document (text, date, geo); retweets become hashtag tags (or
// keyword-less endorsements when they introduce no hashtag) on the
// original tweet; replies become documents that comment on the original.
// Tweet text mixes Zipfian vocabulary, entity mentions from the synthetic
// ontology (the DBpedia enrichment) and hashtags. Users are linked by
// similarity edges inside heavy-tailed communities, mirroring the paper's
// Jaccard-similarity construction with threshold 0.1.
func Twitter(o TwitterOptions) (graph.Spec, Report) {
	rng := rand.New(rand.NewSource(o.Seed))
	var spec graph.Spec
	var rep Report

	ont := GenOntology(rng, o.Ontology)
	spec.Ontology = ont.Triples

	// Users.
	users := make([]string, o.Users)
	for i := range users {
		users[i] = fmt.Sprintf("tw:u%d", i)
	}
	spec.Users = users

	// Social similarity edges within communities; weight is the simulated
	// similarity in [0.1, 1] (the paper thresholds at 0.1).
	comm := Communities(rng, o.Users, o.Users/40+1)
	byComm := make(map[int][]int)
	for u, c := range comm {
		byComm[c] = append(byComm[c], u)
	}
	degrees := PowerLawDegrees(rng, o.Users, o.AvgSocialDegree, o.Users/4+1)
	seenEdge := make(map[[2]int]bool)
	for u, deg := range degrees {
		peers := byComm[comm[u]]
		for d := 0; d < deg; d++ {
			var v int
			if len(peers) > 1 && rng.Float64() < 0.85 {
				v = peers[rng.Intn(len(peers))]
			} else {
				v = rng.Intn(o.Users)
			}
			if v == u || seenEdge[[2]int{u, v}] {
				continue
			}
			seenEdge[[2]int{u, v}] = true
			w := 0.1 + 0.9*rng.Float64()
			spec.Social = append(spec.Social, graph.SocialSpec{
				From: users[u], To: users[v], W: w, Prop: "tw:similar",
			})
		}
	}

	// Tweet stream. Authors follow a Zipfian activity distribution.
	zipfAuthor := NewZipf(rng, 1.3, o.Users)
	zipfWord := NewZipf(rng, 1.4, o.Vocab)
	zipfTag := NewZipf(rng, 1.3, o.HashtagVocab)
	zipfClass := NewZipf(rng, 1.3, len(ont.ClassNames))

	type tweetDoc struct {
		uri    string
		author int
	}
	var originals []tweetDoc
	tagSeq := 0

	textKeywords := func() []string {
		n := 3 + rng.Intn(2*o.WordsPerTweet-3)
		kws := make([]string, 0, n+2)
		for i := 0; i < n; i++ {
			kws = append(kws, Word(zipfWord.Draw()))
		}
		if rng.Float64() < 0.25 { // entity mention (DBpedia URI)
			kws = append(kws, ont.EntityTokens[rng.Intn(len(ont.EntityTokens))])
		}
		if rng.Float64() < 0.15 { // a class keyword in plain text
			kws = append(kws, ont.ClassNames[zipfClass.Draw()])
		}
		if rng.Float64() < 0.3 { // inline hashtag
			kws = append(kws, fmt.Sprintf("#h%d", zipfTag.Draw()))
		}
		return kws
	}

	makeTweet := func(i, author int) tweetDoc {
		uri := fmt.Sprintf("tw:t%d", i)
		root := &doc.Node{URI: uri, Name: "tweet", Children: []*doc.Node{
			{Name: "text", Keywords: textKeywords()},
			{Name: "date", Keywords: []string{fmt.Sprintf("2014-05-%02d", 1+rng.Intn(2))}},
			{Name: "geo", Keywords: []string{Word(1000 + rng.Intn(60))}},
		}}
		spec.Docs = append(spec.Docs, root)
		spec.Posts = append(spec.Posts, graph.PostSpec{Doc: uri, User: users[author]})
		rep.Documents++
		return tweetDoc{uri: uri, author: author}
	}

	for i := 0; i < o.Tweets; i++ {
		rep.Tweets++
		author := zipfAuthor.Draw()
		r := rng.Float64()
		switch {
		case r < o.RetweetFrac && len(originals) > 0:
			// Retweet: a tag (hashtag) or endorsement on the original.
			orig := originals[rng.Intn(len(originals))]
			tagURI := fmt.Sprintf("tw:rt%d", tagSeq)
			tagSeq++
			if rng.Float64() < 0.4 {
				h := fmt.Sprintf("#h%d", zipfTag.Draw())
				spec.Tags = append(spec.Tags, graph.TagSpec{
					URI: tagURI, Subject: orig.uri, Author: users[author], Keyword: h, Type: "tw:retweet",
				})
				rep.Tags++
			} else {
				spec.Tags = append(spec.Tags, graph.TagSpec{
					URI: tagURI, Subject: orig.uri, Author: users[author], Type: "tw:retweet",
				})
				rep.Endorsements++
			}
		case r < o.RetweetFrac+o.ReplyFrac && len(originals) > 0:
			// Reply: a document commenting on the original tweet.
			orig := originals[rng.Intn(len(originals))]
			td := makeTweet(i, author)
			spec.Comments = append(spec.Comments, graph.CommentSpec{
				Comment: td.uri, Target: orig.uri, Prop: "tw:repliesTo",
			})
		default:
			originals = append(originals, makeTweet(i, author))
		}
	}
	if rep.Tweets > 0 {
		rep.RetweetFrac = float64(rep.Tags+rep.Endorsements) / float64(rep.Tweets)
		rep.ReplyFrac = float64(len(spec.Comments)) / float64(rep.Tweets)
	}
	return spec, rep
}
