package datagen

import (
	"fmt"
	"math/rand"

	"s3/internal/rdf"
)

// OntologyOptions size the synthetic DBpedia stand-in.
type OntologyOptions struct {
	// Classes is the number of classes, arranged in a forest of subclass
	// trees; class names double as content keywords so that queries can
	// hit them directly.
	Classes int
	// Branching is the subclass fan-out.
	Branching int
	// Entities is the number of typed entities; entity tokens are
	// injected into generated text, standing in for the paper's
	// replacement of words by DBpedia URIs via foaf:name.
	Entities int
}

// DefaultOntologyOptions matches the benchmark defaults: enough structure
// for the ≈50% workload growth under semantic extension the paper reports.
func DefaultOntologyOptions() OntologyOptions {
	return OntologyOptions{Classes: 120, Branching: 4, Entities: 400}
}

// Ontology is the generated semantic layer.
type Ontology struct {
	// Triples is the RDF schema + facts (all weight 1).
	Triples [][3]string
	// ClassNames lists the class keywords (usable as query keywords with
	// non-trivial extensions).
	ClassNames []string
	// EntityTokens lists the entity keywords, indexed by entity id; the
	// i-th entity is typed with class classOf[i].
	EntityTokens []string
	classOf      []int
}

// GenOntology builds a synthetic class forest with typed entities:
//
//	class_child ≺sc class_parent        (subclass forest)
//	ent_i  rdf:type  class_j            (typed entities)
//	ent_i  foaf:name "word"             (lexicalisation)
//
// Ext(class) then contains the class's sub-classes and entities, which is
// exactly what the paper's DBpedia enrichment provides.
func GenOntology(rng *rand.Rand, o OntologyOptions) *Ontology {
	ont := &Ontology{}
	for i := 0; i < o.Classes; i++ {
		name := "class-" + Word(i*7+3)
		ont.ClassNames = append(ont.ClassNames, name)
		if i > 0 {
			// Parent in a shallow forest: attaching to index i/branching
			// keeps trees balanced; a few roots stay parentless.
			parent := (i - 1) / o.Branching
			ont.Triples = append(ont.Triples, [3]string{name, rdf.SubClassOfURI, ont.ClassNames[parent]})
		}
	}
	for e := 0; e < o.Entities; e++ {
		tok := fmt.Sprintf("ent:%s-%d", Word(e*3+11), e)
		cls := rng.Intn(o.Classes)
		ont.EntityTokens = append(ont.EntityTokens, tok)
		ont.classOf = append(ont.classOf, cls)
		ont.Triples = append(ont.Triples, [3]string{tok, rdf.TypeURI, ont.ClassNames[cls]})
		ont.Triples = append(ont.Triples, [3]string{tok, "foaf:name", Word(e*3 + 11)})
	}
	return ont
}

// ClassOf returns the class index of entity e.
func (o *Ontology) ClassOf(e int) int { return o.classOf[e] }
