package datagen

import (
	"fmt"
	"math/rand"

	"s3/internal/doc"
	"s3/internal/graph"
)

// YelpOptions size the synthetic stand-in for I3 (§5.1): crowd-sourced
// business reviews with friend lists — weight-1 yelp:friend edges,
// per-business review chains, DBpedia-style enrichment, no tags.
type YelpOptions struct {
	Seed       int64
	Users      int
	Businesses int
	// ReviewsPerBusiness is the expected chain length (heavy-tailed).
	ReviewsPerBusiness float64
	Vocab              int
	AvgFriendDegree    float64
	// IsolatedFrac is the fraction of users with no friends at all (very
	// common on review sites; drives the paper's 41% graph-reachability
	// figure for I3).
	IsolatedFrac float64
	Ontology     OntologyOptions
}

// DefaultYelpOptions is the laptop-scale default (the paper: 367k users,
// 2.06M reviews over 61k businesses).
func DefaultYelpOptions() YelpOptions {
	return YelpOptions{
		Seed:               3,
		Users:              1500,
		Businesses:         900,
		ReviewsPerBusiness: 4,
		Vocab:              5000,
		AvgFriendDegree:    10,
		IsolatedFrac:       0.45,
		Ontology:           DefaultOntologyOptions(),
	}
}

// Yelp generates the I3 stand-in: the first review of a business is a
// document, each later review comments on it (as the paper prescribes);
// review text is entity-enriched; friendships are symmetric weight-1
// edges under the yelp:friend sub-property.
func Yelp(o YelpOptions) graph.Spec {
	rng := rand.New(rand.NewSource(o.Seed))
	var spec graph.Spec

	ont := GenOntology(rng, o.Ontology)
	spec.Ontology = ont.Triples

	users := make([]string, o.Users)
	for i := range users {
		users[i] = fmt.Sprintf("yelp:u%d", i)
	}
	spec.Users = users

	isolated := make([]bool, o.Users)
	for i := range isolated {
		isolated[i] = rng.Float64() < o.IsolatedFrac
	}
	degrees := PowerLawDegrees(rng, o.Users, o.AvgFriendDegree, o.Users/4+1)
	seen := make(map[[2]int]bool)
	for u, deg := range degrees {
		if isolated[u] {
			continue
		}
		for d := 0; d < deg; d++ {
			v := rng.Intn(o.Users)
			if v == u || isolated[v] || seen[[2]int{u, v}] {
				continue
			}
			// Friendship is symmetric: add both directions.
			seen[[2]int{u, v}] = true
			seen[[2]int{v, u}] = true
			spec.Social = append(spec.Social,
				graph.SocialSpec{From: users[u], To: users[v], W: 1, Prop: "yelp:friend"},
				graph.SocialSpec{From: users[v], To: users[u], W: 1, Prop: "yelp:friend"},
			)
		}
	}

	zipfWord := NewZipf(rng, 1.4, o.Vocab)
	zipfChain := NewZipf(rng, 1.2, int(o.ReviewsPerBusiness*4)+2)
	zipfAuthor := NewZipf(rng, 1.3, o.Users)
	zipfClass := NewZipf(rng, 1.3, len(ont.ClassNames))

	paragraph := func() []string {
		n := 6 + rng.Intn(8)
		kws := make([]string, 0, n+2)
		for i := 0; i < n; i++ {
			kws = append(kws, Word(zipfWord.Draw()))
		}
		if rng.Float64() < 0.3 {
			kws = append(kws, ont.EntityTokens[rng.Intn(len(ont.EntityTokens))])
		}
		if rng.Float64() < 0.15 {
			kws = append(kws, ont.ClassNames[zipfClass.Draw()])
		}
		return kws
	}
	makeReview := func(uri string, stars int) *doc.Node {
		root := &doc.Node{URI: uri, Name: "review", Children: []*doc.Node{
			{Name: "stars", Keywords: []string{fmt.Sprintf("stars%d", stars)}},
		}}
		for p := 0; p < 1+rng.Intn(3); p++ {
			root.Children = append(root.Children, &doc.Node{Name: "par", Keywords: paragraph()})
		}
		return root
	}

	for b := 0; b < o.Businesses; b++ {
		chain := 1 + zipfChain.Draw()
		firstURI := fmt.Sprintf("yelp:b%d-r0", b)
		first := makeReview(firstURI, 1+rng.Intn(5))
		spec.Docs = append(spec.Docs, first)
		spec.Posts = append(spec.Posts, graph.PostSpec{Doc: firstURI, User: users[zipfAuthor.Draw()]})
		for c := 1; c < chain; c++ {
			uri := fmt.Sprintf("yelp:b%d-r%d", b, c)
			spec.Docs = append(spec.Docs, makeReview(uri, 1+rng.Intn(5)))
			spec.Posts = append(spec.Posts, graph.PostSpec{Doc: uri, User: users[zipfAuthor.Draw()]})
			target := firstURI
			if rng.Float64() < 0.3 && len(first.Children) > 1 {
				target = fmt.Sprintf("%s.%d", firstURI, 2+rng.Intn(len(first.Children)-1))
			}
			spec.Comments = append(spec.Comments, graph.CommentSpec{Comment: uri, Target: target})
		}
	}
	return spec
}
