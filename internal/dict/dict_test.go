package dict

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	a := d.Intern("a")
	b := d.Intern("b")
	c := d.Intern("c")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("expected dense ids 0,1,2, got %d,%d,%d", a, b, c)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestInternIsIdempotent(t *testing.T) {
	d := New()
	first := d.Intern("x")
	second := d.Intern("x")
	if first != second {
		t.Fatalf("re-interning returned %d, want %d", second, first)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	d := New()
	d.Intern("present")
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup returned ok for a string that was never interned")
	}
	if d.Has("absent") {
		t.Fatal("Has returned true for a string that was never interned")
	}
	if !d.Has("present") {
		t.Fatal("Has returned false for an interned string")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := New()
	inputs := []string{"", "a", "université", "M.S.", "http://example.org/x"}
	for _, s := range inputs {
		id := d.Intern(s)
		if got := d.String(id); got != s {
			t.Fatalf("String(Intern(%q)) = %q", s, got)
		}
	}
}

func TestStringPanicsOnUnknownID(t *testing.T) {
	d := New()
	defer func() {
		if recover() == nil {
			t.Fatal("String on an unknown ID did not panic")
		}
	}()
	d.String(42)
}

func TestStringsSliceOrder(t *testing.T) {
	d := New()
	want := []string{"z", "y", "x"}
	for _, s := range want {
		d.Intern(s)
	}
	got := d.Strings()
	if len(got) != len(want) {
		t.Fatalf("Strings() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strings()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Property: for any sequence of strings, interning is a bijection between
// the set of distinct strings and [0, Len).
func TestQuickRoundTrip(t *testing.T) {
	f := func(inputs []string) bool {
		d := New()
		seen := make(map[string]ID)
		for _, s := range inputs {
			id := d.Intern(s)
			if prev, ok := seen[s]; ok && prev != id {
				return false
			}
			seen[s] = id
			if d.String(id) != s {
				return false
			}
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(keys[i%len(keys)])
	}
}

// arenaOf flattens strings into the FromArena input form.
func arenaOf(strs []string) (arena []byte, offs []int64, perm []int32) {
	offs = make([]int64, 1, len(strs)+1)
	for _, s := range strs {
		arena = append(arena, s...)
		offs = append(offs, int64(len(arena)))
	}
	perm = make([]int32, len(strs))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool { return strs[perm[i]] < strs[perm[j]] })
	return arena, offs, perm
}

func TestFromArenaLookups(t *testing.T) {
	strs := []string{"urn:b", "urn:a", "", "kw:zeta", "kw:alpha"}
	arena, offs, perm := arenaOf(strs)
	d, err := FromArena(arena, offs, perm)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(strs) {
		t.Fatalf("Len() = %d, want %d", d.Len(), len(strs))
	}
	for i, s := range strs {
		if got := d.String(ID(i)); got != s {
			t.Errorf("String(%d) = %q, want %q", i, got, s)
		}
		id, ok := d.Lookup(s)
		if !ok || id != ID(i) {
			t.Errorf("Lookup(%q) = %d/%v, want %d", s, id, ok, i)
		}
		if !d.Has(s) {
			t.Errorf("Has(%q) = false", s)
		}
	}
	if _, ok := d.Lookup("urn:missing"); ok {
		t.Error("Lookup found a string that was never interned")
	}
	got := d.Strings()
	for i := range strs {
		if got[i] != strs[i] {
			t.Errorf("Strings()[%d] = %q, want %q", i, got[i], strs[i])
		}
	}
}

// TestFromArenaOverflowIntern checks the post-freeze overflow layer: new
// strings intern into fresh ids, existing ones resolve to the base.
func TestFromArenaOverflowIntern(t *testing.T) {
	arena, offs, perm := arenaOf([]string{"a", "b"})
	d, err := FromArena(arena, offs, perm)
	if err != nil {
		t.Fatal(err)
	}
	if id := d.Intern("a"); id != 0 {
		t.Fatalf("Intern(existing) = %d, want 0", id)
	}
	id := d.Intern("c")
	if id != 2 {
		t.Fatalf("Intern(new) = %d, want 2", id)
	}
	if again := d.Intern("c"); again != id {
		t.Fatalf("re-Intern = %d, want %d", again, id)
	}
	if got := d.String(id); got != "c" {
		t.Fatalf("String(%d) = %q", id, got)
	}
	if got, ok := d.Lookup("c"); !ok || got != id {
		t.Fatalf("Lookup(c) = %d/%v", got, ok)
	}
	if d.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", d.Len())
	}
}

func TestFromArenaRejectsBadStructure(t *testing.T) {
	arena, offs, perm := arenaOf([]string{"a", "b"})
	if _, err := FromArena(arena, []int64{0, 1}, perm); err == nil {
		t.Error("offsets not spanning the arena accepted")
	}
	if _, err := FromArena(arena, []int64{0, 2, 1, int64(len(arena))}, []int32{0, 1, 2}); err == nil {
		t.Error("decreasing offsets accepted")
	}
	if _, err := FromArena(arena, offs, []int32{0}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := FromArena(arena, offs, []int32{0, 9}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
}
