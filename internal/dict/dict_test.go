package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	a := d.Intern("a")
	b := d.Intern("b")
	c := d.Intern("c")
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("expected dense ids 0,1,2, got %d,%d,%d", a, b, c)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestInternIsIdempotent(t *testing.T) {
	d := New()
	first := d.Intern("x")
	second := d.Intern("x")
	if first != second {
		t.Fatalf("re-interning returned %d, want %d", second, first)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	d := New()
	d.Intern("present")
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup returned ok for a string that was never interned")
	}
	if d.Has("absent") {
		t.Fatal("Has returned true for a string that was never interned")
	}
	if !d.Has("present") {
		t.Fatal("Has returned false for an interned string")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := New()
	inputs := []string{"", "a", "université", "M.S.", "http://example.org/x"}
	for _, s := range inputs {
		id := d.Intern(s)
		if got := d.String(id); got != s {
			t.Fatalf("String(Intern(%q)) = %q", s, got)
		}
	}
}

func TestStringPanicsOnUnknownID(t *testing.T) {
	d := New()
	defer func() {
		if recover() == nil {
			t.Fatal("String on an unknown ID did not panic")
		}
	}()
	d.String(42)
}

func TestStringsSliceOrder(t *testing.T) {
	d := New()
	want := []string{"z", "y", "x"}
	for _, s := range want {
		d.Intern(s)
	}
	got := d.Strings()
	if len(got) != len(want) {
		t.Fatalf("Strings() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Strings()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Property: for any sequence of strings, interning is a bijection between
// the set of distinct strings and [0, Len).
func TestQuickRoundTrip(t *testing.T) {
	f := func(inputs []string) bool {
		d := New()
		seen := make(map[string]ID)
		for _, s := range inputs {
			id := d.Intern(s)
			if prev, ok := seen[s]; ok && prev != id {
				return false
			}
			seen[s] = id
			if d.String(id) != s {
				return false
			}
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	d := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(keys[i%len(keys)])
	}
}
