// Package dict provides string interning: a bidirectional mapping between
// strings (URIs, literals, keywords) and dense integer identifiers.
//
// Every layer of the S3 instance (RDF triples, document nodes, tags, the
// network matrix) speaks in dict.ID values instead of strings, which keeps
// the hot paths allocation-free and makes node identity a single integer
// comparison.
//
// A dictionary comes in two flavours:
//
//   - map-backed (New, FromStrings): the mutable form used by builders.
//     Safe for concurrent readers once no more writers call Intern;
//     interleaving Intern with readers requires external locking.
//   - arena-backed (FromArena): a read-only base over one contiguous byte
//     arena (typically a memory-mapped snapshot section) plus a sorted
//     permutation for binary-searched lookups. No per-entry allocation
//     happens on construction. A small mutex-guarded overflow layer still
//     accepts Intern of genuinely new strings (e.g. the lazy RDF export),
//     so arena dictionaries are safe for concurrent use throughout.
package dict

import (
	"fmt"
	"strings"
	"sync"
	"unsafe"
)

// ID is a dense identifier for an interned string. IDs are assigned
// consecutively from 0 in insertion order.
type ID uint32

// NoID is a sentinel that is never returned by Intern.
const NoID ID = ^ID(0)

// Dict interns strings into dense IDs and resolves IDs back to strings.
// The zero value is not usable; call New, FromStrings or FromArena.
type Dict struct {
	byStr map[string]ID
	strs  []string

	// Arena mode: entry i is arena[offs[i]:offs[i+1]] (no per-entry
	// materialisation at all — lookups binary-search perm, which lists
	// ids in ascending string order, comparing bytes straight out of the
	// arena), and the overflow below accepts post-freeze Intern calls.
	// byStr and strs are nil.
	arena []byte
	offs  []int64
	perm  []int32

	mu     sync.RWMutex
	moreBy map[string]ID
	more   []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byStr: make(map[string]ID)}
}

// Intern returns the ID for s, assigning a fresh one if s was never seen.
func (d *Dict) Intern(s string) ID {
	if d.offs != nil {
		return d.internArena(s)
	}
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id := ID(len(d.strs))
	if id == NoID {
		panic("dict: identifier space exhausted")
	}
	d.byStr[s] = id
	d.strs = append(d.strs, s)
	return id
}

func (d *Dict) internArena(s string) ID {
	if id, ok := d.lookupBase(s); ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.moreBy[s]; ok {
		return id
	}
	id := ID(d.baseLen() + len(d.more))
	if id == NoID {
		panic("dict: identifier space exhausted")
	}
	if d.moreBy == nil {
		d.moreBy = make(map[string]ID)
	}
	s = strings.Clone(s)
	d.moreBy[s] = id
	d.more = append(d.more, s)
	return id
}

// baseLen returns the number of arena entries.
func (d *Dict) baseLen() int { return len(d.offs) - 1 }

// baseBytes returns entry i of the arena, uncopied.
func (d *Dict) baseBytes(i int32) []byte {
	return d.arena[d.offs[i]:d.offs[i+1]]
}

// cmpBytesString is bytes.Compare between an arena entry and a query
// string, without converting either (conversions allocate).
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// lookupBase binary-searches the sorted permutation of the arena base,
// comparing bytes straight out of the arena.
func (d *Dict) lookupBase(s string) (ID, bool) {
	lo, hi := 0, len(d.perm)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpBytesString(d.baseBytes(d.perm[mid]), s) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.perm) && cmpBytesString(d.baseBytes(d.perm[lo]), s) == 0 {
		return ID(d.perm[lo]), true
	}
	return NoID, false
}

// Lookup returns the ID for s if it was interned.
func (d *Dict) Lookup(s string) (ID, bool) {
	if d.offs != nil {
		if id, ok := d.lookupBase(s); ok {
			return id, true
		}
		d.mu.RLock()
		id, ok := d.moreBy[s]
		d.mu.RUnlock()
		return id, ok
	}
	id, ok := d.byStr[s]
	return id, ok
}

// Has reports whether s was interned.
func (d *Dict) Has(s string) bool {
	_, ok := d.Lookup(s)
	return ok
}

// String resolves an ID back to the interned string. It panics on an ID
// that was never issued, which always indicates a programming error.
//
// For an arena-backed dictionary the result is a private copy: returned
// strings never alias the arena, so they stay valid after the mapping
// backing the arena is released. (Strings, used by the snapshot writer,
// is the one accessor that returns arena-aliasing views.)
func (d *Dict) String(id ID) string {
	if d.offs != nil {
		if int(id) < d.baseLen() {
			return string(d.baseBytes(int32(id)))
		}
		d.mu.RLock()
		defer d.mu.RUnlock()
		if i := int(id) - d.baseLen(); i >= 0 && i < len(d.more) {
			return d.more[i]
		}
		panic(fmt.Sprintf("dict: unknown id %d (size %d)", id, d.Len()))
	}
	if int(id) >= len(d.strs) {
		panic(fmt.Sprintf("dict: unknown id %d (size %d)", id, len(d.strs)))
	}
	return d.strs[id]
}

// FromStrings reconstructs a dictionary from a slice of strings in ID
// order, as returned by Strings. The slice is retained. It fails on
// duplicates, which would silently re-map IDs.
func FromStrings(strs []string) (*Dict, error) {
	d := &Dict{byStr: make(map[string]ID, len(strs)), strs: strs}
	for i, s := range strs {
		if _, dup := d.byStr[s]; dup {
			return nil, fmt.Errorf("dict: duplicate string %q at id %d", s, i)
		}
		d.byStr[s] = ID(i)
	}
	return d, nil
}

// FromArena reconstructs a read-only dictionary over a contiguous string
// arena: entry i is arena[offs[i]:offs[i+1]], and perm lists the ids in
// ascending string order (the lookup index, as produced by SortPerm). The
// arena and perm are retained, and the entry strings alias the arena
// without copying — the caller owns the arena's lifetime and must keep it
// readable and unmodified for as long as the dictionary (or any instance
// built over it) is in use.
//
// FromArena validates structure (offset monotonicity, index bounds) so
// no lookup can panic, but trusts the sort order of perm — the caller is
// expected to have verified the bytes' integrity (checksums) and to
// trust their writer; an unsorted index would merely make Lookup miss.
func FromArena(arena []byte, offs []int64, perm []int32) (*Dict, error) {
	if len(offs) == 0 || offs[0] != 0 || offs[len(offs)-1] != int64(len(arena)) {
		return nil, fmt.Errorf("dict: arena offsets do not span %d bytes", len(arena))
	}
	n := len(offs) - 1
	for i := 0; i < n; i++ {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("dict: decreasing arena offset at entry %d", i)
		}
	}
	if len(perm) != n {
		return nil, fmt.Errorf("dict: sort index has %d entries for %d strings", len(perm), n)
	}
	for _, p := range perm {
		if uint32(p) >= uint32(n) {
			return nil, fmt.Errorf("dict: sort index entry %d out of range", p)
		}
	}
	return &Dict{arena: arena, offs: offs, perm: perm}, nil
}

// Len returns the number of interned strings.
func (d *Dict) Len() int {
	if d.offs != nil {
		d.mu.RLock()
		defer d.mu.RUnlock()
		return d.baseLen() + len(d.more)
	}
	return len(d.strs)
}

// Strings returns all interned strings in ID order. For a map-backed
// dictionary the returned slice is shared and must not be modified; an
// arena-backed dictionary returns a fresh slice whose entries alias the
// arena.
func (d *Dict) Strings() []string {
	if d.offs != nil {
		d.mu.RLock()
		defer d.mu.RUnlock()
		out := make([]string, 0, d.baseLen()+len(d.more))
		for i := 0; i < d.baseLen(); i++ {
			b := d.baseBytes(int32(i))
			if len(b) == 0 {
				out = append(out, "")
				continue
			}
			out = append(out, unsafe.String(&b[0], len(b)))
		}
		return append(out, d.more...)
	}
	return d.strs
}
