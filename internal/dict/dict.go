// Package dict provides string interning: a bidirectional mapping between
// strings (URIs, literals, keywords) and dense integer identifiers.
//
// Every layer of the S3 instance (RDF triples, document nodes, tags, the
// network matrix) speaks in dict.ID values instead of strings, which keeps
// the hot paths allocation-free and makes node identity a single integer
// comparison. A Dict is safe for concurrent readers once no more writers
// call Intern; interleaving Intern with readers requires external locking
// (the instance builder interns everything before queries start).
package dict

import "fmt"

// ID is a dense identifier for an interned string. IDs are assigned
// consecutively from 0 in insertion order.
type ID uint32

// NoID is a sentinel that is never returned by Intern.
const NoID ID = ^ID(0)

// Dict interns strings into dense IDs and resolves IDs back to strings.
// The zero value is not usable; call New.
type Dict struct {
	byStr map[string]ID
	strs  []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byStr: make(map[string]ID)}
}

// Intern returns the ID for s, assigning a fresh one if s was never seen.
func (d *Dict) Intern(s string) ID {
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id := ID(len(d.strs))
	if id == NoID {
		panic("dict: identifier space exhausted")
	}
	d.byStr[s] = id
	d.strs = append(d.strs, s)
	return id
}

// Lookup returns the ID for s if it was interned.
func (d *Dict) Lookup(s string) (ID, bool) {
	id, ok := d.byStr[s]
	return id, ok
}

// Has reports whether s was interned.
func (d *Dict) Has(s string) bool {
	_, ok := d.byStr[s]
	return ok
}

// String resolves an ID back to the interned string. It panics on an ID
// that was never issued, which always indicates a programming error.
func (d *Dict) String(id ID) string {
	if int(id) >= len(d.strs) {
		panic(fmt.Sprintf("dict: unknown id %d (size %d)", id, len(d.strs)))
	}
	return d.strs[id]
}

// FromStrings reconstructs a dictionary from a slice of strings in ID
// order, as returned by Strings. The slice is retained. It fails on
// duplicates, which would silently re-map IDs.
func FromStrings(strs []string) (*Dict, error) {
	d := &Dict{byStr: make(map[string]ID, len(strs)), strs: strs}
	for i, s := range strs {
		if _, dup := d.byStr[s]; dup {
			return nil, fmt.Errorf("dict: duplicate string %q at id %d", s, i)
		}
		d.byStr[s] = ID(i)
	}
	return d, nil
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.strs) }

// Strings returns all interned strings in ID order. The returned slice is
// shared with the dictionary and must not be modified.
func (d *Dict) Strings() []string { return d.strs }
