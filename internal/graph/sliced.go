// Sliced instances: the worker-process substrate of distributed shard
// serving.
//
// A shard worker needs the whole-graph tables that social proximity is
// defined over — the normalised transition matrix and the node→component
// table — but of the per-node content tables (kind, parent, depth,
// document ordinal) it only ever touches the rows of its own components'
// nodes: candidates, their fragments and their vertical neighbours all
// live inside owned components, and foreign nodes appear on the search
// path only as proximity-vector indices. FromSliced builds an Instance
// over exactly that footprint: full matrix + component table, plus the
// owned rows keyed by a sorted node list (binary-searched on access).
//
// A sliced instance answers the traversal surface the engine's shard path
// uses (CompOf, KindOf, PosLen, IsAncestorOrSelf, VerticalNeighbors,
// AncestorsOrSelf, Matrix, NumNodes) and the ownership queries; node
// rows outside the slice report the neutral defaults of a non-document
// node (KindUser, no parent, depth 0). Content surfaces that need the
// full instance — dictionary, URIs, ontology, edges, tags — are absent:
// a worker never resolves them (the coordinator owns the manifest and
// maps node ids to URIs when assembling the final answer).
package graph

import (
	"fmt"
	"slices"

	"s3/internal/sparse"
)

// slicedNodes holds the per-node tables of a sliced instance, restricted
// to the rows of the owned components, parallel to the sorted nids list.
type slicedNodes struct {
	numNodes int

	nids   []NID
	kind   []NodeKind
	parent []NID
	depth  []int32
	docOf  []int32

	comps []int32 // owned component ids, sorted
	owns  []bool  // indexed by component id
}

// row returns the slice row of node n, or -1 when n is outside the slice.
func (s *slicedNodes) row(n NID) int {
	if i, ok := slices.BinarySearch(s.nids, n); ok {
		return i
	}
	return -1
}

func (s *slicedNodes) kindOf(n NID) NodeKind {
	if i := s.row(n); i >= 0 {
		return s.kind[i]
	}
	return KindUser
}

func (s *slicedNodes) parentOf(n NID) NID {
	if i := s.row(n); i >= 0 {
		return s.parent[i]
	}
	return NoNID
}

func (s *slicedNodes) depthOf(n NID) int32 {
	if i := s.row(n); i >= 0 {
		return s.depth[i]
	}
	return 0
}

func (s *slicedNodes) docOfOf(n NID) int32 {
	if i := s.row(n); i >= 0 {
		return s.docOf[i]
	}
	return -1
}

// SlicedConfig assembles a sliced instance. All slices are retained (the
// immutability contract of Raw applies: they typically view a mapping).
type SlicedConfig struct {
	// NumNodes is the whole instance's node count (matrix dimension).
	NumNodes int
	// Comp is the full node→component table; NComp the component count.
	Comp  []int32
	NComp int
	// Matrix CSR arrays over all nodes.
	MatrixRowPtr []int32
	MatrixCol    []int32
	MatrixVal    []float64
	// Comps is the owned component set.
	Comps []int32
	// NIDs lists the nodes of the owned components, sorted ascending;
	// Kind, Parent, Depth and DocOf are parallel to it.
	NIDs   []NID
	Kind   []NodeKind
	Parent []NID
	Depth  []int32
	DocOf  []int32
	// NumDocs bounds the document ordinals in DocOf.
	NumDocs int
	// Stats describes the shard's content (documents, components, ...)
	// for reporting; the sliced instance cannot derive it.
	Stats Stats
}

// FromSliced validates and assembles a sliced worker instance. Validation
// covers everything a query could otherwise panic or hang on — table
// lengths, sorted node list, parent pre-order and closure within the
// slice, component and document bounds — with sequential scans; semantic
// content (that the slice really lists every node of every owned
// component) is additionally cross-checked against the component table.
func FromSliced(cfg SlicedConfig) (*Instance, error) {
	n, m := cfg.NumNodes, len(cfg.NIDs)
	if n < 0 || len(cfg.Comp) != n {
		return nil, fmt.Errorf("graph: sliced component table has %d entries for %d nodes", len(cfg.Comp), n)
	}
	if len(cfg.Kind) != m || len(cfg.Parent) != m || len(cfg.Depth) != m || len(cfg.DocOf) != m {
		return nil, fmt.Errorf("graph: sliced node tables have %d/%d/%d/%d entries for %d rows",
			len(cfg.Kind), len(cfg.Parent), len(cfg.Depth), len(cfg.DocOf), m)
	}
	if cfg.NComp < 0 {
		return nil, fmt.Errorf("graph: negative component count")
	}
	owns := make([]bool, cfg.NComp)
	comps := append(make([]int32, 0, len(cfg.Comps)), cfg.Comps...)
	slices.Sort(comps)
	for i, c := range comps {
		if c < 0 || int(c) >= cfg.NComp {
			return nil, fmt.Errorf("graph: owned component %d outside instance of %d components", c, cfg.NComp)
		}
		if i > 0 && comps[i-1] == c {
			return nil, fmt.Errorf("graph: duplicate owned component %d", c)
		}
		owns[c] = true
	}
	// Component table bounds (branch-free max reduction; the +1 bias maps
	// the -1 user sentinel to 0).
	var maxComp1 uint32
	for _, c := range cfg.Comp {
		if v := uint32(c) + 1; v > maxComp1 {
			maxComp1 = v
		}
	}
	if n > 0 && maxComp1 > uint32(cfg.NComp) {
		return nil, fmt.Errorf("graph: node component outside %d components", cfg.NComp)
	}
	// The slice must list exactly the nodes of the owned components:
	// sorted, in range, each row's component owned, and as many rows as
	// the component table promises.
	expected := 0
	for _, c := range cfg.Comp {
		if c >= 0 && owns[c] {
			expected++
		}
	}
	if expected != m {
		return nil, fmt.Errorf("graph: slice has %d rows, owned components span %d nodes", m, expected)
	}
	for i, nd := range cfg.NIDs {
		if nd < 0 || int(nd) >= n {
			return nil, fmt.Errorf("graph: sliced node %d outside instance of %d nodes", nd, n)
		}
		if i > 0 && cfg.NIDs[i-1] >= nd {
			return nil, fmt.Errorf("graph: sliced node list out of order at row %d", i)
		}
		if c := cfg.Comp[nd]; c < 0 || !owns[c] {
			return nil, fmt.Errorf("graph: sliced node %d belongs to foreign component %d", nd, cfg.Comp[nd])
		}
	}
	sl := &slicedNodes{
		numNodes: n,
		nids:     cfg.NIDs,
		kind:     cfg.Kind,
		parent:   cfg.Parent,
		depth:    cfg.Depth,
		docOf:    cfg.DocOf,
		comps:    comps,
		owns:     owns,
	}
	for i, p := range cfg.Parent {
		if p == NoNID {
			continue
		}
		// Pre-order (parent strictly precedes child) rules out cycles, and
		// closure within the slice keeps ancestor walks from dead-ending:
		// a fragment's parent shares its document, hence its component.
		if p >= cfg.NIDs[i] || sl.row(p) < 0 {
			return nil, fmt.Errorf("graph: sliced node %d has parent %d outside the slice or out of pre-order", cfg.NIDs[i], p)
		}
	}
	for i, d := range cfg.DocOf {
		if int(d) >= cfg.NumDocs {
			return nil, fmt.Errorf("graph: sliced node %d in document %d of %d", cfg.NIDs[i], d, cfg.NumDocs)
		}
	}
	matrix, err := sparse.FromRaw(n, cfg.MatrixRowPtr, cfg.MatrixCol, cfg.MatrixVal)
	if err != nil {
		return nil, err
	}
	return &Instance{
		sliced: sl,
		comp:   cfg.Comp,
		nComp:  cfg.NComp,
		matrix: matrix,
		stats:  cfg.Stats,
	}, nil
}

// IsSliced reports whether the instance is a sliced worker substrate
// (node tables restricted to its owned components).
func (in *Instance) IsSliced() bool { return in.sliced != nil }
