package graph

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"s3/internal/doc"
	"s3/internal/text"
)

// figure3 reconstructs the instance of Figure 3 of the paper (the exact
// edge set is chosen so that the normalisation numbers of Example 2.3 come
// out: 1/(1+0.3) ≈ 0.77 for u0's edge to URI0 and 1/(1+1+1+1) = 0.25 for
// the edge leaving URI0's vertical neighbourhood).
func figure3(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(text.Analyzer{Lang: text.None})
	for _, u := range []string{"u0", "u1", "u2", "u3"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	uri0 := &doc.Node{URI: "URI0", Name: "doc", Children: []*doc.Node{
		{URI: "URI0.0", Name: "sec", Keywords: []string{"k0"}, Children: []*doc.Node{
			{URI: "URI0.0.0", Name: "par"},
		}},
		{URI: "URI0.1", Name: "sec", Keywords: []string{"k1"}},
	}}
	uri1 := &doc.Node{URI: "URI1", Name: "doc"}
	if err := b.AddDocument(uri0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(uri1); err != nil {
		t.Fatal(err)
	}
	for _, p := range []PostSpec{{"URI0", "u0"}, {"URI0.0", "u1"}, {"URI1", "u2"}} {
		if err := b.AddPost(p.Doc, p.User); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddComment("URI1", "URI0.1", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTag("a0", "URI0.0.0", "u2", "k2", ""); err != nil {
		t.Fatal(err)
	}
	for _, s := range []SocialSpec{
		{"u0", "u3", 0.3, ""}, {"u1", "u3", 0.5, ""},
		{"u3", "u2", 0.5, ""}, {"u2", "u1", 0.7, ""},
	} {
		if err := b.AddSocial(s.From, s.To, s.W, s.Prop); err != nil {
			t.Fatal(err)
		}
	}
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func nid(t *testing.T, in *Instance, uri string) NID {
	t.Helper()
	n, ok := in.NIDOf(uri)
	if !ok {
		t.Fatalf("node %q not found", uri)
	}
	return n
}

func matrixEntry(in *Instance, from, to NID) float64 {
	var got float64
	in.Matrix().Row(int(from), func(c int, v float64) {
		if c == int(to) {
			got = v
		}
	})
	return got
}

// Example 2.3: the first edge of the path u0 → URI0 ⇝ URI0.0.0 → a0 is
// normalised by the edges leaving u0 (weights 1 and 0.3) and the second by
// the four weight-1 edges leaving URI0's vertical neighbourhood.
func TestExample23PathNormalization(t *testing.T) {
	in := figure3(t)
	u0, uri0, a0 := nid(t, in, "u0"), nid(t, in, "URI0"), nid(t, in, "a0")

	if w := in.NeighborhoodOutWeight(u0); math.Abs(w-1.3) > 1e-12 {
		t.Fatalf("W(u0) = %v, want 1.3", w)
	}
	if got, want := matrixEntry(in, u0, uri0), 1/1.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("normalised weight u0→URI0 = %v, want %v", got, want)
	}
	if w := in.NeighborhoodOutWeight(uri0); math.Abs(w-4) > 1e-12 {
		t.Fatalf("W(URI0) = %v, want 4", w)
	}
	if got := matrixEntry(in, uri0, a0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("normalised weight URI0⇝URI0.0.0→a0 = %v, want 0.25", got)
	}
}

// A node deep in the tree normalises against its own chain: URI0.0.0's
// neighbourhood is {URI0.0.0, URI0.0, URI0}, with out-weight 3.
func TestNormalizationFromDeepNode(t *testing.T) {
	in := figure3(t)
	n000 := nid(t, in, "URI0.0.0")
	if w := in.NeighborhoodOutWeight(n000); math.Abs(w-3) > 1e-12 {
		t.Fatalf("W(URI0.0.0) = %v, want 3", w)
	}
	if got := matrixEntry(in, n000, nid(t, in, "a0")); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("URI0.0.0→a0 = %v, want 1/3", got)
	}
	// The sibling subtree URI0.1's edge is NOT in URI0.0.0's row.
	if got := matrixEntry(in, n000, nid(t, in, "URI1")); got != 0 {
		t.Fatalf("URI0.0.0 must not reach URI1 in one step, got %v", got)
	}
}

// Every non-empty matrix row is a probability distribution: the §2.5
// normalisation divides each edge by the neighbourhood's total out-weight.
func TestMatrixRowsAreStochastic(t *testing.T) {
	in := figure3(t)
	for v := 0; v < in.NumNodes(); v++ {
		sum := in.Matrix().RowSum(v)
		if sum == 0 {
			if in.NeighborhoodOutWeight(NID(v)) != 0 {
				t.Fatalf("row %s empty despite W > 0", in.URIOf(NID(v)))
			}
			continue
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %s sums to %v, want 1", in.URIOf(NID(v)), sum)
		}
	}
}

func TestVerticalNeighborhood(t *testing.T) {
	in := figure3(t)
	uri0 := nid(t, in, "URI0")
	n000 := nid(t, in, "URI0.0.0")
	n01 := nid(t, in, "URI0.1")
	uri1 := nid(t, in, "URI1")

	if !in.VerticalNeighbors(uri0, n000) || !in.VerticalNeighbors(n000, uri0) {
		t.Fatal("URI0 and URI0.0.0 must be vertical neighbours")
	}
	if in.VerticalNeighbors(n000, n01) {
		t.Fatal("URI0.0.0 and URI0.1 must not be vertical neighbours (paper §2.5)")
	}
	if in.VerticalNeighbors(uri0, uri1) {
		t.Fatal("nodes of different documents are never vertical neighbours")
	}
	if l, ok := in.PosLen(uri0, n000); !ok || l != 2 {
		t.Fatalf("PosLen(URI0, URI0.0.0) = %d,%v, want 2,true", l, ok)
	}
}

// There is a single component: URI0's tree, URI1 (comments on URI0.1) and
// a0 (tags URI0.0.0) are all linked by partOf/commentsOn/hasSubject edges.
func TestComponents(t *testing.T) {
	in := figure3(t)
	if in.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", in.NumComponents())
	}
	c := in.CompOf(nid(t, in, "URI0"))
	for _, uri := range []string{"URI0.0", "URI0.0.0", "URI0.1", "URI1", "a0"} {
		if got := in.CompOf(nid(t, in, uri)); got != c {
			t.Fatalf("CompOf(%s) = %d, want %d", uri, got, c)
		}
	}
	for _, u := range []string{"u0", "u1", "u2", "u3"} {
		if got := in.CompOf(nid(t, in, u)); got != -1 {
			t.Fatalf("users must not belong to components, CompOf(%s) = %d", u, got)
		}
	}
}

func TestComponentsSplitWhenUnlinked(t *testing.T) {
	b := NewBuilder(text.Analyzer{Lang: text.None})
	if err := b.AddDocument(&doc.Node{URI: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(&doc.Node{URI: "b"}); err != nil {
		t.Fatal(err)
	}
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", in.NumComponents())
	}
}

func TestStats(t *testing.T) {
	in := figure3(t)
	s := in.Stats()
	if s.Users != 4 || s.Documents != 2 || s.Fragments != 3 || s.Tags != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SocialEdges != 4 || s.Comments != 1 || s.Posts != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.KeywordOccurrences != 2 || s.DistinctKeywords != 2 {
		t.Fatalf("keyword stats = %+v", s)
	}
	if s.Nodes != 4+5+1 {
		t.Fatalf("Nodes = %d, want 10", s.Nodes)
	}
	// 4 social + 2×(3 posts + 1 comment + 2 tag edges) directed network
	// edges + 3 tree edges.
	if s.Edges != 4+2*(3+1+2)+3 {
		t.Fatalf("Edges = %d", s.Edges)
	}
	if s.Components != 1 {
		t.Fatalf("Components = %d, want 1", s.Components)
	}
	if s.AvgSocialDegree != 1 {
		t.Fatalf("AvgSocialDegree = %v, want 1", s.AvgSocialDegree)
	}
	if s.String() == "" {
		t.Fatal("Stats.String must render")
	}
}

func TestBuilderValidation(t *testing.T) {
	a := text.Analyzer{Lang: text.None}
	t.Run("social unknown user", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		if err := b.AddSocial("u", "ghost", 0.5, ""); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("social self edge", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		if err := b.AddSocial("u", "u", 0.5, ""); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("social bad weight", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		_ = b.AddUser("v")
		if err := b.AddSocial("u", "v", 0, ""); err == nil {
			t.Fatal("expected error for weight 0")
		}
		if err := b.AddSocial("u", "v", 1.5, ""); err == nil {
			t.Fatal("expected error for weight 1.5")
		}
	})
	t.Run("duplicate document", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddDocument(&doc.Node{URI: "d"})
		if err := b.AddDocument(&doc.Node{URI: "d"}); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("doc URI clashing with user", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("x")
		if err := b.AddDocument(&doc.Node{URI: "x"}); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("post unknown doc", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		if err := b.AddPost("ghost", "u"); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("comment on own node", func(t *testing.T) {
		b := NewBuilder(a)
		root := &doc.Node{URI: "d", Children: []*doc.Node{{Name: "x"}}}
		_ = b.AddDocument(root)
		if err := b.AddComment("d", "d.1", ""); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("comment from non-root", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddDocument(&doc.Node{URI: "d", Children: []*doc.Node{{Name: "x"}}})
		_ = b.AddDocument(&doc.Node{URI: "e"})
		if err := b.AddComment("d.1", "e", ""); err == nil {
			t.Fatal("expected error: comments must be document roots")
		}
	})
	t.Run("tag on user", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		if err := b.AddTag("a", "u", "u", "k", ""); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("tag duplicate URI", func(t *testing.T) {
		b := NewBuilder(a)
		_ = b.AddUser("u")
		_ = b.AddDocument(&doc.Node{URI: "d"})
		_ = b.AddTag("a", "d", "u", "k", "")
		if err := b.AddTag("a", "d", "u", "k", ""); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("user idempotent", func(t *testing.T) {
		b := NewBuilder(a)
		if err := b.AddUser("u"); err != nil {
			t.Fatal(err)
		}
		if err := b.AddUser("u"); err != nil {
			t.Fatalf("re-adding a user must be a no-op, got %v", err)
		}
	})
}

// Tags on tags (requirement R4) are accepted and recorded.
func TestHigherLevelTags(t *testing.T) {
	b := NewBuilder(text.Analyzer{Lang: text.None})
	_ = b.AddUser("u")
	_ = b.AddDocument(&doc.Node{URI: "d"})
	if err := b.AddTag("a1", "d", "u", "k", ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTag("a2", "a1", "u", "prov", "NLP:recognize"); err != nil {
		t.Fatal(err)
	}
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a2 := nid(t, in, "a2")
	ti, ok := in.TagInfoOf(a2)
	if !ok {
		t.Fatal("a2 has no TagInfo")
	}
	if in.KindOf(ti.Subject) != KindTag {
		t.Fatal("a2's subject must be the tag a1")
	}
	// The custom type is a subclass of S3:relatedTo in the ontology.
	if !in.Ontology().HasStr("NLP:recognize", "rdfs:subClassOf", ClassRelatedTo) {
		t.Fatal("custom tag class not registered as subclass of S3:relatedTo")
	}
	if in.NumComponents() != 1 {
		t.Fatalf("tag chain must join the document's component, got %d", in.NumComponents())
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := figure3(t)
	b := NewBuilder(text.Analyzer{Lang: text.None})
	// Rebuild the same spec through the builder used by figure3.
	spec := figure3Spec(t)
	var buf bytes.Buffer
	if err := spec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildSpec(*decoded, b.analyzer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Stats(), rebuilt.Stats()) {
		t.Fatalf("stats differ after round-trip:\n%v\nvs\n%v", in.Stats(), rebuilt.Stats())
	}
	// Spot-check a matrix entry survives the round-trip.
	u0 := nid(t, rebuilt, "u0")
	uri0 := nid(t, rebuilt, "URI0")
	if got, want := matrixEntry(rebuilt, u0, uri0), 1/1.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("matrix entry after round-trip = %v, want %v", got, want)
	}
}

func figure3Spec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		Users: []string{"u0", "u1", "u2", "u3"},
		Social: []SocialSpec{
			{"u0", "u3", 0.3, ""}, {"u1", "u3", 0.5, ""},
			{"u3", "u2", 0.5, ""}, {"u2", "u1", 0.7, ""},
		},
		Docs: []*doc.Node{
			{URI: "URI0", Name: "doc", Children: []*doc.Node{
				{URI: "URI0.0", Name: "sec", Keywords: []string{"k0"}, Children: []*doc.Node{
					{URI: "URI0.0.0", Name: "par"},
				}},
				{URI: "URI0.1", Name: "sec", Keywords: []string{"k1"}},
			}},
			{URI: "URI1", Name: "doc"},
		},
		Posts:    []PostSpec{{"URI0", "u0"}, {"URI0.0", "u1"}, {"URI1", "u2"}},
		Comments: []CommentSpec{{"URI1", "URI0.1", ""}},
		Tags:     []TagSpec{{URI: "a0", Subject: "URI0.0.0", Author: "u2", Keyword: "k2"}},
	}
}

func TestExportRDF(t *testing.T) {
	in := figure3(t)
	g := in.ExportRDF()
	checks := [][3]string{
		{"u0", "rdf:type", ClassUser},
		{"URI0", "rdf:type", ClassDoc},
		{"URI0.0", PropPartOf, "URI0"},
		{"URI0.0.0", PropPartOf, "URI0.0"},
		{"URI0.0", PropContains, "k0"},
		{"URI0", PropPostedBy, "u0"},
		{"u0", PropPostedByInv, "URI0"},
		{"URI1", PropCommentsOn, "URI0.1"},
		{"a0", "rdf:type", ClassRelatedTo},
		{"a0", PropHasSubject, "URI0.0.0"},
		{"a0", PropHasKeyword, "k2"},
		{"a0", PropHasAuthor, "u2"},
	}
	for _, c := range checks {
		if !g.HasStr(c[0], c[1], c[2]) {
			t.Errorf("exported RDF missing (%s %s %s)", c[0], c[1], c[2])
		}
	}
	// Social edges keep their weights.
	s, _ := g.Dict().Lookup("u0")
	p, _ := g.Dict().Lookup(PropSocial)
	o, _ := g.Dict().Lookup("u3")
	if w, ok := g.Weight(s, p, o); !ok || w != 0.3 {
		t.Fatalf("social weight in export = %v,%v, want 0.3,true", w, ok)
	}
}

func TestSortedKeywordsByFrequency(t *testing.T) {
	b := NewBuilder(text.Analyzer{Lang: text.None})
	_ = b.AddDocument(&doc.Node{URI: "d1", Keywords: []string{"rare", "common"}})
	_ = b.AddDocument(&doc.Node{URI: "d2", Keywords: []string{"common"}})
	_ = b.AddDocument(&doc.Node{URI: "d3", Keywords: []string{"common"}})
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	kws := in.SortedKeywordsByFrequency()
	if len(kws) != 2 {
		t.Fatalf("keyword count = %d, want 2", len(kws))
	}
	if in.Dict().String(kws[0]) != "rare" || in.Dict().String(kws[1]) != "common" {
		t.Fatalf("order wrong: %s, %s", in.Dict().String(kws[0]), in.Dict().String(kws[1]))
	}
	if in.KeywordFrequency(kws[1]) != 3 {
		t.Fatalf("freq(common) = %d, want 3", in.KeywordFrequency(kws[1]))
	}
}

// Custom social sub-properties register themselves in the ontology so that
// S3:social generalises them (§2.2 extensibility).
func TestCustomSocialSubProperty(t *testing.T) {
	b := NewBuilder(text.Analyzer{Lang: text.None})
	_ = b.AddUser("u")
	_ = b.AddUser("v")
	if err := b.AddSocial("u", "v", 1, "vdk:follow"); err != nil {
		t.Fatal(err)
	}
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Ontology().HasStr("vdk:follow", "rdfs:subPropertyOf", PropSocial) {
		t.Fatal("vdk:follow not registered under S3:social")
	}
}
