package graph

import (
	"fmt"
	"strings"
)

// Stats summarises an instance the way Figure 4 of the paper does.
type Stats struct {
	Users       int
	SocialEdges int
	// Documents counts document roots; Fragments the non-root nodes
	// (Figure 4's "Fragments (non-root)").
	Documents int
	Fragments int
	Tags      int
	// KeywordOccurrences counts node-keyword containment pairs (the
	// paper's "Keywords" row); DistinctKeywords the vocabulary size.
	KeywordOccurrences int
	DistinctKeywords   int
	Comments           int
	Posts              int
	// Nodes and Edges match Figure 4's "Nodes (without keywords)" and
	// "Edges (without keywords)": instance nodes, and network edges
	// (inverses included) plus tree edges.
	Nodes int
	Edges int
	// AvgSocialDegree averages outgoing social edges over users having
	// at least one (Figure 4's "S3:social edges per user having any").
	AvgSocialDegree float64
	OntologyTriples int
	Components      int
}

func (in *Instance) computeStats(b *Builder) {
	s := Stats{
		Users:           len(in.users),
		SocialEdges:     len(b.spec.Social),
		Documents:       len(in.docRoots),
		Tags:            len(in.tagList),
		Comments:        len(in.comments),
		Posts:           len(in.posts),
		Nodes:           len(in.dictID),
		OntologyTriples: in.ont.Len(),
		Components:      in.nComp,
	}
	for v := range in.dictID {
		if in.kind[v] == KindDocNode && in.parent[v] != NoNID {
			s.Fragments++
		}
		s.KeywordOccurrences += len(in.keywords[v])
		s.Edges += len(in.out[v])
	}
	// Tree edges count once per non-root document node.
	s.Edges += s.Fragments
	s.DistinctKeywords = len(in.kwFreq)

	usersWithEdges, social := 0, 0
	for _, u := range in.users {
		n := 0
		for _, e := range in.out[u] {
			if in.kind[e.To] == KindUser {
				n++
			}
		}
		if n > 0 {
			usersWithEdges++
			social += n
		}
	}
	if usersWithEdges > 0 {
		s.AvgSocialDegree = float64(social) / float64(usersWithEdges)
	}
	in.stats = s
}

// String renders the statistics as an aligned two-column table in the
// style of Figure 4.
func (s Stats) String() string {
	rows := []struct {
		label string
		value string
	}{
		{"Users", fmt.Sprint(s.Users)},
		{"S3:social edges", fmt.Sprint(s.SocialEdges)},
		{"Documents", fmt.Sprint(s.Documents)},
		{"Fragments (non-root)", fmt.Sprint(s.Fragments)},
		{"Tags", fmt.Sprint(s.Tags)},
		{"Keywords (occurrences)", fmt.Sprint(s.KeywordOccurrences)},
		{"Distinct keywords", fmt.Sprint(s.DistinctKeywords)},
		{"Comment edges", fmt.Sprint(s.Comments)},
		{"Post edges", fmt.Sprint(s.Posts)},
		{"Ontology triples (saturated)", fmt.Sprint(s.OntologyTriples)},
		{"S3:social edges per user having any (average)", fmt.Sprintf("%.1f", s.AvgSocialDegree)},
		{"Nodes (without keywords)", fmt.Sprint(s.Nodes)},
		{"Edges (without keywords)", fmt.Sprint(s.Edges)},
		{"Components", fmt.Sprint(s.Components)},
	}
	width := 0
	for _, r := range rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, r.label, r.value)
	}
	return sb.String()
}
