package graph_test

import (
	"math"
	"math/rand"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/text"
)

// Structural invariants of the frozen instance, checked over random
// specs: stochastic matrix rows, consistent node tables, component
// closure under the partOf/commentsOn/hasSubject relations, and stats
// that add up.
func TestInstanceInvariantsOnRandomSpecs(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
		in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Matrix rows are probability distributions (or empty).
		for v := 0; v < in.NumNodes(); v++ {
			sum := in.Matrix().RowSum(v)
			if sum != 0 && math.Abs(sum-1) > 1e-9 {
				t.Fatalf("seed %d: row %s sums to %v", seed, in.URIOf(graph.NID(v)), sum)
			}
			if (sum == 0) != (in.NeighborhoodOutWeight(graph.NID(v)) == 0) {
				t.Fatalf("seed %d: row/weight mismatch at %s", seed, in.URIOf(graph.NID(v)))
			}
		}

		// Node tables are mutually consistent.
		for v := 0; v < in.NumNodes(); v++ {
			n := graph.NID(v)
			switch in.KindOf(n) {
			case graph.KindDocNode:
				if in.DocRootOf(n) == graph.NoNID {
					t.Fatalf("seed %d: doc node %s has no root", seed, in.URIOf(n))
				}
				if p := in.ParentOf(n); p != graph.NoNID {
					if in.DepthOf(n) != in.DepthOf(p)+1 {
						t.Fatalf("seed %d: depth inconsistency at %s", seed, in.URIOf(n))
					}
					found := false
					for _, c := range in.ChildrenOf(p) {
						if c == n {
							found = true
						}
					}
					if !found {
						t.Fatalf("seed %d: %s missing from parent's children", seed, in.URIOf(n))
					}
				}
				if in.CompOf(n) < 0 {
					t.Fatalf("seed %d: doc node %s has no component", seed, in.URIOf(n))
				}
			case graph.KindUser:
				if in.CompOf(n) != -1 {
					t.Fatalf("seed %d: user %s in a component", seed, in.URIOf(n))
				}
			case graph.KindTag:
				ti, ok := in.TagInfoOf(n)
				if !ok {
					t.Fatalf("seed %d: tag %s lacks info", seed, in.URIOf(n))
				}
				// A tag always shares its subject's component.
				if in.CompOf(n) != in.CompOf(ti.Subject) {
					t.Fatalf("seed %d: tag %s not in subject's component", seed, in.URIOf(n))
				}
			}
		}

		// Components are closed under comment and tag edges.
		for _, ce := range in.Comments() {
			if in.CompOf(ce.Comment) != in.CompOf(ce.Target) {
				t.Fatalf("seed %d: comment edge crosses components", seed)
			}
		}

		// Stats add up.
		s := in.Stats()
		if s.Nodes != len(in.Users())+s.Documents+s.Fragments+s.Tags {
			t.Fatalf("seed %d: node stats inconsistent: %+v", seed, s)
		}
		if s.Components != in.NumComponents() {
			t.Fatalf("seed %d: component stats inconsistent", seed)
		}
	}
}

// URI round trip: every node resolves back to itself.
func TestNIDURIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.NumNodes(); v++ {
		n := graph.NID(v)
		got, ok := in.NIDOf(in.URIOf(n))
		if !ok || got != n {
			t.Fatalf("round trip failed for %s", in.URIOf(n))
		}
	}
}
