// Package graph assembles the full S3 instance of the paper (§2): users,
// structured documents, tags and the semantic layer, woven into a single
// weighted graph. It materialises the network edges (§2.5), the
// vertical-neighbourhood-aware normalised transition matrix used for social
// paths, and the connected components over partOf / commentsOn / hasSubject
// edges that the implementation section (§5.2) uses for pruning.
package graph

import (
	"fmt"
	"slices"
	"sync"

	"s3/internal/dict"
	"s3/internal/rdf"
	"s3/internal/sparse"
	"s3/internal/text"
)

// The S3 namespace (Table 2 of the paper).
const (
	ClassUser      = "S3:user"
	ClassDoc       = "S3:doc"
	ClassRelatedTo = "S3:relatedTo"

	PropSocial     = "S3:social"
	PropPostedBy   = "S3:postedBy"
	PropCommentsOn = "S3:commentsOn"
	PropPartOf     = "S3:partOf"
	PropContains   = "S3:contains"
	PropNodeName   = "S3:nodeName"
	PropHasSubject = "S3:hasSubject"
	PropHasKeyword = "S3:hasKeyword"
	PropHasAuthor  = "S3:hasAuthor"
)

// Inverse properties (the paper's syntactic sugar p̄: s p̄ o ∈ I iff o p s ∈ I).
const (
	PropPostedByInv   = "S3:inv:postedBy"
	PropCommentsOnInv = "S3:inv:commentsOn"
	PropHasSubjectInv = "S3:inv:hasSubject"
	PropHasAuthorInv  = "S3:inv:hasAuthor"
)

// NID is a dense index for instance nodes (users, document nodes, tags).
// It is distinct from dict.ID, which also numbers keywords and properties.
type NID int32

// NoNID marks "no node" (e.g. the parent of a root).
const NoNID NID = -1

// NodeKind discriminates instance nodes.
type NodeKind uint8

const (
	// KindUser is a social-network user (class S3:user).
	KindUser NodeKind = iota
	// KindDocNode is a document node; the fragment it roots is a potential
	// query answer (class S3:doc).
	KindDocNode
	// KindTag is a tag/annotation resource (class S3:relatedTo).
	KindTag
)

func (k NodeKind) String() string {
	switch k {
	case KindUser:
		return "user"
	case KindDocNode:
		return "doc"
	case KindTag:
		return "tag"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Edge is one directed network edge with its raw (un-normalised) weight.
// Field order is part of the v3 snapshot ABI: (To, Prop, W) packs into 16
// bytes with no padding, so an aligned on-disk edge array can be
// reinterpreted as []Edge without copying (internal/snap).
type Edge struct {
	To   NID
	Prop dict.ID
	W    float64
}

// TagInfo describes a tag resource.
type TagInfo struct {
	Subject NID
	Author  NID
	// Keyword is the stemmed tag keyword, or dict.NoID for a keyword-less
	// endorsement (like / retweet / +1, §2.4).
	Keyword dict.ID
	// Type is the tag's RDF class (ClassRelatedTo or a subclass).
	Type dict.ID
}

// CommentEdge records that document Comment comments on node Target
// (possibly through a sub-property of S3:commentsOn).
type CommentEdge struct {
	Comment NID
	Target  NID
	Prop    dict.ID
}

// PostEdge records that document node Doc was posted by User.
type PostEdge struct {
	Doc  NID
	User NID
}

// Instance is a frozen, queryable S3 instance. It is immutable after Build
// and safe for concurrent readers.
type Instance struct {
	dict     *dict.Dict
	ont      *rdf.Graph
	analyzer text.Analyzer

	// Node tables, indexed by NID.
	dictID   []dict.ID
	kind     []NodeKind
	parent   []NID
	depth    []int32
	docOf    []int32 // document index for doc nodes, -1 otherwise
	children [][]NID
	keywords [][]dict.ID       // stemmed content keywords (doc nodes)
	kwLazy   *lazyCSR[dict.ID] // trusted imports: flat form, materialised on demand
	nodeName []dict.ID         // node name (doc nodes), dict.NoID otherwise

	// URI → node resolution: frozen instances use the dense nidByID table
	// (indexed by dict.ID, NoNID where the id names no node); the builder
	// grows nidOf incrementally. Exactly one of the two is set.
	nidOf   map[dict.ID]NID
	nidByID []NID

	// Direct network out-edges. The builder and the classic import fill
	// the per-node slices; trusted (mapped) imports keep the flat CSR
	// form behind a shared lazy holder (a pointer, so projections — which
	// copy the Instance struct — share the materialisation) — neither
	// this nor keywords is on the search hot path.
	out     [][]Edge
	outLazy *lazyCSR[Edge]

	totalW []float64
	matrix *sparse.Matrix

	comp  []int32
	nComp int

	users    []NID
	docRoots []NID
	tagList  []NID
	// Tag descriptions: frozen instances keep tagInfos aligned with the
	// (ascending) tagList and binary-search it; the builder fills the
	// tagInfo map. Exactly one of the two is set.
	tagInfo  map[NID]TagInfo
	tagInfos []TagInfo
	comments []CommentEdge
	posts    []PostEdge

	// Per-keyword document frequency (number of document nodes whose
	// content contains the stemmed keyword). The builder fills the map;
	// frozen instances keep the two sorted parallel slices and
	// binary-search them, so loading builds no map at all. Exactly one
	// representation is set.
	kwFreq       map[dict.ID]int
	kwFreqKeys   []dict.ID
	kwFreqCounts []int32

	stats Stats

	// proj, when non-nil, restricts the content layer to a subset of
	// components (see ProjectComponents). The substrate tables above are
	// shared with the base instance.
	proj *projection

	// sliced, when non-nil, marks a worker substrate whose node tables
	// cover only its owned components' rows (see FromSliced). Such an
	// instance has no dictionary, ontology or content-entity tables.
	sliced *slicedNodes
}

// Dict returns the shared dictionary.
func (in *Instance) Dict() *dict.Dict { return in.dict }

// Ontology returns the saturated RDF layer (schema + entity triples).
func (in *Instance) Ontology() *rdf.Graph { return in.ont }

// Analyzer returns the text analyzer the instance was built with.
func (in *Instance) Analyzer() text.Analyzer { return in.analyzer }

// NumNodes returns the number of instance nodes (users + doc nodes + tags).
func (in *Instance) NumNodes() int {
	if in.sliced != nil {
		return in.sliced.numNodes
	}
	return len(in.dictID)
}

// NIDOf resolves a URI to its node.
func (in *Instance) NIDOf(uri string) (NID, bool) {
	id, ok := in.dict.Lookup(uri)
	if !ok {
		return NoNID, false
	}
	if in.nidByID != nil {
		if int(id) >= len(in.nidByID) {
			return NoNID, false // interned after the freeze (e.g. RDF export)
		}
		n := in.nidByID[id]
		return n, n != NoNID
	}
	n, ok := in.nidOf[id]
	return n, ok
}

// URIOf returns the URI of a node.
func (in *Instance) URIOf(n NID) string { return in.dict.String(in.dictID[n]) }

// DictIDOf returns the dictionary id of a node's URI.
func (in *Instance) DictIDOf(n NID) dict.ID { return in.dictID[n] }

// KindOf returns the node kind. On a sliced instance, rows outside the
// slice report KindUser (the neutral non-document default).
func (in *Instance) KindOf(n NID) NodeKind {
	if in.sliced != nil {
		return in.sliced.kindOf(n)
	}
	return in.kind[n]
}

// ParentOf returns the tree parent of a document node (NoNID for roots and
// non-document nodes).
func (in *Instance) ParentOf(n NID) NID {
	if in.sliced != nil {
		return in.sliced.parentOf(n)
	}
	return in.parent[n]
}

// DepthOf returns the tree depth of a document node (0 for roots, users
// and tags).
func (in *Instance) DepthOf(n NID) int32 {
	if in.sliced != nil {
		return in.sliced.depthOf(n)
	}
	return in.depth[n]
}

// ChildrenOf returns the tree children of a document node.
func (in *Instance) ChildrenOf(n NID) []NID { return in.children[n] }

// DocRootOf returns the root of the document a node belongs to, or NoNID
// for users and tags. Sliced instances carry no document-root list and
// always report NoNID (result assembly is the coordinator's job).
func (in *Instance) DocRootOf(n NID) NID {
	if in.sliced != nil {
		return NoNID
	}
	if in.docOf[n] < 0 {
		return NoNID
	}
	return in.docRoots[in.docOf[n]]
}

// KeywordsOf returns the stemmed content keywords of a document node.
func (in *Instance) KeywordsOf(n NID) []dict.ID { return in.kwTable()[n] }

// kwTable returns the per-node keyword lists, materialising the slice
// headers from the flat CSR arrays on first use for trusted imports.
func (in *Instance) kwTable() [][]dict.ID {
	if in.keywords != nil {
		return in.keywords
	}
	return in.kwLazy.table(len(in.dictID))
}

// NodeNameOf returns the node name of a document node.
func (in *Instance) NodeNameOf(n NID) dict.ID { return in.nodeName[n] }

// Users returns all user nodes. Users are shared substrate: projections
// return the full list.
func (in *Instance) Users() []NID { return in.users }

// DocRoots returns the roots of all owned documents (all documents for an
// unprojected instance).
func (in *Instance) DocRoots() []NID {
	if in.proj != nil {
		return in.proj.docRoots
	}
	return in.docRoots
}

// Tags returns all owned tag nodes.
func (in *Instance) Tags() []NID {
	if in.proj != nil {
		return in.proj.tags
	}
	return in.tagList
}

// TagInfoOf returns the description of a tag node.
func (in *Instance) TagInfoOf(n NID) (TagInfo, bool) {
	if in.tagInfos != nil {
		i, ok := slices.BinarySearch(in.tagList, n)
		if !ok {
			return TagInfo{}, false
		}
		return in.tagInfos[i], true
	}
	ti, ok := in.tagInfo[n]
	return ti, ok
}

// Comments returns all owned comment edges.
func (in *Instance) Comments() []CommentEdge {
	if in.proj != nil {
		return in.proj.comments
	}
	return in.comments
}

// Posts returns all owned authorship edges.
func (in *Instance) Posts() []PostEdge {
	if in.proj != nil {
		return in.proj.posts
	}
	return in.posts
}

// OutEdges returns the direct network out-edges of a node (without the
// vertical-neighbourhood extension).
func (in *Instance) OutEdges(n NID) []Edge { return in.outTable()[n] }

// outTable returns the per-node out-edge lists, materialising the slice
// headers from the flat CSR arrays on first use for trusted imports.
func (in *Instance) outTable() [][]Edge {
	if in.out != nil {
		return in.out
	}
	return in.outLazy.table(len(in.dictID))
}

// lazyCSR defers the per-row slice-header materialisation of a flat CSR
// list until first use. It is held by pointer so projections (which copy
// the Instance struct) share one materialisation; the sync.Once makes
// that materialisation safe under concurrent readers.
type lazyCSR[T any] struct {
	once sync.Once
	off  []int64
	list []T
	rows [][]T
}

func (l *lazyCSR[T]) table(n int) [][]T {
	l.once.Do(func() {
		rows := make([][]T, n)
		for v := 0; v < n; v++ {
			if lo, hi := l.off[v], l.off[v+1]; lo < hi {
				rows[v] = l.list[lo:hi:hi]
			}
		}
		l.rows = rows
	})
	return l.rows
}

// Matrix returns the normalised transition matrix M over nodes:
// M[v][t] = Σ e.w / W(v) over network edges e = (m → t) with m a vertical
// neighbour of v, where W(v) is the total out-weight of v's vertical
// neighbourhood (§2.5 path normalisation).
func (in *Instance) Matrix() *sparse.Matrix { return in.matrix }

// NeighborhoodOutWeight returns W(v).
func (in *Instance) NeighborhoodOutWeight(n NID) float64 { return in.totalW[n] }

// CompOf returns the component id of a document node or tag (-1 for
// users). Components are the equivalence classes of the reachability
// relation over partOf, commentsOn and hasSubject edges (§5.2).
func (in *Instance) CompOf(n NID) int32 { return in.comp[n] }

// CompTable exposes the whole node→component table for tight validation
// loops (read-only, indexed by NID).
func (in *Instance) CompTable() []int32 { return in.comp }

// NumComponents returns the number of components.
func (in *Instance) NumComponents() int { return in.nComp }

// KeywordFrequency returns, for a stemmed keyword, the number of owned
// document nodes whose content contains it.
func (in *Instance) KeywordFrequency(k dict.ID) int {
	if in.proj != nil {
		return in.proj.kwFreq[k]
	}
	if in.kwFreqKeys != nil {
		if i, ok := slices.BinarySearch(in.kwFreqKeys, k); ok {
			return int(in.kwFreqCounts[i])
		}
		return 0
	}
	return in.kwFreq[k]
}

// KeywordFrequencies exposes the whole frequency table (read-only). A
// frozen instance materialises it per call; prefer KeywordFrequency for
// point lookups.
func (in *Instance) KeywordFrequencies() map[dict.ID]int {
	if in.proj != nil {
		return in.proj.kwFreq
	}
	if in.kwFreqKeys != nil {
		m := make(map[dict.ID]int, len(in.kwFreqKeys))
		for i, k := range in.kwFreqKeys {
			m[k] = int(in.kwFreqCounts[i])
		}
		return m
	}
	return in.kwFreq
}

// IsAncestorOrSelf reports whether a is an ancestor of b or equal to it,
// within the same document tree.
func (in *Instance) IsAncestorOrSelf(a, b NID) bool {
	if s := in.sliced; s != nil {
		ra, rb := s.row(a), s.row(b)
		if ra < 0 || rb < 0 || s.kind[ra] != KindDocNode || s.kind[rb] != KindDocNode {
			return a == b
		}
		if s.docOf[ra] != s.docOf[rb] {
			return false
		}
		da, db := s.depth[ra], s.depth[rb]
		if da > db {
			return false
		}
		for b != NoNID && db > da {
			b = s.parentOf(b)
			db--
		}
		return a == b
	}
	if in.kind[a] != KindDocNode || in.kind[b] != KindDocNode {
		return a == b
	}
	if in.docOf[a] != in.docOf[b] {
		return false
	}
	da, db := in.depth[a], in.depth[b]
	if da > db {
		return false
	}
	for b != NoNID && db > da {
		b = in.parent[b]
		db--
	}
	return a == b
}

// VerticalNeighbors reports whether a and b are vertical neighbours or
// equal (Definition 2.2: one is a fragment of the other).
func (in *Instance) VerticalNeighbors(a, b NID) bool {
	return in.IsAncestorOrSelf(a, b) || in.IsAncestorOrSelf(b, a)
}

// PosLen returns |pos(d, f)| = depth(f) − depth(d) if f ∈ Frag(d).
func (in *Instance) PosLen(d, f NID) (int32, bool) {
	if !in.IsAncestorOrSelf(d, f) {
		return 0, false
	}
	if in.sliced != nil {
		return in.sliced.depthOf(f) - in.sliced.depthOf(d), true
	}
	return in.depth[f] - in.depth[d], true
}

// AncestorsOrSelf returns f and its ancestors, innermost first.
func (in *Instance) AncestorsOrSelf(f NID) []NID {
	if in.sliced != nil {
		out := []NID{f}
		for p := in.sliced.parentOf(f); p != NoNID; p = in.sliced.parentOf(p) {
			out = append(out, p)
		}
		return out
	}
	out := []NID{f}
	for p := in.parent[f]; p != NoNID; p = in.parent[p] {
		out = append(out, p)
	}
	return out
}

// SubtreeOf appends to buf all nodes of the fragment rooted at n
// (pre-order) and returns the extended slice.
func (in *Instance) SubtreeOf(n NID, buf []NID) []NID {
	buf = append(buf, n)
	for _, c := range in.children[n] {
		buf = in.SubtreeOf(c, buf)
	}
	return buf
}

// Stats returns the instance statistics (Figure 4), restricted to the
// owned components for a projection.
func (in *Instance) Stats() Stats {
	if in.proj != nil {
		return in.proj.stats
	}
	return in.stats
}
