package graph

import (
	"fmt"
	"sort"

	"s3/internal/dict"
	"s3/internal/rdf"
	"s3/internal/sparse"
	"s3/internal/text"
)

// Raw is the flat, exported view of a frozen Instance: every table needed
// to reconstruct it without re-running the build pipeline (no ontology
// saturation, no matrix normalisation, no component union-find). It is the
// contract between the graph package and the snapshot serialiser
// (internal/snap).
//
// Children lists and the URI→node map are intentionally absent — both are
// derived deterministically from Parent and DictID on import.
type Raw struct {
	// Strings is the dictionary content in ID order.
	Strings []string
	// Lang / KeepStopwords describe the text analyzer the instance was
	// built with (queries stem keywords through it).
	Lang          text.Lang
	KeepStopwords bool
	// Triples is the saturated ontology in insertion order.
	Triples []rdf.Triple

	// Node tables, indexed by NID.
	DictID   []dict.ID
	Kind     []NodeKind
	Parent   []NID
	Depth    []int32
	DocOf    []int32
	Keywords [][]dict.ID
	NodeName []dict.ID

	// Network layer.
	Out          [][]Edge
	TotalW       []float64
	MatrixRowPtr []int32
	MatrixCol    []int32
	MatrixVal    []float64

	// Component partition.
	Comp  []int32
	NComp int

	// Entity lists. TagInfos is aligned with TagList.
	Users    []NID
	DocRoots []NID
	TagList  []NID
	TagInfos []TagInfo
	Comments []CommentEdge
	Posts    []PostEdge

	// Keyword document frequencies, sorted by keyword id (canonical order
	// so serialising a Raw is deterministic).
	KwFreqKeys   []dict.ID
	KwFreqCounts []int32

	Stats Stats
}

// Raw flattens the instance. The returned struct shares slices with the
// instance wherever possible; callers must treat it as read-only.
// Projections flatten their *base* tables: the snapshot format always
// stores the full instance, and shard sets re-derive projections on load.
func (in *Instance) Raw() *Raw {
	r := &Raw{
		Strings:       in.dict.Strings(),
		Lang:          in.analyzer.Lang,
		KeepStopwords: in.analyzer.KeepStopwords,
		Triples:       in.ont.Triples(),
		DictID:        in.dictID,
		Kind:          in.kind,
		Parent:        in.parent,
		Depth:         in.depth,
		DocOf:         in.docOf,
		Keywords:      in.keywords,
		NodeName:      in.nodeName,
		Out:           in.out,
		TotalW:        in.totalW,
		Comp:          in.comp,
		NComp:         in.nComp,
		Users:         in.users,
		DocRoots:      in.docRoots,
		TagList:       in.tagList,
		Comments:      in.comments,
		Posts:         in.posts,
		Stats:         in.stats,
	}
	_, r.MatrixRowPtr, r.MatrixCol, r.MatrixVal = in.matrix.Raw()
	r.TagInfos = make([]TagInfo, len(in.tagList))
	for i, t := range in.tagList {
		r.TagInfos[i] = in.tagInfo[t]
	}
	r.KwFreqKeys = make([]dict.ID, 0, len(in.kwFreq))
	for k := range in.kwFreq {
		r.KwFreqKeys = append(r.KwFreqKeys, k)
	}
	sort.Slice(r.KwFreqKeys, func(i, j int) bool { return r.KwFreqKeys[i] < r.KwFreqKeys[j] })
	r.KwFreqCounts = make([]int32, len(r.KwFreqKeys))
	for i, k := range r.KwFreqKeys {
		r.KwFreqCounts[i] = int32(in.kwFreq[k])
	}
	return r
}

// FromRaw reconstructs a frozen Instance from its flat view, validating
// cross-references so a corrupt or truncated serialisation is rejected
// instead of panicking at query time. The Raw's slices are retained.
func FromRaw(r *Raw) (*Instance, error) {
	n := len(r.DictID)
	for name, l := range map[string]int{
		"Kind": len(r.Kind), "Parent": len(r.Parent), "Depth": len(r.Depth),
		"DocOf": len(r.DocOf), "Keywords": len(r.Keywords), "NodeName": len(r.NodeName),
		"Out": len(r.Out), "TotalW": len(r.TotalW), "Comp": len(r.Comp),
	} {
		if l != n {
			return nil, fmt.Errorf("graph: raw table %s has %d entries for %d nodes", name, l, n)
		}
	}
	if len(r.TagInfos) != len(r.TagList) {
		return nil, fmt.Errorf("graph: %d tag infos for %d tags", len(r.TagInfos), len(r.TagList))
	}
	if len(r.KwFreqCounts) != len(r.KwFreqKeys) {
		return nil, fmt.Errorf("graph: %d keyword counts for %d keywords", len(r.KwFreqCounts), len(r.KwFreqKeys))
	}

	d, err := dict.FromStrings(r.Strings)
	if err != nil {
		return nil, err
	}
	nd := dict.ID(d.Len())
	checkID := func(id dict.ID, what string) error {
		if id >= nd && id != dict.NoID {
			return fmt.Errorf("graph: %s id %d outside dictionary of %d", what, id, nd)
		}
		return nil
	}
	checkNID := func(v NID, what string) error {
		if (v < 0 || int(v) >= n) && v != NoNID {
			return fmt.Errorf("graph: %s node %d outside instance of %d nodes", what, v, n)
		}
		return nil
	}
	for _, t := range r.Triples {
		if err := checkID(t.S, "triple subject"); err != nil {
			return nil, err
		}
		if err := checkID(t.P, "triple property"); err != nil {
			return nil, err
		}
		if err := checkID(t.O, "triple object"); err != nil {
			return nil, err
		}
	}

	in := &Instance{
		dict:     d,
		ont:      rdf.FromTriples(d, r.Triples, true),
		analyzer: text.Analyzer{Lang: r.Lang, KeepStopwords: r.KeepStopwords},
		dictID:   r.DictID,
		kind:     r.Kind,
		parent:   r.Parent,
		depth:    r.Depth,
		docOf:    r.DocOf,
		keywords: r.Keywords,
		nodeName: r.NodeName,
		nidOf:    make(map[dict.ID]NID, n),
		out:      r.Out,
		totalW:   r.TotalW,
		comp:     r.Comp,
		nComp:    r.NComp,
		users:    r.Users,
		docRoots: r.DocRoots,
		tagList:  r.TagList,
		tagInfo:  make(map[NID]TagInfo, len(r.TagList)),
		comments: r.Comments,
		posts:    r.Posts,
		kwFreq:   make(map[dict.ID]int, len(r.KwFreqKeys)),
		stats:    r.Stats,
	}
	in.children = make([][]NID, n)
	for v := 0; v < n; v++ {
		id := r.DictID[v]
		if id == dict.NoID {
			return nil, fmt.Errorf("graph: node %d has no URI", v)
		}
		if err := checkID(id, "node URI"); err != nil {
			return nil, err
		}
		if _, dup := in.nidOf[id]; dup {
			return nil, fmt.Errorf("graph: URI id %d names two nodes", id)
		}
		if err := checkID(r.NodeName[v], "node name"); err != nil {
			return nil, err
		}
		for _, k := range r.Keywords[v] {
			if err := checkID(k, "content keyword"); err != nil {
				return nil, err
			}
		}
		p := r.Parent[v]
		if err := checkNID(p, "parent"); err != nil {
			return nil, err
		}
		if p != NoNID {
			// Nodes are numbered in document pre-order, so a parent always
			// precedes its children; enforcing that rules out parent cycles
			// (which would hang the ancestor walks at query time) and makes
			// appending in NID order reproduce the original child ordering
			// exactly.
			if p >= NID(v) {
				return nil, fmt.Errorf("graph: node %d has parent %d out of pre-order", v, p)
			}
			in.children[p] = append(in.children[p], NID(v))
		}
		if r.DocOf[v] >= 0 && int(r.DocOf[v]) >= len(r.DocRoots) {
			return nil, fmt.Errorf("graph: node %d in document %d of %d", v, r.DocOf[v], len(r.DocRoots))
		}
		in.nidOf[id] = NID(v)
		for _, e := range r.Out[v] {
			if err := checkNID(e.To, "edge target"); err != nil {
				return nil, err
			}
			if err := checkID(e.Prop, "edge property"); err != nil {
				return nil, err
			}
		}
	}
	for _, lst := range [][]NID{r.Users, r.DocRoots, r.TagList} {
		for _, v := range lst {
			if err := checkNID(v, "entity list"); err != nil {
				return nil, err
			}
		}
	}
	for i, t := range r.TagList {
		ti := r.TagInfos[i]
		if err := checkNID(ti.Subject, "tag subject"); err != nil {
			return nil, err
		}
		if err := checkNID(ti.Author, "tag author"); err != nil {
			return nil, err
		}
		if err := checkID(ti.Keyword, "tag keyword"); err != nil {
			return nil, err
		}
		if err := checkID(ti.Type, "tag type"); err != nil {
			return nil, err
		}
		in.tagInfo[t] = ti
	}
	for _, c := range r.Comments {
		if err := checkNID(c.Comment, "comment"); err != nil {
			return nil, err
		}
		if err := checkNID(c.Target, "comment target"); err != nil {
			return nil, err
		}
	}
	for _, p := range r.Posts {
		if err := checkNID(p.Doc, "post doc"); err != nil {
			return nil, err
		}
		if err := checkNID(p.User, "post user"); err != nil {
			return nil, err
		}
	}
	for i, k := range r.KwFreqKeys {
		if err := checkID(k, "frequency keyword"); err != nil {
			return nil, err
		}
		in.kwFreq[k] = int(r.KwFreqCounts[i])
	}
	in.matrix, err = sparse.FromRaw(n, r.MatrixRowPtr, r.MatrixCol, r.MatrixVal)
	if err != nil {
		return nil, err
	}
	return in, nil
}
