package graph

import (
	"fmt"
	"sort"

	"s3/internal/dict"
	"s3/internal/rdf"
	"s3/internal/sparse"
	"s3/internal/text"
)

// Raw is the flat, exported view of a frozen Instance: every table needed
// to reconstruct it without re-running the build pipeline (no ontology
// saturation, no matrix normalisation, no component union-find). It is the
// contract between the graph package and the snapshot serialiser
// (internal/snap).
//
// Children lists and the URI→node table are intentionally absent — both
// are derived deterministically from Parent and DictID on import (or
// supplied precomputed through an Accel).
//
// # Immutability contract
//
// FromRaw retains every slice it is handed and Raw() shares the
// instance's own slices: a Raw is a *view*, never a copy. Whoever
// produces the backing arrays owns their lifetime and must keep them
// readable and unmodified for as long as the instance lives — this is
// precisely what lets a memory-mapped snapshot serve queries without
// materialising anything, and it is why mutating a Raw (or the file
// behind a mapping) while an instance built over it is in use is
// undefined behaviour.
type Raw struct {
	// Strings is the dictionary content in ID order.
	Strings []string
	// Lang / KeepStopwords describe the text analyzer the instance was
	// built with (queries stem keywords through it).
	Lang          text.Lang
	KeepStopwords bool
	// Triples is the saturated ontology in insertion order.
	Triples []rdf.Triple

	// Node tables, indexed by NID.
	DictID   []dict.ID
	Kind     []NodeKind
	Parent   []NID
	Depth    []int32
	DocOf    []int32
	Keywords [][]dict.ID
	NodeName []dict.ID

	// Network layer.
	Out          [][]Edge
	TotalW       []float64
	MatrixRowPtr []int32
	MatrixCol    []int32
	MatrixVal    []float64

	// Component partition.
	Comp  []int32
	NComp int

	// Entity lists. TagInfos is aligned with TagList.
	Users    []NID
	DocRoots []NID
	TagList  []NID
	TagInfos []TagInfo
	Comments []CommentEdge
	Posts    []PostEdge

	// Keyword document frequencies, sorted by keyword id (canonical order
	// so serialising a Raw is deterministic).
	KwFreqKeys   []dict.ID
	KwFreqCounts []int32

	Stats Stats
}

// Accel carries structures that FromRaw would otherwise derive from the
// Raw tables, prebuilt so a zero-copy load does no per-entry work: the
// dictionary and frozen ontology are constructed by the caller (over
// mapped arenas and permutations), and the children / URI→node tables
// arrive as flat arrays pointing into the same mapping. FromRaw
// cross-validates each table against the Raw it claims to accelerate —
// cheap, allocation-free linear scans — so a corrupt serialisation is
// still rejected rather than trusted.
type Accel struct {
	// Dict is the prebuilt dictionary whose content equals Raw.Strings.
	Dict *dict.Dict
	// Ont is the prebuilt (frozen) ontology over Dict.
	Ont *rdf.Graph
	// NIDByID maps every dictionary id to its node, NoNID where the id
	// names no node. Length must equal Dict.Len().
	NIDByID []NID
	// ChildOff / ChildList are the children lists in CSR form: the
	// children of node v are ChildList[ChildOff[v]:ChildOff[v+1]], in
	// ascending NID order (= original document order, by pre-order
	// numbering).
	ChildOff  []int64
	ChildList []NID
	// EdgeOff / EdgeList and KwOff / KwList are the out-edges and content
	// keywords in CSR form; they substitute for Raw.Out and Raw.Keywords
	// (which an accelerated import leaves nil), and the per-node headers
	// are materialised lazily on first use.
	EdgeOff  []int64
	EdgeList []Edge
	KwOff    []int64
	KwList   []dict.ID
}

// Raw flattens the instance. The returned struct shares slices with the
// instance wherever possible; callers must treat it as read-only.
// Projections flatten their *base* tables: the snapshot format always
// stores the full instance, and shard sets re-derive projections on load.
func (in *Instance) Raw() *Raw {
	r := &Raw{
		Strings:       in.dict.Strings(),
		Lang:          in.analyzer.Lang,
		KeepStopwords: in.analyzer.KeepStopwords,
		Triples:       in.ont.Triples(),
		DictID:        in.dictID,
		Kind:          in.kind,
		Parent:        in.parent,
		Depth:         in.depth,
		DocOf:         in.docOf,
		Keywords:      in.kwTable(),
		NodeName:      in.nodeName,
		Out:           in.outTable(),
		TotalW:        in.totalW,
		Comp:          in.comp,
		NComp:         in.nComp,
		Users:         in.users,
		DocRoots:      in.docRoots,
		TagList:       in.tagList,
		Comments:      in.comments,
		Posts:         in.posts,
		Stats:         in.stats,
	}
	_, r.MatrixRowPtr, r.MatrixCol, r.MatrixVal = in.matrix.Raw()
	if in.tagInfos != nil {
		r.TagInfos = in.tagInfos
	} else {
		r.TagInfos = make([]TagInfo, len(in.tagList))
		for i, t := range in.tagList {
			r.TagInfos[i] = in.tagInfo[t]
		}
	}
	if in.kwFreqKeys != nil {
		r.KwFreqKeys, r.KwFreqCounts = in.kwFreqKeys, in.kwFreqCounts
	} else {
		r.KwFreqKeys = make([]dict.ID, 0, len(in.kwFreq))
		for k := range in.kwFreq {
			r.KwFreqKeys = append(r.KwFreqKeys, k)
		}
		sort.Slice(r.KwFreqKeys, func(i, j int) bool { return r.KwFreqKeys[i] < r.KwFreqKeys[j] })
		r.KwFreqCounts = make([]int32, len(r.KwFreqKeys))
		for i, k := range r.KwFreqKeys {
			r.KwFreqCounts[i] = int32(in.kwFreq[k])
		}
	}
	return r
}

// FromRaw reconstructs a frozen Instance from its flat view, validating
// cross-references so a corrupt or truncated serialisation is rejected
// instead of panicking at query time. The Raw's slices are retained (see
// the immutability contract above).
func FromRaw(r *Raw) (*Instance, error) { return FromRawAccel(r, nil) }

// FromRawAccel is FromRaw with optional prebuilt acceleration structures
// (acc may be nil).
//
// With an Accel the load takes the *trusted* path: the per-section
// checksums of the aligned snapshot vouch for integrity, so the
// per-entry cross-validation of the classic path is replaced by the
// structural checks that keep slicing and tree walks panic-free —
// offset-table monotonicity, index bounds and parent pre-order, all
// sequential integer scans. Content invariants (sort orders, component
// ids, cross-references) are trusted the way a process trusts a shared
// library it maps; loaders of unchecksummed or foreign bytes must use
// the classic path, which validates everything.
func FromRawAccel(r *Raw, acc *Accel) (*Instance, error) {
	n := len(r.DictID)
	for name, l := range map[string]int{
		"Kind": len(r.Kind), "Parent": len(r.Parent), "Depth": len(r.Depth),
		"DocOf": len(r.DocOf), "NodeName": len(r.NodeName),
		"TotalW": len(r.TotalW), "Comp": len(r.Comp),
	} {
		if l != n {
			return nil, fmt.Errorf("graph: raw table %s has %d entries for %d nodes", name, l, n)
		}
	}
	if len(r.TagInfos) != len(r.TagList) {
		return nil, fmt.Errorf("graph: %d tag infos for %d tags", len(r.TagInfos), len(r.TagList))
	}
	if len(r.KwFreqCounts) != len(r.KwFreqKeys) {
		return nil, fmt.Errorf("graph: %d keyword counts for %d keywords", len(r.KwFreqCounts), len(r.KwFreqKeys))
	}
	if acc != nil {
		return fromRawTrusted(r, acc, n)
	}
	if len(r.Keywords) != n || len(r.Out) != n {
		return nil, fmt.Errorf("graph: raw node tables have %d/%d entries for %d nodes", len(r.Keywords), len(r.Out), n)
	}

	d, err := dict.FromStrings(r.Strings)
	if err != nil {
		return nil, err
	}
	ont := rdf.FromTriples(d, r.Triples, true)
	nd := dict.ID(d.Len())
	checkID := func(id dict.ID, what string) error {
		if id >= nd && id != dict.NoID {
			return fmt.Errorf("graph: %s id %d outside dictionary of %d", what, id, nd)
		}
		return nil
	}
	checkNID := func(v NID, what string) error {
		if (v < 0 || int(v) >= n) && v != NoNID {
			return fmt.Errorf("graph: %s node %d outside instance of %d nodes", what, v, n)
		}
		return nil
	}
	for _, t := range r.Triples {
		if err := checkID(t.S, "triple subject"); err != nil {
			return nil, err
		}
		if err := checkID(t.P, "triple property"); err != nil {
			return nil, err
		}
		if err := checkID(t.O, "triple object"); err != nil {
			return nil, err
		}
	}

	in := &Instance{
		dict:     d,
		ont:      ont,
		analyzer: text.Analyzer{Lang: r.Lang, KeepStopwords: r.KeepStopwords},
		dictID:   r.DictID,
		kind:     r.Kind,
		parent:   r.Parent,
		depth:    r.Depth,
		docOf:    r.DocOf,
		keywords: r.Keywords,
		nodeName: r.NodeName,
		out:      r.Out,
		totalW:   r.TotalW,
		comp:     r.Comp,
		nComp:    r.NComp,
		users:    r.Users,
		docRoots: r.DocRoots,
		tagList:  r.TagList,
		comments: r.Comments,
		posts:    r.Posts,
		stats:    r.Stats,
	}
	in.nidByID = make([]NID, nd)
	for i := range in.nidByID {
		in.nidByID[i] = NoNID
	}
	in.children = make([][]NID, n)

	for v := 0; v < n; v++ {
		id := r.DictID[v]
		if id == dict.NoID {
			return nil, fmt.Errorf("graph: node %d has no URI", v)
		}
		if err := checkID(id, "node URI"); err != nil {
			return nil, err
		}
		if err := checkID(r.NodeName[v], "node name"); err != nil {
			return nil, err
		}
		for _, k := range r.Keywords[v] {
			if err := checkID(k, "content keyword"); err != nil {
				return nil, err
			}
		}
		p := r.Parent[v]
		if err := checkNID(p, "parent"); err != nil {
			return nil, err
		}
		if p != NoNID {
			// Nodes are numbered in document pre-order, so a parent always
			// precedes its children; enforcing that rules out parent cycles
			// (which would hang the ancestor walks at query time) and makes
			// appending in NID order reproduce the original child ordering
			// exactly.
			if p >= NID(v) {
				return nil, fmt.Errorf("graph: node %d has parent %d out of pre-order", v, p)
			}
			in.children[p] = append(in.children[p], NID(v))
		}
		if r.DocOf[v] >= 0 && int(r.DocOf[v]) >= len(r.DocRoots) {
			return nil, fmt.Errorf("graph: node %d in document %d of %d", v, r.DocOf[v], len(r.DocRoots))
		}
		if in.nidByID[id] != NoNID {
			return nil, fmt.Errorf("graph: URI id %d names two nodes", id)
		}
		in.nidByID[id] = NID(v)
		for _, e := range r.Out[v] {
			if err := checkNID(e.To, "edge target"); err != nil {
				return nil, err
			}
			if err := checkID(e.Prop, "edge property"); err != nil {
				return nil, err
			}
		}
	}
	for _, lst := range [][]NID{r.Users, r.DocRoots, r.TagList} {
		for _, v := range lst {
			if err := checkNID(v, "entity list"); err != nil {
				return nil, err
			}
		}
	}
	for i, t := range r.TagList {
		ti := r.TagInfos[i]
		if err := checkNID(ti.Subject, "tag subject"); err != nil {
			return nil, err
		}
		if err := checkNID(ti.Author, "tag author"); err != nil {
			return nil, err
		}
		if err := checkID(ti.Keyword, "tag keyword"); err != nil {
			return nil, err
		}
		if err := checkID(ti.Type, "tag type"); err != nil {
			return nil, err
		}
		// The builder registers tags in node-creation order, so TagList is
		// ascending and TagInfoOf can binary-search it; a serialisation
		// that lost that order falls back to the map.
		if in.tagInfo == nil && in.tagInfos == nil && i > 0 && r.TagList[i-1] >= t {
			in.tagInfo = make(map[NID]TagInfo, len(r.TagList))
			for j := 0; j < i; j++ {
				in.tagInfo[r.TagList[j]] = r.TagInfos[j]
			}
		}
		if in.tagInfo != nil {
			in.tagInfo[t] = ti
		}
	}
	if in.tagInfo == nil {
		in.tagInfos = r.TagInfos
	}
	for _, c := range r.Comments {
		if err := checkNID(c.Comment, "comment"); err != nil {
			return nil, err
		}
		if err := checkNID(c.Target, "comment target"); err != nil {
			return nil, err
		}
	}
	for _, p := range r.Posts {
		if err := checkNID(p.Doc, "post doc"); err != nil {
			return nil, err
		}
		if err := checkNID(p.User, "post user"); err != nil {
			return nil, err
		}
	}
	for i, k := range r.KwFreqKeys {
		if err := checkID(k, "frequency keyword"); err != nil {
			return nil, err
		}
		// Ascending keys are what the frozen binary search relies on (and
		// the canonical serialisation order).
		if i > 0 && r.KwFreqKeys[i-1] >= k {
			return nil, fmt.Errorf("graph: frequency keywords out of order at %d", i)
		}
	}
	in.kwFreq = make(map[dict.ID]int, len(r.KwFreqKeys))
	for i, k := range r.KwFreqKeys {
		in.kwFreq[k] = int(r.KwFreqCounts[i])
	}
	in.matrix, err = sparse.FromRaw(n, r.MatrixRowPtr, r.MatrixCol, r.MatrixVal)
	if err != nil {
		return nil, err
	}
	return in, nil
}

// fromRawTrusted assembles an instance over checksummed, writer-trusted
// arrays: structural checks only (see FromRawAccel).
func fromRawTrusted(r *Raw, acc *Accel, n int) (*Instance, error) {
	d, ont := acc.Dict, acc.Ont
	if d == nil || ont == nil {
		return nil, fmt.Errorf("graph: accel without dictionary or ontology")
	}
	nd := dict.ID(d.Len())
	in := &Instance{
		dict:         d,
		ont:          ont,
		analyzer:     text.Analyzer{Lang: r.Lang, KeepStopwords: r.KeepStopwords},
		dictID:       r.DictID,
		kind:         r.Kind,
		parent:       r.Parent,
		depth:        r.Depth,
		docOf:        r.DocOf,
		kwLazy:       &lazyCSR[dict.ID]{off: acc.KwOff, list: acc.KwList},
		nodeName:     r.NodeName,
		outLazy:      &lazyCSR[Edge]{off: acc.EdgeOff, list: acc.EdgeList},
		totalW:       r.TotalW,
		comp:         r.Comp,
		nComp:        r.NComp,
		users:        r.Users,
		docRoots:     r.DocRoots,
		tagList:      r.TagList,
		tagInfos:     r.TagInfos,
		comments:     r.Comments,
		posts:        r.Posts,
		kwFreqKeys:   r.KwFreqKeys,
		kwFreqCounts: r.KwFreqCounts,
		stats:        r.Stats,
	}
	if err := checkCSR(acc.KwOff, n, len(acc.KwList), "content keyword"); err != nil {
		return nil, err
	}
	if err := checkCSR(acc.EdgeOff, n, len(acc.EdgeList), "edge"); err != nil {
		return nil, err
	}
	// Panic-safety scans: everything a query can use as an index is
	// bounds-checked with sequential compare-only passes (parent
	// pre-order additionally keeps the ancestor walks cycle-free).
	// Semantic cross-checks stay trusted; these scans only guarantee that
	// no lookup can panic or hang.
	nDocs := len(r.DocRoots)
	for v := 0; v < n; v++ {
		// Parent pre-order is per-index (p < v), so it stays a branchy
		// scan; uint32 folds the negative case in.
		if p := r.Parent[v]; p != NoNID && uint32(p) >= uint32(v) {
			return nil, fmt.Errorf("graph: node %d has parent %d out of pre-order", v, p)
		}
	}
	var maxURI, maxName1, maxDoc1, maxComp1 uint32
	for v := 0; v < n; v++ {
		if x := uint32(r.DictID[v]); x > maxURI {
			maxURI = x
		}
		if x := uint32(r.NodeName[v]) + 1; x > maxName1 {
			maxName1 = x
		}
		if x := uint32(r.DocOf[v]) + 1; x > maxDoc1 {
			maxDoc1 = x
		}
		if x := uint32(r.Comp[v]) + 1; x > maxComp1 {
			maxComp1 = x
		}
	}
	if n > 0 {
		if maxURI >= uint32(nd) || maxName1 > uint32(nd) {
			return nil, fmt.Errorf("graph: node URI or name outside dictionary of %d", nd)
		}
		if maxDoc1 > uint32(nDocs) {
			return nil, fmt.Errorf("graph: node document ordinal outside %d documents", nDocs)
		}
		if r.NComp < 0 || maxComp1 > uint32(r.NComp) {
			return nil, fmt.Errorf("graph: node component outside %d components", r.NComp)
		}
	}
	// Branch-free max reductions over the flat lists: uint32(x) folds
	// negatives in, and the +1 bias maps the NoID/NoNID sentinels (-1) to
	// 0, which every bound accepts.
	var maxKw1 uint32
	for _, k := range acc.KwList {
		if v := uint32(k) + 1; v > maxKw1 {
			maxKw1 = v
		}
	}
	if maxKw1 > uint32(nd) {
		return nil, fmt.Errorf("graph: content keyword outside dictionary of %d", nd)
	}
	var maxTo, maxProp1 uint32
	for i := range acc.EdgeList {
		if v := uint32(acc.EdgeList[i].To); v > maxTo {
			maxTo = v
		}
		if v := uint32(acc.EdgeList[i].Prop) + 1; v > maxProp1 {
			maxProp1 = v
		}
	}
	if len(acc.EdgeList) > 0 && (maxTo >= uint32(n) || maxProp1 > uint32(nd)) {
		return nil, fmt.Errorf("graph: edge outside instance of %d nodes / dictionary of %d", n, nd)
	}
	checkNIDs := func(vs []NID, what string) error {
		for _, v := range vs {
			if uint32(v) >= uint32(n) {
				return fmt.Errorf("graph: %s node outside instance of %d nodes", what, n)
			}
		}
		return nil
	}
	if err := checkNIDs(r.Users, "user"); err != nil {
		return nil, err
	}
	if err := checkNIDs(r.DocRoots, "document root"); err != nil {
		return nil, err
	}
	if err := checkNIDs(r.TagList, "tag"); err != nil {
		return nil, err
	}
	for _, ti := range r.TagInfos {
		if ti.Subject < 0 || int(ti.Subject) >= n || ti.Author < 0 || int(ti.Author) >= n {
			return nil, fmt.Errorf("graph: tag info outside instance of %d nodes", n)
		}
		if (ti.Keyword >= nd && ti.Keyword != dict.NoID) || (ti.Type >= nd && ti.Type != dict.NoID) {
			return nil, fmt.Errorf("graph: tag info outside dictionary of %d", nd)
		}
	}
	for _, c := range r.Comments {
		if c.Comment < 0 || int(c.Comment) >= n || c.Target < 0 || int(c.Target) >= n {
			return nil, fmt.Errorf("graph: comment edge outside instance of %d nodes", n)
		}
	}
	for _, p := range r.Posts {
		if p.Doc < 0 || int(p.Doc) >= n || p.User < 0 || int(p.User) >= n {
			return nil, fmt.Errorf("graph: post edge outside instance of %d nodes", n)
		}
	}
	for _, k := range r.KwFreqKeys {
		if k >= nd && k != dict.NoID {
			return nil, fmt.Errorf("graph: frequency keyword outside dictionary of %d", nd)
		}
	}
	if len(acc.NIDByID) != int(nd) {
		return nil, fmt.Errorf("graph: URI→node table has %d entries for %d dictionary ids", len(acc.NIDByID), nd)
	}
	for _, v := range acc.NIDByID {
		if v != NoNID && (v < 0 || int(v) >= n) {
			return nil, fmt.Errorf("graph: URI→node table points outside instance of %d nodes", n)
		}
	}
	if err := checkCSR(acc.ChildOff, n, len(acc.ChildList), "children"); err != nil {
		return nil, err
	}
	for _, c := range acc.ChildList {
		if c < 0 || int(c) >= n {
			return nil, fmt.Errorf("graph: children list points outside instance of %d nodes", n)
		}
	}
	in.nidByID = acc.NIDByID
	in.children = childrenFromCSR(acc, n)

	var err error
	in.matrix, err = sparse.FromRaw(n, r.MatrixRowPtr, r.MatrixCol, r.MatrixVal)
	if err != nil {
		return nil, err
	}
	return in, nil
}

// checkCSR validates an n+1-entry offset table spanning [0, total]
// monotonically — the structural invariant behind every flattened list.
func checkCSR(off []int64, n, total int, what string) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: %s offsets have %d entries for %d nodes", what, len(off), n)
	}
	if off[0] != 0 || off[n] != int64(total) {
		return fmt.Errorf("graph: %s offsets span [%d, %d] for %d entries", what, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("graph: decreasing %s offset at node %d", what, i)
		}
	}
	return nil
}

// childrenFromCSR builds the per-node child slice headers over the shared
// CSR list — one allocation for the headers, zero copies of the data.
func childrenFromCSR(acc *Accel, n int) [][]NID {
	children := make([][]NID, n)
	for v := 0; v < n; v++ {
		lo, hi := acc.ChildOff[v], acc.ChildOff[v+1]
		if lo < hi {
			children[v] = acc.ChildList[lo:hi:hi]
		}
	}
	return children
}
