package graph

import (
	"s3/internal/dict"
	"s3/internal/rdf"
)

// ExportRDF materialises the complete RDF view of the instance: every
// statement the S3 model defines in §2.2–§2.4, including class assertions,
// document-derived triples, tag triples, weighted social edges and the
// inverse properties. The returned graph shares the instance dictionary
// and additionally contains the (saturated) ontology.
//
// This is the interoperability face of the model (requirement R6): two
// instances exported this way can be unioned into one RDF graph and
// re-imported.
func (in *Instance) ExportRDF() *rdf.Graph {
	g := rdf.New(in.dict)
	for _, t := range in.ont.Triples() {
		g.AddT(t.S, t.P, t.O, t.W)
	}

	typeP := in.dict.Intern(rdf.TypeURI)
	userC := in.dict.Intern(ClassUser)
	docC := in.dict.Intern(ClassDoc)
	relatedC := in.dict.Intern(ClassRelatedTo)
	partOf := in.dict.Intern(PropPartOf)
	contains := in.dict.Intern(PropContains)
	nodeName := in.dict.Intern(PropNodeName)
	postedBy := in.dict.Intern(PropPostedBy)
	postedByInv := in.dict.Intern(PropPostedByInv)
	commentsOnInv := in.dict.Intern(PropCommentsOnInv)
	hasSubject := in.dict.Intern(PropHasSubject)
	hasSubjectInv := in.dict.Intern(PropHasSubjectInv)
	hasKeyword := in.dict.Intern(PropHasKeyword)
	hasAuthor := in.dict.Intern(PropHasAuthor)
	hasAuthorInv := in.dict.Intern(PropHasAuthorInv)

	for _, u := range in.users {
		g.AddT(in.dictID[u], typeP, userC, 1)
	}
	for v := range in.dictID {
		n := NID(v)
		switch in.kind[v] {
		case KindDocNode:
			g.AddT(in.dictID[v], typeP, docC, 1)
			if p := in.parent[v]; p != NoNID {
				g.AddT(in.dictID[v], partOf, in.dictID[p], 1)
			}
			for _, kw := range in.KeywordsOf(NID(v)) {
				g.AddT(in.dictID[v], contains, kw, 1)
			}
			if in.nodeName[v] != dict.NoID {
				g.AddT(in.dictID[v], nodeName, in.nodeName[v], 1)
			}
		case KindTag:
			ti := in.tagInfo[n]
			g.AddT(in.dictID[v], typeP, ti.Type, 1)
			if ti.Type != relatedC {
				g.AddT(in.dictID[v], typeP, relatedC, 1)
			}
			g.AddT(in.dictID[v], hasSubject, in.dictID[ti.Subject], 1)
			g.AddT(in.dictID[ti.Subject], hasSubjectInv, in.dictID[v], 1)
			g.AddT(in.dictID[v], hasAuthor, in.dictID[ti.Author], 1)
			g.AddT(in.dictID[ti.Author], hasAuthorInv, in.dictID[v], 1)
			if ti.Keyword != dict.NoID {
				g.AddT(in.dictID[v], hasKeyword, ti.Keyword, 1)
			}
		}
	}
	for _, p := range in.posts {
		g.AddT(in.dictID[p.Doc], postedBy, in.dictID[p.User], 1)
		g.AddT(in.dictID[p.User], postedByInv, in.dictID[p.Doc], 1)
	}
	for _, c := range in.comments {
		g.AddT(in.dictID[c.Comment], c.Prop, in.dictID[c.Target], 1)
		g.AddT(in.dictID[c.Target], commentsOnInv, in.dictID[c.Comment], 1)
	}
	// Social edges carry their quantitative weight and therefore do not
	// participate in entailment (weighted-graph semantics, §2.1).
	for _, u := range in.users {
		for _, e := range in.OutEdges(u) {
			if in.kind[e.To] == KindUser {
				g.AddT(in.dictID[u], e.Prop, in.dictID[e.To], e.W)
			}
		}
	}
	// "The semantics of an RDF graph is its saturation" (§2.1): derive
	// the implicit statements — e.g. a repliesTo edge also holds as
	// S3:commentsOn through the sub-property constraint.
	g.Saturate()
	return g
}
