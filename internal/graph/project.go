package graph

import (
	"fmt"
	"sort"

	"s3/internal/dict"
)

// projection is the per-shard overlay of a component-projected instance:
// the content-entity lists and statistics restricted to an owned set of
// components. The heavy substrate — dictionary, node tables, network
// adjacency, normalised transition matrix and ontology — is shared with
// the base instance, because the all-paths social proximity of §3.4 is
// defined over the *whole* network graph: removing another shard's
// document or tag nodes would change prox(u, src) and therefore scores.
// Components are the unit of candidate generation (§5.2), not of the
// proximity substrate, so a projection restricts exactly the former.
type projection struct {
	comps []int32 // owned component ids, sorted
	owns  []bool  // indexed by component id

	docRoots []NID
	tags     []NID
	comments []CommentEdge
	posts    []PostEdge
	kwFreq   map[dict.ID]int
	stats    Stats
}

// ProjectComponents returns a self-consistent sub-instance owning exactly
// the given components: its document, tag, comment, post and
// keyword-frequency tables are restricted to them, and Stats reflects the
// restriction. Node tables, the network graph and the transition matrix
// are shared with the receiver (NIDs, component ids and proximity values
// are identical across all projections of one instance — the invariant
// that makes sharded search answer-equivalent to unsharded search).
// Component ids must be in range and not duplicated.
func (in *Instance) ProjectComponents(comps []int32) (*Instance, error) {
	if in.proj != nil {
		return nil, fmt.Errorf("graph: cannot project an already-projected instance")
	}
	if in.sliced != nil {
		return nil, fmt.Errorf("graph: cannot project a sliced instance")
	}
	p := &projection{
		// Non-nil even when empty: OwnedComponents distinguishes "owns
		// nothing" (a valid shard of an over-partitioned instance) from
		// "unprojected" (nil).
		comps: append(make([]int32, 0, len(comps)), comps...),
		owns:  make([]bool, in.nComp),
	}
	sort.Slice(p.comps, func(i, j int) bool { return p.comps[i] < p.comps[j] })
	for i, c := range p.comps {
		if c < 0 || int(c) >= in.nComp {
			return nil, fmt.Errorf("graph: component %d outside instance of %d components", c, in.nComp)
		}
		if i > 0 && p.comps[i-1] == c {
			return nil, fmt.Errorf("graph: duplicate component %d in projection", c)
		}
		p.owns[c] = true
	}

	for _, r := range in.docRoots {
		if p.owns[in.comp[r]] {
			p.docRoots = append(p.docRoots, r)
		}
	}
	for _, t := range in.tagList {
		if p.owns[in.comp[t]] {
			p.tags = append(p.tags, t)
		}
	}
	for _, c := range in.comments {
		if p.owns[in.comp[c.Comment]] {
			p.comments = append(p.comments, c)
		}
	}
	for _, po := range in.posts {
		if p.owns[in.comp[po.Doc]] {
			p.posts = append(p.posts, po)
		}
	}

	// Keyword document frequencies over the owned documents only, with the
	// same node-grain dedupe as the builder.
	p.kwFreq = make(map[dict.ID]int)
	var stack []NID
	for _, root := range p.docRoots {
		stack = in.SubtreeOf(root, stack[:0])
		for _, n := range stack {
			seen := make(map[dict.ID]struct{}, len(in.KeywordsOf(n)))
			for _, k := range in.KeywordsOf(n) {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				p.kwFreq[k]++
			}
		}
	}

	p.stats = in.projectedStats(p)

	out := *in
	out.proj = p
	return &out, nil
}

// projectedStats restricts the Figure 4 statistics to a projection's
// components. The social layer (users, social edges, average degree) and
// the ontology are shared substrate and therefore inherited unchanged.
func (in *Instance) projectedStats(p *projection) Stats {
	s := in.stats
	s.Documents = len(p.docRoots)
	s.Tags = len(p.tags)
	s.Comments = len(p.comments)
	s.Posts = len(p.posts)
	s.Components = len(p.comps)
	s.DistinctKeywords = len(p.kwFreq)
	s.Fragments, s.KeywordOccurrences = 0, 0
	// Nodes and Edges count the shared users plus the owned content nodes.
	s.Nodes, s.Edges = 0, 0
	for v := range in.dictID {
		owned := in.kind[v] == KindUser || (in.comp[v] >= 0 && p.owns[in.comp[v]])
		if !owned {
			continue
		}
		s.Nodes++
		s.Edges += len(in.OutEdges(NID(v)))
		if in.kind[v] == KindDocNode && in.parent[v] != NoNID {
			s.Fragments++
		}
		s.KeywordOccurrences += len(in.KeywordsOf(NID(v)))
	}
	s.Edges += s.Fragments // tree edges, as in computeStats
	return s
}

// OwnedComponents returns the component ids a projection owns — empty
// but non-nil for a projection owning nothing — or nil for an
// unprojected instance (which owns every component).
func (in *Instance) OwnedComponents() []int32 {
	if in.sliced != nil {
		return in.sliced.comps
	}
	if in.proj == nil {
		return nil
	}
	return in.proj.comps
}

// OwnsComponent reports whether the instance owns the component: true for
// every in-range component on an unprojected instance.
func (in *Instance) OwnsComponent(c int32) bool {
	if c < 0 || int(c) >= in.nComp {
		return false
	}
	if in.sliced != nil {
		return in.sliced.owns[c]
	}
	if in.proj == nil {
		return true
	}
	return in.proj.owns[c]
}

// PartitionComponents splits the instance's components into n balanced
// groups for sharding, using longest-processing-time greedy assignment by
// per-component document-node count (ties and ordering are deterministic,
// so the same instance always partitions the same way). Groups are
// returned with their component ids sorted; when the instance has fewer
// components than n, trailing groups are empty.
func PartitionComponents(in *Instance, n int) ([][]int32, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: shard count must be positive, got %d", n)
	}
	size := make([]int, in.nComp)
	for v := range in.dictID {
		if in.kind[v] == KindDocNode && in.comp[v] >= 0 {
			size[in.comp[v]]++
		}
	}
	order := make([]int32, in.nComp)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if size[order[i]] != size[order[j]] {
			return size[order[i]] > size[order[j]]
		}
		return order[i] < order[j]
	})
	groups := make([][]int32, n)
	load := make([]int, n)
	for _, c := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		groups[best] = append(groups[best], c)
		load[best] += size[c]
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	return groups, nil
}
