package graph

import (
	"fmt"
	"sort"

	"s3/internal/dict"
	"s3/internal/doc"
	"s3/internal/rdf"
	"s3/internal/sparse"
	"s3/internal/text"
)

// Spec is a declarative, serialisable description of an S3 instance: the
// exact content a social application would feed the system. Dataset
// generators produce Specs; Build turns a Spec into a queryable Instance.
type Spec struct {
	// Ontology lists weight-1 RDF triples (schema and entity facts).
	Ontology [][3]string
	Users    []string
	Social   []SocialSpec
	// Docs holds document trees; each is finalised with doc.New at build
	// time, so only URI/Name/Text/Children need to be populated.
	Docs     []*doc.Node
	Posts    []PostSpec
	Comments []CommentSpec
	Tags     []TagSpec
}

// SocialSpec is one weighted social edge. Prop may name a sub-property of
// S3:social (e.g. "vdk:follow", "yelp:friend"); empty means S3:social.
type SocialSpec struct {
	From, To string
	W        float64
	Prop     string
}

// PostSpec states that document node Doc was posted by User.
type PostSpec struct{ Doc, User string }

// CommentSpec states that document Comment comments on node Target. Prop
// may name a sub-property of S3:commentsOn (e.g. "tw:repliesTo").
type CommentSpec struct{ Comment, Target, Prop string }

// TagSpec declares a tag resource. Keyword == "" makes it a keyword-less
// endorsement. Type may name a subclass of S3:relatedTo (e.g.
// "NLP:recognize").
type TagSpec struct{ URI, Subject, Author, Keyword, Type string }

// Builder incrementally assembles and validates a Spec, then freezes it
// into an Instance. Builders are single-goroutine objects.
type Builder struct {
	spec     Spec
	analyzer text.Analyzer

	userSet map[string]struct{}
	nodeURI map[string]NodeKind // all instance node URIs
	docSet  map[string]int      // doc root URI → index in spec.Docs
	docs    []*doc.Document     // finalised trees, same order as spec.Docs
}

// NewBuilder returns a builder using the given text analyzer for document
// content and tag keywords.
func NewBuilder(analyzer text.Analyzer) *Builder {
	return &Builder{
		analyzer: analyzer,
		userSet:  make(map[string]struct{}),
		nodeURI:  make(map[string]NodeKind),
		docSet:   make(map[string]int),
	}
}

// AddOntologyTriple records a weight-1 RDF statement (schema or fact).
func (b *Builder) AddOntologyTriple(s, p, o string) {
	b.spec.Ontology = append(b.spec.Ontology, [3]string{s, p, o})
}

// AddUser registers a user URI. Adding the same user twice is a no-op.
func (b *Builder) AddUser(uri string) error {
	if uri == "" {
		return fmt.Errorf("graph: empty user URI")
	}
	if _, dup := b.userSet[uri]; dup {
		return nil
	}
	if k, taken := b.nodeURI[uri]; taken {
		return fmt.Errorf("graph: URI %q already used by a %s", uri, k)
	}
	b.userSet[uri] = struct{}{}
	b.nodeURI[uri] = KindUser
	b.spec.Users = append(b.spec.Users, uri)
	return nil
}

// AddSocial records a weighted social edge between two existing users,
// optionally through a named sub-property of S3:social (the sub-property
// fact is added to the ontology automatically).
func (b *Builder) AddSocial(from, to string, w float64, prop string) error {
	if _, ok := b.userSet[from]; !ok {
		return fmt.Errorf("graph: social edge from unknown user %q", from)
	}
	if _, ok := b.userSet[to]; !ok {
		return fmt.Errorf("graph: social edge to unknown user %q", to)
	}
	if from == to {
		return fmt.Errorf("graph: self social edge on %q", from)
	}
	if w <= 0 || w > 1 {
		return fmt.Errorf("graph: social weight %v outside (0,1]", w)
	}
	if prop != "" && prop != PropSocial {
		b.AddOntologyTriple(prop, rdf.SubPropertyOfURI, PropSocial)
	}
	b.spec.Social = append(b.spec.Social, SocialSpec{From: from, To: to, W: w, Prop: prop})
	return nil
}

// AddDocument finalises and registers a document tree. Node keyword sets
// are computed from Text with the builder's analyzer unless already set.
func (b *Builder) AddDocument(root *doc.Node) error {
	d, err := doc.New(root)
	if err != nil {
		return err
	}
	if _, dup := b.docSet[d.URI()]; dup {
		return fmt.Errorf("graph: duplicate document %q", d.URI())
	}
	for _, n := range d.Nodes() {
		if k, taken := b.nodeURI[n.URI]; taken {
			return fmt.Errorf("graph: node URI %q already used by a %s", n.URI, k)
		}
	}
	for _, n := range d.Nodes() {
		b.nodeURI[n.URI] = KindDocNode
		if n.Keywords == nil && n.Text != "" {
			n.Keywords = b.analyzer.Keywords(n.Text)
		}
	}
	b.docSet[d.URI()] = len(b.spec.Docs)
	b.spec.Docs = append(b.spec.Docs, root)
	b.docs = append(b.docs, d)
	return nil
}

// AddPost records that an existing document node was posted by an existing
// user.
func (b *Builder) AddPost(docNode, user string) error {
	if b.nodeURI[docNode] != KindDocNode {
		return fmt.Errorf("graph: post of unknown document node %q", docNode)
	}
	if _, ok := b.userSet[user]; !ok {
		return fmt.Errorf("graph: post by unknown user %q", user)
	}
	b.spec.Posts = append(b.spec.Posts, PostSpec{Doc: docNode, User: user})
	return nil
}

// AddComment records that document comment comments on node target,
// optionally through a sub-property of S3:commentsOn.
func (b *Builder) AddComment(comment, target, prop string) error {
	ci, ok := b.docSet[comment]
	if !ok {
		return fmt.Errorf("graph: comment %q is not a registered document root", comment)
	}
	if b.nodeURI[target] != KindDocNode {
		return fmt.Errorf("graph: comment target %q is not a document node", target)
	}
	if _, inSelf := b.docs[ci].Node(target); inSelf {
		return fmt.Errorf("graph: document %q cannot comment on its own node %q", comment, target)
	}
	if prop != "" && prop != PropCommentsOn {
		b.AddOntologyTriple(prop, rdf.SubPropertyOfURI, PropCommentsOn)
	}
	b.spec.Comments = append(b.spec.Comments, CommentSpec{Comment: comment, Target: target, Prop: prop})
	return nil
}

// AddTag declares a tag by author on subject (a document node or an
// earlier tag — the latter gives the higher-level annotations of R4).
// keyword == "" declares an endorsement. typ may name a subclass of
// S3:relatedTo.
func (b *Builder) AddTag(uri, subject, author, keyword, typ string) error {
	if uri == "" {
		return fmt.Errorf("graph: empty tag URI")
	}
	if k, taken := b.nodeURI[uri]; taken {
		return fmt.Errorf("graph: URI %q already used by a %s", uri, k)
	}
	if k, ok := b.nodeURI[subject]; !ok || (k != KindDocNode && k != KindTag) {
		return fmt.Errorf("graph: tag subject %q is not a document node or tag", subject)
	}
	if _, ok := b.userSet[author]; !ok {
		return fmt.Errorf("graph: tag author %q is not a user", author)
	}
	if typ != "" && typ != ClassRelatedTo {
		b.AddOntologyTriple(typ, rdf.SubClassOfURI, ClassRelatedTo)
	}
	b.nodeURI[uri] = KindTag
	b.spec.Tags = append(b.spec.Tags, TagSpec{URI: uri, Subject: subject, Author: author, Keyword: keyword, Type: typ})
	return nil
}

// Spec returns a copy of the accumulated specification.
func (b *Builder) Spec() Spec { return b.spec }

// BuildSpec validates and freezes a Spec into an Instance in one call.
func BuildSpec(spec Spec, analyzer text.Analyzer) (*Instance, error) {
	b := NewBuilder(analyzer)
	for _, t := range spec.Ontology {
		b.AddOntologyTriple(t[0], t[1], t[2])
	}
	for _, u := range spec.Users {
		if err := b.AddUser(u); err != nil {
			return nil, err
		}
	}
	for _, s := range spec.Social {
		if err := b.AddSocial(s.From, s.To, s.W, s.Prop); err != nil {
			return nil, err
		}
	}
	for _, d := range spec.Docs {
		if err := b.AddDocument(d); err != nil {
			return nil, err
		}
	}
	for _, p := range spec.Posts {
		if err := b.AddPost(p.Doc, p.User); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Comments {
		if err := b.AddComment(c.Comment, c.Target, c.Prop); err != nil {
			return nil, err
		}
	}
	for _, t := range spec.Tags {
		if err := b.AddTag(t.URI, t.Subject, t.Author, t.Keyword, t.Type); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Build freezes the builder into an immutable Instance: it saturates the
// ontology, assigns dense node ids, materialises network edges with their
// inverses, the normalised transition matrix, the component partition and
// the instance statistics.
func (b *Builder) Build() (*Instance, error) {
	d := dict.New()
	ont := rdf.New(d)
	for _, t := range b.spec.Ontology {
		ont.Add(t[0], t[1], t[2])
	}
	// The schema of the S3 namespace itself (§2.3).
	ont.Add(PropPartOf, rdf.DomainURI, ClassDoc)
	ont.Add(PropPartOf, rdf.RangeURI, ClassDoc)
	ont.Add(PropContains, rdf.DomainURI, ClassDoc)
	ont.Add(PropNodeName, rdf.DomainURI, ClassDoc)
	ont.Saturate()

	in := &Instance{
		dict:     d,
		ont:      ont,
		analyzer: b.analyzer,
		nidOf:    make(map[dict.ID]NID),
		tagInfo:  make(map[NID]TagInfo),
		kwFreq:   make(map[dict.ID]int),
	}

	addNode := func(uri string, kind NodeKind) NID {
		id := d.Intern(uri)
		n := NID(len(in.dictID))
		in.nidOf[id] = n
		in.dictID = append(in.dictID, id)
		in.kind = append(in.kind, kind)
		in.parent = append(in.parent, NoNID)
		in.depth = append(in.depth, 0)
		in.docOf = append(in.docOf, -1)
		in.children = append(in.children, nil)
		in.keywords = append(in.keywords, nil)
		in.nodeName = append(in.nodeName, dict.NoID)
		return n
	}

	for _, uri := range b.spec.Users {
		in.users = append(in.users, addNode(uri, KindUser))
	}
	for docIdx, dd := range b.docs {
		for _, node := range dd.Nodes() {
			n := addNode(node.URI, KindDocNode)
			in.docOf[n] = int32(docIdx)
			in.depth[n] = int32(node.Depth())
			in.nodeName[n] = d.Intern(node.Name)
			for _, kw := range node.Keywords {
				in.keywords[n] = append(in.keywords[n], d.Intern(kw))
			}
			if p := node.Parent(); p != nil {
				pn := in.nidOf[mustLookup(d, p.URI)]
				in.parent[n] = pn
				in.children[pn] = append(in.children[pn], n)
			} else {
				in.docRoots = append(in.docRoots, n)
			}
		}
	}
	for _, t := range b.spec.Tags {
		n := addNode(t.URI, KindTag)
		subj := in.nidOf[mustLookup(d, t.Subject)]
		auth := in.nidOf[mustLookup(d, t.Author)]
		kw := dict.NoID
		if t.Keyword != "" {
			kw = d.Intern(stemKeyword(b.analyzer, t.Keyword))
		}
		typ := ClassRelatedTo
		if t.Type != "" {
			typ = t.Type
		}
		in.tagList = append(in.tagList, n)
		in.tagInfo[n] = TagInfo{Subject: subj, Author: auth, Keyword: kw, Type: d.Intern(typ)}
	}

	// Keyword document frequencies (used by workload generators and the
	// semantic-reachability measure).
	for _, root := range in.docRoots {
		var stack []NID
		stack = in.SubtreeOf(root, stack)
		for _, n := range stack {
			seen := make(map[dict.ID]struct{}, len(in.keywords[n]))
			for _, k := range in.keywords[n] {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				in.kwFreq[k]++
			}
		}
	}

	// Network edges (§2.5): social, postedBy, commentsOn, hasSubject,
	// hasAuthor — plus the inverse of each non-social edge.
	in.out = make([][]Edge, len(in.dictID))
	addEdge := func(from, to NID, w float64, prop string) {
		in.out[from] = append(in.out[from], Edge{To: to, W: w, Prop: d.Intern(prop)})
	}
	for _, s := range b.spec.Social {
		prop := s.Prop
		if prop == "" {
			prop = PropSocial
		}
		from := in.nidOf[mustLookup(d, s.From)]
		to := in.nidOf[mustLookup(d, s.To)]
		addEdge(from, to, s.W, prop)
	}
	for _, p := range b.spec.Posts {
		dn := in.nidOf[mustLookup(d, p.Doc)]
		un := in.nidOf[mustLookup(d, p.User)]
		addEdge(dn, un, 1, PropPostedBy)
		addEdge(un, dn, 1, PropPostedByInv)
		in.posts = append(in.posts, PostEdge{Doc: dn, User: un})
	}
	for _, c := range b.spec.Comments {
		prop := c.Prop
		if prop == "" {
			prop = PropCommentsOn
		}
		cn := in.nidOf[mustLookup(d, c.Comment)]
		tn := in.nidOf[mustLookup(d, c.Target)]
		addEdge(cn, tn, 1, prop)
		addEdge(tn, cn, 1, PropCommentsOnInv)
		in.comments = append(in.comments, CommentEdge{Comment: cn, Target: tn, Prop: d.Intern(prop)})
	}
	for _, n := range in.tagList {
		ti := in.tagInfo[n]
		addEdge(n, ti.Subject, 1, PropHasSubject)
		addEdge(ti.Subject, n, 1, PropHasSubjectInv)
		addEdge(n, ti.Author, 1, PropHasAuthor)
		addEdge(ti.Author, n, 1, PropHasAuthorInv)
	}

	in.buildMatrix()
	in.buildComponents()
	in.computeStats(b)
	return in, nil
}

func mustLookup(d *dict.Dict, uri string) dict.ID {
	id, ok := d.Lookup(uri)
	if !ok {
		panic(fmt.Sprintf("graph: internal error: URI %q not interned", uri))
	}
	return id
}

// stemKeyword runs a tag keyword through the same pipeline as document
// content so that tag and content keywords live in one vocabulary.
func stemKeyword(a text.Analyzer, kw string) string {
	if ks := a.Keywords(kw); len(ks) > 0 {
		return ks[0]
	}
	return kw
}

// buildMatrix materialises the normalised transition matrix (§2.5). For a
// node v, the walk may leave from any vertical neighbour m of v; the edge
// (m → t, w) contributes w / W(v) to M[v][t], with W(v) the total
// out-weight of the neighbourhood.
func (in *Instance) buildMatrix() {
	n := len(in.dictID)
	in.totalW = make([]float64, n)

	ownW := make([]float64, n)
	for v, edges := range in.out {
		for _, e := range edges {
			ownW[v] += e.W
		}
	}
	// subW[v] = Σ ownW over v's subtree (doc nodes; ownW for the rest).
	subW := make([]float64, n)
	var subtreeWeight func(v NID) float64
	subtreeWeight = func(v NID) float64 {
		w := ownW[v]
		for _, c := range in.children[v] {
			w += subtreeWeight(c)
		}
		subW[v] = w
		return w
	}
	for v := 0; v < n; v++ {
		if in.kind[v] == KindDocNode && in.parent[v] == NoNID {
			subtreeWeight(NID(v))
		} else if in.kind[v] != KindDocNode {
			subW[v] = ownW[v]
		}
	}
	for v := 0; v < n; v++ {
		w := subW[v]
		for p := in.parent[v]; p != NoNID; p = in.parent[p] {
			w += ownW[p]
		}
		in.totalW[v] = w
	}

	bld := sparse.NewBuilder(n)
	var members []NID
	for v := 0; v < n; v++ {
		if in.totalW[v] == 0 {
			continue
		}
		members = members[:0]
		if in.kind[v] == KindDocNode {
			members = in.SubtreeOf(NID(v), members)
			for p := in.parent[v]; p != NoNID; p = in.parent[p] {
				members = append(members, p)
			}
		} else {
			members = append(members, NID(v))
		}
		for _, m := range members {
			for _, e := range in.out[m] {
				bld.Add(v, int(e.To), e.W/in.totalW[v])
			}
		}
	}
	in.matrix = bld.Build()
}

// buildComponents partitions document nodes and tags into the §5.2
// components: the connected components over partOf (the document trees),
// commentsOn and hasSubject edges.
func (in *Instance) buildComponents() {
	n := len(in.dictID)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b NID) {
		ra, rb := find(int32(a)), find(int32(b))
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		if in.parent[v] != NoNID {
			union(NID(v), in.parent[v])
		}
	}
	for _, c := range in.comments {
		union(c.Comment, c.Target)
	}
	for _, t := range in.tagList {
		union(t, in.tagInfo[t].Subject)
	}

	in.comp = make([]int32, n)
	rootToComp := make(map[int32]int32)
	for v := 0; v < n; v++ {
		if in.kind[v] == KindUser {
			in.comp[v] = -1
			continue
		}
		r := find(int32(v))
		c, ok := rootToComp[r]
		if !ok {
			c = int32(len(rootToComp))
			rootToComp[r] = c
		}
		in.comp[v] = c
	}
	in.nComp = len(rootToComp)
}

// SortedKeywordsByFrequency returns all content keywords sorted by
// ascending document frequency (ties broken by keyword string for
// determinism). Used to build rare/common query workloads (§5.1).
func (in *Instance) SortedKeywordsByFrequency() []dict.ID {
	freq := in.KeywordFrequencies()
	kws := make([]dict.ID, 0, len(freq))
	for k := range freq {
		kws = append(kws, k)
	}
	sort.Slice(kws, func(i, j int) bool {
		fi, fj := freq[kws[i]], freq[kws[j]]
		if fi != fj {
			return fi < fj
		}
		return in.dict.String(kws[i]) < in.dict.String(kws[j])
	})
	return kws
}
