package graph

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Encode serialises the Spec with encoding/gob. Document trees are encoded
// structurally (URIs, names, texts, keywords, children); derived state is
// rebuilt on load by BuildSpec.
func (s *Spec) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("graph: encoding spec: %w", err)
	}
	return nil
}

// DecodeSpec reads a Spec previously written by Encode.
func DecodeSpec(r io.Reader) (*Spec, error) {
	var s Spec
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("graph: decoding spec: %w", err)
	}
	return &s, nil
}
