package faultnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTransportSchedule covers the rule mechanics: host/path matching,
// After skips, Count limits, and each action's observable effect —
// corruption faults must leave the headers intact.
func TestTransportSchedule(t *testing.T) {
	const body = "0123456789abcdef"
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("X-Check", "kept")
		io.WriteString(rw, body)
	}))
	defer srv.Close()

	get := func(tr *Transport, path string) (*http.Response, []byte, error) {
		c := &http.Client{Transport: tr, Timeout: 5 * time.Second}
		resp, err := c.Get(srv.URL + path)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, b, err
	}

	// After skips, Count bounds, path prefix restricts.
	tr := NewTransport(nil, 1)
	r := tr.Add(&Rule{Path: "/hit", After: 1, Count: 1, Action: Reset})
	if _, _, err := get(tr, "/miss"); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if _, _, err := get(tr, "/hit"); err != nil {
		t.Fatalf("request inside the After window faulted: %v", err)
	}
	if _, _, err := get(tr, "/hit"); err == nil {
		t.Fatal("scheduled reset did not fire")
	}
	if _, _, err := get(tr, "/hit"); err != nil {
		t.Fatalf("rule fired past its Count: %v", err)
	}
	if got := tr.Applied(r); got != 1 {
		t.Fatalf("Applied = %d, want 1", got)
	}
	if tr.Add(&Rule{Host: "no-such-host", Action: Reset}); false {
		t.Fatal("unreachable")
	}
	if _, _, err := get(tr, "/hit"); err != nil {
		t.Fatalf("host mismatch faulted: %v", err)
	}

	// Truncate cuts the body but keeps headers and status.
	trunc := NewTransport(nil, 2)
	trunc.Add(&Rule{Action: Truncate})
	resp, tb, err := get(trunc, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb) >= len(body) {
		t.Fatalf("truncate left %d of %d bytes", len(tb), len(body))
	}
	if resp.Header.Get("X-Check") != "kept" {
		t.Fatal("truncate dropped a header")
	}

	// Flip perturbs exactly one bit.
	flip := NewTransport(nil, 3)
	flip.Add(&Rule{Action: Flip})
	_, b, err := get(flip, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(body) || string(b) == body {
		t.Fatalf("flip produced %q from %q", b, body)
	}
	diffBits := 0
	for i := range b {
		for x := b[i] ^ body[i]; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flip changed %d bits, want 1", diffBits)
	}

	// The same seed and request sequence reproduce the same faults.
	again := NewTransport(nil, 2)
	again.Add(&Rule{Action: Truncate})
	_, b2, err := get(again, "/")
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(tb) {
		t.Fatalf("same seed drew different truncations: %d vs %d bytes", len(b2), len(tb))
	}
}

// TestTransportStallRespectsContext: a stalled request ends with its
// context, not the heat death of the test suite.
func TestTransportStallRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {}))
	defer srv.Close()
	tr := NewTransport(nil, 4)
	tr.Add(&Rule{Action: Stall})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := (&http.Client{Transport: tr}).Do(req); err == nil {
		t.Fatal("stalled request succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("stall outlived its context")
	}
}

// TestProxy drives the TCP proxy's knobs: pass-through, refusing new
// connections, and killing live ones.
func TestProxy(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		io.WriteString(rw, "pong")
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")
	p, err := NewProxy("127.0.0.1:0", target)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	go p.Serve()

	// A fresh client per phase: keep-alive would otherwise reuse a
	// connection across the Refuse toggle.
	client := func() *http.Client {
		return &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	}
	resp, err := client().Get("http://" + p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "pong" {
		t.Fatalf("through proxy: %q", b)
	}

	p.Refuse(true)
	if _, err := client().Get("http://" + p.Addr()); err == nil {
		t.Fatal("refusing proxy served a request")
	}
	p.Refuse(false)
	if _, err := client().Get("http://" + p.Addr()); err != nil {
		t.Fatalf("proxy did not recover from refuse: %v", err)
	}
}
