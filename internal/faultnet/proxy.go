package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a chaos TCP proxy: it forwards every accepted connection to
// Target and exposes knobs to degrade the link — per-write latency,
// refusing new connections, killing all live ones. It runs in front of a
// worker in multi-process chaos topologies (see cmd/s3faultproxy and
// scripts/e2e-chaos-smoke.sh) so a test can take the worker off the
// network without touching its process.
type Proxy struct {
	ln     net.Listener
	target string

	latency atomic.Int64 // per-write delay, nanoseconds
	refuse  atomic.Bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy listens on addr (":0" for an ephemeral port) and forwards to
// target. Call Serve to start accepting.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}, nil
}

// Addr is the address the proxy listens on.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency delays every write in both directions by d (0 restores the
// clean link).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// Refuse makes the proxy close new connections immediately (true) or
// accept them again (false). Existing connections are unaffected.
func (p *Proxy) Refuse(v bool) { p.refuse.Store(v) }

// KillConns tears down every live proxied connection; new connections
// are still accepted (combine with Refuse for a full partition).
func (p *Proxy) KillConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		_ = c.Close()
	}
}

// Close stops the listener and kills all live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.KillConns()
	return err
}

// Serve accepts and forwards connections until Close. It always returns
// a non-nil error (net.ErrClosed after Close).
func (p *Proxy) Serve() error {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return err
		}
		if p.refuse.Load() {
			_ = conn.Close()
			continue
		}
		go p.handle(conn)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = client.Close()
		return
	}
	if !p.track(client) || !p.track(upstream) {
		_ = client.Close()
		_ = upstream.Close()
		return
	}
	var wg sync.WaitGroup
	pipe := func(dst, src net.Conn) {
		defer wg.Done()
		_, _ = io.Copy(&slowWriter{p: p, w: dst}, src)
		// Half-close is enough for HTTP/1.1 keep-alive traffic; closing
		// both ends when either direction ends keeps teardown simple.
		_ = dst.Close()
		_ = src.Close()
	}
	wg.Add(2)
	go pipe(upstream, client)
	go pipe(client, upstream)
	wg.Wait()
	p.untrack(client)
	p.untrack(upstream)
}

// slowWriter applies the proxy's current latency before each write.
type slowWriter struct {
	p *Proxy
	w io.Writer
}

func (s *slowWriter) Write(b []byte) (int, error) {
	if d := s.p.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.w.Write(b)
}
