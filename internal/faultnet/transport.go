// Package faultnet injects transport faults for chaos testing: a
// fault-injecting http.RoundTripper for in-process suites and a TCP
// listener proxy for multi-process topologies. Fault schedules are
// scripted per endpoint (host/path matching with skip/limit counters),
// so a test can say "kill the round RPCs of worker 2 starting at its
// 7th request" and assert the recovered answer byte-identical.
//
// The injected corruption faults (Truncate, Flip) deliberately leave the
// HTTP headers — including the round protocol's CRC header — intact:
// they model a payload corrupted in transit, which the receiver must
// detect, not a forged checksum.
package faultnet

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Action is what a matched rule does to the exchange.
type Action int

const (
	// Latency delays the request by the rule's Latency, then passes it
	// through.
	Latency Action = iota
	// Stall holds the request until its context is cancelled (the
	// client's timeout or a hedge/failover cancellation) and returns the
	// context's error — a worker that accepted the connection and went
	// silent.
	Stall
	// Reset fails the exchange with a connection-reset error without
	// reaching the target — a worker whose process died.
	Reset
	// Truncate passes the request through and cuts the response body
	// short — a connection dropped mid-reply.
	Truncate
	// Flip passes the request through and flips one random bit of the
	// response body — corruption in transit. Headers (and so the frame
	// CRC) are untouched: the receiver must catch the mismatch.
	Flip
)

func (a Action) String() string {
	switch a {
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Flip:
		return "flip"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Rule is one scripted fault: which requests it matches and what it does
// to them. Matching is by substring on the URL host and prefix on the
// path (empty matches anything); After skips the first After matching
// requests (so "fail round 7" is After: 6 on the round endpoint), Count
// bounds how many requests the rule fires on (0 = unlimited).
type Rule struct {
	Host    string
	Path    string
	After   int
	Count   int
	Action  Action
	Latency time.Duration

	matched int
	applied int
}

func (r *Rule) matches(req *http.Request) bool {
	if r.Host != "" && !strings.Contains(req.URL.Host, r.Host) {
		return false
	}
	if r.Path != "" && !strings.HasPrefix(req.URL.Path, r.Path) {
		return false
	}
	return true
}

// Transport is a fault-injecting http.RoundTripper: every request is
// checked against the rules in order and the first firing rule's action
// is applied. Safe for concurrent use; the fault decision runs under the
// lock, the fault itself (sleeps, the inner round trip) outside it.
type Transport struct {
	inner http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule
}

// NewTransport wraps inner (nil picks http.DefaultTransport) with a
// deterministic fault injector: the same seed and request sequence
// reproduce the same faults.
func NewTransport(inner http.RoundTripper, seed uint64) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner: inner,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Add appends a rule to the schedule and returns it (counters are read
// back through Applied).
func (t *Transport) Add(r *Rule) *Rule {
	t.mu.Lock()
	t.rules = append(t.rules, r)
	t.mu.Unlock()
	return r
}

// Applied reports how many requests a rule has fired on.
func (t *Transport) Applied(r *Rule) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return r.applied
}

// decide finds the first rule firing on req and, for corruption faults,
// pre-draws the randomness — all under the lock, so concurrent requests
// see a consistent schedule.
func (t *Transport) decide(req *http.Request) (rule *Rule, draw uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if !r.matches(req) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Count > 0 && r.applied >= r.Count {
			continue
		}
		r.applied++
		return r, t.rng.Uint64()
	}
	return nil, 0
}

// errReset mimics a peer resetting the connection.
var errReset = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, draw := t.decide(req)
	if rule == nil {
		return t.inner.RoundTrip(req)
	}
	switch rule.Action {
	case Latency:
		select {
		case <-time.After(rule.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case Stall:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Reset:
		return nil, errReset
	case Truncate, Flip:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if len(body) > 0 {
			if rule.Action == Truncate {
				body = body[:int(draw%uint64(len(body)))]
			} else {
				bit := draw % uint64(len(body)*8)
				body[bit/8] ^= 1 << (bit % 8)
			}
		}
		resp.Body = io.NopCloser(strings.NewReader(string(body)))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
		return resp, nil
	default:
		return t.inner.RoundTrip(req)
	}
}
