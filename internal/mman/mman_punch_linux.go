//go:build linux

package mman

import (
	"syscall"
	"unsafe"
)

// canPunch: a page-aligned sub-range of a mapping can be replaced with a
// PROT_NONE anonymous reservation, releasing its pages.
const canPunch = true

// punchRange releases the pages of one page-aligned sub-range of a live
// mapping by remapping it PROT_NONE, anonymous, MAP_FIXED. Plain munmap
// would free the address range itself — a later mmap (Go heap growth, a
// reload's new mapping) could land inside the hole, and the eventual
// full-range munmap of Release would then tear down that unrelated live
// mapping. MAP_FIXED atomically replaces the file pages while keeping
// the range reserved by this mapping, so Release's whole-range munmap
// only ever unmaps memory the mapping owns. Raw-syscall mmap is
// dependable on Linux only, hence the build constraint; elsewhere Trim
// simply reports nothing trimmed.
func punchRange(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall6(
		syscall.SYS_MMAP,
		uintptr(unsafe.Pointer(&data[0])),
		uintptr(len(data)),
		uintptr(syscall.PROT_NONE),
		uintptr(syscall.MAP_FIXED|syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS|syscall.MAP_NORESERVE),
		^uintptr(0), // fd -1
		0,
	)
	if errno != 0 {
		return errno
	}
	return nil
}
