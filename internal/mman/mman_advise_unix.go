//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package mman

import "syscall"

// adviseRange forwards access advice to madvise(2).
func adviseRange(data []byte, a Advice) error {
	if len(data) == 0 {
		return nil
	}
	advice := syscall.MADV_NORMAL
	switch a {
	case AdviseRandom:
		advice = syscall.MADV_RANDOM
	case AdviseWillNeed:
		advice = syscall.MADV_WILLNEED
	}
	return syscall.Madvise(data, advice)
}
