//go:build !unix

package mman

import (
	"io"
	"os"
)

// mapFile on platforms without mmap(2) reads the file into private
// memory. Load is then O(bytes) instead of O(page faults), but the
// Mapping lifetime contract (and everything layered on it) is unchanged.
func mapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}

func unmapFile([]byte) error { return nil }
