//go:build !linux

package mman

// canPunch: without a dependable raw-mmap path the backing pages cannot
// be released in place — Trim reports nothing trimmed and Size stays
// honest.
const canPunch = false

func punchRange([]byte) error { return nil }
