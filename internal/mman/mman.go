// Package mman owns the memory-mapped file handles behind zero-copy
// snapshot loading. A Mapping is a read-only byte view of a whole file
// obtained from mmap(2); higher layers reinterpret aligned spans of it as
// typed slices and therefore must keep the Mapping alive for as long as
// any such slice may be read.
//
// Lifetime is reference-counted, not GC-driven: the opener holds the
// first reference, every long-lived structure built over the bytes takes
// its own via Retain, and the pages are unmapped exactly when the last
// holder calls Release. This is what lets a serving process hot-swap
// instances: the old snapshot's mapping stays valid while in-flight
// searches still read it and disappears deterministically when the last
// one finishes — even if the file has been unlinked or rewritten on disk
// in the meantime (the mapping pins the old inode).
package mman

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Mapping is a read-only memory-mapped file. Use Open, share with Retain,
// drop with Release.
type Mapping struct {
	data []byte
	path string
	// trimmed counts the bytes Trim has unmapped (holes punched out of the
	// original range); Size reports the remaining effective mapping.
	trimmed int64
	// refs counts live holders; the pages are unmapped when it reaches
	// zero. A zero or negative count means the mapping is dead.
	refs atomic.Int64
}

// Open maps the whole file read-only and returns a Mapping holding one
// reference. On platforms without mmap support the file is read into
// private memory instead; the Mapping API is identical either way.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mman: %s: %d bytes exceed the address space", path, size)
	}
	data, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mman: mapping %s: %w", path, err)
	}
	m := &Mapping{data: data, path: path}
	m.refs.Store(1)
	return m, nil
}

// Data returns the mapped bytes. The slice (and anything reinterpreted
// from it) is valid only while the caller holds a reference.
func (m *Mapping) Data() []byte { return m.data }

// Size returns the mapped length in bytes, net of trimmed holes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) - m.trimmed }

// Path returns the file path the mapping was opened from (diagnostics;
// the file may have been unlinked or replaced since).
func (m *Mapping) Path() string { return m.path }

// Retain adds a reference. It must be called while at least one
// reference is still held (a dead mapping cannot be revived). The CAS
// loop keeps a misuse panic from resurrecting the count: a dead mapping
// stays dead, so a later misuse still panics deterministically.
func (m *Mapping) Retain() {
	if m == nil {
		return
	}
	for {
		r := m.refs.Load()
		if r <= 0 {
			panic("mman: Retain on a released mapping")
		}
		if m.refs.CompareAndSwap(r, r+1) {
			return
		}
	}
}

// Range is a byte span [Off, Off+Len) of a mapping.
type Range struct {
	Off, Len int64
}

// Advice is memory-usage advice for a span of a mapping (madvise(2)).
type Advice int

const (
	// AdviseNormal restores the default readahead behaviour.
	AdviseNormal Advice = iota
	// AdviseRandom expects random access: disables readahead, so a
	// point-lookup faults one page instead of a cluster.
	AdviseRandom
	// AdviseWillNeed asks the kernel to start faulting the span in now —
	// the prefetch for sections the warm path will touch.
	AdviseWillNeed
)

// Advise applies access advice to a span of the mapping. Out-of-range or
// zero spans and platforms without madvise are no-ops: advice is a
// performance hint, never a correctness requirement.
func (m *Mapping) Advise(r Range, a Advice) error {
	if m == nil || m.data == nil || r.Len <= 0 || r.Off < 0 || r.Off+r.Len > int64(len(m.data)) {
		return nil
	}
	// madvise wants page-aligned addresses; widen to page boundaries
	// (advice on neighbouring bytes of a shared page is harmless).
	page := int64(os.Getpagesize())
	lo := r.Off &^ (page - 1)
	hi := r.Off + r.Len
	if rem := hi % page; rem != 0 && hi+page-rem <= int64(len(m.data)) {
		hi += page - rem
	}
	return adviseRange(m.data[lo:hi], a)
}

// Trim releases every whole page of the mapping that no kept range
// touches, shrinking the process's file-backed footprint to
// (page-rounded) keep spans. Trimmed ranges are replaced in place with
// PROT_NONE anonymous reservations — the address space stays owned by
// the mapping (so Release's whole-range munmap can never hit a foreign
// mapping that moved into a hole), but the pages are gone: reading a
// trimmed hole faults. Use it when a file is mapped for a reader that
// provably touches only a subset of its sections — e.g. a shard worker
// that takes the matrix and component table from a manifest but gets its
// node rows from a sliced shard file. Off Linux (and on the no-mmap
// fallback) the call is a no-op reporting 0. Returns the number of bytes
// released.
// TrimSupported reports whether Trim can actually release pages on this
// platform (Linux with a real mapping); elsewhere Trim is a no-op.
func TrimSupported() bool { return canPunch }

func (m *Mapping) Trim(keep []Range) int64 {
	if m == nil || m.data == nil || !canPunch {
		return 0
	}
	page := int64(os.Getpagesize())
	size := int64(len(m.data))
	// Normalise: clamp, drop empties, sort, and round each kept span OUT
	// to page boundaries (a partially-kept page must survive).
	spans := make([]Range, 0, len(keep))
	for _, r := range keep {
		if r.Len <= 0 {
			continue
		}
		lo := max(r.Off, 0) &^ (page - 1)
		hi := r.Off + r.Len
		hi = min((hi+page-1)&^(page-1), size)
		if lo < hi {
			spans = append(spans, Range{Off: lo, Len: hi - lo})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Off < spans[j].Off })
	var trimmed int64
	cursor := int64(0)
	punchGap := func(lo, hi int64) {
		// Only whole pages between kept spans are unmapped; the trailing
		// partial page of the file stays (munmap length rounds up past the
		// mapping otherwise).
		hi = hi &^ (page - 1)
		if hi <= lo {
			return
		}
		if punchRange(m.data[lo:hi]) == nil {
			trimmed += hi - lo
		}
	}
	for _, s := range spans {
		if s.Off > cursor {
			punchGap(cursor, s.Off)
		}
		if end := s.Off + s.Len; end > cursor {
			cursor = end
		}
	}
	if cursor < size {
		punchGap(cursor, size)
	}
	m.trimmed += trimmed
	return trimmed
}

// Release drops one reference and unmaps the file when it was the last.
// Releasing more times than retaining panics: it would mean some holder
// can still read pages that are about to vanish.
func (m *Mapping) Release() error {
	if m == nil {
		return nil
	}
	n := m.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("mman: Release without a matching reference")
	}
	data := m.data
	m.data = nil
	if data == nil {
		return nil
	}
	return unmapFile(data)
}
