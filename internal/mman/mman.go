// Package mman owns the memory-mapped file handles behind zero-copy
// snapshot loading. A Mapping is a read-only byte view of a whole file
// obtained from mmap(2); higher layers reinterpret aligned spans of it as
// typed slices and therefore must keep the Mapping alive for as long as
// any such slice may be read.
//
// Lifetime is reference-counted, not GC-driven: the opener holds the
// first reference, every long-lived structure built over the bytes takes
// its own via Retain, and the pages are unmapped exactly when the last
// holder calls Release. This is what lets a serving process hot-swap
// instances: the old snapshot's mapping stays valid while in-flight
// searches still read it and disappears deterministically when the last
// one finishes — even if the file has been unlinked or rewritten on disk
// in the meantime (the mapping pins the old inode).
package mman

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Mapping is a read-only memory-mapped file. Use Open, share with Retain,
// drop with Release.
type Mapping struct {
	data []byte
	path string
	// refs counts live holders; the pages are unmapped when it reaches
	// zero. A zero or negative count means the mapping is dead.
	refs atomic.Int64
}

// Open maps the whole file read-only and returns a Mapping holding one
// reference. On platforms without mmap support the file is read into
// private memory instead; the Mapping API is identical either way.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mman: %s: %d bytes exceed the address space", path, size)
	}
	data, err := mapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("mman: mapping %s: %w", path, err)
	}
	m := &Mapping{data: data, path: path}
	m.refs.Store(1)
	return m, nil
}

// Data returns the mapped bytes. The slice (and anything reinterpreted
// from it) is valid only while the caller holds a reference.
func (m *Mapping) Data() []byte { return m.data }

// Size returns the mapped length in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Path returns the file path the mapping was opened from (diagnostics;
// the file may have been unlinked or replaced since).
func (m *Mapping) Path() string { return m.path }

// Retain adds a reference. It must be called while at least one
// reference is still held (a dead mapping cannot be revived).
func (m *Mapping) Retain() {
	if m == nil {
		return
	}
	if m.refs.Add(1) <= 1 {
		panic("mman: Retain on a released mapping")
	}
}

// Release drops one reference and unmaps the file when it was the last.
// Releasing more times than retaining panics: it would mean some holder
// can still read pages that are about to vanish.
func (m *Mapping) Release() error {
	if m == nil {
		return nil
	}
	n := m.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("mman: Release without a matching reference")
	}
	data := m.data
	m.data = nil
	if data == nil {
		return nil
	}
	return unmapFile(data)
}
