//go:build unix

package mman

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, so replicas serving
// the same snapshot on one host share physical pages through the page
// cache. A zero-length file maps to nil (mmap rejects length 0).
func mapFile(f *os.File, size int) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
