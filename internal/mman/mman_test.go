package mman

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	content := bytes.Repeat([]byte("s3 mapped bytes "), 1024)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), content) {
		t.Error("mapped bytes differ from file content")
	}
	if m.Size() != int64(len(content)) {
		t.Errorf("Size() = %d, want %d", m.Size(), len(content))
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRefcountLifetime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("refcounted"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Retain()
	// Unlinking must not invalidate the mapping: the inode stays pinned.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	// One reference left: the data must still be readable.
	if string(m.Data()) != "refcounted" {
		t.Error("data unreadable after unlink with a live reference")
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	// Over-releasing and reviving are programming errors.
	for name, f := range map[string]func(){
		"release after death": func() { m.Release() },
		"retain after death":  func() { m.Retain() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || len(m.Data()) != 0 {
		t.Errorf("empty file mapped to %d bytes", m.Size())
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimReleasesUnkeptPages(t *testing.T) {
	if !TrimSupported() {
		t.Skip("Trim is a no-op on this platform")
	}
	page := int64(os.Getpagesize())
	// Six pages: keep the first and the fifth, trim the rest.
	data := make([]byte, 6*page)
	for i := range data {
		data[i] = byte(i)
	}
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	keep := []Range{{Off: 0, Len: page}, {Off: 4 * page, Len: page}}
	trimmed := m.Trim(keep)
	if trimmed != 4*page {
		t.Fatalf("trimmed %d bytes, want %d", trimmed, 4*page)
	}
	if m.Size() != 2*page {
		t.Fatalf("Size() = %d after trim, want %d", m.Size(), 2*page)
	}
	// Kept ranges stay readable with their file content.
	for _, r := range keep {
		for off := r.Off; off < r.Off+r.Len; off += 37 {
			if m.Data()[off] != byte(off) {
				t.Fatalf("kept byte %d = %d, want %d", off, m.Data()[off], byte(off))
			}
		}
	}
	// The trimmed ranges must still belong to this mapping (PROT_NONE
	// reservations), so a full-range Release is safe — and anything the
	// process maps afterwards cannot have landed inside the holes.
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}
