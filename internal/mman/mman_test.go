package mman

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	content := bytes.Repeat([]byte("s3 mapped bytes "), 1024)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), content) {
		t.Error("mapped bytes differ from file content")
	}
	if m.Size() != int64(len(content)) {
		t.Errorf("Size() = %d, want %d", m.Size(), len(content))
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRefcountLifetime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("refcounted"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Retain()
	// Unlinking must not invalidate the mapping: the inode stays pinned.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	// One reference left: the data must still be readable.
	if string(m.Data()) != "refcounted" {
		t.Error("data unreadable after unlink with a live reference")
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	// Over-releasing and reviving are programming errors.
	for name, f := range map[string]func(){
		"release after death": func() { m.Release() },
		"retain after death":  func() { m.Retain() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestOpenEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 0 || len(m.Data()) != 0 {
		t.Errorf("empty file mapped to %d bytes", m.Size())
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}
