//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package mman

// adviseRange is a no-op where madvise(2) is unavailable: advice is a
// performance hint, never a correctness requirement.
func adviseRange([]byte, Advice) error { return nil }
