package proxcache

import (
	"math/rand"
	"sync"
	"testing"

	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/score"
	"s3/internal/text"
)

func buildInstance(t *testing.T, seed int64) *graph.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// checkpointAt explores seeker to the given depth and returns the frontier.
func checkpointAt(in *graph.Instance, seeker graph.NID, depth int) *score.ProxCheckpoint {
	it := score.NewRecordingIterator(in, score.DefaultParams(), seeker)
	for d := 0; d < depth && !it.Done(); d++ {
		it.Step()
	}
	return it.Checkpoint()
}

func TestDeepenOnlyReplacement(t *testing.T) {
	in := buildInstance(t, 1)
	u := in.Users()[0]
	k := Key{Seeker: u, Params: score.DefaultParams()}
	c := New(1 << 20)

	deep := checkpointAt(in, u, 4)
	shallow := checkpointAt(in, u, 2)

	c.Put(k, deep)
	c.Put(k, shallow) // must not downgrade
	if got := c.Get(k, in); got == nil || got.N() != 4 {
		t.Fatalf("shallower checkpoint overwrote deeper one: %v", got)
	}
	c.Put(k, checkpointAt(in, u, 6))
	if got := c.Get(k, in); got == nil || got.N() != 6 {
		t.Fatalf("deeper checkpoint rejected: %v", got)
	}
	st := c.Stats()
	if st.Stores != 2 || st.Rejected != 1 {
		t.Fatalf("stores=%d rejected=%d, want 2/1", st.Stores, st.Rejected)
	}
	if st.Entries != 1 {
		t.Fatalf("entries=%d, want 1", st.Entries)
	}
	if st.Bytes != c.Get(k, in).Bytes() {
		t.Fatalf("bytes=%d does not track the stored checkpoint", st.Bytes)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	in := buildInstance(t, 2)
	users := in.Users()
	if len(users) < 3 {
		t.Skip("need 3 users")
	}
	cps := make([]*score.ProxCheckpoint, 3)
	keys := make([]Key, 3)
	for i := 0; i < 3; i++ {
		cps[i] = checkpointAt(in, users[i], 3)
		keys[i] = Key{Seeker: users[i], Params: score.DefaultParams()}
	}
	// Budget for roughly two of the three checkpoints.
	budget := cps[0].Bytes() + cps[1].Bytes() + cps[2].Bytes()/2
	c := New(budget)
	c.Put(keys[0], cps[0])
	c.Put(keys[1], cps[1])
	c.Get(keys[0], in) // promote 0; 1 becomes LRU
	c.Put(keys[2], cps[2])

	if got := c.Get(keys[1], in); got != nil {
		t.Fatal("LRU entry survived over-budget insertion")
	}
	if c.Get(keys[0], in) == nil || c.Get(keys[2], in) == nil {
		t.Fatal("wrong entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
	if st.Bytes > budget {
		t.Fatalf("bytes=%d over budget %d", st.Bytes, budget)
	}

	// An entry bigger than the whole budget is rejected outright.
	tiny := New(16)
	tiny.Put(keys[0], cps[0])
	if tiny.Get(keys[0], in) != nil {
		t.Fatal("oversized checkpoint accepted")
	}
	if s := tiny.Stats(); s.Rejected != 1 || s.Entries != 0 {
		t.Fatalf("rejected=%d entries=%d, want 1/0", s.Rejected, s.Entries)
	}

	// A non-positive budget stores nothing but still serves lookups.
	off := New(0)
	off.Put(keys[0], cps[0])
	if off.Get(keys[0], in) != nil {
		t.Fatal("zero-budget cache stored an entry")
	}
}

func TestStaleInstanceSelfHeals(t *testing.T) {
	in1 := buildInstance(t, 3)
	in2 := buildInstance(t, 3) // same shape, different generation
	u := in1.Users()[0]
	k := Key{Seeker: u, Params: score.DefaultParams()}
	c := New(1 << 20)
	c.Put(k, checkpointAt(in1, u, 3))

	// Looking the key up for the new generation drops the stale entry.
	if got := c.Get(k, in2); got != nil {
		t.Fatal("stale checkpoint returned for a different instance")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entry retained: entries=%d bytes=%d", st.Entries, st.Bytes)
	}
	// And a new-generation publication replaces it regardless of depth.
	c.Put(k, checkpointAt(in1, u, 5))
	c.Put(k, checkpointAt(in2, u, 2))
	if got := c.Get(k, in2); got == nil || got.N() != 2 {
		t.Fatalf("new-generation checkpoint not installed: %v", got)
	}
}

// TestBindRejectsStalePublications: once bound to an instance generation,
// the cache drops checkpoints recorded over any other — a search still in
// flight across a hot reload cannot pin the outgoing instance.
func TestBindRejectsStalePublications(t *testing.T) {
	in1 := buildInstance(t, 6)
	in2 := buildInstance(t, 6)
	u := in1.Users()[0]
	k := Key{Seeker: u, Params: score.DefaultParams()}
	c := New(1 << 20)
	c.Bind(in2)
	c.Put(k, checkpointAt(in1, u, 3)) // stale generation: dropped
	if st := c.Stats(); st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("stale publication accepted: %+v", st)
	}
	c.Put(k, checkpointAt(in2, u, 3))
	if c.Get(k, in2) == nil {
		t.Fatal("bound-generation publication rejected")
	}
	c.Bind(nil) // unbound: anything goes again
	c.Put(Key{Seeker: in1.Users()[1], Params: score.DefaultParams()}, checkpointAt(in1, in1.Users()[1], 2))
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("unbound cache rejected a publication: %+v", st)
	}
}

func TestPurgeAndCounters(t *testing.T) {
	in := buildInstance(t, 4)
	u := in.Users()[0]
	k := Key{Seeker: u, Params: score.DefaultParams()}
	c := New(1 << 20)
	if c.Get(k, in) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, checkpointAt(in, u, 3))
	if c.Get(k, in) == nil {
		t.Fatal("miss after put")
	}
	c.Purge()
	if c.Get(k, in) != nil {
		t.Fatal("hit after purge")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2", st.Hits, st.Misses)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("purge left entries=%d bytes=%d", st.Entries, st.Bytes)
	}
}

// TestConcurrentAccess hammers the cache from many goroutines (meaningful
// under -race).
func TestConcurrentAccess(t *testing.T) {
	in := buildInstance(t, 5)
	users := in.Users()
	cps := make([]*score.ProxCheckpoint, len(users))
	for i, u := range users {
		cps[i] = checkpointAt(in, u, 1+i%4)
	}
	c := New(8 << 10) // small enough to force constant eviction
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := users[(w+i)%len(users)]
				k := Key{Seeker: u, Params: score.DefaultParams()}
				if cp := c.Get(k, in); cp != nil {
					_ = cp.N()
				}
				c.Put(k, cps[(w+i)%len(users)])
				if i%50 == 0 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
}
