// Package proxcache caches seeker-proximity checkpoints across searches.
//
// The §5.2 borderProx exploration is the dominant serial cost of
// candidate-heavy queries, and real social-search workloads are heavily
// seeker-skewed: the same user issues many queries in a row. A Cache maps
// (seeker, damping params) to the deepest recorded exploration frontier
// (score.ProxCheckpoint) seen so far, so a repeated-seeker search replays
// the recorded layers instead of re-propagating the matrix from depth 0 —
// with answers bit-identical to the cold path, because replay performs the
// exact floating-point operations of a fresh exploration.
//
// Checkpoints are large (the recorded layers sum to O(reached nodes) per
// depth), so the cache budget is in bytes, not entries, and eviction is
// LRU by memory. Replacement is deepen-only: a shallower checkpoint never
// overwrites a deeper one for the same key, so concurrent searches racing
// to publish can only improve the cache. Entries recorded over a stale
// instance generation (after a hot reload) are detected on lookup and
// dropped — the instance pointer is part of checkpoint identity.
package proxcache

import (
	"container/list"
	"sync"

	"s3/internal/graph"
	"s3/internal/score"
)

// Key identifies one cached exploration: the seeker and the damping
// parameters (different γ explore the graph with different numbers, so
// they cannot share frontiers).
type Key struct {
	Seeker graph.NID
	Params score.Params
}

// Cache is a concurrency-safe, byte-budgeted LRU of proximity
// checkpoints. The zero value is not usable; create with New.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used
	items    map[Key]*list.Element

	// bound, when non-nil, is the only instance whose checkpoints Put
	// accepts: it stops searches still in flight across a hot reload from
	// re-populating the cache with entries that would pin the outgoing
	// instance in memory.
	bound *graph.Instance

	hits, misses, evictions, stores, rejected uint64
}

type entry struct {
	key Key
	cp  *score.ProxCheckpoint
}

// New returns a cache holding at most maxBytes of checkpoint state. A
// non-positive budget yields a cache that stores nothing (every Put is
// rejected) but still serves — and counts — lookups.
func New(maxBytes int64) *Cache {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Bind restricts Put to checkpoints recorded over the given instance
// (nil lifts the restriction). Serving layers bind the cache to each
// newly installed instance generation, so a search that was still
// running against the previous generation cannot publish a stale — and
// instance-pinning — checkpoint after the purge.
func (c *Cache) Bind(in *graph.Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bound = in
}

// Get returns the deepest checkpoint cached for the key, or nil. The
// instance pointer guards against stale entries: a checkpoint recorded
// over a different instance generation is removed and reported as a miss.
func (c *Cache) Get(k Key, in *graph.Instance) *score.ProxCheckpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		if e.cp.For(in) {
			c.hits++
			c.order.MoveToFront(el)
			return e.cp
		}
		c.removeLocked(el)
	}
	c.misses++
	return nil
}

// Put offers a checkpoint to the cache. It is kept only if it supersedes
// the cached entry for its key (deepen-only; stale-instance entries are
// always superseded) and fits the byte budget; insertion evicts
// least-recently-used entries until the budget holds again.
func (c *Cache) Put(k Key, cp *score.ProxCheckpoint) {
	if cp == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bound != nil && !cp.For(c.bound) {
		c.rejected++
		return
	}
	if cp.Bytes() > c.maxBytes {
		c.rejected++
		return
	}
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		if !cp.Supersedes(e.cp) {
			c.rejected++
			return
		}
		c.bytes += cp.Bytes() - e.cp.Bytes()
		e.cp = cp
		c.order.MoveToFront(el)
	} else {
		c.items[k] = c.order.PushFront(&entry{key: k, cp: cp})
		c.bytes += cp.Bytes()
	}
	c.stores++
	for c.bytes > c.maxBytes {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.cp.Bytes()
}

// Purge drops every entry (a hot reload invalidates all checkpoints) but
// keeps the lifetime counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
	c.bytes = 0
}

// Stats is a point-in-time snapshot of the cache's counters and size.
type Stats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Stores counts accepted Puts (insertions and deepenings); Rejected
	// counts Puts dropped by the deepen-only rule or the byte budget.
	Stores   uint64
	Rejected uint64
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Stores:    c.stores,
		Rejected:  c.rejected,
	}
}
