// Deferred integrity verification: checksum-on-fault for large mappings.
//
// The v3 aligned container validates its header and section table on
// every open (cheap: a few KB), but the per-section payload CRC-32C pass
// is memory-bandwidth bound over the whole file — on a large mapping it
// IS the cold-start cost. VerifyLazy moves that pass off the open path
// into a background collector: the open returns as soon as the tables
// parse, the first searches overlap the verification pass, and a
// corruption verdict surfaces through VerifyErr/WaitVerify (a worker
// flips unhealthy and refuses new sessions). VerifyEager keeps the
// original synchronous pass and remains the default for every
// non-worker open path.
package snap

import (
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
)

// VerifyMode selects when aligned-section payloads are checksummed.
type VerifyMode int

const (
	// VerifyEager checksums every kept section payload during the open
	// (the original behaviour): corruption fails the open itself.
	VerifyEager VerifyMode = iota
	// VerifyLazy defers the payload pass to a background collector,
	// cutting time-to-first-search on large mappings. Header and section
	// tables are still validated at open.
	VerifyLazy
)

// DeferredVerify collects integrity checks deferred off an open path.
// Checks run in background goroutines; the first failure sticks.
type DeferredVerify struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	open atomic.Int64 // checks still running
}

// spawn runs one deferred check in the background.
func (d *DeferredVerify) spawn(f func() error) {
	d.wg.Add(1)
	d.open.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.open.Add(-1)
		if err := f(); err != nil {
			d.mu.Lock()
			if d.err == nil {
				d.err = err
			}
			d.mu.Unlock()
		}
	}()
}

// Wait blocks until every deferred check has completed and returns the
// first failure (nil when the file verified clean).
func (d *DeferredVerify) Wait() error {
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Err reports, without blocking, any failure found so far.
func (d *DeferredVerify) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Pending reports how many deferred checks are still running.
func (d *DeferredVerify) Pending() int { return int(d.open.Load()) }

// verifyAlignedSpans checksums the given section payloads of data in
// parallel: the pass is memory-bandwidth bound, so spreading it over
// cores directly shortens whoever is waiting on it (the open under
// VerifyEager, the background collector under VerifyLazy).
func verifyAlignedSpans(data []byte, spans []secSpan, what string) error {
	var bad atomic.Int32
	bad.Store(-1)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(spans) {
		workers = len(spans)
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				sp := spans[i]
				if uint64(crc32.Checksum(data[sp.off:sp.off+sp.len], castagnoli)) != sp.sum {
					bad.Store(int32(sp.id))
				}
			}
		}()
	}
	wg.Wait()
	if id := bad.Load(); id >= 0 {
		return fmt.Errorf("snap: section %d of %s fails its checksum", id, what)
	}
	return nil
}
