// Path-based snapshot opening with a load mode: the seam between the
// on-disk formats and the two ways of getting an instance into memory.
//
// LoadCopy builds a fully private, GC-owned instance — hash-map
// dictionary, indexed ontology, materialised strings — by decoding the
// file (either version). It is portable, needs nothing kept open, and the
// file can be rewritten or unlinked freely afterwards.
//
// LoadMmap maps the file and builds the instance as typed views into the
// mapping: slices point at the page cache, lookups go through the stored
// binary-search structures, and open time is dominated by the per-section
// checksum pass plus allocation-free validation scans. The returned
// Mapping owns the pages; whoever holds the instance must hold a mapping
// reference and Release it when the instance is retired. Version-1 files
// and non-mappable platforms fall back to LoadCopy transparently (the
// result reports the mode that actually happened).
package snap

import (
	"fmt"
	"os"
	"path/filepath"

	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/mman"
)

// LoadMode selects how a snapshot file becomes an instance.
type LoadMode int

const (
	// LoadCopy decodes into private memory (the writer-compatible
	// default).
	LoadCopy LoadMode = iota
	// LoadMmap maps the file and serves queries from zero-copy views.
	LoadMmap
)

func (m LoadMode) String() string {
	if m == LoadMmap {
		return "mmap"
	}
	return "copy"
}

// Snapshot is an opened snapshot: the instance, its index, and — in
// mapped mode — the mapping that owns their backing pages.
type Snapshot struct {
	Instance *graph.Instance
	Index    *index.Index
	// Mapping is non-nil exactly when Mode is LoadMmap; the holder of the
	// snapshot owns one reference and must Release it when done.
	Mapping *mman.Mapping
	// Mode is the load mode that actually happened (LoadMmap requests
	// fall back to LoadCopy for version-1 files and on platforms whose
	// struct layout cannot alias the on-disk encoding).
	Mode LoadMode
}

// MappedBytes returns the size of the backing mapping, 0 for a copied
// snapshot.
func (s *Snapshot) MappedBytes() int64 {
	if s.Mapping == nil {
		return 0
	}
	return s.Mapping.Size()
}

// Close releases the mapping reference held by the snapshot (a no-op for
// copied snapshots). The instance and index must not be used afterwards.
func (s *Snapshot) Close() error {
	m := s.Mapping
	s.Mapping = nil
	return m.Release()
}

// ShardSetSnapshot is an opened shard set: the fully validated set plus
// the mappings (manifest first, then shards in layout order) that own the
// backing pages of whatever was mapped.
type ShardSetSnapshot struct {
	Set *ShardSet
	// Mappings holds one entry per mapped file; files that fell back to
	// the copying decoder contribute nothing.
	Mappings []*mman.Mapping
	// Mode is LoadMmap when at least one file is mapped.
	Mode LoadMode
}

// MappedBytes sums the sizes of the backing mappings.
func (s *ShardSetSnapshot) MappedBytes() int64 {
	var total int64
	for _, m := range s.Mappings {
		total += m.Size()
	}
	return total
}

// Close releases every mapping reference held by the shard set.
func (s *ShardSetSnapshot) Close() error {
	var first error
	for _, m := range s.Mappings {
		if err := m.Release(); err != nil && first == nil {
			first = err
		}
	}
	s.Mappings = nil
	return first
}

// OpenShardSet loads a shard set from disk in the requested mode: the
// manifest at manifestPath plus the shard files it names (resolved in the
// manifest's directory), fully validated. In LoadMmap mode each file is
// mapped independently; legacy files fall back to copying per file.
func OpenShardSet(manifestPath string, mode LoadMode) (*ShardSetSnapshot, error) {
	out := &ShardSetSnapshot{Set: &ShardSet{}}
	// loadFile maps or reads one file, appending any mapping to out;
	// zeroCopy reports whether the returned bytes outlive the call.
	loadFile := func(path string, magic string) (data []byte, zeroCopy bool, err error) {
		if mode != LoadMmap {
			data, err = os.ReadFile(path)
			return data, false, err
		}
		m, err := mman.Open(path)
		if err != nil {
			return nil, false, err
		}
		ver, err := fileVersion(m.Data(), magic)
		if err == nil && ver == VersionAligned && layoutMappable() {
			out.Mappings = append(out.Mappings, m)
			out.Mode = LoadMmap
			return m.Data(), true, nil
		}
		// Nothing mappable in this file: decode a private copy and drop
		// the mapping (a bad magic surfaces as a decode error below).
		data = append([]byte(nil), m.Data()...)
		m.Release()
		return data, false, nil
	}
	fail := func(err error) (*ShardSetSnapshot, error) {
		out.Close()
		return nil, err
	}

	mdata, mz, err := loadFile(manifestPath, ManifestMagic)
	if err != nil {
		return fail(err)
	}
	base, layout, err := decodeManifest(mdata, mz)
	if err != nil {
		return fail(err)
	}
	out.Set.Base, out.Set.Layout = base, layout
	dir := filepath.Dir(manifestPath)
	for i, desc := range layout.Shards {
		sdata, sz, err := loadFile(filepath.Join(dir, desc.Name), ShardMagic)
		if err != nil {
			return fail(fmt.Errorf("snap: opening shard %d: %w", i, err))
		}
		proj, ix, err := decodeShard(sdata, base, layout, i, sz)
		if err != nil {
			return fail(err)
		}
		out.Set.Shards = append(out.Set.Shards, proj)
		out.Set.Indexes = append(out.Set.Indexes, ix)
	}
	return out, nil
}

// Open loads a snapshot file in the requested mode.
func Open(path string, mode LoadMode) (*Snapshot, error) {
	if mode != LoadMmap {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		in, ix, err := decodeSnapshot(data, false)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Instance: in, Index: ix, Mode: LoadCopy}, nil
	}
	m, err := mman.Open(path)
	if err != nil {
		return nil, err
	}
	ver, err := fileVersion(m.Data(), Magic)
	if err != nil {
		m.Release()
		return nil, fmt.Errorf("snap: not a snapshot (bad magic)")
	}
	if ver != VersionAligned || !layoutMappable() {
		// Nothing to map: decode out of the mapping, then drop it.
		in, ix, err := decodeSnapshot(m.Data(), false)
		m.Release()
		if err != nil {
			return nil, err
		}
		return &Snapshot{Instance: in, Index: ix, Mode: LoadCopy}, nil
	}
	in, ix, err := decodeSnapshot(m.Data(), true)
	if err != nil {
		m.Release()
		return nil, err
	}
	return &Snapshot{Instance: in, Index: ix, Mapping: m, Mode: LoadMmap}, nil
}
