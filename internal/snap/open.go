// Path-based snapshot opening with a load mode: the seam between the
// on-disk formats and the two ways of getting an instance into memory.
//
// LoadCopy builds a fully private, GC-owned instance — hash-map
// dictionary, indexed ontology, materialised strings — by decoding the
// file (either version). It is portable, needs nothing kept open, and the
// file can be rewritten or unlinked freely afterwards.
//
// LoadMmap maps the file and builds the instance as typed views into the
// mapping: slices point at the page cache, lookups go through the stored
// binary-search structures, and open time is dominated by the per-section
// checksum pass plus allocation-free validation scans. The returned
// Mapping owns the pages; whoever holds the instance must hold a mapping
// reference and Release it when the instance is retired. Version-1 files
// and non-mappable platforms fall back to LoadCopy transparently (the
// result reports the mode that actually happened).
package snap

import (
	"fmt"
	"os"
	"path/filepath"

	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/mman"
)

// LoadMode selects how a snapshot file becomes an instance.
type LoadMode int

const (
	// LoadCopy decodes into private memory (the writer-compatible
	// default).
	LoadCopy LoadMode = iota
	// LoadMmap maps the file and serves queries from zero-copy views.
	LoadMmap
)

func (m LoadMode) String() string {
	if m == LoadMmap {
		return "mmap"
	}
	return "copy"
}

// Snapshot is an opened snapshot: the instance, its index, and — in
// mapped mode — the mapping that owns their backing pages.
type Snapshot struct {
	Instance *graph.Instance
	Index    *index.Index
	// Mapping is non-nil exactly when Mode is LoadMmap; the holder of the
	// snapshot owns one reference and must Release it when done.
	Mapping *mman.Mapping
	// Mode is the load mode that actually happened (LoadMmap requests
	// fall back to LoadCopy for version-1 files and on platforms whose
	// struct layout cannot alias the on-disk encoding).
	Mode LoadMode
}

// MappedBytes returns the size of the backing mapping, 0 for a copied
// snapshot.
func (s *Snapshot) MappedBytes() int64 {
	if s.Mapping == nil {
		return 0
	}
	return s.Mapping.Size()
}

// Close releases the mapping reference held by the snapshot (a no-op for
// copied snapshots). The instance and index must not be used afterwards.
func (s *Snapshot) Close() error {
	m := s.Mapping
	s.Mapping = nil
	return m.Release()
}

// ShardSetSnapshot is an opened shard set: the fully validated set plus
// the mappings (manifest first, then shards in layout order) that own the
// backing pages of whatever was mapped.
type ShardSetSnapshot struct {
	Set *ShardSet
	// Mappings holds one entry per mapped file; files that fell back to
	// the copying decoder contribute nothing.
	Mappings []*mman.Mapping
	// Mode is LoadMmap when at least one file is mapped.
	Mode LoadMode
}

// MappedBytes sums the sizes of the backing mappings.
func (s *ShardSetSnapshot) MappedBytes() int64 {
	var total int64
	for _, m := range s.Mappings {
		total += m.Size()
	}
	return total
}

// Close releases every mapping reference held by the shard set.
func (s *ShardSetSnapshot) Close() error {
	var first error
	for _, m := range s.Mappings {
		if err := m.Release(); err != nil && first == nil {
			first = err
		}
	}
	s.Mappings = nil
	return first
}

// sectionAdvice classifies a section for madvise: postings and matrix
// arrays are point-looked-up (per border node, per admitted component),
// so readahead around a fault is wasted bandwidth — MADV_RANDOM; the
// lookup structures every search walks (dictionary, node tables,
// offsets) are small and hot — MADV_WILLNEED prefetches them off the
// first queries' critical path. Everything else keeps the kernel
// default.
func sectionAdvice(id byte) mman.Advice {
	switch id {
	case sec3MatRowPtr, sec3MatCol, sec3MatVal, sec3IndexEvents, sec3IndexComps:
		return mman.AdviseRandom
	case sec3DictArena, sec3DictOffs, sec3DictPerm,
		sec3NodeKind, sec3NodeParent, sec3NodeDepth, sec3NodeDocOf, sec3NodeComp, sec3NIDByID,
		sec3IndexKw, sec3IndexEvOff, sec3IndexCompOff, sec3IndexCompIDs, sec3IndexMaxRun,
		sec3SliceNIDs, sec3SliceKind, sec3SliceParent, sec3SliceDepth, sec3SliceDocOf:
		return mman.AdviseWillNeed
	}
	return mman.AdviseNormal
}

// adviseMapped applies per-section access advice to a freshly mapped
// aligned file. Failures (and non-aligned files) are ignored: advice is
// a performance hint, never a correctness requirement.
func adviseMapped(m *mman.Mapping, magic, what string) {
	spans, _, err := parseAlignedTable(m.Data(), magic, what)
	if err != nil {
		return
	}
	for _, sp := range spans {
		if a := sectionAdvice(sp.id); a != mman.AdviseNormal {
			_ = m.Advise(mman.Range{Off: sp.off, Len: sp.len}, a)
		}
	}
}

// OpenShardSet loads a shard set from disk in the requested mode: the
// manifest at manifestPath plus the shard files it names (resolved in the
// manifest's directory), fully validated. In LoadMmap mode each file is
// mapped independently; legacy files fall back to copying per file.
func OpenShardSet(manifestPath string, mode LoadMode) (*ShardSetSnapshot, error) {
	out := &ShardSetSnapshot{Set: &ShardSet{}}
	// loadFile maps or reads one file, appending any mapping to out;
	// zeroCopy reports whether the returned bytes outlive the call.
	loadFile := func(path string, magic string) (data []byte, zeroCopy bool, err error) {
		if mode != LoadMmap {
			data, err = os.ReadFile(path)
			return data, false, err
		}
		m, err := mman.Open(path)
		if err != nil {
			return nil, false, err
		}
		ver, err := fileVersion(m.Data(), magic)
		if err == nil && ver == VersionAligned && layoutMappable() {
			out.Mappings = append(out.Mappings, m)
			out.Mode = LoadMmap
			adviseMapped(m, magic, "shard-set file")
			return m.Data(), true, nil
		}
		// Nothing mappable in this file: decode a private copy and drop
		// the mapping (a bad magic surfaces as a decode error below).
		data = append([]byte(nil), m.Data()...)
		m.Release()
		return data, false, nil
	}
	fail := func(err error) (*ShardSetSnapshot, error) {
		out.Close()
		return nil, err
	}

	mdata, mz, err := loadFile(manifestPath, ManifestMagic)
	if err != nil {
		return fail(err)
	}
	base, layout, err := decodeManifest(mdata, mz)
	if err != nil {
		return fail(err)
	}
	out.Set.Base, out.Set.Layout = base, layout
	dir := filepath.Dir(manifestPath)
	for i, desc := range layout.Shards {
		sdata, sz, err := loadFile(filepath.Join(dir, desc.Name), ShardMagic)
		if err != nil {
			return fail(fmt.Errorf("snap: opening shard %d: %w", i, err))
		}
		proj, ix, err := decodeShard(sdata, base, layout, i, sz)
		if err != nil {
			return fail(err)
		}
		out.Set.Shards = append(out.Set.Shards, proj)
		out.Set.Indexes = append(out.Set.Indexes, ix)
	}
	return out, nil
}

// ManifestSnapshot is an opened shard-set manifest without its shard
// files: the shared base instance and the layout — what a scatter/gather
// coordinator needs (seeker resolution, keyword groups, URI mapping,
// shard table) without loading any index slice.
type ManifestSnapshot struct {
	Base   *graph.Instance
	Layout *Layout
	// Mapping is non-nil exactly when the manifest stayed mapped.
	Mapping *mman.Mapping
	Mode    LoadMode
}

// MappedBytes returns the size of the backing mapping, 0 when copied.
func (s *ManifestSnapshot) MappedBytes() int64 {
	if s.Mapping == nil {
		return 0
	}
	return s.Mapping.Size()
}

// Close releases the mapping reference held by the manifest snapshot.
func (s *ManifestSnapshot) Close() error {
	m := s.Mapping
	s.Mapping = nil
	return m.Release()
}

// OpenManifest loads a shard-set manifest alone, in the requested mode.
func OpenManifest(path string, mode LoadMode) (*ManifestSnapshot, error) {
	if mode != LoadMmap {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		base, layout, err := decodeManifest(data, false)
		if err != nil {
			return nil, err
		}
		return &ManifestSnapshot{Base: base, Layout: layout, Mode: LoadCopy}, nil
	}
	m, err := mman.Open(path)
	if err != nil {
		return nil, err
	}
	ver, err := fileVersion(m.Data(), ManifestMagic)
	if err != nil {
		m.Release()
		return nil, fmt.Errorf("snap: not a shard-set manifest (bad magic)")
	}
	if ver != VersionAligned || !layoutMappable() {
		base, layout, derr := decodeManifest(m.Data(), false)
		m.Release()
		if derr != nil {
			return nil, derr
		}
		return &ManifestSnapshot{Base: base, Layout: layout, Mode: LoadCopy}, nil
	}
	base, layout, err := decodeManifest(m.Data(), true)
	if err != nil {
		m.Release()
		return nil, err
	}
	adviseMapped(m, ManifestMagic, "shard-set manifest")
	return &ManifestSnapshot{Base: base, Layout: layout, Mapping: m, Mode: LoadMmap}, nil
}

// Open loads a snapshot file in the requested mode.
func Open(path string, mode LoadMode) (*Snapshot, error) {
	if mode != LoadMmap {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		in, ix, err := decodeSnapshot(data, false)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Instance: in, Index: ix, Mode: LoadCopy}, nil
	}
	m, err := mman.Open(path)
	if err != nil {
		return nil, err
	}
	ver, err := fileVersion(m.Data(), Magic)
	if err != nil {
		m.Release()
		return nil, fmt.Errorf("snap: not a snapshot (bad magic)")
	}
	if ver != VersionAligned || !layoutMappable() {
		// Nothing to map: decode out of the mapping, then drop it.
		in, ix, err := decodeSnapshot(m.Data(), false)
		m.Release()
		if err != nil {
			return nil, err
		}
		return &Snapshot{Instance: in, Index: ix, Mode: LoadCopy}, nil
	}
	in, ix, err := decodeSnapshot(m.Data(), true)
	if err != nil {
		m.Release()
		return nil, err
	}
	adviseMapped(m, Magic, "snapshot")
	return &Snapshot{Instance: in, Index: ix, Mapping: m, Mode: LoadMmap}, nil
}
