package snap

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/mman"
	"s3/internal/score"
	"s3/internal/text"
)

// writeSetFiles persists a freshly generated shard set to a temp dir and
// returns the manifest path plus the built instance and index.
func writeSetFiles(t testing.TB, users, tweets int, seed int64, n int) (string, *graph.Instance, *index.Index) {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = users, tweets, seed
	spec, _ := datagen.Twitter(o)
	in, ix := build(t, spec, text.Analyzer{Lang: text.None})
	parts, err := graph.PartitionComponents(in, n)
	if err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(t.TempDir(), "w.set")
	if _, err := WriteShardSetFiles(manifestPath, in, ix, parts); err != nil {
		t.Fatal(err)
	}
	return manifestPath, in, ix
}

func defaultParams() score.Params { return score.Params{Gamma: 1.5, Eta: 0.8} }

// layoutName is the conventional shard file name next to a manifest.
func layoutName(manifestPath string, i int) string {
	return fmt.Sprintf("%s.shard-%d", filepath.Base(manifestPath), i)
}

// workerQueries picks a battery of rare/mid/common keywords (single and
// conjunctive) plus a no-match query, for the first few users.
func workerQueries(in *graph.Instance) (seekers []graph.NID, kwSets [][]string) {
	kws := in.SortedKeywordsByFrequency()
	var picks []string
	for _, i := range []int{0, len(kws) / 2, len(kws) - 1} {
		if len(kws) > 0 {
			picks = append(picks, in.Dict().String(kws[i]))
		}
	}
	for _, kw := range picks {
		kwSets = append(kwSets, []string{kw})
	}
	if len(picks) >= 2 {
		kwSets = append(kwSets, []string{picks[1], picks[2]})
	}
	users := in.Users()
	for s := 0; s < len(users) && s < 3; s++ {
		seekers = append(seekers, users[s])
	}
	return seekers, kwSets
}

// workerTranscript runs one coordinated search over per-shard executors
// and renders the answer with exact float bits.
func workerTranscript(t *testing.T, execs []core.ShardExecutor, spec core.SearchSpec) string {
	t.Helper()
	sel, stats, err := core.Coordinate(execs, spec, core.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "reason=%s matched=%d admitted=%d cands=%d\n",
		stats.Reason, stats.ComponentsMatched, stats.ComponentsReached, stats.Candidates)
	for _, c := range sel {
		fmt.Fprintf(&b, "%d %x %x\n", c.Doc, math.Float64bits(c.Lower), math.Float64bits(c.Upper))
	}
	return b.String()
}

// TestOpenShardWorkerSliced is the slicing property test: for every
// shard, a worker opened over the sliced substrate must answer the
// coordinated round protocol byte-identically to workers over full
// component projections — and, in mapped mode, with measurably fewer
// mapped bytes than the full manifest.
func TestOpenShardWorkerSliced(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		manifestPath, in, _ := writeSetFiles(t, 60, 220, 7, n)

		full, err := OpenShardSet(manifestPath, LoadCopy)
		if err != nil {
			t.Fatal(err)
		}
		fullManifest, err := os.ReadFile(manifestPath)
		if err != nil {
			t.Fatal(err)
		}

		for _, mode := range []LoadMode{LoadCopy, LoadMmap} {
			workers := make([]*WorkerSnapshot, n)
			for i := 0; i < n; i++ {
				w, err := OpenShardWorker(manifestPath, i, mode)
				if err != nil {
					t.Fatalf("n=%d mode=%v shard %d: %v", n, mode, i, err)
				}
				defer w.Close()
				if !w.Sliced {
					t.Fatalf("n=%d mode=%v shard %d: expected sliced open", n, mode, i)
				}
				if !w.Instance.IsSliced() {
					t.Fatalf("n=%d mode=%v shard %d: instance not sliced", n, mode, i)
				}
				workers[i] = w
			}
			if mode == LoadMmap && workers[0].Mode == LoadMmap && mman.TrimSupported() {
				// The headline claim: a sliced worker maps measurably fewer
				// bytes than the unsliced open of the same shard (full
				// manifest + shard file) — at least the manifest's
				// dictionary, edge, ontology and entity sections are gone.
				shardFile, err := os.ReadFile(filepath.Join(filepath.Dir(manifestPath), layoutName(manifestPath, 0)))
				if err != nil {
					t.Fatal(err)
				}
				unsliced := int64(len(fullManifest) + len(shardFile))
				if mb := workers[0].MappedBytes(); mb >= unsliced*3/4 {
					t.Errorf("n=%d: sliced worker maps %d bytes, unsliced would map %d — not measurably lower", n, mb, unsliced)
				}
			}

			// Byte-identical rounds: coordinated search over sliced workers
			// vs over full projections, across a battery of queries.
			seekers, kwSets := workerQueries(in)
			for _, seeker := range seekers {
				for _, kws := range kwSets {
					groups, possible, err := core.ResolveKeywordGroups(in, kws)
					if err != nil || !possible {
						continue
					}
					spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: defaultParams(), Epsilon: 1e-12}
					fullExecs := make([]core.ShardExecutor, n)
					slicedExecs := make([]core.ShardExecutor, n)
					for i := 0; i < n; i++ {
						fullExecs[i] = core.NewShardExecutor(core.NewEngine(full.Set.Shards[i], full.Set.Indexes[i]), 0)
						slicedExecs[i] = core.NewShardExecutor(core.NewEngine(workers[i].Instance, workers[i].Index), 0)
					}
					want := workerTranscript(t, fullExecs, spec)
					got := workerTranscript(t, slicedExecs, spec)
					if got != want {
						t.Fatalf("n=%d mode=%v seeker=%d kws=%v: sliced answer diverged\nfull:\n%s\nsliced:\n%s", n, mode, seeker, kws, want, got)
					}
				}
			}
		}
		full.Close()
	}
}

// TestOpenShardWorkerUnslicedFallback reproduces a set written before the
// sliced sections existed: OpenShardWorker must fall back to the full
// manifest + projection and still answer identically.
func TestOpenShardWorkerUnslicedFallback(t *testing.T) {
	sliceShardTables = false
	defer func() { sliceShardTables = true }()
	manifestPath, in, _ := writeSetFiles(t, 40, 150, 11, 2)
	sliceShardTables = true
	slicedPath, _, _ := writeSetFiles(t, 40, 150, 11, 2)

	for _, mode := range []LoadMode{LoadCopy, LoadMmap} {
		for i := 0; i < 2; i++ {
			w, err := OpenShardWorker(manifestPath, i, mode)
			if err != nil {
				t.Fatalf("mode=%v shard %d: %v", mode, i, err)
			}
			if w.Sliced {
				t.Fatalf("mode=%v shard %d: unsliced set reported sliced", mode, i)
			}
			s, err := OpenShardWorker(slicedPath, i, mode)
			if err != nil {
				t.Fatal(err)
			}
			seekers, kwSets := workerQueries(in)
			for _, seeker := range seekers[:2] {
				for _, kws := range kwSets {
					groups, possible, err := core.ResolveKeywordGroups(in, kws)
					if err != nil || !possible {
						continue
					}
					spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: defaultParams(), Epsilon: 1e-12}
					want := workerTranscript(t, []core.ShardExecutor{core.NewShardExecutor(core.NewEngine(w.Instance, w.Index), 0)}, spec)
					got := workerTranscript(t, []core.ShardExecutor{core.NewShardExecutor(core.NewEngine(s.Instance, s.Index), 0)}, spec)
					if got != want {
						t.Fatalf("mode=%v shard %d: fallback answer diverged", mode, i)
					}
				}
			}
			w.Close()
			s.Close()
		}
	}
}

// TestOpenShardWorkerRejectsCorruption flips bytes through a sliced shard
// file and the manifest: every mutation must surface as an error on the
// worker open path, never a panic or a silently wrong instance.
func TestOpenShardWorkerRejectsCorruption(t *testing.T) {
	manifestPath, _, _ := writeSetFiles(t, 30, 110, 5, 2)
	dir := filepath.Dir(manifestPath)
	shardPath := filepath.Join(dir, filepath.Base(manifestPath)+".shard-0")
	manifest, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s: OpenShardWorker panicked: %v", name, r)
			}
		}()
		for _, mode := range []LoadMode{LoadCopy, LoadMmap} {
			if w, err := OpenShardWorker(manifestPath, 0, mode); err == nil {
				w.Close()
				t.Errorf("%s (mode=%v): corrupt file accepted", name, mode)
			}
		}
	}
	restore := func(path string, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Bit flips across the whole shard file (covers the sliced node-table
	// sections): the manifest digest must reject every one of them.
	for i := 8; i < len(shard); i += 37 {
		mut := bytes.Clone(shard)
		mut[i] ^= 0xff
		restore(shardPath, mut)
		check(fmt.Sprintf("shard byte %d", i))
	}
	restore(shardPath, shard)

	// Bit flips across the manifest. Flips inside payload sections the
	// sliced worker skips are legitimately invisible to it (it never reads
	// those bytes — their pages get trimmed away); flips in the header,
	// table or any substrate section it reads must be rejected. Either
	// way, the open must never panic.
	spans, tableEnd, err := parseAlignedTable(manifest, ManifestMagic, "manifest")
	if err != nil {
		t.Fatal(err)
	}
	read := func(pos int64) bool {
		if pos < tableEnd {
			return true
		}
		for _, sp := range spans {
			if pos >= sp.off && pos < sp.off+sp.len {
				for _, id := range manifestSubstrateSections {
					if sp.id == id {
						return true
					}
				}
				return false
			}
		}
		return false // padding gap: harmless
	}
	for i := 8; i < len(manifest); i += 101 {
		mut := bytes.Clone(manifest)
		mut[i] ^= 0xff
		restore(manifestPath, mut)
		if read(int64(i)) {
			check(fmt.Sprintf("manifest byte %d", i))
		} else {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("manifest byte %d: OpenShardWorker panicked: %v", i, r)
					}
				}()
				if w, err := OpenShardWorker(manifestPath, 0, LoadCopy); err == nil {
					w.Close()
				}
			}()
		}
	}
	restore(manifestPath, manifest)

	// Out-of-range shard ordinal.
	if w, err := OpenShardWorker(manifestPath, 9, LoadCopy); err == nil {
		w.Close()
		t.Error("out-of-range shard ordinal accepted")
	}
}
