// Version-3 snapshot sections: every heavy table of the instance as a
// fixed-width little-endian array in the aligned container (aligned.go),
// alongside the varint meta section. The encoding of each array equals
// the in-memory representation of its Go element type on little-endian
// machines (struct sections write explicit zero padding), which is what
// lets the mapped loader reinterpret a section as a typed slice with
// unsafe.Slice instead of decoding it.
//
// Beyond the v1 tables, v3 also stores the derived lookup structures a
// loader would otherwise have to rebuild: the dictionary's sorted
// permutation (binary-searched lookups over the string arena), the
// ontology's (S,P,O)- and (P,O,S)-sorted triple permutations (frozen RDF
// graph), the children lists in CSR form, the dense URI→node table, and
// the per-event component ids of the connection index. They are all
// cheap to validate and free to load.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/rdf"
)

// Section ids of the v3 format. Values are part of the on-disk format;
// never renumber. Ids below 32 are varint sections shared with v1 / the
// shard-set format; 32 and up are raw aligned arrays.
const (
	sec3DictArena    byte = 32 // []byte    string arena, entries concatenated in id order
	sec3DictOffs     byte = 33 // []int64   n+1 arena offsets
	sec3DictPerm     byte = 34 // []int32   ids in ascending string order
	sec3NodeDictID   byte = 35 // []dict.ID node URI ids
	sec3NodeKind     byte = 36 // []byte    node kinds
	sec3NodeParent   byte = 37 // []NID     tree parents (NoNID for roots)
	sec3NodeDepth    byte = 38 // []int32   tree depths
	sec3NodeDocOf    byte = 39 // []int32   document ordinals (-1 outside docs)
	sec3NodeName     byte = 40 // []dict.ID node names
	sec3NodeComp     byte = 41 // []int32   component ids
	sec3NodeKwOff    byte = 42 // []int64   n+1 offsets into the keyword list
	sec3NodeKwIDs    byte = 43 // []dict.ID flattened content keywords
	sec3EdgeOff      byte = 44 // []int64   n+1 offsets into the edge array
	sec3Edges        byte = 45 // []Edge    flattened out-edges (16 B each)
	sec3TotalW       byte = 46 // []float64 neighbourhood out-weights
	sec3MatRowPtr    byte = 47 // []int32   CSR row pointers (n+1)
	sec3MatCol       byte = 48 // []int32   CSR column indices
	sec3MatVal       byte = 49 // []float64 CSR values
	sec3Triples      byte = 50 // []Triple  saturated ontology (24 B each)
	sec3TripleSPO    byte = 51 // []int32   triples sorted by (S,P,O)
	sec3TriplePOS    byte = 52 // []int32   triples sorted by (P,O,S)
	sec3Users        byte = 53 // []NID     user nodes
	sec3DocRoots     byte = 54 // []NID     document roots
	sec3TagList      byte = 55 // []NID     tag nodes (ascending)
	sec3TagInfos     byte = 56 // []TagInfo aligned with the tag list (16 B each)
	sec3Comments     byte = 57 // []CommentEdge (12 B each)
	sec3Posts        byte = 58 // []PostEdge (8 B each)
	sec3KwFreqKeys   byte = 59 // []dict.ID frequency keywords (ascending)
	sec3KwFreqCount  byte = 60 // []int32   frequency counts
	sec3ChildOff     byte = 61 // []int64   n+1 offsets into the children list
	sec3ChildList    byte = 62 // []NID     flattened children (CSR)
	sec3NIDByID      byte = 63 // []NID     dictionary id → node (NoNID elsewhere)
	sec3IndexKw      byte = 64 // []dict.ID posting keywords (ascending)
	sec3IndexEvOff   byte = 65 // []int64   nkw+1 offsets into the event array
	sec3IndexEvents  byte = 66 // []Event   flattened events (12 B each)
	sec3IndexComps   byte = 67 // []int32   component id of each event's fragment
	sec3IndexCompOff byte = 68 // []int64   nkw+1 offsets into the component summary
	sec3IndexCompIDs byte = 69 // []int32   distinct components per posting, flattened
	sec3IndexMaxRun  byte = 70 // []int32   per posting: longest single-component event run

	// Sliced node tables of a shard file (optional; present in shard sets
	// written since the distributed-serving format revision): the rows of
	// the shard's own components' nodes, keyed by the sorted node list. A
	// worker process serving one shard maps these instead of the
	// manifest's full node tables, shrinking its per-process mapped bytes
	// to matrix + component table + its own rows.
	sec3SliceNIDs   byte = 71 // []NID     nodes of the shard's components, ascending
	sec3SliceKind   byte = 72 // []byte    parallel node kinds
	sec3SliceParent byte = 73 // []NID     parallel tree parents
	sec3SliceDepth  byte = 74 // []int32   parallel tree depths
	sec3SliceDocOf  byte = 75 // []int32   parallel document ordinals
)

// required3Substrate lists the sections a v3 substrate (instance without
// index) reader refuses to run without.
var required3Substrate = []byte{
	secMeta,
	sec3DictArena, sec3DictOffs, sec3DictPerm,
	sec3NodeDictID, sec3NodeKind, sec3NodeParent, sec3NodeDepth,
	sec3NodeDocOf, sec3NodeName, sec3NodeComp, sec3NodeKwOff, sec3NodeKwIDs,
	sec3EdgeOff, sec3Edges, sec3TotalW,
	sec3MatRowPtr, sec3MatCol, sec3MatVal,
	sec3Triples, sec3TripleSPO, sec3TriplePOS,
	sec3Users, sec3DocRoots, sec3TagList, sec3TagInfos, sec3Comments, sec3Posts,
	sec3KwFreqKeys, sec3KwFreqCount,
	sec3ChildOff, sec3ChildList, sec3NIDByID,
}

// required3Index lists the index sections of a v3 snapshot or shard file.
var required3Index = []byte{
	sec3IndexKw, sec3IndexEvOff, sec3IndexEvents, sec3IndexComps,
	sec3IndexCompOff, sec3IndexCompIDs, sec3IndexMaxRun,
}

// slice3Sections lists the sliced node-table sections of a shard file.
// They travel together: a shard file has either all of them (sliced,
// worker-servable without the manifest's node tables) or none (legacy
// unsliced set — workers fall back to mapping the full manifest).
var slice3Sections = []byte{sec3SliceNIDs, sec3SliceKind, sec3SliceParent, sec3SliceDepth, sec3SliceDocOf}

// manifestSubstrateSections lists the manifest sections a sliced worker
// still needs in full: the search-time substrate that social proximity is
// defined over (whole-graph transition matrix, node→component routing)
// plus the meta and layout bookkeeping. Everything else — dictionary,
// edges, ontology, tag/entity lists and the full node tables — is either
// sliced into the shard file or owned by the coordinator.
var manifestSubstrateSections = []byte{
	secMeta, secLayout,
	sec3NodeComp,
	sec3MatRowPtr, sec3MatCol, sec3MatVal,
}

// --- platform gate for the zero-copy view path ---

// hostLittleEndian reports whether the running machine stores integers
// little-endian (the on-disk byte order).
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// layoutMappable reports whether the in-memory layout of every struct
// element type matches the on-disk v3 encoding, byte for byte. On exotic
// platforms (big-endian, unusual padding) the mapped loader falls back to
// the copying decoder; the file format itself is platform-independent.
func layoutMappable() bool {
	return hostLittleEndian &&
		unsafe.Sizeof(graph.Edge{}) == 16 &&
		unsafe.Offsetof(graph.Edge{}.Prop) == 4 &&
		unsafe.Offsetof(graph.Edge{}.W) == 8 &&
		unsafe.Sizeof(graph.TagInfo{}) == 16 &&
		unsafe.Offsetof(graph.TagInfo{}.Author) == 4 &&
		unsafe.Offsetof(graph.TagInfo{}.Keyword) == 8 &&
		unsafe.Offsetof(graph.TagInfo{}.Type) == 12 &&
		unsafe.Sizeof(graph.CommentEdge{}) == 12 &&
		unsafe.Offsetof(graph.CommentEdge{}.Target) == 4 &&
		unsafe.Offsetof(graph.CommentEdge{}.Prop) == 8 &&
		unsafe.Sizeof(graph.PostEdge{}) == 8 &&
		unsafe.Offsetof(graph.PostEdge{}.User) == 4 &&
		unsafe.Sizeof(rdf.Triple{}) == 24 &&
		unsafe.Offsetof(rdf.Triple{}.P) == 4 &&
		unsafe.Offsetof(rdf.Triple{}.O) == 8 &&
		unsafe.Offsetof(rdf.Triple{}.W) == 16 &&
		unsafe.Sizeof(index.Event{}) == 12 &&
		unsafe.Offsetof(index.Event{}.Src) == 4 &&
		unsafe.Offsetof(index.Event{}.Type) == 8
}

// view reinterprets a raw section as a typed slice without copying. The
// payload aliases the mapping; see graph.Raw's immutability contract.
func view[T any](p []byte, what string) ([]T, error) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if len(p)%size != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of %d-byte elements", what, len(p), size)
	}
	n := len(p) / size
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&p[0]))%uintptr(unsafe.Alignof(zero)) != 0 {
		return nil, fmt.Errorf("snap: %s section is misaligned in memory", what)
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&p[0])), n), nil
}

// --- fixed-width encoders (explicit little-endian; writer side) ---

func encI32s[T ~int32](a []T) []byte {
	out := make([]byte, 4*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func encU32s[T ~uint32](a []T) []byte {
	out := make([]byte, 4*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

func encI64s(a []int64) []byte {
	out := make([]byte, 8*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(v))
	}
	return out
}

func encF64s(a []float64) []byte {
	out := make([]byte, 8*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func encEdges(a []graph.Edge) []byte {
	out := make([]byte, 16*len(a))
	for i, e := range a {
		binary.LittleEndian.PutUint32(out[16*i:], uint32(e.To))
		binary.LittleEndian.PutUint32(out[16*i+4:], uint32(e.Prop))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(e.W))
	}
	return out
}

func encTriples(a []rdf.Triple) []byte {
	out := make([]byte, 24*len(a))
	for i, t := range a {
		binary.LittleEndian.PutUint32(out[24*i:], uint32(t.S))
		binary.LittleEndian.PutUint32(out[24*i+4:], uint32(t.P))
		binary.LittleEndian.PutUint32(out[24*i+8:], uint32(t.O))
		// bytes 12-15 are padding, left zero
		binary.LittleEndian.PutUint64(out[24*i+16:], math.Float64bits(t.W))
	}
	return out
}

func encTagInfos(a []graph.TagInfo) []byte {
	out := make([]byte, 16*len(a))
	for i, t := range a {
		binary.LittleEndian.PutUint32(out[16*i:], uint32(t.Subject))
		binary.LittleEndian.PutUint32(out[16*i+4:], uint32(t.Author))
		binary.LittleEndian.PutUint32(out[16*i+8:], uint32(t.Keyword))
		binary.LittleEndian.PutUint32(out[16*i+12:], uint32(t.Type))
	}
	return out
}

func encComments(a []graph.CommentEdge) []byte {
	out := make([]byte, 12*len(a))
	for i, c := range a {
		binary.LittleEndian.PutUint32(out[12*i:], uint32(c.Comment))
		binary.LittleEndian.PutUint32(out[12*i+4:], uint32(c.Target))
		binary.LittleEndian.PutUint32(out[12*i+8:], uint32(c.Prop))
	}
	return out
}

func encPosts(a []graph.PostEdge) []byte {
	out := make([]byte, 8*len(a))
	for i, p := range a {
		binary.LittleEndian.PutUint32(out[8*i:], uint32(p.Doc))
		binary.LittleEndian.PutUint32(out[8*i+4:], uint32(p.User))
	}
	return out
}

func encEvents(a []index.Event) []byte {
	out := make([]byte, 12*len(a))
	for i, e := range a {
		binary.LittleEndian.PutUint32(out[12*i:], uint32(e.Frag))
		binary.LittleEndian.PutUint32(out[12*i+4:], uint32(e.Src))
		out[12*i+8] = byte(e.Type)
		// bytes 9-11 are padding, left zero
	}
	return out
}

// --- fixed-width decoders (portable copy path) ---

func decI32s[T ~int32](p []byte, what string) ([]T, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of int32s", what, len(p))
	}
	out := make([]T, len(p)/4)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out, nil
}

func decU32s[T ~uint32](p []byte, what string) ([]T, error) {
	if len(p)%4 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of uint32s", what, len(p))
	}
	out := make([]T, len(p)/4)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out, nil
}

func decI64s(p []byte, what string) ([]int64, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of int64s", what, len(p))
	}
	out := make([]int64, len(p)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

func decF64s(p []byte, what string) ([]float64, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of float64s", what, len(p))
	}
	out := make([]float64, len(p)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

func decEdges(p []byte, what string) ([]graph.Edge, error) {
	if len(p)%16 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of edges", what, len(p))
	}
	out := make([]graph.Edge, len(p)/16)
	for i := range out {
		out[i] = graph.Edge{
			To:   graph.NID(binary.LittleEndian.Uint32(p[16*i:])),
			Prop: dict.ID(binary.LittleEndian.Uint32(p[16*i+4:])),
			W:    math.Float64frombits(binary.LittleEndian.Uint64(p[16*i+8:])),
		}
	}
	return out, nil
}

func decTriples(p []byte, what string) ([]rdf.Triple, error) {
	if len(p)%24 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of triples", what, len(p))
	}
	out := make([]rdf.Triple, len(p)/24)
	for i := range out {
		out[i] = rdf.Triple{
			S: dict.ID(binary.LittleEndian.Uint32(p[24*i:])),
			P: dict.ID(binary.LittleEndian.Uint32(p[24*i+4:])),
			O: dict.ID(binary.LittleEndian.Uint32(p[24*i+8:])),
			W: math.Float64frombits(binary.LittleEndian.Uint64(p[24*i+16:])),
		}
	}
	return out, nil
}

func decTagInfos(p []byte, what string) ([]graph.TagInfo, error) {
	if len(p)%16 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of tag infos", what, len(p))
	}
	out := make([]graph.TagInfo, len(p)/16)
	for i := range out {
		out[i] = graph.TagInfo{
			Subject: graph.NID(binary.LittleEndian.Uint32(p[16*i:])),
			Author:  graph.NID(binary.LittleEndian.Uint32(p[16*i+4:])),
			Keyword: dict.ID(binary.LittleEndian.Uint32(p[16*i+8:])),
			Type:    dict.ID(binary.LittleEndian.Uint32(p[16*i+12:])),
		}
	}
	return out, nil
}

func decComments(p []byte, what string) ([]graph.CommentEdge, error) {
	if len(p)%12 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of comment edges", what, len(p))
	}
	out := make([]graph.CommentEdge, len(p)/12)
	for i := range out {
		out[i] = graph.CommentEdge{
			Comment: graph.NID(binary.LittleEndian.Uint32(p[12*i:])),
			Target:  graph.NID(binary.LittleEndian.Uint32(p[12*i+4:])),
			Prop:    dict.ID(binary.LittleEndian.Uint32(p[12*i+8:])),
		}
	}
	return out, nil
}

func decPosts(p []byte, what string) ([]graph.PostEdge, error) {
	if len(p)%8 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of post edges", what, len(p))
	}
	out := make([]graph.PostEdge, len(p)/8)
	for i := range out {
		out[i] = graph.PostEdge{
			Doc:  graph.NID(binary.LittleEndian.Uint32(p[8*i:])),
			User: graph.NID(binary.LittleEndian.Uint32(p[8*i+4:])),
		}
	}
	return out, nil
}

func decEvents(p []byte, what string) ([]index.Event, error) {
	if len(p)%12 != 0 {
		return nil, fmt.Errorf("snap: %s section of %d bytes is not a whole number of events", what, len(p))
	}
	out := make([]index.Event, len(p)/12)
	for i := range out {
		out[i] = index.Event{
			Frag: graph.NID(binary.LittleEndian.Uint32(p[12*i:])),
			Src:  graph.NID(binary.LittleEndian.Uint32(p[12*i+4:])),
			Type: index.ConnType(p[12*i+8]),
		}
	}
	return out, nil
}

// --- writer: v3 sections from a Raw ---

// alignedInstanceSections encodes the substrate of an instance (every
// section except the connection index) as v3 sections in canonical id
// order.
func alignedInstanceSections(r *graph.Raw) []asec {
	n := len(r.DictID)

	// Dictionary: arena + offsets + sorted permutation.
	arenaLen := 0
	for _, s := range r.Strings {
		arenaLen += len(s)
	}
	arena := make([]byte, 0, arenaLen)
	dictOffs := make([]int64, len(r.Strings)+1)
	for i, s := range r.Strings {
		arena = append(arena, s...)
		dictOffs[i+1] = int64(len(arena))
	}
	dictPerm := make([]int32, len(r.Strings))
	for i := range dictPerm {
		dictPerm[i] = int32(i)
	}
	sort.Slice(dictPerm, func(i, j int) bool { return r.Strings[dictPerm[i]] < r.Strings[dictPerm[j]] })

	// Content keywords and out-edges, flattened to CSR.
	kwOff := make([]int64, n+1)
	nkw := 0
	for _, ks := range r.Keywords {
		nkw += len(ks)
	}
	kwIDs := make([]dict.ID, 0, nkw)
	for v, ks := range r.Keywords {
		kwIDs = append(kwIDs, ks...)
		kwOff[v+1] = int64(len(kwIDs))
	}
	edgeOff := make([]int64, n+1)
	ne := 0
	for _, es := range r.Out {
		ne += len(es)
	}
	edges := make([]graph.Edge, 0, ne)
	for v, es := range r.Out {
		edges = append(edges, es...)
		edgeOff[v+1] = int64(len(edges))
	}

	// Children lists in CSR form, derived from Parent. Appending nodes in
	// ascending NID order reproduces the original document child order
	// (pre-order numbering).
	childOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		if p := r.Parent[v]; p != graph.NoNID {
			childOff[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		childOff[v+1] += childOff[v]
	}
	childList := make([]graph.NID, childOff[n])
	cursor := make([]int64, n)
	for v := 0; v < n; v++ {
		if p := r.Parent[v]; p != graph.NoNID {
			childList[childOff[p]+cursor[p]] = graph.NID(v)
			cursor[p]++
		}
	}

	// Dense URI→node table over the dictionary.
	nidByID := make([]graph.NID, len(r.Strings))
	for i := range nidByID {
		nidByID[i] = graph.NoNID
	}
	for v, id := range r.DictID {
		if int64(id) < int64(len(nidByID)) {
			nidByID[id] = graph.NID(v)
		}
	}

	spo, pos := rdf.TriplePerms(r.Triples)

	kinds := make([]byte, n)
	for v, k := range r.Kind {
		kinds[v] = byte(k)
	}

	return []asec{
		{secMeta, false, encodeMeta(r).Bytes()},
		{sec3DictArena, true, arena},
		{sec3DictOffs, true, encI64s(dictOffs)},
		{sec3DictPerm, true, encI32s(dictPerm)},
		{sec3NodeDictID, true, encU32s(r.DictID)},
		{sec3NodeKind, true, kinds},
		{sec3NodeParent, true, encI32s(r.Parent)},
		{sec3NodeDepth, true, encI32s(r.Depth)},
		{sec3NodeDocOf, true, encI32s(r.DocOf)},
		{sec3NodeName, true, encU32s(r.NodeName)},
		{sec3NodeComp, true, encI32s(r.Comp)},
		{sec3NodeKwOff, true, encI64s(kwOff)},
		{sec3NodeKwIDs, true, encU32s(kwIDs)},
		{sec3EdgeOff, true, encI64s(edgeOff)},
		{sec3Edges, true, encEdges(edges)},
		{sec3TotalW, true, encF64s(r.TotalW)},
		{sec3MatRowPtr, true, encI32s(r.MatrixRowPtr)},
		{sec3MatCol, true, encI32s(r.MatrixCol)},
		{sec3MatVal, true, encF64s(r.MatrixVal)},
		{sec3Triples, true, encTriples(r.Triples)},
		{sec3TripleSPO, true, encI32s(spo)},
		{sec3TriplePOS, true, encI32s(pos)},
		{sec3Users, true, encI32s(r.Users)},
		{sec3DocRoots, true, encI32s(r.DocRoots)},
		{sec3TagList, true, encI32s(r.TagList)},
		{sec3TagInfos, true, encTagInfos(r.TagInfos)},
		{sec3Comments, true, encComments(r.Comments)},
		{sec3Posts, true, encPosts(r.Posts)},
		{sec3KwFreqKeys, true, encU32s(r.KwFreqKeys)},
		{sec3KwFreqCount, true, encI32s(r.KwFreqCounts)},
		{sec3ChildOff, true, encI64s(childOff)},
		{sec3ChildList, true, encI32s(childList)},
		{sec3NIDByID, true, encI32s(nidByID)},
	}
}

// alignedIndexSections encodes the connection index as v3 sections: the
// postings flattened to (keywords, offsets, events) plus the precomputed
// per-event component ids. comp is the node→component table.
func alignedIndexSections(comp []int32, postings []index.RawPosting) []asec {
	kws := make([]dict.ID, 0, len(postings))
	evOff := make([]int64, 1, len(postings)+1)
	ne := 0
	for _, p := range postings {
		ne += len(p.Events)
	}
	events := make([]index.Event, 0, ne)
	comps := make([]int32, 0, ne)
	compOff := make([]int64, 1, len(postings)+1)
	var compIDs []int32
	maxRuns := make([]int32, 0, len(postings))
	for _, p := range postings {
		kws = append(kws, p.Kw)
		var maxRun, run int32
		for i, ev := range p.Events {
			events = append(events, ev)
			c := int32(-1)
			if ev.Frag >= 0 && int(ev.Frag) < len(comp) {
				c = comp[ev.Frag]
			}
			comps = append(comps, c)
			if i == 0 || c != comps[len(comps)-2] {
				compIDs = append(compIDs, c)
				run = 0
			}
			run++
			if run > maxRun {
				maxRun = run
			}
		}
		evOff = append(evOff, int64(len(events)))
		compOff = append(compOff, int64(len(compIDs)))
		maxRuns = append(maxRuns, maxRun)
	}
	return []asec{
		{sec3IndexKw, true, encU32s(kws)},
		{sec3IndexEvOff, true, encI64s(evOff)},
		{sec3IndexEvents, true, encEvents(events)},
		{sec3IndexComps, true, encI32s(comps)},
		{sec3IndexCompOff, true, encI64s(compOff)},
		{sec3IndexCompIDs, true, encI32s(compIDs)},
		{sec3IndexMaxRun, true, encI32s(maxRuns)},
	}
}

// --- readers ---

// checkOffsets validates a CSR offset table: n+1 entries spanning
// [0, total] monotonically. Every slicing of a flattened array goes
// through this before any sub-slice header is built.
func checkOffsets(off []int64, n int, total int, what string) error {
	if len(off) != n+1 {
		return fmt.Errorf("snap: %s offsets have %d entries for %d rows", what, len(off), n)
	}
	if off[0] != 0 || off[n] != int64(total) {
		return fmt.Errorf("snap: %s offsets span [%d, %d] for %d entries", what, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return fmt.Errorf("snap: decreasing %s offset at row %d", what, i)
		}
	}
	return nil
}

// v3Substrate holds the decoded (or viewed) substrate arrays of a v3
// file, ready for instance assembly.
type v3Substrate struct {
	raw *graph.Raw

	arena    []byte
	dictOffs []int64
	dictPerm []int32

	childOff  []int64
	childList []graph.NID
	nidByID   []graph.NID

	kwOff   []int64
	kwIDs   []dict.ID
	edgeOff []int64
	edges   []graph.Edge

	spo, pos []int32
}

// substrateFromPayloads decodes the substrate sections. With zeroCopy the
// arrays are views into the payload bytes (which must then outlive the
// instance); otherwise everything is copied into private memory.
func substrateFromPayloads(payloads map[byte][]byte, what string, zeroCopy bool) (*v3Substrate, error) {
	for _, id := range required3Substrate {
		if _, ok := payloads[id]; !ok {
			return nil, fmt.Errorf("snap: %s missing required section %d", what, id)
		}
	}
	s := &v3Substrate{raw: &graph.Raw{}}
	numNodes, err := decodeMeta(payloads[secMeta], s.raw)
	if err != nil {
		return nil, err
	}

	g := &loader{payloads: payloads, zeroCopy: zeroCopy}
	s.arena = payloads[sec3DictArena]
	if !zeroCopy {
		s.arena = append([]byte(nil), s.arena...)
	}
	s.dictOffs = loadI64s(g, sec3DictOffs, "dictionary offsets")
	s.dictPerm = loadI32s[int32](g, sec3DictPerm, "dictionary permutation")
	s.raw.DictID = loadU32s[dict.ID](g, sec3NodeDictID, "node URIs")
	if kinds := payloads[sec3NodeKind]; zeroCopy {
		s.raw.Kind = unsafeKinds(kinds)
	} else {
		s.raw.Kind = make([]graph.NodeKind, len(kinds))
		for i, b := range kinds {
			s.raw.Kind[i] = graph.NodeKind(b)
		}
	}
	s.raw.Parent = loadI32s[graph.NID](g, sec3NodeParent, "node parents")
	s.raw.Depth = loadI32s[int32](g, sec3NodeDepth, "node depths")
	s.raw.DocOf = loadI32s[int32](g, sec3NodeDocOf, "node documents")
	s.raw.NodeName = loadU32s[dict.ID](g, sec3NodeName, "node names")
	s.raw.Comp = loadI32s[int32](g, sec3NodeComp, "node components")
	kwOff := loadI64s(g, sec3NodeKwOff, "keyword offsets")
	kwIDs := loadU32s[dict.ID](g, sec3NodeKwIDs, "content keywords")
	edgeOff := loadI64s(g, sec3EdgeOff, "edge offsets")
	edges := g.edges(sec3Edges, "edges")
	s.raw.TotalW = loadF64s(g, sec3TotalW, "out-weights")
	s.raw.MatrixRowPtr = loadI32s[int32](g, sec3MatRowPtr, "matrix row pointers")
	s.raw.MatrixCol = loadI32s[int32](g, sec3MatCol, "matrix columns")
	s.raw.MatrixVal = loadF64s(g, sec3MatVal, "matrix values")
	s.raw.Triples = g.triples(sec3Triples, "ontology triples")
	s.spo = loadI32s[int32](g, sec3TripleSPO, "triple spo permutation")
	s.pos = loadI32s[int32](g, sec3TriplePOS, "triple pos permutation")
	s.raw.Users = loadI32s[graph.NID](g, sec3Users, "users")
	s.raw.DocRoots = loadI32s[graph.NID](g, sec3DocRoots, "document roots")
	s.raw.TagList = loadI32s[graph.NID](g, sec3TagList, "tags")
	s.raw.TagInfos = g.tagInfos(sec3TagInfos, "tag infos")
	s.raw.Comments = g.comments(sec3Comments, "comment edges")
	s.raw.Posts = g.posts(sec3Posts, "post edges")
	s.raw.KwFreqKeys = loadU32s[dict.ID](g, sec3KwFreqKeys, "frequency keywords")
	s.raw.KwFreqCounts = loadI32s[int32](g, sec3KwFreqCount, "frequency counts")
	s.childOff = loadI64s(g, sec3ChildOff, "children offsets")
	s.childList = loadI32s[graph.NID](g, sec3ChildList, "children list")
	s.nidByID = loadI32s[graph.NID](g, sec3NIDByID, "URI→node table")
	if g.err != nil {
		return nil, g.err
	}

	if numNodes != len(s.raw.DictID) {
		return nil, fmt.Errorf("snap: meta says %d nodes, node table has %d", numNodes, len(s.raw.DictID))
	}
	n := len(s.raw.DictID)
	s.kwOff, s.kwIDs = kwOff, kwIDs
	s.edgeOff, s.edges = edgeOff, edges
	if zeroCopy {
		// The accelerated import takes the flat CSR arrays as-is (offset
		// tables validated there) and materialises per-node headers
		// lazily.
		return s, nil
	}
	if err := checkOffsets(kwOff, n, len(kwIDs), "content keyword"); err != nil {
		return nil, err
	}
	s.raw.Keywords = make([][]dict.ID, n)
	for v := 0; v < n; v++ {
		if lo, hi := kwOff[v], kwOff[v+1]; lo < hi {
			s.raw.Keywords[v] = kwIDs[lo:hi:hi]
		}
	}
	if err := checkOffsets(edgeOff, n, len(edges), "edge"); err != nil {
		return nil, err
	}
	s.raw.Out = make([][]graph.Edge, n)
	for v := 0; v < n; v++ {
		if lo, hi := edgeOff[v], edgeOff[v+1]; lo < hi {
			s.raw.Out[v] = edges[lo:hi:hi]
		}
	}
	return s, nil
}

// unsafeKinds reinterprets the kind byte section as []NodeKind (both are
// one byte; no alignment constraint).
func unsafeKinds(p []byte) []graph.NodeKind {
	if len(p) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.NodeKind)(unsafe.Pointer(&p[0])), len(p))
}

// loader wraps the per-section decode/view dispatch with a sticky error.
type loader struct {
	payloads map[byte][]byte
	zeroCopy bool
	err      error
}

func loadTyped[T any](g *loader, sec byte, what string, dec func(p []byte, what string) ([]T, error)) []T {
	if g.err != nil {
		return nil
	}
	var out []T
	var err error
	if g.zeroCopy {
		out, err = view[T](g.payloads[sec], what)
	} else {
		out, err = dec(g.payloads[sec], what)
	}
	if err != nil {
		g.err = err
	}
	return out
}

func loadI32s[T ~int32](g *loader, sec byte, what string) []T {
	return loadTyped[T](g, sec, what, decI32s[T])
}

func loadU32s[T ~uint32](g *loader, sec byte, what string) []T {
	return loadTyped[T](g, sec, what, decU32s[T])
}

func loadI64s(g *loader, sec byte, what string) []int64 {
	return loadTyped[int64](g, sec, what, func(p []byte, w string) ([]int64, error) { return decI64s(p, w) })
}

func loadF64s(g *loader, sec byte, what string) []float64 {
	return loadTyped[float64](g, sec, what, func(p []byte, w string) ([]float64, error) { return decF64s(p, w) })
}

func (g *loader) edges(sec byte, what string) []graph.Edge {
	return loadTyped[graph.Edge](g, sec, what, decEdges)
}

func (g *loader) triples(sec byte, what string) []rdf.Triple {
	return loadTyped[rdf.Triple](g, sec, what, decTriples)
}

func (g *loader) tagInfos(sec byte, what string) []graph.TagInfo {
	return loadTyped[graph.TagInfo](g, sec, what, decTagInfos)
}

func (g *loader) comments(sec byte, what string) []graph.CommentEdge {
	return loadTyped[graph.CommentEdge](g, sec, what, decComments)
}

func (g *loader) posts(sec byte, what string) []graph.PostEdge {
	return loadTyped[graph.PostEdge](g, sec, what, decPosts)
}

// instanceFromV3 assembles an instance from decoded substrate arrays.
// With zeroCopy it builds the arena dictionary, the frozen ontology and
// the accelerated instance (validation scans only); otherwise it strings
// everything through the classic constructors, yielding a fully private,
// GC-owned instance.
func instanceFromV3(s *v3Substrate, zeroCopy bool) (*graph.Instance, error) {
	if !zeroCopy {
		// Materialise private strings; the classic FromRaw path hashes
		// them into a map dictionary and ignores the stored accelerators.
		if len(s.dictOffs) == 0 {
			return nil, fmt.Errorf("snap: empty dictionary offset section")
		}
		if err := checkOffsets(s.dictOffs, len(s.dictOffs)-1, len(s.arena), "dictionary"); err != nil {
			return nil, err
		}
		strs := make([]string, len(s.dictOffs)-1)
		for i := range strs {
			strs[i] = string(s.arena[s.dictOffs[i]:s.dictOffs[i+1]])
		}
		s.raw.Strings = strs
		in, err := graph.FromRaw(s.raw)
		if err != nil {
			return nil, fmt.Errorf("snap: %w", err)
		}
		return in, nil
	}

	d, err := dict.FromArena(s.arena, s.dictOffs, s.dictPerm)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	// Raw.Strings stays nil: the trusted import never touches it, and a
	// later Raw() export materialises the table from the dictionary.
	ont, err := rdf.FromTriplesFrozen(d, s.raw.Triples, s.spo, s.pos)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	in, err := graph.FromRawAccel(s.raw, &graph.Accel{
		Dict:      d,
		Ont:       ont,
		NIDByID:   s.nidByID,
		ChildOff:  s.childOff,
		ChildList: s.childList,
		EdgeOff:   s.edgeOff,
		EdgeList:  s.edges,
		KwOff:     s.kwOff,
		KwList:    s.kwIDs,
	})
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return in, nil
}

// indexFromPayloads assembles the connection index of a v3 snapshot or
// shard file over its (projected) instance.
func indexFromPayloads(in *graph.Instance, payloads map[byte][]byte, what string, zeroCopy bool) (*index.Index, error) {
	for _, id := range required3Index {
		if _, ok := payloads[id]; !ok {
			return nil, fmt.Errorf("snap: %s missing required section %d", what, id)
		}
	}
	g := &loader{payloads: payloads, zeroCopy: zeroCopy}
	kws := loadU32s[dict.ID](g, sec3IndexKw, "posting keywords")
	evOff := loadI64s(g, sec3IndexEvOff, "event offsets")
	events := loadTyped[index.Event](g, sec3IndexEvents, "events", decEvents)
	comps := loadI32s[int32](g, sec3IndexComps, "event components")
	compOff := loadI64s(g, sec3IndexCompOff, "component summary offsets")
	compIDs := loadI32s[int32](g, sec3IndexCompIDs, "component summaries")
	maxRuns := loadI32s[int32](g, sec3IndexMaxRun, "component run bounds")
	if g.err != nil {
		return nil, g.err
	}
	if zeroCopy {
		ix, err := index.FromFlat(in, index.Flat{
			Kws: kws, EvOff: evOff, Events: events, Comps: comps,
			CompOff: compOff, CompIDs: compIDs, MaxRuns: maxRuns,
		})
		if err != nil {
			return nil, fmt.Errorf("snap: %w", err)
		}
		return ix, nil
	}
	// Classic path: rebuild postings and let index.FromRaw re-derive and
	// re-validate everything (including the canonical sort).
	if err := checkOffsets(evOff, len(kws), len(events), "event"); err != nil {
		return nil, err
	}
	postings := make([]index.RawPosting, len(kws))
	for i, kw := range kws {
		if i > 0 && kws[i-1] >= kw {
			return nil, fmt.Errorf("snap: posting keywords out of order at %d", i)
		}
		lo, hi := evOff[i], evOff[i+1]
		postings[i] = index.RawPosting{Kw: kw, Events: events[lo:hi:hi]}
	}
	ix, err := index.FromRaw(in, postings)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return ix, nil
}

// decodeV3 reconstructs instance and index from an aligned snapshot's
// payloads.
func decodeV3(payloads map[byte][]byte, zeroCopy bool) (*graph.Instance, *index.Index, error) {
	s, err := substrateFromPayloads(payloads, "snapshot", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	in, err := instanceFromV3(s, zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	ix, err := indexFromPayloads(in, payloads, "snapshot", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	return in, ix, nil
}
