package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"s3/internal/text"
)

// alignedSpans parses a v3 file's section table and returns the byte
// ranges that are covered by integrity checks: the header+table prefix
// and every section payload. Bytes outside (alignment padding) are
// legitimately unchecked.
func alignedSpans(t *testing.T, data []byte, magic string) [][2]int {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(data[len(magic)+2:]))
	tableEnd := len(magic) + 10 + alignedEntrySize*count
	spans := [][2]int{{0, tableEnd}}
	for i := 0; i < count; i++ {
		e := data[len(magic)+10+alignedEntrySize*i:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		spans = append(spans, [2]int{int(off), int(off + length)})
	}
	return spans
}

// TestAlignedRejectsCorruption mirrors the v1 fuzzing for the aligned
// format, with a stronger guarantee: every bit flip inside the header,
// the section table or any section payload must be rejected (the v1
// varint format could only promise "no panic"). Both the copying reader
// and the mapped opener are exercised.
func TestAlignedRejectsCorruption(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	var buf bytes.Buffer
	if err := Write(&buf, in, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if ver, _ := fileVersion(good, Magic); ver != VersionAligned {
		t.Fatalf("Write produced version %d, want %d", ver, VersionAligned)
	}
	dir := t.TempDir()

	checkRejected := func(t *testing.T, data []byte, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panicked: %v", what, r)
			}
		}()
		if _, _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: copy Read accepted corrupt snapshot", what)
		}
		path := filepath.Join(dir, "c.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(path, LoadMmap); err == nil {
			s.Close()
			t.Errorf("%s: mapped Open accepted corrupt snapshot", what)
		}
	}

	// Truncations at every granularity.
	for _, cut := range []int{0, 4, 7, 9, 15, len(good) / 3, len(good) - 1} {
		checkRejected(t, good[:cut], fmt.Sprintf("truncated to %d", cut))
	}

	// Bit flips across every checked span (sampled for speed).
	for _, span := range alignedSpans(t, good, Magic) {
		step := (span[1]-span[0])/37 + 1
		for off := span[0]; off < span[1]; off += step {
			b := bytes.Clone(good)
			b[off] ^= 0x41
			checkRejected(t, b, fmt.Sprintf("flip at %d", off))
		}
	}
}

// TestLegacyWriteStillReadable pins the compatibility matrix from the
// writer side: WriteLegacy produces a version-1 file whose restored
// instance answers the search battery identically, and re-serialising it
// with WriteLegacy is canonical.
func TestLegacyWriteStillReadable(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	var buf bytes.Buffer
	if err := WriteLegacy(&buf, in, ix); err != nil {
		t.Fatal(err)
	}
	if ver, _ := fileVersion(buf.Bytes(), Magic); ver != VersionVarint {
		t.Fatalf("WriteLegacy produced version %d", ver)
	}
	in2, ix2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := searchAll(t, in2, ix2), searchAll(t, in, ix); got != want {
		t.Error("legacy round-trip changed search results")
	}
	var again bytes.Buffer
	if err := WriteLegacy(&again, in2, ix2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("legacy format is not canonical after round-trip")
	}
}

// TestMappedOpenMatchesRead checks the two v3 decode paths against each
// other at the package level (the facade-level property test covers whole
// datasets): identical search transcripts and statistics.
func TestMappedOpenMatchesRead(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	path := filepath.Join(t.TempDir(), "i.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, in, ix); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Mode != LoadMmap || s.Mapping == nil || s.MappedBytes() == 0 {
		t.Fatalf("expected a live mapping, got mode=%v mapped=%d", s.Mode, s.MappedBytes())
	}
	c, err := Open(path, LoadCopy)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode != LoadCopy || c.Mapping != nil {
		t.Fatalf("copy open returned mode=%v", c.Mode)
	}
	if got, want := searchAll(t, s.Instance, s.Index), searchAll(t, c.Instance, c.Index); got != want {
		t.Errorf("mapped and copied instances diverge:\nmapped:\n%s\ncopied:\n%s", got, want)
	}
	if s.Instance.Stats() != c.Instance.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", s.Instance.Stats(), c.Instance.Stats())
	}
}
