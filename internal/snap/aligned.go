// The v3 aligned container: a snapshot-family file whose section table
// carries absolute offsets, lengths and checksums in fixed-width fields,
// with the heavy payloads stored as raw little-endian arrays at 64-byte
// aligned offsets. A reader that memory-maps the file can hand each raw
// section to unsafe.Slice and serve queries from the page cache without
// decoding anything; integrity is validated per section header (one
// checksum pass over the payload) instead of per datum.
//
//	off  0: magic (6 bytes)
//	off  6: uint16 format version (little-endian)
//	off  8: uint32 section count
//	off 12: uint32 CRC-32C of the header and table (with this field zero)
//	off 16: count × 32-byte table entries:
//	        uint32 id | uint32 flags | uint64 offset | uint64 length |
//	        uint64 CRC-32C of the payload (low 32 bits)
//	then the payloads in table order; sections with flagRaw start at
//	64-byte aligned offsets, varint sections are packed. Gaps are zero.
//
// The writer emits sections in ascending id order with deterministic
// padding, so the canonical-bytes property of the v1 format carries over:
// the same instance always serialises to the same v3 bytes.
package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// castagnoli is the CRC-32C table: hardware-accelerated on amd64/arm64,
// so the per-section integrity pass runs at memory bandwidth instead of
// FNV's byte-at-a-time rate (which would dominate a mapped cold start).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rawAlign is the alignment of raw section payloads. 64 covers every
// element type in the format (the widest is 8 bytes) and keeps each
// section cache-line aligned; mmap bases are page-aligned, so file
// alignment carries over to memory.
const rawAlign = 64

const (
	alignedHeaderSize = 16
	alignedEntrySize  = 32

	// flagRaw marks a section stored as a fixed-width little-endian array
	// (eligible for zero-copy reinterpretation); unflagged sections hold
	// varint-encoded metadata.
	flagRaw = 1
)

// asec is one section of an aligned file under construction.
type asec struct {
	id   byte
	raw  bool
	data []byte
}

// writeAligned assembles and emits an aligned file. Sections must be in
// ascending id order (the canonical order).
func writeAligned(w io.Writer, magic string, version uint16, secs []asec) error {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], version)
	buf.Write(u16[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(secs)))
	buf.Write(u32[:])
	buf.Write([]byte{0, 0, 0, 0}) // header checksum, patched below

	// Lay the payloads out after the table.
	off := int64(len(magic)) + 10 + alignedEntrySize*int64(len(secs))
	if int64(alignedHeaderSize)+alignedEntrySize*int64(len(secs)) != off {
		return fmt.Errorf("snap: aligned header size drifted from its constant")
	}
	type placed struct {
		asec
		off int64
	}
	placement := make([]placed, 0, len(secs))
	for i, s := range secs {
		if i > 0 && secs[i-1].id >= s.id {
			return fmt.Errorf("snap: aligned sections out of id order")
		}
		if s.raw {
			off = (off + rawAlign - 1) &^ (rawAlign - 1)
		}
		placement = append(placement, placed{asec: s, off: off})
		off += int64(len(s.data))
	}
	var entry [alignedEntrySize]byte
	for _, p := range placement {
		binary.LittleEndian.PutUint32(entry[0:], uint32(p.id))
		var flags uint32
		if p.raw {
			flags = flagRaw
		}
		binary.LittleEndian.PutUint32(entry[4:], flags)
		binary.LittleEndian.PutUint64(entry[8:], uint64(p.off))
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(p.data)))
		binary.LittleEndian.PutUint64(entry[24:], uint64(crc32.Checksum(p.data, castagnoli)))
		buf.Write(entry[:])
	}
	// Seal the header and table under their own checksum (the field
	// itself is hashed as zero), so a flipped offset, length, id or flag
	// is caught before any payload is interpreted.
	out := buf.Bytes()
	binary.LittleEndian.PutUint32(out[len(magic)+6:], crc32.Checksum(out, castagnoli))
	for _, p := range placement {
		for int64(buf.Len()) < p.off {
			buf.WriteByte(0)
		}
		buf.Write(p.data)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("snap: writing aligned snapshot: %w", err)
	}
	return nil
}

// readAligned parses an aligned file over data (typically a memory
// mapping) and returns the per-section payload views, checksum-verified.
// The views alias data; nothing is copied.
func readAligned(data []byte, magic string, what string) (map[byte][]byte, error) {
	payloads, _, err := readAlignedPick(data, magic, what, nil)
	return payloads, err
}

// secSpan locates one section's payload inside an aligned file.
type secSpan struct {
	id       byte
	off, len int64
	sum      uint64
}

// parseAlignedTable validates an aligned file's header and section table
// (bounds, ordering, alignment, the header's own checksum) and returns
// the section spans plus the table's end offset — everything a reader
// needs to locate payloads. Payload bytes are not touched: checksum
// verification is the caller's job, per section it actually keeps.
func parseAlignedTable(data []byte, magic string, what string) ([]secSpan, int64, error) {
	if len(data) < len(magic)+10 || string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("snap: not a %s (bad magic)", what)
	}
	count := int(binary.LittleEndian.Uint32(data[len(magic)+2:]))
	tableEnd := int64(len(magic)) + 10 + alignedEntrySize*int64(count)
	if count < 0 || tableEnd > int64(len(data)) {
		return nil, 0, fmt.Errorf("snap: %s section table overruns the file", what)
	}
	headSum := binary.LittleEndian.Uint32(data[len(magic)+6:])
	head := bytes.Clone(data[:tableEnd])
	binary.LittleEndian.PutUint32(head[len(magic)+6:], 0)
	if crc32.Checksum(head, castagnoli) != headSum {
		return nil, 0, fmt.Errorf("snap: %s header fails its checksum", what)
	}
	out := make([]secSpan, 0, count)
	seen := make(map[byte]struct{}, count)
	prevEnd := tableEnd
	for i := 0; i < count; i++ {
		e := data[int64(len(magic))+10+alignedEntrySize*int64(i):]
		id := binary.LittleEndian.Uint32(e[0:])
		flags := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		sum := binary.LittleEndian.Uint64(e[24:])
		if id > math.MaxUint8 {
			return nil, 0, fmt.Errorf("snap: %s section id %d out of range", what, id)
		}
		if _, dup := seen[byte(id)]; dup {
			return nil, 0, fmt.Errorf("snap: duplicate section %d", id)
		}
		seen[byte(id)] = struct{}{}
		end := off + length
		if off > uint64(len(data)) || end < off || end > uint64(len(data)) || int64(off) < prevEnd {
			return nil, 0, fmt.Errorf("snap: section %d overruns %s", id, what)
		}
		if flags&flagRaw != 0 && off%rawAlign != 0 {
			return nil, 0, fmt.Errorf("snap: raw section %d at unaligned offset %d", id, off)
		}
		prevEnd = int64(end)
		out = append(out, secSpan{id: byte(id), off: int64(off), len: int64(length), sum: sum})
	}
	return out, tableEnd, nil
}

// readAlignedPick is readAligned restricted to the sections keep accepts
// (nil keeps everything): skipped sections are bounds-checked through the
// table but their payloads are neither checksummed nor touched — which is
// what lets a partial reader run over a mapping whose unwanted pages it
// is about to trim away. The second return locates the kept payloads for
// range-based mapping maintenance (Trim, Advise).
func readAlignedPick(data []byte, magic string, what string, keep func(id byte) bool) (map[byte][]byte, []secSpan, error) {
	return readAlignedPickDeferred(data, magic, what, keep, nil)
}

// readAlignedPickDeferred is readAlignedPick with an optional deferred
// verifier: when dv is non-nil the kept payloads' checksum pass runs in
// the background (checksum-on-fault — see verify.go) instead of blocking
// the open. Header and table validation stays synchronous either way.
func readAlignedPickDeferred(data []byte, magic string, what string, keep func(id byte) bool, dv *DeferredVerify) (map[byte][]byte, []secSpan, error) {
	entries, _, err := parseAlignedTable(data, magic, what)
	if err != nil {
		return nil, nil, err
	}
	payloads := make(map[byte][]byte, len(entries))
	kept := make([]secSpan, 0, len(entries))
	for _, en := range entries {
		if keep != nil && !keep(en.id) {
			continue
		}
		payloads[en.id] = data[en.off : en.off+en.len]
		kept = append(kept, en)
	}
	// The checksum pass is memory-bandwidth bound and is the dominant
	// cost of a mapped cold start: run it inline (parallel) when eager,
	// hand it to the background collector when deferred.
	if dv != nil {
		spans := append([]secSpan(nil), kept...)
		dv.spawn(func() error { return verifyAlignedSpans(data, spans, what) })
		return payloads, kept, nil
	}
	if err := verifyAlignedSpans(data, kept, what); err != nil {
		return nil, nil, err
	}
	return payloads, kept, nil
}

// fileVersion sniffs the format version of a snapshot-family file without
// committing to a container layout.
func fileVersion(data []byte, magic string) (uint16, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return 0, fmt.Errorf("snap: bad magic")
	}
	return binary.LittleEndian.Uint16(data[len(magic):]), nil
}
