package snap

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// writeSet serialises a shard set into in-memory buffers.
func writeSet(t testing.TB, in *graph.Instance, ix *index.Index, n int) (manifest []byte, shards [][]byte) {
	t.Helper()
	parts, err := graph.PartitionComponents(in, n)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	sbufs := make([]*bytes.Buffer, n)
	ws := make([]io.Writer, n)
	names := make([]string, n)
	for i := range sbufs {
		sbufs[i] = &bytes.Buffer{}
		ws[i] = sbufs[i]
		names[i] = fmt.Sprintf("set.shard-%d", i)
	}
	if err := WriteShardSet(&mbuf, ws, names, in, ix, parts); err != nil {
		t.Fatal(err)
	}
	shards = make([][]byte, n)
	for i, b := range sbufs {
		shards[i] = b.Bytes()
	}
	return mbuf.Bytes(), shards
}

func readSet(manifest []byte, shards [][]byte) (*ShardSet, error) {
	rs := make([]io.Reader, len(shards))
	for i, b := range shards {
		rs[i] = bytes.NewReader(b)
	}
	return ReadShardSet(bytes.NewReader(manifest), rs)
}

// TestShardSetRoundTrip writes a shard set, reads it back and checks that
// the fan-out/merge engine over the loaded shards answers exactly like
// the original single engine.
func TestShardSetRoundTrip(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 70, 260, 9
	spec, _ := datagen.Twitter(o)
	in, ix := build(t, spec, text.Analyzer{Lang: text.None})

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			manifest, shards := writeSet(t, in, ix, n)
			set, err := readSet(manifest, shards)
			if err != nil {
				t.Fatal(err)
			}
			if set.Base.Stats() != in.Stats() {
				t.Errorf("base stats changed: %+v vs %+v", set.Base.Stats(), in.Stats())
			}
			// Per-shard stats must sum back to the instance totals.
			docs, comps := 0, 0
			for _, sh := range set.Shards {
				docs += sh.Stats().Documents
				comps += sh.Stats().Components
			}
			if docs != in.Stats().Documents || comps != in.Stats().Components {
				t.Errorf("shards hold %d docs / %d comps, instance %d / %d",
					docs, comps, in.Stats().Documents, in.Stats().Components)
			}

			engines := make([]*core.Engine, len(set.Shards))
			for i := range set.Shards {
				engines[i] = core.NewEngine(set.Shards[i], set.Indexes[i])
			}
			se, err := core.NewShardedEngine(engines)
			if err != nil {
				t.Fatal(err)
			}
			single := core.NewEngine(in, ix)
			users := in.Users()
			kws := in.SortedKeywordsByFrequency()
			checked := 0
			for s := 0; s < len(users) && s < 3; s++ {
				for _, ki := range []int{0, len(kws) / 2, len(kws) - 1} {
					kw := in.Dict().String(kws[ki])
					opts := core.Options{K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8}}
					want, _, err1 := single.Search(users[s], []string{kw}, opts)
					got, _, err2 := se.Search(users[s], []string{kw}, opts)
					if err1 != nil || err2 != nil {
						t.Fatalf("search errors: %v / %v", err1, err2)
					}
					if len(want) != len(got) {
						t.Fatalf("seeker %s kw %q: %d vs %d results", in.URIOf(users[s]), kw, len(want), len(got))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("seeker %s kw %q result %d: %+v vs %+v", in.URIOf(users[s]), kw, i, want[i], got[i])
						}
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no queries checked")
			}
		})
	}
}

// TestShardSetRejectsMixups checks the linking validation: stale or
// swapped files must not load.
func TestShardSetRejectsMixups(t *testing.T) {
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets, o.Seed = 50, 180, 3
	spec, _ := datagen.Twitter(o)
	in, ix := build(t, spec, text.Analyzer{Lang: text.None})
	manifest, shards := writeSet(t, in, ix, 3)

	// Swapped shard files: ordinal check must fire (both have valid sums
	// recorded for their own slots, so the digest check fires first).
	if _, err := readSet(manifest, [][]byte{shards[1], shards[0], shards[2]}); err == nil {
		t.Error("swapped shard files accepted")
	}
	// A shard file from a different instance: digest mismatch.
	o2 := datagen.DefaultTwitterOptions()
	o2.Users, o2.Tweets, o2.Seed = 50, 180, 4
	spec2, _ := datagen.Twitter(o2)
	in2, ix2 := build(t, spec2, text.Analyzer{Lang: text.None})
	_, shards2 := writeSet(t, in2, ix2, 3)
	if _, err := readSet(manifest, [][]byte{shards[0], shards2[1], shards[2]}); err == nil {
		t.Error("foreign shard file accepted")
	}
	// Wrong shard count.
	if _, err := readSet(manifest, shards[:2]); err == nil {
		t.Error("short shard list accepted")
	}
	// A plain snapshot is not a manifest.
	var snapBuf bytes.Buffer
	if err := Write(&snapBuf, in, ix); err != nil {
		t.Fatal(err)
	}
	if _, err := readSet(snapBuf.Bytes(), shards); err == nil {
		t.Error("plain snapshot accepted as manifest")
	}
	// And a manifest is not a plain snapshot.
	if _, _, err := Read(bytes.NewReader(manifest)); err == nil {
		t.Error("manifest accepted as plain snapshot")
	}
}

// TestShardSetRejectsCorruption flips bytes through the manifest and a
// shard file: every mutation must surface as an error, never a panic or
// a silently wrong instance.
func TestShardSetRejectsCorruption(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	manifest, shards := writeSet(t, in, ix, 2)

	check := func(name string, m []byte, ss [][]byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s: ReadShardSet panicked: %v", name, r)
			}
		}()
		if set, err := readSet(m, ss); err == nil && set == nil {
			t.Errorf("%s: nil set without error", name)
		}
	}

	for name, m := range map[string][]byte{
		"empty manifest":     {},
		"bad magic":          append([]byte("X3SHMF"), manifest[6:]...),
		"truncated manifest": manifest[:len(manifest)/2],
	} {
		if _, err := readSet(m, shards); err == nil {
			t.Errorf("%s accepted", name)
		}
		check(name, m, shards)
	}

	for i := 8; i < len(manifest); i += 61 {
		m := bytes.Clone(manifest)
		m[i] ^= 0xff
		check(fmt.Sprintf("manifest byte %d", i), m, shards)
	}
	for i := 8; i < len(shards[0]); i += 31 {
		s0 := bytes.Clone(shards[0])
		s0[i] ^= 0xff
		check(fmt.Sprintf("shard byte %d", i), manifest, [][]byte{s0, shards[1]})
		// Any byte flip in a shard file must be caught — the digest
		// guarantees it.
		if _, err := readSet(manifest, [][]byte{s0, shards[1]}); err == nil {
			t.Errorf("shard byte %d: corrupt shard accepted", i)
		}
	}
}
