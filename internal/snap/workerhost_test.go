package snap

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"s3/internal/core"
	"s3/internal/mman"
)

// TestOpenWorkerHostMultiShard is the host-grouping property test: a
// single OpenWorkerHost over several shards must answer the coordinated
// round protocol byte-identically to separate single-shard opens — and,
// in mapped mode, with measurably fewer mapped bytes, because the
// manifest substrate is mapped once instead of once per shard.
func TestOpenWorkerHostMultiShard(t *testing.T) {
	const n = 4
	hosted := []int{0, 2}
	manifestPath, in, _ := writeSetFiles(t, 60, 220, 7, n)

	for _, mode := range []LoadMode{LoadCopy, LoadMmap} {
		host, err := OpenWorkerHost(manifestPath, hosted, mode, VerifyEager)
		if err != nil {
			t.Fatalf("mode=%v: host open: %v", mode, err)
		}
		defer host.Close()
		if got := host.Shards; len(got) != len(hosted) || got[0] != hosted[0] || got[1] != hosted[1] {
			t.Fatalf("mode=%v: host shards = %v, want %v", mode, got, hosted)
		}
		if len(host.Instances) != len(hosted) || len(host.Indexes) != len(hosted) {
			t.Fatalf("mode=%v: host holds %d instances / %d indexes, want %d",
				mode, len(host.Instances), len(host.Indexes), len(hosted))
		}
		if host.Instance != host.Instances[0] || host.Index != host.Indexes[0] {
			t.Fatalf("mode=%v: first-shard aliases do not point at Instances[0]/Indexes[0]", mode)
		}

		singles := make([]*WorkerSnapshot, len(hosted))
		for i, s := range hosted {
			w, err := OpenShardWorker(manifestPath, s, mode)
			if err != nil {
				t.Fatalf("mode=%v shard %d: single open: %v", mode, s, err)
			}
			defer w.Close()
			singles[i] = w
		}

		// The headline claim: hosting both shards in one process maps
		// fewer bytes than two separate workers, because the trimmed
		// manifest substrate is shared instead of duplicated.
		if mode == LoadMmap && host.Mode == LoadMmap && host.Sliced && mman.TrimSupported() {
			var separate int64
			for _, w := range singles {
				separate += w.MappedBytes()
			}
			if hb := host.MappedBytes(); hb >= separate {
				t.Errorf("host maps %d bytes, separate workers map %d — substrate not shared", hb, separate)
			}
		}

		// Byte-identical rounds: coordinated search over the host's
		// instances vs over the single-shard opens.
		seekers, kwSets := workerQueries(in)
		for _, seeker := range seekers {
			for _, kws := range kwSets {
				groups, possible, err := core.ResolveKeywordGroups(in, kws)
				if err != nil || !possible {
					continue
				}
				spec := core.SearchSpec{Seeker: seeker, Groups: groups, K: 5, Params: defaultParams(), Epsilon: 1e-12}
				hostExecs := make([]core.ShardExecutor, len(hosted))
				singleExecs := make([]core.ShardExecutor, len(hosted))
				for i := range hosted {
					hostExecs[i] = core.NewShardExecutor(core.NewEngine(host.Instances[i], host.Indexes[i]), 0)
					singleExecs[i] = core.NewShardExecutor(core.NewEngine(singles[i].Instance, singles[i].Index), 0)
				}
				want := workerTranscript(t, singleExecs, spec)
				got := workerTranscript(t, hostExecs, spec)
				if got != want {
					t.Fatalf("mode=%v seeker=%d kws=%v: host answer diverged\nsingle:\n%s\nhost:\n%s",
						mode, seeker, kws, want, got)
				}
			}
		}
	}
}

// TestOpenWorkerHostRejectsBadShards covers the host-open argument
// contract: duplicates and out-of-range ordinals must fail fast.
func TestOpenWorkerHostRejectsBadShards(t *testing.T) {
	manifestPath, _, _ := writeSetFiles(t, 40, 150, 11, 2)
	if _, err := OpenWorkerHost(manifestPath, nil, LoadCopy, VerifyEager); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := OpenWorkerHost(manifestPath, []int{0, 0}, LoadCopy, VerifyEager); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := OpenWorkerHost(manifestPath, []int{0, 5}, LoadCopy, VerifyEager); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestOpenWorkerHostLazyVerify exercises the deferred-integrity path:
// a clean lazy open verifies to nil; a corrupted shard file fails the
// eager open up front and the lazy open at WaitVerify.
func TestOpenWorkerHostLazyVerify(t *testing.T) {
	manifestPath, _, _ := writeSetFiles(t, 40, 150, 11, 2)

	w, err := OpenWorkerHost(manifestPath, []int{0, 1}, LoadCopy, VerifyLazy)
	if err != nil {
		t.Fatalf("clean lazy open: %v", err)
	}
	if err := w.WaitVerify(); err != nil {
		t.Fatalf("clean lazy open failed verification: %v", err)
	}
	if err := w.VerifyErr(); err != nil {
		t.Fatalf("clean lazy open reports verify error: %v", err)
	}
	w.Close()

	// Corrupt shard 1's file at a payload offset the structural parse
	// does not decode eagerly: the lazy open must succeed, then report
	// the corruption from WaitVerify; the eager open must fail up front.
	shardPath := filepath.Join(filepath.Dir(manifestPath), layoutName(manifestPath, 1))
	orig, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for off := len(orig) / 2; off < len(orig)-1 && !found; off += 37 {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xff
		if err := os.WriteFile(shardPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		lw, err := OpenWorkerHost(manifestPath, []int{0, 1}, LoadCopy, VerifyLazy)
		if err != nil {
			continue // flip hit an eagerly decoded structure; try another offset
		}
		found = true
		verr := lw.WaitVerify()
		if verr == nil {
			t.Fatalf("offset %d: lazy verification missed a flipped byte", off)
		}
		if !strings.Contains(verr.Error(), "snap:") {
			t.Fatalf("offset %d: unexpected verify error: %v", off, verr)
		}
		if err := lw.VerifyErr(); err == nil {
			t.Fatalf("offset %d: VerifyErr nil after failed WaitVerify", off)
		}
		lw.Close()

		if _, err := OpenWorkerHost(manifestPath, []int{0, 1}, LoadCopy, VerifyEager); err == nil {
			t.Fatalf("offset %d: eager open accepted a corrupted shard file", off)
		}
	}
	if !found {
		t.Fatal("no flip offset survived the structural parse — cannot exercise lazy verification")
	}
	if err := os.WriteFile(shardPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}
