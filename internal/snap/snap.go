// Package snap implements the versioned binary snapshot format for frozen
// S3 instances. A snapshot stores every derived structure of an instance —
// the interned dictionary, node tables, network adjacency with weights,
// the normalised transition matrix, the component partition, the saturated
// ontology and the connection-index postings — so a query engine
// cold-starts by reading flat arrays from disk instead of re-running
// ontology saturation, matrix normalisation and the index fixpoint.
//
// # Formats
//
// Two container layouts coexist. The current version-3 format stores the
// heavy tables as page-aligned raw little-endian arrays behind a
// fixed-width, checksummed section table (see aligned.go and v3.go): it
// is what Write emits and what the zero-copy mapped loader consumes, and
// it additionally persists the derived lookup structures (sorted
// dictionary permutation, triple permutations, children CSR, URI→node
// table, per-event components) so loading does validation scans instead
// of rebuilds. Version 2 is intentionally skipped so the snapshot and
// shard-set formats share one current version number.
//
// The legacy version-1 layout is a magic header, a varint section table
// and varint payloads:
//
//	"S3SNAP"  magic (6 bytes)
//	uint16    format version, little-endian (1)
//	uvarint   section count
//	repeated  section id (1 byte) + uvarint payload length
//	payloads  concatenated in table order
//
// Integers are unsigned varints (encoding/binary); optional references
// (parents, tag keywords, event sources) are biased by one so the zero
// varint means "none"; floats are IEEE-754 bits in little-endian order.
// Strings are length-prefixed raw bytes. Version-1 files remain fully
// readable (through the copying decoder only — there is nothing aligned
// to map); WriteLegacy still produces them for downgrade paths.
//
// Both writers emit sections in canonical order with map-backed tables
// sorted by key, so the same instance always serialises to the same
// bytes (snapshots can be content-addressed and diffed).
package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/rdf"
	"s3/internal/text"
)

// Magic starts every snapshot file.
const Magic = "S3SNAP"

// VersionVarint is the legacy varint-only format version (readable, no
// longer written).
const VersionVarint = 1

// VersionAligned is the page-aligned raw-section format version. Version
// 2 is deliberately unused.
const VersionAligned = 3

// Version is the current write version.
const Version = VersionAligned

// Section ids. Values are part of the on-disk format; never renumber.
const (
	secDict     byte = 1
	secMeta     byte = 2
	secNodes    byte = 3
	secGraph    byte = 4
	secMatrix   byte = 5
	secEntities byte = 6
	secOntology byte = 7
	secIndex    byte = 8
	// Shard-set sections (see shard.go): the layout table of a shard-set
	// manifest and the linking header of a per-shard file.
	secLayout      byte = 9
	secShardHeader byte = 10
)

// requiredSections lists the ids a version-1 reader refuses to run
// without.
var requiredSections = []byte{secDict, secMeta, secNodes, secGraph, secMatrix, secEntities, secOntology, secIndex}

// section is one encoded payload with its table id.
type section struct {
	id  byte
	buf *bytes.Buffer
}

// instanceSections encodes the substrate of an instance — every section
// except the connection index — in canonical order.
func instanceSections(raw *graph.Raw) []section {
	return []section{
		{secDict, encodeDict(raw)},
		{secMeta, encodeMeta(raw)},
		{secNodes, encodeNodes(raw)},
		{secGraph, encodeGraph(raw)},
		{secMatrix, encodeMatrix(raw)},
		{secEntities, encodeEntities(raw)},
		{secOntology, encodeOntology(raw)},
	}
}

// writeSections emits a snapshot-family file: magic, version, section
// table, payloads.
func writeSections(w io.Writer, magic string, version uint16, sections []section) error {
	var head bytes.Buffer
	head.WriteString(magic)
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], version)
	head.Write(v[:])
	head.Write(binary.AppendUvarint(nil, uint64(len(sections))))
	for _, s := range sections {
		head.WriteByte(s.id)
		head.Write(binary.AppendUvarint(nil, uint64(s.buf.Len())))
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("snap: writing header: %w", err)
	}
	for _, s := range sections {
		if _, err := w.Write(s.buf.Bytes()); err != nil {
			return fmt.Errorf("snap: writing section %d: %w", s.id, err)
		}
	}
	return nil
}

// Write serialises the instance and its connection index in the current
// (version-3, aligned) format.
func Write(w io.Writer, in *graph.Instance, ix *index.Index) error {
	raw := in.Raw()
	secs := append(alignedInstanceSections(raw), alignedIndexSections(raw.Comp, ix.Raw())...)
	return writeAligned(w, Magic, VersionAligned, secs)
}

// WriteLegacy serialises in the version-1 varint format, for readers that
// predate the aligned layout.
func WriteLegacy(w io.Writer, in *graph.Instance, ix *index.Index) error {
	sections := append(instanceSections(in.Raw()), section{secIndex, encodeIndex(ix.Raw())})
	return writeSections(w, Magic, VersionVarint, sections)
}

// readSections parses a snapshot-family file: it verifies magic and
// version, walks the section table and returns the per-section payloads.
// what names the file kind in error messages.
func readSections(data []byte, magic string, version uint16, what string) (map[byte][]byte, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snap: not a %s (bad magic)", what)
	}
	ver := binary.LittleEndian.Uint16(data[len(magic):])
	if ver != version {
		return nil, fmt.Errorf("snap: unsupported %s format version %d (want %d)", what, ver, version)
	}
	d := &decoder{data: data, pos: len(magic) + 2}
	nSec := int(d.uint())
	type entry struct {
		id  byte
		len uint64
	}
	table := make([]entry, 0, nSec)
	for i := 0; i < nSec && d.err == nil; i++ {
		id := d.byte()
		table = append(table, entry{id: id, len: d.uint()})
	}
	if d.err != nil {
		return nil, fmt.Errorf("snap: corrupt section table: %w", d.err)
	}
	payloads := make(map[byte][]byte, nSec)
	off := d.pos
	for _, e := range table {
		end := off + int(e.len)
		if end < off || end > len(data) {
			return nil, fmt.Errorf("snap: section %d overruns %s (%d bytes past %d)", e.id, what, end, len(data))
		}
		if _, dup := payloads[e.id]; dup {
			return nil, fmt.Errorf("snap: duplicate section %d", e.id)
		}
		payloads[e.id] = data[off:end]
		off = end
	}
	return payloads, nil
}

// decodeInstance rebuilds the frozen instance from the substrate section
// payloads (everything but the connection index).
func decodeInstance(payloads map[byte][]byte) (*graph.Instance, error) {
	raw := &graph.Raw{}
	if err := decodeDict(payloads[secDict], raw); err != nil {
		return nil, err
	}
	numNodes, err := decodeMeta(payloads[secMeta], raw)
	if err != nil {
		return nil, err
	}
	if err := decodeNodes(payloads[secNodes], numNodes, raw); err != nil {
		return nil, err
	}
	if err := decodeGraph(payloads[secGraph], numNodes, raw); err != nil {
		return nil, err
	}
	if err := decodeMatrix(payloads[secMatrix], numNodes, raw); err != nil {
		return nil, err
	}
	if err := decodeEntities(payloads[secEntities], raw); err != nil {
		return nil, err
	}
	if err := decodeOntology(payloads[secOntology], raw); err != nil {
		return nil, err
	}
	in, err := graph.FromRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return in, nil
}

// Read deserialises a snapshot written by Write (either format version)
// and reconstructs the frozen instance and its index in private memory.
// For the zero-copy mapped load, see Open.
func Read(r io.Reader) (*graph.Instance, *index.Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: reading snapshot: %w", err)
	}
	return decodeSnapshot(data, false)
}

// decodeSnapshot dispatches on the container version. zeroCopy selects
// the view-based decode of the aligned format (the caller then owns the
// lifetime of data); version-1 files ignore it and always copy.
func decodeSnapshot(data []byte, zeroCopy bool) (*graph.Instance, *index.Index, error) {
	ver, err := fileVersion(data, Magic)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: not a snapshot (bad magic)")
	}
	switch ver {
	case VersionVarint:
		return decodeSnapshotV1(data)
	case VersionAligned:
		payloads, err := readAligned(data, Magic, "snapshot")
		if err != nil {
			return nil, nil, err
		}
		return decodeV3(payloads, zeroCopy)
	default:
		return nil, nil, fmt.Errorf("snap: unsupported snapshot format version %d (want %d or %d)", ver, VersionVarint, VersionAligned)
	}
}

// decodeSnapshotV1 is the legacy varint decoder.
func decodeSnapshotV1(data []byte) (*graph.Instance, *index.Index, error) {
	payloads, err := readSections(data, Magic, VersionVarint, "snapshot")
	if err != nil {
		return nil, nil, err
	}
	for _, id := range requiredSections {
		if _, ok := payloads[id]; !ok {
			return nil, nil, fmt.Errorf("snap: missing required section %d", id)
		}
	}
	in, err := decodeInstance(payloads)
	if err != nil {
		return nil, nil, err
	}
	postings, err := decodeIndex(payloads[secIndex])
	if err != nil {
		return nil, nil, err
	}
	ix, err := index.FromRaw(in, postings)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: %w", err)
	}
	return in, ix, nil
}

// --- encoding ---

type encoder struct{ bytes.Buffer }

func (e *encoder) uint(v uint64) { e.Write(binary.AppendUvarint(nil, v)) }
func (e *encoder) int(v int)     { e.uint(uint64(v)) }
func (e *encoder) byte1(b byte)  { e.WriteByte(b) }
func (e *encoder) bool(b bool) {
	if b {
		e.WriteByte(1)
	} else {
		e.WriteByte(0)
	}
}
func (e *encoder) str(s string) { e.uint(uint64(len(s))); e.WriteString(s) }
func (e *encoder) f64(f float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
	e.Write(b[:])
}
func (e *encoder) nid(v graph.NID) {
	// NoNID (-1) → 0; valid nodes are biased by one.
	e.uint(uint64(int64(v) + 1))
}
func (e *encoder) id(v dict.ID) {
	if v == dict.NoID {
		e.uint(0)
		return
	}
	e.uint(uint64(v) + 1)
}

func encodeDict(r *graph.Raw) *bytes.Buffer {
	var e encoder
	e.int(len(r.Strings))
	for _, s := range r.Strings {
		e.str(s)
	}
	return &e.Buffer
}

func encodeMeta(r *graph.Raw) *bytes.Buffer {
	var e encoder
	e.byte1(byte(r.Lang))
	e.bool(r.KeepStopwords)
	e.int(len(r.DictID))
	e.int(r.NComp)
	s := r.Stats
	for _, v := range []int{
		s.Users, s.SocialEdges, s.Documents, s.Fragments, s.Tags,
		s.KeywordOccurrences, s.DistinctKeywords, s.Comments, s.Posts,
		s.Nodes, s.Edges, s.OntologyTriples, s.Components,
	} {
		e.int(v)
	}
	e.f64(s.AvgSocialDegree)
	return &e.Buffer
}

func encodeNodes(r *graph.Raw) *bytes.Buffer {
	var e encoder
	for v := range r.DictID {
		e.id(r.DictID[v])
		e.byte1(byte(r.Kind[v]))
		e.nid(r.Parent[v])
		e.uint(uint64(r.Depth[v]))
		e.uint(uint64(int64(r.DocOf[v]) + 1)) // -1 → 0
		e.id(r.NodeName[v])
		e.uint(uint64(int64(r.Comp[v]) + 1)) // -1 → 0
		e.int(len(r.Keywords[v]))
		for _, k := range r.Keywords[v] {
			e.id(k)
		}
	}
	return &e.Buffer
}

func encodeGraph(r *graph.Raw) *bytes.Buffer {
	var e encoder
	for v := range r.Out {
		e.int(len(r.Out[v]))
		for _, edge := range r.Out[v] {
			e.nid(edge.To)
			e.id(edge.Prop)
			e.f64(edge.W)
		}
	}
	for _, w := range r.TotalW {
		e.f64(w)
	}
	return &e.Buffer
}

func encodeMatrix(r *graph.Raw) *bytes.Buffer {
	var e encoder
	for _, p := range r.MatrixRowPtr {
		e.uint(uint64(p))
	}
	e.int(len(r.MatrixCol))
	for _, c := range r.MatrixCol {
		e.uint(uint64(c))
	}
	for _, v := range r.MatrixVal {
		e.f64(v)
	}
	return &e.Buffer
}

func encodeEntities(r *graph.Raw) *bytes.Buffer {
	var e encoder
	for _, lst := range [][]graph.NID{r.Users, r.DocRoots, r.TagList} {
		e.int(len(lst))
		for _, v := range lst {
			e.nid(v)
		}
	}
	for _, ti := range r.TagInfos {
		e.nid(ti.Subject)
		e.nid(ti.Author)
		e.id(ti.Keyword)
		e.id(ti.Type)
	}
	e.int(len(r.Comments))
	for _, c := range r.Comments {
		e.nid(c.Comment)
		e.nid(c.Target)
		e.id(c.Prop)
	}
	e.int(len(r.Posts))
	for _, p := range r.Posts {
		e.nid(p.Doc)
		e.nid(p.User)
	}
	e.int(len(r.KwFreqKeys))
	for i, k := range r.KwFreqKeys {
		e.id(k)
		e.uint(uint64(r.KwFreqCounts[i]))
	}
	return &e.Buffer
}

func encodeOntology(r *graph.Raw) *bytes.Buffer {
	var e encoder
	e.int(len(r.Triples))
	for _, t := range r.Triples {
		e.id(t.S)
		e.id(t.P)
		e.id(t.O)
		if t.W == 1 {
			e.byte1(1)
		} else {
			e.byte1(0)
			e.f64(t.W)
		}
	}
	return &e.Buffer
}

func encodeIndex(postings []index.RawPosting) *bytes.Buffer {
	var e encoder
	e.int(len(postings))
	for _, p := range postings {
		e.id(p.Kw)
		e.int(len(p.Events))
		for _, ev := range p.Events {
			e.nid(ev.Frag)
			e.nid(ev.Src)
			e.byte1(byte(ev.Type))
		}
	}
	return &e.Buffer
}

// --- decoding ---

// decoder reads the primitive encodings with a sticky error and hard
// bounds checks, so truncated or corrupt payloads surface as errors.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// count reads a length prefix and guards it against the remaining bytes
// (each element takes at least min bytes), preventing huge allocations
// from corrupt headers.
func (d *decoder) count(min int) int {
	v := d.uint()
	if d.err != nil {
		return 0
	}
	if remaining := len(d.data) - d.pos; v > uint64(remaining/min+1) {
		d.fail("implausible count %d at offset %d (%d bytes left)", v, d.pos, remaining)
		return 0
	}
	return int(v)
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail("truncated byte at offset %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail("truncated float at offset %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

func (d *decoder) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.pos+n > len(d.data) {
		d.fail("truncated string at offset %d", d.pos)
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) nid() graph.NID {
	v := d.uint()
	if v == 0 {
		return graph.NoNID
	}
	if v > uint64(math.MaxInt32) {
		d.fail("node id %d overflows", v)
		return graph.NoNID
	}
	return graph.NID(v - 1)
}

func (d *decoder) id() dict.ID {
	v := d.uint()
	if v == 0 {
		return dict.NoID
	}
	if v > uint64(math.MaxUint32) {
		d.fail("dictionary id %d overflows", v)
		return dict.NoID
	}
	return dict.ID(v - 1)
}

func decodeDict(data []byte, r *graph.Raw) error {
	d := &decoder{data: data}
	n := d.count(1)
	r.Strings = make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		r.Strings = append(r.Strings, d.str())
	}
	if d.err != nil {
		return fmt.Errorf("snap: dict section: %w", d.err)
	}
	return nil
}

func decodeMeta(data []byte, r *graph.Raw) (int, error) {
	d := &decoder{data: data}
	r.Lang = text.Lang(d.byte())
	r.KeepStopwords = d.bool()
	numNodes := int(d.uint())
	r.NComp = int(d.uint())
	for _, p := range []*int{
		&r.Stats.Users, &r.Stats.SocialEdges, &r.Stats.Documents,
		&r.Stats.Fragments, &r.Stats.Tags, &r.Stats.KeywordOccurrences,
		&r.Stats.DistinctKeywords, &r.Stats.Comments, &r.Stats.Posts,
		&r.Stats.Nodes, &r.Stats.Edges, &r.Stats.OntologyTriples,
		&r.Stats.Components,
	} {
		*p = int(d.uint())
	}
	r.Stats.AvgSocialDegree = d.f64()
	if d.err != nil {
		return 0, fmt.Errorf("snap: meta section: %w", d.err)
	}
	if r.Lang > text.None {
		return 0, fmt.Errorf("snap: meta section: unknown analyzer language %d", r.Lang)
	}
	return numNodes, nil
}

func decodeNodes(data []byte, numNodes int, r *graph.Raw) error {
	d := &decoder{data: data}
	// Every node occupies at least 8 bytes (seven varints and a kind
	// byte), bounding the allocation a corrupt node count can cause.
	if numNodes < 0 || numNodes > len(data)/8+1 {
		return fmt.Errorf("snap: nodes section: %d nodes but %d bytes", numNodes, len(data))
	}
	r.DictID = make([]dict.ID, numNodes)
	r.Kind = make([]graph.NodeKind, numNodes)
	r.Parent = make([]graph.NID, numNodes)
	r.Depth = make([]int32, numNodes)
	r.DocOf = make([]int32, numNodes)
	r.NodeName = make([]dict.ID, numNodes)
	r.Comp = make([]int32, numNodes)
	r.Keywords = make([][]dict.ID, numNodes)
	for v := 0; v < numNodes && d.err == nil; v++ {
		r.DictID[v] = d.id()
		r.Kind[v] = graph.NodeKind(d.byte())
		r.Parent[v] = d.nid()
		r.Depth[v] = int32(d.uint())
		r.DocOf[v] = int32(d.uint()) - 1
		r.NodeName[v] = d.id()
		r.Comp[v] = int32(d.uint()) - 1
		nk := d.count(1)
		if nk > 0 {
			r.Keywords[v] = make([]dict.ID, 0, nk)
			for i := 0; i < nk && d.err == nil; i++ {
				r.Keywords[v] = append(r.Keywords[v], d.id())
			}
		}
		if r.Kind[v] > graph.KindTag {
			d.fail("unknown node kind %d", r.Kind[v])
		}
	}
	if d.err != nil {
		return fmt.Errorf("snap: nodes section: %w", d.err)
	}
	return nil
}

func decodeGraph(data []byte, numNodes int, r *graph.Raw) error {
	d := &decoder{data: data}
	r.Out = make([][]graph.Edge, numNodes)
	for v := 0; v < numNodes && d.err == nil; v++ {
		deg := d.count(1)
		if deg > 0 {
			r.Out[v] = make([]graph.Edge, 0, deg)
			for i := 0; i < deg && d.err == nil; i++ {
				to := d.nid()
				prop := d.id()
				w := d.f64()
				r.Out[v] = append(r.Out[v], graph.Edge{To: to, Prop: prop, W: w})
			}
		}
	}
	r.TotalW = make([]float64, numNodes)
	for v := 0; v < numNodes && d.err == nil; v++ {
		r.TotalW[v] = d.f64()
	}
	if d.err != nil {
		return fmt.Errorf("snap: graph section: %w", d.err)
	}
	return nil
}

func decodeMatrix(data []byte, numNodes int, r *graph.Raw) error {
	d := &decoder{data: data}
	r.MatrixRowPtr = make([]int32, numNodes+1)
	for i := range r.MatrixRowPtr {
		r.MatrixRowPtr[i] = int32(d.uint())
	}
	nnz := d.count(1)
	r.MatrixCol = make([]int32, nnz)
	for i := 0; i < nnz && d.err == nil; i++ {
		r.MatrixCol[i] = int32(d.uint())
	}
	r.MatrixVal = make([]float64, nnz)
	for i := 0; i < nnz && d.err == nil; i++ {
		r.MatrixVal[i] = d.f64()
	}
	if d.err != nil {
		return fmt.Errorf("snap: matrix section: %w", d.err)
	}
	return nil
}

func decodeEntities(data []byte, r *graph.Raw) error {
	d := &decoder{data: data}
	readNIDs := func() []graph.NID {
		n := d.count(1)
		out := make([]graph.NID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			out = append(out, d.nid())
		}
		return out
	}
	r.Users = readNIDs()
	r.DocRoots = readNIDs()
	r.TagList = readNIDs()
	r.TagInfos = make([]graph.TagInfo, len(r.TagList))
	for i := range r.TagInfos {
		r.TagInfos[i] = graph.TagInfo{
			Subject: d.nid(), Author: d.nid(), Keyword: d.id(), Type: d.id(),
		}
	}
	nc := d.count(3)
	r.Comments = make([]graph.CommentEdge, 0, nc)
	for i := 0; i < nc && d.err == nil; i++ {
		r.Comments = append(r.Comments, graph.CommentEdge{Comment: d.nid(), Target: d.nid(), Prop: d.id()})
	}
	np := d.count(2)
	r.Posts = make([]graph.PostEdge, 0, np)
	for i := 0; i < np && d.err == nil; i++ {
		r.Posts = append(r.Posts, graph.PostEdge{Doc: d.nid(), User: d.nid()})
	}
	nf := d.count(2)
	r.KwFreqKeys = make([]dict.ID, 0, nf)
	r.KwFreqCounts = make([]int32, 0, nf)
	for i := 0; i < nf && d.err == nil; i++ {
		r.KwFreqKeys = append(r.KwFreqKeys, d.id())
		r.KwFreqCounts = append(r.KwFreqCounts, int32(d.uint()))
	}
	if d.err != nil {
		return fmt.Errorf("snap: entities section: %w", d.err)
	}
	return nil
}

func decodeOntology(data []byte, r *graph.Raw) error {
	d := &decoder{data: data}
	n := d.count(4)
	r.Triples = make([]rdf.Triple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		t := rdf.Triple{S: d.id(), P: d.id(), O: d.id()}
		if d.byte() == 1 {
			t.W = 1
		} else {
			t.W = d.f64()
		}
		r.Triples = append(r.Triples, t)
	}
	if d.err != nil {
		return fmt.Errorf("snap: ontology section: %w", d.err)
	}
	return nil
}

func decodeIndex(data []byte) ([]index.RawPosting, error) {
	d := &decoder{data: data}
	n := d.count(2)
	postings := make([]index.RawPosting, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		p := index.RawPosting{Kw: d.id()}
		ne := d.count(3)
		p.Events = make([]index.Event, 0, ne)
		for j := 0; j < ne && d.err == nil; j++ {
			p.Events = append(p.Events, index.Event{
				Frag: d.nid(), Src: d.nid(), Type: index.ConnType(d.byte()),
			})
		}
		postings = append(postings, p)
	}
	if d.err != nil {
		return nil, fmt.Errorf("snap: index section: %w", d.err)
	}
	return postings, nil
}
