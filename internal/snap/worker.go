// Single-shard worker loading: the memory footprint half of distributed
// shard serving.
//
// A worker process serves exactly one shard of a set. What it needs from
// the shared manifest is the substrate social proximity is defined over —
// the whole-graph transition matrix and the node→component table — plus
// the meta/layout bookkeeping; its own node rows (kind, parent, depth,
// document ordinal) arrive sliced inside its shard file, alongside the
// index slice it always had. OpenShardWorker therefore maps the manifest,
// parses and checksums only the substrate sections, and *trims* the rest
// of the mapping away (mman.Trim punches page holes), so the worker's
// mapped bytes shrink from "whole manifest + shard" to "matrix + component
// table + its own rows" — the per-process win the ROADMAP's
// distributed-shards item calls for. Per-section madvise is applied to
// what remains (random access for matrix and postings, prefetch for the
// warm-path tables).
//
// Compatibility: shard files written before the sliced sections existed
// (or legacy v1 sets) fall back to the full open — map/decode the whole
// manifest, project the shard's components — which answers identically
// and simply maps more.
package snap

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/mman"
)

// WorkerSnapshot is an opened single-shard worker view of a shard set:
// the shard's engine inputs plus the mappings backing them.
type WorkerSnapshot struct {
	// Instance is the shard's substrate: a sliced instance (matrix +
	// component table + own node rows) on the sliced path, or a component
	// projection of the full base instance on the fallback path.
	Instance *graph.Instance
	// Index is the shard's connection-index slice.
	Index *index.Index
	// Layout is the manifest's shard table; Shard this worker's ordinal.
	Layout *Layout
	Shard  int
	// Sliced reports whether the worker runs over the sliced substrate
	// (manifest node tables trimmed away) rather than the full manifest.
	Sliced bool
	// Mappings holds the live mappings (manifest first); Mode is LoadMmap
	// when at least one file stayed mapped.
	Mappings []*mman.Mapping
	Mode     LoadMode
}

// MappedBytes sums the effective sizes of the backing mappings (net of
// trimmed holes).
func (s *WorkerSnapshot) MappedBytes() int64 {
	var total int64
	for _, m := range s.Mappings {
		total += m.Size()
	}
	return total
}

// Close releases every mapping reference held by the worker snapshot.
func (s *WorkerSnapshot) Close() error {
	var first error
	for _, m := range s.Mappings {
		if err := m.Release(); err != nil && first == nil {
			first = err
		}
	}
	s.Mappings = nil
	return first
}

// OpenShardWorker opens the manifest plus one shard of a set, fully
// validated (digest, set id, ordinal, counts), for a per-shard worker
// process. With LoadMmap and a sliced shard file the manifest mapping is
// trimmed to the substrate sections; see the package comment.
func OpenShardWorker(manifestPath string, shard int, mode LoadMode) (*WorkerSnapshot, error) {
	out := &WorkerSnapshot{Shard: shard, Mode: LoadCopy}
	fail := func(err error) (*WorkerSnapshot, error) {
		out.Close()
		return nil, err
	}
	// loadFile maps or reads one file; zeroCopy reports whether the bytes
	// outlive the call (a kept mapping). Legacy and non-mappable files
	// fall back to private copies, mirroring OpenShardSet.
	loadFile := func(path, magic string) (data []byte, m *mman.Mapping, err error) {
		if mode != LoadMmap {
			data, err = os.ReadFile(path)
			return data, nil, err
		}
		mp, err := mman.Open(path)
		if err != nil {
			return nil, nil, err
		}
		ver, err := fileVersion(mp.Data(), magic)
		if err == nil && ver == VersionAligned && layoutMappable() {
			out.Mappings = append(out.Mappings, mp)
			out.Mode = LoadMmap
			return mp.Data(), mp, nil
		}
		data = append([]byte(nil), mp.Data()...)
		mp.Release()
		return data, nil, nil
	}

	mdata, mmapping, err := loadFile(manifestPath, ManifestMagic)
	if err != nil {
		return fail(err)
	}
	mver, err := fileVersion(mdata, ManifestMagic)
	if err != nil {
		return fail(fmt.Errorf("snap: not a shard-set manifest (bad magic)"))
	}

	var layout *Layout
	var sub workerSubstrate
	sliceable := mver == ShardSetVersion
	if sliceable {
		// Partial manifest parse: locate, checksum and decode only the
		// worker substrate sections. The rest of the file is bounds-checked
		// through the table but never touched.
		keep := make(map[byte]bool, len(manifestSubstrateSections))
		for _, id := range manifestSubstrateSections {
			keep[id] = true
		}
		payloads, _, err := readAlignedPick(mdata, ManifestMagic, "shard-set manifest", func(id byte) bool { return keep[id] })
		if err != nil {
			return fail(err)
		}
		for _, id := range manifestSubstrateSections {
			if _, ok := payloads[id]; !ok {
				return fail(fmt.Errorf("snap: manifest missing required section %d", id))
			}
		}
		if sub, err = decodeWorkerSubstrate(payloads, mmapping != nil); err != nil {
			return fail(err)
		}
		if layout, err = decodeLayout(payloads[secLayout], sub.raw.NComp); err != nil {
			return fail(err)
		}
	} else {
		// Legacy manifest: nothing to slice; decode it whole.
		base, lay, err := decodeManifest(mdata, false)
		if err != nil {
			return fail(err)
		}
		layout = lay
		sub.base = base
	}
	if shard < 0 || shard >= len(layout.Shards) {
		return fail(fmt.Errorf("snap: shard %d outside layout of %d shards", shard, len(layout.Shards)))
	}
	out.Layout = layout
	desc := layout.Shards[shard]

	sdata, smapping, err := loadFile(filepath.Join(filepath.Dir(manifestPath), desc.Name), ShardMagic)
	if err != nil {
		return fail(fmt.Errorf("snap: opening shard %d: %w", shard, err))
	}
	sver, err := fileVersion(sdata, ShardMagic)
	if err != nil {
		return fail(fmt.Errorf("snap: not a shard snapshot (bad magic)"))
	}
	var sum uint64
	if sver == ShardSetVersionVarint {
		h := fnv.New64a()
		h.Write(sdata)
		sum = h.Sum64()
	} else {
		sum = uint64(crc32.Checksum(sdata, castagnoli))
	}
	if sum != desc.Sum {
		return fail(fmt.Errorf("snap: shard %d (%s) digest mismatch: file does not match manifest", shard, desc.Name))
	}

	sliced := false
	if sliceable && sver == ShardSetVersion {
		spayloads, err := readAligned(sdata, ShardMagic, "shard snapshot")
		if err != nil {
			return fail(err)
		}
		sliced = true
		for _, id := range slice3Sections {
			if _, ok := spayloads[id]; !ok {
				sliced = false
				break
			}
		}
		if sliced {
			hdr, err := decodeShardHeader(spayloads[secShardHeader], layout, shard)
			if err != nil {
				return fail(err)
			}
			in, ix, err := buildSlicedShard(sub, spayloads, hdr, desc, smapping != nil)
			if err != nil {
				return fail(err)
			}
			out.Instance, out.Index, out.Sliced = in, ix, true
			// The manifest mapping now backs only the substrate sections:
			// punch the rest out and advise what remains.
			if mmapping != nil {
				trimWorkerManifest(mmapping, mdata)
			}
			if smapping != nil {
				adviseMapped(smapping, ShardMagic, "shard snapshot")
			}
			return out, nil
		}
	}

	// Fallback: unsliced shard file (or legacy container) — decode the
	// whole manifest and project the shard's components, exactly as the
	// all-shards open would.
	base := sub.base
	if base == nil {
		if base, _, err = decodeManifest(mdata, mmapping != nil); err != nil {
			return fail(err)
		}
	}
	proj, ix, err := decodeShard(sdata, base, layout, shard, smapping != nil)
	if err != nil {
		return fail(err)
	}
	out.Instance, out.Index = proj, ix
	if mmapping != nil {
		adviseMapped(mmapping, ManifestMagic, "shard-set manifest")
	}
	if smapping != nil {
		adviseMapped(smapping, ShardMagic, "shard snapshot")
	}
	return out, nil
}

// workerSubstrate carries the partial-manifest decode: either the sliced
// worker inputs (v3) or a fully decoded base instance (legacy).
type workerSubstrate struct {
	raw    graph.Raw // meta only: NComp, Stats, analyzer config
	comp   []int32
	rowPtr []int32
	col    []int32
	val    []float64
	nn     int

	base *graph.Instance // legacy fallback
}

// decodeWorkerSubstrate decodes the substrate sections a sliced worker
// needs from the manifest's picked payloads.
func decodeWorkerSubstrate(payloads map[byte][]byte, zeroCopy bool) (workerSubstrate, error) {
	var s workerSubstrate
	nn, err := decodeMeta(payloads[secMeta], &s.raw)
	if err != nil {
		return s, err
	}
	s.nn = nn
	g := &loader{payloads: payloads, zeroCopy: zeroCopy}
	s.comp = loadI32s[int32](g, sec3NodeComp, "node components")
	s.rowPtr = loadI32s[int32](g, sec3MatRowPtr, "matrix row pointers")
	s.col = loadI32s[int32](g, sec3MatCol, "matrix columns")
	s.val = loadF64s(g, sec3MatVal, "matrix values")
	if g.err != nil {
		return s, g.err
	}
	return s, nil
}

// buildSlicedShard assembles the sliced worker instance and its index
// slice from the shard file's payloads.
func buildSlicedShard(sub workerSubstrate, spayloads map[byte][]byte, hdr shardHeader, desc ShardDesc, zeroCopy bool) (*graph.Instance, *index.Index, error) {
	g := &loader{payloads: spayloads, zeroCopy: zeroCopy}
	nids := loadI32s[graph.NID](g, sec3SliceNIDs, "sliced nodes")
	parents := loadI32s[graph.NID](g, sec3SliceParent, "sliced parents")
	depths := loadI32s[int32](g, sec3SliceDepth, "sliced depths")
	docOfs := loadI32s[int32](g, sec3SliceDocOf, "sliced documents")
	var kinds []graph.NodeKind
	if kb := spayloads[sec3SliceKind]; zeroCopy {
		kinds = unsafeKinds(kb)
	} else {
		kinds = make([]graph.NodeKind, len(kb))
		for i, b := range kb {
			kinds[i] = graph.NodeKind(b)
		}
	}
	if g.err != nil {
		return nil, nil, g.err
	}
	stats := sub.raw.Stats
	numDocs := stats.Documents
	stats.Documents = desc.Docs
	stats.Components = len(hdr.comps)
	stats.Tags = 0
	for _, k := range kinds {
		if k == graph.KindTag {
			stats.Tags++
		}
	}
	in, err := graph.FromSliced(graph.SlicedConfig{
		NumNodes:     sub.nn,
		Comp:         sub.comp,
		NComp:        sub.raw.NComp,
		MatrixRowPtr: sub.rowPtr,
		MatrixCol:    sub.col,
		MatrixVal:    sub.val,
		Comps:        hdr.comps,
		NIDs:         nids,
		Kind:         kinds,
		Parent:       parents,
		Depth:        depths,
		DocOf:        docOfs,
		NumDocs:      numDocs,
		Stats:        stats,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("snap: shard slice: %w", err)
	}
	ix, err := indexFromPayloads(in, spayloads, "shard snapshot", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	if got := ix.NumEvents(); got != hdr.events || hdr.events != desc.Events {
		return nil, nil, fmt.Errorf("snap: sliced shard has %d events, header says %d, manifest %d", got, hdr.events, desc.Events)
	}
	return in, ix, nil
}

// trimWorkerManifest punches every non-substrate section out of a sliced
// worker's manifest mapping and advises the remainder: the mapping keeps
// the header/table plus matrix, component table, meta and layout.
func trimWorkerManifest(m *mman.Mapping, data []byte) {
	spans, tableEnd, err := parseAlignedTable(data, ManifestMagic, "shard-set manifest")
	if err != nil {
		return
	}
	keepIDs := make(map[byte]bool, len(manifestSubstrateSections))
	for _, id := range manifestSubstrateSections {
		keepIDs[id] = true
	}
	keep := []mman.Range{{Off: 0, Len: tableEnd}}
	for _, sp := range spans {
		if keepIDs[sp.id] {
			keep = append(keep, mman.Range{Off: sp.off, Len: sp.len})
		}
	}
	m.Trim(keep)
	for _, sp := range spans {
		if !keepIDs[sp.id] {
			continue
		}
		if a := sectionAdvice(sp.id); a != mman.AdviseNormal {
			_ = m.Advise(mman.Range{Off: sp.off, Len: sp.len}, a)
		}
	}
}
