// Worker-host loading: the memory footprint half of distributed shard
// serving.
//
// A worker process serves one or more co-hosted shards of a set. What it
// needs from the shared manifest is the substrate social proximity is
// defined over — the whole-graph transition matrix and the
// node→component table — plus the meta/layout bookkeeping; each hosted
// shard's own node rows (kind, parent, depth, document ordinal) arrive
// sliced inside its shard file, alongside the index slice it always had.
// OpenWorkerHost therefore maps the manifest ONCE, parses and checksums
// only the substrate sections, builds every hosted shard's sliced
// instance over that one substrate, and *trims* the rest of the mapping
// away (mman.Trim punches page holes): hosting N shards costs one
// substrate mapping plus N shard files, not N× the substrate. Per-section
// madvise is applied to what remains (random access for matrix and
// postings, prefetch for the warm-path tables).
//
// Integrity: VerifyEager checksums every payload during the open (the
// historical behaviour, kept for all single-shard compatibility paths);
// VerifyLazy defers the memory-bandwidth passes — manifest substrate
// section CRCs, shard-file digests, shard section CRCs — to a background
// collector surfaced through WaitVerify/VerifyErr (see verify.go).
//
// Compatibility: shard files written before the sliced sections existed
// (or legacy v1 sets) fall back to the full open — map/decode the whole
// manifest, project each hosted shard's components — which answers
// identically and simply maps more.
package snap

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/mman"
)

// WorkerSnapshot is an opened worker-host view of a shard set: the hosted
// shards' engine inputs plus the mappings backing them.
type WorkerSnapshot struct {
	// Instance/Index are the first hosted shard's inputs (the whole view
	// for a single-shard worker); Instances/Indexes hold every hosted
	// shard in Shards order, sharing one substrate on the sliced path.
	Instance  *graph.Instance
	Index     *index.Index
	Instances []*graph.Instance
	Indexes   []*index.Index
	// Layout is the manifest's shard table; Shard the first hosted
	// ordinal, Shards every hosted ordinal in hosted order.
	Layout *Layout
	Shard  int
	Shards []int
	// Sliced reports whether the host runs over the sliced substrate
	// (manifest node tables trimmed away) rather than the full manifest.
	Sliced bool
	// Mappings holds the live mappings (manifest first); Mode is LoadMmap
	// when at least one file stayed mapped.
	Mappings []*mman.Mapping
	Mode     LoadMode

	// verify collects the integrity checks a VerifyLazy open deferred
	// (nil after an eager open: everything already verified).
	verify *DeferredVerify
}

// MappedBytes sums the effective sizes of the backing mappings (net of
// trimmed holes).
func (s *WorkerSnapshot) MappedBytes() int64 {
	var total int64
	for _, m := range s.Mappings {
		total += m.Size()
	}
	return total
}

// WaitVerify blocks until any deferred integrity checks complete and
// returns the first failure (nil immediately after an eager open).
func (s *WorkerSnapshot) WaitVerify() error {
	if s.verify == nil {
		return nil
	}
	return s.verify.Wait()
}

// VerifyErr reports, without blocking, any deferred-verification failure
// found so far (always nil after an eager open).
func (s *WorkerSnapshot) VerifyErr() error {
	if s.verify == nil {
		return nil
	}
	return s.verify.Err()
}

// Close releases every mapping reference held by the worker snapshot,
// first waiting out any deferred verification still reading them.
func (s *WorkerSnapshot) Close() error {
	if s.verify != nil {
		_ = s.verify.Wait()
	}
	var first error
	for _, m := range s.Mappings {
		if err := m.Release(); err != nil && first == nil {
			first = err
		}
	}
	s.Mappings = nil
	return first
}

// OpenShardWorker opens the manifest plus one shard of a set, fully
// validated (digest, set id, ordinal, counts), for a per-shard worker
// process. It is OpenWorkerHost for a single shard with eager
// verification — the historical single-shard contract.
func OpenShardWorker(manifestPath string, shard int, mode LoadMode) (*WorkerSnapshot, error) {
	return OpenWorkerHost(manifestPath, []int{shard}, mode, VerifyEager)
}

// OpenWorkerHost opens the manifest plus a set of co-hosted shards for
// one worker process: one substrate mapping shared by every hosted
// shard's sliced instance. See the package comment for the trimming and
// verification behaviour.
func OpenWorkerHost(manifestPath string, shards []int, mode LoadMode, verify VerifyMode) (*WorkerSnapshot, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("snap: worker host needs at least one shard")
	}
	seen := make(map[int]bool, len(shards))
	for _, s := range shards {
		if seen[s] {
			return nil, fmt.Errorf("snap: shard %d hosted twice", s)
		}
		seen[s] = true
	}
	out := &WorkerSnapshot{Shard: shards[0], Shards: append([]int(nil), shards...), Mode: LoadCopy}
	var dv *DeferredVerify
	if verify == VerifyLazy {
		dv = &DeferredVerify{}
		out.verify = dv
	}
	fail := func(err error) (*WorkerSnapshot, error) {
		out.Close() // waits out deferred verification before unmapping
		return nil, err
	}
	// loadFile maps or reads one file; zeroCopy reports whether the bytes
	// outlive the call (a kept mapping). Legacy and non-mappable files
	// fall back to private copies, mirroring OpenShardSet.
	loadFile := func(path, magic string) (data []byte, m *mman.Mapping, err error) {
		if mode != LoadMmap {
			data, err = os.ReadFile(path)
			return data, nil, err
		}
		mp, err := mman.Open(path)
		if err != nil {
			return nil, nil, err
		}
		ver, err := fileVersion(mp.Data(), magic)
		if err == nil && ver == VersionAligned && layoutMappable() {
			out.Mappings = append(out.Mappings, mp)
			out.Mode = LoadMmap
			return mp.Data(), mp, nil
		}
		data = append([]byte(nil), mp.Data()...)
		mp.Release()
		return data, nil, nil
	}

	mdata, mmapping, err := loadFile(manifestPath, ManifestMagic)
	if err != nil {
		return fail(err)
	}
	mver, err := fileVersion(mdata, ManifestMagic)
	if err != nil {
		return fail(fmt.Errorf("snap: not a shard-set manifest (bad magic)"))
	}

	var layout *Layout
	var sub workerSubstrate
	sliceable := mver == ShardSetVersion
	if sliceable {
		// Partial manifest parse: locate, checksum and decode only the
		// worker substrate sections. The rest of the file is bounds-checked
		// through the table but never touched.
		keep := make(map[byte]bool, len(manifestSubstrateSections))
		for _, id := range manifestSubstrateSections {
			keep[id] = true
		}
		payloads, _, err := readAlignedPickDeferred(mdata, ManifestMagic, "shard-set manifest", func(id byte) bool { return keep[id] }, dv)
		if err != nil {
			return fail(err)
		}
		for _, id := range manifestSubstrateSections {
			if _, ok := payloads[id]; !ok {
				return fail(fmt.Errorf("snap: manifest missing required section %d", id))
			}
		}
		if sub, err = decodeWorkerSubstrate(payloads, mmapping != nil); err != nil {
			return fail(err)
		}
		if layout, err = decodeLayout(payloads[secLayout], sub.raw.NComp); err != nil {
			return fail(err)
		}
	} else {
		// Legacy manifest: nothing to slice; decode it whole.
		base, lay, err := decodeManifest(mdata, false)
		if err != nil {
			return fail(err)
		}
		layout = lay
		sub.base = base
	}
	for _, s := range shards {
		if s < 0 || s >= len(layout.Shards) {
			return fail(fmt.Errorf("snap: shard %d outside layout of %d shards", s, len(layout.Shards)))
		}
	}
	out.Layout = layout

	// Load and digest-check every hosted shard file before committing to
	// the sliced or fallback build: mixing is not worth the complexity, so
	// one unsliced (or legacy) shard sends the whole host down the
	// full-manifest fallback.
	type openedShard struct {
		desc     ShardDesc
		data     []byte
		mapping  *mman.Mapping
		payloads map[byte][]byte
	}
	opened := make([]openedShard, len(shards))
	allSliced := sliceable
	for i, shard := range shards {
		desc := layout.Shards[shard]
		sdata, smapping, err := loadFile(filepath.Join(filepath.Dir(manifestPath), desc.Name), ShardMagic)
		if err != nil {
			return fail(fmt.Errorf("snap: opening shard %d: %w", shard, err))
		}
		sver, err := fileVersion(sdata, ShardMagic)
		if err != nil {
			return fail(fmt.Errorf("snap: not a shard snapshot (bad magic)"))
		}
		digest := func() error {
			var sum uint64
			if sver == ShardSetVersionVarint {
				h := fnv.New64a()
				h.Write(sdata)
				sum = h.Sum64()
			} else {
				sum = uint64(crc32.Checksum(sdata, castagnoli))
			}
			if sum != desc.Sum {
				return fmt.Errorf("snap: shard %d (%s) digest mismatch: file does not match manifest", shard, desc.Name)
			}
			return nil
		}
		if dv != nil {
			dv.spawn(digest)
		} else if err := digest(); err != nil {
			return fail(err)
		}
		o := openedShard{desc: desc, data: sdata, mapping: smapping}
		if sliceable && sver == ShardSetVersion {
			spayloads, _, err := readAlignedPickDeferred(sdata, ShardMagic, "shard snapshot", nil, dv)
			if err != nil {
				return fail(err)
			}
			o.payloads = spayloads
			for _, id := range slice3Sections {
				if _, ok := spayloads[id]; !ok {
					allSliced = false
					break
				}
			}
		} else {
			allSliced = false
		}
		opened[i] = o
	}

	if allSliced {
		out.Instances = make([]*graph.Instance, len(shards))
		out.Indexes = make([]*index.Index, len(shards))
		for i, shard := range shards {
			o := opened[i]
			hdr, err := decodeShardHeader(o.payloads[secShardHeader], layout, shard)
			if err != nil {
				return fail(err)
			}
			in, ix, err := buildSlicedShard(sub, o.payloads, hdr, o.desc, o.mapping != nil)
			if err != nil {
				return fail(err)
			}
			out.Instances[i], out.Indexes[i] = in, ix
			if o.mapping != nil {
				adviseMapped(o.mapping, ShardMagic, "shard snapshot")
			}
		}
		out.Instance, out.Index, out.Sliced = out.Instances[0], out.Indexes[0], true
		// The manifest mapping now backs only the substrate sections:
		// punch the rest out and advise what remains.
		if mmapping != nil {
			trimWorkerManifest(mmapping, mdata)
		}
		return out, nil
	}

	// Fallback: an unsliced shard file (or legacy container) — decode the
	// whole manifest and project each hosted shard's components, exactly
	// as the all-shards open would.
	base := sub.base
	if base == nil {
		if base, _, err = decodeManifest(mdata, mmapping != nil); err != nil {
			return fail(err)
		}
	}
	out.Instances = make([]*graph.Instance, len(shards))
	out.Indexes = make([]*index.Index, len(shards))
	for i, shard := range shards {
		o := opened[i]
		proj, ix, err := decodeShard(o.data, base, layout, shard, o.mapping != nil)
		if err != nil {
			return fail(err)
		}
		out.Instances[i], out.Indexes[i] = proj, ix
		if o.mapping != nil {
			adviseMapped(o.mapping, ShardMagic, "shard snapshot")
		}
	}
	out.Instance, out.Index = out.Instances[0], out.Indexes[0]
	if mmapping != nil {
		adviseMapped(mmapping, ManifestMagic, "shard-set manifest")
	}
	return out, nil
}

// workerSubstrate carries the partial-manifest decode: either the sliced
// worker inputs (v3) or a fully decoded base instance (legacy).
type workerSubstrate struct {
	raw    graph.Raw // meta only: NComp, Stats, analyzer config
	comp   []int32
	rowPtr []int32
	col    []int32
	val    []float64
	nn     int

	base *graph.Instance // legacy fallback
}

// decodeWorkerSubstrate decodes the substrate sections a sliced worker
// needs from the manifest's picked payloads.
func decodeWorkerSubstrate(payloads map[byte][]byte, zeroCopy bool) (workerSubstrate, error) {
	var s workerSubstrate
	nn, err := decodeMeta(payloads[secMeta], &s.raw)
	if err != nil {
		return s, err
	}
	s.nn = nn
	g := &loader{payloads: payloads, zeroCopy: zeroCopy}
	s.comp = loadI32s[int32](g, sec3NodeComp, "node components")
	s.rowPtr = loadI32s[int32](g, sec3MatRowPtr, "matrix row pointers")
	s.col = loadI32s[int32](g, sec3MatCol, "matrix columns")
	s.val = loadF64s(g, sec3MatVal, "matrix values")
	if g.err != nil {
		return s, g.err
	}
	return s, nil
}

// buildSlicedShard assembles the sliced worker instance and its index
// slice from the shard file's payloads.
func buildSlicedShard(sub workerSubstrate, spayloads map[byte][]byte, hdr shardHeader, desc ShardDesc, zeroCopy bool) (*graph.Instance, *index.Index, error) {
	g := &loader{payloads: spayloads, zeroCopy: zeroCopy}
	nids := loadI32s[graph.NID](g, sec3SliceNIDs, "sliced nodes")
	parents := loadI32s[graph.NID](g, sec3SliceParent, "sliced parents")
	depths := loadI32s[int32](g, sec3SliceDepth, "sliced depths")
	docOfs := loadI32s[int32](g, sec3SliceDocOf, "sliced documents")
	var kinds []graph.NodeKind
	if kb := spayloads[sec3SliceKind]; zeroCopy {
		kinds = unsafeKinds(kb)
	} else {
		kinds = make([]graph.NodeKind, len(kb))
		for i, b := range kb {
			kinds[i] = graph.NodeKind(b)
		}
	}
	if g.err != nil {
		return nil, nil, g.err
	}
	stats := sub.raw.Stats
	numDocs := stats.Documents
	stats.Documents = desc.Docs
	stats.Components = len(hdr.comps)
	stats.Tags = 0
	for _, k := range kinds {
		if k == graph.KindTag {
			stats.Tags++
		}
	}
	in, err := graph.FromSliced(graph.SlicedConfig{
		NumNodes:     sub.nn,
		Comp:         sub.comp,
		NComp:        sub.raw.NComp,
		MatrixRowPtr: sub.rowPtr,
		MatrixCol:    sub.col,
		MatrixVal:    sub.val,
		Comps:        hdr.comps,
		NIDs:         nids,
		Kind:         kinds,
		Parent:       parents,
		Depth:        depths,
		DocOf:        docOfs,
		NumDocs:      numDocs,
		Stats:        stats,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("snap: shard slice: %w", err)
	}
	ix, err := indexFromPayloads(in, spayloads, "shard snapshot", zeroCopy)
	if err != nil {
		return nil, nil, err
	}
	if got := ix.NumEvents(); got != hdr.events || hdr.events != desc.Events {
		return nil, nil, fmt.Errorf("snap: sliced shard has %d events, header says %d, manifest %d", got, hdr.events, desc.Events)
	}
	return in, ix, nil
}

// trimWorkerManifest punches every non-substrate section out of a sliced
// worker's manifest mapping and advises the remainder: the mapping keeps
// the header/table plus matrix, component table, meta and layout.
func trimWorkerManifest(m *mman.Mapping, data []byte) {
	spans, tableEnd, err := parseAlignedTable(data, ManifestMagic, "shard-set manifest")
	if err != nil {
		return
	}
	keepIDs := make(map[byte]bool, len(manifestSubstrateSections))
	for _, id := range manifestSubstrateSections {
		keepIDs[id] = true
	}
	keep := []mman.Range{{Off: 0, Len: tableEnd}}
	for _, sp := range spans {
		if keepIDs[sp.id] {
			keep = append(keep, mman.Range{Off: sp.off, Len: sp.len})
		}
	}
	m.Trim(keep)
	for _, sp := range spans {
		if !keepIDs[sp.id] {
			continue
		}
		if a := sectionAdvice(sp.id); a != mman.AdviseNormal {
			_ = m.Advise(mman.Range{Off: sp.off, Len: sp.len}, a)
		}
	}
}
