package snap

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/score"
	"s3/internal/text"
)

// build freezes a spec and its index the way the public API does.
func build(t testing.TB, spec graph.Spec, an text.Analyzer) (*graph.Instance, *index.Index) {
	t.Helper()
	in, err := graph.BuildSpec(spec, an)
	if err != nil {
		t.Fatal(err)
	}
	return in, index.Build(in)
}

// roundTrip writes and re-reads a snapshot.
func roundTrip(t testing.TB, in *graph.Instance, ix *index.Index) (*graph.Instance, *index.Index, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, in, ix); err != nil {
		t.Fatalf("write: %v", err)
	}
	in2, ix2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return in2, ix2, buf.Bytes()
}

// searchAll runs a small query battery and returns a printable transcript
// of every result (URIs and exact score-interval bits), so two instances
// can be compared for byte-for-byte equal search behaviour.
func searchAll(t testing.TB, in *graph.Instance, ix *index.Index) string {
	t.Helper()
	eng := core.NewEngine(in, ix)
	var out bytes.Buffer
	kws := in.SortedKeywordsByFrequency()
	// A rare, a mid-frequency and a common keyword.
	var picks []string
	for _, i := range []int{0, len(kws) / 2, len(kws) - 1} {
		if len(kws) > 0 {
			picks = append(picks, in.Dict().String(kws[i]))
		}
	}
	users := in.Users()
	for s := 0; s < len(users) && s < 4; s++ {
		for _, kw := range picks {
			rs, _, err := eng.Search(users[s], []string{kw}, core.Options{
				K: 5, Params: score.Params{Gamma: 1.5, Eta: 0.8},
			})
			if err != nil {
				t.Fatalf("search(%s, %q): %v", in.URIOf(users[s]), kw, err)
			}
			for _, r := range rs {
				fmt.Fprintf(&out, "%s %q %s %d %x %x\n",
					in.URIOf(users[s]), kw, r.URI, r.Doc,
					math.Float64bits(r.Lower), math.Float64bits(r.Upper))
			}
		}
	}
	return out.String()
}

// handSpec exercises every construct the snapshot must carry: ontology
// triples, sub-relationships, nested documents, comments, tags on tags
// and keyword-less endorsements.
func handSpec() graph.Spec {
	return graph.Spec{
		Ontology: [][3]string{
			{"m.s", "rdfs:subClassOf", "degre"},
			{"phd", "rdfs:subClassOf", "degre"},
		},
		Users: []string{"u:alice", "u:bob", "u:carol"},
		Social: []graph.SocialSpec{
			{From: "u:alice", To: "u:bob", W: 0.8},
			{From: "u:bob", To: "u:alice", W: 0.5},
			{From: "u:bob", To: "u:carol", W: 0.9, Prop: "app:follows"},
		},
		Docs: []*doc.Node{
			{URI: "d:post", Name: "post", Children: []*doc.Node{
				{Name: "title", Text: "My M.S. graduation"},
				{Name: "body", Text: "Running towards a degree at the university"},
			}},
			{URI: "d:reply", Name: "reply", Text: "Congrats on the degree, a PhD is next"},
		},
		Posts:    []graph.PostSpec{{Doc: "d:post", User: "u:bob"}},
		Comments: []graph.CommentSpec{{Comment: "d:reply", Target: "d:post.1", Prop: "app:repliesTo"}},
		Tags: []graph.TagSpec{
			{URI: "t:1", Subject: "d:post.1", Author: "u:carol", Keyword: "degree"},
			{URI: "t:2", Subject: "t:1", Author: "u:alice", Keyword: "academia"},
			{URI: "t:3", Subject: "t:1", Author: "u:bob"}, // endorsement
		},
	}
}

func TestRoundTripHandInstance(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	in2, ix2, raw := roundTrip(t, in, ix)

	if in.Stats() != in2.Stats() {
		t.Errorf("stats changed:\noriginal: %+v\nrestored: %+v", in.Stats(), in2.Stats())
	}
	if got, want := searchAll(t, in2, ix2), searchAll(t, in, ix); got != want {
		t.Errorf("search results changed after round-trip:\noriginal:\n%s\nrestored:\n%s", want, got)
	}

	// The restored instance must re-serialise to the identical bytes:
	// the format is canonical.
	var buf2 bytes.Buffer
	if err := Write(&buf2, in2, ix2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Errorf("snapshot is not canonical: %d bytes vs %d after round-trip", len(raw), buf2.Len())
	}

	// Semantic layer must survive: the extension of "degree" includes the
	// stemmed subclasses.
	ext := in2.Ontology().ExtStr("degre")
	if len(ext) < 2 {
		t.Errorf("ontology lost: Ext(degre) = %d entries", len(ext))
	}
	// The analyzer must survive: English stemming maps "running" → "run".
	if got := in2.Analyzer().Keywords("running"); len(got) != 1 || got[0] != "run" {
		t.Errorf("analyzer lost: Keywords(running) = %v", got)
	}
}

func TestRoundTripGeneratedInstances(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("twitter/seed=%d", seed), func(t *testing.T) {
			o := datagen.DefaultTwitterOptions()
			o.Users, o.Tweets, o.Seed = 80, 300, seed
			spec, _ := datagen.Twitter(o)
			checkRoundTrip(t, spec, text.Analyzer{Lang: text.None})
		})
	}
	t.Run("vodkaster", func(t *testing.T) {
		o := datagen.DefaultVodkasterOptions()
		o.Users, o.Movies = 60, 40
		checkRoundTrip(t, datagen.Vodkaster(o), text.Analyzer{Lang: text.None})
	})
	t.Run("yelp", func(t *testing.T) {
		o := datagen.DefaultYelpOptions()
		o.Users, o.Businesses = 60, 40
		checkRoundTrip(t, datagen.Yelp(o), text.Analyzer{Lang: text.None})
	})
}

func checkRoundTrip(t *testing.T, spec graph.Spec, an text.Analyzer) {
	t.Helper()
	in, ix := build(t, spec, an)
	in2, ix2, raw := roundTrip(t, in, ix)
	if in.Stats() != in2.Stats() {
		t.Errorf("stats changed:\noriginal: %+v\nrestored: %+v", in.Stats(), in2.Stats())
	}
	if got, want := searchAll(t, in2, ix2), searchAll(t, in, ix); got != want {
		t.Error("search results changed after round-trip")
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, in2, ix2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Error("snapshot is not canonical after round-trip")
	}
}

func TestReadRejectsCorruptSnapshots(t *testing.T) {
	in, ix := build(t, handSpec(), text.Analyzer{Lang: text.English})
	var buf bytes.Buffer
	if err := Write(&buf, in, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("X3SNAP"), good[6:]...),
		"bad version": func() []byte {
			b := bytes.Clone(good)
			b[6], b[7] = 0xff, 0xff
			return b
		}(),
		"truncated header": good[:8],
		"truncated body":   good[:len(good)/2],
	}
	for name, data := range cases {
		if _, _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read accepted a corrupt snapshot", name)
		}
	}

	// Flipping a count byte deep in the body must yield an error, not a
	// panic or a silently wrong instance.
	for i := 10; i < len(good); i += 97 {
		b := bytes.Clone(good)
		b[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("byte %d: Read panicked: %v", i, r)
				}
			}()
			in2, ix2, err := Read(bytes.NewReader(b))
			if err == nil && (in2 == nil || ix2 == nil) {
				t.Errorf("byte %d: nil result without error", i)
			}
		}()
	}
}
