// Shard-set persistence: a component-partitioned instance stored as one
// shared manifest plus one small snapshot per shard.
//
// The manifest carries the substrate every shard needs verbatim — the
// dictionary, node tables, network adjacency, normalised transition
// matrix, entity lists and the saturated ontology (all the sections of a
// plain snapshot except the connection index) — plus a layout table
// describing the shard files. The substrate must be shared because the
// §3.4 all-paths social proximity is defined over the whole network
// graph: per-shard proximity over a trimmed graph would change scores.
// What scales with content and partitions cleanly by the §5.2 component
// grain is the connection index, so each shard file carries exactly its
// components' index slice.
//
// Every shard file embeds the manifest's set id (a digest of the
// substrate payloads) and its ordinal, and the manifest records each
// shard file's digest, so a mixed-up, stale or corrupted set is rejected
// on read instead of silently serving wrong answers.
//
//	manifest:  "S3SHMF" + version + sections {dict, meta, nodes, graph,
//	           matrix, entities, ontology, layout}
//	shard i:   "S3SHRD" + version + sections {shard header, index slice}
package snap

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"s3/internal/graph"
	"s3/internal/index"
)

// ManifestMagic starts a shard-set manifest file.
const ManifestMagic = "S3SHMF"

// ShardMagic starts a per-shard snapshot file.
const ShardMagic = "S3SHRD"

// ShardSetVersionVarint is the legacy varint shard-set format version
// (readable, no longer written).
const ShardSetVersionVarint = 1

// ShardSetVersion is the current shard-set format version (manifest and
// shard files move in lockstep): the aligned layout of the snapshot's
// version 3, so shard-set substrates and index slices can be
// memory-mapped exactly like single snapshots.
const ShardSetVersion = VersionAligned

// sliceShardTables gates the sliced node-table sections of shard files.
// Always on in production writers; tests flip it to reproduce sets
// written before the sections existed (the unsliced compatibility path).
var sliceShardTables = true

// manifestSections lists the ids a manifest reader requires.
var manifestSections = []byte{secDict, secMeta, secNodes, secGraph, secMatrix, secEntities, secOntology, secLayout}

// ShardDesc describes one shard file from the manifest's point of view.
type ShardDesc struct {
	// Name is the shard file's name, relative to the manifest (no
	// directory components).
	Name string
	// Comps is the sorted set of component ids the shard owns.
	Comps []int32
	// Docs and Events record the shard's document count and index event
	// count, cross-checked against the shard payload on read.
	Docs   int
	Events int
	// Sum is the digest of the shard file's bytes: CRC-32C (in the low 32
	// bits) for aligned sets, FNV-64a for legacy v1 sets — the same
	// hardware-accelerated checksum the aligned container uses per
	// section, so validating a mapped shard costs one memory-bandwidth
	// pass.
	Sum uint64
}

// Layout is the manifest's shard table.
type Layout struct {
	// SetID is the FNV-64a digest of the substrate section payloads; every
	// shard file of the set embeds it.
	SetID  uint64
	Shards []ShardDesc
}

// ShardSet is a fully loaded and validated shard set: the base instance
// plus, per shard, its component projection and index slice.
type ShardSet struct {
	Base    *graph.Instance
	Layout  *Layout
	Shards  []*graph.Instance
	Indexes []*index.Index
}

// WriteShardSet partitions the instance's connection index by the given
// component groups and writes the manifest plus one file per shard.
// names[i] is recorded in the layout as the file name of shard i (it must
// be a bare file name; readers resolve it relative to the manifest).
// The groups must cover every component exactly once.
func WriteShardSet(manifest io.Writer, shards []io.Writer, names []string, in *graph.Instance, ix *index.Index, parts [][]int32) error {
	if len(shards) != len(parts) || len(names) != len(parts) {
		return fmt.Errorf("snap: %d shard writers / %d names for %d component groups", len(shards), len(names), len(parts))
	}
	if len(parts) == 0 {
		return fmt.Errorf("snap: shard set needs at least one shard")
	}
	owner := make([]int, in.NumComponents())
	for i := range owner {
		owner[i] = -1
	}
	for s, comps := range parts {
		for _, c := range comps {
			if c < 0 || int(c) >= len(owner) {
				return fmt.Errorf("snap: component %d outside instance of %d components", c, len(owner))
			}
			if owner[c] != -1 {
				return fmt.Errorf("snap: component %d assigned to shards %d and %d", c, owner[c], s)
			}
			owner[c] = s
		}
	}
	for c, s := range owner {
		if s == -1 {
			return fmt.Errorf("snap: component %d assigned to no shard", c)
		}
	}

	rawIn := in.Raw()
	subs := alignedInstanceSections(rawIn)
	setID := fnv.New64a()
	for _, s := range subs {
		setID.Write(s.data)
	}

	// Sliced node tables: per shard, the sorted nodes of its components.
	// Ascending NID order falls out of the single component-table pass.
	sliceNIDs := make([][]graph.NID, len(parts))
	for v, c := range rawIn.Comp {
		if c >= 0 {
			sliceNIDs[owner[c]] = append(sliceNIDs[owner[c]], graph.NID(v))
		}
	}

	layout := Layout{SetID: setID.Sum64()}
	raw := ix.Raw()
	for s, comps := range parts {
		if err := validateShardName(names[s]); err != nil {
			return err
		}
		desc := ShardDesc{Name: names[s], Comps: append([]int32(nil), comps...)}
		ownedComp := make(map[int32]struct{}, len(comps))
		for _, c := range comps {
			ownedComp[c] = struct{}{}
		}
		for _, r := range in.DocRoots() {
			if _, ok := ownedComp[in.CompOf(r)]; ok {
				desc.Docs++
			}
		}
		var postings []index.RawPosting
		for _, p := range raw {
			var evs []index.Event
			for _, ev := range p.Events {
				if _, ok := ownedComp[in.CompOf(ev.Frag)]; ok {
					evs = append(evs, ev)
				}
			}
			if len(evs) > 0 {
				postings = append(postings, index.RawPosting{Kw: p.Kw, Events: evs})
				desc.Events += len(evs)
			}
		}

		var hdr encoder
		hdr.uint(layout.SetID)
		hdr.int(s)
		hdr.int(len(parts))
		hdr.int(len(desc.Comps))
		for _, c := range desc.Comps {
			e := uint64(c)
			hdr.uint(e)
		}
		hdr.int(desc.Docs)
		hdr.int(desc.Events)

		// The shard's sliced node tables: the rows a worker process needs
		// beyond the manifest's matrix and component table.
		nids := sliceNIDs[s]
		kinds := make([]byte, len(nids))
		parents := make([]graph.NID, len(nids))
		depths := make([]int32, len(nids))
		docOfs := make([]int32, len(nids))
		for j, v := range nids {
			kinds[j] = byte(rawIn.Kind[v])
			parents[j] = rawIn.Parent[v]
			depths[j] = rawIn.Depth[v]
			docOfs[j] = rawIn.DocOf[v]
		}

		var file bytes.Buffer
		secs := append([]asec{{secShardHeader, false, hdr.Bytes()}}, alignedIndexSections(rawIn.Comp, postings)...)
		if sliceShardTables {
			secs = append(secs,
				asec{sec3SliceNIDs, true, encI32s(nids)},
				asec{sec3SliceKind, true, kinds},
				asec{sec3SliceParent, true, encI32s(parents)},
				asec{sec3SliceDepth, true, encI32s(depths)},
				asec{sec3SliceDocOf, true, encI32s(docOfs)},
			)
		}
		if err := writeAligned(&file, ShardMagic, ShardSetVersion, secs); err != nil {
			return err
		}
		desc.Sum = uint64(crc32.Checksum(file.Bytes(), castagnoli))
		if _, err := shards[s].Write(file.Bytes()); err != nil {
			return fmt.Errorf("snap: writing shard %d: %w", s, err)
		}
		layout.Shards = append(layout.Shards, desc)
	}

	var lay encoder
	lay.uint(layout.SetID)
	lay.int(len(layout.Shards))
	for _, d := range layout.Shards {
		lay.str(d.Name)
		lay.int(len(d.Comps))
		for _, c := range d.Comps {
			lay.uint(uint64(c))
		}
		lay.int(d.Docs)
		lay.int(d.Events)
		lay.uint(d.Sum)
	}
	// secLayout (9) sorts before the raw substrate ids (32+), secMeta (2)
	// before both; splice it into canonical id order.
	msecs := append([]asec{subs[0], {secLayout, false, lay.Bytes()}}, subs[1:]...)
	return writeAligned(manifest, ManifestMagic, ShardSetVersion, msecs)
}

// WriteShardSetFiles persists a shard set to disk: the manifest at
// manifestPath plus one "<manifest base name>.shard-<i>" file per
// component group next to it (the names readers resolve relative to the
// manifest). Close errors are surfaced — a shard set is only reported
// written once every file has been flushed. Returns the shard file
// paths.
func WriteShardSetFiles(manifestPath string, in *graph.Instance, ix *index.Index, parts [][]int32) ([]string, error) {
	dir, base := filepath.Dir(manifestPath), filepath.Base(manifestPath)
	names := make([]string, len(parts))
	paths := make([]string, len(parts))
	writers := make([]io.Writer, len(parts))
	var files []*os.File
	closeAll := func() error {
		var first error
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("snap: closing %s: %w", f.Name(), err)
			}
		}
		files = nil
		return first
	}
	for s := range parts {
		names[s] = fmt.Sprintf("%s.shard-%d", base, s)
		paths[s] = filepath.Join(dir, names[s])
		f, err := os.Create(paths[s])
		if err != nil {
			closeAll()
			return nil, err
		}
		files = append(files, f)
		writers[s] = f
	}
	mf, err := os.Create(manifestPath)
	if err != nil {
		closeAll()
		return nil, err
	}
	files = append(files, mf)
	if err := WriteShardSet(mf, writers, names, in, ix, parts); err != nil {
		closeAll()
		return nil, err
	}
	if err := closeAll(); err != nil {
		return nil, err
	}
	return paths, nil
}

// validateShardName rejects names a reader could be tricked into
// resolving outside the manifest's directory.
func validateShardName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("snap: invalid shard file name %q", name)
	}
	for _, r := range name {
		if r == '/' || r == '\\' {
			return fmt.Errorf("snap: shard file name %q contains a path separator", name)
		}
	}
	return nil
}

// ReadManifest parses a shard-set manifest: the shared base instance and
// the shard layout. The instance is decoded into private memory; for the
// zero-copy mapped variant see OpenShardSet.
func ReadManifest(r io.Reader) (*graph.Instance, *Layout, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: reading manifest: %w", err)
	}
	return decodeManifest(data, false)
}

// decodeManifest dispatches on the manifest's container version. With
// zeroCopy (aligned manifests only) the instance views the payload bytes.
func decodeManifest(data []byte, zeroCopy bool) (*graph.Instance, *Layout, error) {
	ver, err := fileVersion(data, ManifestMagic)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: not a shard-set manifest (bad magic)")
	}
	var (
		in  *graph.Instance
		lay []byte
	)
	switch ver {
	case ShardSetVersionVarint:
		payloads, err := readSections(data, ManifestMagic, ShardSetVersionVarint, "shard-set manifest")
		if err != nil {
			return nil, nil, err
		}
		for _, id := range manifestSections {
			if _, ok := payloads[id]; !ok {
				return nil, nil, fmt.Errorf("snap: manifest missing required section %d", id)
			}
		}
		if in, err = decodeInstance(payloads); err != nil {
			return nil, nil, err
		}
		lay = payloads[secLayout]
	case ShardSetVersion:
		payloads, err := readAligned(data, ManifestMagic, "shard-set manifest")
		if err != nil {
			return nil, nil, err
		}
		if _, ok := payloads[secLayout]; !ok {
			return nil, nil, fmt.Errorf("snap: manifest missing required section %d", secLayout)
		}
		s, err := substrateFromPayloads(payloads, "shard-set manifest", zeroCopy)
		if err != nil {
			return nil, nil, err
		}
		if in, err = instanceFromV3(s, zeroCopy); err != nil {
			return nil, nil, err
		}
		lay = payloads[secLayout]
	default:
		return nil, nil, fmt.Errorf("snap: unsupported shard-set manifest format version %d (want %d or %d)", ver, ShardSetVersionVarint, ShardSetVersion)
	}
	layout, err := decodeLayout(lay, in.NumComponents())
	if err != nil {
		return nil, nil, err
	}
	return in, layout, nil
}

// decodeLayout parses and fully validates the layout section against the
// base instance's component count.
func decodeLayout(data []byte, nComp int) (*Layout, error) {
	d := &decoder{data: data}
	layout := &Layout{SetID: d.uint()}
	n := d.count(2)
	seen := make(map[int32]int)
	for s := 0; s < n && d.err == nil; s++ {
		desc := ShardDesc{Name: d.str()}
		nc := d.count(1)
		for i := 0; i < nc && d.err == nil; i++ {
			c := d.uint()
			if c > uint64(math.MaxInt32) {
				d.fail("component id %d overflows", c)
				break
			}
			desc.Comps = append(desc.Comps, int32(c))
		}
		desc.Docs = int(d.uint())
		desc.Events = int(d.uint())
		desc.Sum = d.uint()
		layout.Shards = append(layout.Shards, desc)
		if d.err == nil {
			if err := validateShardName(desc.Name); err != nil {
				return nil, err
			}
		}
		for _, c := range desc.Comps {
			if c < 0 || c >= int32(nComp) {
				return nil, fmt.Errorf("snap: manifest assigns unknown component %d to shard %d", c, s)
			}
			if prev, dup := seen[c]; dup {
				return nil, fmt.Errorf("snap: manifest assigns component %d to shards %d and %d", c, prev, s)
			}
			seen[c] = s
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("snap: layout section: %w", d.err)
	}
	if len(layout.Shards) == 0 {
		return nil, fmt.Errorf("snap: manifest describes no shards")
	}
	if len(seen) != nComp {
		return nil, fmt.Errorf("snap: manifest covers %d of %d components", len(seen), nComp)
	}
	return layout, nil
}

// ReadShard parses and validates shard i of a set against its manifest:
// digest, set id, ordinal, component assignment and counts must all line
// up. It returns the shard's component projection of the base instance
// and its index slice.
func ReadShard(r io.Reader, base *graph.Instance, layout *Layout, i int) (*graph.Instance, *index.Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: reading shard %d: %w", i, err)
	}
	return decodeShard(data, base, layout, i, false)
}

// decodeShard dispatches on the shard file's container version. With
// zeroCopy (aligned shards only) the index slice views the payload bytes.
func decodeShard(data []byte, base *graph.Instance, layout *Layout, i int, zeroCopy bool) (*graph.Instance, *index.Index, error) {
	if i < 0 || i >= len(layout.Shards) {
		return nil, nil, fmt.Errorf("snap: shard %d outside layout of %d shards", i, len(layout.Shards))
	}
	desc := layout.Shards[i]
	ver, err := fileVersion(data, ShardMagic)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: not a shard snapshot (bad magic)")
	}
	var sum uint64
	if ver == ShardSetVersionVarint {
		h := fnv.New64a()
		h.Write(data)
		sum = h.Sum64()
	} else {
		sum = uint64(crc32.Checksum(data, castagnoli))
	}
	if sum != desc.Sum {
		return nil, nil, fmt.Errorf("snap: shard %d (%s) digest mismatch: file does not match manifest", i, desc.Name)
	}
	var payloads map[byte][]byte
	switch ver {
	case ShardSetVersionVarint:
		if payloads, err = readSections(data, ShardMagic, ShardSetVersionVarint, "shard snapshot"); err != nil {
			return nil, nil, err
		}
		for _, id := range []byte{secShardHeader, secIndex} {
			if _, ok := payloads[id]; !ok {
				return nil, nil, fmt.Errorf("snap: shard %d missing required section %d", i, id)
			}
		}
	case ShardSetVersion:
		if payloads, err = readAligned(data, ShardMagic, "shard snapshot"); err != nil {
			return nil, nil, err
		}
		if _, ok := payloads[secShardHeader]; !ok {
			return nil, nil, fmt.Errorf("snap: shard %d missing required section %d", i, secShardHeader)
		}
	default:
		return nil, nil, fmt.Errorf("snap: unsupported shard format version %d (want %d or %d)", ver, ShardSetVersionVarint, ShardSetVersion)
	}

	hdr, err := decodeShardHeader(payloads[secShardHeader], layout, i)
	if err != nil {
		return nil, nil, err
	}
	comps, docs, events := hdr.comps, hdr.docs, hdr.events

	proj, err := base.ProjectComponents(comps)
	if err != nil {
		return nil, nil, fmt.Errorf("snap: shard %d: %w", i, err)
	}
	if got := len(proj.DocRoots()); got != docs || docs != desc.Docs {
		return nil, nil, fmt.Errorf("snap: shard %d has %d documents, header says %d, manifest %d", i, got, docs, desc.Docs)
	}
	var ix *index.Index
	if ver == ShardSetVersionVarint {
		postings, err := decodeIndex(payloads[secIndex])
		if err != nil {
			return nil, nil, err
		}
		got := 0
		for _, p := range postings {
			for _, ev := range p.Events {
				if ev.Frag < 0 || int(ev.Frag) >= base.NumNodes() {
					return nil, nil, fmt.Errorf("snap: shard %d event fragment %d outside instance", i, ev.Frag)
				}
				got++
			}
		}
		if got != events {
			return nil, nil, fmt.Errorf("snap: shard %d has %d events, header says %d", i, got, events)
		}
		if ix, err = index.FromRaw(proj, postings); err != nil {
			return nil, nil, fmt.Errorf("snap: shard %d: %w", i, err)
		}
	} else {
		if ix, err = indexFromPayloads(proj, payloads, "shard snapshot", zeroCopy); err != nil {
			return nil, nil, err
		}
	}
	if zeroCopy {
		// Trusted path: the shard digest binds the file to its manifest,
		// so component ownership is the writer's responsibility; only the
		// counts are cross-checked.
		if got := ix.NumEvents(); got != events || events != desc.Events {
			return nil, nil, fmt.Errorf("snap: shard %d has %d events, header says %d, manifest %d", i, got, events, desc.Events)
		}
		return proj, ix, nil
	}
	// Copying path: every event must live in an owned component, and the
	// total must match the header and manifest (FromRaw already bounded
	// the fragments).
	got := 0
	for _, kw := range ix.Keywords() {
		for _, ev := range ix.Events(kw) {
			if !proj.OwnsComponent(base.CompOf(ev.Frag)) {
				return nil, nil, fmt.Errorf("snap: shard %d carries an event of foreign component %d", i, base.CompOf(ev.Frag))
			}
			got++
		}
	}
	if got != events || events != desc.Events {
		return nil, nil, fmt.Errorf("snap: shard %d has %d events, header says %d, manifest %d", i, got, events, desc.Events)
	}
	return proj, ix, nil
}

// shardHeader is a parsed per-shard header, cross-checked against the
// manifest layout.
type shardHeader struct {
	comps        []int32
	docs, events int
}

// decodeShardHeader parses shard i's header section and validates it
// against the layout: set id, ordinal, shard count and component list
// must all line up.
func decodeShardHeader(payload []byte, layout *Layout, i int) (shardHeader, error) {
	desc := layout.Shards[i]
	d := &decoder{data: payload}
	setID := d.uint()
	ordinal := int(d.uint())
	count := int(d.uint())
	nc := d.count(1)
	comps := make([]int32, 0, nc)
	for j := 0; j < nc && d.err == nil; j++ {
		comps = append(comps, int32(d.uint()))
	}
	docs := int(d.uint())
	events := int(d.uint())
	if d.err != nil {
		return shardHeader{}, fmt.Errorf("snap: shard %d header: %w", i, d.err)
	}
	if setID != layout.SetID {
		return shardHeader{}, fmt.Errorf("snap: shard %d belongs to set %016x, manifest is %016x", i, setID, layout.SetID)
	}
	if ordinal != i || count != len(layout.Shards) {
		return shardHeader{}, fmt.Errorf("snap: file is shard %d of %d, expected shard %d of %d", ordinal, count, i, len(layout.Shards))
	}
	if len(comps) != len(desc.Comps) {
		return shardHeader{}, fmt.Errorf("snap: shard %d owns %d components, manifest says %d", i, len(comps), len(desc.Comps))
	}
	for j, c := range comps {
		if c != desc.Comps[j] {
			return shardHeader{}, fmt.Errorf("snap: shard %d component list diverges from manifest at %d", i, j)
		}
	}
	return shardHeader{comps: comps, docs: docs, events: events}, nil
}

// ReadShardSet loads a complete shard set: the manifest and every shard
// file, in layout order, fully validated.
func ReadShardSet(manifest io.Reader, shards []io.Reader) (*ShardSet, error) {
	base, layout, err := ReadManifest(manifest)
	if err != nil {
		return nil, err
	}
	if len(shards) != len(layout.Shards) {
		return nil, fmt.Errorf("snap: %d shard readers for a %d-shard set", len(shards), len(layout.Shards))
	}
	set := &ShardSet{Base: base, Layout: layout}
	for i, r := range shards {
		proj, ix, err := ReadShard(r, base, layout, i)
		if err != nil {
			return nil, err
		}
		set.Shards = append(set.Shards, proj)
		set.Indexes = append(set.Indexes, ix)
	}
	return set, nil
}
