package topks

import "container/heap"

// MergeTopK combines per-shard top-k lists into the global top-k. Each
// input list must already be sorted best-first under less (a strict
// total order, e.g. score-interval upper bound descending with ties
// broken by item id); the output is the k best elements of the union in
// that same order.
//
// The merge is the fan-in half of partition-and-merge retrieval: when
// every shard contributes its own k best answers, the k best answers of
// the union are guaranteed to be among the k·N merged inputs, so the
// merged top-k provably equals the top-k a single engine would compute
// over the unpartitioned collection (given the same per-item scores and
// the same tie-breaking order).
func MergeTopK[T any](k int, lists [][]T, less func(a, b T) bool) []T {
	m := Merger[T]{less: less}
	return m.Merge(k, lists)
}

// Merger is a reusable MergeTopK: one instance amortizes the cursor-heap
// and output allocations across merges, so a steady-state caller (one
// merge per lockstep round) allocates nothing. The slice returned by
// Merge is valid only until the next Merge on the same Merger — callers
// that keep it longer must copy. A Merger is not safe for concurrent
// use.
type Merger[T any] struct {
	less func(a, b T) bool
	h    mergeHeap[T]
	out  []T
}

// NewMerger returns a Merger ordering elements by less (the same
// contract as MergeTopK's).
func NewMerger[T any](less func(a, b T) bool) *Merger[T] {
	return &Merger[T]{less: less}
}

// Merge is MergeTopK over the Merger's scratch. List exhaustion pops the
// cursor manually (swap-to-end plus sift-down) rather than through
// heap.Pop, whose interface return would box the cursor on every
// exhausted list.
func (m *Merger[T]) Merge(k int, lists [][]T) []T {
	if k <= 0 {
		return nil
	}
	h := &m.h
	h.less = m.less
	h.entries = h.entries[:0]
	for _, l := range lists {
		if len(l) > 0 {
			h.entries = append(h.entries, mergeCursor[T]{list: l})
		}
	}
	heap.Init(h)
	out := m.out[:0]
	for len(h.entries) > 0 && len(out) < k {
		c := &h.entries[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			n := len(h.entries) - 1
			h.Swap(0, n)
			h.entries = h.entries[:n]
			if n > 0 {
				heap.Fix(h, 0)
			}
		} else {
			heap.Fix(h, 0)
		}
	}
	m.out = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// mergeCursor walks one sorted input list.
type mergeCursor[T any] struct {
	list []T
	pos  int
}

type mergeHeap[T any] struct {
	entries []mergeCursor[T]
	less    func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int { return len(h.entries) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	return h.less(h.entries[i].list[h.entries[i].pos], h.entries[j].list[h.entries[j].pos])
}
func (h *mergeHeap[T]) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap[T]) Push(x any)    { h.entries = append(h.entries, x.(mergeCursor[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}

// ResultBefore is the canonical merge order for Result lists: score
// interval upper bound descending, ties by item id ascending — the same
// order collect uses, so merged sharded answers line up with unsharded
// ones.
func ResultBefore(a, b Result) bool {
	if a.Upper != b.Upper {
		return a.Upper > b.Upper
	}
	return a.Item < b.Item
}

// MergeResults merges per-shard TopkS answers into the global top-k by
// score interval.
func MergeResults(k int, lists [][]Result) []Result {
	return MergeTopK(k, lists, ResultBefore)
}
