package topks

import (
	"math/rand"
	"sort"
	"testing"

	"s3/internal/graph"
)

func intLess(a, b int) bool { return a < b }

func TestMergeTopKBasics(t *testing.T) {
	got := MergeTopK(4, [][]int{{1, 4, 9}, {2, 3}, {}, {5}}, intLess)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("MergeTopK returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeTopK returned %v, want %v", got, want)
		}
	}
	if out := MergeTopK(0, [][]int{{1}}, intLess); out != nil {
		t.Errorf("k=0 returned %v", out)
	}
	if out := MergeTopK(3, nil, intLess); out != nil {
		t.Errorf("no lists returned %v", out)
	}
	// Fewer elements than k: everything comes back, still sorted.
	if out := MergeTopK(10, [][]int{{3, 7}, {1}}, intLess); len(out) != 3 || out[0] != 1 || out[2] != 7 {
		t.Errorf("undersized merge returned %v", out)
	}
}

// Merging per-shard top-k lists must equal the top-k of the union — the
// property the sharded search relies on.
func TestMergeTopKEqualsGlobalTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		var all []Result
		lists := make([][]Result, n)
		for s := 0; s < n; s++ {
			m := rng.Intn(12)
			for i := 0; i < m; i++ {
				up := float64(rng.Intn(5)) / 4 // deliberate ties
				r := Result{Item: graph.NID(len(all)), Upper: up, Lower: up / 2}
				all = append(all, r)
				lists[s] = append(lists[s], r)
			}
			sort.Slice(lists[s], func(i, j int) bool { return ResultBefore(lists[s][i], lists[s][j]) })
			if len(lists[s]) > k {
				lists[s] = lists[s][:k]
			}
		}
		sort.Slice(all, func(i, j int) bool { return ResultBefore(all[i], all[j]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := MergeResults(k, lists)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Item != want[i].Item || got[i].Upper != want[i].Upper {
				t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
