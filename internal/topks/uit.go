// Package topks implements the baseline the paper compares against (§5.1):
// TopkS, the network-aware top-k search of Maniu & Cautis [18] over the
// user-item-tag (UIT) model.
//
// The UIT model is deliberately poorer than S3: items are atomic (no
// fragments), tags carry no semantics (no keyword extension), and the
// social score follows the single best path between seeker and tagger
// rather than aggregating all paths. The conversion from an S3 instance
// follows §5.1: every document that (transitively) comments on another —
// a retweet, reply or later review — is merged into the base item it
// comments on; every keyword of the merged content becomes a
// (author, item, keyword) triple, and keyword tags contribute triples too.
package topks

import (
	"sort"

	"s3/internal/dict"
	"s3/internal/graph"
)

// UIT is the converted user-item-tag instance. Users and items are
// identified by their S3 node ids (items by the base document's root).
type UIT struct {
	in *graph.Instance

	// itemOf maps every document root to its base item (itself, unless it
	// transitively comments on another document).
	itemOf map[graph.NID]graph.NID
	items  []graph.NID

	// triples per user: the (item, keyword) pairs the user "tagged".
	byUser map[graph.NID][]ItemKw
	// count of distinct taggers per (item, keyword).
	taggers map[itemKwKey]int
	// items per keyword (inverted index).
	byKw map[dict.ID][]graph.NID
	// maximum tagger count per keyword (normalises the content score).
	maxTaggers map[dict.ID]int
}

// ItemKw is one (item, keyword) tag of a user.
type ItemKw struct {
	Item graph.NID
	Kw   dict.ID
}

type itemKwKey struct {
	item graph.NID
	kw   dict.ID
}

// Convert builds the UIT view of an S3 instance (the paper's I′1/I′2/I′3
// constructions).
func Convert(in *graph.Instance) *UIT {
	u := &UIT{
		in:         in,
		itemOf:     make(map[graph.NID]graph.NID),
		byUser:     make(map[graph.NID][]ItemKw),
		taggers:    make(map[itemKwKey]int),
		byKw:       make(map[dict.ID][]graph.NID),
		maxTaggers: make(map[dict.ID]int),
	}

	// Comment edges at document-root grain: root of comment → root of
	// target.
	commentTarget := make(map[graph.NID]graph.NID)
	for _, ce := range in.Comments() {
		commentTarget[ce.Comment] = in.DocRootOf(ce.Target)
	}
	var base func(root graph.NID, seen map[graph.NID]bool) graph.NID
	base = func(root graph.NID, seen map[graph.NID]bool) graph.NID {
		t, ok := commentTarget[root]
		if !ok || seen[root] {
			return root
		}
		seen[root] = true
		return base(t, seen)
	}
	itemSet := make(map[graph.NID]struct{})
	for _, root := range in.DocRoots() {
		b := base(root, make(map[graph.NID]bool))
		u.itemOf[root] = b
		itemSet[b] = struct{}{}
	}
	for it := range itemSet {
		u.items = append(u.items, it)
	}
	sort.Slice(u.items, func(i, j int) bool { return u.items[i] < u.items[j] })

	// Document content: every keyword of a document becomes a triple
	// (author, item, keyword) for each author of the document.
	authors := make(map[graph.NID][]graph.NID) // doc root → posting users
	for _, p := range in.Posts() {
		root := in.DocRootOf(p.Doc)
		authors[root] = append(authors[root], p.User)
	}
	seenTriple := make(map[[3]int64]struct{})
	addTriple := func(user, item graph.NID, kw dict.ID) {
		key := [3]int64{int64(user), int64(item), int64(kw)}
		if _, dup := seenTriple[key]; dup {
			return
		}
		seenTriple[key] = struct{}{}
		u.byUser[user] = append(u.byUser[user], ItemKw{Item: item, Kw: kw})
		ik := itemKwKey{item: item, kw: kw}
		if u.taggers[ik] == 0 {
			u.byKw[kw] = append(u.byKw[kw], item)
		}
		u.taggers[ik]++
		if u.taggers[ik] > u.maxTaggers[kw] {
			u.maxTaggers[kw] = u.taggers[ik]
		}
	}
	for _, root := range in.DocRoots() {
		item := u.itemOf[root]
		var nodes []graph.NID
		nodes = in.SubtreeOf(root, nodes)
		for _, auth := range authors[root] {
			for _, n := range nodes {
				for _, kw := range in.KeywordsOf(n) {
					addTriple(auth, item, kw)
				}
			}
		}
	}
	// Keyword tags: the tag author tagged the base item of the tagged
	// fragment. Endorsements carry no keyword and are invisible to UIT.
	for _, tag := range in.Tags() {
		ti, _ := in.TagInfoOf(tag)
		if ti.Keyword == dict.NoID {
			continue
		}
		frag := tag
		for in.KindOf(frag) == graph.KindTag {
			info, _ := in.TagInfoOf(frag)
			frag = info.Subject
		}
		item := u.itemOf[in.DocRootOf(frag)]
		addTriple(ti.Author, item, ti.Keyword)
	}
	return u
}

// Instance returns the underlying S3 instance.
func (u *UIT) Instance() *graph.Instance { return u.in }

// Items returns the item ids (base document roots), sorted.
func (u *UIT) Items() []graph.NID { return u.items }

// ItemOf maps any S3 document node to its UIT item.
func (u *UIT) ItemOf(n graph.NID) (graph.NID, bool) {
	root := u.in.DocRootOf(n)
	if root == graph.NoNID {
		return graph.NoNID, false
	}
	item, ok := u.itemOf[root]
	return item, ok
}

// TriplesOf returns the (item, keyword) tags of a user.
func (u *UIT) TriplesOf(user graph.NID) []ItemKw { return u.byUser[user] }

// Taggers returns the number of distinct users that tagged item with kw.
func (u *UIT) Taggers(item graph.NID, kw dict.ID) int {
	return u.taggers[itemKwKey{item: item, kw: kw}]
}

// ItemsWithKw returns the items carrying at least one triple for kw.
func (u *UIT) ItemsWithKw(kw dict.ID) []graph.NID { return u.byKw[kw] }

// MaxTaggers returns the largest tagger count for kw over all items.
func (u *UIT) MaxTaggers(kw dict.ID) int { return u.maxTaggers[kw] }
