package topks

import "testing"

// TestMergerSteadyStateAllocs: a warm Merger (the per-search scratch the
// coordinator's round loop reuses) must not allocate per merge. Under
// -race the runtime allocates on its own, so only the op runs.
func TestMergerSteadyStateAllocs(t *testing.T) {
	lists := [][]Result{
		{{Item: 1, Upper: 0.9}, {Item: 4, Upper: 0.6}, {Item: 9, Upper: 0.2}},
		{{Item: 2, Upper: 0.8}, {Item: 3, Upper: 0.5}},
		{{Item: 7, Upper: 0.7}, {Item: 8, Upper: 0.4}, {Item: 5, Upper: 0.3}},
	}
	m := NewMerger(ResultBefore)
	if got := m.Merge(5, lists); len(got) != 5 {
		t.Fatalf("warmup merge returned %d results, want 5", len(got))
	}
	avg := testing.AllocsPerRun(200, func() {
		if got := m.Merge(5, lists); len(got) != 5 {
			t.Fatal("merge shrank")
		}
	})
	if raceEnabled {
		t.Logf("merge: %.1f allocs/op under -race (not asserted)", avg)
		return
	}
	if avg != 0 {
		t.Errorf("merge: %.1f allocs/op in steady state, want 0", avg)
	}
}
