package topks

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"s3/internal/dict"
	"s3/internal/graph"
)

// Options configure one TopkS search.
type Options struct {
	// K is the answer size.
	K int
	// Alpha blends the social and content scores:
	// score = α·social + (1−α)·content. The paper evaluates α ∈
	// {0.25, 0.5, 0.75}.
	Alpha float64
	// Epsilon is the tie-breaking margin (default 1e-12).
	Epsilon float64
}

// Result is one TopkS answer item with its score interval at stop time.
type Result struct {
	Item  graph.NID
	URI   string
	Lower float64
	Upper float64
}

// Stats reports the work of one search.
type Stats struct {
	UsersVisited int
	Candidates   int
	Elapsed      time.Duration
	// Exhausted reports whether the user frontier was fully drained
	// (no early termination fired).
	Exhausted bool
}

// Engine runs TopkS searches over a converted UIT instance. It is
// immutable and safe for concurrent use.
type Engine struct {
	uit *UIT
}

// NewEngine wraps a converted instance.
func NewEngine(uit *UIT) *Engine { return &Engine{uit: uit} }

// UIT returns the underlying converted instance.
func (e *Engine) UIT() *UIT { return e.uit }

// uitItem is one candidate item during a search.
type uitItem struct {
	id        graph.NID
	content   float64 // static content score
	social    float64 // accumulated from visited taggers
	remaining int     // query-keyword taggers not yet visited
}

// lower/upper bound the final blended score given the frontier proximity
// (every unvisited tagger has proximity ≤ frontier).
func (c *uitItem) lower(alpha float64) float64 {
	return alpha*c.social + (1-alpha)*c.content
}

func (c *uitItem) upper(alpha, frontier float64) float64 {
	return alpha*(c.social+frontier*float64(c.remaining)) + (1-alpha)*c.content
}

// userDist is the max-product Dijkstra frontier entry.
type userDist struct {
	user graph.NID
	prox float64
}

type userHeap []userDist

func (h userHeap) Len() int { return len(h) }
func (h userHeap) Less(i, j int) bool {
	if h[i].prox != h[j].prox {
		return h[i].prox > h[j].prox
	}
	return h[i].user < h[j].user
}
func (h userHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *userHeap) Push(x any)   { *h = append(*h, x.(userDist)) }
func (h *userHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search runs the TopkS algorithm: users are visited in decreasing order
// of best-single-path proximity (max-product Dijkstra over the social
// graph; this is the "shortest path" social model the paper contrasts
// with S3k's all-paths proximity). Each visited user's tags accrue to the
// social score of the items they tagged; item score intervals tighten as
// the frontier proximity drops, and the search stops as soon as the
// current top k provably dominates every other item.
func (e *Engine) Search(seeker graph.NID, keywords []dict.ID, opts Options) ([]Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if opts.K <= 0 {
		return nil, stats, fmt.Errorf("topks: k must be positive, got %d", opts.K)
	}
	if opts.Alpha < 0 || opts.Alpha > 1 {
		return nil, stats, fmt.Errorf("topks: alpha must be in [0,1], got %v", opts.Alpha)
	}
	in := e.uit.in
	if int(seeker) < 0 || int(seeker) >= in.NumNodes() || in.KindOf(seeker) != graph.KindUser {
		return nil, stats, fmt.Errorf("topks: seeker must be a user node")
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 1e-12
	}
	kwSet := make(map[dict.ID]struct{}, len(keywords))
	for _, k := range keywords {
		kwSet[k] = struct{}{}
	}

	// Candidates: items carrying any query keyword (disjunctive, as in
	// the UIT baselines); the content score is static.
	cands := make(map[graph.NID]*uitItem)
	for k := range kwSet {
		maxT := e.uit.MaxTaggers(k)
		if maxT == 0 {
			continue
		}
		for _, it := range e.uit.ItemsWithKw(k) {
			c := cands[it]
			if c == nil {
				c = &uitItem{id: it}
				cands[it] = c
			}
			t := e.uit.Taggers(it, k)
			c.content += float64(t) / float64(maxT)
			c.remaining += t
		}
	}
	stats.Candidates = len(cands)
	if len(cands) == 0 {
		stats.Elapsed = time.Since(start)
		return nil, stats, nil
	}
	list := make([]*uitItem, 0, len(cands))
	for _, c := range cands {
		list = append(list, c)
	}

	// Max-product Dijkstra over the user-user social edges.
	best := map[graph.NID]float64{seeker: 1}
	settled := make(map[graph.NID]bool)
	h := &userHeap{{user: seeker, prox: 1}}
	alpha := opts.Alpha

	// The stop test scans every candidate; with large disjunctive
	// candidate sets, testing after every settled user would dominate the
	// run time, so amortise it over a growing stride.
	stopStride := 1 + len(list)/64

	for h.Len() > 0 {
		ud := heap.Pop(h).(userDist)
		if settled[ud.user] {
			continue
		}
		settled[ud.user] = true
		stats.UsersVisited++

		for _, ik := range e.uit.TriplesOf(ud.user) {
			if _, ok := kwSet[ik.Kw]; !ok {
				continue
			}
			if c := cands[ik.Item]; c != nil {
				c.social += ud.prox
				c.remaining--
			}
		}

		// Relax neighbours first so that `frontier` can drop to the next
		// heap maximum for the stop test.
		for _, edge := range in.OutEdges(ud.user) {
			if in.KindOf(edge.To) != graph.KindUser {
				continue
			}
			p := ud.prox * edge.W
			if p > best[edge.To] && !settled[edge.To] {
				best[edge.To] = p
				heap.Push(h, userDist{user: edge.To, prox: p})
			}
		}
		if stats.UsersVisited%stopStride == 0 {
			next := 0.0
			if h.Len() > 0 {
				next = (*h)[0].prox
			}
			if canStop(list, opts.K, alpha, next, eps) {
				stats.Elapsed = time.Since(start)
				return e.collect(list, opts.K, alpha, next, eps), stats, nil
			}
		}
	}
	stats.Exhausted = true
	stats.Elapsed = time.Since(start)
	return e.collect(list, opts.K, alpha, 0, eps), stats, nil
}

// canStop reports whether the current k best lower bounds dominate every
// other candidate's upper bound under the given frontier proximity.
func canStop(list []*uitItem, k int, alpha, frontier, eps float64) bool {
	if len(list) <= k {
		// All candidates will be returned; only their relative order can
		// change, which does not affect the answer set.
		return frontier == 0
	}
	lowers := make([]float64, 0, len(list))
	for _, c := range list {
		lowers = append(lowers, c.lower(alpha))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(lowers)))
	kth := lowers[k-1]

	above := 0
	for _, c := range list {
		if c.lower(alpha) >= kth-eps {
			above++
			continue
		}
		if c.upper(alpha, frontier) > kth+eps {
			return false
		}
	}
	// More than k candidates may sit at the k-th lower bound (ties); they
	// are interchangeable only if their bounds are closed.
	if above > k {
		for _, c := range list {
			if c.lower(alpha) >= kth-eps && c.upper(alpha, frontier)-c.lower(alpha) > eps {
				return false
			}
		}
	}
	return true
}

// collect returns the k best candidates by upper bound (ties by item id).
func (e *Engine) collect(list []*uitItem, k int, alpha, frontier, eps float64) []Result {
	_ = eps
	sort.Slice(list, func(i, j int) bool {
		ui, uj := list[i].upper(alpha, frontier), list[j].upper(alpha, frontier)
		if ui != uj {
			return ui > uj
		}
		return list[i].id < list[j].id
	})
	out := make([]Result, 0, k)
	for _, c := range list {
		if len(out) == k {
			break
		}
		out = append(out, Result{
			Item:  c.id,
			URI:   e.uit.in.URIOf(c.id),
			Lower: c.lower(alpha),
			Upper: c.upper(alpha, frontier),
		})
	}
	return out
}

// ExactScores computes every candidate's exact TopkS score by fully
// draining the frontier — the oracle used in tests and quality measures.
func (e *Engine) ExactScores(seeker graph.NID, keywords []dict.ID, alpha float64) map[graph.NID]float64 {
	kwSet := make(map[dict.ID]struct{}, len(keywords))
	for _, k := range keywords {
		kwSet[k] = struct{}{}
	}
	prox := e.BestPathProx(seeker)

	out := make(map[graph.NID]float64)
	for k := range kwSet {
		maxT := e.uit.MaxTaggers(k)
		if maxT == 0 {
			continue
		}
		for _, it := range e.uit.ItemsWithKw(k) {
			out[it] += (1 - alpha) * float64(e.uit.Taggers(it, k)) / float64(maxT)
		}
	}
	for user, p := range prox {
		for _, ik := range e.uit.TriplesOf(user) {
			if _, ok := kwSet[ik.Kw]; !ok {
				continue
			}
			if _, cand := out[ik.Item]; cand {
				out[ik.Item] += alpha * p
			}
		}
	}
	return out
}

// BestPathProx computes the best single-path proximity (maximum product
// of edge weights) from the seeker to every user.
func (e *Engine) BestPathProx(seeker graph.NID) map[graph.NID]float64 {
	in := e.uit.in
	best := map[graph.NID]float64{seeker: 1}
	settled := make(map[graph.NID]bool)
	h := &userHeap{{user: seeker, prox: 1}}
	for h.Len() > 0 {
		ud := heap.Pop(h).(userDist)
		if settled[ud.user] {
			continue
		}
		settled[ud.user] = true
		for _, edge := range in.OutEdges(ud.user) {
			if in.KindOf(edge.To) != graph.KindUser {
				continue
			}
			p := ud.prox * edge.W
			if p > best[edge.To] && !settled[edge.To] {
				best[edge.To] = p
				heap.Push(h, userDist{user: edge.To, prox: p})
			}
		}
	}
	return best
}
