package topks

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"s3/internal/datagen"
	"s3/internal/dict"
	"s3/internal/doc"
	"s3/internal/graph"
	"s3/internal/text"
)

func buildRandomUIT(t *testing.T, seed int64) (*graph.Instance, *UIT) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spec := datagen.RandomSpec(rng, datagen.DefaultRandomOptions())
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return in, Convert(in)
}

func kwIDs(t *testing.T, in *graph.Instance, kws ...string) []dict.ID {
	t.Helper()
	var out []dict.ID
	for _, k := range kws {
		if id, ok := in.Dict().Lookup(k); ok {
			out = append(out, id)
		}
	}
	return out
}

// Reply/comment chains merge into the base item (the paper's I′
// construction: a tweet and its retweets/replies are one item; a movie's
// comments are one item).
func TestConvertMergesCommentChains(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	for _, u := range []string{"u0", "u1", "u2"} {
		if err := b.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	must(t, b.AddDocument(&doc.Node{URI: "base", Keywords: []string{"k1"}}))
	must(t, b.AddDocument(&doc.Node{URI: "reply", Keywords: []string{"k2"}}))
	must(t, b.AddDocument(&doc.Node{URI: "reply2", Keywords: []string{"k3"}}))
	must(t, b.AddDocument(&doc.Node{URI: "other", Keywords: []string{"k1"}}))
	must(t, b.AddPost("base", "u0"))
	must(t, b.AddPost("reply", "u1"))
	must(t, b.AddPost("reply2", "u2"))
	must(t, b.AddPost("other", "u2"))
	must(t, b.AddComment("reply", "base", ""))
	must(t, b.AddComment("reply2", "reply", ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Convert(in)

	if len(u.Items()) != 2 {
		t.Fatalf("items = %d, want 2 (base + other)", len(u.Items()))
	}
	baseN, _ := in.NIDOf("base")
	replyN, _ := in.NIDOf("reply2")
	if item, _ := u.ItemOf(replyN); item != baseN {
		t.Fatalf("reply2's item = %s, want base", in.URIOf(item))
	}
	// u2's reply keyword k3 became a triple on the base item.
	k3 := kwIDs(t, in, "k3")[0]
	if u.Taggers(baseN, k3) != 1 {
		t.Fatalf("taggers(base, k3) = %d, want 1", u.Taggers(baseN, k3))
	}
	// u2 tagged both the base item (via reply2) and its own doc "other".
	u2, _ := in.NIDOf("u2")
	if len(u.TriplesOf(u2)) != 2 {
		t.Fatalf("u2 triples = %v", u.TriplesOf(u2))
	}
}

// Keyword tags become UIT triples; endorsements are invisible.
func TestConvertTags(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddUser("author"))
	must(t, b.AddUser("tagger"))
	must(t, b.AddDocument(&doc.Node{URI: "d", Children: []*doc.Node{{Name: "s"}}}))
	must(t, b.AddPost("d", "author"))
	must(t, b.AddTag("a1", "d.1", "tagger", "topic", ""))
	must(t, b.AddTag("a2", "d", "tagger", "", "")) // endorsement
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Convert(in)
	taggerN, _ := in.NIDOf("tagger")
	dN, _ := in.NIDOf("d")
	triples := u.TriplesOf(taggerN)
	if len(triples) != 1 {
		t.Fatalf("tagger triples = %v, want exactly the keyword tag", triples)
	}
	if triples[0].Item != dN {
		t.Fatalf("tag item = %s, want d", in.URIOf(triples[0].Item))
	}
}

// A comment cycle must not hang the converter.
func TestConvertCommentCycle(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	must(t, b.AddDocument(&doc.Node{URI: "a", Keywords: []string{"k"}}))
	must(t, b.AddDocument(&doc.Node{URI: "b", Keywords: []string{"k"}}))
	must(t, b.AddComment("a", "b", ""))
	must(t, b.AddComment("b", "a", ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Convert(in)
	if len(u.Items()) == 0 {
		t.Fatal("cycle collapsed to no items")
	}
}

// TopkS with early termination must return the same answer as ranking the
// exact scores (modulo exact ties).
func TestTopkSMatchesExactRanking(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in, u := buildRandomUIT(t, seed)
		e := NewEngine(u)
		seeker := in.Users()[int(seed)%len(in.Users())]
		kws := kwIDs(t, in, "kw0", "kw1")
		if len(kws) == 0 {
			continue
		}
		for _, alpha := range []float64{0.25, 0.5, 0.75} {
			for _, k := range []int{1, 3, 5} {
				got, _, err := e.Search(seeker, kws, Options{K: k, Alpha: alpha})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				exact := e.ExactScores(seeker, kws, alpha)
				want := rankExact(exact, k)
				if len(got) != len(want) {
					t.Fatalf("seed %d α=%v k=%d: got %d results, want %d", seed, alpha, k, len(got), len(want))
				}
				// The answer is a set: compare the sorted exact-score
				// sequences (early termination fixes the set, not the
				// internal order).
				gotScores := make([]float64, len(got))
				for i := range got {
					gs := exact[got[i].Item]
					gotScores[i] = gs
					if gs < got[i].Lower-1e-9 || gs > got[i].Upper+1e-9 {
						t.Fatalf("seed %d: exact score %v outside [%v, %v]", seed, gs, got[i].Lower, got[i].Upper)
					}
				}
				sort.Sort(sort.Reverse(sort.Float64Slice(gotScores)))
				for i := range gotScores {
					if math.Abs(gotScores[i]-want[i]) > 1e-9 {
						t.Fatalf("seed %d α=%v k=%d rank %d: score %v, want %v\n(set %v)",
							seed, alpha, k, i, gotScores[i], want[i], got)
					}
				}
			}
		}
	}
}

// rankExact returns the k best exact scores, descending.
func rankExact(scores map[graph.NID]float64, k int) []float64 {
	all := make([]float64, 0, len(scores))
	for _, s := range scores {
		all = append(all, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// α = 0 ranks purely by content; the social graph must not matter.
func TestAlphaZeroIgnoresSocial(t *testing.T) {
	in, u := buildRandomUIT(t, 100)
	e := NewEngine(u)
	kws := kwIDs(t, in, "kw0")
	if len(kws) == 0 {
		t.Skip("kw0 absent")
	}
	var prev []Result
	for _, seeker := range in.Users() {
		got, _, err := e.Search(seeker, kws, Options{K: 3, Alpha: 0})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(got) != len(prev) {
				t.Fatal("content-only ranking depends on seeker")
			}
			for i := range got {
				if got[i].Item != prev[i].Item {
					t.Fatalf("content-only ranking depends on seeker: %v vs %v", got[i], prev[i])
				}
			}
		}
		prev = got
	}
}

func TestSearchValidation(t *testing.T) {
	in, u := buildRandomUIT(t, 200)
	e := NewEngine(u)
	seeker := in.Users()[0]
	if _, _, err := e.Search(seeker, nil, Options{K: 0, Alpha: 0.5}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, _, err := e.Search(seeker, nil, Options{K: 1, Alpha: 2}); err == nil {
		t.Fatal("expected error for alpha out of range")
	}
	if _, _, err := e.Search(in.DocRoots()[0], nil, Options{K: 1, Alpha: 0.5}); err == nil {
		t.Fatal("expected error for non-user seeker")
	}
}

func TestNoKeywordMatches(t *testing.T) {
	in, u := buildRandomUIT(t, 300)
	e := NewEngine(u)
	seeker := in.Users()[0]
	fresh := in.Dict().Intern("never-used-keyword")
	got, stats, err := e.Search(seeker, []dict.ID{fresh}, Options{K: 3, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || stats.Candidates != 0 {
		t.Fatalf("got %v with %d candidates, want none", got, stats.Candidates)
	}
}

func TestBestPathProx(t *testing.T) {
	b := graph.NewBuilder(text.Analyzer{Lang: text.None})
	for _, u := range []string{"a", "b", "c"} {
		must(t, b.AddUser(u))
	}
	must(t, b.AddSocial("a", "b", 0.5, ""))
	must(t, b.AddSocial("b", "c", 0.5, ""))
	must(t, b.AddSocial("a", "c", 0.2, ""))
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Convert(in))
	a, _ := in.NIDOf("a")
	c, _ := in.NIDOf("c")
	prox := e.BestPathProx(a)
	// Best path a→b→c has product 0.25, beating the direct 0.2.
	if math.Abs(prox[c]-0.25) > 1e-12 {
		t.Fatalf("prox(a,c) = %v, want 0.25", prox[c])
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
