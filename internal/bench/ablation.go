package bench

import (
	"fmt"

	"s3/internal/core"
	"s3/internal/graph"
	"s3/internal/score"
)

// ProximityAblationResult compares S3k's all-paths answers with the same
// scoring pipeline under a best-single-path proximity (everything else
// fixed). Low overlap supports the paper's claim that aggregating all
// paths — not just structure or semantics — changes the answers.
type ProximityAblationResult struct {
	Intersection float64 // fraction of all-paths answers kept by best-path
	L1           float64 // normalised Spearman foot rule
	Queries      int
}

// ProximityAblation evaluates the ablation over a workload.
func ProximityAblation(d *Dataset, w Workload, params score.Params) (ProximityAblationResult, error) {
	var out ProximityAblationResult
	for _, q := range w.Queries {
		allPaths, err := d.Core.Exhaustive(q.Seeker, q.Keywords, w.ID.K, params)
		if err != nil {
			return out, err
		}
		bp := score.BestPathProximity(d.In, params, q.Seeker)
		bestPath, err := d.Core.TopKWithProximity(q.Keywords, w.ID.K, params, bp)
		if err != nil {
			return out, err
		}
		out.Intersection += Intersection(resultDocs(allPaths), resultDocs(bestPath))
		out.L1 += SpearmanL1(resultDocs(allPaths), resultDocs(bestPath))
		out.Queries++
	}
	if out.Queries > 0 {
		out.Intersection /= float64(out.Queries)
		out.L1 /= float64(out.Queries)
	}
	return out, nil
}

// StructureAblationResult compares full S3k answers with the social-blind
// degenerate mode (prox ≡ 1, LCA-style XML search) on the same queries.
type StructureAblationResult struct {
	Intersection float64
	Queries      int
}

// SocialAblation evaluates how much the social dimension changes answers.
func SocialAblation(d *Dataset, w Workload, params score.Params) (StructureAblationResult, error) {
	var out StructureAblationResult
	for _, q := range w.Queries {
		social, err := d.Core.Exhaustive(q.Seeker, q.Keywords, w.ID.K, params)
		if err != nil {
			return out, err
		}
		blind, err := d.Core.SearchContentOnly(q.Keywords, w.ID.K, params)
		if err != nil {
			return out, err
		}
		out.Intersection += Intersection(resultDocs(social), resultDocs(blind))
		out.Queries++
	}
	if out.Queries > 0 {
		out.Intersection /= float64(out.Queries)
	}
	return out, nil
}

// AnytimeCurve measures the quality-versus-budget trade-off of Theorem
// 4.3: for each iteration cap, the average fraction of the exact top-k
// that the budget-capped answer recovers.
func AnytimeCurve(d *Dataset, w Workload, params score.Params, caps []int) ([]float64, error) {
	out := make([]float64, len(caps))
	for _, q := range w.Queries {
		exact, err := d.Core.Exhaustive(q.Seeker, q.Keywords, w.ID.K, params)
		if err != nil {
			return nil, err
		}
		if len(exact) == 0 {
			continue
		}
		for ci, budget := range caps {
			res, _, err := d.Core.Search(q.Seeker, q.Keywords, core.Options{
				K: w.ID.K, Params: params, MaxIterations: budget,
			})
			if err != nil {
				return nil, err
			}
			out[ci] += Intersection(resultDocs(exact), resultDocs(res))
		}
	}
	n := float64(len(w.Queries))
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

func resultDocs(rs []core.Result) []graph.NID {
	out := make([]graph.NID, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}

// FigAblations renders the ablation study: all-paths vs best-path
// proximity, social vs social-blind ranking, and the any-time curve.
func FigAblations(d *Dataset, cfg FigureConfig) (string, error) {
	params := score.Params{Gamma: 1.5, Eta: cfg.Eta}
	id := WorkloadID{Freq: Common, L: 1, K: 10}
	w, err := BuildWorkload(d.In, id, cfg.QueriesPerWorkload, cfg.Seed+300)
	if err != nil {
		return "", err
	}

	t := &Table{
		Title:  fmt.Sprintf("Ablations on %s (workload %s, γ=1.5)", d.Name, id),
		Header: []string{"ablation", "value"},
	}
	prox, err := ProximityAblation(d, w, params)
	if err != nil {
		return "", err
	}
	t.AddRow("all-paths vs best-path: answer intersection", pct(prox.Intersection))
	t.AddRow("all-paths vs best-path: L1 distance", pct(prox.L1))

	soc, err := SocialAblation(d, w, params)
	if err != nil {
		return "", err
	}
	t.AddRow("social vs social-blind (LCA): answer intersection", pct(soc.Intersection))

	caps := []int{1, 2, 4, 8}
	curve, err := AnytimeCurve(d, w, params, caps)
	if err != nil {
		return "", err
	}
	for i, c := range caps {
		t.AddRow(fmt.Sprintf("any-time recall at %d iterations", c), pct(curve[i]))
	}
	return t.String(), nil
}
