package bench

import (
	"s3/internal/core"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/topks"
)

// SpearmanL1 computes the paper's §5.4 list distance, Spearman's foot rule
// adapted to top-k lists:
//
//	L1(τ1,τ2) = 2(k−|τ1∩τ2|)(k+1) + Σ_{i∈τ1∩τ2} |τ1(i)−τ2(i)|
//	            − Σ_{τ∈{τ1,τ2}} Σ_{i∈τ∖(τ1∩τ2)} τ(i)
//
// with τ(i) the 1-based rank of item i. The result is normalised by the
// maximum distance k(k+1) of two disjoint lists, yielding a value in
// [0, 1] (0 = identical lists), matching the percentage figures of
// Figure 8. k is taken as max(len(τ1), len(τ2)); empty-vs-empty is 0.
func SpearmanL1(t1, t2 []graph.NID) float64 {
	k := len(t1)
	if len(t2) > k {
		k = len(t2)
	}
	if k == 0 {
		return 0
	}
	rank1 := ranks(t1)
	rank2 := ranks(t2)
	inter := 0
	var common, missing float64
	for it, r1 := range rank1 {
		if r2, ok := rank2[it]; ok {
			inter++
			d := r1 - r2
			if d < 0 {
				d = -d
			}
			common += float64(d)
		} else {
			missing += float64(r1)
		}
	}
	for it, r2 := range rank2 {
		if _, ok := rank1[it]; !ok {
			missing += float64(r2)
		}
	}
	l1 := 2*float64(k-inter)*float64(k+1) + common - missing
	// The paper's formula assumes two full k-lists; with lists of unequal
	// length the normalised distance can leave [0, 1], so clamp.
	maxL1 := float64(k * (k + 1))
	if l1 < 0 {
		l1 = 0
	}
	if l1 > maxL1 {
		l1 = maxL1
	}
	return l1 / maxL1
}

func ranks(list []graph.NID) map[graph.NID]int {
	m := make(map[graph.NID]int, len(list))
	for i, it := range list {
		if _, dup := m[it]; !dup {
			m[it] = i + 1
		}
	}
	return m
}

// Intersection returns |τ1 ∩ τ2| / |τ1|: the fraction of S3k results that
// the baseline also returned (Figure 8's "intersection size"). Empty τ1
// yields 0.
func Intersection(t1, t2 []graph.NID) float64 {
	if len(t1) == 0 {
		return 0
	}
	set := make(map[graph.NID]struct{}, len(t2))
	for _, it := range t2 {
		set[it] = struct{}{}
	}
	n := 0
	for _, it := range t1 {
		if _, ok := set[it]; ok {
			n++
		}
	}
	return float64(n) / float64(len(t1))
}

// Quality holds the four §5.4 measures for one query (or averaged over a
// workload). All values are fractions in [0, 1].
type Quality struct {
	// GraphReach is the fraction of S3k candidate items that TopkS cannot
	// reach at all (no user tagged them with a query keyword — they are
	// reachable only through document-to-document links).
	GraphReach float64
	// SemReach is the ratio of candidates examined without semantic
	// expansion over candidates examined with it (high = extensions add
	// little; low = they open many documents).
	SemReach float64
	// L1 is the normalised Spearman foot rule between the two answers.
	L1 float64
	// Intersection is the fraction of S3k answers TopkS also returned.
	Intersection float64
	// Queries counts the measurements averaged into this value.
	Queries int
}

// CompareQuery runs both engines on one query and computes the §5.4
// measures. S3k answers (document fragments) are mapped to UIT items for
// comparison, as the paper does when relating the two result universes.
func CompareQuery(d *Dataset, q Query, k int, opts core.Options, alpha float64) (Quality, error) {
	var out Quality
	opts.K = k
	s3kRes, _, err := d.Core.Search(q.Seeker, q.Keywords, opts)
	if err != nil {
		return out, err
	}
	kws := d.KeywordIDs(q.Keywords)
	tkRes, _, err := d.TopkS.Search(q.Seeker, kws, topks.Options{K: k, Alpha: alpha})
	if err != nil {
		return out, err
	}

	s3kItems := make([]graph.NID, 0, len(s3kRes))
	seen := make(map[graph.NID]struct{})
	for _, r := range s3kRes {
		if item, ok := d.UIT.ItemOf(r.Doc); ok {
			if _, dup := seen[item]; !dup {
				seen[item] = struct{}{}
				s3kItems = append(s3kItems, item)
			}
		}
	}
	tkItems := make([]graph.NID, 0, len(tkRes))
	for _, r := range tkRes {
		tkItems = append(tkItems, r.Item)
	}
	out.L1 = SpearmanL1(s3kItems, tkItems)
	out.Intersection = Intersection(s3kItems, tkItems)

	// Graph reachability (§5.4): the fraction of S3k candidates that the
	// TopkS *search* cannot reach. TopkS explores outwards from the
	// seeker along user-user edges only, then looks at the visited users'
	// tags; an item is reachable iff some user with a query-keyword
	// triple on it is socially connected to the seeker. S3k additionally
	// follows document-to-document and tag links, so it reaches more.
	groups, possible, err := d.Core.KeywordGroups(q.Keywords)
	if err != nil {
		return out, err
	}
	if possible {
		reachableUsers := d.TopkS.BestPathProx(q.Seeker)
		tkReachable := make(map[graph.NID]struct{})
		for u, p := range reachableUsers {
			if p <= 0 {
				continue
			}
			for _, ik := range d.UIT.TriplesOf(u) {
				for _, kw := range kws {
					if ik.Kw == kw {
						tkReachable[ik.Item] = struct{}{}
					}
				}
			}
		}
		candItems := make(map[graph.NID]struct{})
		for _, comp := range d.Ix.CompsForGroups(groups) {
			for _, c := range d.Ix.CandidatesInComp(comp, groups) {
				if item, ok := d.UIT.ItemOf(c); ok {
					candItems[item] = struct{}{}
				}
			}
		}
		if len(candItems) > 0 {
			unreach := 0
			for it := range candItems {
				if _, ok := tkReachable[it]; !ok {
					unreach++
				}
			}
			out.GraphReach = float64(unreach) / float64(len(candItems))
		}

		// Semantic reachability: candidates without expansion vs with. A
		// query with no candidates either way has no expansion effect and
		// counts as 1.
		bare := make([][]dict.ID, 0, len(kws))
		for _, kw := range kws {
			bare = append(bare, []dict.ID{kw})
		}
		withExt := d.Core.CandidateCount(groups)
		if withExt > 0 {
			out.SemReach = float64(d.Core.CandidateCount(bare)) / float64(withExt)
		} else {
			out.SemReach = 1
		}
	} else {
		out.SemReach = 1
	}
	out.Queries = 1
	return out, nil
}

// CompareWorkload averages CompareQuery over a workload.
func CompareWorkload(d *Dataset, w Workload, opts core.Options, alpha float64) (Quality, error) {
	var acc Quality
	for _, q := range w.Queries {
		r, err := CompareQuery(d, q, w.ID.K, opts, alpha)
		if err != nil {
			return acc, err
		}
		acc.GraphReach += r.GraphReach
		acc.SemReach += r.SemReach
		acc.L1 += r.L1
		acc.Intersection += r.Intersection
		acc.Queries++
	}
	if acc.Queries > 0 {
		n := float64(acc.Queries)
		acc.GraphReach /= n
		acc.SemReach /= n
		acc.L1 /= n
		acc.Intersection /= n
	}
	return acc, nil
}
