package bench

import (
	"strings"
	"testing"
	"time"

	"s3/internal/core"
	"s3/internal/datagen"
	"s3/internal/graph"
	"s3/internal/score"
	"s3/internal/text"
)

func tinyTwitter(t *testing.T) *Dataset {
	t.Helper()
	o := datagen.DefaultTwitterOptions()
	o.Users, o.Tweets = 150, 600
	o.Vocab = 400
	spec, _ := datagen.Twitter(o)
	in, err := graph.BuildSpec(spec, text.Analyzer{Lang: text.None})
	if err != nil {
		t.Fatal(err)
	}
	return NewDataset("I1-tiny", in)
}

func TestSpearmanL1(t *testing.T) {
	a := []graph.NID{1, 2, 3}
	cases := []struct {
		name string
		b    []graph.NID
		want float64
	}{
		{"identical", []graph.NID{1, 2, 3}, 0},
		{"disjoint", []graph.NID{4, 5, 6}, 1},
		{"swap first two", []graph.NID{2, 1, 3}, 2.0 / 12},
		{"empty other", nil, 1},
	}
	for _, c := range cases {
		if got := SpearmanL1(a, c.b); !approx(got, c.want) {
			t.Errorf("%s: L1 = %v, want %v", c.name, got, c.want)
		}
	}
	if got := SpearmanL1(nil, nil); got != 0 {
		t.Errorf("L1(∅,∅) = %v, want 0", got)
	}
	// Symmetry.
	b := []graph.NID{3, 7, 1}
	if !approx(SpearmanL1(a, b), SpearmanL1(b, a)) {
		t.Error("L1 not symmetric")
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestIntersection(t *testing.T) {
	a := []graph.NID{1, 2, 3, 4}
	if got := Intersection(a, []graph.NID{2, 4, 9}); !approx(got, 0.5) {
		t.Fatalf("Intersection = %v, want 0.5", got)
	}
	if got := Intersection(nil, a); got != 0 {
		t.Fatalf("Intersection(∅, a) = %v, want 0", got)
	}
	if got := Intersection(a, nil); got != 0 {
		t.Fatalf("Intersection(a, ∅) = %v, want 0", got)
	}
}

func TestQuartiles(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	q := Quartiles(ds)
	if q.Min != 1 || q.Max != 5 || q.Median != 3 || q.Q1 != 2 || q.Q3 != 4 {
		t.Fatalf("quartiles = %+v", q)
	}
	if q.Mean != 3 {
		t.Fatalf("mean = %v", q.Mean)
	}
	if z := Quartiles(nil); z.Max != 0 {
		t.Fatalf("empty quartiles = %+v", z)
	}
}

func TestBuildWorkloadBands(t *testing.T) {
	d := tinyTwitter(t)
	rare, err := BuildWorkload(d.In, WorkloadID{Freq: Rare, L: 1, K: 5}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	common, err := BuildWorkload(d.In, WorkloadID{Freq: Common, L: 1, K: 5}, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	avgFreq := func(w Workload) float64 {
		total, n := 0, 0
		for _, q := range w.Queries {
			for _, kw := range q.Keywords {
				id, ok := d.In.Dict().Lookup(kw)
				if !ok {
					t.Fatalf("workload keyword %q unknown", kw)
				}
				total += d.In.KeywordFrequency(id)
				n++
			}
		}
		return float64(total) / float64(n)
	}
	if avgFreq(rare) >= avgFreq(common) {
		t.Fatalf("rare band (%v) not rarer than common band (%v)", avgFreq(rare), avgFreq(common))
	}
	// Multi-keyword queries have distinct keywords.
	multi, err := BuildWorkload(d.In, WorkloadID{Freq: Common, L: 5, K: 5}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range multi.Queries {
		seen := map[string]bool{}
		for _, kw := range q.Keywords {
			if seen[kw] {
				t.Fatalf("duplicate keyword in query: %v", q.Keywords)
			}
			seen[kw] = true
		}
	}
}

func TestWorkloadIDStrings(t *testing.T) {
	id := WorkloadID{Freq: Common, L: 1, K: 5}
	if id.String() != "+,1,5" {
		t.Fatalf("id = %q", id.String())
	}
	id = WorkloadID{Freq: Rare, L: 5, K: 10}
	if id.String() != "-,5,10" {
		t.Fatalf("id = %q", id.String())
	}
	if len(PaperWorkloads()) != 8 {
		t.Fatalf("paper workloads = %d, want 8", len(PaperWorkloads()))
	}
	if len(KSweepWorkloads()) != 8 {
		t.Fatalf("k-sweep workloads = %d, want 8", len(KSweepWorkloads()))
	}
}

func TestTimingAndFigures(t *testing.T) {
	d := tinyTwitter(t)
	cfg := DefaultFigureConfig()
	cfg.QueriesPerWorkload = 3
	cfg.Gammas = []float64{1.5}
	cfg.Alphas = []float64{0.5}

	out, err := Fig5(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "S3k γ=1.5") || !strings.Contains(out, "TopkS α=0.5") {
		t.Fatalf("Fig5 output malformed:\n%s", out)
	}
	if !strings.Contains(out, "+,1,5") || !strings.Contains(out, "-,5,10") {
		t.Fatalf("Fig5 workloads missing:\n%s", out)
	}

	out, err = Fig7(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "median") || !strings.Contains(out, "+,1,50") {
		t.Fatalf("Fig7 output malformed:\n%s", out)
	}

	out, err = Fig8(cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"Graph reachability", "Semantic reachability", "L1", "Intersection size"} {
		if !strings.Contains(out, label) {
			t.Fatalf("Fig8 missing %q:\n%s", label, out)
		}
	}

	if got := Fig4(d); !strings.Contains(got, "I1-tiny") || !strings.Contains(got, "Users") {
		t.Fatalf("Fig4 output malformed:\n%s", got)
	}
}

func TestCompareQueryMeasuresInRange(t *testing.T) {
	d := tinyTwitter(t)
	w, err := BuildWorkload(d.In, WorkloadID{Freq: Common, L: 1, K: 5}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Params: score.Params{Gamma: 1.5, Eta: 0.8}}
	q, err := CompareWorkload(d, w, opts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"GraphReach": q.GraphReach, "SemReach": q.SemReach,
		"L1": q.L1, "Intersection": q.Intersection,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v outside [0,1]", name, v)
		}
	}
	if q.Queries != 10 {
		t.Fatalf("averaged %d queries, want 10", q.Queries)
	}
}
