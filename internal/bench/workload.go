// Package bench regenerates the evaluation of the paper (§5): the qset
// workloads, the timing and quality measurements, and plain-text renderings
// of Figures 4-8.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"s3/internal/core"
	"s3/internal/dict"
	"s3/internal/graph"
	"s3/internal/index"
	"s3/internal/topks"
)

// Frequency selects the keyword band of a workload (§5.1): rare keywords
// come from the 25% least frequent, common ones from the 25% most
// frequent.
type Frequency int

const (
	// Rare is printed as "−" in the paper's workload ids.
	Rare Frequency = iota
	// Common is printed as "+".
	Common
)

func (f Frequency) String() string {
	if f == Common {
		return "+"
	}
	return "-"
}

// WorkloadID identifies one qset(f, l, k) workload.
type WorkloadID struct {
	Freq Frequency
	L    int // keywords per query
	K    int // result size
}

func (w WorkloadID) String() string {
	return fmt.Sprintf("%s,%d,%d", w.Freq, w.L, w.K)
}

// PaperWorkloads returns the eight workload ids of Figures 5, 6 and 8.
func PaperWorkloads() []WorkloadID {
	var out []WorkloadID
	for _, f := range []Frequency{Common, Rare} {
		for _, l := range []int{1, 5} {
			for _, k := range []int{5, 10} {
				out = append(out, WorkloadID{Freq: f, L: l, K: k})
			}
		}
	}
	return out
}

// KSweepWorkloads returns the k-sweep ids of Figure 7 (single-keyword
// queries, k ∈ {1, 5, 10, 50}).
func KSweepWorkloads() []WorkloadID {
	var out []WorkloadID
	for _, f := range []Frequency{Common, Rare} {
		for _, k := range []int{1, 5, 10, 50} {
			out = append(out, WorkloadID{Freq: f, L: 1, K: k})
		}
	}
	return out
}

// Query is one keyword query with its seeker.
type Query struct {
	Seeker   graph.NID
	Keywords []string
}

// Workload is a set of queries drawn for one WorkloadID.
type Workload struct {
	ID      WorkloadID
	Queries []Query
}

// BuildWorkload draws n queries: keywords uniformly from the requested
// frequency band (restricted to keywords occurring at least twice, so
// every query can match something), seekers uniformly among users with at
// least one outgoing edge.
func BuildWorkload(in *graph.Instance, id WorkloadID, n int, seed int64) (Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	sorted := in.SortedKeywordsByFrequency()
	var usable []dict.ID
	for _, k := range sorted {
		if in.KeywordFrequency(k) >= 2 {
			usable = append(usable, k)
		}
	}
	if len(usable) < 4*id.L {
		return Workload{}, fmt.Errorf("bench: instance vocabulary too small for workload %s", id)
	}
	quarter := len(usable) / 4
	var band []dict.ID
	if id.Freq == Rare {
		band = usable[:quarter]
	} else {
		band = usable[len(usable)-quarter:]
	}

	var seekers []graph.NID
	for _, u := range in.Users() {
		if len(in.OutEdges(u)) > 0 {
			seekers = append(seekers, u)
		}
	}
	if len(seekers) == 0 {
		return Workload{}, fmt.Errorf("bench: no connected users")
	}

	bandSet := make(map[dict.ID]struct{}, len(band))
	for _, k := range band {
		bandSet[k] = struct{}{}
	}

	w := Workload{ID: id}
	for q := 0; q < n; q++ {
		var kws []string
		if id.L == 1 {
			kws = []string{in.Dict().String(band[rng.Intn(len(band))])}
		} else {
			// Multi-keyword queries are conjunctive: draw the keywords
			// from a single document's vocabulary so that they co-occur
			// (real multi-keyword queries describe one topic; independent
			// draws from a Zipfian vocabulary almost never co-occur).
			kws = coOccurringKeywords(in, rng, bandSet, id.L)
			for len(kws) < id.L {
				k := band[rng.Intn(len(band))]
				s := in.Dict().String(k)
				if !containsStr(kws, s) {
					kws = append(kws, s)
				}
			}
		}
		w.Queries = append(w.Queries, Query{
			Seeker:   seekers[rng.Intn(len(seekers))],
			Keywords: kws,
		})
	}
	return w, nil
}

// coOccurringKeywords samples up to l distinct keywords from one random
// document tree, preferring keywords in the requested frequency band. It
// tries several documents and keeps the best draw.
func coOccurringKeywords(in *graph.Instance, rng *rand.Rand, band map[dict.ID]struct{}, l int) []string {
	roots := in.DocRoots()
	if len(roots) == 0 {
		return nil
	}
	var best []string
	var nodes []graph.NID
	for attempt := 0; attempt < 50 && len(best) < l; attempt++ {
		root := roots[rng.Intn(len(roots))]
		nodes = in.SubtreeOf(root, nodes[:0])
		seen := make(map[dict.ID]struct{})
		var inBand, others []dict.ID
		for _, nd := range nodes {
			for _, k := range in.KeywordsOf(nd) {
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				if _, ok := band[k]; ok {
					inBand = append(inBand, k)
				} else if in.KeywordFrequency(k) >= 2 {
					others = append(others, k)
				}
			}
		}
		// Deterministic sampling: shuffle with the workload rng, prefer
		// in-band keywords, top up with co-occurring off-band ones rather
		// than breaking co-occurrence.
		rng.Shuffle(len(inBand), func(i, j int) { inBand[i], inBand[j] = inBand[j], inBand[i] })
		rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
		var pick []string
		for _, k := range append(inBand, others...) {
			if len(pick) == l {
				break
			}
			pick = append(pick, in.Dict().String(k))
		}
		if len(pick) > len(best) {
			best = pick
		}
	}
	return best
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Dataset bundles everything needed to benchmark one instance: the S3
// engines plus the converted UIT baseline.
type Dataset struct {
	Name  string
	In    *graph.Instance
	Ix    *index.Index
	Core  *core.Engine
	UIT   *topks.UIT
	TopkS *topks.Engine
	// BuildTime records how long indexing and conversion took.
	BuildTime time.Duration
}

// NewDataset builds the engines for an instance.
func NewDataset(name string, in *graph.Instance) *Dataset {
	start := time.Now()
	ix := index.Build(in)
	uit := topks.Convert(in)
	return &Dataset{
		Name:      name,
		In:        in,
		Ix:        ix,
		Core:      core.NewEngine(in, ix),
		UIT:       uit,
		TopkS:     topks.NewEngine(uit),
		BuildTime: time.Since(start),
	}
}

// KeywordIDs resolves query keyword strings to their dictionary ids (for
// the UIT baseline, which takes no semantic extension). Like the S3k
// engine, verbatim vocabulary hits (URIs, hashtags) win over the text
// pipeline.
func (d *Dataset) KeywordIDs(kws []string) []dict.ID {
	var out []dict.ID
	for _, k := range kws {
		if id, ok := d.In.Dict().Lookup(k); ok {
			out = append(out, id)
			continue
		}
		stems := d.In.Analyzer().Keywords(k)
		if len(stems) == 0 {
			continue
		}
		if id, ok := d.In.Dict().Lookup(stems[0]); ok {
			out = append(out, id)
		}
	}
	return out
}

// TimingStats summarises a set of durations the way Figure 7 plots them.
type TimingStats struct {
	Min, Q1, Median, Q3, Max, Mean time.Duration
}

// Quartiles computes the five-number summary (plus mean).
func Quartiles(ds []time.Duration) TimingStats {
	if len(ds) == 0 {
		return TimingStats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return TimingStats{
		Min:    sorted[0],
		Q1:     at(0.25),
		Median: at(0.5),
		Q3:     at(0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / time.Duration(len(sorted)),
	}
}

// TimeS3k measures per-query S3k wall times over a workload.
func TimeS3k(d *Dataset, w Workload, opts core.Options) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(w.Queries))
	opts.K = w.ID.K
	for _, q := range w.Queries {
		start := time.Now()
		if _, _, err := d.Core.Search(q.Seeker, q.Keywords, opts); err != nil {
			return nil, err
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// TimeTopkS measures per-query TopkS wall times over a workload.
func TimeTopkS(d *Dataset, w Workload, alpha float64) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(w.Queries))
	for _, q := range w.Queries {
		kws := d.KeywordIDs(q.Keywords)
		start := time.Now()
		if _, _, err := d.TopkS.Search(q.Seeker, kws, topks.Options{K: w.ID.K, Alpha: alpha}); err != nil {
			return nil, err
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}
