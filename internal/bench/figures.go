package bench

import (
	"fmt"
	"strings"
	"time"

	"s3/internal/core"
	"s3/internal/score"
)

// Table is a minimal aligned-text table renderer for figure output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// FigureConfig carries the sweep parameters shared by Figures 5, 6 and 8.
type FigureConfig struct {
	// QueriesPerWorkload is 100 in the paper; benchmarks default lower to
	// keep runs short (set via cmd/s3bench -queries).
	QueriesPerWorkload int
	Seed               int64
	Gammas             []float64 // S3k γ sweep (paper: 1.25, 1.5, 2)
	Alphas             []float64 // TopkS α sweep (paper: 0.25, 0.5, 0.75)
	Eta                float64
	Workers            int
}

// DefaultFigureConfig mirrors the paper's parameter grid.
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{
		QueriesPerWorkload: 20,
		Seed:               42,
		Gammas:             []float64{1.25, 1.5, 2},
		Alphas:             []float64{0.25, 0.5, 0.75},
		Eta:                0.8,
	}
}

// Fig4 renders the instance-statistics table of Figure 4.
func Fig4(datasets ...*Dataset) string {
	t := &Table{
		Title:  "Figure 4 — statistics on the instances",
		Header: []string{"measure"},
	}
	for _, d := range datasets {
		t.Header = append(t.Header, d.Name)
	}
	rows := []struct {
		label string
		get   func(*Dataset) string
	}{
		{"Users", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Users) }},
		{"S3:social edges", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().SocialEdges) }},
		{"Documents", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Documents) }},
		{"Fragments (non-root)", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Fragments) }},
		{"Tags", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Tags) }},
		{"Keywords (occurrences)", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().KeywordOccurrences) }},
		{"Comment edges", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Comments) }},
		{"Ontology triples", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().OntologyTriples) }},
		{"Avg social degree", func(d *Dataset) string { return fmt.Sprintf("%.1f", d.In.Stats().AvgSocialDegree) }},
		{"Nodes (w/o keywords)", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Nodes) }},
		{"Edges (w/o keywords)", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Edges) }},
		{"Components", func(d *Dataset) string { return fmt.Sprint(d.In.Stats().Components) }},
	}
	for _, r := range rows {
		cells := []string{r.label}
		for _, d := range datasets {
			cells = append(cells, r.get(d))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// Fig5 renders the query-time comparison of Figure 5 (and Figure 6, which
// is the same sweep over another instance): median per-workload runtimes
// for S3k under each γ and TopkS under each α.
func Fig5(d *Dataset, cfg FigureConfig) (string, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 5/6 — median query answering times on %s", d.Name),
		Header: []string{"workload (f,l,k)"},
	}
	for _, g := range cfg.Gammas {
		t.Header = append(t.Header, fmt.Sprintf("S3k γ=%.4g", g))
	}
	for _, a := range cfg.Alphas {
		t.Header = append(t.Header, fmt.Sprintf("TopkS α=%.4g", a))
	}
	for wi, id := range PaperWorkloads() {
		w, err := BuildWorkload(d.In, id, cfg.QueriesPerWorkload, cfg.Seed+int64(wi))
		if err != nil {
			return "", err
		}
		cells := []string{id.String()}
		for _, g := range cfg.Gammas {
			opts := core.Options{
				K:       id.K,
				Params:  score.Params{Gamma: g, Eta: cfg.Eta},
				Workers: cfg.Workers,
			}
			ds, err := TimeS3k(d, w, opts)
			if err != nil {
				return "", err
			}
			cells = append(cells, ms(Quartiles(ds).Median))
		}
		for _, a := range cfg.Alphas {
			ds, err := TimeTopkS(d, w, a)
			if err != nil {
				return "", err
			}
			cells = append(cells, ms(Quartiles(ds).Median))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}

// Fig7 renders the k-sweep of Figure 7: min/Q1/median/Q3/max S3k runtimes
// on single-keyword workloads for k ∈ {1, 5, 10, 50} and γ ∈ {1.5, 4}.
func Fig7(d *Dataset, cfg FigureConfig) (string, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7 — query time quartiles vs k on %s", d.Name),
		Header: []string{"workload (f,l,k)", "γ", "min", "Q1", "median", "Q3", "max"},
	}
	for wi, id := range KSweepWorkloads() {
		w, err := BuildWorkload(d.In, id, cfg.QueriesPerWorkload, cfg.Seed+100+int64(wi))
		if err != nil {
			return "", err
		}
		for _, g := range []float64{1.5, 4} {
			opts := core.Options{
				K:       id.K,
				Params:  score.Params{Gamma: g, Eta: cfg.Eta},
				Workers: cfg.Workers,
			}
			ds, err := TimeS3k(d, w, opts)
			if err != nil {
				return "", err
			}
			q := Quartiles(ds)
			t.AddRow(id.String(), fmt.Sprintf("%.4g", g),
				ms(q.Min), ms(q.Q1), ms(q.Median), ms(q.Q3), ms(q.Max))
		}
	}
	return t.String(), nil
}

// Fig8 renders the qualitative comparison of Figure 8: the four measures
// averaged over the eight paper workloads, per instance.
func Fig8(cfg FigureConfig, datasets ...*Dataset) (string, error) {
	t := &Table{
		Title:  "Figure 8 — relations between S3k and TopkS answers",
		Header: []string{"measure"},
	}
	for _, d := range datasets {
		t.Header = append(t.Header, d.Name)
	}
	qual := make([]Quality, len(datasets))
	for di, d := range datasets {
		var acc Quality
		for wi, id := range PaperWorkloads() {
			w, err := BuildWorkload(d.In, id, cfg.QueriesPerWorkload, cfg.Seed+200+int64(wi))
			if err != nil {
				return "", err
			}
			opts := core.Options{
				K:       id.K,
				Params:  score.Params{Gamma: 1.5, Eta: cfg.Eta},
				Workers: cfg.Workers,
			}
			q, err := CompareWorkload(d, w, opts, 0.5)
			if err != nil {
				return "", err
			}
			acc.GraphReach += q.GraphReach
			acc.SemReach += q.SemReach
			acc.L1 += q.L1
			acc.Intersection += q.Intersection
			acc.Queries++
		}
		n := float64(acc.Queries)
		qual[di] = Quality{
			GraphReach:   acc.GraphReach / n,
			SemReach:     acc.SemReach / n,
			L1:           acc.L1 / n,
			Intersection: acc.Intersection / n,
		}
	}
	rows := []struct {
		label string
		get   func(Quality) float64
	}{
		{"Graph reachability", func(q Quality) float64 { return q.GraphReach }},
		{"Semantic reachability", func(q Quality) float64 { return q.SemReach }},
		{"L1", func(q Quality) float64 { return q.L1 }},
		{"Intersection size", func(q Quality) float64 { return q.Intersection }},
	}
	for _, r := range rows {
		cells := []string{r.label}
		for di := range datasets {
			cells = append(cells, pct(r.get(qual[di])))
		}
		t.AddRow(cells...)
	}
	return t.String(), nil
}
