package text

// englishStopwords is a compact English stop-word list (function words that
// carry no retrieval value). It intentionally stays small: over-aggressive
// lists hurt recall on short social posts.
var englishStopwords = makeSet(
	"a", "about", "above", "after", "again", "all", "am", "an", "and",
	"any", "are", "as", "at", "be", "because", "been", "before", "being",
	"below", "between", "both", "but", "by", "can", "could", "did", "do",
	"does", "doing", "down", "during", "each", "few", "for", "from",
	"further", "had", "has", "have", "having", "he", "her", "here", "hers",
	"him", "his", "how", "i", "if", "in", "into", "is", "it", "its",
	"itself", "just", "me", "more", "most", "my", "myself", "no", "nor",
	"not", "now", "of", "off", "on", "once", "only", "or", "other", "our",
	"ours", "out", "over", "own", "s", "same", "she", "should", "so",
	"some", "such", "t", "than", "that", "the", "their", "theirs", "them",
	"then", "there", "these", "they", "this", "those", "through", "to",
	"too", "under", "until", "up", "very", "was", "we", "were", "what",
	"when", "where", "which", "while", "who", "whom", "why", "will",
	"with", "would", "you", "your", "yours", "yourself",
)

// frenchStopwords is a compact French stop-word list for the Vodkaster-like
// instance.
var frenchStopwords = makeSet(
	"au", "aux", "avec", "ce", "ces", "cet", "cette", "dans", "de", "des",
	"du", "elle", "elles", "en", "et", "eux", "il", "ils", "je", "la",
	"le", "les", "leur", "leurs", "lui", "ma", "mais", "me", "mes", "moi",
	"mon", "ne", "nos", "notre", "nous", "on", "ou", "où", "par", "pas",
	"plus", "pour", "qu", "que", "qui", "sa", "se", "ses", "son", "sur",
	"ta", "te", "tes", "toi", "ton", "tu", "un", "une", "vos", "votre",
	"vous", "y", "a", "à", "est", "sont", "être", "avoir", "comme", "si",
	"tout", "tous", "toute", "toutes", "très", "sans", "fait",
)

func makeSet(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}
