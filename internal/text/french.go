package text

import "strings"

// FrenchStem implements a light French stemmer in the spirit of Savoy's
// "light" stemmers: plural/feminine normalisation followed by a single pass
// of derivational suffix stripping. The paper's I2 (Vodkaster) instance is
// French and was stemmed with a comparable off-the-shelf tool; since our I2
// stand-in is synthetic, a light stemmer that merges inflectional variants
// is sufficient and keeps behaviour easy to reason about.
//
// The function is idempotent: FrenchStem(FrenchStem(w)) == FrenchStem(w).
func FrenchStem(word string) string {
	r := []rune(word)
	if len(r) <= 3 {
		return word
	}

	// Plural normalisation.
	switch {
	case hasRuneSuffix(r, "eaux"):
		r = r[:len(r)-1] // châteaux → château
	case hasRuneSuffix(r, "aux") && len(r) > 4:
		r = append(r[:len(r)-2], 'l') // chevaux → cheval
	case r[len(r)-1] == 'x' || r[len(r)-1] == 's':
		r = r[:len(r)-1]
	}
	if len(r) <= 3 {
		return string(r)
	}

	// Derivational suffixes, longest first; the remaining stem must keep at
	// least three runes.
	suffixes := []struct{ suf, repl string }{
		{"issement", ""}, {"issant", ""}, {"atrice", ""}, {"ateur", ""},
		{"logie", "log"}, {"emment", "ent"}, {"amment", "ant"},
		{"ement", ""}, {"euse", "eu"}, {"ance", ""}, {"ence", ""},
		{"ité", ""}, {"ive", ""}, {"ion", ""}, {"eur", ""}, {"ère", "er"},
	}
	for _, c := range suffixes {
		suf := []rune(c.suf)
		if len(r)-len(suf) >= 3 && hasRuneSuffix(r, c.suf) {
			r = append(r[:len(r)-len(suf)], []rune(c.repl)...)
			break
		}
	}

	// Final mute 'e' / 'é', then squeeze a trailing double letter
	// (bonnes → bonne → bonn → bon).
	if len(r) > 3 && (r[len(r)-1] == 'e' || r[len(r)-1] == 'é') {
		r = r[:len(r)-1]
	}
	if len(r) > 3 && r[len(r)-1] == r[len(r)-2] {
		r = r[:len(r)-1]
	}
	return string(r)
}

func hasRuneSuffix(r []rune, suffix string) bool {
	return strings.HasSuffix(string(r), suffix)
}
