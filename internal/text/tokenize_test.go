package text

import (
	"reflect"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"When I got my M.S. @UAlberta in 2012 ...", []string{"when", "i", "got", "my", "m.s", "@ualberta", "in", "2012"}},
		{"#graduation day!!", []string{"#graduation", "day"}},
		{"state-of-the-art systems", []string{"state-of-the-art", "systems"}},
		{"", nil},
		{"   \t\n ", nil},
		{"...---...", nil},
		{"l'état, c'est moi", []string{"l'état", "c'est", "moi"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeStripsDanglingMarkers(t *testing.T) {
	got := Tokenize("# @ #. -x-")
	want := []string{"x"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestAnalyzerKeywordsEnglish(t *testing.T) {
	a := Analyzer{Lang: English}
	got := a.Keywords("The universities of the graduates")
	want := []string{"univers", "graduat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerKeywordsDeduplicates(t *testing.T) {
	a := Analyzer{Lang: English}
	got := a.Keywords("running runs run")
	if len(got) != 1 || got[0] != "run" {
		t.Errorf("Keywords = %v, want [run]", got)
	}
}

func TestAnalyzerKeywordsFrench(t *testing.T) {
	a := Analyzer{Lang: French}
	got := a.Keywords("les films et le cinéma")
	want := []string{"film", "cinéma"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerKeepsHashtags(t *testing.T) {
	a := Analyzer{Lang: English}
	got := a.Keywords("#universities are great")
	want := []string{"#universities", "great"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerNoneLangPassthrough(t *testing.T) {
	a := Analyzer{Lang: None}
	got := a.Keywords("The Universities OF k42")
	want := []string{"the", "universities", "of", "k42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerKeepStopwords(t *testing.T) {
	a := Analyzer{Lang: English, KeepStopwords: true}
	got := a.Keywords("the graduate")
	want := []string{"the", "graduat"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}
