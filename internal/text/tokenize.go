// Package text implements the keyword pipeline of the S3 model (paper §2,
// "Keywords"): tokenization, stop-word removal and stemming. Every literal
// appearing in a document node or tag is broken into words, stop words are
// dropped and the remaining words are stemmed; the results are the keywords
// K of the data model.
//
// Two languages are supported, matching the paper's datasets: English
// (Twitter/Yelp instances, full Porter stemmer) and French (Vodkaster
// instance, light suffix-stripping stemmer).
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased tokens. A token is a maximal run of
// letters, digits and the intra-token characters '.', '-', '_' and '\”
// (so "M.S." and "e-mail" survive as single tokens), optionally prefixed by
// '#' or '@' (hashtags and mentions are meaningful in social content).
// Leading and trailing punctuation is trimmed from each token.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), ".-_'")
		b.Reset()
		if tok != "" && tok != "#" && tok != "@" {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '.' || r == '-' || r == '_' || r == '\'':
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		case (r == '#' || r == '@') && b.Len() == 0:
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Lang selects the stemming and stop-word behaviour of an Analyzer.
type Lang int

const (
	// English uses the Porter stemmer and an English stop-word list.
	English Lang = iota
	// French uses a light suffix-stripping stemmer and a French stop-word
	// list (the paper's I2 instance is French and was "stemmed" the same
	// way, §5.1).
	French
	// None performs no stemming and no stop-word removal; useful for
	// identifier-like vocabularies (synthetic datasets, hashtags).
	None
)

// Analyzer turns free text into the stemmed keyword multiset of the model.
// The zero value is a usable English analyzer.
type Analyzer struct {
	Lang Lang
	// KeepStopwords disables stop-word removal.
	KeepStopwords bool
}

// Keywords tokenizes, removes stop words, stems, and de-duplicates while
// preserving first-occurrence order. De-duplication matches the model: a
// node's content is a *set* of keywords (§2.3).
func (a Analyzer) Keywords(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	seen := make(map[string]struct{}, len(toks))
	for _, tok := range toks {
		if !a.KeepStopwords && a.isStopword(tok) {
			continue
		}
		k := a.Stem(tok)
		if k == "" {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// Stem stems a single lower-case token according to the analyzer language.
// Hashtags and mentions are returned unstemmed (they are identifiers).
func (a Analyzer) Stem(tok string) string {
	if tok == "" || tok[0] == '#' || tok[0] == '@' {
		return tok
	}
	switch a.Lang {
	case English:
		return PorterStem(tok)
	case French:
		return FrenchStem(tok)
	default:
		return tok
	}
}

func (a Analyzer) isStopword(tok string) bool {
	switch a.Lang {
	case English:
		return englishStopwords[tok]
	case French:
		return frenchStopwords[tok]
	default:
		return false
	}
}
