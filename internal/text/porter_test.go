package text

import (
	"testing"
	"testing/quick"
)

// The expected outputs below are the published examples from Porter's 1980
// paper, adjusted where the reference implementation's two departures
// (bli→ble, logi→log) apply.
func TestPorterClassicVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologi":    "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate": "probat",
		"rate":    "rate",
		"cease":   "ceas",
		"control": "control",
		"roll":    "roll",
		// words the paper's motivating example relies on
		"graduation": "graduat",
		"graduate":   "graduat",
		"university": "univers",
		"degree":     "degre",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterLeavesShortAndNonASCIIAlone(t *testing.T) {
	for _, w := range []string{"", "a", "of", "m.s.", "été", "web2", "#tag"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Porter stemming is idempotent on its own output for ordinary vocabulary.
// (This is not a theorem for arbitrary letter strings, so we check it on a
// realistic word list rather than random bytes.)
func TestPorterIdempotentOnVocabulary(t *testing.T) {
	// Note: Porter stemming is not idempotent in general ("universities" →
	// "univers" → "univ" is the canonical counter-example), so this checks a
	// list of words whose stems are fixed points.
	words := []string{
		"running", "nationalization", "happiness", "abilities",
		"connected", "connections", "organizer", "traditional",
		"probabilistic", "engineering", "searches", "semantically",
		"structural", "graduates", "friendliness",
	}
	for _, w := range words {
		once := PorterStem(w)
		twice := PorterStem(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q -> %q", w, once, twice)
		}
	}
}

func TestFrenchStemMergesInflections(t *testing.T) {
	groups := [][]string{
		{"films", "film"},
		{"chevaux", "cheval"},
		{"châteaux", "château"},
		{"acteurs", "acteur"}, // plural only; "eur" needs 3-rune stem: "act" ok
		{"nations", "nation"},
		{"grandes", "grande", "grand"},
	}
	for _, g := range groups {
		base := FrenchStem(g[0])
		for _, w := range g[1:] {
			if got := FrenchStem(w); got != base {
				t.Errorf("FrenchStem(%q) = %q, FrenchStem(%q) = %q; want equal", g[0], base, w, got)
			}
		}
	}
}

func TestFrenchStemIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := FrenchStem(once2(s))
		return FrenchStem(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// once2 pre-stems so that the property tested is idempotence on outputs.
func once2(s string) string { return FrenchStem(s) }

func BenchmarkPorterStem(b *testing.B) {
	words := []string{"nationalization", "running", "connected", "universities"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PorterStem(words[i%len(words)])
	}
}
