// Package obs is the zero-dependency observability layer threaded
// through every serving tier: lock-cheap metrics with a Prometheus
// text-format exposition, lightweight per-search traces (span trees with
// a propagatable trace id), a bounded ring of recent traces, and a
// structured slow-query log.
//
// Everything is deliberately tiny and allocation-shy: counters are one
// atomic word, histograms are a fixed bucket array of atomic words, and
// no instrument ever takes a lock on the hot path. The registry itself
// is locked only at registration and exposition time.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair; labels render sorted by key so an
// instrument's identity (and its exposition) is deterministic.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing metric: one atomic word.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefBuckets are the default latency buckets in seconds: 100µs to 2.5s,
// roughly geometric — wide enough to bracket a cached in-process search
// (tens of µs) and a multi-round distributed search over a real network.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// RoundBuckets bucket rounds-per-search counts.
var RoundBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}

// Histogram is a fixed-bucket histogram: cumulative-on-read bucket
// counts, a bit-cast float sum and a total count, all atomics. Observe
// never allocates or locks.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied after
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits accumulator
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t.
func (h *Histogram) ObserveSince(t time.Time) { h.Observe(time.Since(t).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind orders the TYPE line of the exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// metric is one registered instrument (one label combination of a family).
type metric struct {
	labels []Label
	c      *Counter
	h      *Histogram
	f      func() float64 // counter/gauge func variant
}

// family groups every label combination of one metric name, sharing the
// HELP/TYPE header.
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*metric
}

// Registry holds a process's instruments and renders them in Prometheus
// text exposition format. Registration methods are idempotent: asking
// for an already-registered (name, labels) returns the existing
// instrument, so reload paths can re-register safely; func-backed
// metrics re-bind to the latest func instead (the closure may capture a
// swapped-in instance).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup finds or creates the family and the labeled slot; the caller
// holds r.mu and fills the slot's instrument on creation.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*metric, bool) {
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	for _, m := range fam.metrics {
		if labelsEqual(m.labels, labels) {
			return m, false
		}
	}
	m := &metric{labels: labels}
	fam.metrics = append(fam.metrics, m)
	return m, true
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.lookup(name, help, kindCounter, sortLabels(labels))
	if fresh {
		m.c = &Counter{}
	}
	return m.c
}

// CounterFunc registers a counter read from f at exposition time (the
// idiom for exposing an existing atomic counter without restructuring
// it). Re-registering replaces f — reload paths rebind the closure to
// the current instance.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, kindCounter, sortLabels(labels))
	m.f = f
}

// GaugeFunc registers a gauge read from f at exposition time.
// Re-registering replaces f.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, _ := r.lookup(name, help, kindGauge, sortLabels(labels))
	m.f = f
}

// Histogram registers (or returns) a fixed-bucket histogram; nil bounds
// pick DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, fresh := r.lookup(name, help, kindHistogram, sortLabels(labels))
	if fresh {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// Names returns every registered metric name in registration order
// (metrics-lint walks this against the README catalogue).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// renderLabels renders {k="v",...} with label values escaped, plus an
// optional extra label (the histogram "le").
func renderLabels(b *strings.Builder, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, one sample line per
// instrument, cumulative histogram buckets ending at +Inf.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		fam := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.kind)
		for _, m := range fam.metrics {
			switch {
			case m.h != nil:
				cum := uint64(0)
				for i, bound := range m.h.bounds {
					cum += m.h.counts[i].Load()
					b.WriteString(fam.name)
					b.WriteString("_bucket")
					renderLabels(&b, m.labels, "le", formatFloat(bound))
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(cum, 10))
					b.WriteByte('\n')
				}
				cum += m.h.counts[len(m.h.bounds)].Load()
				b.WriteString(fam.name)
				b.WriteString("_bucket")
				renderLabels(&b, m.labels, "le", "+Inf")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
				b.WriteString(fam.name)
				b.WriteString("_sum")
				renderLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.h.Sum()))
				b.WriteByte('\n')
				b.WriteString(fam.name)
				b.WriteString("_count")
				renderLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			case m.f != nil:
				b.WriteString(fam.name)
				renderLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.f()))
				b.WriteByte('\n')
			case m.c != nil:
				b.WriteString(fam.name)
				renderLabels(&b, m.labels, "", "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(m.c.Value(), 10))
				b.WriteByte('\n')
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Handler serves GET /metrics from the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// SearchMetrics bundles the engine-level instruments threaded through a
// search (core.Options.Obs / core.CoordOptions.Obs): how many lockstep
// rounds a search ran and how long each round took. One set serves every
// deployment of the engine in a process — single, sharded and
// coordinated searches record into the same pair.
type SearchMetrics struct {
	// Rounds observes rounds-per-search at search end.
	Rounds *Histogram
	// RoundSeconds observes one lockstep round: proximity step, admission,
	// bound refresh and selection across every shard (for a distributed
	// search: including the worker round trips).
	RoundSeconds *Histogram
}

// NewSearchMetrics registers the engine-level instruments in r
// (idempotent, so reload paths may call it again).
func NewSearchMetrics(r *Registry) *SearchMetrics {
	return &SearchMetrics{
		Rounds:       r.Histogram("s3_search_rounds", "Proximity exploration rounds per search.", RoundBuckets),
		RoundSeconds: r.Histogram("s3_search_round_seconds", "Duration of one lockstep search round across all shards.", nil),
	}
}
