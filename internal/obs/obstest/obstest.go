// Package obstest holds test helpers for asserting over Prometheus text
// expositions: a strict line parser and histogram-consistency checks.
// It lives outside the _test files so the server and dshard end-to-end
// tests can share one parser with the obs unit tests.
package obstest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9.eE+-]+|NaN)$`)

// ParseExposition parses Prometheus text format into sample → value,
// failing the test on any malformed or duplicate line.
func ParseExposition(t testing.TB, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed exposition line %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		key := m[1]
		if m[2] != "" {
			key += m[2]
		}
		if _, dup := out[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		out[key] = v
	}
	return out
}

// CheckHistogram asserts that the named histogram (with the given
// rendered label prefix, e.g. `endpoint="round"`, or "" for none) has
// bucket lines and that its +Inf bucket agrees with its _count sample.
func CheckHistogram(t testing.TB, samples map[string]float64, name string, labels string) {
	t.Helper()
	prefix := name + "_bucket{"
	if labels != "" {
		prefix = name + "_bucket{" + labels + ","
	}
	inf := -1.0
	n := 0
	for key, v := range samples {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		n++
		if strings.Contains(key, `le="+Inf"`) {
			inf = v
		}
	}
	if n == 0 {
		t.Fatalf("no buckets for histogram %s{%s}", name, labels)
	}
	countKey := name + "_count"
	if labels != "" {
		countKey += "{" + labels + "}"
	}
	count, ok := samples[countKey]
	if !ok {
		t.Fatalf("missing %s", countKey)
	}
	if inf != count {
		t.Fatalf("%s: +Inf bucket %v != count %v", name, inf, count)
	}
}
