// A bounded in-memory ring of recent (slow) traces, served at
// GET /debug/traces as a JSON array, newest first.
package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// TraceRecord is one retained trace: identifying request metadata plus
// the rendered span tree.
type TraceRecord struct {
	TraceID   string    `json:"trace_id"`
	RequestID string    `json:"request_id,omitempty"`
	Seeker    string    `json:"seeker,omitempty"`
	Keywords  []string  `json:"keywords,omitempty"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Spans     *SpanJSON `json:"spans"`
}

// DefaultTraceRing is the retained-trace capacity when a config leaves
// it zero.
const DefaultTraceRing = 64

// TraceRing retains the last N trace records.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*TraceRecord
	next int
	n    int
}

// NewTraceRing returns a ring holding up to n records (n <= 0 picks
// DefaultTraceRing).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRing
	}
	return &TraceRing{buf: make([]*TraceRecord, n)}
}

// Add retains a record, evicting the oldest when full.
func (r *TraceRing) Add(rec *TraceRecord) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records, newest first.
func (r *TraceRing) Snapshot() []*TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns how many records are retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Handler serves GET /debug/traces.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := r.Snapshot()
		if recs == nil {
			recs = []*TraceRecord{}
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"traces": recs})
	})
}
