// Per-search tracing: a trace is a tree of named spans, each a stage of
// the search (resolve, a lockstep round, a worker round trip) with a
// start time, a duration and a few attributes. Traces are opt-in per
// request, cost nothing when absent (every Span method is nil-safe, so
// call sites thread a possibly-nil span unconditionally), and carry a
// 64-bit id that crosses the dshard wire so worker-side spans stitch
// into the coordinator's tree.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key, Value string
}

// Span is one named stage of a trace. A span (and its Children slice)
// belongs to a single goroutine: create children for concurrent work
// before the fan-out and let each goroutine end only its own span.
type Span struct {
	Name     string
	Start    time.Time
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts a child span; on a nil receiver it returns nil, so
// untraced searches thread nil spans at zero cost.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// End fixes the span's duration.
func (s *Span) End() {
	if s != nil && s.Dur == 0 {
		s.Dur = time.Since(s.Start)
	}
}

// Attach adds an externally built span (e.g. decoded worker-side spans)
// as a child.
func (s *Span) Attach(c *Span) {
	if s != nil && c != nil {
		s.Children = append(s.Children, c)
	}
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(k, v string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: k, Value: v})
	}
}

// SetInt records an integer attribute.
func (s *Span) SetInt(k string, v int64) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: k, Value: fmt.Sprintf("%d", v)})
	}
}

// SetFloat records a float attribute.
func (s *Span) SetFloat(k string, v float64) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: k, Value: fmt.Sprintf("%g", v)})
	}
}

// Trace is one search's span tree plus the id that stitches
// coordinator-side and worker-side spans together.
type Trace struct {
	ID   uint64
	Root *Span
}

// NewTrace starts a trace with a fresh id.
func NewTrace(name string) *Trace {
	return &Trace{ID: NewID(), Root: NewSpan(name)}
}

// NewTraceWithID starts a trace under a propagated id (worker side).
func NewTraceWithID(id uint64, name string) *Trace {
	return &Trace{ID: id, Root: NewSpan(name)}
}

// TraceID returns the trace id, 0 for a nil trace (the wire encoding of
// "not traced").
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// Span returns the root span (nil-safe).
func (t *Trace) Span() *Span {
	if t == nil {
		return nil
	}
	return t.Root
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t != nil {
		t.Root.End()
	}
}

// IDString renders a trace id the way it appears in responses, the slow
// log and /debug/traces: 16 lowercase hex digits.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// NewID returns a random non-zero 64-bit id (trace ids; zero is reserved
// for "absent" on the wire).
func NewID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back to
			// the clock rather than panicking in a serving path.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// NewRequestID returns a fresh X-Request-ID value (16 hex digits).
func NewRequestID() string { return IDString(NewID()) }

// SpanJSON is the rendered form of a span: times in microseconds
// relative to the tree's root, attributes flattened to a map.
type SpanJSON struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanJSON       `json:"children,omitempty"`
}

// JSON renders the span tree with times relative to base (pass the root
// span's Start).
func (s *Span) JSON(base time.Time) *SpanJSON {
	if s == nil {
		return nil
	}
	out := &SpanJSON{
		Name:    s.Name,
		StartUS: s.Start.Sub(base).Microseconds(),
		DurUS:   s.Dur.Microseconds(),
	}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.JSON(base))
	}
	return out
}

// JSON renders the whole trace relative to its root start.
func (t *Trace) JSON() *SpanJSON {
	if t == nil || t.Root == nil {
		return nil
	}
	return t.Root.JSON(t.Root.Start)
}

// StagesMS flattens a root span's direct children into a stage → total
// milliseconds map (same-named children accumulate) — the per-stage
// attribution the slow-query log records.
func StagesMS(root *Span) map[string]float64 {
	if root == nil || len(root.Children) == 0 {
		return nil
	}
	out := make(map[string]float64, len(root.Children))
	for _, c := range root.Children {
		out[c.Name] += float64(c.Dur.Microseconds()) / 1000
	}
	return out
}
