// The slow-query log: one structured JSON line per search slower than a
// configured threshold, written to an io.Writer (s3serve points it at
// stderr). Each line carries the request and trace ids (correlatable
// with client logs and /debug/traces), the query, the round count and a
// per-stage millisecond breakdown.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowRecord is one slow-query log line.
type SlowRecord struct {
	TS        string             `json:"ts"`
	RequestID string             `json:"request_id,omitempty"`
	TraceID   string             `json:"trace_id,omitempty"`
	Seeker    string             `json:"seeker"`
	Keywords  []string           `json:"keywords"`
	K         int                `json:"k"`
	Outcome   string             `json:"outcome"`
	Rounds    int                `json:"rounds"`
	Shards    int                `json:"shards"`
	ElapsedMS float64            `json:"elapsed_ms"`
	StagesMS  map[string]float64 `json:"stages_ms,omitempty"`
}

// SlowLog emits SlowRecords above a threshold. All methods are nil-safe,
// so servers thread a possibly-nil log unconditionally.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
	emitted   atomic.Uint64
}

// NewSlowLog wires a slow-query log; a threshold <= 0 returns nil
// (disabled — every method on a nil log is a no-op).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Enabled reports whether searches should be measured for the log.
func (l *SlowLog) Enabled() bool { return l != nil }

// Threshold returns the emission threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Emit writes rec as one JSON line if elapsed reaches the threshold,
// stamping TS and ElapsedMS. It reports whether a line was written.
func (l *SlowLog) Emit(elapsed time.Duration, rec *SlowRecord) bool {
	if l == nil || elapsed < l.threshold {
		return false
	}
	rec.TS = time.Now().UTC().Format(time.RFC3339Nano)
	rec.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	line, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(line)
	l.mu.Unlock()
	if werr != nil {
		return false
	}
	l.emitted.Add(1)
	return true
}

// Emitted counts lines written over the log's lifetime.
func (l *SlowLog) Emitted() uint64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}
